// vsq_serve — closed-loop load generator for the batched inference
// serving engine (src/serve/). Loads an exported package, spins up an
// InferenceSession, hammers it from N client threads (each client waits
// for its previous response before sending the next request), and prints
// a latency/throughput stats table plus a machine-readable JSON line.
//
//   vsq_serve --package=artifacts/tiny_int.vsqa
//             [--clients=8] [--requests=256]        total requests, split
//             [--max-batch=16] [--max-wait-us=0]    batcher knobs
//             [--cache=0] [--unique=32]             result-cache entries /
//                                                   distinct inputs per run
//             [--scale-bits=-1] [--seed=1] [--threads=N]
//             [--datapath-stats]                    aggregate IntGemmStats
//             [--no-check]                          skip the bit-exactness
//                                                   audit vs sequential
//
// The package must carry a forward program (vsq_quantize --model=tiny
// writes one); MLP-style packages without one fall back to lexicographic
// layer order with ReLU between layers. Sequence packages (vsq_quantize
// --model=tiny_bert) are served with token rows of random length in
// [1, max_seq], so the run exercises the length-bucketed batcher and the
// stats table reports bucket occupancy and mixed-bucket batches.
#include <algorithm>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "kernels/isa.h"
#include "serve/session.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace vsq;

struct ClientLog {
  std::vector<Tensor> inputs;
  std::vector<Tensor> outputs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 1;
  const std::string path = args.get_str("package", "artifacts/tiny_int.vsqa");
  const int clients = std::max(1, args.get_int("clients", 8));
  const int total_requests = std::max(1, args.get_int("requests", 256));
  const bool check = !args.get_flag("no-check");
  const int unique = std::max(1, args.get_int("unique", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  ServeConfig cfg;
  cfg.max_batch = std::max(1, args.get_int("max-batch", 16));
  cfg.max_wait_us = std::max(0, args.get_int("max-wait-us", 0));
  cfg.cache_entries = static_cast<std::size_t>(std::max(0, args.get_int("cache", 0)));
  cfg.scale_product_bits = args.get_int("scale-bits", -1);
  cfg.collect_datapath_stats = args.get_flag("datapath-stats");

  QuantizedModelPackage pkg = QuantizedModelPackage::load(path);
  InferenceSession session(std::move(pkg), cfg);
  const std::int64_t in_features = session.runner().in_features();
  // Sequence packages take unpadded token rows of varying length; the
  // generator mixes lengths across the bucket ladder so the run actually
  // exercises mixed-bucket batches.
  const bool seq = session.runner().seq();

  std::cout << "serving " << path << ": " << session.package().layers.size() << " layers, ";
  if (seq) {
    std::cout << "sequence max_seq=" << session.runner().max_seq()
              << " vocab=" << session.runner().vocab()
              << " out/token=" << session.runner().out_per_token() << ", ";
  } else {
    std::cout << in_features << " -> " << session.runner().out_features() << " features, ";
  }
  std::cout << clients << " clients x " << (total_requests / clients) << "+ requests, max_batch="
            << cfg.max_batch << ", max_wait=" << cfg.max_wait_us << "us, cache="
            << cfg.cache_entries << "\n";
  std::cout << "cpu: " << isa::summary() << "\n";

  const auto gen_input = [&](Rng& rng) {
    if (seq) {
      const auto max_seq = static_cast<std::uint64_t>(session.runner().max_seq());
      const std::int64_t len = static_cast<std::int64_t>(1 + rng.uniform_u64(max_seq));
      Tensor t(Shape{len});
      for (auto& v : t.span()) {
        v = static_cast<float>(
            rng.uniform_u64(static_cast<std::uint64_t>(session.runner().vocab())));
      }
      return t;
    }
    Tensor t(Shape{in_features});
    for (auto& v : t.span()) v = static_cast<float>(rng.normal());
    return t;
  };

  // Deterministic inputs, pre-generated before the clock starts (the
  // generator must not bill payload synthesis to the engine). With
  // --cache, clients draw from a shared pool of `unique` vectors so
  // repeats actually occur; otherwise every request gets a fresh vector.
  const bool pooled = cfg.cache_entries > 0;
  std::vector<Tensor> pool;
  if (pooled) {
    Rng prng(seed);
    for (int i = 0; i < unique; ++i) pool.push_back(gen_input(prng));
  }
  std::vector<ClientLog> logs(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    // Spread the remainder so exactly total_requests get sent.
    const int n = total_requests / clients + (c < total_requests % clients ? 1 : 0);
    Rng rng(seed + 1000003ull * static_cast<std::uint64_t>(c + 1));
    ClientLog& log = logs[static_cast<std::size_t>(c)];
    log.inputs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (pooled) {
        log.inputs.push_back(pool[rng.uniform_u64(static_cast<std::uint64_t>(pool.size()))]);
      } else {
        log.inputs.push_back(gen_input(rng));
      }
    }
    log.outputs.resize(log.inputs.size());
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientLog& log = logs[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < log.inputs.size(); ++i) {
        // Closed loop: wait for each response before the next request.
        log.outputs[i] = session.infer(log.inputs[i]);
      }
    });
  }
  for (auto& t : threads) t.join();

  const ServeStatsSnapshot snap = session.stats();
  session.shutdown();

  snap.print_table(std::cout);
  if (cfg.collect_datapath_stats) {
    const IntGemmStats dp = session.datapath_stats();
    std::cout << "integer datapath: " << dp.vector_ops << " vector ops, "
              << static_cast<int>(100.0 * dp.gateable_fraction()) << "% gateable\n";
  }
  std::cout << snap.json() << "\n";

  if (check) {
    // Audit: every served output must be bit-identical to sequential
    // single-sample execution through the same runner.
    const QuantizedModelRunner& runner = session.runner();
    std::uint64_t checked = 0;
    for (const ClientLog& log : logs) {
      for (std::size_t i = 0; i < log.inputs.size(); ++i) {
        // Sequence inputs replay at their own true length [1, L]; the
        // served row and the sequential reference are both [1, L * opt].
        const Tensor ref =
            runner.forward(log.inputs[i].reshape(Shape{1, log.inputs[i].numel()}));
        const Tensor& got = log.outputs[i];
        for (std::int64_t j = 0; j < ref.numel(); ++j) {
          if (ref[j] != got[j]) {
            std::cerr << "MISMATCH: request " << checked << " output " << j << ": served "
                      << got[j] << " vs sequential " << ref[j] << "\n";
            return 1;
          }
        }
        ++checked;
      }
    }
    std::cout << checked << " outputs verified bit-identical to sequential execution\n";
  }
  return 0;
}
