// vsq_train — (re)train the stand-in models and cache checkpoints under
// the artifacts directory.
//
//   vsq_train [--model=resnet|bert_base|bert_large|all] [--force] [--threads=N]
//
// --force deletes the existing checkpoint first so the model retrains.
// --threads=N pins the global thread pool (0 = hardware concurrency; the
// VSQ_THREADS environment variable is the fallback) for reproducible runs
// on shared machines.
#include <cstdio>
#include <iostream>

#include "exp/experiment_context.h"
#include "models/zoo.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 1;
  const std::string which = args.get_str("model", "all");
  const bool force = args.get_flag("force");

  ModelZoo zoo(artifacts_dir());
  const auto maybe_remove = [&](const char* ckpt) {
    if (force) std::remove((zoo.artifacts_dir() + "/" + ckpt).c_str());
  };

  if (which == "resnet" || which == "all") {
    maybe_remove("resnetv.vsqa");
    auto m = zoo.resnet();
    std::cout << "resnetv: top-1 " << eval_resnet(*m, zoo.image_test()) << "%\n";
  }
  if (which == "bert_base" || which == "all") {
    maybe_remove("bert_base.vsqa");
    auto m = zoo.bert_base();
    std::cout << "bert_base: F1 " << eval_transformer(*m, zoo.span_test()) << "\n";
  }
  if (which == "bert_large" || which == "all") {
    maybe_remove("bert_large.vsqa");
    auto m = zoo.bert_large();
    std::cout << "bert_large: F1 " << eval_transformer(*m, zoo.span_test()) << "\n";
  }
  if (which != "resnet" && which != "bert_base" && which != "bert_large" && which != "all") {
    std::cerr << "unknown --model=" << which << "\n";
    return 1;
  }
  return 0;
}
