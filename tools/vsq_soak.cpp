// vsq_soak — randomized multi-model soak driver for the ModelRegistry
// (src/serve/registry.h), with a differential audit: every served response
// is compared bit-for-bit against a fresh sequential single-sample
// reference runner built independently of the serving stack. K client
// threads hammer the registry with interleaved traffic across every
// loaded model (MLP and CNN programs), submit random-size request bursts
// to vary batch pressure, and a chaos thread hot-unloads and reloads
// models mid-run — the audit must stay clean through all of it. This is
// the standing concurrency oracle for the serving engine: any batching,
// routing, caching or drain bug that alters even one output bit fails the
// run.
//
// Network mode (--net) runs the same oracle ACROSS THE WIRE: an
// in-process NetServer (src/net/server.h) fronts the registry on an
// ephemeral loopback port and every client drives it through a real TCP
// NetClient, so framing, admission shedding, HTTP stats and
// slow/misbehaving peers are exercised under the identical bit-exactness
// contract. With a bounded queue and non-blocking admission
// (--queue-depth, --admission-timeout-us) overload must produce explicit
// kShed responses — never a hang, never a wrong answer — and the client-
// observed shed count must agree with both the server's frame counter and
// the registry's per-model stats. --connect=host:port points the same
// traffic at an external vsq_serve_net instead (chaos reloads and
// server-side assertions are disabled; the audit still applies when the
// remote serves the same deterministic builtins).
//
//   vsq_soak [--builtin=tiny,tiny8,tiny_conv,resnet]   in-process models
//            [--packages=name=path,name2=path]         .vsqa archives
//            [--clients=8] [--requests=1024]           total, all clients
//            [--burst-max=4]      requests submitted per client iteration
//            [--unique=24]        distinct inputs per model
//            [--reload-every=64]  hot-unload+reload one model (round robin)
//                                 each time this many requests have been
//                                 claimed (0 = off). Count-triggered, so
//                                 even a short run exercises load/unload
//                                 against live traffic deterministically.
//            [--max-batch=16] [--max-wait-us=0] [--cache=0]
//            [--scale-bits=-1] [--seed=1] [--threads=N]
//            [--no-check]         skip the differential audit
//            [--net]              traffic over TCP via in-process NetServer
//            [--connect=host:port] traffic to an external vsq_serve_net
//            [--queue-depth=0]    bounded per-model queue (0 = unbounded)
//            [--admission-timeout-us=-1]  -1 block, 0 shed at once, >0 wait
//            [--expect-shed]      fail unless overload shed >= 1 request
//            [--slow-clients]     run misbehaving-peer scenarios after the
//                                 main traffic (partial frames, stalls,
//                                 disconnects), then prove the server
//                                 still answers correctly
//            [--chaos]            a seeded storm thread randomly arms and
//                                 disarms failpoints (src/fault) across the
//                                 serving stack while traffic runs: injected
//                                 forward faults, worker deaths and stalls,
//                                 reload failures, torn writes, dropped
//                                 connections. Every injected fault must
//                                 surface as a clean typed status (counted
//                                 `faulted`, never a hang, crash, or wrong
//                                 bits); hot reloads use the rollback-safe
//                                 registry.reload() path; after the storm,
//                                 recovery probes must serve every model
//                                 bit-exactly again. Incompatible with
//                                 --connect (failpoints are in-process).
//            [--chaos-interval-ms=25]  storm re-arm cadence
//
// Exit status: 0 clean, 1 on any bit mismatch (or a model that failed to
// build/load), so CI can gate on it — ctest soak_smoke runs a short
// deterministic-seed pass over a 2-model registry, serve_net_smoke the
// network mode with forced overload + slow clients, and the slow-labeled
// soak_long the full builtin mix.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <functional>
#include <future>
#include <iterator>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "fault/failpoint.h"
#include "hw/mac_config.h"
#include "kernels/isa.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_io.h"
#include "serve/registry.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace vsq;

// One model the soak serves: how to (re)build its package — called once
// for the reference copy, once for the initial load, and again on every
// chaos reload — plus the audit state derived from the reference copy.
struct SoakModel {
  std::string name;
  std::function<QuantizedModelPackage()> build;

  QuantizedModelPackage ref_pkg;                   // independent copy
  std::unique_ptr<QuantizedModelRunner> ref;       // sequential oracle
  std::vector<Tensor> inputs;                      // [1, in] pool
  std::vector<Tensor> expected;                    // ref outputs, per input
};

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

// Resident set size in bytes (/proc/self/statm field 2, pages). 0 when
// unreadable (non-Linux), which disables the RSS gate.
std::uint64_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t size = 0, resident = 0;
  if (!(statm >> size >> resident)) return 0;
  return resident * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

// A served row equals the reference tensor bit-for-bit.
bool row_matches(const std::vector<float>& got, const Tensor& want) {
  if (static_cast<std::int64_t>(got.size()) != want.numel()) return false;
  for (std::int64_t j = 0; j < want.numel(); ++j) {
    if (got[static_cast<std::size_t>(j)] != want[j]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 2;
  const std::string packages = args.get_str("packages", "");
  const std::string builtin =
      args.get_str("builtin", packages.empty() ? "tiny,tiny8,tiny_conv,resnet" : "");
  const int clients = std::max(1, args.get_int("clients", 8));
  const auto total_requests = static_cast<std::uint64_t>(std::max(1, args.get_int("requests", 1024)));
  const int burst_max = std::max(1, args.get_int("burst-max", 4));
  const int unique = std::max(1, args.get_int("unique", 24));
  const bool check = !args.get_flag("no-check");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string connect = args.get_str("connect", "");
  const bool net = args.get_flag("net") || !connect.empty();
  const bool external = !connect.empty();
  const bool expect_shed = args.get_flag("expect-shed");
  const bool slow_clients = args.get_flag("slow-clients");
  const bool chaos = args.get_flag("chaos");
  const int chaos_interval_ms = std::max(1, args.get_int("chaos-interval-ms", 25));
  if (chaos && external) {
    std::cerr << "vsq_soak: --chaos injects in-process failpoints and cannot target an "
                 "external server (--connect)\n";
    return 2;
  }
  // An external server cannot be chaos-reloaded from here.
  const auto reload_every = external ? 0ull
      : static_cast<std::uint64_t>(std::max(0, args.get_int("reload-every", 64)));

  ServeConfig cfg;
  cfg.max_batch = std::max(1, args.get_int("max-batch", 16));
  cfg.max_wait_us = std::max(0, args.get_int("max-wait-us", 0));
  cfg.cache_entries = static_cast<std::size_t>(std::max(0, args.get_int("cache", 0)));
  cfg.scale_product_bits = args.get_int("scale-bits", -1);
  cfg.queue_depth = static_cast<std::size_t>(std::max(0, args.get_int("queue-depth", 0)));
  cfg.admission_timeout_us = args.get_int("admission-timeout-us", -1);
  if (chaos) {
    // Injected worker deaths/stalls are routine under the storm: make the
    // watchdog aggressive and its restart budget effectively unlimited so
    // the session recovers rather than failing over mid-run (budget
    // exhaustion has its own dedicated unit test).
    cfg.watchdog_interval_ms = 10;
    cfg.stall_timeout_ms = 150;
    cfg.max_worker_restarts = 1 << 30;
  }
  // Sheds are only a legitimate outcome when the operator asked for
  // non-blocking admission on a bounded queue.
  const bool shed_possible = external || (cfg.queue_depth > 0 && cfg.admission_timeout_us >= 0);
  if (expect_shed && !shed_possible) {
    std::cerr << "vsq_soak: --expect-shed needs --queue-depth>0 and --admission-timeout-us>=0\n";
    return 2;
  }

  // ---- Assemble the model mix ----
  std::vector<SoakModel> models;
  for (const std::string& which : split_list(builtin, ',')) {
    models.push_back(
        SoakModel{which, [which] { return builtin_serving_package(which); }, {}, {}, {}, {}});
  }
  for (const std::string& spec : split_list(packages, ',')) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::cerr << "vsq_soak: --packages entries must be name=path, got: " << spec << "\n";
      return 2;
    }
    const std::string name = spec.substr(0, eq), path = spec.substr(eq + 1);
    models.push_back(
        SoakModel{name, [path] { return QuantizedModelPackage::load(path); }, {}, {}, {}, {}});
  }
  if (models.empty()) {
    std::cerr << "vsq_soak: no models (--builtin and --packages both empty)\n";
    return 2;
  }

  // ---- Reference oracles + deterministic input pools + registry load ----
  ModelRegistry registry(cfg);
  try {
    for (std::size_t m = 0; m < models.size(); ++m) {
      SoakModel& sm = models[m];
      sm.ref_pkg = sm.build();
      sm.ref = std::make_unique<QuantizedModelRunner>(sm.ref_pkg, cfg.scale_product_bits);
      const std::int64_t in = sm.ref->in_features();
      Rng rng(seed + 7919ull * (m + 1));
      for (int i = 0; i < unique; ++i) {
        Tensor t(Shape{1, in});
        for (auto& v : t.span()) v = static_cast<float>(rng.normal());
        sm.inputs.push_back(std::move(t));
      }
      if (check) {
        // The differential oracle: sequential single-sample execution
        // through an independently built runner, computed before any
        // serving traffic exists.
        for (const Tensor& t : sm.inputs) sm.expected.push_back(sm.ref->forward(t));
      }
      // A copy of the already-built package is just as independent of the
      // oracle runner as a second build() would be, without repeating the
      // most expensive setup work (chaos reloads still rebuild). An
      // external server loads its own copies; ours would just idle.
      if (!external) registry.load(sm.name, sm.ref_pkg);
    }
  } catch (const std::exception& e) {
    std::cerr << "vsq_soak: model setup failed: " << e.what() << "\n";
    return 1;
  }

  // ---- Network front-end (when requested) ----
  std::unique_ptr<vsq::net::NetServer> server;
  std::string host = "127.0.0.1";
  int port = 0;
  if (net && !external) {
    vsq::net::NetServerConfig net_cfg;  // ephemeral loopback port
    net_cfg.max_connections = clients + 8;  // headroom for the HTTP/slow probes
    // Short deadlines so the slow-client scenarios resolve in test time.
    net_cfg.idle_timeout_ms = 5000;
    net_cfg.frame_timeout_ms = 1000;
    net_cfg.write_timeout_ms = 2000;
    server = std::make_unique<vsq::net::NetServer>(registry, net_cfg);
    port = server->port();
  } else if (external) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "vsq_soak: --connect must be host:port, got: " << connect << "\n";
      return 2;
    }
    host = connect.substr(0, colon);
    port = std::stoi(connect.substr(colon + 1));
  }

  std::cout << "soaking " << models.size() << " models (";
  for (std::size_t m = 0; m < models.size(); ++m) {
    std::cout << (m ? ", " : "") << models[m].name << " " << models[m].ref->in_features()
              << "->" << models[m].ref->out_features();
  }
  std::cout << "): " << clients << " clients, " << total_requests
            << " requests, burst<=" << burst_max << ", max_batch=" << cfg.max_batch
            << ", reload every " << reload_every << " requests";
  if (net) std::cout << ", over TCP " << host << ":" << port;
  if (chaos) std::cout << ", chaos storm every " << chaos_interval_ms << "ms";
  std::cout << "\n";
  std::cout << "cpu: " << isa::summary() << "\n";

  const std::uint64_t rss_before = (net || chaos) && !external ? rss_bytes() : 0;

  // ---- Chaos: hot unload + reload, round-robin, triggered every
  // `reload_every` claimed requests. The client whose burst claim crosses
  // a trigger point performs the cycle inline while every other client
  // keeps hammering the registry — so load/unload always overlaps live
  // traffic, and the number of cycles is deterministic for a given
  // request budget (unlike a timer, which a fast machine outruns).
  std::atomic<std::uint64_t> reloads{0}, reload_failures{0}, injected_reload_failures{0};
  std::atomic<std::uint64_t> reload_seq{0};  // round-robin model cursor
  std::mutex chaos_mu;  // one cycle at a time (two could race one name)
  const auto chaos_cycle = [&] {
    std::lock_guard chaos_lock(chaos_mu);
    const SoakModel& sm =
        models[reload_seq.fetch_add(1, std::memory_order_relaxed) % models.size()];
    try {
      if (chaos) {
        // Rollback-safe path: reload() swaps only a fully built
        // replacement, so a failure — including the storm's injected
        // reload/package faults — leaves the old incarnation serving with
        // no unrouted gap. Injected failures are therefore expected and
        // harmless here; anything else is still a real bug.
        try {
          registry.reload(sm.name, sm.build());
          reloads.fetch_add(1, std::memory_order_relaxed);
        } catch (const fault::FailpointError&) {
          injected_reload_failures.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        registry.unload(sm.name);  // drains in-flight work for this model
        registry.load(sm.name, sm.build());
        reloads.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const std::exception& e) {
      // A failed rebuild would leave the model unrouted; surface it.
      reload_failures.fetch_add(1, std::memory_order_relaxed);
      std::cerr << "vsq_soak: reload of " << sm.name << " failed: " << e.what() << "\n";
    }
  };

  // ---- Failpoint storm: a seeded thread that randomly arms, re-arms and
  // clears fault injection across the whole serving stack while the
  // clients run. The oracle's burden is unchanged — every served row must
  // still be bit-exact — faults may only ADD clean typed failures.
  std::atomic<bool> storm_stop{false};
  std::thread storm;
  if (chaos) {
    struct ChaosArm {
      const char* point;
      const char* spec;
      bool net_only;
    };
    static const ChaosArm kStorm[] = {
        {"serve.batcher.pre_forward", "10%error(chaos: injected forward fault)", false},
        {"serve.batcher.worker_stall", "5%delay(20000)", false},
        {"serve.batcher.worker_stall", "1*delay(250000)", false},  // trips the stall watchdog
        {"serve.batcher.worker_exit", "1*trigger", false},         // worker death + restart
        {"serve.registry.reload", "50%error(chaos: injected reload fault)", false},
        {"package.load.validate", "50%error(chaos: injected package fault)", false},
        {"net.server.write.partial", "5%trigger", true},
        {"net.server.read.pre_body", "5%error(chaos: injected read fault)", true},
        {"net.server.accept", "3%trigger", true},
        {"net.client.connect", "20%error(chaos: injected connect fault)", true},
    };
    storm = std::thread([&, seed] {
      Rng rng(seed ^ 0xc4a05f00dull);
      while (!storm_stop.load(std::memory_order_relaxed)) {
        const auto pick = rng.uniform_u64(std::size(kStorm) + 2);
        if (pick >= std::size(kStorm)) {
          // Periodic full disarm: the stack must also serve cleanly in the
          // gaps, and re-arming keeps one-shot policies firing.
          fault::disable_all();
        } else {
          const ChaosArm& arm = kStorm[pick];
          if (!arm.net_only || net) fault::enable(arm.point, arm.spec);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(chaos_interval_ms));
      }
      fault::disable_all();
    });
  }

  // ---- Client threads ----
  std::atomic<std::uint64_t> remaining{total_requests};
  std::atomic<std::uint64_t> completed{0}, rejected{0}, shed{0}, dropped{0}, mismatches{0},
      audited{0};
  // Chaos-only: requests that failed with a clean typed error attributable
  // to an injected fault (kError/kUnavailable frames, broken promises,
  // transport failures from torn writes or dropped connections). Outside
  // --chaos these same outcomes count as `dropped` and fail the run.
  std::atomic<std::uint64_t> faulted{0};
  // Per-model completions: the oracle demands every model actually served
  // (a reload bug could otherwise starve one model into 100% rejections
  // while the totals still look healthy).
  std::vector<std::atomic<std::uint64_t>> model_completed(models.size());
  std::mutex report_mu;  // first few mismatch reports, unscrambled
  const auto report = [&](const std::string& what) {
    std::lock_guard lock(report_mu);
    std::cerr << what << "\n";
  };

  // Audit + count one served row; shared by the in-process and network
  // paths so the two modes cannot drift on what "correct" means.
  const auto account_row = [&](int c, std::size_t m, std::size_t idx,
                               const std::vector<float>& row) {
    completed.fetch_add(1, std::memory_order_relaxed);
    model_completed[m].fetch_add(1, std::memory_order_relaxed);
    if (!check) return;
    audited.fetch_add(1, std::memory_order_relaxed);
    if (!row_matches(row, models[m].expected[idx])) {
      const auto n = mismatches.fetch_add(1, std::memory_order_relaxed);
      if (n < 8) {
        report("MISMATCH: client " + std::to_string(c) + " model " + models[m].name +
               " input " + std::to_string(idx) +
               ": served response differs from sequential reference");
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 104729ull * static_cast<std::uint64_t>(c + 1));
      std::optional<vsq::net::NetClient> client;
      std::vector<std::pair<std::size_t, std::size_t>> sent;  // (model, input idx)
      std::vector<std::future<Tensor>> futures;
      std::vector<float> row;
      for (;;) {
        // Claim a burst of 1..burst_max requests from the global budget:
        // random burst sizes vary how many rows each batcher coalesces.
        const auto want = 1 + rng.uniform_u64(static_cast<std::uint64_t>(burst_max));
        std::uint64_t got = 0;
        std::uint64_t rem = remaining.load(std::memory_order_relaxed);
        while (rem > 0 && !remaining.compare_exchange_weak(rem, rem - std::min(want, rem))) {
        }
        got = std::min(want, rem);
        if (got == 0) return;
        if (reload_every > 0) {
          // One cycle per trigger boundary this claim crossed (a burst can
          // straddle several when reload_every <= burst_max, and the
          // deterministic total-cycle count must not depend on how bursts
          // happen to land on the boundaries).
          const std::uint64_t before = total_requests - rem;
          const std::uint64_t cycles =
              (before + got) / reload_every - before / reload_every;
          for (std::uint64_t k = 0; k < cycles; ++k) chaos_cycle();
        }

        if (net) {
          // Network path: one persistent connection per client, closed-
          // loop request/response. Every outcome is an explicit wire
          // status — a transport failure (timeout, dead connection) is a
          // hang/wedge bug by definition and fails the run as `dropped`.
          for (std::uint64_t i = 0; i < got; ++i) {
            const auto m = static_cast<std::size_t>(rng.uniform_u64(models.size()));
            const auto idx =
                static_cast<std::size_t>(rng.uniform_u64(models[m].inputs.size()));
            // Mostly kNormal with a kLow minority, so the lane headroom
            // logic runs under real traffic (kLow sheds first).
            const auto prio = rng.uniform_u64(4) == 0 ? Priority::kLow : Priority::kNormal;
            const Tensor& in = models[m].inputs[idx];
            row.assign(in.data(), in.data() + in.numel());
            try {
              if (!client) client.emplace(host, port, 10000);
              const vsq::net::ResponseFrame resp =
                  client->infer(models[m].name, row, prio);
              switch (resp.status) {
                case vsq::net::Status::kOk:
                  account_row(c, m, idx, resp.row);
                  break;
                case vsq::net::Status::kShed:
                  shed.fetch_add(1, std::memory_order_relaxed);
                  break;
                case vsq::net::Status::kUnknownModel:
                case vsq::net::Status::kUnavailable:
                  // Model mid-reload (or, under chaos, a freshly killed
                  // worker): graceful rejection, never a wrong answer.
                  rejected.fetch_add(1, std::memory_order_relaxed);
                  break;
                default:
                  if (chaos) {
                    // Injected forward faults surface as typed kError
                    // frames — exactly the contract chaos verifies.
                    faulted.fetch_add(1, std::memory_order_relaxed);
                    break;
                  }
                  dropped.fetch_add(1, std::memory_order_relaxed);
                  report("vsq_soak: unexpected status " +
                         std::string(vsq::net::status_name(resp.status)) + ": " + resp.message);
                  break;
              }
            } catch (const std::exception& e) {
              if (chaos) {
                // Torn writes, injected read faults and dropped/refused
                // connections all land here as clean transport errors.
                faulted.fetch_add(1, std::memory_order_relaxed);
              } else {
                dropped.fetch_add(1, std::memory_order_relaxed);
                report("vsq_soak: transport failure: " + std::string(e.what()));
              }
              client.reset();  // next request reconnects
            }
          }
          continue;
        }

        sent.clear();
        futures.clear();
        for (std::uint64_t i = 0; i < got; ++i) {
          const auto m = static_cast<std::size_t>(rng.uniform_u64(models.size()));
          const auto idx =
              static_cast<std::size_t>(rng.uniform_u64(models[m].inputs.size()));
          try {
            futures.push_back(registry.submit(models[m].name, models[m].inputs[idx]));
            sent.emplace_back(m, idx);
          } catch (const QueueFullError&) {
            // Bounded queue + non-blocking admission: explicit shed.
            shed.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::out_of_range&) {
            // Model mid-reload, not currently routed: a graceful
            // rejection, never a wrong answer.
            rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::runtime_error&) {
            // Pinned session whose queue just closed for the drain: same
            // reload collateral class.
            rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            // Anything else (e.g. a shape rejection) is a serving bug,
            // not reload collateral — fail the run.
            if (chaos) faulted.fetch_add(1, std::memory_order_relaxed);
            else dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          Tensor y;
          try {
            y = futures[i].get();
          } catch (const std::exception&) {
            // NOT a reload rejection: submit() accepted this request, and
            // the registry contract says every accepted request resolves
            // (unload drains before returning). A throwing future is a
            // dropped answer — a serving bug — and fails the run below.
            // Under chaos it is the expected face of an injected forward
            // fault or worker death (typed error / broken promise).
            if (chaos) faulted.fetch_add(1, std::memory_order_relaxed);
            else dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          row.assign(y.data(), y.data() + y.numel());
          account_row(c, sent[i].first, sent[i].second, row);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // ---- Chaos teardown + recovery probes: after the storm every fault is
  // disarmed, and the stack must serve every model bit-exactly again —
  // injected failures were transient by construction, so lingering
  // unavailability would mean the recovery machinery (watchdog restart,
  // reload rollback) left permanent damage.
  if (chaos) {
    storm_stop.store(true);
    storm.join();  // its last act is fault::disable_all()
    if (fault::total_fires() == 0) {
      std::cerr << "vsq_soak: --chaos ran but no failpoint ever fired (storm ineffective)\n";
      return 1;
    }
    std::cout << "chaos storm: " << fault::total_fires() << " injected faults, "
              << faulted.load() << " requests faulted cleanly, "
              << injected_reload_failures.load() << " reloads failed by injection\n";
    for (std::size_t m = 0; m < models.size(); ++m) {
      bool recovered = false;
      std::string last_error = "no attempt made";
      for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
        try {
          std::vector<float> got;
          if (net) {
            vsq::net::NetClient probe(host, port, 10000);
            vsq::net::RetryPolicy policy;
            policy.max_attempts = 8;
            policy.total_deadline_ms = 10000;
            policy.seed = seed + m + 1;
            const vsq::net::ResponseFrame resp = probe.infer_retry(
                models[m].name,
                std::vector<float>(models[m].inputs[0].data(),
                                   models[m].inputs[0].data() + models[m].inputs[0].numel()),
                Priority::kHigh, policy);
            if (resp.status != vsq::net::Status::kOk) {
              last_error = std::string(vsq::net::status_name(resp.status)) + ": " + resp.message;
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              continue;
            }
            got = resp.row;
          } else {
            const Tensor y = registry.infer(models[m].name, models[m].inputs[0]);
            got.assign(y.data(), y.data() + y.numel());
          }
          if (check && !row_matches(got, models[m].expected[0])) {
            std::cerr << "vsq_soak: post-chaos probe of " << models[m].name
                      << " MISMATCHED the sequential reference\n";
            return 1;
          }
          recovered = true;
        } catch (const std::exception& e) {
          last_error = e.what();
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      if (!recovered) {
        std::cerr << "vsq_soak: model " << models[m].name
                  << " never recovered after the chaos storm: " << last_error << "\n";
        return 1;
      }
    }
    std::cout << "post-chaos recovery probes passed (every model serves bit-exactly)\n";
  }

  // ---- Slow / misbehaving clients: every scenario must cost the server
  // at most a bounded wait, never a wedged connection slot or a leaked
  // promise — proven by a normal request per model succeeding afterwards.
  if (net && slow_clients) {
    std::cout << "running slow-client scenarios\n";
    try {
      {  // half a header, then vanish
        const int fd = vsq::net::connect_tcp(host, port, 2000);
        vsq::net::write_full(fd, "VS", 2, 1000);
        vsq::net::close_fd(fd);
      }
      {  // garbage magic
        const int fd = vsq::net::connect_tcp(host, port, 2000);
        vsq::net::write_full(fd, "XXXXXXXX", 8, 1000);
        char resp[64];
        // The server answers kBadRequest and closes; draining is optional
        // for the peer, but doing so proves the response actually came.
        vsq::net::read_full(fd, resp, sizeof(resp), 2000, 500);
        vsq::net::close_fd(fd);
      }
      {  // header promising a body that never arrives (mid-frame stall)
        const int fd = vsq::net::connect_tcp(host, port, 2000);
        std::uint8_t header[vsq::net::kHeaderBytes];
        vsq::net::encode_header(100, header);
        vsq::net::write_full(fd, header, sizeof(header), 1000);
        vsq::net::write_full(fd, "abc", 3, 1000);  // 3 of the promised 100
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));  // > frame timeout
        vsq::net::close_fd(fd);
      }
      {  // a full valid request, then disconnect without reading the answer
        const int fd = vsq::net::connect_tcp(host, port, 2000);
        vsq::net::RequestFrame req;
        req.model = models[0].name;
        const Tensor& in = models[0].inputs[0];
        req.row.assign(in.data(), in.data() + in.numel());
        const auto frame = vsq::net::encode_request(req);
        vsq::net::write_full(fd, frame.data(), frame.size(), 1000);
        vsq::net::close_fd(fd);  // the accepted request still executes server-side
      }
    } catch (const std::exception& e) {
      std::cerr << "vsq_soak: slow-client scenario failed to run: " << e.what() << "\n";
      return 1;
    }
    // The proof: the server still answers every model, correctly, with
    // admission lanes bypassed by kHigh so a still-full queue cannot
    // confuse "not wedged" with "shedding".
    for (std::size_t m = 0; m < models.size(); ++m) {
      try {
        vsq::net::NetClient probe(host, port, 10000);
        const Tensor& in = models[m].inputs[0];
        const vsq::net::ResponseFrame resp = probe.infer(
            models[m].name, std::vector<float>(in.data(), in.data() + in.numel()),
            Priority::kHigh);
        if (resp.status != vsq::net::Status::kOk) {
          std::cerr << "vsq_soak: post-abuse probe of " << models[m].name << " got "
                    << vsq::net::status_name(resp.status) << ": " << resp.message << "\n";
          return 1;
        }
        if (check && !row_matches(resp.row, models[m].expected[0])) {
          std::cerr << "vsq_soak: post-abuse probe of " << models[m].name
                    << " MISMATCHED the sequential reference\n";
          return 1;
        }
      } catch (const std::exception& e) {
        std::cerr << "vsq_soak: post-abuse probe of " << models[m].name
                  << " failed (server wedged?): " << e.what() << "\n";
        return 1;
      }
    }
    std::cout << "slow-client scenarios passed (server answers normally after abuse)\n";
  }

  // ---- Report ----
  if (!external) registry.print_stats(std::cout);
  std::cout << "soak totals: " << completed.load() << " completed, " << shed.load()
            << " shed, " << rejected.load() << " rejected mid-reload, " << reloads.load()
            << " hot reloads";
  if (chaos) std::cout << ", " << faulted.load() << " faulted by injection";
  std::cout << "\n";
  if (reload_failures.load() > 0) {
    std::cerr << "vsq_soak: " << reload_failures.load() << " reloads FAILED\n";
    return 1;
  }
  if (dropped.load() > 0) {
    std::cerr << "vsq_soak: " << dropped.load()
              << " accepted requests never resolved (dropped answers)\n";
    return 1;
  }
  if (completed.load() == 0) {
    // A soak where nothing completed proves nothing — a drain or submit
    // regression that rejects every request must not read as a pass.
    std::cerr << "vsq_soak: no requests completed (all " << rejected.load() + shed.load()
              << " rejected or shed)\n";
    return 1;
  }
  if (reloads.load() == 0 && rejected.load() > 0 && !external && !chaos) {
    // Rejections are only legitimate as collateral of a hot reload; with
    // no reload cycle performed, every one of them is a serving bug.
    // (Under chaos, injected worker deaths legitimately answer
    // kUnavailable with no reload involved.)
    std::cerr << "vsq_soak: " << rejected.load()
              << " requests rejected with no reload in flight\n";
    return 1;
  }
  if (!shed_possible && shed.load() > 0) {
    std::cerr << "vsq_soak: " << shed.load()
              << " requests shed under blocking admission (must be impossible)\n";
    return 1;
  }
  if (expect_shed && shed.load() == 0) {
    std::cerr << "vsq_soak: --expect-shed but no request was shed (overload never bit)\n";
    return 1;
  }
  for (std::size_t m = 0; m < models.size(); ++m) {
    if (model_completed[m].load() == 0) {
      // Healthy totals can hide one model starved into 100% rejections.
      std::cerr << "vsq_soak: model " << models[m].name << " completed zero requests\n";
      return 1;
    }
  }

  // ---- Network-mode cross-checks: client-observed counts, the server's
  // frame counters and the registry's per-model stats must tell one story.
  if (net && !external && server) {
    // Exact ledger equality only holds without injection: a torn write
    // can send a frame (counted server-side) the client never decoded.
    if (!chaos) {
      std::uint64_t stats_shed = 0;
      for (const RegistryModelStats& m : registry.stats_all()) stats_shed += m.serve.shed;
      // Client sheds came through the wire 1:1 (QueueFullError is the only
      // shed source and every one was answered with a kShed frame). The
      // slow-client "send and vanish" request may add an extra frames_ok
      // the clients never counted, hence >= on that side.
      if (server->frames_shed() != shed.load() || stats_shed != shed.load()) {
        std::cerr << "vsq_soak: shed counters disagree: clients saw " << shed.load()
                  << ", server sent " << server->frames_shed() << ", registry recorded "
                  << stats_shed << "\n";
        return 1;
      }
    }
    if (server->frames_ok() < completed.load()) {
      std::cerr << "vsq_soak: server frames_ok " << server->frames_ok()
                << " < client completions " << completed.load() << "\n";
      return 1;
    }
    try {
      if (vsq::net::http_get(host, port, "/healthz") != "ok\n") {
        std::cerr << "vsq_soak: /healthz did not answer ok\n";
        return 1;
      }
      const std::string stats = vsq::net::http_get(host, port, "/stats");
      if (stats.find("\"queue_depth\"") == std::string::npos ||
          stats.find("\"frames_by_status\"") == std::string::npos) {
        std::cerr << "vsq_soak: /stats JSON missing expected counters: " << stats << "\n";
        return 1;
      }
      if (!chaos &&
          stats.find("\"frames_shed\":" + std::to_string(shed.load())) == std::string::npos) {
        std::cerr << "vsq_soak: /stats JSON shed count disagrees with clients: " << stats << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "vsq_soak: stats endpoint failed: " << e.what() << "\n";
      return 1;
    }
    server->stop();
  }
  if (rss_before > 0) {
    const std::uint64_t rss_after = rss_bytes();
    // Generous backstop: bounded latency windows + bounded queues mean
    // serving memory is flat even under fault churn (restarted workers,
    // rolled-back reloads); catch only a real leak, not allocator noise.
    if (rss_after > rss_before + (64ull << 20)) {
      std::cerr << "vsq_soak: RSS grew " << (rss_after - rss_before) / (1ull << 20)
                << " MiB over the soak (leak?)\n";
      return 1;
    }
    std::cout << "rss: " << rss_before / (1ull << 20) << " -> " << rss_after / (1ull << 20)
              << " MiB\n";
  }

  if (check) {
    if (mismatches.load() > 0) {
      std::cerr << "vsq_soak: " << mismatches.load() << " of " << audited.load()
                << " audited responses MISMATCHED the sequential reference\n";
      return 1;
    }
    if (audited.load() == 0) {
      std::cerr << "vsq_soak: audit enabled but zero responses audited\n";
      return 1;
    }
    std::cout << audited.load() << " responses verified bit-identical to sequential execution\n";
  }
  return 0;
}
