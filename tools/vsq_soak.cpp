// vsq_soak — randomized multi-model soak driver for the ModelRegistry
// (src/serve/registry.h), with a differential audit: every served response
// is compared bit-for-bit against a fresh sequential single-sample
// reference runner built independently of the serving stack. K client
// threads hammer the registry with interleaved traffic across every
// loaded model (MLP and CNN programs), submit random-size request bursts
// to vary batch pressure, and a chaos thread hot-unloads and reloads
// models mid-run — the audit must stay clean through all of it. This is
// the standing concurrency oracle for the serving engine: any batching,
// routing, caching or drain bug that alters even one output bit fails the
// run.
//
//   vsq_soak [--builtin=tiny,tiny8,tiny_conv,resnet]   in-process models
//            [--packages=name=path,name2=path]         .vsqa archives
//            [--clients=8] [--requests=1024]           total, all clients
//            [--burst-max=4]      requests submitted per client iteration
//            [--unique=24]        distinct inputs per model
//            [--reload-every=64]  hot-unload+reload one model (round robin)
//                                 each time this many requests have been
//                                 claimed (0 = off). Count-triggered, so
//                                 even a short run exercises load/unload
//                                 against live traffic deterministically.
//            [--max-batch=16] [--max-wait-us=0] [--cache=0]
//            [--scale-bits=-1] [--seed=1] [--threads=N]
//            [--no-check]         skip the differential audit
//
// Exit status: 0 clean, 1 on any bit mismatch (or a model that failed to
// build/load), so CI can gate on it — ctest soak_smoke runs a short
// deterministic-seed pass over a 2-model registry, and the slow-labeled
// soak_long the full builtin mix.
#include <atomic>
#include <exception>
#include <functional>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "kernels/isa.h"
#include "models/resnetv.h"
#include "models/zoo.h"
#include "serve/registry.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace vsq;

// One model the soak serves: how to (re)build its package — called once
// for the reference copy, once for the initial load, and again on every
// chaos reload — plus the audit state derived from the reference copy.
struct SoakModel {
  std::string name;
  std::function<QuantizedModelPackage()> build;

  QuantizedModelPackage ref_pkg;                   // independent copy
  std::unique_ptr<QuantizedModelRunner> ref;       // sequential oracle
  std::vector<Tensor> inputs;                      // [1, in] pool
  std::vector<Tensor> expected;                    // ref outputs, per input
};

QuantizedModelPackage build_builtin(const std::string& which) {
  if (which == "tiny") {
    return tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  }
  if (which == "tiny8") {
    // Same MLP graph at a wider integer configuration: exercises a second
    // set of operand widths (and scale formats) through the same registry.
    return tiny_mlp_package(MacConfig::parse("8/8/6/6"));
  }
  MacConfig mac = MacConfig::parse("4/8/6/10");
  mac.act_unsigned = true;  // post-ReLU activations, as vsq_quantize does
  if (which == "tiny_conv") {
    return tiny_conv_package(mac);
  }
  if (which == "resnet") {
    // Untrained ResNetV at the default 16x16 scale: the full residual CNN
    // topology (stem, plain + projection-shortcut blocks, pool, fc head)
    // without needing a trained checkpoint. Deterministic seeds make every
    // rebuild bit-identical, which the differential audit relies on.
    ResNetVConfig config;
    config.blocks_per_stage = 1;
    config.seed = 11;
    ResNetV model(config);
    model.fold_batchnorm();
    Rng rng(11);
    Tensor calib(Shape{8, config.in_h, config.in_w, config.in_c});
    for (auto& v : calib.span()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    QuantizedModelPackage pkg =
        calibrate_and_export(model.gemms(), mac.weight_spec(), mac.act_spec(),
                             [&] { model.forward(calib, false); });
    pkg.program = model.export_program();
    pkg.in_h = config.in_h;
    pkg.in_w = config.in_w;
    pkg.in_c = config.in_c;
    return pkg;
  }
  throw std::invalid_argument("vsq_soak: unknown builtin model " + which);
}

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 2;
  const std::string packages = args.get_str("packages", "");
  const std::string builtin =
      args.get_str("builtin", packages.empty() ? "tiny,tiny8,tiny_conv,resnet" : "");
  const int clients = std::max(1, args.get_int("clients", 8));
  const auto total_requests = static_cast<std::uint64_t>(std::max(1, args.get_int("requests", 1024)));
  const int burst_max = std::max(1, args.get_int("burst-max", 4));
  const int unique = std::max(1, args.get_int("unique", 24));
  const auto reload_every =
      static_cast<std::uint64_t>(std::max(0, args.get_int("reload-every", 64)));
  const bool check = !args.get_flag("no-check");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  ServeConfig cfg;
  cfg.max_batch = std::max(1, args.get_int("max-batch", 16));
  cfg.max_wait_us = std::max(0, args.get_int("max-wait-us", 0));
  cfg.cache_entries = static_cast<std::size_t>(std::max(0, args.get_int("cache", 0)));
  cfg.scale_product_bits = args.get_int("scale-bits", -1);

  // ---- Assemble the model mix ----
  std::vector<SoakModel> models;
  for (const std::string& which : split_list(builtin, ',')) {
    models.push_back(SoakModel{which, [which] { return build_builtin(which); }, {}, {}, {}, {}});
  }
  for (const std::string& spec : split_list(packages, ',')) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::cerr << "vsq_soak: --packages entries must be name=path, got: " << spec << "\n";
      return 2;
    }
    const std::string name = spec.substr(0, eq), path = spec.substr(eq + 1);
    models.push_back(
        SoakModel{name, [path] { return QuantizedModelPackage::load(path); }, {}, {}, {}, {}});
  }
  if (models.empty()) {
    std::cerr << "vsq_soak: no models (--builtin and --packages both empty)\n";
    return 2;
  }

  // ---- Reference oracles + deterministic input pools + registry load ----
  ModelRegistry registry(cfg);
  try {
    for (std::size_t m = 0; m < models.size(); ++m) {
      SoakModel& sm = models[m];
      sm.ref_pkg = sm.build();
      sm.ref = std::make_unique<QuantizedModelRunner>(sm.ref_pkg, cfg.scale_product_bits);
      const std::int64_t in = sm.ref->in_features();
      Rng rng(seed + 7919ull * (m + 1));
      for (int i = 0; i < unique; ++i) {
        Tensor t(Shape{1, in});
        for (auto& v : t.span()) v = static_cast<float>(rng.normal());
        sm.inputs.push_back(std::move(t));
      }
      if (check) {
        // The differential oracle: sequential single-sample execution
        // through an independently built runner, computed before any
        // serving traffic exists.
        for (const Tensor& t : sm.inputs) sm.expected.push_back(sm.ref->forward(t));
      }
      // A copy of the already-built package is just as independent of the
      // oracle runner as a second build() would be, without repeating the
      // most expensive setup work (chaos reloads still rebuild).
      registry.load(sm.name, sm.ref_pkg);
    }
  } catch (const std::exception& e) {
    std::cerr << "vsq_soak: model setup failed: " << e.what() << "\n";
    return 1;
  }

  std::cout << "soaking " << models.size() << " models (";
  for (std::size_t m = 0; m < models.size(); ++m) {
    std::cout << (m ? ", " : "") << models[m].name << " " << models[m].ref->in_features()
              << "->" << models[m].ref->out_features();
  }
  std::cout << "): " << clients << " clients, " << total_requests
            << " requests, burst<=" << burst_max << ", max_batch=" << cfg.max_batch
            << ", reload every " << reload_every << " requests\n";
  std::cout << "cpu: " << isa::summary() << "\n";

  // ---- Chaos: hot unload + reload, round-robin, triggered every
  // `reload_every` claimed requests. The client whose burst claim crosses
  // a trigger point performs the cycle inline while every other client
  // keeps hammering the registry — so load/unload always overlaps live
  // traffic, and the number of cycles is deterministic for a given
  // request budget (unlike a timer, which a fast machine outruns).
  std::atomic<std::uint64_t> reloads{0}, reload_failures{0};
  std::atomic<std::uint64_t> reload_seq{0};  // round-robin model cursor
  std::mutex chaos_mu;  // one cycle at a time (two could race one name)
  const auto chaos_cycle = [&] {
    std::lock_guard chaos_lock(chaos_mu);
    const SoakModel& sm =
        models[reload_seq.fetch_add(1, std::memory_order_relaxed) % models.size()];
    try {
      registry.unload(sm.name);  // drains in-flight work for this model
      registry.load(sm.name, sm.build());
      reloads.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      // A failed rebuild would leave the model unrouted; surface it.
      reload_failures.fetch_add(1, std::memory_order_relaxed);
      std::cerr << "vsq_soak: reload of " << sm.name << " failed: " << e.what() << "\n";
    }
  };

  // ---- Client threads ----
  std::atomic<std::uint64_t> remaining{total_requests};
  std::atomic<std::uint64_t> completed{0}, rejected{0}, dropped{0}, mismatches{0}, audited{0};
  // Per-model completions: the oracle demands every model actually served
  // (a reload bug could otherwise starve one model into 100% rejections
  // while the totals still look healthy).
  std::vector<std::atomic<std::uint64_t>> model_completed(models.size());
  std::mutex report_mu;  // first few mismatch reports, unscrambled
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 104729ull * static_cast<std::uint64_t>(c + 1));
      std::vector<std::pair<std::size_t, std::size_t>> sent;  // (model, input idx)
      std::vector<std::future<Tensor>> futures;
      for (;;) {
        // Claim a burst of 1..burst_max requests from the global budget:
        // random burst sizes vary how many rows each batcher coalesces.
        const auto want = 1 + rng.uniform_u64(static_cast<std::uint64_t>(burst_max));
        std::uint64_t got = 0;
        std::uint64_t rem = remaining.load(std::memory_order_relaxed);
        while (rem > 0 && !remaining.compare_exchange_weak(rem, rem - std::min(want, rem))) {
        }
        got = std::min(want, rem);
        if (got == 0) return;
        if (reload_every > 0) {
          // One cycle per trigger boundary this claim crossed (a burst can
          // straddle several when reload_every <= burst_max, and the
          // deterministic total-cycle count must not depend on how bursts
          // happen to land on the boundaries).
          const std::uint64_t before = total_requests - rem;
          const std::uint64_t cycles =
              (before + got) / reload_every - before / reload_every;
          for (std::uint64_t k = 0; k < cycles; ++k) chaos_cycle();
        }

        sent.clear();
        futures.clear();
        for (std::uint64_t i = 0; i < got; ++i) {
          const auto m = static_cast<std::size_t>(rng.uniform_u64(models.size()));
          const auto idx =
              static_cast<std::size_t>(rng.uniform_u64(models[m].inputs.size()));
          try {
            futures.push_back(registry.submit(models[m].name, models[m].inputs[idx]));
            sent.emplace_back(m, idx);
          } catch (const std::out_of_range&) {
            // Model mid-reload, not currently routed: a graceful
            // rejection, never a wrong answer.
            rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::runtime_error&) {
            // Pinned session whose queue just closed for the drain: same
            // reload collateral class.
            rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            // Anything else (e.g. a shape rejection) is a serving bug,
            // not reload collateral — fail the run.
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          Tensor y;
          try {
            y = futures[i].get();
          } catch (const std::exception&) {
            // NOT a reload rejection: submit() accepted this request, and
            // the registry contract says every accepted request resolves
            // (unload drains before returning). A throwing future is a
            // dropped answer — a serving bug — and fails the run below.
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
          model_completed[sent[i].first].fetch_add(1, std::memory_order_relaxed);
          if (!check) continue;
          const SoakModel& sm = models[sent[i].first];
          const Tensor& want_out = sm.expected[sent[i].second];
          bool ok = y.numel() == want_out.numel();
          for (std::int64_t j = 0; ok && j < want_out.numel(); ++j) ok = y[j] == want_out[j];
          audited.fetch_add(1, std::memory_order_relaxed);
          if (!ok) {
            const auto n = mismatches.fetch_add(1, std::memory_order_relaxed);
            if (n < 8) {
              std::lock_guard lock(report_mu);
              std::cerr << "MISMATCH: client " << c << " model " << sm.name << " input "
                        << sent[i].second << ": served response differs from sequential"
                        << " reference\n";
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // ---- Report ----
  registry.print_stats(std::cout);
  std::cout << "soak totals: " << completed.load() << " completed, " << rejected.load()
            << " rejected mid-reload, " << reloads.load() << " hot reloads\n";
  if (reload_failures.load() > 0) {
    std::cerr << "vsq_soak: " << reload_failures.load() << " reloads FAILED\n";
    return 1;
  }
  if (dropped.load() > 0) {
    std::cerr << "vsq_soak: " << dropped.load()
              << " accepted requests never resolved (dropped answers)\n";
    return 1;
  }
  if (completed.load() == 0) {
    // A soak where nothing completed proves nothing — a drain or submit
    // regression that rejects every request must not read as a pass.
    std::cerr << "vsq_soak: no requests completed (all " << rejected.load()
              << " rejected)\n";
    return 1;
  }
  if (reloads.load() == 0 && rejected.load() > 0) {
    // Rejections are only legitimate as collateral of a hot reload; with
    // no reload cycle performed, every one of them is a serving bug.
    std::cerr << "vsq_soak: " << rejected.load()
              << " requests rejected with no reload in flight\n";
    return 1;
  }
  for (std::size_t m = 0; m < models.size(); ++m) {
    if (model_completed[m].load() == 0) {
      // Healthy totals can hide one model starved into 100% rejections.
      std::cerr << "vsq_soak: model " << models[m].name << " completed zero requests\n";
      return 1;
    }
  }
  if (check) {
    if (mismatches.load() > 0) {
      std::cerr << "vsq_soak: " << mismatches.load() << " of " << audited.load()
                << " audited responses MISMATCHED the sequential reference\n";
      return 1;
    }
    if (audited.load() == 0) {
      std::cerr << "vsq_soak: audit enabled but zero responses audited\n";
      return 1;
    }
    std::cout << audited.load() << " responses verified bit-identical to sequential execution\n";
  }
  return 0;
}
