#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Flags throughput regressions beyond a threshold so kernel speedups cannot
silently rot. Benchmarks are matched by name and compared on
items_per_second (falling back to inverse real_time when a benchmark does
not report throughput).

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--max-regress=0.15]
  compare_bench.py BASELINE.json CURRENT.json --optional=avx512_vnni
  compare_bench.py BASELINE.json CURRENT.json --update

Baseline entries whose name contains an --optional substring (repeatable)
are hardware-dependent: they are still gated when the current run reports
them, but their absence is not an error. Used for per-ISA-tier kernel
entries (e.g. BM_IntGemm/isa:avx512_vnni/...) that only exist on machines
with that instruction set.

Exit status: 0 when no benchmark regressed more than --max-regress
(default 15%), 1 otherwise. --update rewrites BASELINE.json with CURRENT's
results instead of comparing (use after an intentional perf change, on the
machine that owns the baseline).
"""

import argparse
import json
import shutil
import sys


def load_results(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if "items_per_second" in b:
            out[name] = float(b["items_per_second"])
        elif b.get("real_time", 0) > 0:
            out[name] = 1.0 / float(b["real_time"])
    return out


def human(x):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if x >= scale:
            return f"{x / scale:.2f}{unit}/s"
    return f"{x:.2f}/s"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional throughput drop (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="replace the baseline file with the current results")
    ap.add_argument("--optional", action="append", default=[], metavar="SUBSTR",
                    help="baseline entries containing SUBSTR may be absent from "
                         "the current run (hardware-dependent benchmarks); "
                         "repeatable")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline {args.baseline} updated from {args.current}")
        return 0

    base = load_results(args.baseline)
    cur = load_results(args.current)

    regressions = []
    width = max((len(n) for n in base), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(base):
        if name not in cur:
            if any(s in name for s in args.optional):
                print(f"{name:<{width}}  {human(base[name]):>12}  {'(absent)':>12}  "
                      f"-  optional")
                continue
            print(f"{name:<{width}}  {human(base[name]):>12}  {'MISSING':>12}  -")
            regressions.append((name, "missing from current run"))
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        mark = ""
        if ratio < 1.0 - args.max_regress:
            mark = "  << REGRESSION"
            regressions.append((name, f"{(1.0 - ratio) * 100:.1f}% slower"))
        print(f"{name:<{width}}  {human(base[name]):>12}  {human(cur[name]):>12}  "
              f"{ratio:5.2f}x{mark}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'(new)':>12}  {human(cur[name]):>12}  -")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regress * 100:.0f}%:", file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.max_regress * 100:.0f}% "
          f"({len(base)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
