// vsq_quantize — PTQ-calibrate a model at a hardware configuration given
// in the paper's W/A/ws/as notation and export the integer deployment
// package (quant/export.h).
//
//   vsq_quantize --model=tiny|resnet|bert_base|bert_large --config=4/8/6/10
//                [--out=artifacts/model_int.vsqa] [--vector=16] [--threads=N]
//
// --threads=N pins the global thread pool (0 = hardware concurrency; the
// VSQ_THREADS environment variable is the fallback) so benchmark runs are
// reproducible on shared machines.
//
// --model=tiny is a randomly-initialized 2-layer MLP that needs no trained
// checkpoint — it exercises the full calibrate/export path in milliseconds
// (used by the ctest smoke test).
#include <iostream>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "quant/export.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace vsq;

// Minimal GEMM-bearing model satisfying the quantize_model() interface.
struct TinyMlp {
  Linear fc1, fc2;
  ReLU relu;

  explicit TinyMlp(Rng& rng) : fc1("fc1", 64, 32, rng), fc2("fc2", 32, 8, rng) {}
  Tensor forward(const Tensor& x, bool train) {
    return fc2.forward(relu.forward(fc1.forward(x, train), train), train);
  }
  std::vector<QuantizableGemm*> gemms() { return {&fc1, &fc2}; }
};

// Calibrate all GEMMs of the model, export each as a package layer.
template <typename Model, typename CalibFn>
QuantizedModelPackage quantize_model(Model& model, const MacConfig& mac, CalibFn&& calibrate) {
  auto gemms = model.gemms();
  apply_quant_specs(gemms, mac.weight_spec(), mac.act_spec());
  set_mode_all(gemms, QuantMode::kCalibrate);
  calibrate();
  finalize_calibration(gemms);
  set_mode_all(gemms, QuantMode::kQuantEval);

  QuantizedModelPackage pkg;
  for (QuantizableGemm* g : gemms) {
    pkg.layers[g->gemm_name()] = export_gemm(*g, /*bias=*/{});
  }
  set_mode_all(gemms, QuantMode::kOff);
  return pkg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  // Pin the pool only when --threads was actually passed, so the
  // VSQ_THREADS environment fallback keeps working otherwise.
  if (!args.get_str("threads", "").empty()) {
    const int threads = args.get_int("threads", 0);
    if (threads < 0) {
      std::cerr << "--threads must be >= 0 (0 = hardware concurrency)\n";
      return 1;
    }
    ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  }
  const std::string which = args.get_str("model", "resnet");
  MacConfig mac = MacConfig::parse(args.get_str("config", "4/8/6/10"));
  mac.vector_size = args.get_int("vector", 16);
  mac.act_unsigned = which == "resnet";
  // Resolved lazily so --model=tiny with an explicit --out never touches
  // the artifacts directory.
  std::string out = args.get_str("out", "");

  QuantizedModelPackage pkg;
  if (which == "tiny") {
    // Deliberately no ModelZoo here: tiny is checkpoint-free, and the zoo
    // constructor's fingerprint check may evict cached trained models.
    Rng rng(7);
    TinyMlp model(rng);
    Tensor calib(Shape{32, 64});
    for (auto& v : calib.span()) v = static_cast<float>(rng.normal());
    pkg = quantize_model(model, mac, [&] { model.forward(calib, false); });
  } else if (which == "resnet") {
    ModelZoo zoo(artifacts_dir());
    auto model = zoo.resnet();
    pkg = quantize_model(*model, mac, [&] {
      model->forward(zoo.image_calib().batch_images(0, zoo.image_calib().size()), false);
    });
  } else if (which == "bert_base" || which == "bert_large") {
    ModelZoo zoo(artifacts_dir());
    auto model = which == "bert_large" ? zoo.bert_large() : zoo.bert_base();
    mac.act_unsigned = false;
    pkg = quantize_model(*model, mac, [&] {
      model->forward(zoo.span_calib().batch_tokens(0, zoo.span_calib().size()), false);
    });
  } else {
    std::cerr << "unknown --model=" << which << "\n";
    return 1;
  }
  if (out.empty()) out = artifacts_dir() + "/" + which + "_int.vsqa";
  pkg.save(out);
  std::cout << "exported " << pkg.layers.size() << " layers at config " << mac.str() << " ("
            << mac.granularity_label() << ") -> " << out << "\n";
  return 0;
}
