// vsq_quantize — PTQ-calibrate a model at a hardware configuration given
// in the paper's W/A/ws/as notation and export the integer deployment
// package (quant/export.h).
//
//   vsq_quantize --model=tiny|tiny_conv|tiny_bert|resnet|bert_base|bert_large
//                --config=4/8/6/10
//                [--out=artifacts/model_int.vsqa] [--vector=16] [--threads=N]
//
// --threads=N pins the global thread pool (0 = hardware concurrency; the
// VSQ_THREADS environment variable is the fallback) so benchmark runs are
// reproducible on shared machines.
//
// --model=tiny is a randomly-initialized 2-layer MLP and --model=tiny_conv
// a randomly-initialized tiny residual CNN; neither needs a trained
// checkpoint — they exercise the full calibrate/export path in
// milliseconds (used by the ctest smoke tests and servable by vsq_serve:
// their packages carry the forward program QuantizedModelRunner executes,
// tiny_conv's with conv/residual/pool ops and the input geometry).
// --model=resnet also attaches the CNN forward program, so the trained
// ResNetV package serves end-to-end.
#include <iostream>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "quant/export.h"
#include "util/args.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 1;
  const std::string which = args.get_str("model", "resnet");
  MacConfig mac = MacConfig::parse(args.get_str("config", "4/8/6/10"));
  mac.vector_size = args.get_int("vector", 16);
  mac.act_unsigned = which == "resnet" || which == "tiny_conv";
  // Resolved lazily so --model=tiny with an explicit --out never touches
  // the artifacts directory.
  std::string out = args.get_str("out", "");

  QuantizedModelPackage pkg;
  if (which == "tiny") {
    // Deliberately no ModelZoo here: tiny is checkpoint-free, and the zoo
    // constructor's fingerprint check may evict cached trained models.
    pkg = tiny_mlp_package(mac);
  } else if (which == "tiny_conv") {
    // Checkpoint-free like tiny, but a residual CNN: the package carries
    // conv geometry, the conv/residual/pool forward program and the input
    // image shape.
    pkg = tiny_conv_package(mac);
  } else if (which == "tiny_bert") {
    // Checkpoint-free transformer encoder: the package carries the
    // embed/layernorm/attention program, the sequence geometry and the fp
    // layernorm/embedding parameter sets (activations stay signed).
    pkg = tiny_bert_package(mac);
  } else if (which == "resnet") {
    ModelZoo zoo(artifacts_dir());
    auto model = zoo.resnet();
    pkg = calibrate_and_export(model->gemms(), mac.weight_spec(), mac.act_spec(), [&] {
      model->forward(zoo.image_calib().batch_images(0, zoo.image_calib().size()), false);
    });
    pkg.program = model->export_program();
    pkg.in_h = model->config().in_h;
    pkg.in_w = model->config().in_w;
    pkg.in_c = model->config().in_c;
  } else if (which == "bert_base" || which == "bert_large") {
    ModelZoo zoo(artifacts_dir());
    auto model = which == "bert_large" ? zoo.bert_large() : zoo.bert_base();
    mac.act_unsigned = false;
    pkg = calibrate_and_export(model->gemms(), mac.weight_spec(), mac.act_spec(), [&] {
      model->forward(zoo.span_calib().batch_tokens(0, zoo.span_calib().size()), false);
    });
  } else {
    std::cerr << "unknown --model=" << which << "\n";
    return 1;
  }
  if (out.empty()) out = artifacts_dir() + "/" + which + "_int.vsqa";
  pkg.save(out);
  std::cout << "exported " << pkg.layers.size() << " layers at config " << mac.str() << " ("
            << mac.granularity_label() << ") -> " << out << "\n";
  return 0;
}
