// vsq_serve_net — TCP network front-end for the multi-model serving
// registry (src/net/server.h over src/serve/registry.h). Loads builtin
// and/or archived models, binds a port, and serves the length-prefixed
// binary inference protocol plus the GET /stats and GET /healthz text
// endpoints until SIGINT/SIGTERM.
//
//   vsq_serve_net [--builtin=tiny,tiny8,...]     deterministic builtins
//                 [--packages=name=path,...]     .vsqa archives
//                 [--host=127.0.0.1] [--port=0]  0 = ephemeral, see banner
//                 [--max-connections=64]
//                 [--max-batch=16] [--max-wait-us=0] [--cache=0]
//                 [--scale-bits=-1] [--threads=N]
//                 [--queue-depth=256]            bounded per-model queue
//                 [--admission-timeout-us=0]     0 = shed immediately when
//                                                full; -1 = block (no shed)
//                 [--low-lane=0.5]               kLow admission fraction
//                 [--selfcheck]                  loopback round trip + exit
//
// Serving a network port wants explicit load shedding, so unlike the
// in-process tools the queue is bounded by default and a full queue
// answers kShed instead of stalling the connection. The startup banner
// "vsq_serve_net listening on HOST:PORT" is printed (and flushed) once
// the socket is live, so scripts can scrape the ephemeral port.
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <thread>

#include "exp/ptq.h"
#include "kernels/isa.h"
#include "net/client.h"
#include "net/server.h"
#include "util/args.h"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 2;
  const std::string packages = args.get_str("packages", "");
  const std::string builtin = args.get_str("builtin", packages.empty() ? "tiny" : "");
  const bool selfcheck = args.get_flag("selfcheck");

  ServeConfig cfg;
  cfg.max_batch = std::max(1, args.get_int("max-batch", 16));
  cfg.max_wait_us = std::max(0, args.get_int("max-wait-us", 0));
  cfg.cache_entries = static_cast<std::size_t>(std::max(0, args.get_int("cache", 0)));
  cfg.scale_product_bits = args.get_int("scale-bits", -1);
  cfg.queue_depth = static_cast<std::size_t>(std::max(0, args.get_int("queue-depth", 256)));
  cfg.admission_timeout_us = args.get_int("admission-timeout-us", 0);
  cfg.low_lane_fraction = args.get_double("low-lane", 0.5);

  vsq::net::NetServerConfig net_cfg;
  net_cfg.host = args.get_str("host", "127.0.0.1");
  net_cfg.port = args.get_int("port", 0);
  net_cfg.max_connections = std::max(1, args.get_int("max-connections", 64));

  ModelRegistry registry(cfg);
  std::vector<std::string> names;
  try {
    for (const std::string& which : split_list(builtin, ',')) {
      registry.load(which, builtin_serving_package(which));
      names.push_back(which);
    }
    for (const std::string& spec : split_list(packages, ',')) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::cerr << "vsq_serve_net: --packages entries must be name=path, got: " << spec << "\n";
        return 2;
      }
      registry.load(spec.substr(0, eq), QuantizedModelPackage::load(spec.substr(eq + 1)));
      names.push_back(spec.substr(0, eq));
    }
  } catch (const std::exception& e) {
    std::cerr << "vsq_serve_net: model load failed: " << e.what() << "\n";
    return 1;
  }
  if (names.empty()) {
    std::cerr << "vsq_serve_net: no models (--builtin and --packages both empty)\n";
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    vsq::net::NetServer server(registry, net_cfg);
    std::cout << "serving " << names.size() << " models (";
    for (std::size_t i = 0; i < names.size(); ++i) std::cout << (i ? ", " : "") << names[i];
    std::cout << "), max_batch=" << cfg.max_batch << ", queue_depth=" << cfg.queue_depth
              << ", admission_timeout_us=" << cfg.admission_timeout_us << "\n";
    std::cout << "cpu: " << isa::summary() << "\n";
    std::cout << "vsq_serve_net listening on " << server.host() << ":" << server.port()
              << std::endl;  // flushed: scripts scrape the ephemeral port from this line

    if (selfcheck) {
      // Loopback round trip through the real socket path: inference
      // against the first model, plus both text endpoints. Sequence
      // models get token rows at two lengths (exercising two pad
      // buckets over the wire); every row is audited bit-exact against
      // local sequential execution through the same runner.
      vsq::net::NetClient client(server.host(), server.port());
      const QuantizedModelRunner& runner = registry.session(names.front())->runner();
      std::vector<std::vector<float>> payloads;
      if (runner.seq()) {
        const auto max_seq = static_cast<std::size_t>(runner.max_seq());
        for (const std::size_t len : {std::max<std::size_t>(1, max_seq / 4), max_seq}) {
          std::vector<float> row(len);
          for (std::size_t j = 0; j < len; ++j) {
            row[j] = static_cast<float>((3 * j + 1) % static_cast<std::size_t>(runner.vocab()));
          }
          payloads.push_back(std::move(row));
        }
      } else {
        const auto in = static_cast<std::size_t>(runner.in_features());
        payloads.emplace_back(in, 0.25f);
      }
      vsq::net::ResponseFrame resp;
      for (const auto& payload : payloads) {
        resp = client.infer(names.front(), payload);
        if (resp.status != vsq::net::Status::kOk) {
          std::cerr << "vsq_serve_net: selfcheck inference failed: "
                    << vsq::net::status_name(resp.status) << " " << resp.message << "\n";
          return 1;
        }
        const Tensor ref = runner.forward(Tensor::from_vector(
            Shape{1, static_cast<std::int64_t>(payload.size())}, payload));
        if (static_cast<std::int64_t>(resp.row.size()) != ref.numel() ||
            std::memcmp(resp.row.data(), ref.data(),
                        resp.row.size() * sizeof(float)) != 0) {
          std::cerr << "vsq_serve_net: selfcheck wire output differs from local "
                       "sequential execution\n";
          return 1;
        }
      }
      if (vsq::net::http_get(server.host(), server.port(), "/healthz") != "ok\n") {
        std::cerr << "vsq_serve_net: selfcheck /healthz mismatch\n";
        return 1;
      }
      const std::string stats = vsq::net::http_get(server.host(), server.port(), "/stats");
      if (stats.find("\"frames_ok\":" + std::to_string(payloads.size())) == std::string::npos) {
        std::cerr << "vsq_serve_net: selfcheck /stats missing frames_ok: " << stats << "\n";
        return 1;
      }
      std::cout << "selfcheck ok: " << resp.row.size() << " output features, stats "
                << stats.size() << " bytes\n";
      return 0;
    }

    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cout << "shutting down\n";
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "vsq_serve_net: " << e.what() << "\n";
    return 1;
  }
  registry.print_stats(std::cout);
  return 0;
}
