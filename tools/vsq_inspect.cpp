// vsq_inspect — print the contents of an exported quantized-model package:
// per-layer shapes, formats, conv geometry (kernel/stride/pad and patch
// vectors for conv layers), scale statistics (sq utilization, gamma), the
// storage overhead of the per-vector scales (the paper's M/(V*N) metric,
// Sec. 4.4), and the forward program (with conv/residual/pool ops) when
// the package carries one.
//
// With --kernels, additionally resolve the package against the kernel
// dispatch registry (as a deployment would at load time) and print the
// implementation each layer's primitive bound to — op, ISA tier, panel and
// accumulator kernel names — under the current CPU and VSQ_ISA cap.
//
//   vsq_inspect --package=artifacts/resnet_int.vsqa [--threads=N] [--kernels]
#include <iostream>
#include <map>

#include "kernels/isa.h"
#include "quant/export.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 1;
  const std::string path = args.get_str("package", "artifacts/resnet_int.vsqa");
  const bool show_kernels = args.get_flag("kernels");

  const QuantizedModelPackage pkg = QuantizedModelPackage::load(path);
  std::cout << "package " << path << ": " << pkg.layers.size() << " layers";
  if (pkg.in_h > 0) {
    std::cout << ", input " << pkg.in_h << "x" << pkg.in_w << "x" << pkg.in_c << " NHWC";
  }
  if (pkg.max_seq > 0) {
    std::cout << ", sequence max_seq=" << pkg.max_seq << " dim=" << pkg.seq_dim
              << " heads=" << pkg.heads;
  }
  std::cout << "\n";
  if (!pkg.embeddings.empty() || !pkg.norms.empty()) {
    std::cout << "fp params:";
    for (const auto& [name, e] : pkg.embeddings) {
      std::cout << " emb(" << name << " vocab=" << e.vocab << " max_len=" << e.max_len
                << " dim=" << e.dim << ")";
    }
    for (const auto& [name, ln] : pkg.norms) {
      std::cout << " ln(" << name << " dim=" << ln.gamma.size() << ")";
    }
    std::cout << "\n";
  }
  if (!pkg.program.empty()) {
    std::cout << "forward program:";
    for (const ForwardStep& s : pkg.program) {
      using Op = ForwardStep::Op;
      // Every op code is named explicitly — an op this tool does not know
      // never reaches here, because the package loader rejects unknown
      // codes with "unknown program op" instead of printing garbage.
      switch (s.op) {
        case Op::kGemm: std::cout << " " << s.layer; break;
        case Op::kConv: std::cout << " conv(" << s.layer << ")"; break;
        case Op::kConvSaved: std::cout << " shortcut(" << s.layer << ")"; break;
        case Op::kSave: std::cout << " save"; break;
        case Op::kAddSaved: std::cout << " +residual"; break;
        case Op::kGlobalPool: std::cout << " gap"; break;
        case Op::kEmbed: std::cout << " embed(" << s.layer << ")"; break;
        case Op::kLayerNorm: std::cout << " ln(" << s.layer << ")"; break;
        case Op::kAttention:
          std::cout << " attn(" << s.layer << " heads=" << pkg.heads << " dim=" << pkg.seq_dim
                    << ")";
          break;
        case Op::kSoftmax: std::cout << " softmax"; break;
        case Op::kGelu: std::cout << " gelu"; break;
      }
      if (s.relu) std::cout << "+relu";
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  Table t({"Layer", "Kind", "Weights", "Fmt", "V", "Scale repr", "sq range", "Overhead %",
           "amax", "gamma"});
  double total_weight_bits = 0, total_scale_bits = 0;
  for (const auto& [name, l] : pkg.layers) {
    const QuantizedMatrix& w = l.weights;
    std::string scale_repr, sq_range = "-";
    double overhead = 0;
    // Conv layers: kernel/stride/pad plus the patch-vector geometry (how
    // many V-element vectors tile one unrolled patch row).
    std::string kind = "gemm";
    if (l.kind == PackagedLayerKind::kConv) {
      kind = std::to_string(l.kernel) + "x" + std::to_string(l.kernel) + " s" +
             std::to_string(l.stride) + " p" + std::to_string(l.pad) + " c" +
             std::to_string(l.conv_in_channels()) + " (" +
             std::to_string(w.layout.vectors_per_row()) + " vec/patch)";
    }
    if (w.two_level) {
      const auto& tl = *w.two_level;
      scale_repr = "int" + std::to_string(tl.scale_fmt.bits) + " + fp32/" +
                   (tl.coarse_axis == CoarseAxis::kPerRow ? "chan" : "tensor");
      std::uint16_t lo = 65535, hi = 0;
      for (const auto s : tl.sq) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      sq_range = std::to_string(lo) + ".." + std::to_string(hi);
      // Paper Sec. 4.4: M/(V*N) storage overhead of per-vector scales.
      overhead = 100.0 * tl.scale_fmt.bits /
                 (static_cast<double>(w.layout.vector_size) * w.fmt.bits);
      total_scale_bits += static_cast<double>(tl.sq.size()) * tl.scale_fmt.bits;
    } else {
      scale_repr = "fp32/" + std::string(w.coarse_scales.size() == 1 ? "tensor" : "chan");
    }
    total_weight_bits += static_cast<double>(w.rows) * w.cols() * w.fmt.bits;
    t.add_row({name, kind, std::to_string(w.rows) + "x" + std::to_string(w.cols()),
               w.fmt.str(), std::to_string(w.layout.vector_size), scale_repr, sq_range,
               Table::num(overhead, 2), Table::num(l.act_amax, 4), Table::num(l.act_gamma, 6)});
  }
  t.print(std::cout);
  if (total_scale_bits > 0) {
    std::cout << "\ntotal weight payload: " << Table::num(total_weight_bits / 8 / 1024, 1)
              << " KiB; per-vector scales add "
              << Table::num(100.0 * total_scale_bits / total_weight_bits, 2) << "%\n";
  }

  if (show_kernels) {
    std::cout << "\ncpu: " << isa::summary() << "\n";
    const QuantizedModelRunner runner(pkg);
    Table kt({"Layer", "Op", "ISA", "Panel kernel", "Accumulator", "Layout", "Resident KiB",
              "B/wt", "vs int16"});
    std::int64_t total_resident = 0, total_baseline = 0;
    for (const auto& [name, prim] : runner.primitives()) {
      const std::int64_t res = prim.resident_bytes(), base = prim.baseline_bytes();
      total_resident += res;
      total_baseline += base;
      const auto& w = prim.layer().weights;
      const double n_w = static_cast<double>(w.rows) * static_cast<double>(w.cols());
      kt.add_row({name, prim.op_name(), prim.isa_name(), prim.impl_name(), prim.acc_name(),
                  prim.layout_name(), Table::num(static_cast<double>(res) / 1024.0, 1),
                  res > 0 ? Table::num(static_cast<double>(res) / n_w, 2) : "-",
                  base > 0 ? Table::num(static_cast<double>(res) / static_cast<double>(base), 2) +
                                 "x"
                           : "-"});
    }
    kt.print(std::cout);
    if (total_baseline > 0) {
      std::cout << "\npacked panels resident: "
                << Table::num(static_cast<double>(total_resident) / 1024.0, 1) << " KiB ("
                << Table::num(
                       static_cast<double>(total_resident) / static_cast<double>(total_baseline),
                       2)
                << "x of the int16 panel layout)\n";
    }
  }
  return 0;
}
