// vsq_inspect — print the contents of an exported quantized-model package:
// per-layer shapes, formats, scale statistics (sq utilization, gamma), the
// storage overhead of the per-vector scales (the paper's M/(V*N) metric,
// Sec. 4.4), and the forward program when the package carries one.
//
//   vsq_inspect --package=artifacts/resnet_int.vsqa [--threads=N]
#include <iostream>
#include <map>

#include "quant/export.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  if (!apply_threads_flag(args)) return 1;
  const std::string path = args.get_str("package", "artifacts/resnet_int.vsqa");

  const QuantizedModelPackage pkg = QuantizedModelPackage::load(path);
  std::cout << "package " << path << ": " << pkg.layers.size() << " layers\n";
  if (!pkg.program.empty()) {
    std::cout << "forward program:";
    for (const ForwardStep& s : pkg.program) {
      std::cout << " " << s.layer << (s.relu ? "+relu" : "");
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  Table t({"Layer", "Weights", "Fmt", "V", "Scale repr", "sq range", "Overhead %", "amax",
           "gamma"});
  double total_weight_bits = 0, total_scale_bits = 0;
  for (const auto& [name, l] : pkg.layers) {
    const QuantizedMatrix& w = l.weights;
    std::string scale_repr, sq_range = "-";
    double overhead = 0;
    if (w.two_level) {
      const auto& tl = *w.two_level;
      scale_repr = "int" + std::to_string(tl.scale_fmt.bits) + " + fp32/" +
                   (tl.coarse_axis == CoarseAxis::kPerRow ? "chan" : "tensor");
      std::uint16_t lo = 65535, hi = 0;
      for (const auto s : tl.sq) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      sq_range = std::to_string(lo) + ".." + std::to_string(hi);
      // Paper Sec. 4.4: M/(V*N) storage overhead of per-vector scales.
      overhead = 100.0 * tl.scale_fmt.bits /
                 (static_cast<double>(w.layout.vector_size) * w.fmt.bits);
      total_scale_bits += static_cast<double>(tl.sq.size()) * tl.scale_fmt.bits;
    } else {
      scale_repr = "fp32/" + std::string(w.coarse_scales.size() == 1 ? "tensor" : "chan");
    }
    total_weight_bits += static_cast<double>(w.rows) * w.cols() * w.fmt.bits;
    t.add_row({name, std::to_string(w.rows) + "x" + std::to_string(w.cols()), w.fmt.str(),
               std::to_string(w.layout.vector_size), scale_repr, sq_range,
               Table::num(overhead, 2), Table::num(l.act_amax, 4), Table::num(l.act_gamma, 6)});
  }
  t.print(std::cout);
  if (total_scale_bits > 0) {
    std::cout << "\ntotal weight payload: " << Table::num(total_weight_bits / 8 / 1024, 1)
              << " KiB; per-vector scales add "
              << Table::num(100.0 * total_scale_bits / total_weight_bits, 2) << "%\n";
  }
  return 0;
}
