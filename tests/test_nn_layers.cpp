#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/softmax.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Numerical gradient check: loss = <forward(x), G> for a fixed random G.
// Verifies backward(G) against central differences on inputs, and the
// accumulated parameter gradients against central differences on params.
void check_gradients(Layer& layer, Tensor x, std::uint64_t seed, double tol = 2e-2,
                     double eps = 1e-3) {
  Rng rng(seed);
  Tensor y = layer.forward(x, /*train=*/true);
  const Tensor g = random_tensor(y.shape(), rng);

  for (Param* p : layer.params()) p->zero_grad();
  const Tensor gx = layer.backward(g);

  const auto loss_at = [&](const Tensor& xin) {
    const Tensor out = layer.forward(xin, /*train=*/true);
    double l = 0;
    for (std::int64_t i = 0; i < out.numel(); ++i) l += static_cast<double>(out[i]) * g[i];
    return l;
  };

  // Input gradients (subsample for speed).
  if (!gx.empty()) {
    const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 24);
    for (std::int64_t i = 0; i < x.numel(); i += stride) {
      Tensor xp = x.clone(), xm = x.clone();
      xp[i] += static_cast<float>(eps);
      xm[i] -= static_cast<float>(eps);
      const double num = (loss_at(xp) - loss_at(xm)) / (2 * eps);
      EXPECT_NEAR(gx[i], num, tol * (1.0 + std::abs(num))) << "input grad at " << i;
    }
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->value.numel() / 12);
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double lp = loss_at(x);
      p->value[i] = orig - static_cast<float>(eps);
      const double lm = loss_at(x);
      p->value[i] = orig;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * (1.0 + std::abs(num)))
          << p->name << " grad at " << i;
    }
  }
}

TEST(Linear, ForwardMatchesHandComputation) {
  Rng rng(1);
  Linear l("l", 2, 3, rng);
  l.weight().value = Tensor::from_vector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  l.bias().value = Tensor::from_vector(Shape{3}, {0.5f, -0.5f, 0.0f});
  const Tensor x = Tensor::from_vector(Shape{1, 2}, {1, -1});
  const Tensor y = l.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1 - 2 + 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 3 - 4 - 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 2), 5 - 6);
}

TEST(Linear, GradCheck) {
  Rng rng(2);
  Linear l("l", 5, 4, rng);
  check_gradients(l, random_tensor(Shape{3, 5}, rng), 20);
}

TEST(Linear, Rank3InputKeepsLeadingAxes) {
  Rng rng(3);
  Linear l("l", 6, 2, rng);
  const Tensor y = l.forward(random_tensor(Shape{2, 7, 6}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{2, 7, 2}));
}

TEST(Conv2d, GradCheck) {
  Rng rng(4);
  Conv2d c("c", 3, 4, 3, 1, 1, rng);
  check_gradients(c, random_tensor(Shape{2, 5, 5, 3}, rng), 21);
}

TEST(Conv2d, StridedGradCheck) {
  Rng rng(5);
  Conv2d c("c", 2, 3, 3, 2, 1, rng);
  check_gradients(c, random_tensor(Shape{1, 6, 6, 2}, rng), 22);
}

TEST(Conv2d, OutputShape) {
  Rng rng(6);
  Conv2d c("c", 3, 8, 3, 2, 1, rng);
  const Tensor y = c.forward(random_tensor(Shape{2, 8, 8, 3}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 8}));
}

TEST(Conv2d, FoldAffineMatchesBnInference) {
  // conv -> BN (inference stats) must equal folded conv.
  Rng rng(7);
  Conv2d c("c", 2, 3, 3, 1, 1, rng);
  BatchNorm2d bn("bn", 3);
  // Give BN non-trivial inference statistics.
  Rng r2(8);
  for (std::int64_t i = 0; i < 3; ++i) {
    bn.running_mean()[i] = static_cast<float>(r2.normal(0.0, 0.5));
    bn.running_var()[i] = static_cast<float>(r2.uniform(0.5, 2.0));
    bn.gamma().value[i] = static_cast<float>(r2.uniform(0.5, 1.5));
    bn.beta().value[i] = static_cast<float>(r2.normal(0.0, 0.3));
  }
  const Tensor x = random_tensor(Shape{2, 4, 4, 2}, rng);
  const Tensor ref = bn.forward(c.forward(x, false), false);

  std::vector<float> mul, add;
  bn.inference_affine(mul, add);
  c.fold_affine(mul, add);
  const Tensor folded = c.forward(x, false);
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(folded[i], ref[i], 1e-4f);
}

TEST(ReLU, GradCheck) {
  Rng rng(9);
  ReLU r;
  check_gradients(r, random_tensor(Shape{4, 6}, rng), 23);
}

TEST(GELU, GradCheck) {
  Rng rng(10);
  GELU g;
  check_gradients(g, random_tensor(Shape{4, 6}, rng), 24);
}

TEST(GELU, KnownValues) {
  EXPECT_NEAR(gelu_value(0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(gelu_value(10.0f), 10.0f, 1e-3);
  EXPECT_NEAR(gelu_value(-10.0f), 0.0f, 1e-3);
}

TEST(BatchNorm2d, NormalizesBatch) {
  Rng rng(11);
  BatchNorm2d bn("bn", 4);
  const Tensor x = random_tensor(Shape{4, 3, 3, 4}, rng, 3.0);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization.
  for (std::int64_t c = 0; c < 4; ++c) {
    double mean = 0, var = 0;
    const std::int64_t n = y.numel() / 4;
    for (std::int64_t i = 0; i < n; ++i) mean += y[i * 4 + c];
    mean /= static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      const double d = y[i * 4 + c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, GradCheck) {
  Rng rng(12);
  BatchNorm2d bn("bn", 3);
  check_gradients(bn, random_tensor(Shape{2, 3, 3, 3}, rng), 25, 3e-2);
}

TEST(LayerNorm, GradCheck) {
  Rng rng(13);
  LayerNorm ln("ln", 8);
  check_gradients(ln, random_tensor(Shape{5, 8}, rng), 26, 3e-2);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(14);
  LayerNorm ln("ln", 16);
  const Tensor y = ln.forward(random_tensor(Shape{3, 16}, rng, 5.0), false);
  for (std::int64_t r = 0; r < 3; ++r) {
    double mean = 0;
    for (std::int64_t c = 0; c < 16; ++c) mean += y.at2(r, c);
    EXPECT_NEAR(mean / 16, 0.0, 1e-4);
  }
}

TEST(GlobalAvgPool, ForwardAndGradCheck) {
  Rng rng(15);
  GlobalAvgPool gap;
  Tensor x(Shape{1, 2, 2, 1});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 6;
  EXPECT_FLOAT_EQ(gap.forward(x, false).at2(0, 0), 3.0f);
  check_gradients(gap, random_tensor(Shape{2, 3, 3, 4}, rng), 27);
}

TEST(MaxPool2x2, ForwardAndGradCheck) {
  Rng rng(16);
  MaxPool2x2 mp;
  const Tensor y = mp.forward(random_tensor(Shape{1, 4, 4, 2}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 2}));
  check_gradients(mp, random_tensor(Shape{1, 4, 4, 2}, rng), 28);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(17);
  const Tensor p = softmax_last_axis(random_tensor(Shape{5, 7}, rng, 3.0));
  for (std::int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (std::int64_t c = 0; c < 7; ++c) sum += p.at2(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  const Tensor x = Tensor::from_vector(Shape{1, 2}, {1000.0f, 999.0f});
  const Tensor p = softmax_last_axis(x);
  EXPECT_NEAR(p.at2(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-5);
}

TEST(Embedding, LookupAndScatterGrad) {
  Rng rng(18);
  Embedding e("e", 10, 8, 4, rng);
  const Tensor ids = Tensor::from_vector(Shape{1, 3}, {2, 7, 2});
  const Tensor y = e.forward(ids, true);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 4}));
  // token 2 appears twice -> its grad row accumulates both positions.
  Tensor g(y.shape());
  g.fill(1.0f);
  e.backward(g);
  EXPECT_FLOAT_EQ(e.token_table().grad.at2(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(e.token_table().grad.at2(7, 0), 1.0f);
  EXPECT_FLOAT_EQ(e.token_table().grad.at2(0, 0), 0.0f);
}

TEST(Embedding, RejectsOutOfRangeToken) {
  Rng rng(19);
  Embedding e("e", 4, 4, 2, rng);
  const Tensor ids = Tensor::from_vector(Shape{1, 1}, {9});
  EXPECT_THROW(e.forward(ids, false), std::out_of_range);
}

TEST(Attention, GradCheck) {
  Rng rng(20);
  MultiHeadSelfAttention a("a", 8, 2, rng);
  check_gradients(a, random_tensor(Shape{2, 4, 8}, rng, 0.5), 29, 4e-2);
}

TEST(Attention, OutputShapeAndGemmCount) {
  Rng rng(21);
  MultiHeadSelfAttention a("a", 16, 4, rng);
  const Tensor y = a.forward(random_tensor(Shape{2, 5, 16}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
  EXPECT_EQ(a.gemms().size(), 4u);
}

TEST(Loss, CrossEntropyGradChecks) {
  Rng rng(22);
  const Tensor logits = random_tensor(Shape{4, 5}, rng);
  const std::vector<int> labels{0, 2, 4, 1};
  const LossResult res = cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits.clone(), lm = logits.clone();
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double num =
        (cross_entropy(lp, labels).loss - cross_entropy(lm, labels).loss) / (2 * eps);
    EXPECT_NEAR(res.grad[i], num, 1e-3);
  }
}

TEST(Loss, Top1Accuracy) {
  const Tensor logits = Tensor::from_vector(Shape{2, 3}, {1, 5, 0, 9, 1, 2});
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, {1, 0}), 100.0);
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, {0, 0}), 50.0);
}

TEST(Loss, SpanF1PerfectAndDisjoint) {
  // T=6; make start/end logits argmax at (2,3).
  Tensor logits(Shape{1, 6, 2});
  logits.at3(0, 2, 0) = 5.0f;
  logits.at3(0, 3, 1) = 5.0f;
  SpanLabels gold;
  gold.start = {2};
  gold.end = {3};
  EXPECT_DOUBLE_EQ(span_f1(logits, gold), 100.0);
  SpanLabels wrong;
  wrong.start = {5};
  wrong.end = {5};
  EXPECT_DOUBLE_EQ(span_f1(logits, wrong), 0.0);
}

TEST(Loss, SpanF1PartialOverlap) {
  // Predicted [1,2], gold [2,3]: overlap 1, prec 1/2, rec 1/2 -> F1 50%.
  Tensor logits(Shape{1, 6, 2});
  logits.at3(0, 1, 0) = 5.0f;
  logits.at3(0, 2, 1) = 5.0f;
  SpanLabels gold;
  gold.start = {2};
  gold.end = {3};
  EXPECT_NEAR(span_f1(logits, gold), 50.0, 1e-9);
}

TEST(Loss, SpanCrossEntropyGradShape) {
  Rng rng(23);
  const Tensor logits = random_tensor(Shape{3, 8, 2}, rng);
  SpanLabels labels;
  labels.start = {1, 2, 3};
  labels.end = {2, 4, 5};
  const LossResult res = span_cross_entropy(logits, labels);
  EXPECT_EQ(res.grad.shape(), logits.shape());
  EXPECT_GT(res.loss, 0.0);
}

}  // namespace
}  // namespace vsq
