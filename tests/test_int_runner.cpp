// Tests for the integer deployment runner (IntegerExecutionGuard): a whole
// model executing through the bit-accurate integer datapath must match the
// fake-quant (simulated) execution the accuracy experiments use — the
// software/hardware contract of the paper's Sec. 5 — plus guard lifecycle,
// error handling, and stats accumulation.
#include <gtest/gtest.h>

#include <filesystem>

#include "exp/ptq.h"
#include "models/resnetv.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "quant/export.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Calibrate a set of layers at a spec pair using `run` to push data through.
template <typename Fn>
void calibrate(std::vector<QuantizableGemm*> gemms, const QuantSpec& w, const QuantSpec& a,
               Fn&& run) {
  apply_quant_specs(gemms, w, a);
  set_mode_all(gemms, QuantMode::kCalibrate);
  run();
  finalize_calibration(gemms);
  set_mode_all(gemms, QuantMode::kQuantEval);
}

QuantizedModelPackage export_all(const std::vector<QuantizableGemm*>& gemms) {
  QuantizedModelPackage pkg;
  for (QuantizableGemm* g : gemms) pkg.layers[g->gemm_name()] = export_gemm(*g, {});
  return pkg;
}

TEST(IntegerExecutionGuard, SingleLayerMatchesFakeQuant) {
  Rng rng(11);
  Linear layer("fc", 48, 12, rng, /*has_bias=*/true);
  const Tensor x = random_tensor(Shape{6, 48}, rng);
  calibrate({&layer}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8),
            [&] { layer.forward(x, false); });

  const Tensor fake = layer.forward(x, false);
  const QuantizedModelPackage pkg = export_all({&layer});
  Tensor hw;
  {
    IntegerExecutionGuard guard({&layer}, pkg);
    hw = layer.forward(x, false);
    EXPECT_GT(guard.stats().vector_ops, 0u);
  }
  // The layer adds its fp bias on both paths; difference is fp rounding only.
  EXPECT_LT(max_abs_diff(fake, hw), 2e-4f * (1.0f + amax_per_tensor(fake)));
}

TEST(IntegerExecutionGuard, UninstallsOnDestruction) {
  Rng rng(12);
  Linear layer("fc", 32, 8, rng);
  const Tensor x = random_tensor(Shape{4, 32}, rng);
  calibrate({&layer}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8),
            [&] { layer.forward(x, false); });
  const QuantizedModelPackage pkg = export_all({&layer});

  const Tensor before = layer.forward(x, false);
  { IntegerExecutionGuard guard({&layer}, pkg); }
  const Tensor after = layer.forward(x, false);
  // Same mode (kQuantEval), so identical outputs bit-for-bit.
  EXPECT_EQ(max_abs_diff(before, after), 0.0f);
}

TEST(IntegerExecutionGuard, MissingLayerThrowsAndInstallsNothing) {
  Rng rng(13);
  Linear a("a", 16, 4, rng), b("b", 4, 2, rng);
  const Tensor x = random_tensor(Shape{2, 16}, rng);
  calibrate({&a, &b}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8), [&] { b.forward(a.forward(x, false), false); });
  QuantizedModelPackage pkg = export_all({&a});  // b intentionally absent

  EXPECT_THROW(IntegerExecutionGuard({&a, &b}, pkg), std::invalid_argument);
  // `a` must not be left with a dangling override from the failed install.
  const Tensor y = a.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4}));
}

TEST(IntegerExecutionGuard, TrainingForwardThrowsWhileInstalled) {
  Rng rng(14);
  Linear layer("fc", 16, 4, rng);
  const Tensor x = random_tensor(Shape{2, 16}, rng);
  calibrate({&layer}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8),
            [&] { layer.forward(x, false); });
  const QuantizedModelPackage pkg = export_all({&layer});
  IntegerExecutionGuard guard({&layer}, pkg);
  EXPECT_THROW(layer.forward(x, /*train=*/true), std::logic_error);
}

TEST(IntegerExecutionGuard, StatsAccumulateAcrossLayersAndBatches) {
  Rng rng(15);
  Linear l1("l1", 32, 32, rng), l2("l2", 32, 8, rng);
  const Tensor x = random_tensor(Shape{4, 32}, rng);
  calibrate({&l1, &l2}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8),
            [&] { l2.forward(l1.forward(x, false), false); });
  const QuantizedModelPackage pkg = export_all({&l1, &l2});

  IntegerExecutionGuard guard({&l1, &l2}, pkg);
  l2.forward(l1.forward(x, false), false);
  const std::uint64_t after_one = guard.stats().vector_ops;
  l2.forward(l1.forward(x, false), false);
  EXPECT_EQ(guard.stats().vector_ops, 2 * after_one);
  // 4 rows x (32/16=2 vectors x 32 outs + 2 vectors x 8 outs).
  EXPECT_EQ(after_one, 4u * (2u * 32u + 2u * 8u));
}

// Whole-model parity: a small trained CNN, quantized, exported, and run
// end-to-end through the integer datapath must reproduce the fake-quant
// logits (and therefore the same accuracy).
TEST(IntegerExecutionGuard, TinyCnnEndToEndParity) {
  ImageDatasetConfig dc;
  dc.count = 96;
  dc.height = 8;
  dc.width = 8;
  dc.classes = 4;
  dc.pixel_noise = 0.3;
  dc.seed = 77;
  const ImageDataset data = make_image_dataset(dc);

  ResNetVConfig mc;
  mc.in_h = 8;
  mc.in_w = 8;
  mc.widths = {8, 16};
  mc.blocks_per_stage = 1;
  mc.classes = 4;
  ResNetV model(mc);
  Sgd opt(model.params(), 0.05f, 0.9f, 0.0f);
  for (int step = 0; step < 8; ++step) {
    opt.zero_grad();
    const Tensor logits = model.forward(data.batch_images(0, 64), true);
    model.backward(cross_entropy(logits, data.batch_labels(0, 64)).grad);
    opt.step();
  }
  model.fold_batchnorm();

  auto gemms = model.gemms();
  calibrate(gemms, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, true, ScaleDtype::kTwoLevelInt, 8),
            [&] { model.forward(data.batch_images(0, 64), false); });

  const Tensor eval_batch = data.batch_images(64, 96);
  const Tensor fake = model.forward(eval_batch, false);

  QuantizedModelPackage pkg;
  for (QuantizableGemm* g : gemms) pkg.layers[g->gemm_name()] = export_gemm(*g, {});
  Tensor hw;
  {
    IntegerExecutionGuard guard(gemms, pkg);
    hw = model.forward(eval_batch, false);
    EXPECT_GT(guard.stats().vector_ops, 0u);
  }
  // Biases live in the layers (exported empty), so the only divergence is
  // the order of float multiplies; logits agree tightly and argmax exactly.
  EXPECT_LT(max_abs_diff(fake, hw), 5e-3f * (1.0f + amax_per_tensor(fake)));
  EXPECT_EQ(top1_accuracy(fake, data.batch_labels(64, 96)),
            top1_accuracy(hw, data.batch_labels(64, 96)));
}

// The package round-trips to disk and the loaded package drives the same
// integer execution.
TEST(IntegerExecutionGuard, LoadedPackageMatchesInMemory) {
  Rng rng(16);
  Linear layer("fc", 32, 8, rng);
  const Tensor x = random_tensor(Shape{4, 32}, rng);
  calibrate({&layer}, specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
            specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8),
            [&] { layer.forward(x, false); });
  const QuantizedModelPackage pkg = export_all({&layer});
  const std::string path = std::filesystem::temp_directory_path() / "vsq_int_runner_pkg.vsqa";
  pkg.save(path);
  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);

  Tensor a, b;
  {
    IntegerExecutionGuard guard({&layer}, pkg);
    a = layer.forward(x, false);
  }
  {
    IntegerExecutionGuard guard({&layer}, loaded);
    b = layer.forward(x, false);
  }
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vsq
