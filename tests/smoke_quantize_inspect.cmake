# End-to-end CLI smoke test: vsq_quantize a small model, then vsq_inspect
# the exported package. Invoked from ctest (see tests/CMakeLists.txt) with
#   -DVSQ_QUANTIZE=<path> -DVSQ_INSPECT=<path> -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")
set(PACKAGE "${WORK_DIR}/tiny_int.vsqa")

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny --config=4/8/6/10 --vector=16
          "--out=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize failed with exit code ${rc}")
endif()
if(NOT EXISTS "${PACKAGE}")
  message(FATAL_ERROR "vsq_quantize did not write ${PACKAGE}")
endif()

execute_process(
  COMMAND "${VSQ_INSPECT}" "--package=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_inspect output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_inspect failed with exit code ${rc}")
endif()
# The tiny model has exactly two GEMMs (fc1, fc2); anchoring on the count
# catches a regression that exports an empty package.
if(NOT out MATCHES "2 layers")
  message(FATAL_ERROR "vsq_inspect did not report the expected 2 layers")
endif()
if(NOT out MATCHES "fc1" OR NOT out MATCHES "fc2")
  message(FATAL_ERROR "vsq_inspect layer table missing fc1/fc2 rows")
endif()
