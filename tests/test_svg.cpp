// Tests for the SVG plot writer: formatting helpers, tick-step selection,
// marker generation, document structure of scatter plots and bar charts,
// escaping, range handling, and determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/svg.h"

namespace vsq {
namespace {

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(SvgFmt, TrimsTrailingZeros) {
  EXPECT_EQ(svg::fmt(1.5), "1.5");
  EXPECT_EQ(svg::fmt(2.0), "2");
  EXPECT_EQ(svg::fmt(0.25), "0.25");
  EXPECT_EQ(svg::fmt(-0.0), "0");
}

TEST(SvgFmt, PrecisionScalesWithMagnitude) {
  EXPECT_EQ(svg::fmt(1234.4), "1234");
  EXPECT_EQ(svg::fmt(123.46), "123.5");
  EXPECT_EQ(svg::fmt(0.1234), "0.1234");
}

TEST(SvgFmt, NonFiniteBecomesZero) {
  EXPECT_EQ(svg::fmt(std::nan("")), "0");
  EXPECT_EQ(svg::fmt(std::numeric_limits<double>::infinity()), "0");
}

TEST(SvgEscape, EscapesMarkup) {
  EXPECT_EQ(svg::escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(svg::escape("plain"), "plain");
}

TEST(SvgNiceStep, PicksOneTwoFive) {
  EXPECT_DOUBLE_EQ(svg::nice_step(10.0, 5), 2.0);
  EXPECT_DOUBLE_EQ(svg::nice_step(1.0, 5), 0.2);
  EXPECT_DOUBLE_EQ(svg::nice_step(7.0, 5), 2.0);
  EXPECT_DOUBLE_EQ(svg::nice_step(0.35, 5), 0.1);
  EXPECT_DOUBLE_EQ(svg::nice_step(100.0, 4), 50.0);
}

TEST(SvgNiceStep, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(svg::nice_step(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(svg::nice_step(-1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(svg::nice_step(1.0, 0), 1.0);
}

TEST(SvgMarker, EachShapeRenders) {
  for (Marker m : {Marker::kCircle, Marker::kSquare, Marker::kDiamond, Marker::kTriangle,
                   Marker::kCross}) {
    const std::string el = svg::marker_element(m, 10, 20, 5, "#123456", true);
    EXPECT_NE(el.find("#123456"), std::string::npos);
    EXPECT_EQ(el.front(), '<');
    EXPECT_NE(el.find("/>"), std::string::npos);
  }
}

TEST(SvgMarker, HollowUsesWhiteFill) {
  const std::string hollow = svg::marker_element(Marker::kCircle, 0, 0, 4, "#ff0000", false);
  EXPECT_NE(hollow.find("fill=\"white\""), std::string::npos);
  const std::string filled = svg::marker_element(Marker::kCircle, 0, 0, 4, "#ff0000", true);
  EXPECT_NE(filled.find("fill=\"#ff0000\""), std::string::npos);
}

PlotOptions small_options() {
  PlotOptions opt;
  opt.width = 400;
  opt.height = 300;
  opt.title = "t";
  opt.x_label = "x";
  opt.y_label = "y";
  return opt;
}

TEST(ScatterPlot, RendersAllPoints) {
  ScatterPlot plot(small_options());
  auto& s1 = plot.add_series("a", "#111111", Marker::kCircle);
  s1.points = {{1, 2, true, ""}, {2, 3, false, ""}, {3, 1, true, ""}};
  auto& s2 = plot.add_series("b", "#222222", Marker::kSquare);
  s2.points = {{0.5, 0.5, true, ""}};

  const std::string doc = plot.render();
  // 3 circles for series a + 1 legend circle.
  EXPECT_EQ(count_occurrences(doc, "<circle"), 4);
  // 1 data square + 1 legend square + background + frame rects.
  EXPECT_GE(count_occurrences(doc, "<rect"), 3);
  EXPECT_NE(doc.find("filled = Pareto"), std::string::npos);
}

TEST(ScatterPlot, DocumentIsWellFormed) {
  ScatterPlot plot(small_options());
  auto& s = plot.add_series("series <1>", "#336699", Marker::kDiamond);
  s.points = {{0, 0, true, "p&q"}};
  const std::string doc = plot.render();
  EXPECT_EQ(doc.substr(0, 4), "<svg");
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "<g "), count_occurrences(doc, "</g>"));
  EXPECT_EQ(count_occurrences(doc, "<text"), count_occurrences(doc, "</text>"));
  // Series name is escaped in the legend.
  EXPECT_NE(doc.find("series &lt;1&gt;"), std::string::npos);
  EXPECT_EQ(doc.find("series <1>"), std::string::npos);
}

TEST(ScatterPlot, PointLabelsOnlyWhenEnabled) {
  PlotOptions opt = small_options();
  opt.point_labels = false;
  ScatterPlot off(opt);
  off.add_series("a", "#111", Marker::kCircle).points = {{1, 1, true, "lbl"}};
  EXPECT_EQ(off.render().find(">lbl<"), std::string::npos);

  opt.point_labels = true;
  ScatterPlot on(opt);
  on.add_series("a", "#111", Marker::kCircle).points = {{1, 1, true, "lbl"}};
  EXPECT_NE(on.render().find(">lbl<"), std::string::npos);
}

TEST(ScatterPlot, EmptyPlotStillValid) {
  ScatterPlot plot(small_options());
  const std::string doc = plot.render();
  EXPECT_EQ(doc.substr(0, 4), "<svg");
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(ScatterPlot, ExplicitRangesRespected) {
  PlotOptions opt = small_options();
  opt.x_min = 0;
  opt.x_max = 10;
  opt.y_min = 0;
  opt.y_max = 100;
  ScatterPlot plot(opt);
  plot.add_series("a", "#111", Marker::kCircle).points = {{5, 50, true, ""}};
  const std::string doc = plot.render();
  // Tick labels from the explicit range must appear.
  EXPECT_NE(doc.find(">10</text>"), std::string::npos);
  EXPECT_NE(doc.find(">100</text>"), std::string::npos);
}

TEST(ScatterPlot, DeterministicOutput) {
  ScatterPlot a(small_options());
  a.add_series("s", "#123", Marker::kTriangle).points = {{1.234567, 7.654321, false, ""}};
  ScatterPlot b(small_options());
  b.add_series("s", "#123", Marker::kTriangle).points = {{1.234567, 7.654321, false, ""}};
  EXPECT_EQ(a.render(), b.render());
}

TEST(ScatterPlot, WriteCreatesFile) {
  ScatterPlot plot(small_options());
  plot.add_series("a", "#111", Marker::kCircle).points = {{1, 1, true, ""}};
  const std::string path = ::testing::TempDir() + "/vsq_scatter_test.svg";
  ASSERT_TRUE(plot.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), plot.render());
  std::remove(path.c_str());
}

TEST(ScatterPlot, WriteFailsOnBadPath) {
  ScatterPlot plot(small_options());
  EXPECT_FALSE(plot.write("/nonexistent_dir_vsq/x.svg"));
}

TEST(BarChart, RendersBarPerValue) {
  BarChart chart(small_options());
  chart.set_series({"v1", "v2"}, {"#a00", "#0a0"});
  chart.add_group("g1", {1.0, 2.0});
  chart.add_group("g2", {3.0, 4.0});
  const std::string doc = chart.render();
  // 4 data bars + 2 legend swatches + background + frame.
  EXPECT_EQ(count_occurrences(doc, "<rect"), 8);
  EXPECT_NE(doc.find(">g1</text>"), std::string::npos);
  EXPECT_NE(doc.find(">g2</text>"), std::string::npos);
}

TEST(BarChart, MissingValuesSkipped) {
  BarChart chart(small_options());
  chart.set_series({"v1", "v2"}, {"#a00", "#0a0"});
  chart.add_group("g", {1.0, std::nan("")});
  const std::string doc = chart.render();
  // 1 data bar + 2 legend swatches + background + frame.
  EXPECT_EQ(count_occurrences(doc, "<rect"), 5);
}

TEST(BarChart, ValueLabelsPrinted) {
  BarChart chart(small_options());
  chart.set_series({"v"}, {"#a00"});
  chart.add_group("g", {0.62});
  EXPECT_NE(chart.render().find(">0.62</text>"), std::string::npos);
}

TEST(BarChart, EmptyChartStillValid) {
  BarChart chart(small_options());
  const std::string doc = chart.render();
  EXPECT_EQ(doc.substr(0, 4), "<svg");
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(BarChart, WriteRoundTrips) {
  BarChart chart(small_options());
  chart.set_series({"v"}, {"#a00"});
  chart.add_group("g", {1.0});
  const std::string path = ::testing::TempDir() + "/vsq_bar_test.svg";
  ASSERT_TRUE(chart.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(SvgPalette, StableAndNonEmpty) {
  const auto& p = svg::palette();
  ASSERT_GE(p.size(), 8u);
  EXPECT_EQ(p[0], "#1f77b4");
  for (const auto& c : p) {
    EXPECT_EQ(c.front(), '#');
    EXPECT_EQ(c.size(), 7u);
  }
}

}  // namespace
}  // namespace vsq
