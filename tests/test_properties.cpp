// Cross-module property tests: invariants that must hold for any input,
// swept with TEST_P where the property is parametric.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/area_model.h"
#include "hw/energy_model.h"
#include "hw/pe_simulator.h"
#include "quant/fake_quant.h"
#include "quant/int_gemm.h"
#include "tensor/ops.h"
#include "util/fp16.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// ---- Fake quantization is idempotent (a fixed point of itself) ----

struct IdempotenceCase {
  Granularity granularity;
  int bits;
};

class FakeQuantIdempotent : public ::testing::TestWithParam<IdempotenceCase> {};

TEST_P(FakeQuantIdempotent, SecondPassIsIdentity) {
  const auto [g, bits] = GetParam();
  Rng rng(bits * 17);
  const Tensor x = random_matrix(8, 32, rng);
  const QuantFormat fmt{bits, true};
  const VectorLayout layout{32, 8, 0};
  const ScaleSet s = compute_scales(x, g, layout, fmt);
  const Tensor q1 = fake_quantize(x, s, fmt);
  const Tensor q2 = fake_quantize(q1, s, fmt);
  // Exact: q1's values are already on the quantization grid.
  EXPECT_LT(max_abs_diff(q1, q2), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FakeQuantIdempotent,
    ::testing::Values(IdempotenceCase{Granularity::kPerTensor, 4},
                      IdempotenceCase{Granularity::kPerRow, 4},
                      IdempotenceCase{Granularity::kPerVector, 4},
                      IdempotenceCase{Granularity::kPerVector, 8},
                      IdempotenceCase{Granularity::kPerVector, 3}));

// ---- VectorLayout col_range partitions the row exactly ----

class LayoutPartition : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayoutPartition, RangesCoverEveryColumnOnce) {
  const auto [cols, v, block] = GetParam();
  const VectorLayout layout{cols, v, block};
  layout.validate();
  std::vector<int> covered(static_cast<std::size_t>(cols), 0);
  for (std::int64_t vec = 0; vec < layout.vectors_per_row(); ++vec) {
    const auto [c0, c1] = layout.col_range(vec);
    EXPECT_LT(c0, c1);
    for (std::int64_t c = c0; c < c1; ++c) {
      ++covered[static_cast<std::size_t>(c)];
      EXPECT_EQ(layout.vector_of_col(c), vec);
    }
  }
  for (const int n : covered) EXPECT_EQ(n, 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayoutPartition,
                         ::testing::Values(std::tuple{64, 16, 0}, std::tuple{60, 16, 0},
                                           std::tuple{45, 16, 5}, std::tuple{54, 4, 6},
                                           std::tuple{1, 16, 0}, std::tuple{27, 16, 3}));

// ---- fp16 rounding preserves ordering ----

TEST(Fp16Property, Monotone) {
  Rng rng(3);
  std::vector<float> xs(512);
  for (auto& v : xs) v = static_cast<float>(rng.normal(0.0, 100.0));
  std::sort(xs.begin(), xs.end());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_LE(fp16_round(xs[i - 1]), fp16_round(xs[i]));
  }
}

// ---- round_scale_product is idempotent and monotone ----

TEST(RoundScaleProductProperty, IdempotentAndMonotone) {
  constexpr int full = 10, keep = 5;
  std::uint32_t prev = 0;
  for (std::uint32_t p = 0; p < (1u << full); p += 3) {
    const std::uint32_t r1 = round_scale_product(p, full, keep);
    EXPECT_EQ(round_scale_product(r1, full, keep), r1) << p;
    EXPECT_GE(r1, prev);  // monotone in p
    prev = r1;
  }
}

// ---- PE simulator: zeros in, zeros out; scaling activations scales out ----

TEST(PeProperty, ZeroActivationsGiveZeroOutput) {
  Rng rng(4);
  const Tensor w = random_matrix(8, 64, rng);
  Tensor a(Shape{4, 64});
  MacConfig cfg;
  cfg.wt_bits = 4;
  cfg.act_bits = 4;
  cfg.wt_scale_bits = 4;
  cfg.act_scale_bits = 4;
  cfg.act_unsigned = false;
  const PeSimulator pe(cfg);
  const Tensor y = pe.run(a, w, 1.0f).output;
  for (const float v : y.span()) EXPECT_EQ(v, 0.0f);
}

TEST(PeProperty, OutputBoundedByOperandMagnitudes) {
  Rng rng(5);
  const Tensor w = random_matrix(8, 64, rng);
  const Tensor a = random_matrix(4, 64, rng);
  MacConfig cfg;
  cfg.act_unsigned = false;
  const PeSimulator pe(cfg);
  const Tensor y = pe.run(a, w, amax_per_tensor(a)).output;
  const float bound = 64.0f * amax_per_tensor(a) * amax_per_tensor(w) * 1.01f;
  for (const float v : y.span()) EXPECT_LE(std::abs(v), bound);
}

// ---- Energy/area: scale-product rounding is a no-op for POC configs ----

TEST(HwModelProperty, PocIndependentOfScaleProductBits) {
  EnergyModel em;
  AreaModel am;
  MacConfig poc;  // 8/8/-/-
  MacConfig poc_rounded = poc;
  poc_rounded.scale_product_bits = 4;
  EXPECT_DOUBLE_EQ(em.energy_per_op(poc), em.energy_per_op(poc_rounded));
  EXPECT_DOUBLE_EQ(am.area(poc), am.area(poc_rounded));
}

TEST(HwModelProperty, EnergyAndAreaPositive) {
  EnergyModel em;
  AreaModel am;
  for (const int w : {3, 4, 6, 8}) {
    for (const int ws : {-1, 4, 10}) {
      MacConfig c;
      c.wt_bits = w;
      c.act_bits = w;
      c.wt_scale_bits = ws;
      c.act_scale_bits = ws;
      EXPECT_GT(em.energy_per_op(c), 0.0) << c.str();
      EXPECT_GT(am.area(c), 0.0) << c.str();
    }
  }
}

// ---- MacConfig notation round-trips ----

class MacNotation : public ::testing::TestWithParam<const char*> {};

TEST_P(MacNotation, ParsePrintRoundTrip) {
  const std::string s = GetParam();
  EXPECT_EQ(MacConfig::parse(s).str(), s);
}

INSTANTIATE_TEST_SUITE_P(Notations, MacNotation,
                         ::testing::Values("4/4/4/4", "8/8/-/-", "6/8/6/-", "6/3/-/4",
                                           "4/8/6/10", "3/8/4/8"));

TEST(MacNotationErrors, RejectsMalformed) {
  EXPECT_THROW(MacConfig::parse("4/4/4"), std::invalid_argument);
  EXPECT_THROW(MacConfig::parse("banana"), std::invalid_argument);
  EXPECT_THROW(MacConfig::parse("99/4/-/-"), std::invalid_argument);
}

// ---- Quantization error bound: per-vector error <= per-tensor scale ----

class ErrorBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(ErrorBoundSweep, VectorErrorNeverExceedsTensorScaleBound) {
  // For max calibration, every granularity's pointwise error is bounded by
  // half the per-tensor scale (the coarsest bound), since finer scales are
  // always <= the per-tensor scale.
  const int bits = GetParam();
  Rng rng(bits * 31);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat fmt{bits, true};
  const VectorLayout layout{64, 16, 0};
  const float tensor_scale =
      compute_scales(x, Granularity::kPerTensor, layout, fmt).scales[0];
  const Tensor q = fake_quantize(x, compute_scales(x, Granularity::kPerVector, layout, fmt), fmt);
  EXPECT_LE(max_abs_diff(x, q), tensor_scale / 2 + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Bits, ErrorBoundSweep, ::testing::Values(3, 4, 6, 8));

}  // namespace
}  // namespace vsq
