# Network serving smoke test, two legs:
#
#   1. vsq_serve_net --selfcheck: bind an ephemeral loopback port, run one
#      real-socket inference round trip against the builtin tiny model,
#      and hit GET /healthz and GET /stats. Exercises the production
#      binary's load → bind → serve → selfcheck path end to end.
#   2. vsq_soak --net: the differential soak oracle across the wire — an
#      in-process NetServer over a 2-model registry, concurrent TCP
#      clients, deliberate overload (tiny queue + immediate admission so
#      sheds MUST occur; --expect-shed fails the run if none do), hot
#      reload churn, and the slow/vanishing-client abuse scenarios
#      (--slow-clients). Every accepted response is audited bit-identical
#      to a sequential reference runner; shed counts are cross-checked
#      client vs server vs registry.
#
# Pass/fail rides on exit codes (both tools exit non-zero on any gate
# failure) plus a few output markers. Invoked from ctest with
#   -DVSQ_SERVE_NET=<path> -DVSQ_SOAK=<path> -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")

execute_process(
  COMMAND "${VSQ_SERVE_NET}" --builtin=tiny --selfcheck
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_serve_net --selfcheck output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_serve_net --selfcheck failed with exit code ${rc}")
endif()
if(NOT out MATCHES "vsq_serve_net listening on ")
  message(FATAL_ERROR "vsq_serve_net did not print its listening banner")
endif()
if(NOT out MATCHES "selfcheck ok")
  message(FATAL_ERROR "vsq_serve_net selfcheck did not report success")
endif()

execute_process(
  COMMAND "${VSQ_SOAK}" --net --builtin=tiny,tiny8
          --clients=6 --requests=300 --burst-max=4 --reload-every=75
          --queue-depth=4 --admission-timeout-us=0 --max-wait-us=20000
          --expect-shed --slow-clients --seed=3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_soak --net output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_soak --net failed with exit code ${rc}")
endif()
if(NOT out MATCHES "responses verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_soak --net did not report the differential audit")
endif()
if(NOT out MATCHES "shed")
  message(FATAL_ERROR "vsq_soak --net did not report shed accounting")
endif()
if(out MATCHES " 0 hot reloads")
  message(FATAL_ERROR "vsq_soak --net performed no hot reloads (chaos trigger broken)")
endif()
