#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TEST(Shape, NumelAndEquality) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{2, 3, 5}));
  EXPECT_NE(s, (Shape{2, 3}));
}

TEST(Shape, Offsets) {
  const Shape s{3, 5};
  EXPECT_EQ(s.offset2(2, 4), 14);
  const Shape s4{2, 3, 4, 5};
  EXPECT_EQ(s4.offset4(1, 2, 3, 4), ((1 * 3 + 2) * 4 + 3) * 5 + 4);
}

TEST(Shape, RejectsNegativeDims) { EXPECT_THROW(Shape({-1, 2}), std::invalid_argument); }

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{4, 4});
  for (const float v : t.span()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t(Shape{2, 2});
  t[0] = 1.0f;
  Tensor c = t.clone();
  c[0] = 5.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, CopyIsShallow) {
  Tensor t(Shape{2});
  Tensor view = t;
  view[1] = 9.0f;
  EXPECT_EQ(t[1], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape(Shape{3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshape(Shape{4, 2}), std::invalid_argument);
}

TEST(Ops, AddAndScale) {
  const Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
  const Tensor c = add(a, b);
  EXPECT_EQ(c[2], 33.0f);
  const Tensor d = scale(a, 2.0f);
  EXPECT_EQ(d[1], 4.0f);
}

TEST(Ops, SqnrInfiniteForExact) {
  const Tensor a = Tensor::from_vector(Shape{2}, {1, 2});
  EXPECT_TRUE(std::isinf(sqnr_db(a, a)));
}

TEST(Ops, MseMatchesHand) {
  const Tensor a = Tensor::from_vector(Shape{2}, {1, 3});
  const Tensor b = Tensor::from_vector(Shape{2}, {2, 1});
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 4.0) / 2.0);
}

// ---- GEMM reference checks, parameterized over sizes ----

using GemmDims = std::tuple<int, int, int>;

class GemmRef : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmRef, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(100 + m * 7 + n * 3 + k);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{n, k}, rng);
  Tensor c(Shape{m, n});
  gemm_nt(a.data(), b.data(), c.data(), m, n, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double ref = 0;
      for (int p = 0; p < k; ++p) ref += static_cast<double>(a.at2(i, p)) * b.at2(j, p);
      EXPECT_NEAR(c.at2(i, j), ref, 1e-3 * std::max(1.0, std::abs(ref)));
    }
  }
}

TEST_P(GemmRef, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(200 + m + n + k);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  gemm_nn(a.data(), b.data(), c.data(), m, n, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double ref = 0;
      for (int p = 0; p < k; ++p) ref += static_cast<double>(a.at2(i, p)) * b.at2(p, j);
      EXPECT_NEAR(c.at2(i, j), ref, 1e-3 * std::max(1.0, std::abs(ref)));
    }
  }
}

TEST_P(GemmRef, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(300 + m + n + k);
  const Tensor a = random_tensor(Shape{k, m}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  gemm_tn(a.data(), b.data(), c.data(), m, n, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double ref = 0;
      for (int p = 0; p < k; ++p) ref += static_cast<double>(a.at2(p, i)) * b.at2(p, j);
      EXPECT_NEAR(c.at2(i, j), ref, 1e-3 * std::max(1.0, std::abs(ref)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmRef,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{16, 16, 16}, GemmDims{33, 2, 9},
                                           GemmDims{65, 67, 31}, GemmDims{128, 10, 64}));

TEST(Gemm, AccumulateAddsToC) {
  Rng rng(1);
  const Tensor a = random_tensor(Shape{4, 8}, rng);
  const Tensor b = random_tensor(Shape{6, 8}, rng);
  Tensor c1(Shape{4, 6});
  gemm_nt(a.data(), b.data(), c1.data(), 4, 6, 8);
  Tensor c2 = c1.clone();
  gemm_nt(a.data(), b.data(), c2.data(), 4, 6, 8, /*accumulate=*/true);
  for (std::int64_t i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c2[i], 2 * c1[i], 1e-4);
}

// ---- im2col ----

TEST(Im2col, IdentityKernelExtractsPixels) {
  // 1x1 kernel, stride 1: patches are exactly the pixels.
  Rng rng(2);
  const Tensor x = random_tensor(Shape{2, 3, 3, 4}, rng);
  const ConvGeom g{3, 3, 4, 1, 1, 0};
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), (Shape{2 * 9, 4}));
  for (std::int64_t i = 0; i < cols.numel(); ++i) EXPECT_EQ(cols[i], x[i]);
}

TEST(Im2col, PaddingIsZero) {
  Tensor x(Shape{1, 2, 2, 1});
  x.fill(5.0f);
  const ConvGeom g{2, 2, 1, 3, 1, 1};
  const Tensor cols = im2col(x, g);
  // Top-left output patch: the (0,0) kernel cell reads padding -> 0.
  EXPECT_EQ(cols.at2(0, 0), 0.0f);
  // Center cell of that patch reads pixel (0,0) = 5.
  EXPECT_EQ(cols.at2(0, 4), 5.0f);
}

TEST(Im2col, StrideReducesOutputs) {
  Tensor x(Shape{1, 4, 4, 2});
  const ConvGeom g{4, 4, 2, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 2);
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape()[0], 4);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
  // which is exactly what conv backward relies on.
  Rng rng(3);
  const ConvGeom g{5, 4, 3, 3, 2, 1};
  const Tensor x = random_tensor(Shape{2, 5, 4, 3}, rng);
  const Tensor cols = im2col(x, g);
  const Tensor y = random_tensor(cols.shape(), rng);
  const Tensor back = col2im(y, g, 2);

  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST(Tensor, SliceRowsCopiesRange) {
  Tensor t = Tensor::from_vector(Shape{4, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_EQ(s.at2(0, 0), 3.0f);
  EXPECT_EQ(s.at2(1, 2), 8.0f);
  // Deep copy: mutating the slice leaves the source untouched.
  Tensor mutable_slice = t.slice_rows(1, 3);
  mutable_slice.at2(0, 0) = 99.0f;
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, SliceRowsHigherRankAndEdges) {
  Rng rng(6);
  const Tensor x = random_tensor(Shape{5, 2, 3}, rng);
  const Tensor all = x.slice_rows(0, 5);
  EXPECT_EQ(max_abs_diff(all, x), 0.0f);
  const Tensor empty = x.slice_rows(2, 2);
  EXPECT_EQ(empty.shape()[0], 0);
  EXPECT_THROW(x.slice_rows(-1, 2), std::invalid_argument);
  EXPECT_THROW(x.slice_rows(0, 6), std::invalid_argument);
  EXPECT_THROW(x.slice_rows(3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace vsq
