// Quantized transformer serving: attention-path validation fixes, the
// sequence-op runner (embed/layernorm/attention/softmax/gelu forward
// programs), and the length-bucketed batcher. The central contract under
// test is the serving invariant extended to sequences: a batched forward
// over padded rows of MIXED true lengths is bit-identical to sequential
// single-request execution, on every kernel tier.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "kernels/isa.h"
#include "models/transformer.h"
#include "models/zoo.h"
#include "nn/attention.h"
#include "nn/softmax.h"
#include "quant/export.h"
#include "serve/session.h"
#include "util/rng.h"

namespace vsq {
namespace {

// Scoped VSQ_ISA override; restores the previous value (or unset) on exit.
class EnvIsa {
 public:
  explicit EnvIsa(const char* v) {
    if (const char* prev = std::getenv("VSQ_ISA")) prev_ = prev;
    if (v) {
      setenv("VSQ_ISA", v, 1);
    } else {
      unsetenv("VSQ_ISA");
    }
  }
  ~EnvIsa() {
    if (prev_) {
      setenv("VSQ_ISA", prev_->c_str(), 1);
    } else {
      unsetenv("VSQ_ISA");
    }
  }
  EnvIsa(const EnvIsa&) = delete;
  EnvIsa& operator=(const EnvIsa&) = delete;

 private:
  std::optional<std::string> prev_;
};

struct TierCase {
  const char* env;  // nullptr = native (no cap)
  bool available() const {
    if (env == nullptr) return true;
    const std::string v(env);
    if (v == "portable") return true;
    if (v == "avx2") return isa::features().avx2;
    return isa::features().avx512_vnni;
  }
};

const TierCase kTiers[] = {{"portable"}, {"avx2"}, {"avx512_vnni"}, {nullptr}};

// Calibrating + exporting the encoder is the expensive part; every test
// shares one package (runners and sessions each take their own copy).
const QuantizedModelPackage& bert_pkg() {
  static const QuantizedModelPackage pkg = tiny_bert_package(MacConfig::parse("4/8/6/10"));
  return pkg;
}

// A padded token batch: row r carries lens[r] deterministic tokens, the
// rest of the row is the -1.0f pad sentinel.
Tensor padded_tokens(const std::vector<std::int64_t>& lens, std::int64_t t,
                     std::int64_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{static_cast<std::int64_t>(lens.size()), t});
  x.fill(-1.0f);
  for (std::size_t r = 0; r < lens.size(); ++r) {
    for (std::int64_t j = 0; j < lens[r]; ++j) {
      x.at2(static_cast<std::int64_t>(r), j) =
          static_cast<float>(rng.uniform_u64(static_cast<std::uint64_t>(vocab)));
    }
  }
  return x;
}

// ---- Attention constructor validation (the inverted-message fix) ------

TEST(AttentionValidation, RejectsNonPositiveHeadsBeforeDividing) {
  Rng rng(3);
  try {
    MultiHeadSelfAttention a("attn", 32, 0, rng);
    FAIL() << "heads=0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("heads must be positive"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(MultiHeadSelfAttention("attn", 32, -4, rng), std::invalid_argument);
}

TEST(AttentionValidation, RejectsHeadsNotDividingDimWithCorrectMessage) {
  Rng rng(3);
  try {
    MultiHeadSelfAttention a("attn", 32, 5, rng);
    FAIL() << "heads=5, dim=32 accepted";
  } catch (const std::invalid_argument& e) {
    // The original message had the relation inverted ("dim must divide
    // heads"); pin the corrected direction.
    EXPECT_NE(std::string(e.what()).find("heads must divide dim"), std::string::npos)
        << e.what();
  }
  EXPECT_NO_THROW(MultiHeadSelfAttention("attn", 32, 4, rng));
}

// ---- Eval-path statelessness (the train-gated cache fix) --------------

TEST(AttentionEvalPath, EvalForwardDoesNotDisturbTrainingState) {
  // Two identically-seeded modules. One runs an eval forward (with a
  // DIFFERENT batch/sequence geometry) between its train forward and its
  // backward; the backward gradients must be bit-identical to the
  // undisturbed module's. Before the fix the eval forward overwrote the
  // cached batch_/seq_ dims, so the interposed call corrupted backward.
  const std::int64_t d = 16;
  Rng r1(9), r2(9);
  MultiHeadSelfAttention ref("attn", d, 4, r1);
  MultiHeadSelfAttention probed("attn", d, 4, r2);

  Rng data(21);
  Tensor x(Shape{2, 5, d});
  for (auto& v : x.span()) v = static_cast<float>(data.normal());
  Tensor gy(Shape{2, 5, d});
  for (auto& v : gy.span()) v = static_cast<float>(data.normal());
  Tensor x_eval(Shape{1, 7, d});
  for (auto& v : x_eval.span()) v = static_cast<float>(data.normal());

  const Tensor y_ref = ref.forward(x, /*train=*/true);
  const Tensor g_ref = ref.backward(gy);

  const Tensor y_probed = probed.forward(x, /*train=*/true);
  const Tensor y_eval = probed.forward(x_eval, /*train=*/false);
  EXPECT_EQ(y_eval.shape(), (Shape{1, 7, d}));
  const Tensor g_probed = probed.backward(gy);

  ASSERT_EQ(g_ref.numel(), g_probed.numel());
  for (std::int64_t i = 0; i < g_ref.numel(); ++i) {
    ASSERT_EQ(g_ref[i], g_probed[i]) << "gradient diverged at " << i;
  }
  for (std::int64_t i = 0; i < y_ref.numel(); ++i) {
    ASSERT_EQ(y_ref[i], y_probed[i]) << "output diverged at " << i;
  }
}

// ---- Fully-masked softmax rows (the all--inf NaN fix) ------------------

TEST(SoftmaxMaskedRows, AllNegInfRowYieldsZerosNotNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor x(Shape{2, 4});
  // Row 0 fully masked; row 1 an ordinary row.
  for (std::int64_t c = 0; c < 4; ++c) x.at2(0, c) = -inf;
  x.at2(1, 0) = 0.5f;
  x.at2(1, 1) = -1.0f;
  x.at2(1, 2) = -inf;
  x.at2(1, 3) = 2.0f;
  const Tensor y = softmax_last_axis(x);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(y.at2(0, c), 0.0f) << "masked row leaked probability at " << c;
  }
  float sum = 0.0f;
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_FALSE(std::isnan(y.at2(1, c)));
    sum += y.at2(1, c);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_EQ(y.at2(1, 2), 0.0f);  // the -inf entry inside a live row
}

// ---- The sequence runner: batched == sequential, bit for bit ----------

TEST(TransformerRunner, BatchedMixedLengthsMatchSequentialBitExactly) {
  const QuantizedModelRunner runner(bert_pkg());
  ASSERT_TRUE(runner.seq());
  const std::int64_t t = runner.max_seq();
  const std::int64_t opt = runner.out_per_token();
  const std::vector<std::int64_t> lens{5, 19, t, 1};
  const Tensor batch = padded_tokens(lens, t, runner.vocab(), 1234);

  const Tensor all = runner.forward(batch);
  ASSERT_EQ(all.shape(), (Shape{static_cast<std::int64_t>(lens.size()), t * opt}));
  for (std::size_t r = 0; r < lens.size(); ++r) {
    // The same tokens as an unpadded single request [1, L].
    Tensor one(Shape{1, lens[r]});
    for (std::int64_t j = 0; j < lens[r]; ++j) {
      one.at2(0, j) = batch.at2(static_cast<std::int64_t>(r), j);
    }
    const Tensor y = runner.forward(one);
    ASSERT_EQ(y.numel(), lens[r] * opt);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_EQ(y[i], all.at2(static_cast<std::int64_t>(r), i))
          << "row " << r << " (len " << lens[r] << ") diverged at logit " << i;
    }
  }
}

TEST(TransformerRunner, RejectsMalformedTokenRows) {
  const QuantizedModelRunner runner(bert_pkg());
  const std::int64_t t = runner.max_seq();
  {
    Tensor x = padded_tokens({4}, t, runner.vocab(), 7);
    x.at2(0, 1) = -1.0f;  // pad sentinel inside the live prefix
    EXPECT_THROW((void)runner.forward(x), std::invalid_argument);
  }
  {
    Tensor x = padded_tokens({4}, t, runner.vocab(), 7);
    x.at2(0, 0) = static_cast<float>(runner.vocab());  // out of range
    EXPECT_THROW((void)runner.forward(x), std::invalid_argument);
  }
  {
    Tensor x = padded_tokens({4}, t, runner.vocab(), 7);
    x.at2(0, 2) = 1.5f;  // non-integral token id
    EXPECT_THROW((void)runner.forward(x), std::invalid_argument);
  }
  {
    Tensor x(Shape{1, t});
    x.fill(-1.0f);  // no tokens at all
    EXPECT_THROW((void)runner.forward(x), std::invalid_argument);
  }
}

TEST(TransformerRunner, ForcedTierOutputsBitIdenticalAcrossTiers) {
  // The integer datapath promises the same bits on every kernel tier; the
  // sequence ops (embed, layernorm, attention score/context, softmax,
  // gelu) run in scalar fp32 and must not break that. Each tier gets a
  // freshly-constructed runner (dispatch binds at load).
  const std::vector<std::int64_t> lens{3, 17, 32};
  std::optional<Tensor> baseline;
  for (const TierCase& tier : kTiers) {
    if (!tier.available()) continue;
    EnvIsa e(tier.env);
    const QuantizedModelRunner runner(bert_pkg());
    const Tensor batch = padded_tokens(lens, runner.max_seq(), runner.vocab(), 4242);
    const Tensor y = runner.forward(batch);
    if (!baseline) {
      baseline.emplace(y);  // portable, always first
    } else {
      ASSERT_EQ(baseline->numel(), y.numel());
      for (std::int64_t i = 0; i < y.numel(); ++i) {
        ASSERT_EQ((*baseline)[i], y[i])
            << "tier " << (tier.env ? tier.env : "native") << " diverged at " << i;
      }
    }
  }
}

// ---- The serving session: door validation and bucketed batching -------

TEST(TransformerServe, SubmitValidatesTokensAtTheDoor) {
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.watchdog = false;
  InferenceSession session(bert_pkg(), cfg);
  const std::int64_t t = session.runner().max_seq();
  EXPECT_THROW((void)session.submit(Tensor(Shape{t + 1})), std::invalid_argument);
  EXPECT_THROW((void)session.submit(Tensor(Shape{0})), std::invalid_argument);
  {
    Tensor bad(Shape{4});
    bad.fill(0.25f);  // non-integral
    EXPECT_THROW((void)session.submit(bad), std::invalid_argument);
  }
  {
    Tensor bad(Shape{4});
    bad.fill(-1.0f);  // clients send unpadded rows; the sentinel is internal
    EXPECT_THROW((void)session.submit(bad), std::invalid_argument);
  }
  {
    Tensor bad(Shape{4});
    bad.fill(static_cast<float>(session.runner().vocab()));  // out of range
    EXPECT_THROW((void)session.submit(bad), std::invalid_argument);
  }
}

TEST(TransformerServe, MixedLengthRequestsShareABatchAcrossBuckets) {
  // A 4-token and a 30-token request, submitted back to back with a long
  // straggler window, must ride ONE forward pass spanning two pad buckets
  // — asserted through the new bucket-occupancy stats — and still each
  // get the exact bits sequential execution produces.
  ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 200000;  // plenty for the second submit to join
  cfg.watchdog = false;
  InferenceSession session(bert_pkg(), cfg);
  const QuantizedModelRunner& runner = session.runner();
  const std::int64_t opt = runner.out_per_token();

  const Tensor short_req = padded_tokens({4}, 4, runner.vocab(), 11).reshape(Shape{4});
  const Tensor long_req = padded_tokens({30}, 30, runner.vocab(), 12).reshape(Shape{30});
  std::future<Tensor> f_short = session.submit(short_req);
  std::future<Tensor> f_long = session.submit(long_req);
  const Tensor y_short = f_short.get();
  const Tensor y_long = f_long.get();

  ASSERT_EQ(y_short.shape(), (Shape{1, 4 * opt}));
  ASSERT_EQ(y_long.shape(), (Shape{1, 30 * opt}));
  const Tensor ref_short = runner.forward(short_req.reshape(Shape{1, 4}));
  const Tensor ref_long = runner.forward(long_req.reshape(Shape{1, 30}));
  for (std::int64_t i = 0; i < y_short.numel(); ++i) ASSERT_EQ(y_short[i], ref_short[i]);
  for (std::int64_t i = 0; i < y_long.numel(); ++i) ASSERT_EQ(y_long[i], ref_long[i]);

  const ServeStatsSnapshot snap = session.stats();
  EXPECT_EQ(snap.requests, 2u);
  EXPECT_EQ(snap.batches, 1u) << "the straggler window failed to merge the two requests";
  EXPECT_GE(snap.mixed_bucket_batches, 1u)
      << "a 4-token and a 30-token request did not share a mixed-bucket batch";
  // Default doubling ladder for max_seq=32 is {8, 16, 32}: the short
  // request pads to 8, the long one to 32.
  ASSERT_EQ(snap.bucket_hist.size(), 2u);
  EXPECT_EQ(snap.bucket_hist.at(8), 1u);
  EXPECT_EQ(snap.bucket_hist.at(32), 1u);
  EXPECT_NE(snap.json().find("\"mixed_bucket_batches\":1"), std::string::npos);
}

TEST(TransformerServe, ExplicitBucketLadderIsNormalizedAndUsed) {
  // User-supplied buckets arrive unsorted, with duplicates and junk; the
  // session must normalize them and still cover max_seq.
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200000;
  cfg.watchdog = false;
  cfg.seq_buckets = {12, -3, 12, 0, 99};  // -> {12, 32}
  InferenceSession session(bert_pkg(), cfg);
  const QuantizedModelRunner& runner = session.runner();

  const Tensor a = padded_tokens({10}, 10, runner.vocab(), 31).reshape(Shape{10});
  const Tensor b = padded_tokens({13}, 13, runner.vocab(), 32).reshape(Shape{13});
  std::future<Tensor> fa = session.submit(a);
  std::future<Tensor> fb = session.submit(b);
  (void)fa.get();
  (void)fb.get();

  const ServeStatsSnapshot snap = session.stats();
  ASSERT_EQ(snap.bucket_hist.size(), 2u);
  EXPECT_EQ(snap.bucket_hist.at(12), 1u);  // 10 tokens -> bucket 12
  EXPECT_EQ(snap.bucket_hist.at(32), 1u);  // 13 tokens -> the max_seq bucket
}

}  // namespace
}  // namespace vsq
