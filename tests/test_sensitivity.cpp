#include <gtest/gtest.h>

#include "exp/ptq.h"
#include "exp/sensitivity.h"
#include "nn/optimizer.h"

namespace vsq {
namespace {

// A self-contained zoo-free harness would retrain models; sensitivity's
// mechanics are exercised instead on a tiny untrained model through the
// same code path primitives (configure one layer, calibrate, evaluate).
TEST(Sensitivity, OneLayerConfigurationLeavesOthersOff) {
  ResNetVConfig cfg;
  cfg.in_h = 8;
  cfg.in_w = 8;
  cfg.widths = {8};
  cfg.blocks_per_stage = 1;
  cfg.classes = 2;
  ResNetV model(cfg);
  auto gemms = model.gemms();

  // Mirror resnet_layer_sensitivity's per-target configuration.
  const QuantSpec w = specs::weight_coarse(4);
  const QuantSpec a = specs::act_coarse(4, true);
  const std::size_t target = 1;
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    if (i == target) {
      gemms[i]->set_quant(w, a);
    } else {
      gemms[i]->set_quant(QuantSpec::disabled(), QuantSpec::disabled());
    }
  }
  EXPECT_TRUE(gemms[target]->weight_spec().enabled);
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    if (i != target) {
      EXPECT_FALSE(gemms[i]->weight_spec().enabled);
    }
  }
}

TEST(Sensitivity, DisabledSpecsPassThroughInQuantEval) {
  // A GEMM configured with disabled specs must produce identical outputs
  // in kQuantEval and kOff modes — the invariant mixed precision relies on.
  Rng rng(1);
  Linear l("l", 16, 8, rng);
  Tensor x(Shape{4, 16});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  const Tensor ref = l.forward(x, false);
  l.set_quant(QuantSpec::disabled(), QuantSpec::disabled());
  l.set_quant_mode(QuantMode::kCalibrate);
  l.forward(x, false);
  l.calibrate_finalize();
  l.set_quant_mode(QuantMode::kQuantEval);
  const Tensor q = l.forward(x, false);
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_EQ(ref[i], q[i]);
}

}  // namespace
}  // namespace vsq
