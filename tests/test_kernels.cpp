// Kernel dispatch registry tests (src/kernels/): ISA probe coherence, the
// VSQ_ISA cap (including rejection of unknown values), bit-identity of
// every registered tier across the gemm/conv/runner surface — odd shapes,
// tail vectors, batched vs sequential — the VNNI int8 kernel pinned
// directly (exercised-or-skip), and the resolution-time binding contract:
// primitives resolve at load, never on the serving path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "kernels/isa.h"
#include "kernels/registry.h"
#include "models/zoo.h"
#include "quant/amax.h"
#include "quant/export.h"
#include "quant/int_gemm.h"
#include "quant/int_kernel.h"
#include "quant/quantized_tensor.h"
#include "tensor/gemm_kernel.h"
#include "util/rng.h"

namespace vsq {
namespace {

// Scoped VSQ_ISA override; restores the previous value (or unset) on exit.
class EnvIsa {
 public:
  explicit EnvIsa(const char* v) {
    if (const char* prev = std::getenv("VSQ_ISA")) prev_ = prev;
    if (v) {
      setenv("VSQ_ISA", v, 1);
    } else {
      unsetenv("VSQ_ISA");
    }
  }
  ~EnvIsa() {
    if (prev_) {
      setenv("VSQ_ISA", prev_->c_str(), 1);
    } else {
      unsetenv("VSQ_ISA");
    }
  }
  EnvIsa(const EnvIsa&) = delete;
  EnvIsa& operator=(const EnvIsa&) = delete;

 private:
  std::optional<std::string> prev_;
};

QuantSpec weight_spec(int bits, int scale_bits, int v) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerVector;
  s.vector_size = v;
  s.scale_dtype = ScaleDtype::kTwoLevelInt;
  s.scale_fmt = QuantFormat{scale_bits, false};
  return s;
}

QuantSpec act_spec(int bits, int scale_bits, int v) {
  QuantSpec s = weight_spec(bits, scale_bits, v);
  s.dynamic = true;
  return s;
}

struct GemmOperands {
  QuantizedMatrix act;
  QuantizedMatrix wgt;
};

GemmOperands make_operands(std::int64_t rows, std::int64_t cols, std::int64_t k_out, int bits,
                           int scale_bits, int v, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w(Shape{k_out, cols}), a(Shape{rows, cols});
  for (auto& val : w.span()) val = static_cast<float>(rng.normal());
  for (auto& val : a.span()) val = static_cast<float>(rng.laplace(0.5));
  GemmOperands ops;
  ops.wgt = quantize_weights_int(w, weight_spec(bits, scale_bits, v));
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, QuantFormat{bits, true}) /
                      static_cast<float>(QuantFormat{scale_bits, false}.qmax());
  ops.act = quantize_activations_int(a, act_spec(bits, scale_bits, v), amax, gamma);
  return ops;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

// ---- ISA probe and the VSQ_ISA cap ----

TEST(Isa, FeatureBitsAreCoherent) {
  const isa::Features& f = isa::features();
  // Tier implications: VNNI requires the AVX-512 core set, which requires
  // AVX2 on every real CPU (and on every CPU the kernels target).
  if (f.avx512_vnni) {
    EXPECT_TRUE(f.avx512_core);
  }
  if (f.avx512_core) {
    EXPECT_TRUE(f.avx2);
  }
  const isa::Tier top = isa::max_cpu_tier();
  EXPECT_EQ(top == isa::Tier::kAvx512Vnni, f.avx512_vnni);
  if (top == isa::Tier::kPortable) {
    EXPECT_FALSE(f.avx2);
  }
  EXPECT_FALSE(isa::summary().empty());
}

TEST(Isa, TierNames) {
  EXPECT_STREQ(isa::tier_name(isa::Tier::kPortable), "portable");
  EXPECT_STREQ(isa::tier_name(isa::Tier::kAvx2), "avx2");
  EXPECT_STREQ(isa::tier_name(isa::Tier::kAvx512Vnni), "avx512_vnni");
}

TEST(Isa, EnvCapParsesEveryDocumentedSpelling) {
  {
    EnvIsa e(nullptr);
    EXPECT_FALSE(isa::env_cap().has_value());
  }
  for (const char* v : {"native", "auto", ""}) {
    EnvIsa e(v);
    EXPECT_FALSE(isa::env_cap().has_value()) << v;
  }
  for (const char* v : {"portable", "scalar"}) {
    EnvIsa e(v);
    EXPECT_EQ(isa::env_cap(), isa::Tier::kPortable) << v;
  }
  {
    EnvIsa e("avx2");
    EXPECT_EQ(isa::env_cap(), isa::Tier::kAvx2);
  }
  for (const char* v : {"avx512_vnni", "vnni", "avx512"}) {
    EnvIsa e(v);
    EXPECT_EQ(isa::env_cap(), isa::Tier::kAvx512Vnni) << v;
  }
  {
    EnvIsa e("portable");
    EXPECT_EQ(isa::effective_cap(), isa::Tier::kPortable);
  }
}

TEST(Isa, UnknownIsaRejectedEverywhere) {
  // Fixtures first: PTQ calibration itself resolves kernels and would
  // (correctly) throw under a bad cap before reaching the assertions.
  const GemmOperands ops = make_operands(2, 32, 8, 8, 6, 8, 11);
  const QuantizedModelPackage pkg = tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  EnvIsa e("pentium3");
  // Directly...
  EXPECT_THROW((void)isa::env_cap(), std::invalid_argument);
  try {
    (void)isa::env_cap();
    FAIL() << "env_cap did not throw";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("VSQ_ISA"), std::string::npos);
  }
  // ...through kernel resolution inside a per-call int_gemm pack...
  EXPECT_THROW((void)int_gemm(ops.act, ops.wgt, -1), std::invalid_argument);
  // ...and at package load: a typo must fail loudly, not serve portable.
  EXPECT_THROW((void)QuantizedModelRunner(pkg), std::invalid_argument);
}

// ---- Forced-tier bit-identity: every tier computes the same bits ----

struct TierCase {
  const char* env;  // nullptr = native (no cap)
  bool available() const {
    if (env == nullptr) return true;
    const std::string v(env);
    if (v == "portable") return true;
    if (v == "avx2") return isa::features().avx2;
    return isa::features().avx512_vnni;
  }
};

const TierCase kTiers[] = {{"portable"}, {"avx2"}, {"avx512_vnni"}, {nullptr}};

TEST(ForcedTier, GemmBitIdenticalAcrossTiers) {
  // Shapes chosen for the corners dispatch must not change: prime cols
  // (every row ends in a short tail vector), odd V (the madd interleave is
  // ineligible), and an even power-of-two shape (all SIMD tiers eligible,
  // the tie-break exercised). Bits 4 and 8 cross the VNNI eligibility
  // boundary in scale width; scale-product rounding on and off.
  struct Shape {
    std::int64_t rows, cols, k_out;
    int v;
  };
  const Shape shapes[] = {{5, 29, 9, 7}, {4, 64, 32, 16}, {3, 33, 11, 4}};
  int checked = 0;
  for (const Shape& s : shapes) {
    for (const int bits : {4, 8}) {
      for (const int sp_bits : {-1, 6}) {
        const GemmOperands ops = make_operands(
            s.rows, s.cols, s.k_out, bits, 6, s.v,
            static_cast<std::uint64_t>(s.cols * 1000 + bits * 10 + (sp_bits > 0)));
        std::optional<Tensor> baseline;
        for (const TierCase& tier : kTiers) {
          if (!tier.available()) continue;
          EnvIsa e(tier.env);
          const Tensor y = int_gemm(ops.act, ops.wgt, sp_bits);
          if (!baseline) {
            baseline.emplace(y);  // the portable tier, always first
          } else {
            expect_bitwise_equal(*baseline, y,
                                 std::string("tier ") + (tier.env ? tier.env : "native") +
                                     " cols=" + std::to_string(s.cols) +
                                     " bits=" + std::to_string(bits));
            ++checked;
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ForcedTier, ConvLayersBitIdenticalAcrossTiers) {
  MacConfig mac = MacConfig::parse("4/8/6/10");
  mac.act_unsigned = true;
  const QuantizedModelPackage pkg = tiny_conv_package(mac);
  Rng rng(77);
  int convs = 0;
  for (const auto& [name, l] : pkg.layers) {
    if (l.kind != PackagedLayerKind::kConv) continue;
    ++convs;
    Tensor x(Shape{2, 8, 8, l.conv_in_channels()});
    for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-1.5, 1.5));
    std::optional<Tensor> baseline;
    for (const TierCase& tier : kTiers) {
      if (!tier.available()) continue;
      EnvIsa e(tier.env);
      const Tensor y = run_packaged_conv_layer(l, x);
      if (!baseline) {
        baseline.emplace(y);
      } else {
        expect_bitwise_equal(*baseline, y,
                             name + " tier " + (tier.env ? tier.env : "native"));
      }
    }
  }
  EXPECT_GT(convs, 0);
}

TEST(ForcedTier, RunnerBatchedVsSequentialBitIdenticalPerTier) {
  const QuantizedModelPackage pkg = tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  Rng rng(91);
  Tensor batch(Shape{6, TinyMlp::kIn});
  for (auto& v : batch.span()) v = static_cast<float>(rng.normal());
  std::optional<Tensor> baseline;
  for (const TierCase& tier : kTiers) {
    if (!tier.available()) continue;
    EnvIsa e(tier.env);
    const QuantizedModelRunner runner(pkg);  // resolves under this cap
    const Tensor all = runner.forward(batch);
    // Row r of the batched forward must equal a single-row forward.
    for (std::int64_t r = 0; r < batch.shape()[0]; ++r) {
      Tensor one(Shape{1, TinyMlp::kIn});
      for (std::int64_t c = 0; c < TinyMlp::kIn; ++c) one.at2(0, c) = batch.at2(r, c);
      const Tensor yr = runner.forward(one);
      for (std::int64_t c = 0; c < runner.out_features(); ++c) {
        ASSERT_EQ(all.at2(r, c), yr.at2(0, c))
            << "row " << r << " tier " << (tier.env ? tier.env : "native");
      }
    }
    if (!baseline) {
      baseline.emplace(all);
    } else {
      expect_bitwise_equal(*baseline, all,
                           std::string("runner tier ") + (tier.env ? tier.env : "native"));
    }
  }
}

TEST(ForcedTier, ResolutionBindsAtLoadNotAtForward) {
  // A runner built under a cap keeps its resolved kernels after the cap is
  // lifted: dispatch is a load-time decision. Forwards under a different
  // (even invalid) VSQ_ISA neither re-resolve nor fail.
  const QuantizedModelPackage pkg = tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  Rng rng(93);
  Tensor x(Shape{2, TinyMlp::kIn});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  std::optional<QuantizedModelRunner> runner;
  {
    EnvIsa e("portable");
    runner.emplace(pkg);
    for (const auto& [name, prim] : runner->primitives()) {
      EXPECT_STREQ(prim.isa_name(), "portable") << name;
    }
  }
  const Tensor y_capped = runner->forward(x);
  const Tensor y_uncapped = [&] {
    EnvIsa e("pentium3");  // would throw if forward resolved anything
    return runner->forward(x);
  }();
  expect_bitwise_equal(y_capped, y_uncapped, "load-time binding");
}

// ---- The fp32 GEMM microkernel rides the same registry ----

TEST(ForcedTier, FpMicroHonorsCap) {
  {
    EnvIsa e("portable");
    EXPECT_FALSE(gemm_kernel_uses_avx2());
  }
  {
    EnvIsa e(nullptr);
    const isa::Features& f = isa::features();
    EXPECT_EQ(gemm_kernel_uses_avx2(), f.avx2 && f.fma);
  }
}

// ---- Resolution caching and the steady-state contract ----

TEST(Registry, SameDescriptorResolvesToSameImpl) {
  const GemmOperands ops = make_operands(3, 64, 16, 8, 6, 16, 21);
  const VectorLayout layout = ops.act.layout;
  const detail::IntActAttrs attrs = detail::IntActAttrs::of(ops.act);
  const detail::IntWeightPanels p1(ops.wgt, layout, attrs);
  const detail::IntWeightPanels p2(ops.wgt, layout, attrs);
  // The tie-break is cached per shape class: two packs of the same
  // descriptor must agree (same registered implementation object).
  EXPECT_EQ(&p1.panel_impl(), &p2.panel_impl());
  EXPECT_EQ(&p1.acc_impl(), &p2.acc_impl());
}

TEST(Registry, SteadyStateForwardsResolveNothing) {
  const QuantizedModelPackage pkg = tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  const QuantizedModelRunner runner(pkg);
  Rng rng(31);
  Tensor x(Shape{4, TinyMlp::kIn});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  (void)runner.forward(x);  // settle any lazily-resolved state
  const std::uint64_t resolved = kernels::dispatch_resolutions_total();
  const std::uint64_t packed = detail::panels_packed_total();
  for (int i = 0; i < 8; ++i) (void)runner.forward(x);
  EXPECT_EQ(kernels::dispatch_resolutions_total(), resolved);
  EXPECT_EQ(detail::panels_packed_total(), packed);
}

TEST(Registry, PanelAccFallsBackToPortableOnWideScaleProducts) {
  kernels::KernelDesc desc;
  desc.op = kernels::OpKind::kPanelAcc;
  desc.quant.full_bits = 20;
  const kernels::PanelAccImpl& narrow = kernels::resolve_panel_acc(desc);
  if (isa::features().avx2 && !isa::env_cap().has_value()) {
    EXPECT_STREQ(narrow.name, "avx2");
  }
  // 32-bit scale products overflow the avx2 impl's epi32 lanes; the
  // registry must hand back the 64-bit-safe portable loop.
  desc.quant.full_bits = 32;
  EXPECT_STREQ(kernels::resolve_panel_acc(desc).name, "portable");
}

// ---- The VNNI int8 kernel, pinned directly ----
//
// Tier resolution picks VNNI only when the micro-benchmark tie-break
// favors it, so these tests pin the registered implementation by name:
// eligibility must draw the documented boundaries, and the kernel must
// reproduce the scalar dot products exactly on a hand-packed panel.

kernels::KernelDesc vnni_desc(int act_bits, bool act_signed, std::int64_t max_len) {
  kernels::KernelDesc d;
  d.op = kernels::OpKind::kIntPanel;
  d.shape = {max_len * 2, 8, max_len, max_len % 2 == 0};
  d.quant.act = {act_bits, act_signed};
  d.quant.wgt = {8, true};
  d.quant.full_bits = 12;
  return d;
}

TEST(Vnni, EligibilityBoundaries) {
  const kernels::IntPanelImpl* impl = kernels::find_int_panel_impl("avx512_vnni");
  if (impl == nullptr) {
    GTEST_SKIP() << "CPU lacks AVX512-VNNI; kernel not registered";
  }
  ASSERT_NE(impl->eligible, nullptr);
  EXPECT_EQ(impl->layout, kernels::PanelLayout::kQuadInt8);
  EXPECT_EQ(impl->row_image, kernels::RowImage::kBiasedU8);
  // Signed 8-bit acts bias to u8 exactly; unsigned 8-bit fit directly.
  EXPECT_TRUE(impl->eligible(vnni_desc(8, true, 16)));
  EXPECT_TRUE(impl->eligible(vnni_desc(8, false, 16)));
  // 9+ signed bits cannot bias into u8.
  EXPECT_FALSE(impl->eligible(vnni_desc(9, true, 16)));
  EXPECT_FALSE(impl->eligible(vnni_desc(10, true, 16)));
  // 9-bit unsigned acts exceed u8 as well.
  EXPECT_FALSE(impl->eligible(vnni_desc(9, false, 16)));
  // The non-saturating vpdpbusd accumulator: enormous vectors overflow
  // the biased-u8 worst case and must be rejected.
  EXPECT_FALSE(impl->eligible(vnni_desc(8, true, std::int64_t{1} << 24)));
}

TEST(Vnni, QuadKernelMatchesScalarDotProducts) {
  const kernels::IntPanelImpl* impl = kernels::find_int_panel_impl("avx512_vnni");
  if (impl == nullptr) {
    GTEST_SKIP() << "CPU lacks AVX512-VNNI; kernel not registered";
  }
  constexpr int PNR = kernels::kPanelCols;
  // Two vectors with non-multiple-of-4 lengths: quads are zero-padded and
  // the 4-byte activation reads overrun into the zeroed tail.
  const kernels::VecRange vr[2] = {{0, 5}, {5, 3}};
  const std::int64_t cols = 8;
  const std::int64_t quads[2] = {2, 1};  // padded4(5)/4, padded4(3)/4

  Rng rng(55);
  std::int16_t arow[8];
  std::int8_t w[PNR][8];  // [j][c] logical weights
  for (auto& a : arow) a = static_cast<std::int16_t>(rng.uniform_u64(255)) - 127;
  for (auto& wj : w) {
    for (auto& wc : wj) {
      wc = static_cast<std::int8_t>(static_cast<int>(rng.uniform_u64(255)) - 127);
    }
  }

  // Hand-pack the kQuadInt8 panel ([quad][j][4], zero-padded) and its
  // u8-bias compensation block, exactly as IntWeightPanels::pack does.
  constexpr std::int16_t bias = 128;  // signed 8-bit acts
  alignas(64) std::int8_t panel[3 * PNR * 4] = {};
  alignas(64) std::int32_t ncomp[2 * PNR];
  alignas(64) std::int32_t dp[2 * PNR];
  std::uint8_t u8row[8 + 4] = {};
  for (std::int64_t c = 0; c < cols; ++c) {
    u8row[c] = static_cast<std::uint8_t>(arow[c] + bias);
  }
  std::int8_t* vd = panel;
  for (int v = 0; v < 2; ++v) {
    for (std::int64_t q = 0; q < quads[v]; ++q) {
      for (int j = 0; j < PNR; ++j) {
        for (int h = 0; h < 4; ++h) {
          const std::int64_t c = 4 * q + h;
          vd[q * 4 * PNR + j * 4 + h] = c < vr[v].len ? w[j][vr[v].c0 + c] : std::int8_t{0};
        }
      }
    }
    for (int j = 0; j < PNR; ++j) {
      std::int32_t wsum = 0;
      for (std::int64_t c = 0; c < vr[v].len; ++c) wsum += w[j][vr[v].c0 + c];
      ncomp[v * PNR + j] = -static_cast<std::int32_t>(bias) * wsum;
    }
    vd += quads[v] * 4 * PNR;
  }

  kernels::PanelArgs args;
  args.arow = arow;
  args.arow8 = u8row;
  args.wp = panel;
  args.ncomp = ncomp;
  args.vr = vr;
  args.nvec = 2;
  args.dp = dp;
  impl->fn(args);

  for (int v = 0; v < 2; ++v) {
    for (int j = 0; j < PNR; ++j) {
      std::int32_t want = 0;
      for (std::int64_t c = 0; c < vr[v].len; ++c) {
        want += static_cast<std::int32_t>(arow[vr[v].c0 + c]) * w[j][vr[v].c0 + c];
      }
      EXPECT_EQ(dp[v * PNR + j], want) << "v=" << v << " j=" << j;
    }
  }
}

// ---- Sub-byte packed layouts: property sweep ----

// Scoped VSQ_PACKED override (same contract as EnvIsa): "0" forces every
// resolution onto byte-width panels, unset restores the packed preference.
class EnvPacked {
 public:
  explicit EnvPacked(const char* v) {
    if (const char* prev = std::getenv("VSQ_PACKED")) prev_ = prev;
    if (v) {
      setenv("VSQ_PACKED", v, 1);
    } else {
      unsetenv("VSQ_PACKED");
    }
  }
  ~EnvPacked() {
    if (prev_) {
      setenv("VSQ_PACKED", prev_->c_str(), 1);
    } else {
      unsetenv("VSQ_PACKED");
    }
  }
  EnvPacked(const EnvPacked&) = delete;
  EnvPacked& operator=(const EnvPacked&) = delete;

 private:
  std::optional<std::string> prev_;
};

TEST(PackedSweep, SubByteGemmBitIdenticalToByteWidthPanels) {
  // Property sweep: every packed code width x odd/even vector sizes x
  // shapes ending in tail vectors and tail panel columns. For each case
  // the byte-width panel path (VSQ_PACKED=0) is the reference; the packed
  // preference under every available tier must reproduce it bit for bit —
  // which proves the pack -> unpack-in-register round trip is the
  // identity on every code (random operands exercise the full code range,
  // sign extension included, and zero-padded tails must stay neutral).
  struct Case {
    std::int64_t cols;
    int v;
  };
  // 29/3, 45/5, 33/7: odd V with short tail vectors (bitpacked tier only);
  // 64/16: even, vector-aligned (madd/VNNI nibble layouts eligible at 4
  // bits); 37/16: even V with a ragged tail vector. k_out=11 leaves a
  // 3-column tail panel.
  const Case cases[] = {{29, 3}, {45, 5}, {33, 7}, {64, 16}, {37, 16}};
  int sub_byte_packs = 0;
  for (const int bits : {3, 4, 5, 6, 8}) {
    for (const Case& c : cases) {
      const GemmOperands ops =
          make_operands(3, c.cols, 11, bits, 6, c.v,
                        static_cast<std::uint64_t>(7000 + bits * 100 + c.cols));
      Tensor base;
      {
        EnvPacked off("0");
        base = int_gemm(ops.act, ops.wgt, -1);
      }
      // Forced onto byte-width panels, sub-byte formats must report the
      // materialized fallback (the counter the serving assertion watches).
      {
        EnvPacked off("0");
        const detail::IntWeightPanels p(ops.wgt, ops.act.layout,
                                        detail::IntActAttrs::of(ops.act));
        EXPECT_EQ(p.materialized_sub_byte(), bits < 8) << "bits=" << bits;
      }
      for (const TierCase& tier : kTiers) {
        if (!tier.available()) continue;
        EnvIsa e(tier.env);
        const Tensor y = int_gemm(ops.act, ops.wgt, -1);
        expect_bitwise_equal(base, y, std::string("packed tier ") +
                                          (tier.env ? tier.env : "native") +
                                          " bits=" + std::to_string(bits) +
                                          " cols=" + std::to_string(c.cols) +
                                          " v=" + std::to_string(c.v));
        // The packed preference must actually engage for every sub-byte
        // width (the portable bitpacked tier is always eligible), and the
        // packed form must be smaller than the int16 panels it replaces.
        const detail::IntWeightPanels p(ops.wgt, ops.act.layout,
                                        detail::IntActAttrs::of(ops.act));
        if (bits < 8) {
          EXPECT_TRUE(kernels::panel_layout_sub_byte(p.layout()))
              << "bits=" << bits << " tier=" << (tier.env ? tier.env : "native");
          EXPECT_FALSE(p.materialized_sub_byte());
          EXPECT_LT(p.resident_bytes(), p.baseline_bytes());
          ++sub_byte_packs;
        }
      }
    }
  }
  EXPECT_GT(sub_byte_packs, 0);
}

TEST(PackedSweep, PrepackedSubBytePanelsMatchPerCallPack) {
  // The load-time prepack path (what IntLayerPrimitive holds) through the
  // same sub-byte layouts: bit-identical to the per-call pack.
  for (const int bits : {3, 4, 5, 6}) {
    const GemmOperands ops =
        make_operands(4, 37, 9, bits, 6, 16, static_cast<std::uint64_t>(7600 + bits));
    const Tensor per_call = int_gemm(ops.act, ops.wgt, -1);
    const detail::IntWeightPanels panels(ops.wgt, ops.act.layout,
                                         detail::IntActAttrs::of(ops.act));
    EXPECT_TRUE(kernels::panel_layout_sub_byte(panels.layout())) << "bits=" << bits;
    const Tensor prepacked = detail::int_gemm_packed(ops.act, ops.wgt, -1, nullptr, &panels);
    expect_bitwise_equal(per_call, prepacked, "prepacked bits=" + std::to_string(bits));
  }
}

TEST(PackedSweep, ConvPackedBitIdenticalToByteWidthPanels) {
  // The conv datapath streams patch rows through the same panels; the
  // packed preference must not change a single conv output bit vs the
  // byte-width panel path, on any tier.
  MacConfig mac = MacConfig::parse("4/8/6/10");
  mac.act_unsigned = true;
  const QuantizedModelPackage pkg = tiny_conv_package(mac);
  Rng rng(7800);
  int convs = 0;
  for (const auto& [name, l] : pkg.layers) {
    if (l.kind != PackagedLayerKind::kConv) continue;
    ++convs;
    Tensor x(Shape{2, 8, 8, l.conv_in_channels()});
    for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-1.5, 1.5));
    Tensor base;
    {
      EnvPacked off("0");
      base = run_packaged_conv_layer(l, x);
    }
    for (const TierCase& tier : kTiers) {
      if (!tier.available()) continue;
      EnvIsa e(tier.env);
      expect_bitwise_equal(base, run_packaged_conv_layer(l, x),
                           name + " packed tier " + (tier.env ? tier.env : "native"));
    }
  }
  EXPECT_GT(convs, 0);
}

TEST(Vnni, IneligibleOperandsFallBackUnderVnniCap) {
  // 10-bit activations are VNNI-ineligible; under VSQ_ISA=avx512_vnni the
  // registry must quietly resolve a lower tier, bit-identical to portable.
  const GemmOperands ops = make_operands(3, 40, 8, 10, 6, 8, 67);
  Tensor y_portable, y_vnni_cap;
  {
    EnvIsa e("portable");
    y_portable = int_gemm(ops.act, ops.wgt, -1);
  }
  {
    EnvIsa e("avx512_vnni");
    y_vnni_cap = int_gemm(ops.act, ops.wgt, -1);
  }
  expect_bitwise_equal(y_portable, y_vnni_cap, "vnni-ineligible fallback");
}

}  // namespace
}  // namespace vsq
