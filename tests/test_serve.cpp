// Serving engine tests: queue/batcher semantics, bit-exactness of batched
// vs sequential execution, thread-count determinism through
// QuantizedModelRunner, the repeated-input result cache, stats math, and
// the >= 2x batched-throughput acceptance gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "fault/failpoint.h"
#include "hw/mac_config.h"
#include "kernels/registry.h"
#include "models/zoo.h"
#include "quant/int_kernel.h"
#include "serve/session.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

QuantizedModelPackage tiny_package() {
  return tiny_mlp_package(MacConfig::parse("4/8/6/10"));
}

Tensor random_rows(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{rows, cols});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// ---- RequestQueue ----

TEST(RequestQueue, PopTakesWhatIsQueuedUpToMaxBatch) {
  RequestQueue q;
  for (int i = 0; i < 5; ++i) {
    Request r;
    r.id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(q.push(std::move(r)));
  }
  auto batch = q.pop_batch(3, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[2].id, 2u);
  EXPECT_EQ(q.depth(), 2u);
  batch = q.pop_batch(16, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueue, PopBatchDrainsThenReturnsEmptyWhenClosed) {
  RequestQueue q;
  Request r;
  ASSERT_TRUE(q.push(std::move(r)));
  q.close();
  EXPECT_FALSE(q.push(Request{}));  // closed: rejected
  EXPECT_EQ(q.pop_batch(4, std::chrono::microseconds(0)).size(), 1u);
  EXPECT_TRUE(q.pop_batch(4, std::chrono::microseconds(0)).empty());
}

TEST(RequestQueue, LingerCollectsLateArrivals) {
  RequestQueue q;
  Request first;
  ASSERT_TRUE(q.push(std::move(first)));
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Request r;
    r.id = 1;
    q.push(std::move(r));
  });
  // Generous linger: the late request must ride the same batch.
  auto batch = q.pop_batch(2, std::chrono::microseconds(200000));
  late.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueue, BoundedDepthBlocksProducerUntilPop) {
  RequestQueue q(/*max_depth=*/1);
  ASSERT_TRUE(q.push(Request{}));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.push(Request{});
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(second_pushed.load());
  (void)q.pop_batch(1, std::chrono::microseconds(0));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

// ---- Session correctness ----

TEST(InferenceSession, BatchedOutputsBitIdenticalToSequential) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner reference(pkg);

  ServeConfig cfg;
  cfg.max_batch = 16;
  InferenceSession session(pkg, cfg);

  constexpr int kClients = 8, kPerClient = 32;
  std::vector<std::vector<Tensor>> inputs(kClients);
  std::vector<std::vector<Tensor>> outputs(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      inputs[static_cast<std::size_t>(c)].push_back(random_rows(
          1, TinyMlp::kIn, 100 + static_cast<std::uint64_t>(c * kPerClient + i)));
    }
    outputs[static_cast<std::size_t>(c)].resize(kPerClient);
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        outputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
            session.infer(inputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& t : clients) t.join();

  const ServeStatsSnapshot snap = session.stats();
  EXPECT_EQ(snap.requests, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(snap.mean_batch, 1.0);  // concurrency actually coalesced

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const Tensor ref = reference.forward(inputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]);
      expect_bitwise_equal(ref, outputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]);
    }
  }
}

TEST(InferenceSession, RejectsWrongInputShape) {
  InferenceSession session(tiny_package());
  EXPECT_THROW(session.submit(Tensor(Shape{TinyMlp::kIn + 1})), std::invalid_argument);
  EXPECT_THROW(session.submit(Tensor(Shape{2, TinyMlp::kIn})), std::invalid_argument);
}

TEST(InferenceSession, SubmitAfterShutdownThrows) {
  InferenceSession session(tiny_package());
  session.shutdown();
  EXPECT_THROW(session.submit(Tensor(Shape{TinyMlp::kIn})), std::runtime_error);
}

TEST(InferenceSession, ShutdownDrainsPendingRequests) {
  ServeConfig cfg;
  cfg.max_batch = 4;
  InferenceSession session(tiny_package(), cfg);
  std::vector<std::future<Tensor>> pending;
  const Tensor input = random_rows(1, TinyMlp::kIn, 9);
  for (int i = 0; i < 32; ++i) pending.push_back(session.submit(input));
  session.shutdown();
  for (auto& f : pending) {
    const Tensor y = f.get();  // must resolve, not hang or throw
    EXPECT_EQ(y.shape()[1], TinyMlp::kOut);
  }
}

TEST(InferenceSession, ResultCacheShortCircuitsRepeats) {
  ServeConfig cfg;
  cfg.cache_entries = 8;
  InferenceSession session(tiny_package(), cfg);
  const Tensor input = random_rows(1, TinyMlp::kIn, 10);
  const Tensor first = session.infer(input);
  const Tensor again = session.infer(input);
  expect_bitwise_equal(first, again);
  const ServeStatsSnapshot snap = session.stats();
  EXPECT_EQ(snap.requests, 2u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.batches, 1u);  // the repeat never reached the batcher
}

TEST(InferenceSession, DatapathStatsAccumulateWhenEnabled) {
  ServeConfig cfg;
  cfg.collect_datapath_stats = true;
  cfg.warmup = false;  // warmup batches would pollute vector_ops
  InferenceSession session(tiny_package(), cfg);
  (void)session.infer(random_rows(1, TinyMlp::kIn, 11));
  EXPECT_GT(session.datapath_stats().vector_ops, 0u);
}

// ---- Weight-panel cache: pack at load, never per request ----

TEST(PanelCache, SteadyStateServingRepacksZeroPanels) {
  // Locks in the load-time prepack win: before it, every request re-packed
  // every layer's IntWeightPanels (most of the batch-1 forward's cost).
  // Session construction (runner + warmup) may pack; serving traffic must
  // not.
  ServeConfig cfg;
  cfg.collect_datapath_stats = true;
  InferenceSession session(tiny_package(), cfg);  // warmup on by default
  const std::uint64_t packed_after_load = detail::panels_packed_total();
  for (int i = 0; i < 32; ++i) {
    (void)session.infer(random_rows(1, TinyMlp::kIn, 600 + static_cast<std::uint64_t>(i)));
  }
  // Per-call packs observed by the datapath stats: exactly zero...
  EXPECT_EQ(session.datapath_stats().panels_packed, 0u);
  // ...and the process-wide pack counter did not move either.
  EXPECT_EQ(detail::panels_packed_total(), packed_after_load);
}

TEST(PanelCache, SteadyStateServingMaterializesZeroSubByteUnpacks) {
  // The tiny model's 4-bit weights must serve from a sub-byte packed
  // layout on every tier (the portable bitpacked tier exists exactly so
  // no ISA lane falls back): a "materialized" unpack — sub-byte format
  // stored in a byte-width panel — would silently forfeit the footprint
  // win. Load may not materialize, and steady-state traffic must not
  // move the counter at all.
  const std::uint64_t materialized_before = detail::panels_unpacked_materialized_total();
  ServeConfig cfg;
  cfg.collect_datapath_stats = true;
  InferenceSession session(tiny_package(), cfg);
  EXPECT_EQ(detail::panels_unpacked_materialized_total(), materialized_before)
      << "4-bit load-time packs landed in a byte-width panel layout";
  for (int i = 0; i < 32; ++i) {
    (void)session.infer(random_rows(1, TinyMlp::kIn, 660 + static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(session.datapath_stats().panels_unpacked_materialized, 0u);
  EXPECT_EQ(detail::panels_unpacked_materialized_total(), materialized_before);
  // And the snapshot reports the resident packed footprint the session
  // computed at load (nonzero for any model with resolved panels).
  EXPECT_GT(session.stats().packed_weight_bytes, 0u);
}

TEST(PanelCache, PerCallPathCountsPacksPrepackedDoesNot) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedLayerPackage& fc1 = pkg.layers.at("fc1");
  IntGemmStats per_call;
  (void)run_packaged_layer(fc1, random_rows(2, fc1.weights.cols(), 601), -1, &per_call);
  EXPECT_EQ(per_call.panels_packed, 1u);

  const QuantizedModelRunner runner(pkg);  // packs both layers at load
  IntGemmStats cached;
  (void)runner.forward(random_rows(2, TinyMlp::kIn, 602), &cached);
  EXPECT_EQ(cached.panels_packed, 0u);
  EXPECT_GT(cached.vector_ops, 0u);
}

TEST(PanelCache, PrepackedBitIdenticalToPerCallPack) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner runner(pkg);  // prepacked execution
  const Tensor x = random_rows(4, TinyMlp::kIn, 603);
  // The same program chained by hand through the per-call-pack path.
  Tensor h = run_packaged_layer(pkg.layers.at("fc1"), x);
  for (auto& v : h.span()) v = v > 0.0f ? v : 0.0f;
  h = run_packaged_layer(pkg.layers.at("fc2"), h);
  expect_bitwise_equal(h, runner.forward(x));
}

TEST(PanelCache, ConvPrepackedBitIdenticalToPerCallPack) {
  MacConfig mac = MacConfig::parse("4/8/6/10");
  mac.act_unsigned = true;
  QuantizedModelPackage pkg = tiny_conv_package(mac);
  Rng rng(604);
  int convs = 0;
  for (const auto& [name, l] : pkg.layers) {
    if (l.kind != PackagedLayerKind::kConv) continue;
    ++convs;
    Tensor x(Shape{2, 8, 8, l.conv_in_channels()});
    for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-1.5, 1.5));
    const Tensor per_call = run_packaged_conv_layer(l, x);
    const IntLayerPrimitive prim(l);  // load-time resolution + pack
    expect_bitwise_equal(per_call, prim.execute(x));
  }
  EXPECT_GT(convs, 0);
}

TEST(PanelCache, MismatchedPrepackedPanelsRejected) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedLayerPackage& fc1 = pkg.layers.at("fc1");
  const QuantizedLayerPackage& fc2 = pkg.layers.at("fc2");
  const Tensor x = random_rows(2, fc1.weights.cols(), 605);
  const QuantizedMatrix acts =
      quantize_activations_int(x, fc1.act_spec, fc1.act_amax, fc1.act_gamma);
  const auto run_with = [&](const detail::IntWeightPanels& panels) {
    return detail::int_gemm_packed(acts, fc1.weights, -1, nullptr, &panels);
  };
  // Panels packed from another layer's weights: wrong source -> throw,
  // never silent garbage.
  const detail::IntWeightPanels wrong(fc2.weights, fc2.act_spec.layout(fc2.weights.cols()),
                                      detail::IntActAttrs::of(fc2.act_spec));
  EXPECT_THROW((void)run_with(wrong), std::invalid_argument);
  // Same weights but packed under different vector boundaries (the vpr may
  // even coincide): geometry mismatch -> throw.
  VectorLayout shifted = fc1.act_spec.layout(fc1.weights.cols());
  shifted.vector_size *= 2;
  const detail::IntWeightPanels wrong_geom(fc1.weights, shifted,
                                           detail::IntActAttrs::of(fc1.act_spec));
  EXPECT_THROW((void)run_with(wrong_geom), std::invalid_argument);
  // Same weights and geometry but packed for a different activation
  // element format: kernel resolution was parameterized by it -> throw.
  detail::IntActAttrs wide_act = detail::IntActAttrs::of(fc1.act_spec);
  wide_act.fmt.bits += 1;
  const detail::IntWeightPanels wrong_fmt(
      fc1.weights, fc1.act_spec.layout(fc1.weights.cols()), wide_act);
  EXPECT_THROW((void)run_with(wrong_fmt), std::invalid_argument);
  // A value-identical copy of the weights is still the wrong object: the
  // panels carry pointers into their source operand, so identity is the
  // contract.
  QuantizedLayerPackage copy = fc1;
  const detail::IntWeightPanels from_copy(copy.weights,
                                          copy.act_spec.layout(copy.weights.cols()),
                                          detail::IntActAttrs::of(copy.act_spec));
  EXPECT_THROW((void)run_with(from_copy), std::invalid_argument);
}

TEST(PanelCache, SteadyStateServingResolvesZeroDispatches) {
  // The registry analogue of the repack assertion: every kernel dispatch
  // resolution happens while the runner (and its warmup) loads; serving
  // traffic afterwards runs entirely on resolved primitives.
  InferenceSession session(tiny_package(), ServeConfig{});
  (void)session.infer(random_rows(1, TinyMlp::kIn, 640));  // settle lazily-built state
  const std::uint64_t resolved_after_load = kernels::dispatch_resolutions_total();
  for (int i = 0; i < 16; ++i) {
    (void)session.infer(random_rows(1, TinyMlp::kIn, 641 + static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(kernels::dispatch_resolutions_total(), resolved_after_load);
}

// ---- Determinism across thread counts ----

TEST(Determinism, RunnerBitIdenticalAcrossThreadCounts) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner runner(pkg);
  const Tensor batch = random_rows(16, TinyMlp::kIn, 12);

  Tensor y1, y8;
  {
    ThreadPool pool1(1);
    ThreadPoolScope scope(pool1);
    y1 = runner.forward(batch);
  }
  {
    ThreadPool pool8(8);
    ThreadPoolScope scope(pool8);
    y8 = runner.forward(batch);
  }
  expect_bitwise_equal(y1, y8);

  // Unbatched rows, same story — and identical to the batched rows.
  for (std::int64_t r = 0; r < batch.shape()[0]; ++r) {
    const Tensor row = batch.slice_rows(r, r + 1);
    Tensor r1, r8;
    {
      ThreadPool pool1(1);
      ThreadPoolScope scope(pool1);
      r1 = runner.forward(row);
    }
    {
      ThreadPool pool8(8);
      ThreadPoolScope scope(pool8);
      r8 = runner.forward(row);
    }
    expect_bitwise_equal(r1, r8);
    expect_bitwise_equal(r1, y1.slice_rows(r, r + 1));
  }
}

// ---- Stats math ----

TEST(ServeStatsMath, InterpolatedPercentiles) {
  std::vector<double> sample;
  for (int i = 100; i >= 1; --i) sample.push_back(i);  // 1..100, reversed order
  // Linear interpolation over the n-1 gaps (numpy's default): exact order
  // statistics at the grid points, blends in between.
  EXPECT_DOUBLE_EQ(percentile_us(sample, 50.0), 50.5);
  EXPECT_NEAR(percentile_us(sample, 95.0), 95.05, 1e-9);
  EXPECT_NEAR(percentile_us(sample, 99.0), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(percentile_us(sample, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile_us(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_us({}, 50.0), 0.0);
}

TEST(ServeStatsMath, LowCountPercentileEdgeCases) {
  // The old nearest-rank rule snapped every p > 100*(n-1)/n to the max, so
  // a 5-sample run reported p50 == median but p99 == max exactly — a
  // number that looked like a resolved tail quantile and wasn't. The
  // interpolated definition degrades gracefully instead.
  // Empty: 0 for every p.
  EXPECT_DOUBLE_EQ(percentile_us({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_us({}, 99.0), 0.0);
  // One sample answers every p with itself.
  EXPECT_DOUBLE_EQ(percentile_us({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_us({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_us({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_us({7.0}, 100.0), 7.0);
  // Two samples: p50 is the midpoint (was: the larger sample), p99 sits
  // just below the max instead of on it.
  EXPECT_DOUBLE_EQ(percentile_us({10.0, 20.0}, 50.0), 15.0);
  EXPECT_NEAR(percentile_us({10.0, 20.0}, 99.0), 19.9, 1e-9);
  EXPECT_DOUBLE_EQ(percentile_us({10.0, 20.0}, 100.0), 20.0);
  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile_us({10.0, 20.0}, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_us({10.0, 20.0}, 250.0), 20.0);
  // Monotonic in p on a small sample.
  const std::vector<double> five{3.0, 1.0, 5.0, 2.0, 4.0};
  double prev = 0.0;
  for (const double p : {0.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double q = percentile_us(five, p);
    EXPECT_GE(q, prev) << "p=" << p;
    EXPECT_LE(q, 5.0) << "p=" << p;
    prev = q;
  }
  // p99 of 5 samples no longer equals the max.
  EXPECT_LT(percentile_us(five, 99.0), 5.0);
}

TEST(ServeStatsMath, SnapshotAggregates) {
  ServeStats stats;
  stats.mark_start();
  stats.record_batch(4);
  stats.record_batch(2);
  for (int i = 0; i < 6; ++i) stats.record_request(10.0 * (i + 1));
  stats.record_request(5.0, /*cache_hit=*/true);
  const ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, 7u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(s.mean_batch, 3.0);
  ASSERT_EQ(s.batch_hist.size(), 5u);
  EXPECT_EQ(s.batch_hist[4], 1u);
  EXPECT_EQ(s.batch_hist[2], 1u);
  EXPECT_EQ(s.max_us, 60.0);
  const std::string j = s.json();
  EXPECT_NE(j.find("\"requests\":7"), std::string::npos);
  EXPECT_NE(j.find("\"cache_hits\":1"), std::string::npos);
}

TEST(ServeStatsMath, LatencyWindowStaysBoundedOverMillionRecords) {
  // The original latencies vector grew 8 bytes per request forever — a
  // linear leak under soak traffic. The sliding window pins the footprint:
  // a million records live in exactly `window` samples, while the count,
  // mean and max stay exact over ALL requests.
  ServeStats stats(/*latency_window=*/128);
  ASSERT_EQ(stats.latency_window_capacity(), 128u);
  stats.mark_start();
  constexpr std::uint64_t kN = 1'000'000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    stats.record_request(static_cast<double>(i % 1000));
  }
  const ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, kN);
  EXPECT_EQ(s.percentile_window, 128u);  // percentiles describe the window...
  EXPECT_DOUBLE_EQ(s.max_us, 999.0);     // ...aggregates describe everything
  EXPECT_NEAR(s.mean_us, 499.5, 1e-6);
  // The window holds the LAST 128 samples ((kN-128..kN-1) % 1000 =
  // 872..999), so its median sits far above the all-time median — proof
  // the percentiles really come from the bounded ring, not retained
  // history.
  EXPECT_GT(s.p50_us, 850.0);
  EXPECT_LE(s.p99_us, 999.0);
}

TEST(ServeStatsMath, ErrorsShedAndQueueDepthReachSnapshotAndJson) {
  ServeStats stats;
  stats.mark_start();
  stats.record_batch(3);
  stats.record_errors(3);  // the whole batch's forward pass threw
  stats.record_shed();
  stats.record_shed();
  stats.record_request(40.0);
  ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.requests, 1u);  // errored requests never count as completed
  s.queue_depth = 5;          // the session layer samples the gauge
  const std::string j = s.json();
  EXPECT_NE(j.find("\"errors\":3"), std::string::npos);
  EXPECT_NE(j.find("\"shed\":2"), std::string::npos);
  EXPECT_NE(j.find("\"queue_depth\":5"), std::string::npos);
  // Window bounds ship too, so /stats consumers can rate-convert.
  EXPECT_NE(j.find("\"window_start_s\":"), std::string::npos);
  EXPECT_NE(j.find("\"window_end_s\":"), std::string::npos);
}

// ---- Admission control: try_push, lanes, session-level shedding ----

TEST(RequestQueue, TryPushShedsAtTheBoundWithoutConsumingTheRequest) {
  RequestQueue q(/*max_depth=*/2);
  Request a, b, c;
  c.id = 42;
  EXPECT_EQ(q.try_push(a), PushStatus::kOk);
  EXPECT_EQ(q.try_push(b), PushStatus::kOk);
  EXPECT_EQ(q.try_push(c), PushStatus::kFull);
  // The rejected request was not moved-from: the caller still owns it and
  // can retry it intact once space frees.
  EXPECT_EQ(c.id, 42u);
  (void)q.pop_batch(1, std::chrono::microseconds(0));
  EXPECT_EQ(q.try_push(c), PushStatus::kOk);
  q.close();
  Request d;
  EXPECT_EQ(q.try_push(d), PushStatus::kClosed);
}

TEST(RequestQueue, TryPushUntilAdmitsWhenSpaceFreesAndTimesOutOtherwise) {
  RequestQueue q(/*max_depth=*/1);
  Request first;
  ASSERT_EQ(q.try_push(first), PushStatus::kOk);
  // Saturated the whole wait: kFull at (roughly) the deadline, not later.
  Request blocked;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.try_push_until(blocked, t0 + std::chrono::milliseconds(50)), PushStatus::kFull);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  // Space freed mid-wait: admitted.
  std::thread popper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)q.pop_batch(1, std::chrono::microseconds(0));
  });
  EXPECT_EQ(q.try_push_until(blocked,
                             std::chrono::steady_clock::now() + std::chrono::seconds(30)),
            PushStatus::kOk);
  popper.join();
}

TEST(RequestQueue, LaneDepthLimitCarvesHeadroomFromOneQueue) {
  RequestQueue q(/*max_depth=*/4);
  Request r;
  ASSERT_EQ(q.try_push(r, /*depth_limit=*/0), PushStatus::kOk);
  ASSERT_EQ(q.try_push(r, 0), PushStatus::kOk);  // depth now 2
  // The half-depth lane is full while the full-depth lane still admits —
  // headroom reserved inside ONE queue, not a second queue.
  EXPECT_EQ(q.try_push(r, /*depth_limit=*/2), PushStatus::kFull);
  EXPECT_EQ(q.try_push(r, /*depth_limit=*/0), PushStatus::kOk);  // depth 3
  EXPECT_EQ(q.try_push(r, /*depth_limit=*/4), PushStatus::kOk);  // depth 4
  EXPECT_EQ(q.try_push(r, /*depth_limit=*/0), PushStatus::kFull);
  // A per-call limit can never widen the queue's own bound.
  EXPECT_EQ(q.try_push(r, /*depth_limit=*/100), PushStatus::kFull);
}

TEST(RequestQueue, CloseWakesDeadlineBlockedPusherPromptly) {
  RequestQueue q(/*max_depth=*/1);
  Request first;
  ASSERT_EQ(q.try_push(first), PushStatus::kOk);
  std::atomic<bool> returned{false};
  std::thread pusher([&] {
    Request r;
    const PushStatus st =
        q.try_push_until(r, std::chrono::steady_clock::now() + std::chrono::seconds(60));
    EXPECT_EQ(st, PushStatus::kClosed);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  // Join with a watchdog: close() must wake the pusher long before its
  // 60s deadline.
  for (int i = 0; i < 200 && !returned.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(returned.load());
  pusher.join();
}

TEST(DynamicBatcherErrors, ThrowingBatchCountsErrorsAndResolvesEveryPromise) {
  RequestQueue queue;
  ServeStats stats;
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.warmup = false;
  constexpr std::int64_t kIn = 4;
  std::vector<std::future<Tensor>> futures;
  {
    DynamicBatcher batcher(
        queue, [](const Tensor&) -> Tensor { throw std::runtime_error("backend down"); }, kIn,
        cfg, stats);
    for (int i = 0; i < 3; ++i) {
      Request r;
      r.input = Tensor(Shape{1, kIn});
      r.enqueue_time = std::chrono::steady_clock::now();
      futures.push_back(r.promise.get_future());
      ASSERT_TRUE(queue.push(std::move(r)));
    }
    // Destructor drains: every promise must resolve (with the exception).
  }
  for (auto& f : futures) {
    EXPECT_THROW((void)f.get(), std::runtime_error);
  }
  const ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.errors, 3u);
  EXPECT_EQ(s.requests, 0u);  // failed requests never count as completed
  EXPECT_GE(s.batches, 1u);   // the failed pass still counts as executed
}

TEST(InferenceSession, SaturatedQueueShedsPromptlyWithImmediateAdmission) {
  // Bounded queue + admission_timeout_us=0: when the queue is full the
  // submit must throw QueueFullError at once — an explicit rejection the
  // caller can act on, not an invisible stall. The lingering batcher holds
  // admitted requests in the queue, so saturation is reachable
  // deterministically even on one core.
  ServeConfig cfg;
  cfg.queue_depth = 2;
  cfg.admission_timeout_us = 0;
  cfg.max_batch = 16;
  cfg.max_wait_us = 400000;
  InferenceSession session(tiny_package(), cfg);
  const Tensor input = random_rows(1, TinyMlp::kIn, 20);

  std::uint64_t sheds = 0;
  std::vector<std::future<Tensor>> accepted;
  for (int i = 0; i < 64 && sheds == 0; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      accepted.push_back(session.submit(input));
    } catch (const QueueFullError&) {
      ++sheds;
      // Promptness: the shed decision must not have waited on the queue.
      EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
    }
  }
  EXPECT_GT(sheds, 0u) << "64 rapid submits into a depth-2 lingering queue never shed";
  for (auto& f : accepted) (void)f.get();  // admitted requests all resolve
  EXPECT_EQ(session.stats().shed, sheds);
}

TEST(InferenceSession, HighLaneAdmitsWhileLowLaneSheds) {
  // Lane fractions: kLow is capped at half the depth, kHigh always sees
  // the full depth. Fill the queue to the low lane's bound and the two
  // priorities must diverge on the SAME queue state. Timing-tolerant: the
  // batcher can pop between submits on a busy box, so retry the scenario
  // until the fill sticks.
  ServeConfig cfg;
  cfg.queue_depth = 4;
  cfg.low_lane_fraction = 0.5;
  cfg.admission_timeout_us = 0;
  cfg.max_batch = 16;
  cfg.max_wait_us = 800000;
  InferenceSession session(tiny_package(), cfg);
  const Tensor input = random_rows(1, TinyMlp::kIn, 21);

  bool diverged = false;
  for (int attempt = 0; attempt < 8 && !diverged; ++attempt) {
    std::vector<std::future<Tensor>> accepted;
    try {
      accepted.push_back(session.submit(input));
      accepted.push_back(session.submit(input));  // depth 2 == low-lane cap
      try {
        accepted.push_back(session.submit(input, Priority::kLow));
        // Low admitted: the batcher popped in between; retry the fill.
      } catch (const QueueFullError&) {
        // Low shed at depth 2 — high must still admit into its headroom.
        accepted.push_back(session.submit(input, Priority::kHigh));
        diverged = true;
      }
    } catch (const QueueFullError&) {
      // A leftover queue from the previous attempt; drain and retry.
    }
    for (auto& f : accepted) (void)f.get();
  }
  EXPECT_TRUE(diverged) << "kLow never shed while kHigh admitted on the same queue";
  EXPECT_GT(session.stats().shed, 0u);
}

// ---- Runner program validation ----

TEST(RunnerProgram, RejectsMissingLayerAndBadChain) {
  QuantizedModelPackage pkg = tiny_package();
  pkg.program = {{"nope", false}};
  EXPECT_THROW(QuantizedModelRunner{pkg}, std::invalid_argument);
  pkg.program = {{"fc2", true}, {"fc1", false}};  // 32-out -> 256-in: no chain
  EXPECT_THROW(QuantizedModelRunner{pkg}, std::invalid_argument);
  pkg.program.clear();
  pkg.layers.clear();
  EXPECT_THROW(QuantizedModelRunner{pkg}, std::invalid_argument);
}

TEST(RunnerProgram, MlpFallbackMatchesExplicitProgram) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner explicit_runner(pkg);
  QuantizedModelPackage no_prog = pkg;
  no_prog.program.clear();
  const QuantizedModelRunner fallback(no_prog);  // fc1+relu, fc2 by name order
  const Tensor x = random_rows(4, TinyMlp::kIn, 13);
  expect_bitwise_equal(explicit_runner.forward(x), fallback.forward(x));
}

// ---- Throughput acceptance gate ----

// Closed-loop throughput of one configuration: 8 clients, 512 requests.
double closed_loop_rps(const QuantizedModelPackage& pkg, int max_batch) {
  ServeConfig cfg;
  cfg.max_batch = max_batch;
  InferenceSession session(pkg, cfg);
  constexpr int kClients = 8, kPerClient = 64;
  std::vector<std::vector<Tensor>> inputs(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      inputs[static_cast<std::size_t>(c)].push_back(random_rows(
          1, TinyMlp::kIn, 500 + static_cast<std::uint64_t>(c * kPerClient + i)));
    }
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const Tensor& in : inputs[static_cast<std::size_t>(c)]) (void)session.infer(in);
    });
  }
  for (auto& t : clients) t.join();
  return session.stats().throughput_rps;
}

TEST(ServeThroughput, PanelCacheSpeedsUpBatchOneForward) {
  // The load-time prepack win, as a paired in-process comparison: batch-1
  // inference through the prepacked runner vs the identical program
  // executed with per-call weight packing — what every request paid
  // before load-time IntLayerPrimitive resolution existed. At batch 1 the fc1 pack writes about as
  // many elements as the GEMM multiplies, so the cached path must win by
  // a clear margin. (The historical ">= 2x from batching" gate lived
  // here; that gap WAS the per-call pack amortizing, and with packs
  // hoisted to load time the per-row cost is nearly batch-independent —
  // the closed-loop test below keeps batching honest instead.)
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner runner(pkg);
  const QuantizedLayerPackage& fc1 = pkg.layers.at("fc1");
  const QuantizedLayerPackage& fc2 = pkg.layers.at("fc2");
  const Tensor one = random_rows(1, TinyMlp::kIn, 777);
  const auto per_call_forward = [&] {
    Tensor h = run_packaged_layer(fc1, one);
    for (auto& v : h.span()) v = v > 0.0f ? v : 0.0f;
    return run_packaged_layer(fc2, h);
  };
  (void)runner.forward(one);  // warm both paths outside the timed region
  (void)per_call_forward();
  double best_ratio = 0.0;
  std::string attempts;
  for (int attempt = 0; attempt < 6 && best_ratio < 1.15; ++attempt) {
    constexpr int kReps = 300;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) (void)per_call_forward();
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) (void)runner.forward(one);
    const auto t2 = std::chrono::steady_clock::now();
    const double per_call = std::chrono::duration<double>(t1 - t0).count();
    const double prepacked = std::chrono::duration<double>(t2 - t1).count();
    if (prepacked > 0) best_ratio = std::max(best_ratio, per_call / prepacked);
    attempts += " [" + std::to_string(per_call) + "s vs " + std::to_string(prepacked) + "s]";
  }
  EXPECT_GE(best_ratio, 1.15) << "prepacked batch-1 forward not faster than per-call packing; "
                              << "per-call vs prepacked wall time per attempt:" << attempts;
}

TEST(ServeThroughput, BatchingDoesNotRegressClosedLoop) {
  // Closed-loop 8-client serving. Before load-time prepacking (PR 5)
  // batch-1 paid a full weight repack per request, so batch-16 cleared 2x
  // here; packs now happen once at load for every batch size, batch-1
  // serving got ~2x faster, and what remains of the gap on a 1-core
  // container is mostly scheduler noise. The surviving systematic claim:
  // enabling batching must not materially hurt closed-loop throughput.
  const QuantizedModelPackage pkg = tiny_package();
  double best_ratio = 0.0;
  std::string attempts;
  for (int attempt = 0; attempt < 6 && best_ratio < 0.75; ++attempt) {
    const double rps1 = closed_loop_rps(pkg, /*max_batch=*/1);
    const double rps16 = closed_loop_rps(pkg, /*max_batch=*/16);
    if (rps1 > 0) best_ratio = std::max(best_ratio, rps16 / rps1);
    attempts += " [" + std::to_string(rps1) + " vs " + std::to_string(rps16) + "]";
  }
  EXPECT_GE(best_ratio, 0.75) << "batched serving regressed closed-loop throughput; "
                              << "rps(max_batch=1) vs rps(max_batch=16) per attempt:" << attempts;
}

TEST(DeadlineSweep, ExpiredRequestsResolveShedWithZeroForwardExecutions) {
  // The acceptance property: requests whose deadline passed before their
  // batch executed are resolved DeadlineExpiredError WITHOUT a forward
  // pass — counter-verified on both sides (forward calls AND the
  // deadline_expired stat).
  RequestQueue queue;
  ServeStats stats;
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.warmup = false;
  constexpr std::int64_t kIn = 4;
  std::atomic<int> forward_calls{0};

  std::vector<std::future<Tensor>> futures;
  const auto past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  for (int i = 0; i < 5; ++i) {
    Request r;
    r.input = Tensor(Shape{1, kIn});
    r.enqueue_time = std::chrono::steady_clock::now();
    r.deadline = past;  // already hopeless when the batcher pops it
    futures.push_back(r.promise.get_future());
    ASSERT_TRUE(queue.push(std::move(r)));
  }
  {
    DynamicBatcher batcher(
        queue,
        [&](const Tensor& batch) {
          forward_calls.fetch_add(1);
          return Tensor(Shape{batch.shape()[0], 2});
        },
        kIn, cfg, stats);
  }
  for (auto& f : futures) {
    EXPECT_THROW((void)f.get(), DeadlineExpiredError);
  }
  EXPECT_EQ(forward_calls.load(), 0);  // zero forward executions
  const ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.deadline_expired, 5u);
  EXPECT_EQ(s.batches, 0u);   // nothing executed -> no batch recorded
  EXPECT_EQ(s.requests, 0u);  // swept requests never count as completed
  EXPECT_EQ(s.errors, 0u);    // and never as errors — a distinct taxon
}

TEST(DeadlineSweep, MixedBatchExecutesOnlyUnexpiredRows) {
  RequestQueue queue;
  ServeStats stats;
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.warmup = false;
  constexpr std::int64_t kIn = 4;
  std::atomic<std::int64_t> rows_executed{0};

  std::vector<std::future<Tensor>> expired, live;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.input = Tensor(Shape{1, kIn});
    r.input.span()[0] = static_cast<float>(i);
    r.enqueue_time = std::chrono::steady_clock::now();
    if (i % 2 == 0) {
      r.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
      expired.push_back(r.promise.get_future());
    } else {
      live.push_back(r.promise.get_future());
    }
    ASSERT_TRUE(queue.push(std::move(r)));
  }
  {
    DynamicBatcher batcher(
        queue,
        [&](const Tensor& batch) {
          rows_executed.fetch_add(batch.shape()[0]);
          Tensor y(Shape{batch.shape()[0], 1});
          for (std::int64_t r = 0; r < batch.shape()[0]; ++r) {
            y.span()[static_cast<std::size_t>(r)] = batch.data()[r * kIn] * 10.0f;
          }
          return y;
        },
        kIn, cfg, stats);
  }
  for (auto& f : expired) EXPECT_THROW((void)f.get(), DeadlineExpiredError);
  // The surviving rows ran, with their own inputs (the sweep compacts the
  // batch without scrambling request/row pairing).
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].get()[0], 10.0f);  // input 1 -> 10
  EXPECT_EQ(live[1].get()[0], 30.0f);  // input 3 -> 30
  EXPECT_EQ(rows_executed.load(), 2);
  const ServeStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.deadline_expired, 2u);
  EXPECT_EQ(s.requests, 2u);
}

TEST(DeadlineSweep, SubmitRejectsAlreadyExpiredDeadlineAtTheDoor) {
  InferenceSession session(tiny_package());
  const Tensor input = random_rows(1, TinyMlp::kIn, 91);
  EXPECT_THROW((void)session.submit(input, Priority::kNormal,
                                    std::chrono::steady_clock::now() - std::chrono::seconds(1)),
               DeadlineExpiredError);
  EXPECT_EQ(session.stats().deadline_expired, 1u);
  // A generous deadline serves normally.
  const Tensor y = session
                       .submit(input, Priority::kNormal,
                               std::chrono::steady_clock::now() + std::chrono::seconds(30))
                       .get();
  EXPECT_EQ(y.shape()[0], 1);
}

TEST(Watchdog, RestartsDeadWorkerAndKeepsServingBitExact) {
  vsq::fault::disable_all();
  ServeConfig cfg;
  cfg.watchdog_interval_ms = 10;
  cfg.warmup = false;
  InferenceSession session(tiny_package(), cfg);
  InferenceSession reference(tiny_package(), [] {
    ServeConfig c;
    c.watchdog = false;
    return c;
  }());
  const Tensor input = random_rows(1, TinyMlp::kIn, 7);
  const Tensor want = reference.infer(input);

  // Healthy first: bit-exact against an unchaosed session.
  expect_bitwise_equal(session.infer(input), want);

  // Kill the worker exactly once: it pops the next request and exits
  // holding it — the abandoned promise breaks (std::future_error).
  vsq::fault::enable("serve.batcher.worker_exit", "1*trigger");
  std::future<Tensor> doomed = session.submit(input);
  EXPECT_THROW((void)doomed.get(), std::future_error);

  // The watchdog replaces the worker; subsequent requests serve the same
  // bits as before the fault. Allow a little time for the restart tick.
  Tensor after;
  bool served = false;
  for (int i = 0; i < 100 && !served; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
      after = session.infer(input);
      served = true;
    } catch (const std::exception&) {
      // Restart not complete yet (or this request rode a dying worker).
    }
  }
  vsq::fault::disable_all();
  ASSERT_TRUE(served) << "watchdog never restored service";
  expect_bitwise_equal(after, want);
  EXPECT_GE(session.stats().worker_restarts, 1u);
}

TEST(Watchdog, RestartBudgetExhaustionFailsSessionOverCleanly) {
  vsq::fault::disable_all();
  ServeConfig cfg;
  cfg.watchdog_interval_ms = 5;
  cfg.max_worker_restarts = 2;
  cfg.warmup = false;
  InferenceSession session(tiny_package(), cfg);
  const Tensor input = random_rows(1, TinyMlp::kIn, 8);

  // EVERY worker incarnation dies on its first pop: the watchdog burns its
  // whole restart budget, then fails the session over (queue closes, the
  // next submit throws, pending promises carry a typed error) — it must
  // not crash-loop forever or hang.
  vsq::fault::enable("serve.batcher.worker_exit", "trigger");
  bool closed = false;
  for (int i = 0; i < 400 && !closed; ++i) {
    try {
      std::future<Tensor> f = session.submit(input);
      // Every accepted request resolves with SOME exception (broken
      // promise from the dying worker, or UnavailableError from the
      // fail-over drain) — never a hang, never a row.
      EXPECT_THROW((void)f.get(), std::exception);
    } catch (const std::runtime_error&) {
      closed = true;  // fail-over complete: admission is off
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  vsq::fault::disable_all();
  EXPECT_TRUE(closed) << "session never failed over after exhausting its restart budget";
  EXPECT_EQ(session.stats().worker_restarts, 2u);
}

TEST(Watchdog, ReplacesStalledWorkerWithoutLosingItsBatch) {
  vsq::fault::disable_all();
  ServeConfig cfg;
  cfg.watchdog_interval_ms = 10;
  cfg.stall_timeout_ms = 60;
  cfg.warmup = false;
  InferenceSession session(tiny_package(), cfg);
  InferenceSession reference(tiny_package(), [] {
    ServeConfig c;
    c.watchdog = false;
    return c;
  }());
  const Tensor input = random_rows(1, TinyMlp::kIn, 9);
  const Tensor want = reference.infer(input);

  // One 400ms stall: far past stall_timeout_ms, so the watchdog parks the
  // wedged worker as a zombie and spins up a replacement while the zombie
  // is still asleep. The zombie's batch is NOT lost — when the sleep ends
  // it executes normally (bounded stall, not death).
  vsq::fault::enable("serve.batcher.worker_stall", "1*delay(400000)");
  const auto t0 = std::chrono::steady_clock::now();
  std::future<Tensor> stalled = session.submit(input);
  // While the first worker is wedged, a second request must be served by
  // the replacement — well before the 400ms stall ends.
  Tensor fresh;
  bool served = false;
  for (int i = 0; i < 50 && !served; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    try {
      fresh = session.infer(input);
      served = true;
    } catch (const std::exception&) {
    }
  }
  vsq::fault::disable_all();
  ASSERT_TRUE(served);
  const auto served_after = std::chrono::steady_clock::now() - t0;
  expect_bitwise_equal(fresh, want);
  expect_bitwise_equal(stalled.get(), want);  // the zombie finished its batch
  EXPECT_GE(session.stats().worker_restarts, 1u);
  EXPECT_LT(served_after, std::chrono::milliseconds(390))
      << "replacement did not serve until the stalled worker woke up";
}

}  // namespace
}  // namespace vsq
