#include <gtest/gtest.h>

#include <tuple>

#include "quant/int_gemm.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

QuantSpec pvaw_weight_spec(int bits, int scale_bits) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerVector;
  s.scale_dtype = ScaleDtype::kTwoLevelInt;
  s.scale_fmt = QuantFormat{scale_bits, false};
  return s;
}

QuantSpec pvaw_act_spec(int bits, int scale_bits) {
  QuantSpec s = pvaw_weight_spec(bits, scale_bits);
  s.dynamic = true;
  return s;
}

QuantSpec coarse_weight_spec(int bits) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerRow;
  return s;
}

QuantSpec coarse_act_spec(int bits) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerTensor;
  return s;
}

// Double-precision reference computed from the integer operands' effective
// scales — what the integer datapath must reproduce exactly at full
// scale-product precision.
Tensor fake_quant_reference(const QuantizedMatrix& act, const QuantizedMatrix& wgt) {
  const std::int64_t rows = act.rows, k = wgt.rows;
  const std::int64_t vpr = act.layout.vectors_per_row();
  Tensor out(Shape{rows, k});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < k; ++j) {
      double acc = 0;
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto [c0, c1] = act.layout.col_range(v);
        double dp = 0;
        for (std::int64_t c = c0; c < c1; ++c) {
          dp += static_cast<double>(act.at(r, c)) * wgt.at(j, c);
        }
        acc += dp * act.int_scale(r, v) * wgt.int_scale(j, v);
      }
      out.at2(r, j) =
          static_cast<float>(acc * wgt.outer_scale(j) * act.outer_scale(r));
    }
  }
  return out;
}

TEST(RoundScaleProduct, KeepsMsbsRoundHalfUp) {
  // full 8 bits -> keep 4: shift = 4, half = 8.
  EXPECT_EQ(round_scale_product(0, 8, 4), 0u);
  EXPECT_EQ(round_scale_product(7, 8, 4), 0u);    // < half -> 0 (gateable)
  EXPECT_EQ(round_scale_product(8, 8, 4), 16u);   // half rounds up
  EXPECT_EQ(round_scale_product(100, 8, 4), 96u);
  EXPECT_EQ(round_scale_product(255, 8, 4), 256u);  // may carry upward
}

TEST(RoundScaleProduct, FullWidthPassthrough) {
  EXPECT_EQ(round_scale_product(123, 8, -1), 123u);
  EXPECT_EQ(round_scale_product(123, 8, 8), 123u);
  EXPECT_EQ(round_scale_product(123, 8, 12), 123u);
}

class RoundingError : public ::testing::TestWithParam<int> {};

TEST_P(RoundingError, BoundedByHalfUlpOfKeptBits) {
  const int keep = GetParam();
  const int full = 12;
  for (std::uint32_t p = 0; p < (1u << full); p += 7) {
    const std::uint32_t r = round_scale_product(p, full, keep);
    EXPECT_LE(std::abs(static_cast<std::int64_t>(r) - static_cast<std::int64_t>(p)),
              std::int64_t{1} << (full - keep - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(KeepBits, RoundingError, ::testing::Values(2, 4, 6, 8, 10));

// ---- Bit-exactness of int_gemm vs the scale-domain reference ----

using GemmCase = std::tuple<int, int, int, int>;  // wt_bits, act_bits, ws, as

class IntGemmExact : public ::testing::TestWithParam<GemmCase> {};

TEST_P(IntGemmExact, MatchesReferenceAtFullProduct) {
  const auto [wb, ab, ws, as] = GetParam();
  Rng rng(wb * 1000 + ab * 100 + ws * 10 + as);
  const Tensor w = random_matrix(12, 64, rng);
  const Tensor a = random_matrix(9, 64, rng);

  const QuantizedMatrix wq = quantize_weights_int(w, pvaw_weight_spec(wb, ws));
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, QuantFormat{ab, true}) /
                      static_cast<float>(QuantFormat{as, false}.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, pvaw_act_spec(ab, as), amax, gamma);

  IntGemmStats stats;
  const Tensor y = int_gemm(aq, wq, /*scale_product_bits=*/-1, &stats);
  const Tensor ref = fake_quant_reference(aq, wq);
  EXPECT_LT(max_abs_diff(y, ref), 1e-4f * (1.0f + amax_per_tensor(ref)));
  EXPECT_GT(stats.vector_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Configs, IntGemmExact,
                         ::testing::Values(GemmCase{4, 4, 4, 4}, GemmCase{4, 8, 6, 10},
                                           GemmCase{6, 6, 4, 6}, GemmCase{8, 8, 6, 6},
                                           GemmCase{3, 8, 4, 8}));

TEST(IntGemm, CoarseOperandsMatchPlainIntMath) {
  // Per-channel weights + per-tensor activations: the baseline datapath.
  Rng rng(7);
  const Tensor w = random_matrix(8, 32, rng);
  const Tensor a = random_matrix(5, 32, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, coarse_weight_spec(8));
  const QuantizedMatrix aq =
      quantize_activations_int(a, coarse_act_spec(8), amax_per_tensor(a), 0.0f);
  const Tensor y = int_gemm(aq, wq, -1, nullptr);
  const Tensor ref = fake_quant_reference(aq, wq);
  EXPECT_LT(max_abs_diff(y, ref), 1e-5f);
}

TEST(IntGemm, MixedPerVectorWeightsCoarseActs) {
  // PVWO: integer scales on weights only (the paper's x/x/ws/- configs).
  Rng rng(8);
  const Tensor w = random_matrix(8, 48, rng);
  const Tensor a = random_matrix(4, 48, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, pvaw_weight_spec(4, 6));
  const QuantizedMatrix aq =
      quantize_activations_int(a, coarse_act_spec(8), amax_per_tensor(a), 0.0f);
  const Tensor y = int_gemm(aq, wq, -1, nullptr);
  const Tensor ref = fake_quant_reference(aq, wq);
  EXPECT_LT(max_abs_diff(y, ref), 1e-4f);
}

TEST(IntGemm, ScaleProductRoundingBoundedDeviation) {
  Rng rng(9);
  const Tensor w = random_matrix(8, 64, rng);
  const Tensor a = random_matrix(8, 64, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, pvaw_weight_spec(4, 6));
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, QuantFormat{4, true}) /
                      static_cast<float>(QuantFormat{6, false}.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, pvaw_act_spec(4, 6), amax, gamma);

  const Tensor full = int_gemm(aq, wq, -1, nullptr);
  double prev_err = 0.0;
  for (const int p : {10, 8, 6, 4}) {
    const Tensor rounded = int_gemm(aq, wq, p, nullptr);
    const double err = mse(full, rounded);
    EXPECT_GE(err + 1e-12, prev_err * 0.25) << "p=" << p;  // error grows as p shrinks
    prev_err = err;
  }
  // Even at 4 bits the result stays correlated with the full product.
  EXPECT_GT(sqnr_db(full, int_gemm(aq, wq, 4, nullptr)), 8.0);
}

TEST(IntGemm, GatingStatsIncreaseWithRounding) {
  Rng rng(10);
  // Long-tailed activations -> many small vector scale products.
  Tensor a(Shape{16, 64});
  for (auto& v : a.span()) v = static_cast<float>(rng.laplace(0.3));
  const Tensor w = random_matrix(8, 64, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, pvaw_weight_spec(4, 6));
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, QuantFormat{4, true}) /
                      static_cast<float>(QuantFormat{6, false}.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, pvaw_act_spec(4, 6), amax, gamma);

  IntGemmStats full_stats, rounded_stats;
  int_gemm(aq, wq, -1, &full_stats);
  int_gemm(aq, wq, 3, &rounded_stats);
  EXPECT_GE(rounded_stats.zero_scale_products, full_stats.zero_scale_products);
  EXPECT_GE(rounded_stats.gateable_fraction(), full_stats.gateable_fraction());
}

TEST(IntGemm, AccumulatorWidthRespectsPaperFormula) {
  // 2N + log2(V) + 2M bits must bound the largest partial sum per vector.
  Rng rng(11);
  const int N = 8, M = 6, V = 16;
  const Tensor w = random_matrix(4, 64, rng, 3.0);
  const Tensor a = random_matrix(4, 64, rng, 3.0);
  QuantSpec wspec = pvaw_weight_spec(N, M);
  wspec.vector_size = V;
  QuantSpec aspec = pvaw_act_spec(N, M);
  aspec.vector_size = V;
  const QuantizedMatrix wq = quantize_weights_int(w, wspec);
  const float amax = amax_per_tensor(a);
  const float gamma =
      scale_from_amax(amax, QuantFormat{N, true}) / static_cast<float>(QuantFormat{M, false}.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, aspec, amax, gamma);
  IntGemmStats stats;
  int_gemm(aq, wq, -1, &stats);
  // Total accumulation over ceil(64/16)=4 vectors adds 2 more bits.
  const int bound_bits = 2 * N + 4 + 2 * M + 2;
  EXPECT_LT(stats.max_abs_psum, std::int64_t{1} << bound_bits);
}

TEST(IntGemm, RejectsMismatchedLayouts) {
  Rng rng(12);
  const Tensor w = random_matrix(4, 32, rng);
  const Tensor a = random_matrix(4, 64, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, coarse_weight_spec(8));
  const QuantizedMatrix aq =
      quantize_activations_int(a, coarse_act_spec(8), amax_per_tensor(a), 0.0f);
  EXPECT_THROW(int_gemm(aq, wq, -1, nullptr), std::invalid_argument);
}

TEST(QuantizedMatrix, IntScaleDefaultsToOneForCoarse) {
  Rng rng(13);
  const Tensor w = random_matrix(4, 16, rng);
  const QuantizedMatrix wq = quantize_weights_int(w, coarse_weight_spec(8));
  EXPECT_EQ(wq.int_scale(0, 0), 1u);
  EXPECT_FALSE(wq.is_per_vector());
}

TEST(QuantizedMatrix, RejectsSingleLevelFpScalesOnHardwarePath) {
  Rng rng(14);
  const Tensor w = random_matrix(4, 16, rng);
  QuantSpec s = pvaw_weight_spec(4, 6);
  s.scale_dtype = ScaleDtype::kFp32;
  EXPECT_THROW(quantize_weights_int(w, s), std::invalid_argument);
}

}  // namespace
}  // namespace vsq
