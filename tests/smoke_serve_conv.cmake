# End-to-end CNN serving smoke test: export the tiny residual CNN's
# integer package with vsq_quantize (conv geometry + conv/residual/pool
# forward program + input image shape), inspect it, then drive vsq_serve
# with concurrent clients. The tool's --check audit (on by default) makes
# the run fail unless every served output is bit-identical to sequential
# single-sample inference through the tiled integer conv datapath.
# Invoked from ctest (see tests/CMakeLists.txt) with
#   -DVSQ_QUANTIZE=<path> -DVSQ_INSPECT=<path> -DVSQ_SERVE=<path>
#   -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")
set(PACKAGE "${WORK_DIR}/tiny_conv_int.vsqa")

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny_conv --config=4/8/6/10 --vector=16
          "--out=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${VSQ_INSPECT}" "--package=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_inspect output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_inspect failed with exit code ${rc}")
endif()
if(NOT out MATCHES "shortcut")
  message(FATAL_ERROR "vsq_inspect did not print the conv forward program")
endif()
if(NOT out MATCHES "3x3 s1 p1")
  message(FATAL_ERROR "vsq_inspect did not print conv layer geometry")
endif()

execute_process(
  COMMAND "${VSQ_SERVE}" "--package=${PACKAGE}" --clients=4 --requests=48
          --max-batch=8
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_serve output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_serve failed with exit code ${rc}")
endif()
if(NOT out MATCHES "48 outputs verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_serve did not report the bit-exactness audit")
endif()
if(NOT out MATCHES "\"requests\":48")
  message(FATAL_ERROR "vsq_serve JSON line missing or wrong request count")
endif()
