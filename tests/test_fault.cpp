// Failpoint subsystem: policy grammar, arming/disarming, counters, scoped
// guards, and the macro fast path. The injection *sites* are exercised where
// they live (test_util for the archive, test_serve for the batcher,
// test_registry for reload, test_net for the wire) — this file pins the
// subsystem semantics those tests rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/failpoint.h"

namespace vf = vsq::fault;

namespace {

// Every test starts and ends disarmed so suites can run in any order.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { vf::disable_all(); }
  void TearDown() override { vf::disable_all(); }
};

TEST_F(FailpointTest, DisarmedSiteIsInertAndCheap) {
  EXPECT_FALSE(vf::armed());
  // Macro form: must be valid as a plain statement and do nothing.
  VSQ_FAILPOINT("test.nowhere");
  EXPECT_FALSE(VSQ_FAILPOINT_TRIGGERED("test.nowhere"));
  EXPECT_EQ(vf::evals("test.nowhere"), 0u);
}

TEST_F(FailpointTest, ErrorPolicyThrowsTypedErrorWithPointName) {
  vf::enable("test.err", "error(boom)");
  EXPECT_TRUE(vf::armed());
  try {
    VSQ_FAILPOINT("test.err");
    FAIL() << "failpoint did not throw";
  } catch (const vf::FailpointError& e) {
    EXPECT_STREQ(e.what(), "boom");
    EXPECT_EQ(e.point(), "test.err");
  }
  // FailpointError is a runtime_error so existing catch blocks absorb it.
  vf::enable("test.err", "error");
  EXPECT_THROW(VSQ_FAILPOINT("test.err"), std::runtime_error);
}

TEST_F(FailpointTest, TriggerAndDelayReportFiredFromExpressionSite) {
  vf::enable("test.trig", "trigger");
  EXPECT_TRUE(VSQ_FAILPOINT_TRIGGERED("test.trig"));

  vf::enable("test.delay", "delay(2000)");
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(VSQ_FAILPOINT_TRIGGERED("test.delay"));
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_GE(us, 2000);
}

TEST_F(FailpointTest, MaxFiresCapsInjection) {
  vf::enable("test.cap", "2*trigger");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (VSQ_FAILPOINT_TRIGGERED("test.cap")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(vf::evals("test.cap"), 10u);
  EXPECT_EQ(vf::fires("test.cap"), 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicUnderReseed) {
  auto run = [] {
    vf::reseed(42);
    vf::enable("test.prob", "30%trigger");
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(VSQ_FAILPOINT_TRIGGERED("test.prob"));
    return pattern;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FailpointTest, ParseSpecGrammar) {
  auto s = vf::parse_spec("25%3*error(disk gone)");
  EXPECT_EQ(s.kind, vf::Kind::kError);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
  EXPECT_EQ(s.max_fires, 3u);
  EXPECT_EQ(s.message, "disk gone");

  s = vf::parse_spec("delay(500)");
  EXPECT_EQ(s.kind, vf::Kind::kDelay);
  EXPECT_EQ(s.delay_us, 500u);
  EXPECT_DOUBLE_EQ(s.probability, 1.0);

  s = vf::parse_spec("off");
  EXPECT_DOUBLE_EQ(s.probability, 0.0);

  EXPECT_THROW(vf::parse_spec("explode"), std::invalid_argument);
  EXPECT_THROW(vf::parse_spec("150%error"), std::invalid_argument);
  EXPECT_THROW(vf::parse_spec("delay"), std::invalid_argument);
  EXPECT_THROW(vf::parse_spec("delay(-5)"), std::invalid_argument);
  EXPECT_THROW(vf::parse_spec("error(unclosed"), std::invalid_argument);
}

TEST_F(FailpointTest, ConfigureParsesCommaSeparatedListAndOff) {
  vf::configure("test.a=error(x), test.b=10%delay(100)");
  EXPECT_THROW(VSQ_FAILPOINT("test.a"), vf::FailpointError);
  auto armed = vf::armed_points();
  EXPECT_EQ(armed.size(), 2u);
  vf::configure("test.a=off");
  VSQ_FAILPOINT("test.a");  // no longer throws
  EXPECT_EQ(vf::armed_points().size(), 1u);
  EXPECT_THROW(vf::configure("noequals"), std::invalid_argument);
  EXPECT_THROW(vf::configure("=error"), std::invalid_argument);
}

TEST_F(FailpointTest, ScopedGuardRestoresPreviousState) {
  {
    vf::ScopedFailpoint g("test.scoped", "trigger");
    EXPECT_TRUE(VSQ_FAILPOINT_TRIGGERED("test.scoped"));
  }
  EXPECT_FALSE(VSQ_FAILPOINT_TRIGGERED("test.scoped"));

  // Nested guard restores the outer policy, not "off".
  vf::enable("test.scoped", "error(outer)");
  {
    vf::ScopedFailpoint g("test.scoped", "trigger");
    EXPECT_TRUE(VSQ_FAILPOINT_TRIGGERED("test.scoped"));
  }
  EXPECT_THROW(VSQ_FAILPOINT("test.scoped"), vf::FailpointError);
  vf::disable("test.scoped");
}

TEST_F(FailpointTest, DisableReturnsWhetherPointWasArmed) {
  EXPECT_FALSE(vf::disable("test.never"));
  vf::enable("test.once", "trigger");
  EXPECT_TRUE(vf::disable("test.once"));
  EXPECT_FALSE(vf::disable("test.once"));
  EXPECT_FALSE(vf::armed());
}

TEST_F(FailpointTest, ConcurrentEvalIsSafeAndCountsEveryCall) {
  vf::enable("test.mt", "50%trigger");
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (VSQ_FAILPOINT_TRIGGERED("test.mt")) fired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(vf::evals("test.mt"), static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(vf::fires("test.mt"), static_cast<std::uint64_t>(fired.load()));
}

}  // namespace
