#include <gtest/gtest.h>

#include <tuple>

#include "hw/design_space.h"
#include "hw/pe_simulator.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

MacConfig make_config(int w, int a, int ws, int as, int spb = -1) {
  MacConfig c;
  c.wt_bits = w;
  c.act_bits = a;
  c.wt_scale_bits = ws;
  c.act_scale_bits = as;
  c.scale_product_bits = spb;
  c.act_unsigned = false;
  return c;
}

TEST(MacConfig, PaperNotation) {
  EXPECT_EQ(make_config(4, 4, 4, 4).str(), "4/4/4/4");
  EXPECT_EQ(make_config(8, 8, -1, -1).str(), "8/8/-/-");
  EXPECT_EQ(make_config(6, 8, 6, -1).str(), "6/8/6/-");
  EXPECT_EQ(make_config(6, 3, -1, 4).str(), "6/3/-/4");
}

TEST(MacConfig, GranularityLabels) {
  EXPECT_EQ(make_config(4, 4, 4, 4).granularity_label(), "PVAW");
  EXPECT_EQ(make_config(4, 4, 4, -1).granularity_label(), "PVWO");
  EXPECT_EQ(make_config(4, 4, -1, 4).granularity_label(), "PVAO");
  EXPECT_EQ(make_config(4, 4, -1, -1).granularity_label(), "POC");
}

TEST(MacConfig, AccumulatorWidthFormula) {
  // 2N + log2 V + 2M (paper Sec. 5).
  const MacConfig c = make_config(4, 4, 4, 4);
  EXPECT_EQ(c.accumulator_bits(), 4 + 4 + 4 + 8);
  const MacConfig r = make_config(4, 4, 4, 4, 6);  // rounded product
  EXPECT_EQ(r.accumulator_bits(), 4 + 4 + 4 + 6);
  const MacConfig poc = make_config(8, 8, -1, -1);
  EXPECT_EQ(poc.accumulator_bits(), 8 + 8 + 4);
}

TEST(MacConfig, SpecsMatchGranularity) {
  const MacConfig pv = make_config(4, 8, 6, 10);
  EXPECT_EQ(pv.weight_spec().granularity, Granularity::kPerVector);
  EXPECT_EQ(pv.weight_spec().scale_fmt.bits, 6);
  EXPECT_TRUE(pv.act_spec().dynamic);
  const MacConfig poc = make_config(8, 8, -1, -1);
  EXPECT_EQ(poc.weight_spec().granularity, Granularity::kPerRow);
  EXPECT_EQ(poc.act_spec().granularity, Granularity::kPerTensor);
}

// ---- Energy model ----

TEST(EnergyModel, BaselineIsOne) {
  EnergyModel em;
  EXPECT_NEAR(em.energy_per_op(MacConfig{}), 1.0, 1e-9);
}

TEST(EnergyModel, FourBitRoughlyHalvesEnergy) {
  EnergyModel em;
  const double e44 = em.energy_per_op(make_config(4, 4, -1, -1));
  EXPECT_GT(e44, 0.35);
  EXPECT_LT(e44, 0.60);
}

TEST(EnergyModel, VsQuantAddsOverheadAtFullProduct) {
  EnergyModel em;
  const double poc = em.energy_per_op(make_config(4, 4, -1, -1));
  const double pvaw = em.energy_per_op(make_config(4, 4, 4, 4));
  EXPECT_GT(pvaw, poc);
  EXPECT_LT(pvaw, poc * 1.5);  // "modest" overhead (Fig. 3)
}

TEST(EnergyModel, RoundingReducesVsQuantEnergy) {
  EnergyModel em;
  const double full = em.energy_per_op(make_config(4, 4, 4, 4, -1));
  const double p6 = em.energy_per_op(make_config(4, 4, 4, 4, 6));
  const double p4 = em.energy_per_op(make_config(4, 4, 4, 4, 4));
  EXPECT_LT(p6, full);
  EXPECT_LT(p4, p6);
}

TEST(EnergyModel, GatingReducesEnergy) {
  EnergyModel em;
  const MacConfig c = make_config(4, 4, 4, 4, 4);
  EXPECT_LT(em.energy_per_op(c, 0.3), em.energy_per_op(c, 0.0));
}

TEST(EnergyModel, RoundingPlusGatingBeatsPerChannel) {
  // Fig. 3's punchline: 4-bit VS-Quant with product rounding and data
  // gating drops below the 4/4/-/- per-channel configuration.
  EnergyModel em;
  const double poc = em.energy_per_op(make_config(4, 4, -1, -1));
  const double vs_gated = em.energy_per_op(make_config(4, 4, 4, 4, 4), 0.25);
  EXPECT_LT(vs_gated, poc);
}

TEST(EnergyModel, MonotoneInBits) {
  EnergyModel em;
  double prev = 0;
  for (const int bits : {3, 4, 6, 8}) {
    const double e = em.energy_per_op(make_config(bits, bits, -1, -1));
    EXPECT_GT(e, prev);
    prev = e;
  }
}

// ---- Area model ----

TEST(AreaModel, BaselineIsOne) {
  AreaModel am;
  EXPECT_NEAR(am.area(MacConfig{}), 1.0, 1e-9);
  EXPECT_NEAR(am.perf_per_area(MacConfig{}), 1.0, 1e-9);
}

TEST(AreaModel, HeadlineSavingsInRange) {
  AreaModel am;
  // Abstract: 4/4 VS-Quant ~37% area saving; 4-bit-weight BERT config ~26%.
  const double a4444 = am.area(make_config(4, 4, 4, 4));
  EXPECT_GT(1.0 - a4444, 0.25);
  EXPECT_LT(1.0 - a4444, 0.45);
  const double bert = am.area(make_config(4, 8, 6, 10));
  EXPECT_GT(1.0 - bert, 0.15);
  EXPECT_LT(1.0 - bert, 0.35);
}

TEST(AreaModel, VsQuantCostsAreaOverPocSameBits) {
  AreaModel am;
  EXPECT_GT(am.area(make_config(4, 4, 4, 4)), am.area(make_config(4, 4, -1, -1)));
}

TEST(AreaModel, PaperNamedPoint4641) {
  // Sec. 6: 4/6/4/- achieves ~36% smaller area than the 8/8/-/- baseline.
  AreaModel am;
  const double saving = 1.0 - am.area(make_config(4, 6, 4, -1));
  EXPECT_GT(saving, 0.25);
  EXPECT_LT(saving, 0.45);
}

// ---- PE simulator bit-exactness ----

using PeCase = std::tuple<int, int, int, int>;

class PeExact : public ::testing::TestWithParam<PeCase> {};

TEST_P(PeExact, MatchesSimulatedQuantizationAtFullProduct) {
  const auto [w, a, ws, as] = GetParam();
  Rng rng(w * 1000 + a * 100 + ws * 10 + std::max(as, 0));
  const Tensor wm = random_matrix(12, 64, rng);
  const Tensor am = random_matrix(7, 64, rng);
  const float amax = amax_per_tensor(am);

  const PeSimulator pe(make_config(w, a, ws, as));
  const PeRunResult hw = pe.run(am, wm, amax);
  const Tensor ref = pe.reference(am, wm, amax);
  EXPECT_LT(max_abs_diff(hw.output, ref), 2e-4f * (1.0f + amax_per_tensor(ref)))
      << pe.config().str();
}

INSTANTIATE_TEST_SUITE_P(Configs, PeExact,
                         ::testing::Values(PeCase{8, 8, -1, -1}, PeCase{4, 4, 4, 4},
                                           PeCase{4, 8, 6, 10}, PeCase{6, 6, 6, -1},
                                           PeCase{6, 8, -1, 10}, PeCase{3, 8, 4, 8}));

TEST(PeSimulator, RoundingDeviatesBoundedly) {
  Rng rng(50);
  const Tensor wm = random_matrix(8, 64, rng);
  const Tensor am = random_matrix(8, 64, rng);
  const float amax = amax_per_tensor(am);
  const PeSimulator full(make_config(4, 4, 6, 6, -1));
  const PeSimulator rounded(make_config(4, 4, 6, 6, 4));
  const Tensor yf = full.run(am, wm, amax).output;
  const Tensor yr = rounded.run(am, wm, amax).output;
  EXPECT_GT(sqnr_db(yf, yr), 6.0);
  EXPECT_LT(max_abs_diff(yf, yr), amax_per_tensor(yf));
}

TEST(PeSimulator, GatingGrowsWithAggressiveRounding) {
  Rng rng(51);
  Tensor am(Shape{16, 64});
  for (auto& v : am.span()) v = static_cast<float>(rng.laplace(0.3));
  const Tensor wm = random_matrix(8, 64, rng);
  const float amax = amax_per_tensor(am);
  const auto frac = [&](int spb) {
    const PeSimulator pe(make_config(4, 4, 6, 6, spb));
    return pe.run(am, wm, amax).stats.gateable_fraction();
  };
  EXPECT_GE(frac(3), frac(6));
  EXPECT_GE(frac(6), frac(-1));
}

TEST(PeSimulator, ConvChannelBlockSupported) {
  Rng rng(52);
  // Unrolled conv row: 9 blocks of C=6 channels.
  const Tensor wm = random_matrix(4, 54, rng);
  const Tensor am = random_matrix(4, 54, rng);
  const PeSimulator pe(make_config(4, 4, 4, 4));
  const PeRunResult hw = pe.run(am, wm, amax_per_tensor(am), /*channel_block=*/6);
  const Tensor ref = pe.reference(am, wm, amax_per_tensor(am), 6);
  EXPECT_LT(max_abs_diff(hw.output, ref), 2e-4f * (1.0f + amax_per_tensor(ref)));
}

// ---- Design space ----

TEST(DesignSpace, ConfigsCoverAllGranularities) {
  for (const ModelKind kind : {ModelKind::kResNet, ModelKind::kBertBase}) {
    const auto cs = design_space_configs(kind);
    bool poc = false, pvaw = false, pvwo = false, pvao = false;
    for (const auto& c : cs) {
      const std::string g = c.granularity_label();
      poc |= g == "POC";
      pvaw |= g == "PVAW";
      pvwo |= g == "PVWO";
      pvao |= g == "PVAO";
    }
    EXPECT_TRUE(poc && pvaw && pvwo && pvao);
  }
}

TEST(DesignSpace, ParetoFrontIsNonDominated) {
  EnergyModel em;
  AreaModel am;
  const auto pts = evaluate_design_points(design_space_configs(ModelKind::kResNet), em, am);
  const auto front = pareto_front(pts);
  ASSERT_FALSE(front.empty());
  ASSERT_LE(front.size(), pts.size());
  for (const auto& f : front) {
    for (const auto& p : pts) {
      EXPECT_FALSE(p.energy < f.energy && p.perf_per_area > f.perf_per_area)
          << p.label() << " dominates " << f.label();
    }
  }
}

TEST(DesignSpace, LowerPrecisionOnParetoFront) {
  // Some 4-bit configuration must be Pareto-optimal (cheaper than 8/8).
  EnergyModel em;
  AreaModel am;
  const auto pts = evaluate_design_points(design_space_configs(ModelKind::kResNet), em, am);
  const auto front = pareto_front(pts);
  bool has_low_bit = false;
  for (const auto& f : front) has_low_bit |= (f.mac.wt_bits <= 4);
  EXPECT_TRUE(has_low_bit);
}

}  // namespace
}  // namespace vsq
