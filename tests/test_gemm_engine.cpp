// Tests for the blocked & packed GEMM engine (tensor/gemm_kernel.h):
// randomized comparison against naive references at tail-heavy odd shapes,
// strided (attention-head style) views, bit-exactness of the packed
// int_gemm against the pre-refactor reference loop, and the scratch-arena
// / parallel_for-grain utilities the engine is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "quant/int_gemm.h"
#include "quant/quantized_tensor.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernel.h"
#include "util/rng.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

// Naive references (independent of the library's fallback loops).
void ref_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
            std::int64_t k, bool acc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = acc ? c[i * n + j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void ref_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
            std::int64_t k, bool acc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = acc ? c[i * n + j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void ref_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
            std::int64_t k, bool acc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = acc ? c[i * n + j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

// fp32 summation order differs between the blocked kernel and the
// reference; bound the error by k-scaled machine epsilon.
void expect_close(const Tensor& got, const Tensor& want, std::int64_t k) {
  ASSERT_EQ(got.numel(), want.numel());
  const float tol = 1e-5f * static_cast<float>(k + 8);
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float scale = std::max(1.0f, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol * scale) << "element " << i;
  }
}

// Odd shapes around the register-tile (6x16), cache-block, and
// tiny-fallback boundaries: every loop tail in the engine gets exercised.
const std::int64_t kOddSizes[] = {1, 3, 5, 31, 33, 63, 65};

TEST(GemmBlocked, MatchesNaiveAtOddShapes) {
  Rng rng(21);
  for (const std::int64_t m : kOddSizes) {
    for (const std::int64_t n : kOddSizes) {
      for (const std::int64_t k : kOddSizes) {
        // Alternate accumulate to halve runtime while covering both paths
        // across the shape grid.
        const bool acc = (m + n + k) % 2 == 0;
        const Tensor a = random_matrix(m, k, rng);
        const Tensor bt = random_matrix(n, k, rng);  // for nt
        const Tensor b = random_matrix(k, n, rng);   // for nn
        const Tensor at = random_matrix(k, m, rng);  // for tn
        Tensor c0 = random_matrix(m, n, rng);

        Tensor got = c0.clone(), want = c0.clone();
        gemm_nt(a.data(), bt.data(), got.data(), m, n, k, acc);
        ref_nt(a.data(), bt.data(), want.data(), m, n, k, acc);
        expect_close(got, want, k);

        got = c0.clone(), want = c0.clone();
        gemm_nn(a.data(), b.data(), got.data(), m, n, k, acc);
        ref_nn(a.data(), b.data(), want.data(), m, n, k, acc);
        expect_close(got, want, k);

        got = c0.clone(), want = c0.clone();
        gemm_tn(at.data(), b.data(), got.data(), m, n, k, acc);
        ref_tn(at.data(), b.data(), want.data(), m, n, k, acc);
        expect_close(got, want, k);
      }
    }
  }
}

TEST(GemmBlocked, AccumulateBothWaysAtTileBoundary) {
  // 6x16 register tile exactly, plus one past it, with both accumulate
  // settings explicitly (the grid above alternates them).
  Rng rng(22);
  for (const std::int64_t m : {6, 7}) {
    for (const std::int64_t n : {16, 17}) {
      const std::int64_t k = 130;  // > KC? no, but > one microkernel strip with tail
      const Tensor a = random_matrix(m, k, rng);
      const Tensor bt = random_matrix(n, k, rng);
      Tensor c0 = random_matrix(m, n, rng);
      for (const bool acc : {false, true}) {
        Tensor got = c0.clone(), want = c0.clone();
        gemm_nt(a.data(), bt.data(), got.data(), m, n, k, acc);
        ref_nt(a.data(), bt.data(), want.data(), m, n, k, acc);
        expect_close(got, want, k);
      }
    }
  }
}

TEST(GemmBlocked, KLargerThanPanelDepth) {
  // K spanning several KC=256 panels checks the beta/accumulate chaining
  // between K blocks.
  Rng rng(23);
  const std::int64_t m = 37, n = 29, k = 3 * 256 + 17;
  const Tensor a = random_matrix(m, k, rng);
  const Tensor bt = random_matrix(n, k, rng);
  Tensor got(Shape{m, n}), want(Shape{m, n});
  gemm_nt(a.data(), bt.data(), got.data(), m, n, k);
  ref_nt(a.data(), bt.data(), want.data(), m, n, k, false);
  expect_close(got, want, k);
}

TEST(GemmBlocked, StridedViewsMatchPackedCopies) {
  // One "attention head": a [t, dh] slice of a [t, D] buffer.
  Rng rng(24);
  const std::int64_t t = 40, dim = 96, dh = 32, off = 33;
  const Tensor q = random_matrix(t, dim, rng);
  const Tensor kx = random_matrix(t, dim, rng);
  // Dense copies of the head.
  Tensor qh(Shape{t, dh}), kh(Shape{t, dh});
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t d = 0; d < dh; ++d) {
      qh.at2(i, d) = q.at2(i, off + d);
      kh.at2(i, d) = kx.at2(i, off + d);
    }
  }
  Tensor got(Shape{t, t}), want(Shape{t, t});
  gemm_nt_strided(q.data() + off, dim, kx.data() + off, dim, got.data(), t, t, t, dh);
  ref_nt(qh.data(), kh.data(), want.data(), t, t, dh, false);
  expect_close(got, want, dh);

  // And a strided C: write the head back into a [t, D] buffer.
  Tensor probs = random_matrix(t, t, rng);
  Tensor ctx(Shape{t, dim});
  gemm_nn_strided(probs.data(), t, kx.data() + off, dim, ctx.data() + off, dim, t, dh, t);
  Tensor ctx_want(Shape{t, dh});
  ref_nn(probs.data(), kh.data(), ctx_want.data(), t, dh, t, false);
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t d = 0; d < dh; ++d) {
      const float scale = std::max(1.0f, std::abs(ctx_want.at2(i, d)));
      ASSERT_NEAR(ctx.at2(i, off + d), ctx_want.at2(i, d), 1e-4f * scale);
    }
  }
  // Untouched columns of the strided C stay zero.
  for (std::int64_t i = 0; i < t; ++i) {
    ASSERT_EQ(ctx.at2(i, 0), 0.0f);
    ASSERT_EQ(ctx.at2(i, dim - 1), 0.0f);
  }
}

TEST(GemmBlocked, ZeroKZeroesOrKeepsC) {
  Rng rng(25);
  Tensor c0 = random_matrix(5, 7, rng);
  Tensor c = c0.clone();
  gemm_nt(nullptr, nullptr, c.data(), 5, 7, 0, /*accumulate=*/true);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], c0[i]);
  gemm_nt(nullptr, nullptr, c.data(), 5, 7, 0, /*accumulate=*/false);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.0f);
}

// ---- int_gemm bit-exactness vs the pre-refactor reference loop ----------

// Verbatim copy of the seed int_gemm inner loop (serial): the blocked
// implementation must reproduce its outputs AND stats bit for bit.
Tensor int_gemm_seed_reference(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                               int scale_product_bits, IntGemmStats* stats) {
  const std::int64_t rows = act.rows, k_out = wgt.rows, cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();
  int full_bits = 0;
  if (act.two_level) full_bits += act.two_level->scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;

  Tensor out(Shape{rows, k_out});
  float* dst = out.data();
  std::uint64_t vec_ops = 0, zero_sp = 0, zero_dp = 0;
  std::int64_t max_psum = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int16_t* arow = act.q.data() + r * cols;
    for (std::int64_t k = 0; k < k_out; ++k) {
      const std::int16_t* wrow = wgt.q.data() + k * cols;
      std::int64_t acc = 0;
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto [c0, c1] = layout.col_range(v);
        std::int64_t dp = 0;
        for (std::int64_t c = c0; c < c1; ++c) {
          dp += static_cast<std::int64_t>(arow[c]) * wrow[c];
        }
        std::uint32_t sp = act.int_scale(r, v) * wgt.int_scale(k, v);
        sp = round_scale_product(sp, full_bits, scale_product_bits);
        acc += dp * static_cast<std::int64_t>(sp);
        ++vec_ops;
        if (sp == 0) {
          ++zero_sp;
        } else if (dp == 0) {
          ++zero_dp;
        }
      }
      max_psum = std::max(max_psum, std::abs(acc));
      dst[r * k_out + k] =
          static_cast<float>(static_cast<double>(acc) *
                             static_cast<double>(wgt.outer_scale(k)) * act.outer_scale(r));
    }
  }
  if (stats) {
    stats->vector_ops += vec_ops;
    stats->zero_scale_products += zero_sp;
    stats->zero_dot_products += zero_dp;
    stats->max_abs_psum = std::max(stats->max_abs_psum, max_psum);
  }
  return out;
}

QuantSpec two_level_weight_spec(int bits, int scale_bits, int vector_size) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerVector;
  s.vector_size = vector_size;
  s.scale_dtype = ScaleDtype::kTwoLevelInt;
  s.scale_fmt = QuantFormat{scale_bits, false};
  return s;
}

void expect_bit_identical(const QuantizedMatrix& aq, const QuantizedMatrix& wq, int spb) {
  IntGemmStats got_stats, want_stats;
  const Tensor got = int_gemm(aq, wq, spb, &got_stats);
  const Tensor want = int_gemm_seed_reference(aq, wq, spb, &want_stats);
  ASSERT_EQ(got.numel(), want.numel());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    // Bit-level equality, not tolerance: integer addition is associative,
    // so the blocked kernel must be exact.
    ASSERT_EQ(got[i], want[i]) << "element " << i;
  }
  EXPECT_EQ(got_stats.vector_ops, want_stats.vector_ops);
  EXPECT_EQ(got_stats.zero_scale_products, want_stats.zero_scale_products);
  EXPECT_EQ(got_stats.zero_dot_products, want_stats.zero_dot_products);
  EXPECT_EQ(got_stats.max_abs_psum, want_stats.max_abs_psum);
}

TEST(IntGemmBlocked, BitIdenticalTwoLevelOperands) {
  Rng rng(31);
  // Odd rows/cols and k_out not a multiple of the weight panel width (8):
  // exercises panel padding and the tail vector (50 = 3*16 + 2).
  const Tensor w = random_matrix(13, 50, rng);
  const Tensor a = random_matrix(9, 50, rng);
  const QuantSpec wspec = two_level_weight_spec(4, 6, 16);
  QuantSpec aspec = wspec;
  aspec.dynamic = true;
  const QuantizedMatrix wq = quantize_weights_int(w, wspec);
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, aspec.fmt) /
                      static_cast<float>(aspec.scale_fmt.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, aspec, amax, gamma);
  for (const int spb : {-1, 6, 3}) expect_bit_identical(aq, wq, spb);
}

TEST(IntGemmBlocked, BitIdenticalCoarseOperands) {
  Rng rng(32);
  const Tensor w = random_matrix(12, 48, rng);
  const Tensor a = random_matrix(7, 48, rng);
  QuantSpec wspec;
  wspec.enabled = true;
  wspec.fmt = QuantFormat{8, true};
  wspec.granularity = Granularity::kPerRow;
  QuantSpec aspec;
  aspec.enabled = true;
  aspec.fmt = QuantFormat{8, true};
  aspec.granularity = Granularity::kPerTensor;
  const QuantizedMatrix wq = quantize_weights_int(w, wspec);
  const QuantizedMatrix aq =
      quantize_activations_int(a, aspec, amax_per_tensor(a), 0.0f);
  expect_bit_identical(aq, wq, -1);
}

TEST(IntGemmBlocked, BitIdenticalWideOperandsAndTinyPanels) {
  Rng rng(33);
  // 10-bit operands, V=64: still int32-safe, plus k_out < panel width.
  const Tensor w = random_matrix(3, 64, rng);
  const Tensor a = random_matrix(2, 64, rng);
  const QuantSpec wspec = two_level_weight_spec(10, 6, 64);
  QuantSpec aspec = wspec;
  aspec.dynamic = true;
  const QuantizedMatrix wq = quantize_weights_int(w, wspec);
  const float amax = amax_per_tensor(a);
  const float gamma = scale_from_amax(amax, aspec.fmt) /
                      static_cast<float>(aspec.scale_fmt.qmax());
  const QuantizedMatrix aq = quantize_activations_int(a, aspec, amax, gamma);
  for (const int spb : {-1, 8}) expect_bit_identical(aq, wq, spb);
}

TEST(IntGemmBlocked, BitIdenticalInt64FallbackPath) {
  // Force the int64 wide fallback: 10-bit operands with one whole-row
  // vector of 8704 elements gives 511*511*8704 > INT32_MAX, so the packed
  // int32 kernel is rejected by the exactness guard. Outputs and stats of
  // the fallback must still match the reference loop bit for bit
  // (including the stats merge back into the caller's IntGemmStats).
  Rng rng(34);
  const std::int64_t cols = 8704;
  const Tensor w = random_matrix(3, cols, rng);
  const Tensor a = random_matrix(2, cols, rng);
  QuantSpec wspec;
  wspec.enabled = true;
  wspec.fmt = QuantFormat{10, true};
  wspec.granularity = Granularity::kPerRow;
  wspec.vector_size = static_cast<int>(cols);
  QuantSpec aspec;
  aspec.enabled = true;
  aspec.fmt = QuantFormat{10, true};
  aspec.granularity = Granularity::kPerTensor;
  aspec.vector_size = static_cast<int>(cols);
  const QuantizedMatrix wq = quantize_weights_int(w, wspec);
  const QuantizedMatrix aq =
      quantize_activations_int(a, aspec, amax_per_tensor(a), 0.0f);
  expect_bit_identical(aq, wq, -1);
}

// ---- Engine plumbing ----------------------------------------------------

TEST(ScratchArena, PointersStableAcrossGrowth) {
  ScratchArena arena;
  const auto mark = arena.mark();
  char* first = static_cast<char*>(arena.alloc(1000));
  first[0] = 42;
  // Force growth well past the first block; the first pointer must survive.
  for (int i = 0; i < 64; ++i) {
    char* p = static_cast<char*>(arena.alloc(1 << 16));
    p[0] = static_cast<char>(i);
  }
  EXPECT_EQ(first[0], 42);
  const std::size_t cap = arena.capacity();
  arena.rewind(mark);
  // Rewind recycles, never frees.
  EXPECT_EQ(arena.capacity(), cap);
  // Reuse after rewind hands back the same memory (block 0 start).
  char* again = static_cast<char*>(arena.alloc(8));
  EXPECT_EQ(again, first);
}

TEST(ScratchArena, AllocIsAligned) {
  ScratchArena arena;
  for (const std::size_t sz : {1u, 7u, 64u, 100u}) {
    const auto p = reinterpret_cast<std::uintptr_t>(arena.alloc(sz));
    EXPECT_EQ(p % 64, 0u);
  }
}

TEST(ParallelForGrain, CoversRangeExactlyOnce) {
  for (const std::size_t grain : {1u, 7u, 100u, 10000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallel_for(
        3, 257,
        [&](std::size_t b, std::size_t e) {
          ASSERT_LE(b, e);
          for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        },
        grain);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i >= 3 && i < 257 ? 1 : 0) << i;
    }
  }
}

TEST(ThreadPoolEnv, SetGlobalThreadsAfterCreationIsChecked) {
  // The pool exists by now (the GEMM tests above used it): re-pinning to
  // the current size is a no-op, a different size throws.
  const std::size_t have = ThreadPool::global().concurrency();
  EXPECT_NO_THROW(ThreadPool::set_global_threads(have));
  EXPECT_THROW(ThreadPool::set_global_threads(have + 1), std::logic_error);
}

}  // namespace
}  // namespace vsq
