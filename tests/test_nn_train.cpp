#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace vsq {
namespace {

// A 2-layer MLP on a simple 2-class problem (sign of a linear projection
// with margin): both optimizers should fit it quickly.
struct TinyMlp {
  Linear l1, l2;
  ReLU relu;

  explicit TinyMlp(Rng& rng) : l1("l1", 2, 16, rng), l2("l2", 16, 2, rng) {}

  Tensor forward(const Tensor& x, bool train) {
    return l2.forward(relu.forward(l1.forward(x, train), train), train);
  }
  void backward(const Tensor& g) { l1.backward(relu.backward(l2.backward(g))); }
  std::vector<Param*> params() {
    auto ps = l1.params();
    for (Param* p : l2.params()) ps.push_back(p);
    return ps;
  }
};

void make_problem(Rng& rng, std::int64_t n, Tensor& x, std::vector<int>& y) {
  x = Tensor(Shape{n, 2});
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = rng.normal(), b = rng.normal();
    x.at2(i, 0) = static_cast<float>(a);
    x.at2(i, 1) = static_cast<float>(b);
    y[static_cast<std::size_t>(i)] = (a + 0.5 * b > 0) ? 1 : 0;
  }
}

template <typename Opt>
double train_mlp(Opt& opt, TinyMlp& mlp, const Tensor& x, const std::vector<int>& y, int steps) {
  double last_loss = 0;
  for (int s = 0; s < steps; ++s) {
    opt.zero_grad();
    const Tensor logits = mlp.forward(x, true);
    const LossResult res = cross_entropy(logits, y);
    mlp.backward(res.grad);
    opt.step();
    last_loss = res.loss;
  }
  return last_loss;
}

TEST(Training, SgdFitsLinearProblem) {
  Rng rng(1);
  TinyMlp mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_problem(rng, 256, x, y);
  Sgd opt(mlp.params(), 0.1f, 0.9f, 0.0f);
  const double initial = cross_entropy(mlp.forward(x, false), y).loss;
  const double final_loss = train_mlp(opt, mlp, x, y, 120);
  EXPECT_LT(final_loss, initial * 0.3);
  EXPECT_GT(top1_accuracy(mlp.forward(x, false), y), 95.0);
}

TEST(Training, AdamFitsLinearProblem) {
  Rng rng(2);
  TinyMlp mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_problem(rng, 256, x, y);
  Adam opt(mlp.params(), 0.01f);
  const double final_loss = train_mlp(opt, mlp, x, y, 120);
  EXPECT_LT(final_loss, 0.2);
}

TEST(Training, ZeroGradClearsGradients) {
  Rng rng(3);
  TinyMlp mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_problem(rng, 16, x, y);
  Sgd opt(mlp.params(), 0.1f);
  const Tensor logits = mlp.forward(x, true);
  mlp.backward(cross_entropy(logits, y).grad);
  opt.zero_grad();
  for (Param* p : mlp.params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(Training, WeightDecayShrinksWeights) {
  Rng rng(4);
  Linear l("l", 4, 4, rng);
  // Zero gradient + weight decay -> pure shrinkage.
  Sgd opt(l.params(), 0.1f, 0.0f, 0.1f);
  const float before = std::abs(l.weight().value[0]);
  opt.zero_grad();
  opt.step();
  EXPECT_LT(std::abs(l.weight().value[0]), before);
}

TEST(Training, SgdMomentumAcceleratesOnConstantGrad) {
  Rng rng(5);
  Linear l("l", 1, 1, rng, /*has_bias=*/false);
  l.weight().value[0] = 0.0f;
  Sgd opt(l.params(), 0.1f, 0.9f, 0.0f);
  // Apply the same gradient twice; the second step must be larger.
  l.weight().grad[0] = 1.0f;
  opt.step();
  const float step1 = -l.weight().value[0];
  l.weight().grad[0] = 1.0f;
  const float before = l.weight().value[0];
  opt.step();
  const float step2 = before - l.weight().value[0];
  EXPECT_GT(step2, step1 * 1.5f);
}

}  // namespace
}  // namespace vsq
