// Tests for the outlier-channel-splitting baseline (quant/ocs):
// function preservation, error reduction on planted outliers, degenerate
// budgets, expansion accounting, and the model-level execution guard.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "quant/ocs.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// A weight matrix with a few huge outliers — the regime OCS targets.
Tensor outlier_matrix(Rng& rng, std::int64_t rows = 16, std::int64_t cols = 64) {
  Tensor w = random_tensor(Shape{rows, cols}, rng, 0.1);
  w.at2(3, 7) = 4.0f;
  w.at2(9, 7) = -3.5f;
  w.at2(12, 33) = 5.0f;
  return w;
}

TEST(Ocs, ZeroBudgetEqualsPerChannel) {
  Rng rng(21);
  const Tensor w = outlier_matrix(rng);
  const QuantFormat fmt{4, true};
  const OcsResult ocs = ocs_fake_quantize(w, fmt, 0.0);
  EXPECT_EQ(ocs.splits, 0);
  EXPECT_DOUBLE_EQ(ocs.expansion(), 1.0);

  const VectorLayout layout{w.shape()[1], 16, 0};
  const ScaleSet s = compute_scales(w, Granularity::kPerRow, layout, fmt);
  const Tensor plain = fake_quantize(w, s, fmt);
  EXPECT_LT(max_abs_diff(ocs.fake, plain), 1e-7f);
}

TEST(Ocs, SplitBudgetIsRespected) {
  Rng rng(22);
  const Tensor w = outlier_matrix(rng);
  const OcsResult ocs = ocs_fake_quantize(w, QuantFormat{4, true}, 0.05);
  // ceil(0.05 * 64) = 4 splits -> 68 expanded columns.
  EXPECT_EQ(ocs.splits, 4);
  EXPECT_EQ(ocs.expanded_cols, 68);
  EXPECT_NEAR(ocs.expansion(), 68.0 / 64.0, 1e-12);
}

TEST(Ocs, ReducesErrorOnOutlierMatrix) {
  Rng rng(23);
  const Tensor w = outlier_matrix(rng);
  const QuantFormat fmt{4, true};
  const Tensor plain = ocs_fake_quantize(w, fmt, 0.0).fake;
  const Tensor some = ocs_fake_quantize(w, fmt, 0.05).fake;
  const Tensor more = ocs_fake_quantize(w, fmt, 0.10).fake;
  // A small split budget helps modestly: with a 40:1 outlier-to-inlier
  // ratio, inliers still flush to zero at 4 bits after halving the outlier
  // once — the coarse-scaling failure mode the paper targets (Sec. 4).
  EXPECT_GT(sqnr_db(w, some), sqnr_db(w, plain) + 1.0);
  // A larger budget (outliers halved 2-3x) recovers several dB.
  EXPECT_GT(sqnr_db(w, more), sqnr_db(w, plain) + 4.0);
}

TEST(Ocs, HighPrecisionNearlyLossless) {
  Rng rng(24);
  const Tensor w = outlier_matrix(rng);
  const OcsResult ocs = ocs_fake_quantize(w, QuantFormat{8, true}, 0.05);
  EXPECT_GT(sqnr_db(w, ocs.fake), 30.0);
}

TEST(Ocs, OutlierFreeMatrixGainsLittle) {
  // Without outliers, splitting buys almost nothing — OCS's known limit
  // (and the reason per-vector scaling wins on well-behaved tensors too).
  Rng rng(25);
  const Tensor w = random_tensor(Shape{16, 64}, rng, 0.5);
  const QuantFormat fmt{4, true};
  const double plain = sqnr_db(w, ocs_fake_quantize(w, fmt, 0.0).fake);
  const double split = sqnr_db(w, ocs_fake_quantize(w, fmt, 0.05).fake);
  EXPECT_LT(split - plain, 3.0);
}

TEST(Ocs, RepeatedSplitsHalveTheSameColumn) {
  // One dominant column: every split should keep chasing it, so the
  // collapsed result converges to that column's values being representable.
  Rng rng(26);
  Tensor w = random_tensor(Shape{4, 8}, rng, 0.05);
  for (std::int64_t r = 0; r < 4; ++r) w.at2(r, 2) = 2.0f;
  const QuantFormat fmt{4, true};
  const OcsResult ocs = ocs_fake_quantize(w, fmt, 0.5);  // 4 splits on 8 cols
  EXPECT_EQ(ocs.splits, 4);
  // Reconstruction of the dominant column must be near-exact (halves add).
  for (std::int64_t r = 0; r < 4; ++r) EXPECT_NEAR(ocs.fake.at2(r, 2), 2.0f, 0.15f);
}

TEST(Ocs, RejectsNonMatrix) {
  EXPECT_THROW(ocs_fake_quantize(Tensor(Shape{2, 2, 2}), QuantFormat{4, true}, 0.1),
               std::invalid_argument);
}

TEST(OcsExecutionGuard, WeightOnlyMatchesDirectGemm) {
  Rng rng(27);
  Linear layer("fc", 32, 8, rng, /*has_bias=*/false);
  const Tensor x = random_tensor(Shape{4, 32}, rng);
  const QuantFormat fmt{4, true};
  const OcsResult direct = ocs_fake_quantize(layer.weight_matrix(), fmt, 0.05);

  Tensor guarded;
  {
    OcsExecutionGuard guard({&layer}, fmt, 0.05);
    guarded = layer.forward(x, false);
  }
  // y must equal x @ ocs_fake^T exactly (weights only, fp32 activations).
  Tensor expect(Shape{4, 8});
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t o = 0; o < 8; ++o) {
      float acc = 0;
      for (std::int64_t c = 0; c < 32; ++c) acc += x.at2(r, c) * direct.fake.at2(o, c);
      expect.at2(r, o) = acc;
    }
  }
  EXPECT_LT(max_abs_diff(guarded, expect), 1e-4f);
}

TEST(OcsExecutionGuard, RestoresLayerOnDestruction) {
  Rng rng(28);
  Linear layer("fc", 16, 4, rng);
  const Tensor x = random_tensor(Shape{2, 16}, rng);
  const Tensor before = layer.forward(x, false);
  {
    OcsExecutionGuard guard({&layer}, QuantFormat{3, true}, 0.1);
    const Tensor during = layer.forward(x, false);
    EXPECT_GT(max_abs_diff(before, during), 0.0f);  // 3-bit OCS changes output
  }
  EXPECT_EQ(max_abs_diff(before, layer.forward(x, false)), 0.0f);
}

TEST(OcsExecutionGuard, MeanExpansionWeightedByOps) {
  Rng rng(29);
  Linear small("s", 16, 4, rng), big("b", 64, 32, rng);
  const Tensor xs = random_tensor(Shape{2, 16}, rng), xb = random_tensor(Shape{2, 64}, rng);
  small.forward(xs, false);
  big.forward(xb, false);
  OcsExecutionGuard guard({&small, &big}, QuantFormat{4, true}, 0.05);
  const double m = guard.mean_expansion();
  EXPECT_GT(m, 1.0);
  EXPECT_LT(m, 1.12);  // ~5% plus ceil() rounding
}

}  // namespace
}  // namespace vsq
