#include <gtest/gtest.h>

#include <map>

#include "data/synthetic_images.h"
#include "data/synthetic_squad.h"
#include "tensor/ops.h"

namespace vsq {
namespace {

TEST(SyntheticImages, DeterministicForSeed) {
  ImageDatasetConfig c;
  c.count = 16;
  const ImageDataset a = make_image_dataset(c);
  const ImageDataset b = make_image_dataset(c);
  EXPECT_LT(max_abs_diff(a.images, b.images), 1e-9f);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticImages, DifferentSeedsDiffer) {
  ImageDatasetConfig c;
  c.count = 16;
  const ImageDataset a = make_image_dataset(c);
  c.seed += 1;
  const ImageDataset b = make_image_dataset(c);
  EXPECT_GT(max_abs_diff(a.images, b.images), 0.1f);
}

TEST(SyntheticImages, LabelsInRangeAndBalancedish) {
  ImageDatasetConfig c;
  c.count = 2000;
  const ImageDataset ds = make_image_dataset(c);
  std::map<int, int> counts;
  for (const int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, c.classes);
    ++counts[l];
  }
  EXPECT_EQ(static_cast<int>(counts.size()), c.classes);
  for (const auto& [cls, n] : counts) EXPECT_GT(n, 100) << "class " << cls;
}

TEST(SyntheticImages, BatchSlicing) {
  ImageDatasetConfig c;
  c.count = 10;
  const ImageDataset ds = make_image_dataset(c);
  const Tensor b = ds.batch_images(4, 7);
  EXPECT_EQ(b.shape()[0], 3);
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    EXPECT_EQ(b[i], ds.images[4 * (16 * 16 * 3) + i]);
  }
  EXPECT_EQ(ds.batch_labels(4, 7).size(), 3u);
}

TEST(SyntheticImages, ClassesAreVisuallyDistinct) {
  // Images of the same class should correlate more with each other (per
  // channel-0 grating) than with other classes on average. Weak check:
  // mean intra-class distance < mean inter-class distance.
  ImageDatasetConfig c;
  c.count = 200;
  c.pixel_noise = 0.05;
  c.label_noise = 0.0;
  const ImageDataset ds = make_image_dataset(c);
  (void)ds;  // Distinctness is exercised end-to-end by training tests.
  SUCCEED();
}

TEST(SyntheticSquad, DeterministicForSeed) {
  SpanDatasetConfig c;
  c.count = 16;
  const SpanDataset a = make_span_dataset(c);
  const SpanDataset b = make_span_dataset(c);
  EXPECT_LT(max_abs_diff(a.tokens, b.tokens), 1e-9f);
  EXPECT_EQ(a.labels.start, b.labels.start);
}

TEST(SyntheticSquad, SpansAreValidAndQueryMatched) {
  SpanDatasetConfig c;
  c.count = 200;
  const SpanDataset ds = make_span_dataset(c);
  for (std::int64_t n = 0; n < ds.size(); ++n) {
    const int s = ds.labels.start[static_cast<std::size_t>(n)];
    const int e = ds.labels.end[static_cast<std::size_t>(n)];
    ASSERT_GE(s, 2);
    ASSERT_LE(e, c.seq_len - 1);
    ASSERT_LE(s, e);
    ASSERT_LE(e - s + 1, c.max_span);
    // Gold span is preceded by [query, matching marker].
    const int marker = static_cast<int>(ds.tokens.at2(n, s - 1));
    const int query = static_cast<int>(ds.tokens.at2(n, s - 2));
    EXPECT_GE(marker, kFirstMarkerToken);
    EXPECT_LT(marker, kFirstMarkerToken + kNumQueries);
    EXPECT_EQ(marker - kFirstMarkerToken, query - kFirstQueryToken);
    // Span tokens come from the answer sub-vocabulary.
    for (int j = s; j <= e; ++j) {
      const int tok = static_cast<int>(ds.tokens.at2(n, j));
      EXPECT_GE(tok, kFirstAnswerToken);
      EXPECT_LT(tok, kFirstAnswerToken + kNumAnswerTokens);
    }
  }
}

TEST(SyntheticSquad, DistractorMarkersLackTheQuery) {
  SpanDatasetConfig c;
  c.count = 100;
  const SpanDataset ds = make_span_dataset(c);
  std::int64_t distractors = 0;
  for (std::int64_t n = 0; n < ds.size(); ++n) {
    const int s = ds.labels.start[static_cast<std::size_t>(n)];
    const int query = static_cast<int>(ds.tokens.at2(n, s - 2));
    for (std::int64_t j = 1; j < c.seq_len; ++j) {
      const int tok = static_cast<int>(ds.tokens.at2(n, j));
      if (tok >= kFirstMarkerToken && tok < kFirstMarkerToken + kNumQueries && j != s - 1) {
        ++distractors;
        // A distractor marker never matches the example's query id.
        EXPECT_NE(tok - kFirstMarkerToken, query - kFirstQueryToken);
      }
    }
  }
  EXPECT_EQ(distractors, 100 * c.num_distractors);
}

TEST(SyntheticSquad, TokensWithinVocab) {
  SpanDatasetConfig c;
  c.count = 50;
  const SpanDataset ds = make_span_dataset(c);
  for (std::int64_t i = 0; i < ds.tokens.numel(); ++i) {
    ASSERT_GE(ds.tokens[i], 0.0f);
    ASSERT_LT(ds.tokens[i], static_cast<float>(c.vocab));
  }
}

TEST(SyntheticSquad, ContentDistributionIsLongTailed) {
  // Zipf: the most frequent content token should appear many times more
  // often than the median one.
  SpanDatasetConfig c;
  c.count = 500;
  const SpanDataset ds = make_span_dataset(c);
  std::map<int, int> freq;
  for (std::int64_t i = 0; i < ds.tokens.numel(); ++i) {
    const int tok = static_cast<int>(ds.tokens[i]);
    if (tok >= kFirstContentToken) ++freq[tok];
  }
  std::vector<int> counts;
  for (const auto& [tok, n] : freq) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GT(counts.size(), 10u);
  EXPECT_GT(counts.front(), counts[counts.size() / 2] * 3);
}

TEST(SyntheticSquad, BatchSlicing) {
  SpanDatasetConfig c;
  c.count = 12;
  const SpanDataset ds = make_span_dataset(c);
  const Tensor b = ds.batch_tokens(3, 9);
  EXPECT_EQ(b.shape(), (Shape{6, c.seq_len}));
  const SpanLabels lb = ds.batch_labels(3, 9);
  EXPECT_EQ(lb.start.size(), 6u);
  EXPECT_EQ(lb.start[0], ds.labels.start[3]);
}

}  // namespace
}  // namespace vsq
