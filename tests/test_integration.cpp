// End-to-end integration tests tying the layers together:
//   * a quantized Linear layer's simulated-quantization output must match
//     the bit-accurate PE datapath run on the same operands (the
//     software/hardware equivalence the paper's Sec. 5 design relies on)
//   * the full PTQ pipeline on a tiny trained model: calibrate ->
//     quantize -> evaluate, at 8 bits, costs almost no accuracy
//   * per-vector PTQ beats per-channel PTQ on the same tiny model at
//     4 bits (the paper's core result, end to end)
#include <gtest/gtest.h>

#include "exp/ptq.h"
#include "hw/pe_simulator.h"
#include "models/resnetv.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TEST(Integration, LinearLayerMatchesPeDatapath) {
  Rng rng(1);
  Linear layer("l", 64, 16, rng, /*has_bias=*/false);
  const Tensor x = random_tensor(Shape{8, 64}, rng);

  MacConfig cfg;
  cfg.wt_bits = 4;
  cfg.act_bits = 8;
  cfg.wt_scale_bits = 6;
  cfg.act_scale_bits = 10;
  cfg.act_unsigned = false;

  // Software path: the layer in quant-eval mode with the same specs.
  layer.set_quant(cfg.weight_spec(), cfg.act_spec());
  layer.set_quant_mode(QuantMode::kCalibrate);
  layer.forward(x, false);
  layer.calibrate_finalize();
  layer.set_quant_mode(QuantMode::kQuantEval);
  const Tensor sw_out = layer.forward(x, false);

  // Hardware path: PE simulator on the same weight matrix and input, with
  // the activation amax the layer calibrated.
  const float amax = layer.act_quantizer()->static_amax();
  const PeSimulator pe(cfg);
  const Tensor hw_out = pe.run(x, layer.weight_matrix(), amax).output;

  EXPECT_LT(max_abs_diff(sw_out, hw_out), 2e-4f * (1.0f + amax_per_tensor(sw_out)));
}

// A tiny CNN trained for a handful of steps, then pushed through the full
// PTQ pipeline at different configurations.
class TinyModelPtq : public ::testing::Test {
 protected:
  static constexpr std::int64_t kTrain = 256, kTest = 128;

  void SetUp() override {
    ImageDatasetConfig dc;
    dc.count = kTrain + kTest;
    dc.height = 8;
    dc.width = 8;
    dc.classes = 4;
    dc.pixel_noise = 0.3;  // tamer than the bench default: the fixture model is tiny
    dc.label_noise = 0.0;
    dc.seed = 55;
    data_ = make_image_dataset(dc);

    ResNetVConfig mc;
    mc.in_h = 8;
    mc.in_w = 8;
    mc.widths = {8, 16};
    mc.blocks_per_stage = 1;
    mc.classes = 4;
    model_ = std::make_unique<ResNetV>(mc);

    Sgd opt(model_->params(), 0.05f, 0.9f, 1e-4f);
    for (int epoch = 0; epoch < 10; ++epoch) {
      if (epoch == 7) opt.set_lr(0.01f);
      for (std::int64_t i0 = 0; i0 < kTrain; i0 += 32) {
        opt.zero_grad();
        const Tensor logits = model_->forward(data_.batch_images(i0, i0 + 32), true);
        const LossResult loss = cross_entropy(logits, data_.batch_labels(i0, i0 + 32));
        model_->backward(loss.grad);
        opt.step();
      }
    }
    model_->fold_batchnorm();
  }

  double eval(const QuantSpec& w, const QuantSpec& a) {
    auto gemms = model_->gemms();
    if (w.enabled || a.enabled) {
      apply_quant_specs(gemms, w, a);
      set_mode_all(gemms, QuantMode::kCalibrate);
      model_->forward(data_.batch_images(0, 64), false);
      finalize_calibration(gemms);
      set_mode_all(gemms, QuantMode::kQuantEval);
    } else {
      set_mode_all(gemms, QuantMode::kOff);
    }
    const Tensor logits = model_->forward(data_.batch_images(kTrain, kTrain + kTest), false);
    const double acc = top1_accuracy(logits, data_.batch_labels(kTrain, kTrain + kTest));
    set_mode_all(gemms, QuantMode::kOff);
    return acc;
  }

  ImageDataset data_;
  std::unique_ptr<ResNetV> model_;
};

TEST_F(TinyModelPtq, ModelLearnsTheTask) {
  EXPECT_GT(eval(QuantSpec::disabled(), QuantSpec::disabled()), 60.0);
}

TEST_F(TinyModelPtq, EightBitPtqNearLossless) {
  const double fp32 = eval(QuantSpec::disabled(), QuantSpec::disabled());
  const double q8 = eval(specs::weight_coarse(8), specs::act_coarse(8, true));
  EXPECT_GE(q8, fp32 - 3.0);
}

TEST_F(TinyModelPtq, PerVectorBeatsPerChannelAt4Bits) {
  const double poc = eval(specs::weight_coarse(4), specs::act_coarse(4, true));
  const double pvaw = eval(specs::weight_pv(4, ScaleDtype::kFp32),
                           specs::act_pv(4, true, ScaleDtype::kFp32));
  EXPECT_GE(pvaw, poc);
}

TEST_F(TinyModelPtq, TwoLevelTracksFp32Scales) {
  const double pv_fp32 = eval(specs::weight_pv(4, ScaleDtype::kFp32),
                              specs::act_pv(4, true, ScaleDtype::kFp32));
  const double pv_tl6 = eval(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
                             specs::act_pv(4, true, ScaleDtype::kTwoLevelInt, 6));
  EXPECT_GE(pv_tl6, pv_fp32 - 5.0);
}

TEST_F(TinyModelPtq, QatImprovesOverPtqAtThreeBits) {
  const QuantSpec w = specs::weight_pv(3, ScaleDtype::kFp32);
  const QuantSpec a = specs::act_pv(3, true, ScaleDtype::kFp32);
  const double ptq = eval(w, a);

  // One epoch of STE finetuning on the train split.
  auto gemms = model_->gemms();
  apply_quant_specs(gemms, w, a);
  set_mode_all(gemms, QuantMode::kQat);
  Sgd opt(model_->params(), 0.01f, 0.9f, 0.0f);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (std::int64_t i0 = 0; i0 < kTrain; i0 += 32) {
      opt.zero_grad();
      const Tensor logits = model_->forward(data_.batch_images(i0, i0 + 32), true);
      const LossResult loss = cross_entropy(logits, data_.batch_labels(i0, i0 + 32));
      model_->backward(loss.grad);
      opt.step();
      model_->on_weights_updated();
    }
  }
  const Tensor logits = model_->forward(data_.batch_images(kTrain, kTrain + kTest), false);
  const double qat = top1_accuracy(logits, data_.batch_labels(kTrain, kTrain + kTest));
  set_mode_all(gemms, QuantMode::kOff);
  EXPECT_GE(qat, ptq - 2.0);  // QAT should not hurt; usually it helps
}

}  // namespace
}  // namespace vsq
