// Golden-archive regression tests for the deployment package format and
// the integer datapath. tests/golden/ holds a committed package exported
// from the deterministic tiny model plus an input/expected-output archive
// produced by QuantizedModelRunner at commit time. Any drift in the
// archive encoding, the package save/load round trip, the quantization
// arithmetic, or int_gemm itself fails these tests loudly instead of
// silently changing deployed behavior.
//
// Regenerate after an INTENTIONAL format/datapath change with:
//   ./test_golden --gtest_also_run_disabled_tests
//                 --gtest_filter='*RegenerateGoldenFiles*'
// (one command line) and commit the rewritten files with the change.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "quant/export.h"
#include "tensor/gemm_kernel.h"
#include "util/rng.h"

namespace vsq {
namespace {

std::string golden_dir() { return VSQ_GOLDEN_DIR; }
std::string golden_package_path() { return golden_dir() + "/tiny_int.vsqa"; }
std::string golden_io_path() { return golden_dir() + "/tiny_io.vsqa"; }
std::string golden_conv_package_path() { return golden_dir() + "/tiny_conv.vsqa"; }
std::string golden_conv_io_path() { return golden_dir() + "/tiny_conv_io.vsqa"; }
std::string golden_bert_package_path() { return golden_dir() + "/tiny_bert.vsqa"; }
std::string golden_bert_io_path() { return golden_dir() + "/tiny_bert_io.vsqa"; }

// The exact package vsq_quantize --model=tiny exports (same seed, same
// calibration stream, same config — one shared definition in exp/ptq).
QuantizedModelPackage build_tiny_package() {
  return tiny_mlp_package(MacConfig::parse("4/8/6/10"));
}

// Likewise for --model=tiny_conv: the tiny residual CNN package with conv
// geometry, the conv/residual/pool forward program and the input shape.
QuantizedModelPackage build_tiny_conv_package() {
  return tiny_conv_package(MacConfig::parse("4/8/6/10"));
}

Tensor golden_input() {
  // uniform() is pure integer/IEEE arithmetic (no libm), so the input is
  // reproducible to the bit on every platform and C library.
  Rng rng(4242);
  Tensor x(Shape{4, TinyMlp::kIn});
  for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(GoldenPackage, SaveLoadRoundTripIsByteIdentical) {
  const std::string tmp1 = std::filesystem::temp_directory_path() / "vsq_golden_rt1.vsqa";
  const std::string tmp2 = std::filesystem::temp_directory_path() / "vsq_golden_rt2.vsqa";
  // load(golden) -> save must reproduce the committed bytes exactly: the
  // on-disk encoding is part of the deployment contract.
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_package_path());
  pkg.save(tmp1);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(golden_package_path()))
      << "save(load(golden)) differs from the committed archive - the "
         "package format drifted";
  // And the round trip is a fixed point.
  QuantizedModelPackage::load(tmp1).save(tmp2);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(tmp2));
  std::remove(tmp1.c_str());
  std::remove(tmp2.c_str());
}

TEST(GoldenPackage, StructureMatchesCommittedExpectations) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_package_path());
  ASSERT_EQ(pkg.layers.size(), 2u);
  ASSERT_TRUE(pkg.layers.count("fc1"));
  ASSERT_TRUE(pkg.layers.count("fc2"));
  const QuantizedLayerPackage& fc1 = pkg.layers.at("fc1");
  EXPECT_EQ(fc1.weights.rows, TinyMlp::kHidden);
  EXPECT_EQ(fc1.weights.cols(), TinyMlp::kIn);
  EXPECT_EQ(fc1.weights.fmt.bits, 4);
  EXPECT_TRUE(fc1.weights.fmt.is_signed);
  EXPECT_EQ(fc1.weights.layout.vector_size, 16);
  ASSERT_TRUE(fc1.weights.two_level.has_value());
  EXPECT_EQ(fc1.weights.two_level->scale_fmt.bits, 6);
  EXPECT_EQ(fc1.act_spec.fmt.bits, 8);
  EXPECT_EQ(fc1.act_spec.scale_fmt.bits, 10);
  EXPECT_GT(fc1.act_amax, 0.0f);
  EXPECT_GT(fc1.act_gamma, 0.0f);
  const QuantizedLayerPackage& fc2 = pkg.layers.at("fc2");
  EXPECT_EQ(fc2.weights.rows, TinyMlp::kOut);
  EXPECT_EQ(fc2.weights.cols(), TinyMlp::kHidden);
  ASSERT_EQ(pkg.program.size(), 2u);
  EXPECT_EQ(pkg.program[0].layer, "fc1");
  EXPECT_TRUE(pkg.program[0].relu);
  EXPECT_EQ(pkg.program[1].layer, "fc2");
  EXPECT_FALSE(pkg.program[1].relu);
}

TEST(GoldenPackage, FreshExportMatchesCommittedArchive) {
  // Quantizing the deterministic tiny model today must reproduce the
  // committed package bit-for-bit: calibration, scale factorization and
  // weight quantization are all deterministic functions of the seed.
  // Calibration runs the fp32 forward, whose microkernel tiers round
  // differently (FMA), so the archives pin the tier they were exported
  // under; runner outputs on the committed package stay asserted per tier.
  if (!gemm_kernel_uses_avx2()) {
    GTEST_SKIP() << "archives exported under the avx2 fp tier";
  }
  const std::string tmp = std::filesystem::temp_directory_path() / "vsq_golden_fresh.vsqa";
  build_tiny_package().save(tmp);
  EXPECT_EQ(read_bytes(tmp), read_bytes(golden_package_path()))
      << "fresh tiny export differs from the committed archive - the "
         "calibration/export pipeline drifted";
  std::remove(tmp.c_str());
}

TEST(GoldenPackage, RunnerReproducesCommittedOutputsBitExactly) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_package_path());
  const QuantizedModelRunner runner(pkg);
  const Archive io = Archive::load(golden_io_path());
  const ArchiveEntry& in = io.get("input");
  const ArchiveEntry& expected = io.get("output");
  ASSERT_EQ(in.dims.size(), 2u);
  const Tensor x = Tensor::from_vector(Shape{in.dims[0], in.dims[1]}, in.data);
  const Tensor y = runner.forward(x);
  ASSERT_EQ(static_cast<std::size_t>(y.numel()), expected.data.size());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y[i], expected.data[static_cast<std::size_t>(i)])
        << "integer datapath output drifted at element " << i;
  }
}

// ---- Conv package goldens ------------------------------------------------
// Same contract for the CNN deployment format: conv geometry entries, the
// op-coded forward program, the input-geometry entry and the tiled integer
// conv datapath all participate in the byte-stability guarantee.

Tensor golden_conv_input() {
  Rng rng(2424);
  Tensor x(Shape{4, 8 * 8 * 3});
  for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

TEST(GoldenConvPackage, SaveLoadRoundTripIsByteIdentical) {
  const std::string tmp1 = std::filesystem::temp_directory_path() / "vsq_golden_conv_rt1.vsqa";
  const std::string tmp2 = std::filesystem::temp_directory_path() / "vsq_golden_conv_rt2.vsqa";
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_conv_package_path());
  pkg.save(tmp1);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(golden_conv_package_path()))
      << "save(load(golden)) differs from the committed conv archive - the "
         "package format drifted";
  QuantizedModelPackage::load(tmp1).save(tmp2);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(tmp2));
  std::remove(tmp1.c_str());
  std::remove(tmp2.c_str());
}

TEST(GoldenConvPackage, StructureMatchesCommittedExpectations) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_conv_package_path());
  // stem + stage0.block0{conv1,conv2} + stage1.block0{conv1,conv2,shortcut} + fc.
  ASSERT_EQ(pkg.layers.size(), 7u);
  EXPECT_EQ(pkg.in_h, 8);
  EXPECT_EQ(pkg.in_w, 8);
  EXPECT_EQ(pkg.in_c, 3);
  const QuantizedLayerPackage& stem = pkg.layers.at("stem");
  EXPECT_EQ(stem.kind, PackagedLayerKind::kConv);
  EXPECT_EQ(stem.kernel, 3);
  EXPECT_EQ(stem.stride, 1);
  EXPECT_EQ(stem.pad, 1);
  EXPECT_EQ(stem.conv_in_channels(), 3);
  EXPECT_FALSE(stem.bias.empty());  // BN folding plants the bias
  const QuantizedLayerPackage& shortcut = pkg.layers.at("stage1.block0.shortcut");
  EXPECT_EQ(shortcut.kernel, 1);
  EXPECT_EQ(shortcut.stride, 2);
  EXPECT_EQ(shortcut.conv_in_channels(), 8);
  const QuantizedLayerPackage& fc = pkg.layers.at("fc");
  EXPECT_EQ(fc.kind, PackagedLayerKind::kGemm);
  EXPECT_EQ(fc.weights.rows, 10);
  EXPECT_EQ(fc.weights.cols(), 16);
  // Program: stem + 4-step plain block + 5-step projection block + gap + fc.
  ASSERT_EQ(pkg.program.size(), 12u);
  EXPECT_EQ(pkg.program[0].op, ForwardStep::Op::kConv);
  EXPECT_EQ(pkg.program[0].layer, "stem");
  EXPECT_TRUE(pkg.program[0].relu);
  EXPECT_EQ(pkg.program[1].op, ForwardStep::Op::kSave);
  EXPECT_EQ(pkg.program[8].op, ForwardStep::Op::kConvSaved);
  EXPECT_EQ(pkg.program[8].layer, "stage1.block0.shortcut");
  EXPECT_EQ(pkg.program[10].op, ForwardStep::Op::kGlobalPool);
  EXPECT_EQ(pkg.program[11].op, ForwardStep::Op::kGemm);
  EXPECT_EQ(pkg.program[11].layer, "fc");
}

TEST(GoldenConvPackage, FreshExportMatchesCommittedArchive) {
  if (!gemm_kernel_uses_avx2()) {
    GTEST_SKIP() << "archives exported under the avx2 fp tier";
  }
  const std::string tmp = std::filesystem::temp_directory_path() / "vsq_golden_conv_fresh.vsqa";
  build_tiny_conv_package().save(tmp);
  EXPECT_EQ(read_bytes(tmp), read_bytes(golden_conv_package_path()))
      << "fresh tiny_conv export differs from the committed archive - the "
         "CNN calibration/export pipeline drifted";
  std::remove(tmp.c_str());
}

TEST(GoldenConvPackage, RunnerReproducesCommittedOutputsBitExactly) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_conv_package_path());
  const QuantizedModelRunner runner(pkg);
  const Archive io = Archive::load(golden_conv_io_path());
  const ArchiveEntry& in = io.get("input");
  const ArchiveEntry& expected = io.get("output");
  ASSERT_EQ(in.dims.size(), 2u);
  const Tensor x = Tensor::from_vector(Shape{in.dims[0], in.dims[1]}, in.data);
  const Tensor y = runner.forward(x);
  ASSERT_EQ(static_cast<std::size_t>(y.numel()), expected.data.size());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y[i], expected.data[static_cast<std::size_t>(i)])
        << "integer conv datapath output drifted at element " << i;
  }
}

// ---- Transformer package goldens -----------------------------------------
// The sequence-serving deployment format: the __seq__ geometry entry, the
// self-describing __ln__/__emb__ fp32 parameter entries, and the op-coded
// embed/layernorm/attention/softmax/gelu forward program, plus the padded
// mixed-length batched forward through the sequence runner.

// Likewise for --model=tiny_bert: the 2-layer encoder package.
QuantizedModelPackage build_tiny_bert_package() {
  return tiny_bert_package(MacConfig::parse("4/8/6/10"));
}

// Padded token batch at mixed true lengths (suffix -1.0f sentinel), so the
// committed output also pins the true-length attention/pad handling.
Tensor golden_bert_input() {
  Rng rng(1717);
  const TransformerConfig config = tiny_bert_config();
  const std::int64_t lens[] = {5, 19, config.max_len};
  Tensor x(Shape{3, config.max_len});
  x.fill(-1.0f);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t j = 0; j < lens[r]; ++j) {
      x.at2(r, j) =
          static_cast<float>(rng.uniform_u64(static_cast<std::uint64_t>(config.vocab)));
    }
  }
  return x;
}

TEST(GoldenBertPackage, SaveLoadRoundTripIsByteIdentical) {
  const std::string tmp1 = std::filesystem::temp_directory_path() / "vsq_golden_bert_rt1.vsqa";
  const std::string tmp2 = std::filesystem::temp_directory_path() / "vsq_golden_bert_rt2.vsqa";
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_bert_package_path());
  pkg.save(tmp1);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(golden_bert_package_path()))
      << "save(load(golden)) differs from the committed bert archive - the "
         "sequence package format drifted";
  QuantizedModelPackage::load(tmp1).save(tmp2);
  EXPECT_EQ(read_bytes(tmp1), read_bytes(tmp2));
  std::remove(tmp1.c_str());
  std::remove(tmp2.c_str());
}

TEST(GoldenBertPackage, StructureMatchesCommittedExpectations) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_bert_package_path());
  const TransformerConfig config = tiny_bert_config();
  EXPECT_EQ(pkg.max_seq, config.max_len);
  EXPECT_EQ(pkg.seq_dim, config.dim);
  EXPECT_EQ(pkg.heads, config.heads);
  // 2 blocks x (4 attention projections + 2 FFN gemms) + the span head.
  EXPECT_EQ(pkg.layers.size(), 13u);
  ASSERT_TRUE(pkg.layers.count("layer0.attn.q"));
  ASSERT_TRUE(pkg.layers.count("layer1.fc2"));
  ASSERT_TRUE(pkg.layers.count("span_head"));
  EXPECT_EQ(pkg.layers.at("layer0.attn.q").weights.fmt.bits, 4);
  // fp32 sidecars: one embedding, 2 layernorms per block + the final one.
  ASSERT_EQ(pkg.embeddings.size(), 1u);
  const EmbeddingPackage& emb = pkg.embeddings.at("emb");
  EXPECT_EQ(emb.vocab, config.vocab);
  EXPECT_EQ(emb.max_len, config.max_len);
  EXPECT_EQ(emb.dim, config.dim);
  ASSERT_EQ(pkg.norms.size(), 5u);
  EXPECT_EQ(static_cast<std::int64_t>(pkg.norms.at("final_ln").gamma.size()), config.dim);
  // Program: embed + 2 x (save ln attn +res save ln fc1 gelu fc2 +res) +
  // final_ln + span_head = 1 + 2*10 + 2 steps.
  ASSERT_EQ(pkg.program.size(), 23u);
  EXPECT_EQ(pkg.program[0].op, ForwardStep::Op::kEmbed);
  EXPECT_EQ(pkg.program[0].layer, "emb");
  EXPECT_EQ(pkg.program[1].op, ForwardStep::Op::kSave);
  EXPECT_EQ(pkg.program[2].op, ForwardStep::Op::kLayerNorm);
  EXPECT_EQ(pkg.program[3].op, ForwardStep::Op::kAttention);
  EXPECT_EQ(pkg.program[3].layer, "layer0.attn");
  EXPECT_EQ(pkg.program[4].op, ForwardStep::Op::kAddSaved);
  EXPECT_EQ(pkg.program[7].op, ForwardStep::Op::kGemm);
  EXPECT_EQ(pkg.program[8].op, ForwardStep::Op::kGelu);
  EXPECT_EQ(pkg.program[21].op, ForwardStep::Op::kLayerNorm);
  EXPECT_EQ(pkg.program[21].layer, "final_ln");
  EXPECT_EQ(pkg.program[22].op, ForwardStep::Op::kGemm);
  EXPECT_EQ(pkg.program[22].layer, "span_head");
}

TEST(GoldenBertPackage, FreshExportMatchesCommittedArchive) {
  if (!gemm_kernel_uses_avx2()) {
    GTEST_SKIP() << "archives exported under the avx2 fp tier";
  }
  const std::string tmp = std::filesystem::temp_directory_path() / "vsq_golden_bert_fresh.vsqa";
  build_tiny_bert_package().save(tmp);
  EXPECT_EQ(read_bytes(tmp), read_bytes(golden_bert_package_path()))
      << "fresh tiny_bert export differs from the committed archive - the "
         "transformer calibration/export pipeline drifted";
  std::remove(tmp.c_str());
}

TEST(GoldenBertPackage, RunnerReproducesCommittedOutputsBitExactly) {
  const QuantizedModelPackage pkg = QuantizedModelPackage::load(golden_bert_package_path());
  const QuantizedModelRunner runner(pkg);
  ASSERT_TRUE(runner.seq());
  const Archive io = Archive::load(golden_bert_io_path());
  const ArchiveEntry& in = io.get("input");
  const ArchiveEntry& expected = io.get("output");
  ASSERT_EQ(in.dims.size(), 2u);
  const Tensor x = Tensor::from_vector(Shape{in.dims[0], in.dims[1]}, in.data);
  const Tensor y = runner.forward(x);
  ASSERT_EQ(static_cast<std::size_t>(y.numel()), expected.data.size());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y[i], expected.data[static_cast<std::size_t>(i)])
        << "sequence datapath output drifted at element " << i;
  }
}

// Manual regeneration hook (see file header). Disabled so normal runs
// never rewrite the golden files.
TEST(GoldenPackage, DISABLED_RegenerateGoldenFiles) {
  const QuantizedModelPackage pkg = build_tiny_package();
  pkg.save(golden_package_path());
  const QuantizedModelRunner runner(pkg);
  const Tensor x = golden_input();
  const Tensor y = runner.forward(x);
  Archive io;
  io.put("input", {x.shape()[0], x.shape()[1]}, x.to_vector());
  io.put("output", {y.shape()[0], y.shape()[1]}, y.to_vector());
  io.save(golden_io_path());

  const QuantizedModelPackage conv_pkg = build_tiny_conv_package();
  conv_pkg.save(golden_conv_package_path());
  const QuantizedModelRunner conv_runner(conv_pkg);
  const Tensor cx = golden_conv_input();
  const Tensor cy = conv_runner.forward(cx);
  Archive conv_io;
  conv_io.put("input", {cx.shape()[0], cx.shape()[1]}, cx.to_vector());
  conv_io.put("output", {cy.shape()[0], cy.shape()[1]}, cy.to_vector());
  conv_io.save(golden_conv_io_path());

  const QuantizedModelPackage bert_pkg = build_tiny_bert_package();
  bert_pkg.save(golden_bert_package_path());
  const QuantizedModelRunner bert_runner(bert_pkg);
  const Tensor bx = golden_bert_input();
  const Tensor by = bert_runner.forward(bx);
  Archive bert_io;
  bert_io.put("input", {bx.shape()[0], bx.shape()[1]}, bx.to_vector());
  bert_io.put("output", {by.shape()[0], by.shape()[1]}, by.to_vector());
  bert_io.save(golden_bert_io_path());
  std::printf("regenerated %s, %s, %s, %s, %s and %s\n", golden_package_path().c_str(),
              golden_io_path().c_str(), golden_conv_package_path().c_str(),
              golden_conv_io_path().c_str(), golden_bert_package_path().c_str(),
              golden_bert_io_path().c_str());
}

}  // namespace
}  // namespace vsq
