#include <gtest/gtest.h>

#include "quant/amax.h"
#include "quant/scale.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TEST(QuantFormat, SignedRanges) {
  const QuantFormat f{8, true};
  EXPECT_EQ(f.qmax(), 127);
  EXPECT_EQ(f.qmin(), -127);
  const QuantFormat f4{4, true};
  EXPECT_EQ(f4.qmax(), 7);
  EXPECT_EQ(f4.qmin(), -7);
}

TEST(QuantFormat, UnsignedRanges) {
  const QuantFormat f{8, false};
  EXPECT_EQ(f.qmax(), 255);
  EXPECT_EQ(f.qmin(), 0);
  const QuantFormat f3{3, false};
  EXPECT_EQ(f3.qmax(), 7);
}

TEST(QuantFormat, ScaleFromAmaxEq1) {
  const QuantFormat f{8, true};
  EXPECT_FLOAT_EQ(scale_from_amax(127.0f, f), 1.0f);
  EXPECT_FLOAT_EQ(scale_from_amax(0.0f, f), 0.0f);
}

// Property: round-trip error of an in-range value is at most scale/2.
class QuantizeValueProp : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeValueProp, RoundTripErrorBounded) {
  const int bits = GetParam();
  const QuantFormat f{bits, true};
  Rng rng(bits);
  const float amax = 3.0f;
  const float s = scale_from_amax(amax, f);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.uniform(-amax, amax));
    const float xq = fake_quantize_value(x, s, f);
    EXPECT_LE(std::abs(xq - x), s / 2 + 1e-6f) << "bits=" << bits << " x=" << x;
  }
}

TEST_P(QuantizeValueProp, OutOfRangeClipsToAmax) {
  const int bits = GetParam();
  const QuantFormat f{bits, true};
  const float s = scale_from_amax(1.0f, f);
  EXPECT_FLOAT_EQ(fake_quantize_value(100.0f, s, f), 1.0f);
  EXPECT_FLOAT_EQ(fake_quantize_value(-100.0f, s, f), -1.0f);
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, QuantizeValueProp, ::testing::Values(3, 4, 6, 8, 10));

TEST(QuantizeValue, ZeroScaleYieldsZero) {
  const QuantFormat f{8, true};
  EXPECT_EQ(quantize_value(5.0f, 0.0f, f), 0);
  EXPECT_FLOAT_EQ(fake_quantize_value(5.0f, 0.0f, f), 0.0f);
}

TEST(QuantizeValue, UnsignedClipsNegativesToZero) {
  const QuantFormat f{4, false};
  const float s = scale_from_amax(1.0f, f);
  EXPECT_FLOAT_EQ(fake_quantize_value(-0.7f, s, f), 0.0f);
}

// ---- amax per granularity ----

TEST(Amax, PerTensorPerRowPerVector) {
  Tensor x = Tensor::from_vector(Shape{2, 4}, {1, -2, 3, -4, 10, 0.5f, -0.25f, 7});
  EXPECT_FLOAT_EQ(amax_per_tensor(x), 10.0f);
  const auto rows = amax_per_row(x);
  EXPECT_FLOAT_EQ(rows[0], 4.0f);
  EXPECT_FLOAT_EQ(rows[1], 10.0f);
  const auto vecs = amax_per_vector(x, VectorLayout{4, 2, 0});
  ASSERT_EQ(vecs.size(), 4u);
  EXPECT_FLOAT_EQ(vecs[0], 2.0f);   // row 0, cols 0-1
  EXPECT_FLOAT_EQ(vecs[1], 4.0f);   // row 0, cols 2-3
  EXPECT_FLOAT_EQ(vecs[2], 10.0f);  // row 1, cols 0-1
  EXPECT_FLOAT_EQ(vecs[3], 7.0f);   // row 1, cols 2-3
}

TEST(Amax, TailVectorShorterThanV) {
  Tensor x = Tensor::from_vector(Shape{1, 5}, {1, 2, 3, 4, 9});
  const auto vecs = amax_per_vector(x, VectorLayout{5, 4, 0});
  ASSERT_EQ(vecs.size(), 2u);
  EXPECT_FLOAT_EQ(vecs[0], 4.0f);
  EXPECT_FLOAT_EQ(vecs[1], 9.0f);  // tail vector of one element
}

// ---- VectorLayout with channel blocks (conv V x 1 x 1 semantics) ----

TEST(VectorLayout, BlocksResetVectorBoundaries) {
  // cols = 12 = 3 blocks of C=4 channels; V=3 -> 2 vectors per block (3+1).
  const VectorLayout l{12, 3, 4};
  EXPECT_EQ(l.num_blocks(), 3);
  EXPECT_EQ(l.vecs_per_block(), 2);
  EXPECT_EQ(l.vectors_per_row(), 6);
  EXPECT_EQ(l.vector_of_col(0), 0);
  EXPECT_EQ(l.vector_of_col(3), 1);   // tail of block 0
  EXPECT_EQ(l.vector_of_col(4), 2);   // first vector of block 1
  const auto [c0, c1] = l.col_range(1);
  EXPECT_EQ(c0, 3);
  EXPECT_EQ(c1, 4);  // tail vector covers one channel
}

TEST(VectorLayout, ValidateRejectsNonDividingBlock) {
  const VectorLayout bad{10, 4, 3};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(VectorLayout, ZeroBlockMeansWholeRow) {
  const VectorLayout l{10, 4, 0};
  EXPECT_EQ(l.num_blocks(), 1);
  EXPECT_EQ(l.vectors_per_row(), 3);
}

// ---- fake_quantize per granularity ----

class FakeQuantGranularity : public ::testing::TestWithParam<Granularity> {};

TEST_P(FakeQuantGranularity, ElementErrorWithinLocalScale) {
  Rng rng(11);
  const Tensor x = random_matrix(8, 32, rng);
  const QuantFormat f{6, true};
  const ScaleSet s = compute_scales(x, GetParam(), VectorLayout{32, 8, 0}, f);
  const Tensor xq = fake_quantize(x, s, f);
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 32; ++c) {
      EXPECT_LE(std::abs(xq.at2(r, c) - x.at2(r, c)), s.at(r, c) / 2 + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, FakeQuantGranularity,
                         ::testing::Values(Granularity::kPerTensor, Granularity::kPerRow,
                                           Granularity::kPerVector));

TEST(FakeQuant, FinerGranularityLowersMse) {
  // The paper's core motivation (Sec. 4): per-vector scaling reduces
  // quantization error versus per-row versus per-tensor. Use a long-tailed
  // distribution so coarse scales are stretched by outliers.
  Rng rng(12);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat f{4, true};
  const VectorLayout layout{64, 16, 0};
  const Tensor q_tensor =
      fake_quantize(x, compute_scales(x, Granularity::kPerTensor, layout, f), f);
  const Tensor q_row = fake_quantize(x, compute_scales(x, Granularity::kPerRow, layout, f), f);
  const Tensor q_vec =
      fake_quantize(x, compute_scales(x, Granularity::kPerVector, layout, f), f);
  EXPECT_LT(mse(x, q_row), mse(x, q_tensor));
  EXPECT_LT(mse(x, q_vec), mse(x, q_row));
}

TEST(FakeQuant, SmallerVectorsLowerMse) {
  // Table 4's mechanism: error grows with V.
  Rng rng(13);
  Tensor x(Shape{8, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat f{6, true};
  double prev = -1.0;
  for (const int v : {1, 4, 16, 64}) {
    const ScaleSet s = compute_scales(x, Granularity::kPerVector, VectorLayout{64, v, 0}, f);
    const double m = mse(x, fake_quantize(x, s, f));
    if (prev >= 0.0) {
      EXPECT_GE(m, prev) << "V=" << v;
    }
    prev = m;
  }
}

TEST(FakeQuant, V1IsLossless) {
  // V = 1: every element has its own scale -> only representation loss of
  // one rounding step at full scale, i.e. x maps to exactly amax * q/qmax
  // with q = qmax -> x itself.
  Rng rng(14);
  const Tensor x = random_matrix(4, 8, rng);
  const QuantFormat f{8, true};
  const ScaleSet s = compute_scales(x, Granularity::kPerVector, VectorLayout{8, 1, 0}, f);
  const Tensor xq = fake_quantize(x, s, f);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(xq[i], x[i], std::abs(x[i]) * 1e-6 + 1e-7);
  }
}

TEST(FakeQuant, Fp16ScalesCloseToFp32Scales) {
  Rng rng(15);
  const Tensor x = random_matrix(8, 32, rng);
  const QuantFormat f{8, true};
  ScaleSet s = compute_scales(x, Granularity::kPerVector, VectorLayout{32, 16, 0}, f);
  ScaleSet s16 = s;
  round_scales_fp16(s16);
  const Tensor q32 = fake_quantize(x, s, f);
  const Tensor q16 = fake_quantize(x, s16, f);
  // fp16 scales leave quantization quality essentially unchanged (the
  // paper's S=fp16 columns match S=fp32 to within noise).
  EXPECT_LT(mse(x, q16), mse(x, q32) * 1.2 + 1e-10);
}

TEST(ScalesFromAmax, CountValidation) {
  const QuantFormat f{8, true};
  EXPECT_THROW(scales_from_amax(Granularity::kPerRow, VectorLayout{4, 2, 0}, 3, {1.0f}, f),
               std::invalid_argument);
}

TEST(QuantizeToInt, ValuesWithinFormatRange) {
  Rng rng(16);
  const Tensor x = random_matrix(4, 16, rng, 2.0);
  const QuantFormat f{4, true};
  const ScaleSet s = compute_scales(x, Granularity::kPerVector, VectorLayout{16, 4, 0}, f);
  const auto q = quantize_to_int(x, s, f);
  for (const auto v : q) {
    EXPECT_GE(v, f.qmin());
    EXPECT_LE(v, f.qmax());
  }
}

}  // namespace
}  // namespace vsq
