#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include "fault/failpoint.h"
#include "util/archive.h"
#include "util/args.h"
#include "util/fp16.h"
#include "util/result_cache.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIndependentStreams) {
  Rng base(7);
  Rng s1 = base.split(1), s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s1.next_u64() == s2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, LaplaceIsLongTailed) {
  Rng r(6);
  // Laplace kurtosis (6) exceeds Gaussian (3): check heavier tails.
  constexpr int n = 20000;
  int beyond3 = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(r.laplace(1.0 / std::sqrt(2.0))) > 3.0) ++beyond3;  // unit variance
  }
  // P(|X|>3) for unit-variance Laplace ~ 1.4%, Gaussian ~ 0.27%.
  EXPECT_GT(beyond3, n * 0.005);
}

TEST(Rng, UniformU64NoModuloBias) {
  Rng r(8);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[r.uniform_u64(7)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(9);
  const auto p = r.permutation(257);
  std::vector<bool> seen(257, false);
  for (const auto i : p) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

class Fp16RoundTrip : public ::testing::TestWithParam<float> {};

TEST_P(Fp16RoundTrip, ExactlyRepresentableSurvives) {
  const float x = GetParam();
  EXPECT_EQ(fp16_round(x), x);
}

INSTANTIATE_TEST_SUITE_P(ExactValues, Fp16RoundTrip,
                         ::testing::Values(0.0f, 1.0f, -1.0f, 0.5f, 2048.0f, 0.0009765625f,
                                           -65504.0f, 65504.0f, 6.103515625e-05f));

TEST(Fp16, RelativeErrorBounded) {
  Rng r(10);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(r.uniform(-1000.0, 1000.0));
    const float h = fp16_round(x);
    if (x != 0.0f) {
      EXPECT_LE(std::abs(h - x) / std::abs(x), 1.0f / 1024.0f)
          << "x=" << x << " fp16=" << h;  // half has 11 significand bits
    }
  }
}

TEST(Fp16, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(fp16_round(70000.0f)));
  EXPECT_TRUE(std::isinf(fp16_round(-70000.0f)));
}

TEST(Fp16, SubnormalsRepresentable) {
  const float tiny = 5.960464477539063e-08f;  // smallest positive subnormal half
  EXPECT_EQ(fp16_round(tiny), tiny);
  EXPECT_EQ(fp16_round(tiny / 4.0f), 0.0f);  // below half subnormal range
}

TEST(Fp16, RoundToNearestEven) {
  // 2049 is exactly between representable 2048 and 2050 -> ties to 2048.
  EXPECT_EQ(fp16_round(2049.0f), 2048.0f);
  EXPECT_EQ(fp16_round(2051.0f), 2052.0f);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"bb", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsNan) {
  EXPECT_EQ(Table::num(std::nan(""), 2), "-");
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
}

TEST(Archive, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_archive.bin";
  Archive a;
  a.put("w", {2, 3}, {1, 2, 3, 4, 5, 6});
  a.put("b", {3}, {0.5f, -0.5f, 0.25f});
  a.save(path);
  const Archive l = Archive::load(path);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.get("w").dims, (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(l.get("b").data[1], -0.5f);
  std::remove(path.c_str());
}

TEST(Archive, SaveIsCrashSafeAgainstTornWrites) {
  // Archive::save writes a temp file and rename()s it into place, so a
  // fault mid-save can NEVER leave a torn .vsqa at the destination: either
  // the old bytes survive intact or the new bytes land whole.
  namespace fs = std::filesystem;
  const std::string path = fs::temp_directory_path() / "vsq_test_torn.vsqa";
  const auto dir = fs::path(path).parent_path();
  const auto count_temps = [&] {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().filename().string().rfind("vsq_test_torn.vsqa.tmp", 0) == 0) ++n;
    }
    return n;
  };
  Archive good;
  good.put("w", {2, 2}, {1, 2, 3, 4});
  good.save(path);

  Archive update;
  update.put("w", {2, 2}, {9, 9, 9, 9});
  update.put("extra", {1}, {7});
  {
    // Fault in the entry stream: the temp file is torn at that point
    // (header written, entries cut short); the destination is untouched.
    vsq::fault::ScopedFailpoint fp("io.archive.save.entry", "error(disk gone)");
    EXPECT_THROW(update.save(path), vsq::fault::FailpointError);
  }
  Archive survived = Archive::load(path);  // old bytes, fully valid
  EXPECT_EQ(survived.get("w").data, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(survived.size(), 1u);
  EXPECT_EQ(count_temps(), 0u);  // the torn temp was cleaned up

  {
    // Fault after the temp file completed but before the rename: still no
    // torn destination, still no leaked temp.
    vsq::fault::ScopedFailpoint fp("io.archive.save.rename", "error(killed pre-rename)");
    EXPECT_THROW(update.save(path), vsq::fault::FailpointError);
  }
  Archive survived2 = Archive::load(path);
  EXPECT_EQ(survived2.get("w").data, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(count_temps(), 0u);

  // Fault cleared: the update lands atomically and whole.
  update.save(path);
  Archive fresh = Archive::load(path);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh.get("w").data, (std::vector<float>{9, 9, 9, 9}));
  EXPECT_EQ(count_temps(), 0u);
  std::remove(path.c_str());
}

TEST(Archive, LoadFailpointInjectsIoError) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_loadfp.vsqa";
  Archive a;
  a.put("w", {1}, {1});
  a.save(path);
  {
    vsq::fault::ScopedFailpoint fp("io.archive.load", "error(EIO)");
    EXPECT_THROW(Archive::load(path), vsq::fault::FailpointError);
  }
  EXPECT_EQ(Archive::load(path).size(), 1u);  // recovered once disarmed
  std::remove(path.c_str());
}

TEST(Archive, RejectsDimMismatch) {
  Archive a;
  EXPECT_THROW(a.put("x", {2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Archive, MissingEntryThrows) {
  Archive a;
  EXPECT_THROW(a.get("nope"), std::out_of_range);
}

TEST(ResultCache, PersistsAcrossInstances) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_cache.tsv";
  std::remove(path.c_str());
  {
    ResultCache c(path);
    c.put("model|cfg", 76.25);
  }
  ResultCache c2(path);
  ASSERT_TRUE(c2.get("model|cfg").has_value());
  EXPECT_DOUBLE_EQ(*c2.get("model|cfg"), 76.25);
  std::remove(path.c_str());
}

TEST(ResultCache, GetOrComputeCaches) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_cache2.tsv";
  std::remove(path.c_str());
  ResultCache c(path);
  int calls = 0;
  const auto fn = [&] {
    ++calls;
    return 3.5;
  };
  EXPECT_DOUBLE_EQ(c.get_or_compute("k", fn), 3.5);
  EXPECT_DOUBLE_EQ(c.get_or_compute("k", fn), 3.5);
  EXPECT_EQ(calls, 1);
  std::remove(path.c_str());
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Layers call parallel_for inside code that benches may already have
  // parallelized; the pool must degrade gracefully, not deadlock.
  std::atomic<int> total{0};
  parallel_for(0, 4, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      parallel_for(0, 8, [&](std::size_t b, std::size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 4 * 8);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t b, std::size_t) {
                              if (b == 0) throw std::runtime_error("worker failure");
                            }),
               std::runtime_error);
}

// ---- Args (flag parser used by tools/ and examples) ----

std::vector<char*> argv_of(std::vector<std::string>& strings) {
  std::vector<char*> argv;
  argv.reserve(strings.size());
  for (auto& s : strings) argv.push_back(s.data());
  return argv;
}

TEST(Args, ParsesKeyValueAndFlags) {
  std::vector<std::string> raw{"prog", "--model=resnet", "--epochs=12", "--lr=0.05", "--verbose"};
  auto argv = argv_of(raw);
  const Args args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_str("model", "x"), "resnet");
  EXPECT_EQ(args.get_int("epochs", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.05);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(Args, DefaultsWhenAbsent) {
  std::vector<std::string> raw{"prog"};
  auto argv = argv_of(raw);
  const Args args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_str("model", "bert"), "bert");
  EXPECT_EQ(args.get_int("epochs", 7), 7);
}

TEST(Args, RejectsNonFlagArgument) {
  std::vector<std::string> raw{"prog", "positional"};
  auto argv = argv_of(raw);
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data()), std::invalid_argument);
}

TEST(Args, ReportsUnusedFlags) {
  std::vector<std::string> raw{"prog", "--used=1", "--typo=2"};
  auto argv = argv_of(raw);
  const Args args(static_cast<int>(argv.size()), argv.data());
  args.get_int("used", 0);
  const auto unused = args.unused();
  EXPECT_EQ(unused.size(), 1u);
  EXPECT_TRUE(unused.count("typo"));
}

TEST(Args, ValueWithEqualsSign) {
  std::vector<std::string> raw{"prog", "--path=a=b"};
  auto argv = argv_of(raw);
  const Args args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_str("path", ""), "a=b");
}

}  // namespace
}  // namespace vsq
