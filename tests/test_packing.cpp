// Tests for quant/packing: exact round-trips at every supported bitwidth,
// density (the memory model's bit counts made physical), range checking,
// and consistency with a quantized operand's storage-cost prediction.
#include <gtest/gtest.h>

#include "hw/memory_model.h"
#include "quant/packing.h"
#include "quant/quantized_tensor.h"
#include "util/rng.h"

namespace vsq {
namespace {

class PackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PackRoundTrip, SignedValuesSurviveExactly) {
  const int bits = GetParam();
  const QuantFormat fmt{bits, true};
  Rng rng(bits);
  std::vector<std::int16_t> values(999);
  for (auto& v : values) {
    v = static_cast<std::int16_t>(
        fmt.qmin() + static_cast<std::int64_t>(rng.uniform_u64(
                         static_cast<std::uint64_t>(fmt.qmax() - fmt.qmin() + 1))));
  }
  const PackedBuffer packed = pack_values(values, fmt);
  EXPECT_EQ(unpack_values(packed), values);
}

TEST_P(PackRoundTrip, UnsignedScalesSurviveExactly) {
  const int bits = GetParam();
  const QuantFormat fmt{bits, false};
  Rng rng(bits + 100);
  std::vector<std::uint16_t> scales(777);
  for (auto& s : scales) {
    s = static_cast<std::uint16_t>(rng.uniform_u64(static_cast<std::uint64_t>(fmt.qmax() + 1)));
  }
  const PackedBuffer packed = pack_scales(scales, fmt);
  EXPECT_EQ(unpack_scales(packed), scales);
}

TEST_P(PackRoundTrip, DensityIsExactlyNBitsPlusFinalPadding) {
  const int bits = GetParam();
  const QuantFormat fmt{bits, true};
  const std::vector<std::int16_t> values(1000, 1);
  const PackedBuffer packed = pack_values(values, fmt);
  EXPECT_EQ(packed.payload_bits(), 1000 * bits);
  EXPECT_EQ(static_cast<std::int64_t>(packed.bytes.size()), (1000 * bits + 7) / 8);
  EXPECT_LT(packed.bits_per_element(), bits + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Bits, PackRoundTrip, ::testing::Values(3, 4, 6, 8, 10));

TEST(Packing, ExtremesOfEveryFormat) {
  for (const int bits : {3, 4, 6, 8, 10}) {
    const QuantFormat fmt{bits, true};
    const std::vector<std::int16_t> values{
        static_cast<std::int16_t>(fmt.qmin()), 0, static_cast<std::int16_t>(fmt.qmax()), -1, 1};
    EXPECT_EQ(unpack_values(pack_values(values, fmt)), values) << "bits=" << bits;
  }
}

TEST(Packing, RejectsOutOfRangeValue) {
  const QuantFormat int4{4, true};
  EXPECT_THROW(pack_values({8}, int4), std::out_of_range);    // qmax = 7
  EXPECT_THROW(pack_values({-8}, int4), std::out_of_range);   // qmin = -7 (symmetric)
  EXPECT_NO_THROW(pack_values({7}, int4));
}

TEST(Packing, RejectsOutOfRangeScale) {
  const QuantFormat u4{4, false};
  EXPECT_THROW(pack_scales({16}, u4), std::out_of_range);  // qmax = 15
  EXPECT_NO_THROW(pack_scales({15}, u4));
}

TEST(Packing, RejectsSignedScaleFormat) {
  EXPECT_THROW(pack_scales({1}, QuantFormat{4, true}), std::invalid_argument);
}

TEST(Packing, EmptyInputsYieldEmptyBuffers) {
  const PackedBuffer p = pack_values({}, QuantFormat{4, true});
  EXPECT_EQ(p.count, 0);
  EXPECT_TRUE(p.bytes.empty());
  EXPECT_TRUE(unpack_values(p).empty());
  EXPECT_DOUBLE_EQ(p.bits_per_element(), 0.0);
}

// Pack a real quantized operand and check the physical size matches the
// memory model's value_bits/scale_bits accounting exactly.
TEST(Packing, MatchesMemoryModelAccounting) {
  Rng rng(42);
  Tensor w(Shape{8, 64});
  for (auto& v : w.span()) v = static_cast<float>(rng.normal(0.0, 0.5));

  QuantSpec spec;
  spec.enabled = true;
  spec.fmt = QuantFormat{4, true};
  spec.granularity = Granularity::kPerVector;
  spec.vector_size = 16;
  spec.scale_dtype = ScaleDtype::kTwoLevelInt;
  spec.scale_fmt = QuantFormat{4, false};
  const QuantizedMatrix qm = quantize_weights_int(w, spec);

  const PackedBuffer pv = pack_values(qm.q, qm.fmt);
  ASSERT_TRUE(qm.two_level.has_value());
  const PackedBuffer ps = pack_scales(qm.two_level->sq, spec.scale_fmt);

  MacConfig mac;
  mac.wt_bits = 4;
  mac.act_bits = 8;
  mac.wt_scale_bits = 4;
  mac.vector_size = 16;
  const StorageCost cost = MemoryModel(mac).weight_storage(GemmDims{1, 64, 8});
  EXPECT_EQ(pv.payload_bits(), cost.value_bits);
  EXPECT_EQ(ps.payload_bits(), cost.scale_bits);
}

}  // namespace
}  // namespace vsq
