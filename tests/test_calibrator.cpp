#include <gtest/gtest.h>

#include <cmath>

#include "quant/calibrator.h"
#include "quant/scale.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

std::vector<float> gaussian_samples(int n, double stddev, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, stddev));
  return v;
}

TEST(Histogram, CollectCountsEverything) {
  Histogram h(64);
  const auto v = gaussian_samples(1000, 1.0, 1);
  h.collect(v);
  EXPECT_EQ(h.total_count(), 1000u);
  std::uint64_t sum = 0;
  for (const auto c : h.counts()) sum += c;
  EXPECT_EQ(sum, 1000u);
}

TEST(Histogram, GrowsRangeOnLargerBatch) {
  Histogram h(64);
  std::vector<float> small(100, 0.5f);
  h.collect(small);
  const double edge_before = h.upper_edge();
  std::vector<float> big(10, 50.0f);
  h.collect(big);
  EXPECT_GT(h.upper_edge(), edge_before);
  EXPECT_GE(h.upper_edge(), 50.0);
  EXPECT_EQ(h.total_count(), 110u);
  EXPECT_DOUBLE_EQ(h.max_value(), 50.0);
}

TEST(Histogram, RejectsTooFewBins) { EXPECT_THROW(Histogram(4), std::invalid_argument); }

TEST(Calibrate, MaxReturnsExactMax) {
  Histogram h(128);
  auto v = gaussian_samples(500, 1.0, 2);
  v.push_back(17.5f);
  h.collect(v);
  EXPECT_DOUBLE_EQ(calibrate_max(h), 17.5);
}

TEST(Calibrate, PercentileBelowMaxForOutliers) {
  Histogram h(2048);
  auto v = gaussian_samples(10000, 1.0, 3);
  v.push_back(100.0f);  // single extreme outlier
  h.collect(v);
  const double p999 = calibrate_percentile(h, 99.9);
  EXPECT_LT(p999, 10.0);  // ignores the outlier
  EXPECT_GT(p999, 2.0);   // but covers the bulk
  // 100% percentile equals the max.
  EXPECT_NEAR(calibrate_percentile(h, 100.0), 100.0, 1e-9);
}

TEST(Calibrate, PercentileMonotoneInP) {
  Histogram h(2048);
  h.collect(gaussian_samples(20000, 1.0, 4));
  double prev = 0.0;
  for (const double p : {90.0, 99.0, 99.9, 99.99, 100.0}) {
    const double a = calibrate_percentile(h, p);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(Calibrate, EntropyWithinDataRange) {
  Histogram h(1024);
  h.collect(gaussian_samples(20000, 1.0, 5));
  for (const int bits : {4, 6, 8}) {
    const double a = calibrate_entropy(h, QuantFormat{bits, true});
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, h.max_value() + 1e-9);
  }
}

TEST(Calibrate, EntropyClipsOutliersAtLowBits) {
  // With 4 bits and a heavy tail, entropy calibration should clip inside
  // the full range to spend levels on the bulk.
  Histogram h(2048);
  Rng rng(6);
  std::vector<float> v(30000);
  for (auto& x : v) x = static_cast<float>(rng.laplace(0.5));
  h.collect(v);
  const double a4 = calibrate_entropy(h, QuantFormat{4, true});
  EXPECT_LT(a4, h.max_value() * 0.9);
}

TEST(Calibrate, MseBeatsMaxOnLongTailedData) {
  // Property behind Table 2's MSE column: for outlier-heavy data at low
  // bits, the MSE-calibrated clip yields lower quantization MSE than max.
  Rng rng(7);
  Tensor x(Shape{1, 8192});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat f{4, true};
  Histogram h(2048);
  h.collect(x.span());

  const auto mse_with_amax = [&](double amax) {
    ScaleSet s;
    s.granularity = Granularity::kPerTensor;
    s.layout.cols = 8192;
    s.rows = 1;
    s.scales = {scale_from_amax(static_cast<float>(amax), f)};
    return mse(x, fake_quantize(x, s, f));
  };
  const double mse_max = mse_with_amax(calibrate_max(h));
  const double mse_mse = mse_with_amax(calibrate_mse(h, f));
  EXPECT_LT(mse_mse, mse_max);
}

TEST(Calibrate, MseNearMaxForUniformData) {
  // Uniform data has no outliers: the optimal clip is near the max.
  Rng rng(8);
  std::vector<float> v(20000);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  Histogram h(2048);
  h.collect(v);
  const double a = calibrate_mse(h, QuantFormat{8, true});
  EXPECT_GT(a, 0.85);
}

TEST(Calibrate, DispatchMatchesMethods) {
  Histogram h(512);
  h.collect(gaussian_samples(5000, 1.0, 9));
  const QuantFormat f{8, true};
  EXPECT_DOUBLE_EQ(calibrate_amax(h, CalibSpec{CalibMethod::kMax, 0}, f), calibrate_max(h));
  EXPECT_DOUBLE_EQ(calibrate_amax(h, CalibSpec{CalibMethod::kPercentile, 99.9}, f),
                   calibrate_percentile(h, 99.9));
  EXPECT_DOUBLE_EQ(calibrate_amax(h, CalibSpec{CalibMethod::kEntropy, 0}, f),
                   calibrate_entropy(h, f));
  EXPECT_DOUBLE_EQ(calibrate_amax(h, CalibSpec{CalibMethod::kMse, 0}, f), calibrate_mse(h, f));
}

TEST(Calibrator, StreamingMatchesOneShot) {
  const auto v = gaussian_samples(10000, 2.0, 10);
  Calibrator stream(CalibSpec{CalibMethod::kPercentile, 99.9}, QuantFormat{8, true});
  // Feed in 10 chunks.
  for (int i = 0; i < 10; ++i) {
    stream.observe(std::span<const float>(v.data() + i * 1000, 1000));
  }
  Calibrator oneshot(CalibSpec{CalibMethod::kPercentile, 99.9}, QuantFormat{8, true});
  oneshot.observe(v);
  EXPECT_NEAR(stream.amax(), oneshot.amax(), oneshot.amax() * 0.05);
}

TEST(Calibrator, EmptyHistogramGivesZero) {
  Calibrator c(CalibSpec{}, QuantFormat{8, true});
  EXPECT_DOUBLE_EQ(c.amax(), 0.0);
}

}  // namespace
}  // namespace vsq
