// Concurrency stress: the global ThreadPool hammered with parallel_for
// from many client threads at once, per-thread ScratchArena mark/rewind
// discipline under that load, ThreadPoolScope routing, and a full
// InferenceSession under concurrent clients. Runs under the ASan/UBSan CI
// job (labeled "slow" — the sanitizer workflow invokes the label
// explicitly; plain ctest runs it too).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "serve/session.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

TEST(ThreadPoolStress, ConcurrentParallelForFromManyThreads) {
  // Many external threads issue parallel_for on the shared global pool
  // simultaneously; every loop must see exactly its own range.
  constexpr int kThreads = 8, kIters = 50;
  constexpr std::size_t kN = 10000;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint8_t> hits(kN);
      for (int it = 0; it < kIters; ++it) {
        std::memset(hits.data(), 0, hits.size());
        parallel_for(
            0, kN,
            [&](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i) ++hits[i];
            },
            /*grain=*/64 + static_cast<std::size_t>(t));
        for (std::size_t i = 0; i < kN; ++i) {
          if (hits[i] != 1) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ThreadPoolStress, ExceptionFromOneClientDoesNotPoisonOthers) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> caught{0}, completed{0};
  std::atomic<std::size_t> sink{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < 20; ++it) {
        try {
          parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
            if (t == 0 && b <= 500 && 500 < e) throw std::runtime_error("boom");
            std::size_t acc = 0;
            for (std::size_t i = b; i < e; ++i) acc += i;
            sink.fetch_add(acc, std::memory_order_relaxed);
          });
          completed.fetch_add(1);
        } catch (const std::runtime_error&) {
          caught.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(caught.load(), 20);                          // every throwing loop rethrown
  EXPECT_EQ(completed.load(), (kThreads - 1) * 20);      // others unaffected
}

TEST(ScratchArenaStress, MarkRewindUnderConcurrentLoad) {
  // Each thread abuses its own thread-local arena while the pool is busy:
  // pointers handed out before a mark must stay valid and disjoint across
  // nested regions, and rewinding must recycle memory (capacity plateaus).
  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ScratchArena& arena = ScratchArena::thread_local_arena();
      for (int it = 0; it < 200; ++it) {
        ScratchRegion outer(arena);
        auto* a = arena.alloc_n<std::uint64_t>(257);
        for (int i = 0; i < 257; ++i) a[i] = 0xa0a0a0a0ull + static_cast<std::uint64_t>(i);
        {
          ScratchRegion inner(arena);
          auto* b = arena.alloc_n<std::uint64_t>(4099);
          for (int i = 0; i < 4099; ++i) b[i] = 0xb0b0b0b0ull;
        }
        auto* c = arena.alloc_n<std::uint64_t>(1031);
        for (int i = 0; i < 1031; ++i) c[i] = 0xc0c0c0c0ull;
        // a survived the inner region and the post-rewind alloc.
        for (int i = 0; i < 257; ++i) {
          if (a[i] != 0xa0a0a0a0ull + static_cast<std::uint64_t>(i)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      const std::size_t cap_after_warm = arena.capacity();
      for (int it = 0; it < 100; ++it) {
        ScratchRegion region(arena);
        (void)arena.alloc_n<float>(2048);
      }
      if (arena.capacity() != cap_after_warm) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ScratchArena, ReservePreallocatesWithoutHandingOut) {
  ScratchArena arena;
  arena.reserve(1 << 20);
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, std::size_t{1} << 20);
  ScratchRegion region(arena);
  (void)arena.alloc(1 << 19);
  EXPECT_EQ(arena.capacity(), cap);  // served from the reserved block
  arena.reserve(1 << 10);            // already satisfied: no growth
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ThreadPoolScope, RoutesFreeParallelForToScopedPool) {
  ThreadPool local(3);
  EXPECT_EQ(&current_pool(), &ThreadPool::global());
  {
    ThreadPoolScope scope(local);
    EXPECT_EQ(&current_pool(), &local);
    // Nested scopes restore in LIFO order.
    ThreadPool inner(1);
    {
      ThreadPoolScope scope2(inner);
      EXPECT_EQ(&current_pool(), &inner);
    }
    EXPECT_EQ(&current_pool(), &local);
    // The scope is thread-local: other threads still see the global pool.
    std::thread other([&] { EXPECT_EQ(&current_pool(), &ThreadPool::global()); });
    other.join();
  }
  EXPECT_EQ(&current_pool(), &ThreadPool::global());
}

TEST(ServeConcurrencyStress, ManyClientsManyRequests) {
  // End-to-end: 16 clients hammer one session; every output must match
  // sequential execution bit-for-bit. Exercises queue contention, the
  // batcher, per-thread arenas and promise delivery under real load.
  QuantizedModelPackage pkg = tiny_mlp_package(MacConfig::parse("4/8/6/10"));
  const QuantizedModelRunner reference(pkg);

  ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.cache_entries = 16;  // cache path under contention too
  InferenceSession session(pkg, cfg);

  constexpr int kClients = 16, kPerClient = 24, kDistinct = 12;
  std::vector<Tensor> distinct;
  for (int i = 0; i < kDistinct; ++i) {
    Tensor t(Shape{1, TinyMlp::kIn});
    Rng rng(900 + static_cast<std::uint64_t>(i));
    for (auto& v : t.span()) v = static_cast<float>(rng.normal());
    distinct.push_back(std::move(t));
  }
  std::vector<Tensor> expected;
  for (const Tensor& in : distinct) expected.push_back(reference.forward(in));

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int which = (c * kPerClient + i) % kDistinct;
        const Tensor out = session.infer(distinct[static_cast<std::size_t>(which)]);
        const Tensor& ref = expected[static_cast<std::size_t>(which)];
        for (std::int64_t j = 0; j < ref.numel(); ++j) {
          if (out[j] != ref[j]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const ServeStatsSnapshot snap = session.stats();
  EXPECT_EQ(snap.requests, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(snap.cache_hits, 0u);
}

}  // namespace
}  // namespace vsq
