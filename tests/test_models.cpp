#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "models/resnetv.h"
#include "models/zoo.h"
#include "models/transformer.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

ResNetVConfig tiny_resnet_config() {
  ResNetVConfig c;
  c.in_h = 8;
  c.in_w = 8;
  c.widths = {8, 16};
  c.blocks_per_stage = 1;
  c.classes = 4;
  return c;
}

TEST(ResNetV, ForwardShape) {
  ResNetV model(tiny_resnet_config());
  Rng rng(1);
  const Tensor y = model.forward(random_tensor(Shape{3, 8, 8, 3}, rng), false);
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
}

TEST(ResNetV, GemmCount) {
  ResNetV model(tiny_resnet_config());
  // stem + stage0 block (2 convs) + stage1 block (2 convs + 1x1 shortcut) + fc
  EXPECT_EQ(model.gemms().size(), 1u + 2u + 3u + 1u);
}

TEST(ResNetV, BackwardProducesFiniteGrads) {
  ResNetV model(tiny_resnet_config());
  Rng rng(2);
  const Tensor x = random_tensor(Shape{4, 8, 8, 3}, rng);
  const Tensor logits = model.forward(x, true);
  const LossResult loss = cross_entropy(logits, {0, 1, 2, 3});
  for (Param* p : model.params()) p->zero_grad();
  model.backward(loss.grad);
  double total = 0;
  for (Param* p : model.params()) {
    for (const float g : p->grad.span()) {
      ASSERT_TRUE(std::isfinite(g));
      total += std::abs(g);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(ResNetV, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_resnet.vsqa";
  ResNetV a(tiny_resnet_config());
  Rng rng(3);
  const Tensor x = random_tensor(Shape{2, 8, 8, 3}, rng);
  // Run a training forward so BN running stats are non-trivial.
  a.forward(x, true);
  a.save(path);

  ResNetV b(tiny_resnet_config());
  b.load(path);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  EXPECT_LT(max_abs_diff(ya, yb), 1e-6f);
  std::remove(path.c_str());
}

TEST(ResNetV, BatchNormFoldingPreservesInference) {
  ResNetV model(tiny_resnet_config());
  Rng rng(4);
  // Push a few training batches so running stats move away from init.
  for (int i = 0; i < 3; ++i) model.forward(random_tensor(Shape{8, 8, 8, 3}, rng), true);
  const Tensor x = random_tensor(Shape{4, 8, 8, 3}, rng);
  const Tensor before = model.forward(x, false);
  model.fold_batchnorm();
  const Tensor after = model.forward(x, false);
  EXPECT_LT(max_abs_diff(before, after), 1e-3f);
  EXPECT_TRUE(model.batchnorm_folded());
}

TEST(ResNetV, FoldingIsIdempotent) {
  ResNetV model(tiny_resnet_config());
  Rng rng(5);
  model.forward(random_tensor(Shape{4, 8, 8, 3}, rng), true);
  model.fold_batchnorm();
  const Tensor x = random_tensor(Shape{2, 8, 8, 3}, rng);
  const Tensor y1 = model.forward(x, false);
  model.fold_batchnorm();  // second fold must be a no-op
  const Tensor y2 = model.forward(x, false);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-7f);
}

TransformerConfig tiny_transformer_config() {
  TransformerConfig c;
  c.vocab = 16;
  c.max_len = 8;
  c.dim = 16;
  c.heads = 2;
  c.layers = 2;
  return c;
}

TEST(Transformer, ForwardShape) {
  TransformerEncoder model(tiny_transformer_config());
  const Tensor tokens = Tensor::from_vector(Shape{2, 6}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3});
  const Tensor y = model.forward(tokens, false);
  EXPECT_EQ(y.shape(), (Shape{2, 6, 2}));
}

TEST(Transformer, GemmCount) {
  TransformerEncoder model(tiny_transformer_config());
  // 2 layers x (4 attention + 2 ffn) + span head
  EXPECT_EQ(model.gemms().size(), 2u * 6u + 1u);
}

TEST(Transformer, BackwardProducesFiniteGrads) {
  TransformerEncoder model(tiny_transformer_config());
  const Tensor tokens = Tensor::from_vector(Shape{1, 6}, {1, 2, 3, 4, 5, 6});
  const Tensor logits = model.forward(tokens, true);
  SpanLabels labels;
  labels.start = {2};
  labels.end = {4};
  const LossResult loss = span_cross_entropy(logits, labels);
  for (Param* p : model.params()) p->zero_grad();
  model.backward(loss.grad);
  double total = 0;
  for (Param* p : model.params()) {
    for (const float g : p->grad.span()) {
      ASSERT_TRUE(std::isfinite(g));
      total += std::abs(g);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(Transformer, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_tf.vsqa";
  TransformerEncoder a(tiny_transformer_config());
  a.save(path);
  TransformerEncoder b(tiny_transformer_config());
  const Tensor tokens = Tensor::from_vector(Shape{1, 4}, {3, 1, 4, 1});
  b.load(path);
  EXPECT_LT(max_abs_diff(a.forward(tokens, false), b.forward(tokens, false)), 1e-6f);
  std::remove(path.c_str());
}

TEST(Transformer, PresetsMatchPaperOrdering) {
  // "large" must be strictly bigger than "base" (Fig. 7's premise).
  const TransformerConfig base = bert_base_config(), large = bert_large_config();
  EXPECT_GT(large.dim, base.dim);
  EXPECT_GT(large.layers, base.layers);
}

// ModelZoo fingerprinting: checkpoints and the accuracy cache trained by an
// incompatible code revision must be wiped, never silently loaded.
TEST(ModelZoo, FingerprintInvalidatesStaleArtifacts) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vsq_zoo_fp_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto touch = [&](const char* name) {
    std::ofstream(dir / name) << "stale";
  };
  touch("resnetv.vsqa");
  touch("accuracy_cache.tsv");
  std::ofstream(dir / "zoo_fingerprint.txt") << "some-old-fingerprint\n";

  {
    ModelZoo zoo(dir.string());  // fingerprint mismatch -> wipe
  }
  EXPECT_FALSE(fs::exists(dir / "resnetv.vsqa"));
  EXPECT_FALSE(fs::exists(dir / "accuracy_cache.tsv"));
  EXPECT_TRUE(fs::exists(dir / "zoo_fingerprint.txt"));

  // With the fingerprint now current, artifacts survive reconstruction.
  touch("resnetv.vsqa");
  {
    ModelZoo zoo(dir.string());
  }
  EXPECT_TRUE(fs::exists(dir / "resnetv.vsqa"));
  fs::remove_all(dir);
}

TEST(ModelZoo, FreshDirectoryGetsFingerprint) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vsq_zoo_fresh_test";
  fs::remove_all(dir);
  {
    ModelZoo zoo(dir.string());
  }
  EXPECT_TRUE(fs::exists(dir / "zoo_fingerprint.txt"));
  std::ifstream in(dir / "zoo_fingerprint.txt");
  std::string fp;
  std::getline(in, fp);
  EXPECT_NE(fp.find("resnet="), std::string::npos);
  EXPECT_NE(fp.find("tf="), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vsq
