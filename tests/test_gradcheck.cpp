// Finite-difference gradient verification for every differentiable layer
// and loss in the NN engine. The QAT results (Sec. 7) are only as
// trustworthy as these backward passes, so each is checked against central
// differences of a scalar objective L = sum(proj * forward(x)):
//   dL/dy = proj  ->  layer.backward(proj) yields analytic dL/dx and
//   accumulates analytic parameter gradients; both are compared against
//   (L(t + eps) - L(t - eps)) / (2 eps) element by element.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Inputs bounded away from 0 for kink-free checks (ReLU, MaxPool ties).
Tensor random_tensor_away_from_zero(Shape s, Rng& rng, float margin = 0.15f) {
  Tensor t(s);
  for (auto& v : t.span()) {
    float x = static_cast<float>(rng.normal(0.0, 1.0));
    if (std::abs(x) < margin) x = x < 0 ? x - margin : x + margin;
    v = x;
  }
  return t;
}

double dot(const Tensor& a, const Tensor& b) {
  double s = 0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) s += static_cast<double>(ad[i]) * bd[i];
  return s;
}

// Verify one analytic gradient tensor against central differences of
// `loss_fn` w.r.t. the entries of `target` (perturbed in place).
void check_grad(Tensor& target, const Tensor& analytic,
                const std::function<double()>& loss_fn, double eps = 1e-2,
                double tol = 2.5e-2, const char* what = "grad") {
  ASSERT_EQ(target.numel(), analytic.numel()) << what;
  float* td = target.data();
  const float* ad = analytic.data();
  for (std::int64_t i = 0; i < target.numel(); ++i) {
    const float saved = td[i];
    td[i] = saved + static_cast<float>(eps);
    const double up = loss_fn();
    td[i] = saved - static_cast<float>(eps);
    const double dn = loss_fn();
    td[i] = saved;
    const double numeric = (up - dn) / (2 * eps);
    const double denom = std::max(1e-3, std::abs(numeric) + std::abs(ad[i]));
    EXPECT_LT(std::abs(numeric - ad[i]) / denom, tol)
        << what << "[" << i << "]: analytic=" << ad[i] << " numeric=" << numeric;
  }
}

// Full layer check: input gradient + every parameter gradient.
void gradcheck_layer(Layer& layer, Tensor x, Rng& rng, double eps = 1e-2,
                     double tol = 2.5e-2) {
  const Tensor y0 = layer.forward(x, true);
  const Tensor proj = random_tensor(y0.shape(), rng, 0.5);
  const auto loss_fn = [&] { return dot(layer.forward(x, true), proj); };

  for (Param* p : layer.params()) p->zero_grad();
  layer.forward(x, true);
  const Tensor dx = layer.backward(proj);

  if (dx.numel() > 0) {
    check_grad(x, dx, loss_fn, eps, tol, "dL/dx");
  }
  for (Param* p : layer.params()) {
    // Re-run forward+backward so caches match the current parameter state
    // is unnecessary: parameters are perturbed inside loss_fn only.
    check_grad(p->value, p->grad, loss_fn, eps, tol, p->name.c_str());
  }
}

TEST(GradCheck, Linear) {
  Rng rng(101);
  Linear layer("fc", 6, 5, rng, /*has_bias=*/true);
  gradcheck_layer(layer, random_tensor(Shape{4, 6}, rng), rng);
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(102);
  Linear layer("fc", 5, 3, rng, /*has_bias=*/false);
  gradcheck_layer(layer, random_tensor(Shape{3, 5}, rng), rng);
}

TEST(GradCheck, LinearHigherRankInput) {
  Rng rng(103);
  Linear layer("fc", 4, 4, rng);
  gradcheck_layer(layer, random_tensor(Shape{2, 3, 4}, rng), rng);
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(104);
  Conv2d layer("conv", 2, 3, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng, /*has_bias=*/true);
  gradcheck_layer(layer, random_tensor(Shape{2, 5, 5, 2}, rng), rng);
}

TEST(GradCheck, Conv2dStride2NoPad) {
  Rng rng(105);
  Conv2d layer("conv", 3, 2, /*kernel=*/2, /*stride=*/2, /*pad=*/0, rng, /*has_bias=*/false);
  gradcheck_layer(layer, random_tensor(Shape{2, 6, 6, 3}, rng), rng);
}

TEST(GradCheck, Conv2d1x1) {
  Rng rng(106);
  Conv2d layer("conv", 4, 4, /*kernel=*/1, /*stride=*/1, /*pad=*/0, rng);
  gradcheck_layer(layer, random_tensor(Shape{2, 3, 3, 4}, rng), rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(107);
  ReLU layer;
  gradcheck_layer(layer, random_tensor_away_from_zero(Shape{4, 7}, rng), rng);
}

TEST(GradCheck, GELU) {
  Rng rng(108);
  GELU layer;
  gradcheck_layer(layer, random_tensor(Shape{4, 7}, rng), rng, /*eps=*/5e-3, /*tol=*/3e-2);
}

TEST(GradCheck, GeluFunctionalMatchesDerivative) {
  // The scalar helpers used inside attention/FFN blocks.
  for (const float x : {-3.0f, -1.0f, -0.25f, 0.0f, 0.4f, 1.7f, 3.2f}) {
    const double eps = 1e-3;
    const double numeric =
        (static_cast<double>(gelu_value(x + static_cast<float>(eps))) -
         gelu_value(x - static_cast<float>(eps))) /
        (2 * eps);
    EXPECT_NEAR(gelu_grad_value(x), numeric, 2e-3) << "x=" << x;
  }
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(109);
  BatchNorm2d layer("bn", 3);
  // Batch statistics make every output depend on every input; the analytic
  // backward must capture the mean/var terms, not just the affine.
  gradcheck_layer(layer, random_tensor(Shape{3, 4, 4, 3}, rng), rng, /*eps=*/1e-2,
                  /*tol=*/3e-2);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(110);
  LayerNorm layer("ln", 8);
  gradcheck_layer(layer, random_tensor(Shape{3, 2, 8}, rng), rng, /*eps=*/1e-2, /*tol=*/3e-2);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(111);
  GlobalAvgPool layer;
  gradcheck_layer(layer, random_tensor(Shape{2, 4, 4, 3}, rng), rng);
}

TEST(GradCheck, MaxPool2x2) {
  Rng rng(112);
  MaxPool2x2 layer;
  gradcheck_layer(layer, random_tensor_away_from_zero(Shape{2, 4, 4, 2}, rng), rng);
}

TEST(GradCheck, MultiHeadSelfAttention) {
  Rng rng(113);
  MultiHeadSelfAttention layer("attn", /*dim=*/8, /*heads=*/2, rng);
  gradcheck_layer(layer, random_tensor(Shape{2, 5, 8}, rng), rng, /*eps=*/1e-2, /*tol=*/4e-2);
}

TEST(GradCheck, EmbeddingParameterGrads) {
  Rng rng(114);
  Embedding layer("emb", /*vocab=*/8, /*max_len=*/6, /*dim=*/5, rng);
  const Tensor ids = Tensor::from_vector(Shape{2, 4}, {1, 3, 5, 3, 0, 7, 2, 2});

  const Tensor y0 = layer.forward(ids, true);
  const Tensor proj = random_tensor(y0.shape(), rng, 0.5);
  const auto loss_fn = [&] { return dot(layer.forward(ids, true), proj); };

  for (Param* p : layer.params()) p->zero_grad();
  layer.forward(ids, true);
  layer.backward(proj);  // ids carry no gradient; params do
  for (Param* p : layer.params()) {
    check_grad(p->value, p->grad, loss_fn, 1e-2, 2.5e-2, p->name.c_str());
  }
}

TEST(GradCheck, CrossEntropyLossGrad) {
  Rng rng(115);
  Tensor logits = random_tensor(Shape{5, 4}, rng);
  const std::vector<int> labels{0, 3, 2, 1, 2};
  const LossResult res = cross_entropy(logits, labels);
  const auto loss_fn = [&] { return cross_entropy(logits, labels).loss; };
  Tensor analytic = res.grad;
  check_grad(logits, analytic, loss_fn, 1e-3, 2e-2, "dCE/dlogits");
}

TEST(GradCheck, SpanCrossEntropyLossGrad) {
  Rng rng(116);
  Tensor logits = random_tensor(Shape{3, 6, 2}, rng);
  SpanLabels labels;
  labels.start = {1, 0, 4};
  labels.end = {2, 3, 5};
  const LossResult res = span_cross_entropy(logits, labels);
  const auto loss_fn = [&] { return span_cross_entropy(logits, labels).loss; };
  Tensor analytic = res.grad;
  check_grad(logits, analytic, loss_fn, 1e-3, 2e-2, "dSpanCE/dlogits");
}

// Composition: conv -> bn -> relu chained backward (the residual-block
// spine) must produce the correct end-to-end input gradient.
TEST(GradCheck, ConvBnReluChain) {
  Rng rng(117);
  Conv2d conv("conv", 2, 3, 3, 1, 1, rng, /*has_bias=*/false);
  BatchNorm2d bn("bn", 3);
  ReLU relu;
  Tensor x = random_tensor(Shape{2, 4, 4, 2}, rng);

  const auto fwd = [&](bool train) {
    return relu.forward(bn.forward(conv.forward(x, train), train), train);
  };
  const Tensor y0 = fwd(true);
  const Tensor proj = random_tensor(y0.shape(), rng, 0.5);
  const auto loss_fn = [&] { return dot(fwd(true), proj); };

  fwd(true);
  const Tensor dx = conv.backward(bn.backward(relu.backward(proj)));
  check_grad(x, dx, loss_fn, 1e-2, 3e-2, "dL/dx chain");
}

}  // namespace
}  // namespace vsq
