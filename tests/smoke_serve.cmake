# End-to-end serving smoke test: export the tiny model's integer package
# with vsq_quantize, then drive vsq_serve with concurrent clients. The
# tool's --check audit (on by default) makes the run fail unless every
# served output is bit-identical to sequential single-sample inference.
# Invoked from ctest (see tests/CMakeLists.txt) with
#   -DVSQ_QUANTIZE=<path> -DVSQ_SERVE=<path> -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")
set(PACKAGE "${WORK_DIR}/tiny_int.vsqa")

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny --config=4/8/6/10 --vector=16
          "--out=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${VSQ_SERVE}" "--package=${PACKAGE}" --clients=4 --requests=64
          --max-batch=8 --cache=16
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_serve output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_serve failed with exit code ${rc}")
endif()
if(NOT out MATCHES "64 outputs verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_serve did not report the bit-exactness audit")
endif()
if(NOT out MATCHES "\"requests\":64")
  message(FATAL_ERROR "vsq_serve JSON line missing or wrong request count")
endif()
