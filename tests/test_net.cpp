// Network front-end tests: wire-protocol encode/decode, the NetServer
// request path (bit-exactness across TCP against a sequential reference
// runner), explicit overload shedding, the connection cap, slow and
// misbehaving clients (partial frames, stalls, mid-request disconnects —
// bounded cost, never a wedged server), and the /stats + /healthz HTTP
// surface.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "fault/failpoint.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_io.h"
#include "serve/registry.h"
#include "util/rng.h"

namespace vsq {
namespace {

QuantizedModelPackage tiny_package() {
  return tiny_mlp_package(MacConfig::parse("4/8/6/10"));
}

std::vector<float> random_row(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> row(static_cast<std::size_t>(n));
  for (auto& v : row) v = static_cast<float>(rng.normal());
  return row;
}

// ---- Protocol framing ----

TEST(NetProtocol, RequestFrameRoundTrips) {
  net::RequestFrame in;
  in.model = "tiny";
  in.priority = Priority::kLow;
  in.row = {1.5f, -2.25f, 0.0f, 3.75f};
  const std::vector<std::uint8_t> bytes = net::encode_request(in);
  std::uint32_t body_len = 0;
  ASSERT_TRUE(net::parse_header(bytes.data(), &body_len));
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + body_len);
  net::RequestFrame out;
  std::string err;
  ASSERT_TRUE(net::decode_request({bytes.data() + net::kHeaderBytes, body_len}, &out, &err))
      << err;
  EXPECT_EQ(out.model, "tiny");
  EXPECT_EQ(out.priority, Priority::kLow);
  EXPECT_EQ(out.row, in.row);
}

TEST(NetProtocol, ResponseFramesRoundTripBothShapes) {
  net::ResponseFrame ok;
  ok.status = net::Status::kOk;
  ok.row = {7.0f, -0.125f};
  const auto ok_bytes = net::encode_response(ok);
  net::ResponseFrame out;
  std::string err;
  std::uint32_t body_len = 0;
  ASSERT_TRUE(net::parse_header(ok_bytes.data(), &body_len));
  ASSERT_TRUE(net::decode_response({ok_bytes.data() + net::kHeaderBytes, body_len}, &out, &err));
  EXPECT_EQ(out.status, net::Status::kOk);
  EXPECT_EQ(out.row, ok.row);

  net::ResponseFrame shed;
  shed.status = net::Status::kShed;
  shed.message = "queue full";
  const auto shed_bytes = net::encode_response(shed);
  ASSERT_TRUE(net::parse_header(shed_bytes.data(), &body_len));
  ASSERT_TRUE(
      net::decode_response({shed_bytes.data() + net::kHeaderBytes, body_len}, &out, &err));
  EXPECT_EQ(out.status, net::Status::kShed);
  EXPECT_EQ(out.message, "queue full");
  EXPECT_TRUE(out.row.empty());
}

TEST(NetProtocol, DecodersRejectMalformedBodies) {
  net::RequestFrame req;
  req.model = "m";
  req.row = {1.0f};
  auto bytes = net::encode_request(req);
  const std::uint32_t body_len = static_cast<std::uint32_t>(bytes.size() - net::kHeaderBytes);
  net::RequestFrame out;
  std::string err;
  // Truncated at every prefix length: never a crash, always a diagnostic.
  for (std::uint32_t cut = 0; cut < body_len; ++cut) {
    EXPECT_FALSE(net::decode_request({bytes.data() + net::kHeaderBytes, cut}, &out, &err));
    EXPECT_FALSE(err.empty());
  }
  // Trailing bytes after a complete body.
  bytes.push_back(0);
  EXPECT_FALSE(
      net::decode_request({bytes.data() + net::kHeaderBytes, body_len + 1}, &out, &err));
  // Bad magic fails the header parse.
  std::uint8_t header[net::kHeaderBytes] = {0};
  std::uint32_t n = 0;
  EXPECT_FALSE(net::parse_header(header, &n));
  // Unknown priority / empty name.
  std::vector<std::uint8_t> bad = {9, 1, 'm', 1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(net::decode_request({bad.data(), bad.size()}, &out, &err));
  EXPECT_NE(err.find("priority"), std::string::npos);
  bad = {0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(net::decode_request({bad.data(), bad.size()}, &out, &err));
  EXPECT_NE(err.find("name"), std::string::npos);
}

TEST(NetProtocol, JsonEscapeHandlesControlAndQuote) {
  EXPECT_EQ(net::json_escape("plain"), "plain");
  EXPECT_EQ(net::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(net::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(net::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---- Server round trip + error statuses ----

TEST(NetServe, RoundTripBitExactAgainstSequentialReference) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner reference(pkg);
  ModelRegistry registry;
  registry.load("tiny", std::move(pkg));
  net::NetServer server(registry);

  net::NetClient client(server.host(), server.port());
  for (int i = 0; i < 16; ++i) {
    const std::vector<float> row = random_row(TinyMlp::kIn, 900 + static_cast<std::uint64_t>(i));
    const net::ResponseFrame resp = client.infer("tiny", row);
    ASSERT_EQ(resp.status, net::Status::kOk) << resp.message;
    Tensor in(Shape{1, TinyMlp::kIn});
    std::memcpy(in.data(), row.data(), row.size() * sizeof(float));
    const Tensor want = reference.forward(in);
    ASSERT_EQ(static_cast<std::int64_t>(resp.row.size()), want.numel());
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(resp.row[static_cast<std::size_t>(j)], want[j]) << "element " << j;
    }
  }
  EXPECT_EQ(server.frames_ok(), 16u);
  EXPECT_EQ(server.frames_rejected(), 0u);
  EXPECT_EQ(server.protocol_errors(), 0u);
}

TEST(NetServe, UnknownModelAndBadShapeAreExplicitStatuses) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  const net::ResponseFrame unknown = client.infer("nope", random_row(4, 1));
  EXPECT_EQ(unknown.status, net::Status::kUnknownModel);
  EXPECT_NE(unknown.message.find("nope"), std::string::npos);

  // Wrong input width: rejected per-request, and the connection survives.
  const net::ResponseFrame bad = client.infer("tiny", random_row(TinyMlp::kIn + 3, 2));
  EXPECT_EQ(bad.status, net::Status::kBadRequest);
  const net::ResponseFrame ok = client.infer("tiny", random_row(TinyMlp::kIn, 3));
  EXPECT_EQ(ok.status, net::Status::kOk);
  EXPECT_EQ(server.frames_rejected(), 2u);
}

TEST(NetServe, BadMagicAndOversizedBodyAreRejected) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.max_body_bytes = 1024;
  net::NetServer server(registry, cfg);

  {  // garbage where the magic belongs: kBadRequest, then the server closes
    net::NetClient client(server.host(), server.port(), 2000);
    ASSERT_TRUE(net::write_full(client.fd(), "XXXXXXXXXXXX", 12, 1000));
    const net::ResponseFrame resp = client.read_response();
    EXPECT_EQ(resp.status, net::Status::kBadRequest);
    EXPECT_NE(resp.message.find("magic"), std::string::npos);
    char byte = 0;
    bool eof = false;
    EXPECT_FALSE(net::read_full(client.fd(), &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);  // connection closed: the stream was unrecoverable
  }
  {  // a header promising more than max_body_bytes
    net::NetClient client(server.host(), server.port(), 2000);
    std::uint8_t header[net::kHeaderBytes];
    net::encode_header(4096, header);
    ASSERT_TRUE(net::write_full(client.fd(), header, sizeof(header), 1000));
    const net::ResponseFrame resp = client.read_response();
    EXPECT_EQ(resp.status, net::Status::kBadRequest);
    EXPECT_NE(resp.message.find("large"), std::string::npos);
  }
  EXPECT_EQ(server.protocol_errors(), 2u);
  EXPECT_EQ(server.frames_ok(), 0u);
}

// ---- Overload: explicit sheds, accepted requests stay bit-exact ----

TEST(NetServe, OverloadShedsExplicitlyAndAcceptedStayBitExact) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner reference(pkg);
  // Tiny bounded queue, immediate shedding, and a lingering batcher (the
  // linger holds admitted requests in the queue, so saturation is easy to
  // hit deterministically even on one core).
  ServeConfig cfg;
  cfg.queue_depth = 2;
  cfg.admission_timeout_us = 0;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200000;
  ModelRegistry registry(cfg);
  registry.load("tiny", std::move(pkg));
  net::NetServer server(registry);

  constexpr int kClients = 6, kPerClient = 6;
  std::atomic<std::uint64_t> oks{0}, sheds{0}, others{0}, mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::NetClient client(server.host(), server.port(), 10000);
      for (int i = 0; i < kPerClient; ++i) {
        const std::vector<float> row =
            random_row(TinyMlp::kIn, 1000 + static_cast<std::uint64_t>(c * kPerClient + i));
        const net::ResponseFrame resp = client.infer("tiny", row);
        if (resp.status == net::Status::kShed) {
          sheds.fetch_add(1);
          continue;
        }
        if (resp.status != net::Status::kOk) {
          others.fetch_add(1);
          continue;
        }
        oks.fetch_add(1);
        Tensor in(Shape{1, TinyMlp::kIn});
        std::memcpy(in.data(), row.data(), row.size() * sizeof(float));
        const Tensor want = reference.forward(in);
        bool match = static_cast<std::int64_t>(resp.row.size()) == want.numel();
        for (std::int64_t j = 0; match && j < want.numel(); ++j) {
          match = resp.row[static_cast<std::size_t>(j)] == want[j];
        }
        if (!match) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_GT(oks.load(), 0u);
  EXPECT_GT(sheds.load(), 0u) << "overload never shed: queue bound not enforced";
  EXPECT_EQ(others.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  // One story across the three ledgers: wire sheds == server counter ==
  // the registry's admission-control stat.
  EXPECT_EQ(server.frames_shed(), sheds.load());
  EXPECT_EQ(server.frames_ok(), oks.load());
  EXPECT_EQ(registry.stats("tiny").shed, sheds.load());
  EXPECT_EQ(registry.stats("tiny").errors, 0u);
  // And the per-status ledger is EXACT — every response frame the clients
  // counted appears under its status, and no other status fired at all.
  EXPECT_EQ(server.frames_by_status(net::Status::kOk), oks.load());
  EXPECT_EQ(server.frames_by_status(net::Status::kShed), sheds.load());
  for (const net::Status s :
       {net::Status::kUnknownModel, net::Status::kBadRequest, net::Status::kError,
        net::Status::kUnavailable, net::Status::kBusy}) {
    EXPECT_EQ(server.frames_by_status(s), 0u) << net::status_name(s);
  }
}

TEST(NetServe, PerStatusLedgerCountsEveryResponseFrame) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  // A known mix: 3 ok, 2 unknown-model, 1 bad-shape.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.infer("tiny", random_row(TinyMlp::kIn, 20 + static_cast<std::uint64_t>(i)))
                  .status,
              net::Status::kOk);
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(client.infer("ghost", random_row(4, 30)).status, net::Status::kUnknownModel);
  }
  ASSERT_EQ(client.infer("tiny", random_row(TinyMlp::kIn + 1, 31)).status,
            net::Status::kBadRequest);

  EXPECT_EQ(server.frames_by_status(net::Status::kOk), 3u);
  EXPECT_EQ(server.frames_by_status(net::Status::kUnknownModel), 2u);
  EXPECT_EQ(server.frames_by_status(net::Status::kBadRequest), 1u);
  std::uint64_t total = 0;
  for (int s = 0; s <= static_cast<int>(net::Status::kBusy); ++s) {
    total += server.frames_by_status(static_cast<net::Status>(s));
  }
  EXPECT_EQ(total, 6u);  // the taxonomy accounts for every frame sent

  // The ledger rides /stats for operators.
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"frames_by_status\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"ok\":3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"unknown_model\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"bad_request\":1"), std::string::npos) << stats;
}

// ---- Deadline propagation over the wire ----

TEST(NetServe, WireDeadlineShedsInsteadOfExecuting) {
  // A lingering batcher (400ms) holds the request in the queue past its
  // 1ms wire deadline: the sweep resolves it kShed WITHOUT running the
  // forward pass, and the deadline_expired stat proves which path fired.
  ServeConfig cfg;
  cfg.max_batch = 16;
  cfg.max_wait_us = 400000;
  ModelRegistry registry(cfg);
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  const auto t0 = std::chrono::steady_clock::now();
  const net::ResponseFrame resp =
      client.infer("tiny", random_row(TinyMlp::kIn, 50), Priority::kNormal, /*deadline_ms=*/1);
  EXPECT_EQ(resp.status, net::Status::kShed) << resp.message;
  EXPECT_NE(resp.message.find("deadline"), std::string::npos) << resp.message;
  const ServeStatsSnapshot s = registry.stats("tiny");
  EXPECT_EQ(s.deadline_expired, 1u);
  EXPECT_EQ(s.requests, 0u);  // never executed
  EXPECT_EQ(server.frames_by_status(net::Status::kShed), 1u);
  // The response still had to ride out the linger — but a generous
  // deadline on the same connection serves fine afterwards.
  (void)t0;
  const net::ResponseFrame ok =
      client.infer("tiny", random_row(TinyMlp::kIn, 51), Priority::kNormal, /*deadline_ms=*/30000);
  EXPECT_EQ(ok.status, net::Status::kOk) << ok.message;
}

// ---- Client retry policy ----

TEST(NetServe, InferRetryRecoversFromInjectedWorkerDeath) {
  vsq::fault::disable_all();
  ServeConfig cfg;
  cfg.watchdog_interval_ms = 10;  // fast replacement for the retry to hit
  ModelRegistry registry(cfg);
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  // Kill the serving worker once: the first attempt comes back
  // kUnavailable (broken promise), the retry lands on the watchdog's
  // replacement and succeeds — the client never sees the fault.
  vsq::fault::enable("serve.batcher.worker_exit", "1*trigger");
  net::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 20;
  policy.total_deadline_ms = 10000;
  policy.seed = 42;
  const net::ResponseFrame resp =
      client.infer_retry("tiny", random_row(TinyMlp::kIn, 60), Priority::kNormal, policy);
  vsq::fault::disable_all();
  EXPECT_EQ(resp.status, net::Status::kOk) << resp.message;
  EXPECT_GE(server.frames_by_status(net::Status::kUnavailable), 1u);
  EXPECT_GE(registry.stats("tiny").worker_restarts, 1u);
}

TEST(NetServe, InferRetryReconnectsThroughTornWritesAndDroppedReads) {
  vsq::fault::disable_all();
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port(), 2000);

  // Torn response: the server sends half a frame and drops the
  // connection. A bare infer() surfaces a clean transport error (never a
  // hang, never garbage bits)...
  vsq::fault::enable("net.server.write.partial", "1*trigger");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.infer("tiny", random_row(TinyMlp::kIn, 61)), std::runtime_error);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));

  // ...and infer_retry redials through it: arm one more torn write plus
  // one injected server-side read failure, then the third attempt lands.
  vsq::fault::enable("net.server.write.partial", "1*trigger");
  vsq::fault::enable("net.server.read.pre_body", "1*error(injected read fault)");
  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 10;
  policy.total_deadline_ms = 10000;
  policy.seed = 7;
  const net::ResponseFrame resp =
      client.infer_retry("tiny", random_row(TinyMlp::kIn, 62), Priority::kNormal, policy);
  vsq::fault::disable_all();
  EXPECT_EQ(resp.status, net::Status::kOk) << resp.message;
}

TEST(NetServe, InferRetryHonorsTotalDeadlineBudgetAgainstDeadWorkers) {
  vsq::fault::disable_all();
  ServeConfig cfg;
  cfg.watchdog_interval_ms = 10;
  cfg.max_worker_restarts = 1;
  ModelRegistry registry(cfg);
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  // EVERY worker incarnation dies: the server answers kUnavailable
  // forever. The client's retry loop must give up at its total-deadline
  // budget — bounded wall clock, explicit backoff-status result, no spin.
  vsq::fault::enable("serve.batcher.worker_exit", "trigger");
  net::RetryPolicy policy;
  policy.max_attempts = 1000;  // attempts would spin ~forever; budget must bound it
  policy.initial_backoff_ms = 20;
  policy.max_backoff_ms = 100;
  policy.total_deadline_ms = 400;
  policy.seed = 9;
  const auto t0 = std::chrono::steady_clock::now();
  const net::ResponseFrame resp =
      client.infer_retry("tiny", random_row(TinyMlp::kIn, 63), Priority::kNormal, policy);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  vsq::fault::disable_all();
  EXPECT_TRUE(resp.status == net::Status::kShed || resp.status == net::Status::kUnavailable)
      << net::status_name(resp.status) << ": " << resp.message;
  EXPECT_GE(elapsed, std::chrono::milliseconds(100));  // it did retry for a while
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "budget did not bound the retry loop";
}

// ---- Connect deadline: a black-holed server costs a bounded wait ----

TEST(NetServe, ConnectTimesOutAgainstFullBacklogInsteadOfHanging) {
  // A listener that never accepts, with a zero-length backlog: once the
  // accept queue fills, further SYNs are dropped and the client's connect
  // must fail by ITS deadline (non-blocking connect + poll), not block in
  // the kernel's minutes-long retransmit schedule.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = static_cast<int>(::ntohs(addr.sin_port));

  std::vector<int> held;
  bool timed_out = false;
  for (int i = 0; i < 32 && !timed_out; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      held.push_back(net::connect_tcp("127.0.0.1", port, 300));
    } catch (const std::runtime_error&) {
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      // The wait is the configured deadline, give or take scheduling —
      // NOT the kernel's default connect timeout (minutes).
      EXPECT_GE(elapsed, std::chrono::milliseconds(250));
      EXPECT_LT(elapsed, std::chrono::seconds(3));
      timed_out = true;
    }
  }
  for (const int fd : held) net::close_fd(fd);
  net::close_fd(listener);
  EXPECT_TRUE(timed_out) << "backlog never filled; connect deadline untested";
}

TEST(NetServe, ConnectionCapAnswersBusy) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.max_connections = 1;
  net::NetServer server(registry, cfg);

  net::NetClient holder(server.host(), server.port(), 2000);
  // One completed round trip pins the slot (the connection thread is
  // provably up before the second connect races it).
  ASSERT_EQ(holder.infer("tiny", random_row(TinyMlp::kIn, 5)).status, net::Status::kOk);

  net::NetClient second(server.host(), server.port(), 2000);
  const net::ResponseFrame busy = second.read_response();  // server speaks first
  EXPECT_EQ(busy.status, net::Status::kBusy);
  EXPECT_EQ(server.busy_rejects(), 1u);

  // The held connection still serves; freeing it frees the slot.
  EXPECT_EQ(holder.infer("tiny", random_row(TinyMlp::kIn, 6)).status, net::Status::kOk);
  holder.close();
  for (int i = 0; i < 100; ++i) {  // reap runs on the accept thread's 100ms tick
    try {
      net::NetClient third(server.host(), server.port(), 2000);
      if (third.infer("tiny", random_row(TinyMlp::kIn, 7)).status == net::Status::kOk) return;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "slot never freed after the holding client disconnected";
}

// ---- Slow / misbehaving clients: bounded cost, no wedge, no leak ----

TEST(NetServe, SlowAndVanishingClientsDoNotWedgeTheServer) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.idle_timeout_ms = 400;   // short deadlines keep the test fast
  cfg.frame_timeout_ms = 200;
  net::NetServer server(registry, cfg);

  {  // half a header, then silence: cut off at the idle/frame deadline
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    ASSERT_TRUE(net::write_full(fd, "VS", 2, 500));
    char byte = 0;
    bool eof = false;
    // The server must close this connection on its own (bounded wait) —
    // the deadline proves the slot is reclaimed, not parked forever.
    EXPECT_FALSE(net::read_full(fd, &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);
    net::close_fd(fd);
  }
  {  // header promising a body that trickles 3 of 100 bytes then stalls
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    std::uint8_t header[net::kHeaderBytes];
    net::encode_header(100, header);
    ASSERT_TRUE(net::write_full(fd, header, sizeof(header), 500));
    ASSERT_TRUE(net::write_full(fd, "abc", 3, 500));
    char byte = 0;
    bool eof = false;
    EXPECT_FALSE(net::read_full(fd, &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);
    net::close_fd(fd);
  }
  {  // a complete valid request, then vanish without reading the answer
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    net::RequestFrame req;
    req.model = "tiny";
    req.row = random_row(TinyMlp::kIn, 8);
    const auto frame = net::encode_request(req);
    ASSERT_TRUE(net::write_full(fd, frame.data(), frame.size(), 500));
    net::close_fd(fd);
  }

  // The server took two protocol errors and one executed-but-unread
  // request, and it still answers a normal client correctly. No promise
  // leaked: the vanished request's batch ran (frames_ok counts it).
  net::NetClient probe(server.host(), server.port(), 5000);
  const net::ResponseFrame resp = probe.infer("tiny", random_row(TinyMlp::kIn, 9));
  EXPECT_EQ(resp.status, net::Status::kOk) << resp.message;
  EXPECT_GE(server.protocol_errors(), 2u);
  // The vanished request + the probe. The vanished one finishes on its own
  // connection thread, so give its counter a moment.
  for (int i = 0; i < 100 && server.frames_ok() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.frames_ok(), 2u);
  EXPECT_EQ(registry.stats("tiny").errors, 0u);

  // Every abused connection is reaped: only the probe can remain.
  for (int i = 0; i < 100 && server.active_connections() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_LE(server.active_connections(), 1u);
}

// ---- HTTP surface ----

TEST(NetServe, StatsAndHealthzSpeakHttp) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());
  ASSERT_EQ(client.infer("tiny", random_row(TinyMlp::kIn, 11)).status, net::Status::kOk);

  EXPECT_EQ(net::http_get(server.host(), server.port(), "/healthz"), "ok\n");
  const std::string stats = net::http_get(server.host(), server.port(), "/stats");
  EXPECT_NE(stats.find("\"frames_ok\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"name\":\"tiny\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shed\""), std::string::npos) << stats;
  EXPECT_THROW((void)net::http_get(server.host(), server.port(), "/nope"), std::runtime_error);
  EXPECT_EQ(server.http_requests(), 3u);
}

TEST(NetServe, StopWithLiveConnectionsReturnsPromptly) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  auto server = std::make_unique<net::NetServer>(registry);
  net::NetClient idle(server->host(), server->port());  // parked, mid-idle-wait
  ASSERT_EQ(idle.infer("tiny", random_row(TinyMlp::kIn, 12)).status, net::Status::kOk);
  const auto t0 = std::chrono::steady_clock::now();
  server->stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // stop() must wake the parked connection out of its 10s idle wait, not
  // sit it out.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 5);
}

}  // namespace
}  // namespace vsq
