// Network front-end tests: wire-protocol encode/decode, the NetServer
// request path (bit-exactness across TCP against a sequential reference
// runner), explicit overload shedding, the connection cap, slow and
// misbehaving clients (partial frames, stalls, mid-request disconnects —
// bounded cost, never a wedged server), and the /stats + /healthz HTTP
// surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_io.h"
#include "serve/registry.h"
#include "util/rng.h"

namespace vsq {
namespace {

QuantizedModelPackage tiny_package() {
  return tiny_mlp_package(MacConfig::parse("4/8/6/10"));
}

std::vector<float> random_row(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> row(static_cast<std::size_t>(n));
  for (auto& v : row) v = static_cast<float>(rng.normal());
  return row;
}

// ---- Protocol framing ----

TEST(NetProtocol, RequestFrameRoundTrips) {
  net::RequestFrame in;
  in.model = "tiny";
  in.priority = Priority::kLow;
  in.row = {1.5f, -2.25f, 0.0f, 3.75f};
  const std::vector<std::uint8_t> bytes = net::encode_request(in);
  std::uint32_t body_len = 0;
  ASSERT_TRUE(net::parse_header(bytes.data(), &body_len));
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + body_len);
  net::RequestFrame out;
  std::string err;
  ASSERT_TRUE(net::decode_request({bytes.data() + net::kHeaderBytes, body_len}, &out, &err))
      << err;
  EXPECT_EQ(out.model, "tiny");
  EXPECT_EQ(out.priority, Priority::kLow);
  EXPECT_EQ(out.row, in.row);
}

TEST(NetProtocol, ResponseFramesRoundTripBothShapes) {
  net::ResponseFrame ok;
  ok.status = net::Status::kOk;
  ok.row = {7.0f, -0.125f};
  const auto ok_bytes = net::encode_response(ok);
  net::ResponseFrame out;
  std::string err;
  std::uint32_t body_len = 0;
  ASSERT_TRUE(net::parse_header(ok_bytes.data(), &body_len));
  ASSERT_TRUE(net::decode_response({ok_bytes.data() + net::kHeaderBytes, body_len}, &out, &err));
  EXPECT_EQ(out.status, net::Status::kOk);
  EXPECT_EQ(out.row, ok.row);

  net::ResponseFrame shed;
  shed.status = net::Status::kShed;
  shed.message = "queue full";
  const auto shed_bytes = net::encode_response(shed);
  ASSERT_TRUE(net::parse_header(shed_bytes.data(), &body_len));
  ASSERT_TRUE(
      net::decode_response({shed_bytes.data() + net::kHeaderBytes, body_len}, &out, &err));
  EXPECT_EQ(out.status, net::Status::kShed);
  EXPECT_EQ(out.message, "queue full");
  EXPECT_TRUE(out.row.empty());
}

TEST(NetProtocol, DecodersRejectMalformedBodies) {
  net::RequestFrame req;
  req.model = "m";
  req.row = {1.0f};
  auto bytes = net::encode_request(req);
  const std::uint32_t body_len = static_cast<std::uint32_t>(bytes.size() - net::kHeaderBytes);
  net::RequestFrame out;
  std::string err;
  // Truncated at every prefix length: never a crash, always a diagnostic.
  for (std::uint32_t cut = 0; cut < body_len; ++cut) {
    EXPECT_FALSE(net::decode_request({bytes.data() + net::kHeaderBytes, cut}, &out, &err));
    EXPECT_FALSE(err.empty());
  }
  // Trailing bytes after a complete body.
  bytes.push_back(0);
  EXPECT_FALSE(
      net::decode_request({bytes.data() + net::kHeaderBytes, body_len + 1}, &out, &err));
  // Bad magic fails the header parse.
  std::uint8_t header[net::kHeaderBytes] = {0};
  std::uint32_t n = 0;
  EXPECT_FALSE(net::parse_header(header, &n));
  // Unknown priority / empty name.
  std::vector<std::uint8_t> bad = {9, 1, 'm', 1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(net::decode_request({bad.data(), bad.size()}, &out, &err));
  EXPECT_NE(err.find("priority"), std::string::npos);
  bad = {0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(net::decode_request({bad.data(), bad.size()}, &out, &err));
  EXPECT_NE(err.find("name"), std::string::npos);
}

TEST(NetProtocol, JsonEscapeHandlesControlAndQuote) {
  EXPECT_EQ(net::json_escape("plain"), "plain");
  EXPECT_EQ(net::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(net::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(net::json_escape(std::string("\x01", 1)), "\\u0001");
}

// ---- Server round trip + error statuses ----

TEST(NetServe, RoundTripBitExactAgainstSequentialReference) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner reference(pkg);
  ModelRegistry registry;
  registry.load("tiny", std::move(pkg));
  net::NetServer server(registry);

  net::NetClient client(server.host(), server.port());
  for (int i = 0; i < 16; ++i) {
    const std::vector<float> row = random_row(TinyMlp::kIn, 900 + static_cast<std::uint64_t>(i));
    const net::ResponseFrame resp = client.infer("tiny", row);
    ASSERT_EQ(resp.status, net::Status::kOk) << resp.message;
    Tensor in(Shape{1, TinyMlp::kIn});
    std::memcpy(in.data(), row.data(), row.size() * sizeof(float));
    const Tensor want = reference.forward(in);
    ASSERT_EQ(static_cast<std::int64_t>(resp.row.size()), want.numel());
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(resp.row[static_cast<std::size_t>(j)], want[j]) << "element " << j;
    }
  }
  EXPECT_EQ(server.frames_ok(), 16u);
  EXPECT_EQ(server.frames_rejected(), 0u);
  EXPECT_EQ(server.protocol_errors(), 0u);
}

TEST(NetServe, UnknownModelAndBadShapeAreExplicitStatuses) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());

  const net::ResponseFrame unknown = client.infer("nope", random_row(4, 1));
  EXPECT_EQ(unknown.status, net::Status::kUnknownModel);
  EXPECT_NE(unknown.message.find("nope"), std::string::npos);

  // Wrong input width: rejected per-request, and the connection survives.
  const net::ResponseFrame bad = client.infer("tiny", random_row(TinyMlp::kIn + 3, 2));
  EXPECT_EQ(bad.status, net::Status::kBadRequest);
  const net::ResponseFrame ok = client.infer("tiny", random_row(TinyMlp::kIn, 3));
  EXPECT_EQ(ok.status, net::Status::kOk);
  EXPECT_EQ(server.frames_rejected(), 2u);
}

TEST(NetServe, BadMagicAndOversizedBodyAreRejected) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.max_body_bytes = 1024;
  net::NetServer server(registry, cfg);

  {  // garbage where the magic belongs: kBadRequest, then the server closes
    net::NetClient client(server.host(), server.port(), 2000);
    ASSERT_TRUE(net::write_full(client.fd(), "XXXXXXXXXXXX", 12, 1000));
    const net::ResponseFrame resp = client.read_response();
    EXPECT_EQ(resp.status, net::Status::kBadRequest);
    EXPECT_NE(resp.message.find("magic"), std::string::npos);
    char byte = 0;
    bool eof = false;
    EXPECT_FALSE(net::read_full(client.fd(), &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);  // connection closed: the stream was unrecoverable
  }
  {  // a header promising more than max_body_bytes
    net::NetClient client(server.host(), server.port(), 2000);
    std::uint8_t header[net::kHeaderBytes];
    net::encode_header(4096, header);
    ASSERT_TRUE(net::write_full(client.fd(), header, sizeof(header), 1000));
    const net::ResponseFrame resp = client.read_response();
    EXPECT_EQ(resp.status, net::Status::kBadRequest);
    EXPECT_NE(resp.message.find("large"), std::string::npos);
  }
  EXPECT_EQ(server.protocol_errors(), 2u);
  EXPECT_EQ(server.frames_ok(), 0u);
}

// ---- Overload: explicit sheds, accepted requests stay bit-exact ----

TEST(NetServe, OverloadShedsExplicitlyAndAcceptedStayBitExact) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner reference(pkg);
  // Tiny bounded queue, immediate shedding, and a lingering batcher (the
  // linger holds admitted requests in the queue, so saturation is easy to
  // hit deterministically even on one core).
  ServeConfig cfg;
  cfg.queue_depth = 2;
  cfg.admission_timeout_us = 0;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200000;
  ModelRegistry registry(cfg);
  registry.load("tiny", std::move(pkg));
  net::NetServer server(registry);

  constexpr int kClients = 6, kPerClient = 6;
  std::atomic<std::uint64_t> oks{0}, sheds{0}, others{0}, mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::NetClient client(server.host(), server.port(), 10000);
      for (int i = 0; i < kPerClient; ++i) {
        const std::vector<float> row =
            random_row(TinyMlp::kIn, 1000 + static_cast<std::uint64_t>(c * kPerClient + i));
        const net::ResponseFrame resp = client.infer("tiny", row);
        if (resp.status == net::Status::kShed) {
          sheds.fetch_add(1);
          continue;
        }
        if (resp.status != net::Status::kOk) {
          others.fetch_add(1);
          continue;
        }
        oks.fetch_add(1);
        Tensor in(Shape{1, TinyMlp::kIn});
        std::memcpy(in.data(), row.data(), row.size() * sizeof(float));
        const Tensor want = reference.forward(in);
        bool match = static_cast<std::int64_t>(resp.row.size()) == want.numel();
        for (std::int64_t j = 0; match && j < want.numel(); ++j) {
          match = resp.row[static_cast<std::size_t>(j)] == want[j];
        }
        if (!match) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_GT(oks.load(), 0u);
  EXPECT_GT(sheds.load(), 0u) << "overload never shed: queue bound not enforced";
  EXPECT_EQ(others.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  // One story across the three ledgers: wire sheds == server counter ==
  // the registry's admission-control stat.
  EXPECT_EQ(server.frames_shed(), sheds.load());
  EXPECT_EQ(server.frames_ok(), oks.load());
  EXPECT_EQ(registry.stats("tiny").shed, sheds.load());
  EXPECT_EQ(registry.stats("tiny").errors, 0u);
}

TEST(NetServe, ConnectionCapAnswersBusy) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.max_connections = 1;
  net::NetServer server(registry, cfg);

  net::NetClient holder(server.host(), server.port(), 2000);
  // One completed round trip pins the slot (the connection thread is
  // provably up before the second connect races it).
  ASSERT_EQ(holder.infer("tiny", random_row(TinyMlp::kIn, 5)).status, net::Status::kOk);

  net::NetClient second(server.host(), server.port(), 2000);
  const net::ResponseFrame busy = second.read_response();  // server speaks first
  EXPECT_EQ(busy.status, net::Status::kBusy);
  EXPECT_EQ(server.busy_rejects(), 1u);

  // The held connection still serves; freeing it frees the slot.
  EXPECT_EQ(holder.infer("tiny", random_row(TinyMlp::kIn, 6)).status, net::Status::kOk);
  holder.close();
  for (int i = 0; i < 100; ++i) {  // reap runs on the accept thread's 100ms tick
    try {
      net::NetClient third(server.host(), server.port(), 2000);
      if (third.infer("tiny", random_row(TinyMlp::kIn, 7)).status == net::Status::kOk) return;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "slot never freed after the holding client disconnected";
}

// ---- Slow / misbehaving clients: bounded cost, no wedge, no leak ----

TEST(NetServe, SlowAndVanishingClientsDoNotWedgeTheServer) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServerConfig cfg;
  cfg.idle_timeout_ms = 400;   // short deadlines keep the test fast
  cfg.frame_timeout_ms = 200;
  net::NetServer server(registry, cfg);

  {  // half a header, then silence: cut off at the idle/frame deadline
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    ASSERT_TRUE(net::write_full(fd, "VS", 2, 500));
    char byte = 0;
    bool eof = false;
    // The server must close this connection on its own (bounded wait) —
    // the deadline proves the slot is reclaimed, not parked forever.
    EXPECT_FALSE(net::read_full(fd, &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);
    net::close_fd(fd);
  }
  {  // header promising a body that trickles 3 of 100 bytes then stalls
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    std::uint8_t header[net::kHeaderBytes];
    net::encode_header(100, header);
    ASSERT_TRUE(net::write_full(fd, header, sizeof(header), 500));
    ASSERT_TRUE(net::write_full(fd, "abc", 3, 500));
    char byte = 0;
    bool eof = false;
    EXPECT_FALSE(net::read_full(fd, &byte, 1, 2000, 2000, &eof));
    EXPECT_TRUE(eof);
    net::close_fd(fd);
  }
  {  // a complete valid request, then vanish without reading the answer
    const int fd = net::connect_tcp(server.host(), server.port(), 1000);
    net::RequestFrame req;
    req.model = "tiny";
    req.row = random_row(TinyMlp::kIn, 8);
    const auto frame = net::encode_request(req);
    ASSERT_TRUE(net::write_full(fd, frame.data(), frame.size(), 500));
    net::close_fd(fd);
  }

  // The server took two protocol errors and one executed-but-unread
  // request, and it still answers a normal client correctly. No promise
  // leaked: the vanished request's batch ran (frames_ok counts it).
  net::NetClient probe(server.host(), server.port(), 5000);
  const net::ResponseFrame resp = probe.infer("tiny", random_row(TinyMlp::kIn, 9));
  EXPECT_EQ(resp.status, net::Status::kOk) << resp.message;
  EXPECT_GE(server.protocol_errors(), 2u);
  // The vanished request + the probe. The vanished one finishes on its own
  // connection thread, so give its counter a moment.
  for (int i = 0; i < 100 && server.frames_ok() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.frames_ok(), 2u);
  EXPECT_EQ(registry.stats("tiny").errors, 0u);

  // Every abused connection is reaped: only the probe can remain.
  for (int i = 0; i < 100 && server.active_connections() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_LE(server.active_connections(), 1u);
}

// ---- HTTP surface ----

TEST(NetServe, StatsAndHealthzSpeakHttp) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  net::NetServer server(registry);
  net::NetClient client(server.host(), server.port());
  ASSERT_EQ(client.infer("tiny", random_row(TinyMlp::kIn, 11)).status, net::Status::kOk);

  EXPECT_EQ(net::http_get(server.host(), server.port(), "/healthz"), "ok\n");
  const std::string stats = net::http_get(server.host(), server.port(), "/stats");
  EXPECT_NE(stats.find("\"frames_ok\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"name\":\"tiny\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shed\""), std::string::npos) << stats;
  EXPECT_THROW((void)net::http_get(server.host(), server.port(), "/nope"), std::runtime_error);
  EXPECT_EQ(server.http_requests(), 3u);
}

TEST(NetServe, StopWithLiveConnectionsReturnsPromptly) {
  ModelRegistry registry;
  registry.load("tiny", tiny_package());
  auto server = std::make_unique<net::NetServer>(registry);
  net::NetClient idle(server->host(), server->port());  // parked, mid-idle-wait
  ASSERT_EQ(idle.infer("tiny", random_row(TinyMlp::kIn, 12)).status, net::Status::kOk);
  const auto t0 = std::chrono::steady_clock::now();
  server->stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // stop() must wake the parked connection out of its 10s idle wait, not
  // sit it out.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 5);
}

}  // namespace
}  // namespace vsq
