// Randomized cross-path consistency checks ("fuzz" tests, deterministic
// given the seeds). The repo maintains two implementations of VS-Quant
// arithmetic — the simulated-quantization path used for accuracy
// experiments and the bit-accurate integer path used for hardware studies
// — plus invariants (integer ranges, accumulator budgets) that must hold
// for EVERY shape/bitwidth combination, not just the hand-picked ones in
// the unit tests. Each test sweeps dozens of random configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/pe_simulator.h"
#include "quant/quantized_tensor.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Inclusive integer range on top of Rng's uniform_u64.
std::int64_t uniform_int(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(rng.uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
}

struct FuzzCase {
  std::int64_t rows, cols, outs, block;
  int wbits, abits, ws, as, v;
  bool act_unsigned;
};

FuzzCase random_case(Rng& rng) {
  FuzzCase c;
  c.rows = uniform_int(rng, 1, 9);
  c.outs = uniform_int(rng, 1, 9);
  // Reduction length: sometimes a multiple of a channel block, sometimes
  // prime-ish so tail vectors appear.
  const std::int64_t blocks = uniform_int(rng, 1, 4);
  const std::int64_t blen = uniform_int(rng, 3, 21);
  c.cols = blocks * blen;
  c.block = rng.bernoulli(0.5) ? blen : 0;
  const int bit_choices[] = {3, 4, 6, 8};
  c.wbits = bit_choices[uniform_int(rng, 0, 3)];
  c.abits = bit_choices[uniform_int(rng, 0, 3)];
  const int scale_choices[] = {3, 4, 6, 8, 10};
  c.ws = rng.bernoulli(0.25) ? -1 : scale_choices[uniform_int(rng, 0, 4)];
  c.as = rng.bernoulli(0.25) ? -1 : scale_choices[uniform_int(rng, 0, 4)];
  const int v_choices[] = {4, 8, 16, 32};
  c.v = v_choices[uniform_int(rng, 0, 3)];
  c.act_unsigned = rng.bernoulli(0.5);
  return c;
}

MacConfig to_mac(const FuzzCase& c) {
  MacConfig m;
  m.wt_bits = c.wbits;
  m.act_bits = c.abits;
  m.wt_scale_bits = c.ws;
  m.act_scale_bits = c.as;
  m.vector_size = c.v;
  m.act_unsigned = c.act_unsigned;
  return m;
}

// The PE's integer datapath must match the simulated-quantization
// reference at full-precision scale products for ANY configuration.
TEST(Fuzz, PeMatchesReferenceAcrossRandomConfigs) {
  Rng rng(2024);
  for (int iter = 0; iter < 60; ++iter) {
    const FuzzCase c = random_case(rng);
    const MacConfig mac = to_mac(c);
    const PeSimulator pe(mac);

    Tensor w = random_tensor(Shape{c.outs, c.cols}, rng, 0.5);
    Tensor a = random_tensor(Shape{c.rows, c.cols}, rng, 0.8);
    if (c.act_unsigned) {
      for (auto& v : a.span()) v = std::abs(v);  // post-ReLU regime
    }
    const float amax = amax_per_tensor(a);

    const PeRunResult hw = pe.run(a, w, amax, c.block);
    const Tensor ref = pe.reference(a, w, amax, c.block);
    const float tol = 2e-4f * (1.0f + amax_per_tensor(ref));
    EXPECT_LT(max_abs_diff(hw.output, ref), tol)
        << "config " << mac.str() << " V=" << c.v << " rows=" << c.rows << " cols=" << c.cols
        << " outs=" << c.outs << " block=" << c.block << " iter=" << iter;
  }
}

// Integer weight operands: every element within the format's range, every
// per-vector scale within M bits, and the dequantized matrix within one
// effective-scale ULP of the original wherever no clipping can occur.
TEST(Fuzz, QuantizedWeightInvariants) {
  Rng rng(4048);
  for (int iter = 0; iter < 60; ++iter) {
    const FuzzCase c = random_case(rng);
    QuantSpec spec;
    spec.enabled = true;
    spec.fmt = QuantFormat{c.wbits, true};
    spec.vector_size = c.v;
    spec.channel_block = c.block;
    if (c.ws > 0) {
      spec.granularity = Granularity::kPerVector;
      spec.scale_dtype = ScaleDtype::kTwoLevelInt;
      spec.scale_fmt = QuantFormat{c.ws, false};
    } else {
      spec.granularity = Granularity::kPerRow;
    }

    const Tensor w = random_tensor(Shape{c.outs, c.cols}, rng, 0.5);
    const QuantizedMatrix qm = quantize_weights_int(w, spec);

    ASSERT_EQ(static_cast<std::int64_t>(qm.q.size()), c.outs * c.cols);
    for (const std::int16_t q : qm.q) {
      EXPECT_GE(q, qm.fmt.qmin());
      EXPECT_LE(q, qm.fmt.qmax());
    }
    if (qm.two_level) {
      const std::uint16_t sq_max = static_cast<std::uint16_t>((1u << c.ws) - 1);
      for (const std::uint16_t sq : qm.two_level->sq) EXPECT_LE(sq, sq_max);
    }
    // Dequantize and bound the error. Per Eq. 7, integers are quantized
    // with the fp per-vector scale s_fp (7c) but dequantized with the
    // quantized scale sq*gamma (7i), so the bound has two terms:
    //   rounding of the value:   0.5 * s_fp
    //   quantization of the scale: |xq| * |s_fp - sq*gamma| <= qmax * gamma/2
    // (The second term also covers sq rounding to 0, which flushes the
    // whole vector — legal when the vector's range is < gamma/2.)
    const double qmax = static_cast<double>(qm.fmt.qmax());
    for (std::int64_t r = 0; r < c.outs; ++r) {
      for (std::int64_t col = 0; col < c.cols; ++col) {
        double s_used, bound;
        if (qm.two_level) {
          const std::int64_t vec = qm.layout.vector_of_col(col);
          const auto [c0, c1] = qm.layout.col_range(vec);
          double vec_amax = 0;
          for (std::int64_t cc = c0; cc < c1; ++cc) {
            vec_amax = std::max(vec_amax, std::abs(static_cast<double>(w.at2(r, cc))));
          }
          const double s_fp = vec_amax / qmax;  // Eq. 7b
          const double gamma = qm.two_level->gamma_of_row(r);
          s_used = qm.two_level->effective_scale(r, vec);
          bound = 0.5 * s_fp + 0.5 * gamma * qmax;
        } else {
          s_used = qm.outer_scale(r);
          bound = 0.5 * s_used;
        }
        const double deq = static_cast<double>(qm.at(r, col)) * s_used;
        EXPECT_LE(std::abs(deq - w.at2(r, col)), bound + 1e-6)
            << "iter=" << iter << " r=" << r << " c=" << col;
      }
    }
  }
}

// The widest partial sum observed by the datapath must fit the paper's
// accumulator-width formula even for adversarial all-extreme operands.
TEST(Fuzz, AccumulatorBudgetHoldsForExtremeOperands) {
  Rng rng(777);
  for (int iter = 0; iter < 30; ++iter) {
    FuzzCase c = random_case(rng);
    // Force the true VS-Quant path (scales on both operands).
    if (c.ws <= 0) c.ws = 4;
    if (c.as <= 0) c.as = 4;
    const MacConfig mac = to_mac(c);
    const PeSimulator pe(mac);

    // All elements at the maximum magnitude: worst-case dot products and
    // worst-case integer scales simultaneously.
    Tensor w(Shape{c.outs, c.cols}), a(Shape{c.rows, c.cols});
    for (auto& v : w.span()) v = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    for (auto& v : a.span()) v = c.act_unsigned ? 1.0f : (rng.bernoulli(0.5) ? 1.0f : -1.0f);

    const PeRunResult hw = pe.run(a, w, amax_per_tensor(a), c.block);
    // accumulator_bits() sizes ONE vector-MAC output (2N + log2 V + 2M,
    // the paper's formula). The accumulation collector then sums one such
    // value per vector of the reduction, so its budget gains log2(#vectors)
    // ("accumulation collectors are designed with appropriate widths").
    const VectorLayout layout{c.cols, c.v, c.block};
    const double budget = std::pow(2.0, mac.accumulator_bits() - 1) *
                          static_cast<double>(layout.vectors_per_row());
    EXPECT_LE(static_cast<double>(hw.stats.max_abs_psum), budget)
        << mac.str() << " V=" << c.v << " iter=" << iter;
  }
}

// With a single vector per row (cols <= V), the collector holds exactly one
// vector-MAC output, so the paper's 2N + log2 V + 2M width must bound it
// directly — the tightest check of the Sec. 5 width arithmetic.
TEST(Fuzz, SingleVectorPsumFitsMacOutputWidth) {
  Rng rng(778);
  for (int iter = 0; iter < 30; ++iter) {
    FuzzCase c = random_case(rng);
    if (c.ws <= 0) c.ws = 6;
    if (c.as <= 0) c.as = 6;
    c.cols = uniform_int(rng, 1, c.v);  // exactly one (possibly short) vector
    c.block = 0;
    const MacConfig mac = to_mac(c);
    const PeSimulator pe(mac);

    Tensor w(Shape{c.outs, c.cols}), a(Shape{c.rows, c.cols});
    for (auto& v : w.span()) v = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    for (auto& v : a.span()) v = c.act_unsigned ? 1.0f : (rng.bernoulli(0.5) ? 1.0f : -1.0f);

    const PeRunResult hw = pe.run(a, w, amax_per_tensor(a));
    EXPECT_LE(static_cast<double>(hw.stats.max_abs_psum),
              std::pow(2.0, mac.accumulator_bits() - 1))
        << mac.str() << " V=" << c.v << " cols=" << c.cols << " iter=" << iter;
  }
}

// Scale-product rounding must never *increase* the datapath's deviation
// from the reference when given more bits.
TEST(Fuzz, RoundingDeviationMonotoneInProductBits) {
  Rng rng(991);
  for (int iter = 0; iter < 20; ++iter) {
    FuzzCase c = random_case(rng);
    c.ws = 6;
    c.as = 6;
    MacConfig mac = to_mac(c);
    const Tensor w = random_tensor(Shape{c.outs, c.cols}, rng, 0.5);
    Tensor a = random_tensor(Shape{c.rows, c.cols}, rng, 0.8);
    if (c.act_unsigned) {
      for (auto& v : a.span()) v = std::abs(v);
    }
    const float amax = amax_per_tensor(a);

    mac.scale_product_bits = -1;
    const Tensor ref = PeSimulator(mac).reference(a, w, amax, c.block);
    double prev_err = 1e30;
    for (const int bits : {2, 4, 6, 9, 12}) {
      mac.scale_product_bits = bits;
      const PeRunResult hw = PeSimulator(mac).run(a, w, amax, c.block);
      double err = 0;
      for (std::int64_t i = 0; i < ref.numel(); ++i) {
        err += std::abs(static_cast<double>(hw.output.data()[i]) - ref.data()[i]);
      }
      EXPECT_LE(err, prev_err * 1.15 + 1e-6)  // slack for rounding luck
          << "bits=" << bits << " iter=" << iter;
      prev_err = err;
    }
  }
}

// Degenerate shapes must be handled exactly, not crash: single rows,
// single columns, vector size larger than the reduction length.
TEST(Fuzz, DegenerateShapes) {
  Rng rng(55);
  for (const auto& [rows, cols, outs, v] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t, int>>{
           {1, 1, 1, 16}, {1, 3, 1, 16}, {2, 5, 3, 8}, {1, 4, 2, 32}, {3, 2, 2, 4}}) {
    MacConfig mac;
    mac.wt_bits = 4;
    mac.act_bits = 4;
    mac.wt_scale_bits = 4;
    mac.act_scale_bits = 4;
    mac.vector_size = v;
    mac.act_unsigned = false;
    const PeSimulator pe(mac);
    const Tensor w = random_tensor(Shape{outs, cols}, rng);
    const Tensor a = random_tensor(Shape{rows, cols}, rng);
    const float amax = amax_per_tensor(a);
    const PeRunResult hw = pe.run(a, w, amax);
    const Tensor ref = pe.reference(a, w, amax);
    EXPECT_LT(max_abs_diff(hw.output, ref), 2e-4f * (1.0f + amax_per_tensor(ref)))
        << rows << "x" << cols << "x" << outs << " V=" << v;
  }
}

// Activation quantization with an all-zero tensor (dead layer) must yield
// all-zero integers and finite scales on both paths.
TEST(Fuzz, ZeroActivationsAreRepresentable) {
  for (const bool per_vector : {false, true}) {
    QuantSpec spec;
    spec.enabled = true;
    spec.fmt = QuantFormat{4, false};
    spec.vector_size = 16;
    if (per_vector) {
      spec.granularity = Granularity::kPerVector;
      spec.scale_dtype = ScaleDtype::kTwoLevelInt;
      spec.scale_fmt = QuantFormat{4, false};
      spec.dynamic = true;
    } else {
      spec.granularity = Granularity::kPerTensor;
    }
    const Tensor zero(Shape{4, 32});
    const QuantizedMatrix qm = quantize_activations_int(zero, spec, /*static_amax=*/0.0f,
                                                        /*gamma=*/0.0f);
    for (const std::int16_t q : qm.q) EXPECT_EQ(q, 0);
    for (std::int64_t r = 0; r < 4; ++r) EXPECT_TRUE(std::isfinite(qm.outer_scale(r)));
  }
}

}  // namespace
}  // namespace vsq
