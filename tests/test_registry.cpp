// ModelRegistry tests: multi-model routing correctness (every response
// bit-identical to a per-model sequential reference), hot load/unload
// semantics (drain guarantees, clean rejection races), per-model and
// cumulative-across-reload stats aggregation, and the registry archive
// load path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/ptq.h"
#include "fault/failpoint.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "serve/registry.h"

namespace vsq {
namespace {

QuantizedModelPackage tiny_package() { return tiny_mlp_package(MacConfig::parse("4/8/6/10")); }

QuantizedModelPackage tiny8_package() { return tiny_mlp_package(MacConfig::parse("8/8/6/6")); }

QuantizedModelPackage conv_package() {
  MacConfig mac = MacConfig::parse("4/8/6/10");
  mac.act_unsigned = true;
  return tiny_conv_package(mac);
}

Tensor random_row(std::int64_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{1, cols});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(ModelRegistry, RoutesByNameBitExact) {
  QuantizedModelPackage mlp = tiny_package();
  QuantizedModelPackage cnn = conv_package();
  const QuantizedModelRunner mlp_ref(mlp);
  const QuantizedModelRunner cnn_ref(cnn);

  ModelRegistry reg;
  reg.load("mlp", tiny_package());
  reg.load("cnn", conv_package());
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.models(), (std::vector<std::string>{"cnn", "mlp"}));

  for (int i = 0; i < 8; ++i) {
    const Tensor xm = random_row(mlp_ref.in_features(), 100 + static_cast<std::uint64_t>(i));
    const Tensor xc = random_row(cnn_ref.in_features(), 200 + static_cast<std::uint64_t>(i));
    expect_bitwise_equal(mlp_ref.forward(xm), reg.infer("mlp", xm));
    expect_bitwise_equal(cnn_ref.forward(xc), reg.infer("cnn", xc));
  }
  EXPECT_EQ(reg.stats("mlp").requests, 8u);
  EXPECT_EQ(reg.stats("cnn").requests, 8u);
}

TEST(ModelRegistry, UnknownModelAndDuplicateLoad) {
  ModelRegistry reg;
  reg.load("a", tiny_package());
  EXPECT_THROW(reg.submit("b", Tensor(Shape{1, TinyMlp::kIn})), std::out_of_range);
  EXPECT_THROW(reg.stats("b"), std::out_of_range);
  EXPECT_THROW(reg.load("a", tiny_package()), std::invalid_argument);
  EXPECT_FALSE(reg.contains("b"));
  EXPECT_TRUE(reg.contains("a"));
}

TEST(ModelRegistry, UnloadDrainsInFlightRequests) {
  ServeConfig cfg;
  cfg.max_batch = 4;
  ModelRegistry reg(cfg);
  reg.load("m", tiny_package());
  const Tensor input = random_row(TinyMlp::kIn, 9);
  std::vector<std::future<Tensor>> pending;
  for (int i = 0; i < 32; ++i) pending.push_back(reg.submit("m", input));
  ASSERT_TRUE(reg.unload("m"));
  EXPECT_FALSE(reg.contains("m"));
  EXPECT_FALSE(reg.unload("m"));  // second unload: no-op
  for (auto& f : pending) {
    const Tensor y = f.get();  // accepted before the drain -> must resolve
    EXPECT_EQ(y.shape()[1], TinyMlp::kOut);
  }
}

TEST(ModelRegistry, HotReloadReusesNameAndAccumulatesStats) {
  ModelRegistry reg;
  reg.load("m", tiny_package());
  const Tensor input = random_row(TinyMlp::kIn, 10);
  const Tensor before = reg.infer("m", input);
  ASSERT_TRUE(reg.unload("m"));
  // Stats survive the unload (model currently not routed).
  EXPECT_EQ(reg.stats("m").requests, 1u);
  reg.load("m", tiny_package());
  const Tensor after = reg.infer("m", input);
  // Same deterministic package rebuilt -> same bits.
  expect_bitwise_equal(before, after);
  // Cumulative across the reload: both windows count.
  EXPECT_EQ(reg.stats("m").requests, 2u);
  const std::vector<RegistryModelStats> all = reg.stats_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "m");
  EXPECT_EQ(all[0].serve.requests, 2u);
}

TEST(ModelRegistry, ShedCounterAccumulatesAcrossHotReloads) {
  // A shed is an explicit serving decision; losing the count on reload
  // would hide overload history from /stats. Saturate a depth-1 queue
  // under a lingering batcher in two separate incarnations and the
  // merged snapshot must carry both windows' sheds.
  ServeConfig cfg;
  cfg.queue_depth = 1;
  cfg.admission_timeout_us = 0;  // full queue -> immediate QueueFullError
  cfg.max_batch = 16;
  cfg.max_wait_us = 400000;  // linger holds admitted requests in the queue
  ModelRegistry reg(cfg);
  const Tensor input = random_row(TinyMlp::kIn, 16);

  const auto shed_some = [&]() -> std::uint64_t {
    std::uint64_t sheds = 0;
    std::vector<std::future<Tensor>> accepted;
    for (int i = 0; i < 64 && sheds < 3; ++i) {
      try {
        accepted.push_back(reg.submit("m", input));
      } catch (const QueueFullError&) {
        ++sheds;
      }
    }
    for (auto& f : accepted) (void)f.get();
    return sheds;
  };

  reg.load("m", tiny_package());
  const std::uint64_t first = shed_some();
  ASSERT_GT(first, 0u) << "depth-1 lingering queue never shed";
  EXPECT_EQ(reg.stats("m").shed, first);
  ASSERT_TRUE(reg.unload("m"));
  // Retired window still reports its sheds while the model is unloaded.
  EXPECT_EQ(reg.stats("m").shed, first);

  reg.load("m", tiny_package());
  const std::uint64_t second = shed_some();
  ASSERT_GT(second, 0u);
  const ServeStatsSnapshot merged = reg.stats("m");
  EXPECT_EQ(merged.shed, first + second);
  // Errors ride the same merge path; none were provoked here.
  EXPECT_EQ(merged.errors, 0u);
  ASSERT_TRUE(reg.unload("m"));
  EXPECT_EQ(reg.stats("m").shed, first + second);
}

TEST(ModelRegistry, StatsStayVisibleWhileDraining) {
  ServeConfig cfg;
  cfg.max_batch = 1;
  ModelRegistry reg(cfg);
  reg.load("m", tiny_package());
  const Tensor input = random_row(TinyMlp::kIn, 14);
  std::vector<std::future<Tensor>> pending;
  for (int i = 0; i < 48; ++i) pending.push_back(reg.submit("m", input));
  std::thread unloader([&] { reg.unload("m"); });
  // While the unload drains (and after it retires the window), the model
  // must never vanish from stats: no out_of_range, no dropped row.
  for (int i = 0; i < 200; ++i) {
    (void)reg.stats("m");
    bool found = false;
    for (const RegistryModelStats& m : reg.stats_all()) found = found || m.name == "m";
    EXPECT_TRUE(found) << "iteration " << i;
    std::this_thread::yield();
  }
  unloader.join();
  for (auto& f : pending) (void)f.get();
  EXPECT_EQ(reg.stats("m").requests, 48u);
}

TEST(ModelRegistry, MergedPercentilesComeFromLargestSingleWindow) {
  ModelRegistry reg;
  const Tensor input = random_row(TinyMlp::kIn, 15);
  const auto serve_window = [&](int n) {
    reg.load("m", tiny_package());
    for (int i = 0; i < n; ++i) (void)reg.infer("m", input);
    ASSERT_TRUE(reg.unload("m"));
  };
  // Three windows across two hot reloads: 10, 10, then 15 requests. The
  // accumulated total after two windows (20) must not outvote the larger
  // third window when picking which percentiles to report.
  serve_window(10);
  serve_window(10);
  serve_window(15);
  const ServeStatsSnapshot s = reg.stats("m");
  EXPECT_EQ(s.requests, 35u);
  EXPECT_EQ(s.percentile_window, 15u);
}

TEST(ModelRegistry, PinnedSessionSubmitThrowsAfterUnload) {
  ModelRegistry reg;
  reg.load("m", tiny_package());
  const std::shared_ptr<InferenceSession> pinned = reg.session("m");
  ASSERT_NE(pinned, nullptr);
  ASSERT_TRUE(reg.unload("m"));
  // The pinned session outlives the unload but its queue is closed.
  EXPECT_THROW(pinned->submit(random_row(TinyMlp::kIn, 11)), std::runtime_error);
  EXPECT_EQ(reg.session("m"), nullptr);
}

TEST(ModelRegistry, ConcurrentMixedTrafficBitExact) {
  QuantizedModelPackage a = tiny_package();
  QuantizedModelPackage b = tiny8_package();
  const QuantizedModelRunner ref_a(a);
  const QuantizedModelRunner ref_b(b);

  ModelRegistry reg;
  reg.load("a", tiny_package());
  reg.load("b", tiny8_package());

  constexpr int kClients = 6, kPerClient = 24;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(300 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        const bool use_a = rng.bernoulli(0.5);
        const Tensor x = random_row(
            TinyMlp::kIn, 1000 + static_cast<std::uint64_t>(c * kPerClient + i));
        const Tensor got = reg.infer(use_a ? "a" : "b", x);
        const Tensor want = use_a ? ref_a.forward(x) : ref_b.forward(x);
        for (std::int64_t j = 0; j < want.numel(); ++j) {
          if (got[j] != want[j]) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  std::uint64_t total = 0;
  for (const RegistryModelStats& m : reg.stats_all()) total += m.serve.requests;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(ModelRegistry, ConcurrentReloadNeverCorruptsResponses) {
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner ref(pkg);

  ModelRegistry reg;
  reg.load("m", tiny_package());
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(400 + static_cast<std::uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        const Tensor x = random_row(TinyMlp::kIn, rng.next_u64());
        Tensor got;
        try {
          got = reg.infer("m", x);
        } catch (const std::exception&) {
          continue;  // mid-reload: clean rejection is the contract
        }
        const Tensor want = ref.forward(x);
        for (std::int64_t j = 0; j < want.numel(); ++j) {
          if (got[j] != want[j]) {
            wrong.fetch_add(1);
            break;
          }
        }
        served.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < 6; ++r) {
    reg.unload("m");
    reg.load("m", tiny_package());
  }
  // Let traffic flow against the final incarnation before stopping.
  while (served.load() < 16) std::this_thread::yield();
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(served.load(), 0);
}

TEST(ModelRegistry, ReloadSwapsNewWeightsWithoutUnloadGap) {
  QuantizedModelPackage a = tiny_package();
  QuantizedModelPackage b = tiny8_package();
  const QuantizedModelRunner ref_a(a);
  const QuantizedModelRunner ref_b(b);

  ModelRegistry reg;
  // On a name not yet serving, reload degrades to a plain load.
  reg.reload("m", tiny_package());
  const Tensor x = random_row(TinyMlp::kIn, 40);
  expect_bitwise_equal(ref_a.forward(x), reg.infer("m", x));

  // Swap in a differently quantized package: the new bits serve, the old
  // window's stats still count, and the name was routable throughout.
  reg.reload("m", tiny8_package());
  expect_bitwise_equal(ref_b.forward(x), reg.infer("m", x));
  EXPECT_EQ(reg.stats("m").requests, 2u);
}

TEST(ModelRegistry, ReloadRollbackLeavesOldModelServing) {
  vsq::fault::disable_all();
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner ref(pkg);

  ModelRegistry reg;
  reg.load("m", tiny_package());
  const Tensor x = random_row(TinyMlp::kIn, 41);
  expect_bitwise_equal(ref.forward(x), reg.infer("m", x));

  // Inject a failure at the last instant before the swap (replacement
  // session fully built): the reload must throw and the OLD model must
  // keep serving the same bits — no unloaded gap, no half-swap.
  {
    vsq::fault::ScopedFailpoint fp("serve.registry.reload", "error(injected reload fault)");
    EXPECT_THROW(reg.reload("m", tiny8_package()), vsq::fault::FailpointError);
  }
  EXPECT_TRUE(reg.contains("m"));
  expect_bitwise_equal(ref.forward(x), reg.infer("m", x));

  // Same contract when the replacement package itself is corrupt (the
  // validate failpoint models a torn archive read mid-reload).
  const std::string path =
      std::filesystem::temp_directory_path().string() + "/vsq_reload_rollback.vsqa";
  tiny8_package().save(path);
  {
    vsq::fault::ScopedFailpoint fp("package.load.validate", "error(corrupt package)");
    EXPECT_THROW(reg.reload_file("m", path), vsq::fault::FailpointError);
  }
  expect_bitwise_equal(ref.forward(x), reg.infer("m", x));
  std::remove(path.c_str());

  // With the faults gone the very same reload lands.
  QuantizedModelPackage pkg8 = tiny8_package();
  const QuantizedModelRunner ref8(pkg8);
  reg.reload("m", tiny8_package());
  expect_bitwise_equal(ref8.forward(x), reg.infer("m", x));
}

TEST(ModelRegistry, ReloadChurnWithInjectedFailuresNeverDropsService) {
  // The rollback guarantee under concurrency: clients hammer a model while
  // reloads churn, ~half of them failing by injection. Because reload
  // never unloads first, EVERY infer must succeed (no mid-reload rejection
  // window like unload+load has) and every row must be bit-exact — all
  // incarnations are the same deterministic package.
  vsq::fault::disable_all();
  QuantizedModelPackage pkg = tiny_package();
  const QuantizedModelRunner ref(pkg);

  ModelRegistry reg;
  reg.load("m", tiny_package());
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<int> refused{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(500 + static_cast<std::uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        const Tensor x = random_row(TinyMlp::kIn, rng.next_u64());
        Tensor got;
        try {
          got = reg.infer("m", x);
        } catch (const std::exception&) {
          refused.fetch_add(1);
          continue;
        }
        const Tensor want = ref.forward(x);
        for (std::int64_t j = 0; j < want.numel(); ++j) {
          if (got[j] != want[j]) {
            wrong.fetch_add(1);
            break;
          }
        }
        served.fetch_add(1);
      }
    });
  }
  vsq::fault::enable("serve.registry.reload", "50%error(reload churn fault)");
  int failed_reloads = 0;
  for (int r = 0; r < 12; ++r) {
    try {
      reg.reload("m", tiny_package());
    } catch (const vsq::fault::FailpointError&) {
      ++failed_reloads;
    }
  }
  vsq::fault::disable_all();
  while (served.load() < 32) std::this_thread::yield();
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_GT(failed_reloads, 0) << "injection never fired; churn test proved nothing";
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(refused.load(), 0) << "reload opened a service gap";
  EXPECT_GT(served.load(), 0);
}

TEST(ModelRegistry, LoadFileRoundTripAndErrors) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string path = dir + "/vsq_registry_pkg.vsqa";
  QuantizedModelPackage pkg = tiny_package();
  pkg.save(path);
  const QuantizedModelRunner ref(pkg);

  ModelRegistry reg;
  reg.load_file("disk", path);
  const Tensor x = random_row(TinyMlp::kIn, 12);
  expect_bitwise_equal(ref.forward(x), reg.infer("disk", x));

  // Missing file: clean throw, registry untouched.
  EXPECT_THROW(reg.load_file("nope", dir + "/does_not_exist.vsqa"), std::runtime_error);
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_TRUE(reg.contains("disk"));
  std::remove(path.c_str());
}

TEST(ModelRegistry, PrintStatsListsEveryModelAndTotal) {
  ModelRegistry reg;
  reg.load("x", tiny_package());
  reg.load("y", tiny8_package());
  (void)reg.infer("x", random_row(TinyMlp::kIn, 13));
  std::ostringstream os;
  reg.print_stats(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("y"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace vsq
