# Chaos smoke test: vsq_soak --chaos under the full bit-exactness oracle.
#
# A seeded failpoint storm (src/fault/failpoint.h) randomly arms and
# disarms injection across the serving stack while concurrent clients
# hammer a 2-model registry: injected forward faults, worker deaths and
# stalls (watchdog restarts), rollback-safe reload failures, torn
# response writes, dropped/refused connections. The gates:
#
#   - every served row is bit-identical to a sequential reference runner
#     (any injected fault corrupting even one output bit fails the run);
#   - every injected fault surfaces as a clean typed status, counted
#     `faulted` — a hang or crash blows the exit code / timeout;
#   - at least one failpoint actually fired (a storm that never landed
#     proves nothing);
#   - after the storm, recovery probes must serve EVERY model bit-exactly
#     again (watchdog restarts and reload rollbacks leave no damage);
#   - RSS stays flat across the run (fault churn must not leak).
#
# Two legs: in-process (registry API) and over TCP (--net), because the
# fault surfaces differ (broken promises vs wire statuses and torn
# frames). Pass/fail rides on vsq_soak's exit code plus output markers.
# Invoked from ctest with -DVSQ_SOAK=<path> -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")

execute_process(
  COMMAND "${VSQ_SOAK}" --chaos --builtin=tiny,tiny8
          --clients=6 --requests=500 --burst-max=4 --reload-every=50
          --chaos-interval-ms=15 --seed=3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_soak --chaos (in-process) output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_soak --chaos failed with exit code ${rc}")
endif()
if(NOT out MATCHES "responses verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_soak --chaos did not report the differential audit")
endif()
if(NOT out MATCHES "chaos storm: [1-9]")
  message(FATAL_ERROR "vsq_soak --chaos storm never fired a failpoint")
endif()
if(NOT out MATCHES "post-chaos recovery probes passed")
  message(FATAL_ERROR "vsq_soak --chaos did not run recovery probes")
endif()

execute_process(
  COMMAND "${VSQ_SOAK}" --chaos --net --builtin=tiny,tiny8
          --clients=6 --requests=500 --burst-max=4 --reload-every=50
          --chaos-interval-ms=15 --seed=5
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_soak --chaos --net output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_soak --chaos --net failed with exit code ${rc}")
endif()
if(NOT out MATCHES "responses verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_soak --chaos --net did not report the differential audit")
endif()
if(NOT out MATCHES "chaos storm: [1-9]")
  message(FATAL_ERROR "vsq_soak --chaos --net storm never fired a failpoint")
endif()
if(NOT out MATCHES "post-chaos recovery probes passed")
  message(FATAL_ERROR "vsq_soak --chaos --net did not run recovery probes")
endif()
if(NOT out MATCHES "rss: ")
  message(FATAL_ERROR "vsq_soak --chaos --net did not report the RSS gate")
endif()
