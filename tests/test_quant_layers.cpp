#include <gtest/gtest.h>

#include "exp/experiment_context.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

void calibrate_with(QuantizableGemm& g, Layer& layer, const Tensor& sample) {
  g.set_quant_mode(QuantMode::kCalibrate);
  layer.forward(sample, false);
  g.calibrate_finalize();
  g.set_quant_mode(QuantMode::kQuantEval);
}

TEST(QuantLinear, EightBitCloseToFp32) {
  Rng rng(1);
  Linear l("l", 32, 16, rng);
  const Tensor x = random_tensor(Shape{8, 32}, rng);
  const Tensor ref = l.forward(x, false);

  l.set_quant(specs::weight_coarse(8), specs::act_coarse(8, /*is_unsigned=*/false));
  calibrate_with(l, l, x);
  const Tensor q = l.forward(x, false);
  EXPECT_GT(sqnr_db(ref, q), 30.0);
  l.set_quant_mode(QuantMode::kOff);
  const Tensor off = l.forward(x, false);
  EXPECT_LT(max_abs_diff(ref, off), 1e-6f);
}

TEST(QuantLinear, PerVectorBeatsPerChannelAt4Bits) {
  Rng rng(2);
  Linear l("l", 64, 32, rng);
  // Long-tailed weights: coarse scales suffer.
  for (auto& v : l.weight().value.span()) v = static_cast<float>(rng.laplace(0.3));
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.4));
  const Tensor ref = l.forward(x, false);

  l.set_quant(specs::weight_coarse(4), specs::act_coarse(4, false));
  calibrate_with(l, l, x);
  const double sqnr_coarse = sqnr_db(ref, l.forward(x, false));

  l.set_quant(specs::weight_pv(4, ScaleDtype::kFp32), specs::act_pv(4, false, ScaleDtype::kFp32));
  calibrate_with(l, l, x);
  const double sqnr_pv = sqnr_db(ref, l.forward(x, false));
  EXPECT_GT(sqnr_pv, sqnr_coarse + 3.0);  // at least ~3 dB better
}

TEST(QuantLinear, TwoLevelTracksFp32Scales) {
  Rng rng(3);
  Linear l("l", 64, 16, rng);
  const Tensor x = random_tensor(Shape{8, 64}, rng);
  const Tensor ref = l.forward(x, false);

  l.set_quant(specs::weight_pv(4, ScaleDtype::kFp32), specs::act_pv(4, false, ScaleDtype::kFp32));
  calibrate_with(l, l, x);
  const double sqnr_fp = sqnr_db(ref, l.forward(x, false));

  l.set_quant(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
              specs::act_pv(4, false, ScaleDtype::kTwoLevelInt, 6));
  calibrate_with(l, l, x);
  const double sqnr_tl = sqnr_db(ref, l.forward(x, false));
  EXPECT_GT(sqnr_tl, sqnr_fp - 3.0);  // within ~3 dB of fp32 scales
}

TEST(QuantLinear, CalibrationRequiredBeforeEval) {
  Rng rng(4);
  Linear l("l", 8, 4, rng);
  l.set_quant(specs::weight_coarse(8), specs::act_coarse(8, false));  // static act
  l.set_quant_mode(QuantMode::kQuantEval);
  EXPECT_THROW(l.forward(random_tensor(Shape{2, 8}, rng), false), std::logic_error);
}

TEST(QuantLinear, DynamicActsNeedNoCalibration) {
  Rng rng(5);
  Linear l("l", 8, 4, rng);
  l.set_quant(specs::weight_coarse(8), specs::act_pv(8, false, ScaleDtype::kFp32));
  l.set_quant_mode(QuantMode::kQuantEval);
  EXPECT_NO_THROW(l.forward(random_tensor(Shape{2, 8}, rng), false));
}

TEST(QuantLinear, QatBackwardRunsAndProducesGrads) {
  Rng rng(6);
  Linear l("l", 16, 8, rng);
  l.set_quant(specs::weight_pv(4, ScaleDtype::kFp32), specs::act_pv(4, false, ScaleDtype::kFp32));
  l.set_quant_mode(QuantMode::kQat);
  const Tensor x = random_tensor(Shape{4, 16}, rng);
  const Tensor y = l.forward(x, true);
  for (Param* p : l.params()) p->zero_grad();
  Tensor g(y.shape());
  g.fill(1.0f);
  const Tensor gx = l.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  float grad_mag = 0;
  for (const float v : l.weight().grad.span()) grad_mag += std::abs(v);
  EXPECT_GT(grad_mag, 0.0f);
}

TEST(QuantLinear, QatSteTracksQuantizedOperands) {
  // Under QAT the backward must use the *quantized* weights for dX.
  Rng rng(7);
  Linear l("l", 8, 4, rng, /*has_bias=*/false);
  l.set_quant(specs::weight_pv(3, ScaleDtype::kFp32), QuantSpec::disabled());
  l.set_quant_mode(QuantMode::kQat);
  const Tensor x = random_tensor(Shape{2, 8}, rng);
  l.forward(x, true);
  Tensor g(Shape{2, 4});
  g.fill(1.0f);
  const Tensor gx = l.backward(g);
  // Reference: dX = g * Wq where Wq is the fake-quantized weight matrix.
  const QuantizedOperand qw = quantize_weights(l.weight().value, l.weight_spec());
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 8; ++c) {
      float ref = 0;
      for (std::int64_t o = 0; o < 4; ++o) ref += qw.fake.at2(o, c);
      EXPECT_NEAR(gx.at2(r, c), ref, 1e-5f);
    }
  }
}

TEST(QuantConv, ChannelBlockKeepsVectorsWithinChannels) {
  // in_c = 5 (not divisible by V=4): per-vector scales must reset at each
  // kernel position, giving ceil(5/4)=2 vectors per (kh,kw) cell.
  Rng rng(8);
  Conv2d c("c", 5, 4, 3, 1, 1, rng);
  c.set_quant(specs::weight_pv(4, ScaleDtype::kFp32, 6, /*vector_size=*/4),
              specs::act_pv(8, false, ScaleDtype::kFp32, 8, 4));
  EXPECT_EQ(c.weight_spec().channel_block, 5);
  const VectorLayout l = c.weight_spec().layout(3 * 3 * 5);
  EXPECT_EQ(l.num_blocks(), 9);
  EXPECT_EQ(l.vecs_per_block(), 2);
}

TEST(QuantConv, EightBitCloseToFp32) {
  Rng rng(9);
  Conv2d c("c", 4, 8, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{2, 6, 6, 4}, rng);
  const Tensor ref = c.forward(x, false);
  c.set_quant(specs::weight_pv(8, ScaleDtype::kTwoLevelInt, 6),
              specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8));
  calibrate_with(c, c, x);
  EXPECT_GT(sqnr_db(ref, c.forward(x, false)), 30.0);
}

TEST(QuantConv, UnsignedActsForPostReluInputs) {
  Rng rng(10);
  Conv2d c("c", 4, 4, 3, 1, 1, rng);
  Tensor x = random_tensor(Shape{1, 4, 4, 4}, rng);
  for (auto& v : x.span()) v = std::max(v, 0.0f);  // post-ReLU
  const Tensor ref = c.forward(x, false);
  // 8-bit weights so the activation quantization error dominates.
  c.set_quant(specs::weight_pv(8, ScaleDtype::kFp32), specs::act_pv(4, true, ScaleDtype::kFp32));
  calibrate_with(c, c, x);
  const double sqnr_u = sqnr_db(ref, c.forward(x, false));
  c.set_quant(specs::weight_pv(8, ScaleDtype::kFp32), specs::act_pv(4, false, ScaleDtype::kFp32));
  calibrate_with(c, c, x);
  const double sqnr_s = sqnr_db(ref, c.forward(x, false));
  // Unsigned gets twice the levels for non-negative data (~6 dB headroom).
  EXPECT_GT(sqnr_u, sqnr_s + 2.0);
}

TEST(ActivationQuantizer, StaticPerVectorRequiresFixedShape) {
  QuantSpec s = specs::act_pv(8, false, ScaleDtype::kFp32);
  s.dynamic = false;
  ActivationQuantizer aq(s);
  Rng rng(11);
  const Tensor x = random_tensor(Shape{4, 16}, rng);
  aq.observe(x);
  aq.finalize();
  EXPECT_NO_THROW(aq.apply(x));
  EXPECT_THROW(aq.apply(random_tensor(Shape{8, 16}, rng)), std::invalid_argument);
}

TEST(ActivationQuantizer, TwoLevelGammaFromCalibration) {
  QuantSpec s = specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 6);
  ActivationQuantizer aq(s);
  Rng rng(12);
  const Tensor x = random_tensor(Shape{16, 32}, rng);
  aq.observe(x);
  aq.finalize();
  const float expected_gamma = scale_from_amax(amax_per_tensor(x), s.fmt) /
                               static_cast<float>(s.scale_fmt.qmax());
  EXPECT_NEAR(aq.gamma(), expected_gamma, expected_gamma * 1e-5);
}

TEST(ActivationQuantizer, DisabledSpecPassesThrough) {
  ActivationQuantizer aq(QuantSpec::disabled());
  Rng rng(13);
  const Tensor x = random_tensor(Shape{2, 4}, rng);
  const Tensor y = aq.apply(x);
  EXPECT_LT(max_abs_diff(x, y), 1e-9f);
}

}  // namespace
}  // namespace vsq
