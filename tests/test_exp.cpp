#include <gtest/gtest.h>

#include "exp/experiment_context.h"
#include "exp/ptq.h"
#include "models/resnetv.h"
#include "util/rng.h"

namespace vsq {
namespace {

TEST(Specs, WeightCoarseDefaults) {
  const QuantSpec s = specs::weight_coarse(4);
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.fmt.bits, 4);
  EXPECT_TRUE(s.fmt.is_signed);
  EXPECT_EQ(s.granularity, Granularity::kPerRow);
}

TEST(Specs, ActPvIsDynamic) {
  const QuantSpec s = specs::act_pv(8, true, ScaleDtype::kTwoLevelInt, 10);
  EXPECT_TRUE(s.dynamic);
  EXPECT_FALSE(s.fmt.is_signed);
  EXPECT_EQ(s.scale_fmt.bits, 10);
  EXPECT_EQ(s.granularity, Granularity::kPerVector);
}

TEST(Specs, AccuracyKeyDistinguishesConfigs) {
  const QuantSpec w4 = specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 4);
  const QuantSpec w6 = specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6);
  const QuantSpec a = specs::act_pv(8, true, ScaleDtype::kTwoLevelInt, 8);
  EXPECT_NE(accuracy_key("m", w4, a), accuracy_key("m", w6, a));
  EXPECT_EQ(accuracy_key("m", w4, a), accuracy_key("m", w4, a));
  EXPECT_NE(accuracy_key("m1", w4, a), accuracy_key("m2", w4, a));
}

TEST(Specs, KeyEncodesCalibration) {
  QuantSpec max_calib = specs::act_coarse(8, true);
  QuantSpec entropy = specs::act_coarse(8, true, CalibSpec{CalibMethod::kEntropy, 0});
  QuantSpec pct = specs::act_coarse(8, true, CalibSpec{CalibMethod::kPercentile, 99.9});
  EXPECT_NE(max_calib.str(), entropy.str());
  EXPECT_NE(entropy.str(), pct.str());
  EXPECT_NE(pct.str(), specs::act_coarse(8, true, CalibSpec{CalibMethod::kPercentile, 99.99}).str());
}

TEST(ApplyQuantSpecs, FirstLayerActsForcedSigned) {
  ResNetVConfig cfg;
  cfg.in_h = 8;
  cfg.in_w = 8;
  cfg.widths = {8};
  cfg.blocks_per_stage = 1;
  cfg.classes = 2;
  ResNetV model(cfg);
  auto gemms = model.gemms();
  apply_quant_specs(gemms, specs::weight_coarse(8), specs::act_coarse(8, /*is_unsigned=*/true));
  EXPECT_TRUE(gemms.front()->act_spec().fmt.is_signed) << "stem sees raw (signed) inputs";
  EXPECT_FALSE(gemms.back()->act_spec().fmt.is_signed) << "later layers keep unsigned";
}

TEST(ApplyQuantSpecs, ModeTransitions) {
  ResNetVConfig cfg;
  cfg.in_h = 8;
  cfg.in_w = 8;
  cfg.widths = {8};
  cfg.blocks_per_stage = 1;
  cfg.classes = 2;
  ResNetV model(cfg);
  auto gemms = model.gemms();
  apply_quant_specs(gemms, specs::weight_coarse(8),
                    specs::act_pv(8, true, ScaleDtype::kFp32));
  set_mode_all(gemms, QuantMode::kCalibrate);
  for (auto* g : gemms) EXPECT_EQ(g->quant_mode(), QuantMode::kCalibrate);
  // Dynamic per-vector acts need no observed batches to finalize.
  finalize_calibration(gemms);
  set_mode_all(gemms, QuantMode::kQuantEval);
  Rng rng(1);
  Tensor x(Shape{2, 8, 8, 3});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  EXPECT_NO_THROW(model.forward(x, false));
  set_mode_all(gemms, QuantMode::kOff);
}

TEST(ExperimentContext, ArtifactsDirRespectsEnv) {
  setenv("VSQ_ARTIFACTS", "/tmp/vsq_test_artifacts", 1);
  EXPECT_EQ(artifacts_dir(), "/tmp/vsq_test_artifacts");
  unsetenv("VSQ_ARTIFACTS");
}

}  // namespace
}  // namespace vsq
