#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "exp/experiment_context.h"
#include "nn/linear.h"
#include "quant/export.h"
#include "quant/learned_scale.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

class ExportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(5);
    layer_ = std::make_unique<Linear>("fc1", 64, 16, *rng_);
    x_ = random_tensor(Shape{8, 64}, *rng_);
    layer_->set_quant(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
                      specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8));
    layer_->set_quant_mode(QuantMode::kCalibrate);
    layer_->forward(x_, false);
    layer_->calibrate_finalize();
    layer_->set_quant_mode(QuantMode::kQuantEval);
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Linear> layer_;
  Tensor x_;
};

TEST_F(ExportFixture, PackagedLayerMatchesQuantEvalForward) {
  const Tensor sw = layer_->forward(x_, false);

  const QuantizedLayerPackage pkg =
      export_gemm(*layer_, layer_->bias().value.to_vector());
  const Tensor hw = run_packaged_layer(pkg, x_);
  EXPECT_LT(max_abs_diff(sw, hw), 2e-4f * (1.0f + amax_per_tensor(sw)));
}

TEST_F(ExportFixture, PackageSurvivesSaveLoad) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_pkg.vsqa";
  QuantizedModelPackage pkg;
  pkg.layers["fc1"] = export_gemm(*layer_, layer_->bias().value.to_vector());
  pkg.save(path);

  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);
  ASSERT_EQ(loaded.layers.size(), 1u);
  const Tensor a = run_packaged_layer(pkg.layers.at("fc1"), x_);
  const Tensor b = run_packaged_layer(loaded.layers.at("fc1"), x_);
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
  std::remove(path.c_str());
}

TEST_F(ExportFixture, CoarseBaselinePackageRoundTrips) {
  Linear poc("poc", 32, 8, *rng_);
  const Tensor x = random_tensor(Shape{4, 32}, *rng_);
  poc.set_quant(specs::weight_coarse(8), specs::act_coarse(8, false));
  poc.set_quant_mode(QuantMode::kCalibrate);
  poc.forward(x, false);
  poc.calibrate_finalize();
  poc.set_quant_mode(QuantMode::kQuantEval);

  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_pkg2.vsqa";
  QuantizedModelPackage pkg;
  pkg.layers["poc"] = export_gemm(poc, poc.bias().value.to_vector());
  pkg.save(path);
  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);
  const Tensor ref = poc.forward(x, false);
  const Tensor out = run_packaged_layer(loaded.layers.at("poc"), x);
  EXPECT_LT(max_abs_diff(ref, out), 2e-4f * (1.0f + amax_per_tensor(ref)));
  std::remove(path.c_str());
}

TEST(ExportErrors, RejectsUnquantizedLayer) {
  Rng rng(6);
  Linear l("l", 8, 4, rng);
  EXPECT_THROW(export_gemm(l, {}), std::invalid_argument);
}

// ---- Learned per-vector scales ----

TEST(LearnedScale, InitializesAtMaxCalibration) {
  Rng rng(7);
  const Tensor w = random_tensor(Shape{8, 32}, rng);
  const QuantFormat fmt{4, true};
  const VectorLayout layout{32, 8, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);
  const ScaleSet ref = compute_scales(w, Granularity::kPerVector, layout, fmt);
  for (std::size_t i = 0; i < ref.scales.size(); ++i) {
    EXPECT_NEAR(lsq.scales().scales[i], ref.scales[i], ref.scales[i] * 1e-6 + 1e-9);
  }
}

TEST(LearnedScale, FitReducesReconstructionError) {
  Rng rng(8);
  Tensor w(Shape{16, 64});
  for (auto& v : w.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat fmt{3, true};
  const VectorLayout layout{64, 16, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);
  const double before = mse(w, lsq.forward(w));
  const double after = lsq.fit_reconstruction(w, 200, 5e-5f);
  EXPECT_LT(after, before);
}

TEST(LearnedScale, GradientMatchesFiniteDifference) {
  // LSQ scale gradient vs numeric differentiation of mean squared error.
  Rng rng(9);
  const Tensor w = random_tensor(Shape{2, 8}, rng);
  const QuantFormat fmt{4, true};
  const VectorLayout layout{8, 4, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);

  const auto loss = [&](const LearnedScaleQuantizer& q) {
    return mse(w, q.forward(w));
  };
  const Tensor wq = lsq.forward(w);
  Tensor go(w.shape());
  const auto n = static_cast<float>(w.numel());
  for (std::int64_t i = 0; i < w.numel(); ++i) go[i] = 2.0f * (wq[i] - w[i]) / n;
  const auto grads = lsq.backward(w, go);

  // Numeric: perturb each scale.
  for (std::size_t si = 0; si < lsq.scales().scales.size(); ++si) {
    LearnedScaleQuantizer plus = lsq, minus = lsq;
    std::vector<float> delta(lsq.scales().scales.size(), 0.0f);
    const float eps = 1e-4f;
    delta[si] = -eps;  // step() subtracts lr*grad; use it to nudge scales
    plus.step(delta, 1.0f);
    delta[si] = eps;
    minus.step(delta, 1.0f);
    const double num = (loss(plus) - loss(minus)) / (2 * eps);
    EXPECT_NEAR(grads.scale_grad[si], num, 5e-2 * (1.0 + std::abs(num))) << "scale " << si;
  }
}

TEST(LearnedScale, StepKeepsScalesPositive) {
  Rng rng(10);
  const Tensor w = random_tensor(Shape{2, 8}, rng);
  LearnedScaleQuantizer lsq(w, QuantFormat{4, true}, VectorLayout{8, 4, 0});
  std::vector<float> huge(lsq.scales().scales.size(), 1e9f);
  lsq.step(huge, 1.0f);
  for (const float s : lsq.scales().scales) EXPECT_GT(s, 0.0f);
}

}  // namespace
}  // namespace vsq
