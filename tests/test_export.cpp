#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "exp/experiment_context.h"
#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "nn/linear.h"
#include "quant/export.h"
#include "quant/learned_scale.h"
#include "serve/registry.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double scale = 1.0) {
  Tensor t(s);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

class ExportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(5);
    layer_ = std::make_unique<Linear>("fc1", 64, 16, *rng_);
    x_ = random_tensor(Shape{8, 64}, *rng_);
    layer_->set_quant(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
                      specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8));
    layer_->set_quant_mode(QuantMode::kCalibrate);
    layer_->forward(x_, false);
    layer_->calibrate_finalize();
    layer_->set_quant_mode(QuantMode::kQuantEval);
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Linear> layer_;
  Tensor x_;
};

TEST_F(ExportFixture, PackagedLayerMatchesQuantEvalForward) {
  const Tensor sw = layer_->forward(x_, false);

  const QuantizedLayerPackage pkg =
      export_gemm(*layer_, layer_->bias().value.to_vector());
  const Tensor hw = run_packaged_layer(pkg, x_);
  EXPECT_LT(max_abs_diff(sw, hw), 2e-4f * (1.0f + amax_per_tensor(sw)));
}

TEST_F(ExportFixture, PackageSurvivesSaveLoad) {
  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_pkg.vsqa";
  QuantizedModelPackage pkg;
  pkg.layers["fc1"] = export_gemm(*layer_, layer_->bias().value.to_vector());
  pkg.save(path);

  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);
  ASSERT_EQ(loaded.layers.size(), 1u);
  const Tensor a = run_packaged_layer(pkg.layers.at("fc1"), x_);
  const Tensor b = run_packaged_layer(loaded.layers.at("fc1"), x_);
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
  std::remove(path.c_str());
}

TEST_F(ExportFixture, CoarseBaselinePackageRoundTrips) {
  Linear poc("poc", 32, 8, *rng_);
  const Tensor x = random_tensor(Shape{4, 32}, *rng_);
  poc.set_quant(specs::weight_coarse(8), specs::act_coarse(8, false));
  poc.set_quant_mode(QuantMode::kCalibrate);
  poc.forward(x, false);
  poc.calibrate_finalize();
  poc.set_quant_mode(QuantMode::kQuantEval);

  const std::string path = std::filesystem::temp_directory_path() / "vsq_test_pkg2.vsqa";
  QuantizedModelPackage pkg;
  pkg.layers["poc"] = export_gemm(poc, poc.bias().value.to_vector());
  pkg.save(path);
  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);
  const Tensor ref = poc.forward(x, false);
  const Tensor out = run_packaged_layer(loaded.layers.at("poc"), x);
  EXPECT_LT(max_abs_diff(ref, out), 2e-4f * (1.0f + amax_per_tensor(ref)));
  std::remove(path.c_str());
}

TEST(ExportErrors, RejectsUnquantizedLayer) {
  Rng rng(6);
  Linear l("l", 8, 4, rng);
  EXPECT_THROW(export_gemm(l, {}), std::invalid_argument);
}

TEST(ExportRoundTrip, SixteenBitScalePackageSurvivesLoad) {
  // The widest legal scale format: 16-bit integer per-vector scales (sq is
  // uint16, MacConfig accepts up to 16). The load-side validation must not
  // confuse it with the (narrower) element-width bound.
  Rng rng(77);
  Linear layer("fc1", 32, 8, rng);
  layer.set_quant(specs::weight_pv(8, ScaleDtype::kTwoLevelInt, 16),
                  specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 16));
  layer.set_quant_mode(QuantMode::kCalibrate);
  const Tensor x = random_tensor(Shape{4, 32}, rng);
  layer.forward(x, false);
  layer.calibrate_finalize();
  layer.set_quant_mode(QuantMode::kQuantEval);
  QuantizedModelPackage pkg;
  pkg.layers["fc1"] = export_gemm(layer, layer.bias().value.to_vector());
  const std::string path =
      (std::filesystem::temp_directory_path() / "vsq_test_pkg16.vsqa").string();
  pkg.save(path);
  const QuantizedModelPackage loaded = QuantizedModelPackage::load(path);  // must not throw
  const Tensor a = run_packaged_layer(pkg.layers.at("fc1"), x);
  const Tensor b = run_packaged_layer(loaded.layers.at("fc1"), x);
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
  std::remove(path.c_str());
}

// ---- Archive robustness: corrupt .vsqa inputs must fail cleanly ----
//
// Truncated, bit-flipped and wrong-magic archives go through every load
// surface — Archive::load, QuantizedModelPackage::load, and the
// multi-model registry's load_file path — and must either load (a flip
// that only touched payload floats) or throw an ordinary exception. No
// crash, no giant allocation, no UB: the sanitizer CI job runs this suite
// under ASan/UBSan.

// A small but fully featured package (per-vector weights, two-level
// scales, bias, forward program) written to a temp file; returns its path.
// `pack_weights` selects the on-disk weight encoding (packed sub-byte
// codes vs the legacy one-float-per-code form) so the fuzz sweeps cover
// both parse paths.
std::string write_fuzz_package(const std::string& tag, bool pack_weights = true) {
  Rng rng(55);
  Linear layer("fc1", 24, 6, rng);
  layer.set_quant(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
                  specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 8));
  layer.set_quant_mode(QuantMode::kCalibrate);
  layer.forward(random_tensor(Shape{4, 24}, rng), false);
  layer.calibrate_finalize();
  layer.set_quant_mode(QuantMode::kQuantEval);
  QuantizedModelPackage pkg;
  pkg.layers["fc1"] = export_gemm(layer, layer.bias().value.to_vector());
  pkg.program = {{"fc1", false}};
  const std::string path =
      (std::filesystem::temp_directory_path() / ("vsq_fuzz_" + tag + ".vsqa")).string();
  pkg.save(path, pack_weights);
  return path;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Attempt every load surface on a (possibly corrupt) file. Success is
// allowed; anything thrown must be a std::exception. Returns true when the
// package load surfaces succeeded.
bool load_all_surfaces(const std::string& path, bool through_registry) {
  try {
    (void)Archive::load(path);
  } catch (const std::exception&) {
    return false;  // archive layer rejected it; package layers see nothing
  }
  bool pkg_ok = true;
  try {
    (void)QuantizedModelPackage::load(path);
  } catch (const std::exception&) {
    pkg_ok = false;
  }
  if (through_registry) {
    ServeConfig cfg;
    cfg.warmup = false;  // keep per-attempt cost tiny
    cfg.max_batch = 1;
    ModelRegistry reg(cfg);
    try {
      reg.load_file("fuzz", path);
      reg.unload("fuzz");
    } catch (const std::exception&) {
      // Parse or runner validation rejected it — the clean outcome.
    }
  }
  return pkg_ok;
}

TEST(ArchiveFuzz, WrongMagicFailsCleanly) {
  const std::string path = write_fuzz_package("magic");
  std::vector<char> bytes = read_bytes(path);
  ASSERT_GE(bytes.size(), 4u);
  bytes[0] = 'X';
  bytes[1] = 'Y';
  write_bytes(path, bytes);
  EXPECT_THROW((void)Archive::load(path), std::runtime_error);
  EXPECT_THROW((void)QuantizedModelPackage::load(path), std::runtime_error);
  ModelRegistry reg;
  EXPECT_THROW(reg.load_file("m", path), std::runtime_error);
  EXPECT_FALSE(reg.contains("m"));
  std::remove(path.c_str());
}

TEST(ArchiveFuzz, TruncationsFailCleanly) {
  for (const bool pack : {false, true}) {
    const std::string path =
        write_fuzz_package(pack ? "trunc_packed" : "trunc_legacy", pack);
    const std::vector<char> bytes = read_bytes(path);
    ASSERT_GT(bytes.size(), 64u);
    std::vector<std::size_t> cuts{0, 1, 3, 4, 7, 8, 11, 12, 15, 16, 20, 40, 64};
    for (std::size_t frac = 1; frac < 8; ++frac) cuts.push_back(bytes.size() * frac / 8);
    cuts.push_back(bytes.size() - 1);
    for (const std::size_t cut : cuts) {
      write_bytes(path, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)});
      EXPECT_THROW((void)Archive::load(path), std::runtime_error)
          << "cut=" << cut << " pack=" << pack;
      EXPECT_THROW((void)QuantizedModelPackage::load(path), std::runtime_error)
          << "cut=" << cut << " pack=" << pack;
    }
    // The registry path on a representative truncation.
    write_bytes(path,
                {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2)});
    ModelRegistry reg;
    EXPECT_THROW(reg.load_file("m", path), std::runtime_error);
    std::remove(path.c_str());
  }
}

TEST(ArchiveFuzz, BitFlipsNeverCrash) {
  for (const bool pack : {false, true}) {
    const std::string path =
        write_fuzz_package(pack ? "flip_packed" : "flip_legacy", pack);
    const std::vector<char> bytes = read_bytes(path);
    std::size_t loaded = 0, rejected = 0;
    // Dense sweep over the header + structural region, sparse over the
    // payload: every byte of the first 96, then every 7th byte after, with
    // a rotating bit position. Deterministic, so a failure reproduces.
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < std::min<std::size_t>(96, bytes.size()); ++i)
      positions.push_back(i);
    for (std::size_t i = 96; i < bytes.size(); i += 7) positions.push_back(i);
    for (std::size_t n = 0; n < positions.size(); ++n) {
      const std::size_t pos = positions[n];
      std::vector<char> corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (n % 8)));
      write_bytes(path, corrupt);
      // The registry spin-up is heavier than a parse; exercise it on a
      // deterministic subsample.
      if (load_all_surfaces(path, /*through_registry=*/n % 16 == 0)) {
        ++loaded;
      } else {
        ++rejected;
      }
    }
    // The sweep must have exercised both outcomes: flips in payload floats
    // load fine (legacy), or at minimum flips in structural fields get
    // rejected. The packed encoding validates every weight byte (range,
    // integrality, tail zeros), so a payload flip there may also reject —
    // only the legacy form guarantees some flips still load.
    if (!pack) {
      EXPECT_GT(loaded, 0u);
    }
    EXPECT_GT(rejected, 0u);
    std::remove(path.c_str());
  }
}

// ---- Sequence-package entries (__seq__, __ln__/*, __emb__/*) ------------
//
// The transformer package adds three new archive entry families: sequence
// geometry, fp32 layernorm parameters, and fp32 embedding tables. The
// same robustness contract applies — corrupting any of them must surface
// as a clean std::runtime_error (or load fine when only payload floats
// moved), never a crash or a poisoned runner.

std::string write_seq_fuzz_package(const std::string& tag) {
  const QuantizedModelPackage pkg = tiny_bert_package(MacConfig::parse("4/8/6/10"));
  const std::string path =
      (std::filesystem::temp_directory_path() / ("vsq_fuzz_" + tag + ".vsqa")).string();
  pkg.save(path);
  return path;
}

// Byte offsets of `needle` in `haystack` (entry names are stored verbatim
// in the archive, so this locates each new entry's neighborhood).
std::vector<std::size_t> find_all(const std::vector<char>& haystack, const std::string& needle) {
  std::vector<std::size_t> hits;
  if (needle.empty() || haystack.size() < needle.size()) return hits;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (std::memcmp(haystack.data() + i, needle.data(), needle.size()) == 0) hits.push_back(i);
  }
  return hits;
}

TEST(ArchiveFuzz, SequencePackageTruncationsFailCleanly) {
  const std::string path = write_seq_fuzz_package("seq_trunc");
  const std::vector<char> bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 256u);
  std::vector<std::size_t> cuts{0, 1, 4, 8, 16, 64};
  for (std::size_t frac = 1; frac < 8; ++frac) cuts.push_back(bytes.size() * frac / 8);
  cuts.push_back(bytes.size() - 1);
  // Cut right at and just inside each new entry family, so the loader's
  // "truncated" branches for __seq__/__ln__/__emb__ actually execute.
  for (const std::string name : {"__seq__", "__ln__/", "__emb__/"}) {
    for (const std::size_t at : find_all(bytes, name)) {
      cuts.push_back(at);
      cuts.push_back(at + name.size() + 4);
    }
  }
  for (const std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    write_bytes(path, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)});
    EXPECT_THROW((void)Archive::load(path), std::runtime_error) << "cut=" << cut;
    EXPECT_THROW((void)QuantizedModelPackage::load(path), std::runtime_error) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

TEST(ArchiveFuzz, SequenceEntryBitFlipsNeverCrash) {
  const std::string path = write_seq_fuzz_package("seq_flip");
  const std::vector<char> bytes = read_bytes(path);
  // Dense sweep over each new entry's neighborhood (name + dims + the
  // leading payload words: geometry fields, the ln/emb self-describing
  // headers), sparse over the rest of the file.
  std::vector<std::size_t> positions;
  for (const std::string name : {"__seq__", "__ln__/", "__emb__/"}) {
    for (const std::size_t at : find_all(bytes, name)) {
      for (std::size_t i = at; i < std::min(bytes.size(), at + 96); ++i) positions.push_back(i);
    }
  }
  ASSERT_FALSE(positions.empty()) << "no sequence entries found in the archive";
  for (std::size_t i = 0; i < bytes.size(); i += 97) positions.push_back(i);
  std::size_t loaded = 0, rejected = 0;
  for (std::size_t n = 0; n < positions.size(); ++n) {
    const std::size_t pos = positions[n];
    std::vector<char> corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (n % 8)));
    write_bytes(path, corrupt);
    if (load_all_surfaces(path, /*through_registry=*/n % 64 == 0)) {
      ++loaded;
    } else {
      ++rejected;
    }
  }
  // Both outcomes must occur: flips in fp payload (embedding/layernorm
  // floats) may load, flips in names/dims/geometry must reject.
  EXPECT_GT(loaded, 0u);
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
}

// ---- Sub-byte packed weight encoding: forward/backward compatibility ----
//
// PR introducing q_packed: new saves pack 24/bits weight codes per float
// (biased-unsigned, exact integers); old archives carry one float per code
// under name/q. Both parse paths must stay live, and a model must run
// bit-identically regardless of which encoding it was loaded from.

void expect_tensors_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(PackedArchiveCompat, LegacyArchiveLoadsAndRunsBitIdenticalToPacked) {
  // tiny_int_legacy.vsqa is the committed pre-q_packed golden; tiny_int.vsqa
  // is the same model re-exported in the packed encoding.
  const std::string legacy = std::string(VSQ_GOLDEN_DIR) + "/tiny_int_legacy.vsqa";
  const std::string packed = std::string(VSQ_GOLDEN_DIR) + "/tiny_int.vsqa";
  const QuantizedModelPackage from_legacy = QuantizedModelPackage::load(legacy);
  const QuantizedModelPackage from_packed = QuantizedModelPackage::load(packed);
  ASSERT_EQ(from_legacy.layers.size(), from_packed.layers.size());
  for (const auto& [name, l] : from_legacy.layers) {
    ASSERT_TRUE(from_packed.layers.count(name));
    EXPECT_EQ(l.weights.q, from_packed.layers.at(name).weights.q)
        << "decoded weight codes differ for layer " << name;
  }
  const QuantizedModelRunner run_legacy(from_legacy), run_packed(from_packed);
  Rng rng(909);
  Tensor x(Shape{4, run_legacy.in_features()});
  for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  expect_tensors_bitwise_equal(run_legacy.forward(x), run_packed.forward(x));
}

TEST(PackedArchiveCompat, LegacyConvArchiveRunsBitIdenticalToPacked) {
  const std::string legacy = std::string(VSQ_GOLDEN_DIR) + "/tiny_conv_legacy.vsqa";
  const std::string packed = std::string(VSQ_GOLDEN_DIR) + "/tiny_conv.vsqa";
  // The runner points into its package; both must outlive the forwards.
  const QuantizedModelPackage from_legacy = QuantizedModelPackage::load(legacy);
  const QuantizedModelPackage from_packed = QuantizedModelPackage::load(packed);
  const QuantizedModelRunner run_legacy(from_legacy), run_packed(from_packed);
  Rng rng(910);
  Tensor x(Shape{2, run_legacy.in_features()});
  for (auto& v : x.span()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  expect_tensors_bitwise_equal(run_legacy.forward(x), run_packed.forward(x));
}

TEST(PackedArchiveCompat, BothEncodingsAreSaveFixedPoints) {
  // save(load(x)) must be byte-identical to x for BOTH encodings: the
  // legacy writer (pack_weights=false) reproduces a legacy archive, the
  // packed writer reproduces a packed one — compat code must not silently
  // rewrite archives it merely passed through.
  const std::string legacy = std::string(VSQ_GOLDEN_DIR) + "/tiny_int_legacy.vsqa";
  const std::string packed = std::string(VSQ_GOLDEN_DIR) + "/tiny_int.vsqa";
  const std::string tmp =
      (std::filesystem::temp_directory_path() / "vsq_compat_fixed_point.vsqa").string();
  QuantizedModelPackage::load(legacy).save(tmp, /*pack_weights=*/false);
  EXPECT_EQ(read_bytes(tmp), read_bytes(legacy))
      << "legacy-encoding writer drifted from the committed pre-packed archive";
  QuantizedModelPackage::load(packed).save(tmp, /*pack_weights=*/true);
  EXPECT_EQ(read_bytes(tmp), read_bytes(packed))
      << "packed-encoding writer is not a round-trip fixed point";
  std::remove(tmp.c_str());
}

// ---- Learned per-vector scales ----

TEST(LearnedScale, InitializesAtMaxCalibration) {
  Rng rng(7);
  const Tensor w = random_tensor(Shape{8, 32}, rng);
  const QuantFormat fmt{4, true};
  const VectorLayout layout{32, 8, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);
  const ScaleSet ref = compute_scales(w, Granularity::kPerVector, layout, fmt);
  for (std::size_t i = 0; i < ref.scales.size(); ++i) {
    EXPECT_NEAR(lsq.scales().scales[i], ref.scales[i], ref.scales[i] * 1e-6 + 1e-9);
  }
}

TEST(LearnedScale, FitReducesReconstructionError) {
  Rng rng(8);
  Tensor w(Shape{16, 64});
  for (auto& v : w.span()) v = static_cast<float>(rng.laplace(0.5));
  const QuantFormat fmt{3, true};
  const VectorLayout layout{64, 16, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);
  const double before = mse(w, lsq.forward(w));
  const double after = lsq.fit_reconstruction(w, 200, 5e-5f);
  EXPECT_LT(after, before);
}

TEST(LearnedScale, GradientMatchesFiniteDifference) {
  // LSQ scale gradient vs numeric differentiation of mean squared error.
  Rng rng(9);
  const Tensor w = random_tensor(Shape{2, 8}, rng);
  const QuantFormat fmt{4, true};
  const VectorLayout layout{8, 4, 0};
  LearnedScaleQuantizer lsq(w, fmt, layout);

  const auto loss = [&](const LearnedScaleQuantizer& q) {
    return mse(w, q.forward(w));
  };
  const Tensor wq = lsq.forward(w);
  Tensor go(w.shape());
  const auto n = static_cast<float>(w.numel());
  for (std::int64_t i = 0; i < w.numel(); ++i) go[i] = 2.0f * (wq[i] - w[i]) / n;
  const auto grads = lsq.backward(w, go);

  // Numeric: perturb each scale.
  for (std::size_t si = 0; si < lsq.scales().scales.size(); ++si) {
    LearnedScaleQuantizer plus = lsq, minus = lsq;
    std::vector<float> delta(lsq.scales().scales.size(), 0.0f);
    const float eps = 1e-4f;
    delta[si] = -eps;  // step() subtracts lr*grad; use it to nudge scales
    plus.step(delta, 1.0f);
    delta[si] = eps;
    minus.step(delta, 1.0f);
    const double num = (loss(plus) - loss(minus)) / (2 * eps);
    EXPECT_NEAR(grads.scale_grad[si], num, 5e-2 * (1.0 + std::abs(num))) << "scale " << si;
  }
}

TEST(LearnedScale, StepKeepsScalesPositive) {
  Rng rng(10);
  const Tensor w = random_tensor(Shape{2, 8}, rng);
  LearnedScaleQuantizer lsq(w, QuantFormat{4, true}, VectorLayout{8, 4, 0});
  std::vector<float> huge(lsq.scales().scales.size(), 1e9f);
  lsq.step(huge, 1.0f);
  for (const float s : lsq.scales().scales) EXPECT_GT(s, 0.0f);
}

}  // namespace
}  // namespace vsq
