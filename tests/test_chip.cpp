#include <gtest/gtest.h>

#include "hw/chip.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace vsq {
namespace {

TEST(Chip, PeakThroughput) {
  ChipConfig c;  // 4x4 PEs x 8 units x V=16
  EXPECT_EQ(c.peak_macs_per_cycle(), 4 * 4 * 8 * 16);
}

TEST(Chip, PerfectlyTiledGemmReachesFullUtilization) {
  ChipConfig c;
  const Chip chip(c);
  // rows = 4 (pe_rows), outs = 32 (pe_cols*units), cols = 64 (4 vectors).
  const LayerMapping m = chip.map_gemm("g", GemmDims{4, 64, 32});
  EXPECT_EQ(m.cycles, 1 * 1 * 4);
  EXPECT_NEAR(m.utilization, 1.0, 1e-9);
}

TEST(Chip, EdgeTilesLowerUtilization) {
  ChipConfig c;
  const Chip chip(c);
  // rows = 5 -> two row tiles, second nearly empty.
  const LayerMapping m = chip.map_gemm("g", GemmDims{5, 64, 32});
  EXPECT_EQ(m.cycles, 2 * 1 * 4);
  EXPECT_LT(m.utilization, 0.7);
}

TEST(Chip, TailVectorsCostCycles) {
  ChipConfig c;
  const Chip chip(c);
  // channel_block = 5 with V=16: each 5-wide block is one (mostly idle)
  // vector; cols = 45 -> 9 blocks -> 9 vectors instead of ceil(45/16)=3.
  const LayerMapping blocked = chip.map_gemm("g", GemmDims{4, 45, 32}, /*channel_block=*/5);
  const LayerMapping flat = chip.map_gemm("g", GemmDims{4, 48, 32}, 0);
  EXPECT_GT(blocked.cycles, flat.cycles);
  EXPECT_LT(blocked.utilization, flat.utilization);
}

TEST(Chip, EnergyScalesWithMacsAndConfig) {
  ChipConfig c8;  // 8/8/-/-
  ChipConfig c4;
  c4.mac.wt_bits = 4;
  c4.mac.act_bits = 4;
  const Chip chip8(c8), chip4(c4);
  const GemmDims d{16, 128, 64};
  const LayerMapping m8 = chip8.map_gemm("g", d);
  const LayerMapping m4 = chip4.map_gemm("g", d);
  EXPECT_GT(m8.energy, m4.energy);
  EXPECT_NEAR(m8.energy, static_cast<double>(d.macs()), d.macs() * 1e-6);  // baseline = 1.0/op
}

TEST(Chip, MapModelAggregates) {
  Rng rng(3);
  Linear a("a", 64, 32, rng), b("b", 32, 16, rng);
  Tensor x(Shape{8, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  const Tensor mid = a.forward(x, false);
  b.forward(mid, false);

  ChipConfig c;
  const Chip chip(c);
  const ChipReport r = chip.map_model({&a, &b});
  ASSERT_EQ(r.layers.size(), 2u);
  EXPECT_EQ(r.total_macs, 8 * 64 * 32 + 8 * 32 * 16);
  EXPECT_GT(r.weighted_energy_per_op, 0.0);
  EXPECT_GT(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0);
}

TEST(Chip, UnrunLayerThrows) {
  Rng rng(4);
  Linear l("l", 8, 8, rng);
  ChipConfig c;
  const Chip chip(c);
  EXPECT_THROW(chip.map_model({&l}), std::invalid_argument);
}

}  // namespace
}  // namespace vsq
