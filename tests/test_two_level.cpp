#include <gtest/gtest.h>

#include <tuple>

#include "quant/fake_quant.h"
#include "quant/int_gemm.h"
#include "quant/int_kernel.h"
#include "quant/quantized_tensor.h"
#include "quant/two_level.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// ---- Eq. 7e-7h invariants, parameterized over scale bitwidths ----

class TwoLevelProp : public ::testing::TestWithParam<int> {};

TEST_P(TwoLevelProp, SqWithinMBitRange) {
  const int m = GetParam();
  Rng rng(m);
  const Tensor x = random_matrix(8, 64, rng);
  const QuantFormat f{4, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{64, 16, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const auto qmax = QuantFormat{m, false}.qmax();
  for (const auto sq : tl.sq) EXPECT_LE(sq, qmax);
}

TEST_P(TwoLevelProp, GammaTimesQmaxEqualsSmax) {
  // Eq. 7f: the row's largest fp scale maps exactly to the top integer level.
  const int m = GetParam();
  Rng rng(100 + m);
  const Tensor x = random_matrix(6, 48, rng);
  const QuantFormat f{6, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{48, 16, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const std::int64_t vpr = fp.vectors_per_row();
  for (std::int64_t r = 0; r < 6; ++r) {
    float smax = 0.0f;
    for (std::int64_t v = 0; v < vpr; ++v) {
      smax = std::max(smax, fp.scales[static_cast<std::size_t>(r * vpr + v)]);
    }
    EXPECT_NEAR(tl.gamma_of_row(r) * static_cast<float>(QuantFormat{m, false}.qmax()), smax,
                smax * 1e-5);
  }
}

TEST_P(TwoLevelProp, EffectiveScaleWithinHalfGammaOfFpScale) {
  // Eq. 7g rounds s/gamma to the nearest integer, so |s2 - s| <= gamma/2.
  const int m = GetParam();
  Rng rng(200 + m);
  const Tensor x = random_matrix(4, 32, rng);
  const QuantFormat f{4, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{32, 8, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const std::int64_t vpr = fp.vectors_per_row();
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t v = 0; v < vpr; ++v) {
      const float s = fp.scales[static_cast<std::size_t>(r * vpr + v)];
      EXPECT_LE(std::abs(tl.effective_scale(r, v) - s), tl.gamma_of_row(r) / 2 + 1e-9f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ScaleBits, TwoLevelProp, ::testing::Values(3, 4, 6, 8, 10));

TEST(TwoLevel, MoreScaleBitsLowerError) {
  // Tables 5-7's trend: accuracy (here, -MSE) improves with scale bits and
  // approaches the single-level fp32 result.
  Rng rng(42);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.4));
  const QuantFormat f{4, true};
  const VectorLayout layout{64, 16, 0};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, layout, f);
  const double mse_fp = mse(x, fake_quantize(x, fp, f));
  double prev = 1e30;
  for (const int m : {3, 4, 6, 10}) {
    const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
    const double e = mse(x, fake_quantize(x, tl.to_scale_set(), f));
    EXPECT_LE(e, prev * 1.02) << "M=" << m;  // allow tiny non-monotonic noise
    prev = e;
    EXPECT_GE(e, mse_fp * 0.999) << "two-level cannot beat fp scales";
  }
  // 10-bit integer scales should be essentially fp32-quality.
  EXPECT_NEAR(prev, mse_fp, mse_fp * 0.05);
}

TEST(TwoLevel, PerTensorCoarseAxisSharedGamma) {
  Rng rng(43);
  const Tensor x = random_matrix(4, 32, rng);
  const QuantFormat f{8, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{32, 16, 0}, f);
  const TwoLevelScales tl =
      two_level_from_scales(fp, QuantFormat{6, false}, CoarseAxis::kPerTensor);
  EXPECT_EQ(tl.gamma.size(), 1u);
  EXPECT_EQ(tl.gamma_of_row(0), tl.gamma_of_row(3));
}

TEST(TwoLevel, RejectsNonPerVectorInput) {
  Rng rng(44);
  const Tensor x = random_matrix(4, 32, rng);
  const ScaleSet s = compute_scales(x, Granularity::kPerRow, VectorLayout{32, 16, 0},
                                    QuantFormat{8, true});
  EXPECT_THROW(two_level_from_scales(s, QuantFormat{6, false}, CoarseAxis::kPerRow),
               std::invalid_argument);
}

TEST(TwoLevel, RejectsSignedScaleFormat) {
  Rng rng(45);
  const Tensor x = random_matrix(2, 16, rng);
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{16, 8, 0},
                                     QuantFormat{8, true});
  EXPECT_THROW(two_level_from_scales(fp, QuantFormat{6, true}, CoarseAxis::kPerRow),
               std::invalid_argument);
}

TEST(TwoLevel, ZeroMatrixAllZeroScales) {
  Tensor x(Shape{2, 16});
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{16, 8, 0},
                                     QuantFormat{8, true});
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{6, false}, CoarseAxis::kPerRow);
  for (const auto sq : tl.sq) EXPECT_EQ(sq, 0);
  for (const auto g : tl.gamma) EXPECT_EQ(g, 0.0f);
}

TEST(TwoLevelChannelFirst, NoExtraClipping) {
  // The channel-first variant picks sq by ceiling, so every vector's amax
  // remains representable: |fake_quantize(x)| <= amax holds and the
  // element error stays within half the effective scale.
  Rng rng(46);
  Tensor x(Shape{8, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.6));
  const QuantFormat f{4, true};
  const QuantFormat sf{4, false};
  const VectorLayout layout{64, 16, 0};
  const TwoLevelScales tl = two_level_channel_first(x, f, sf, layout, CoarseAxis::kPerRow);
  const Tensor xq = fake_quantize(x, tl.to_scale_set(), f);
  const ScaleSet eff = tl.to_scale_set();
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 64; ++c) {
      EXPECT_LE(std::abs(xq.at2(r, c) - x.at2(r, c)), eff.at(r, c) / 2 + 1e-6f);
    }
  }
}

// ---- Properties at odd vector lengths, across every supported width ----
//
// The paper's configs use V=16/32 and even reduction dims; these
// parameterized properties pin down the corners that the packed integer
// datapath must also get right: odd V, a column count V does not divide
// (so every row ends in a short tail vector), every element width the
// int16 operand storage supports, and several scale widths. Each case is
// cross-checked three ways: the production int_gemm (which packs per
// call), the prepacked-panel path (IntLayerPrimitive's entry point), and
// a from-scratch int64 reference loop mirroring the seed arithmetic —
// all three must agree bit-for-bit.

constexpr std::int64_t kOddCols = 29;  // prime: never divisible by any V

QuantSpec odd_weight_spec(int bits, int scale_bits, int v) {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{bits, true};
  s.granularity = Granularity::kPerVector;
  s.vector_size = v;
  s.scale_dtype = ScaleDtype::kTwoLevelInt;
  s.scale_fmt = QuantFormat{scale_bits, false};
  return s;
}

QuantSpec odd_act_spec(int bits, int scale_bits, int v) {
  QuantSpec s = odd_weight_spec(bits, scale_bits, v);
  s.dynamic = true;
  return s;
}

// The seed's bit-exact arithmetic, written down independently: int64 dot
// products and accumulators, the same MSB-keeping scale-product rounding,
// double de-scaling. What every datapath variant must reproduce exactly.
Tensor int_gemm_seed_reference(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                               int scale_product_bits) {
  int full_bits = 0;
  if (act.two_level) full_bits += act.two_level->scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;
  const std::int64_t rows = act.rows, k_out = wgt.rows;
  const std::int64_t vpr = act.layout.vectors_per_row();
  Tensor out(Shape{rows, k_out});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < k_out; ++k) {
      std::int64_t acc = 0;
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto [c0, c1] = act.layout.col_range(v);
        std::int64_t dp = 0;
        for (std::int64_t c = c0; c < c1; ++c) {
          dp += static_cast<std::int64_t>(act.at(r, c)) * wgt.at(k, c);
        }
        const std::uint32_t sp = round_scale_product(
            act.int_scale(r, v) * wgt.int_scale(k, v), full_bits, scale_product_bits);
        acc += dp * static_cast<std::int64_t>(sp);
      }
      out.at2(r, k) = static_cast<float>(static_cast<double>(acc) *
                                         static_cast<double>(wgt.outer_scale(k)) *
                                         act.outer_scale(r));
    }
  }
  return out;
}

// (element bits, vector size) — bits spans the full int16-backed range,
// V is odd so the tail-vector and odd-length kernels are exercised.
class TwoLevelOddVec : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoLevelOddVec, RefactorRoundTripIsStable) {
  // Factoring the effective scales (sq * gamma) a second time must
  // reproduce the factorization exactly: Eq. 7f maps each row's max scale
  // to the top integer level, so gamma and every sq are fixed points.
  const auto [bits, v] = GetParam();
  for (const int m : {3, 6, 10}) {
    Rng rng(static_cast<std::uint64_t>(bits * 1000 + v * 100 + m));
    Tensor x(Shape{6, kOddCols});
    for (auto& val : x.span()) val = static_cast<float>(rng.normal());
    const QuantFormat fmt{bits, true};
    const VectorLayout layout{kOddCols, v, 0};
    const ScaleSet fp = compute_scales(x, Granularity::kPerVector, layout, fmt);
    const TwoLevelScales tl =
        two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
    const TwoLevelScales tl2 =
        two_level_from_scales(tl.to_scale_set(), QuantFormat{m, false}, CoarseAxis::kPerRow);
    ASSERT_EQ(tl2.sq.size(), tl.sq.size());
    for (std::size_t i = 0; i < tl.sq.size(); ++i) {
      EXPECT_EQ(tl2.sq[i], tl.sq[i]) << "sq " << i << " M=" << m;
    }
    ASSERT_EQ(tl2.gamma.size(), tl.gamma.size());
    for (std::size_t i = 0; i < tl.gamma.size(); ++i) {
      EXPECT_FLOAT_EQ(tl2.gamma[i], tl.gamma[i]) << "gamma " << i << " M=" << m;
    }
    // And the effective scales are preserved end to end (Eq. 7h fixed
    // point; gamma re-derivation may round its last bit, hence FLOAT_EQ).
    const ScaleSet eff = tl.to_scale_set(), eff2 = tl2.to_scale_set();
    for (std::size_t i = 0; i < eff.scales.size(); ++i) {
      EXPECT_FLOAT_EQ(eff2.scales[i], eff.scales[i]) << "effective scale " << i << " M=" << m;
    }
  }
}

TEST_P(TwoLevelOddVec, PrepackedGemmBitExactVsSeedReferenceLoop) {
  const auto [bits, v] = GetParam();
  for (const int m : {3, 6, 10}) {
    // Both the full scale product and an aggressively rounded one.
    for (const int sp_bits : {-1, m}) {
      Rng rng(static_cast<std::uint64_t>(bits * 10000 + v * 1000 + m * 10 + (sp_bits > 0)));
      Tensor w(Shape{7, kOddCols}), a(Shape{5, kOddCols});
      for (auto& val : w.span()) val = static_cast<float>(rng.normal());
      for (auto& val : a.span()) val = static_cast<float>(rng.laplace(0.5));
      const QuantizedMatrix wq = quantize_weights_int(w, odd_weight_spec(bits, m, v));
      const float amax = amax_per_tensor(a);
      const float gamma = scale_from_amax(amax, QuantFormat{bits, true}) /
                          static_cast<float>(QuantFormat{m, false}.qmax());
      const QuantizedMatrix aq =
          quantize_activations_int(a, odd_act_spec(bits, m, v), amax, gamma);

      const Tensor y_percall = int_gemm(aq, wq, sp_bits, nullptr);
      const detail::IntWeightPanels panels(wq, aq.layout,
                                           detail::IntActAttrs::of(aq));  // owning pack
      const Tensor y_prepacked = detail::int_gemm_packed(aq, wq, sp_bits, nullptr, &panels);
      const Tensor y_seed = int_gemm_seed_reference(aq, wq, sp_bits);
      ASSERT_EQ(y_percall.numel(), y_seed.numel());
      for (std::int64_t i = 0; i < y_seed.numel(); ++i) {
        ASSERT_EQ(y_percall[i], y_seed[i])
            << "per-call vs seed at " << i << " M=" << m << " sp=" << sp_bits;
        ASSERT_EQ(y_prepacked[i], y_seed[i])
            << "prepacked vs seed at " << i << " M=" << m << " sp=" << sp_bits;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsTimesOddV, TwoLevelOddVec,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7, 8, 9, 10),
                       ::testing::Values(3, 5, 7)));

TEST(TwoLevelChannelFirst, VectorFirstUsuallyTighter) {
  // Eq. 7's vector-first factorization targets each vector's scale
  // directly; channel-first covers ranges conservatively (ceiling), so on
  // average its error should not be better.
  Rng rng(47);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.4));
  const QuantFormat f{4, true};
  const QuantFormat sf{4, false};
  const VectorLayout layout{64, 16, 0};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, layout, f);
  const TwoLevelScales vec_first = two_level_from_scales(fp, sf, CoarseAxis::kPerRow);
  const TwoLevelScales chan_first = two_level_channel_first(x, f, sf, layout, CoarseAxis::kPerRow);
  const double e_vec = mse(x, fake_quantize(x, vec_first.to_scale_set(), f));
  const double e_chan = mse(x, fake_quantize(x, chan_first.to_scale_set(), f));
  EXPECT_LE(e_vec, e_chan * 1.1);
}

}  // namespace
}  // namespace vsq
