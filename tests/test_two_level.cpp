#include <gtest/gtest.h>

#include "quant/fake_quant.h"
#include "quant/two_level.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vsq {
namespace {

Tensor random_matrix(std::int64_t r, std::int64_t c, Rng& rng, double scale = 1.0) {
  Tensor t(Shape{r, c});
  for (auto& v : t.span()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// ---- Eq. 7e-7h invariants, parameterized over scale bitwidths ----

class TwoLevelProp : public ::testing::TestWithParam<int> {};

TEST_P(TwoLevelProp, SqWithinMBitRange) {
  const int m = GetParam();
  Rng rng(m);
  const Tensor x = random_matrix(8, 64, rng);
  const QuantFormat f{4, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{64, 16, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const auto qmax = QuantFormat{m, false}.qmax();
  for (const auto sq : tl.sq) EXPECT_LE(sq, qmax);
}

TEST_P(TwoLevelProp, GammaTimesQmaxEqualsSmax) {
  // Eq. 7f: the row's largest fp scale maps exactly to the top integer level.
  const int m = GetParam();
  Rng rng(100 + m);
  const Tensor x = random_matrix(6, 48, rng);
  const QuantFormat f{6, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{48, 16, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const std::int64_t vpr = fp.vectors_per_row();
  for (std::int64_t r = 0; r < 6; ++r) {
    float smax = 0.0f;
    for (std::int64_t v = 0; v < vpr; ++v) {
      smax = std::max(smax, fp.scales[static_cast<std::size_t>(r * vpr + v)]);
    }
    EXPECT_NEAR(tl.gamma_of_row(r) * static_cast<float>(QuantFormat{m, false}.qmax()), smax,
                smax * 1e-5);
  }
}

TEST_P(TwoLevelProp, EffectiveScaleWithinHalfGammaOfFpScale) {
  // Eq. 7g rounds s/gamma to the nearest integer, so |s2 - s| <= gamma/2.
  const int m = GetParam();
  Rng rng(200 + m);
  const Tensor x = random_matrix(4, 32, rng);
  const QuantFormat f{4, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{32, 8, 0}, f);
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
  const std::int64_t vpr = fp.vectors_per_row();
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t v = 0; v < vpr; ++v) {
      const float s = fp.scales[static_cast<std::size_t>(r * vpr + v)];
      EXPECT_LE(std::abs(tl.effective_scale(r, v) - s), tl.gamma_of_row(r) / 2 + 1e-9f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ScaleBits, TwoLevelProp, ::testing::Values(3, 4, 6, 8, 10));

TEST(TwoLevel, MoreScaleBitsLowerError) {
  // Tables 5-7's trend: accuracy (here, -MSE) improves with scale bits and
  // approaches the single-level fp32 result.
  Rng rng(42);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.4));
  const QuantFormat f{4, true};
  const VectorLayout layout{64, 16, 0};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, layout, f);
  const double mse_fp = mse(x, fake_quantize(x, fp, f));
  double prev = 1e30;
  for (const int m : {3, 4, 6, 10}) {
    const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{m, false}, CoarseAxis::kPerRow);
    const double e = mse(x, fake_quantize(x, tl.to_scale_set(), f));
    EXPECT_LE(e, prev * 1.02) << "M=" << m;  // allow tiny non-monotonic noise
    prev = e;
    EXPECT_GE(e, mse_fp * 0.999) << "two-level cannot beat fp scales";
  }
  // 10-bit integer scales should be essentially fp32-quality.
  EXPECT_NEAR(prev, mse_fp, mse_fp * 0.05);
}

TEST(TwoLevel, PerTensorCoarseAxisSharedGamma) {
  Rng rng(43);
  const Tensor x = random_matrix(4, 32, rng);
  const QuantFormat f{8, true};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{32, 16, 0}, f);
  const TwoLevelScales tl =
      two_level_from_scales(fp, QuantFormat{6, false}, CoarseAxis::kPerTensor);
  EXPECT_EQ(tl.gamma.size(), 1u);
  EXPECT_EQ(tl.gamma_of_row(0), tl.gamma_of_row(3));
}

TEST(TwoLevel, RejectsNonPerVectorInput) {
  Rng rng(44);
  const Tensor x = random_matrix(4, 32, rng);
  const ScaleSet s = compute_scales(x, Granularity::kPerRow, VectorLayout{32, 16, 0},
                                    QuantFormat{8, true});
  EXPECT_THROW(two_level_from_scales(s, QuantFormat{6, false}, CoarseAxis::kPerRow),
               std::invalid_argument);
}

TEST(TwoLevel, RejectsSignedScaleFormat) {
  Rng rng(45);
  const Tensor x = random_matrix(2, 16, rng);
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{16, 8, 0},
                                     QuantFormat{8, true});
  EXPECT_THROW(two_level_from_scales(fp, QuantFormat{6, true}, CoarseAxis::kPerRow),
               std::invalid_argument);
}

TEST(TwoLevel, ZeroMatrixAllZeroScales) {
  Tensor x(Shape{2, 16});
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, VectorLayout{16, 8, 0},
                                     QuantFormat{8, true});
  const TwoLevelScales tl = two_level_from_scales(fp, QuantFormat{6, false}, CoarseAxis::kPerRow);
  for (const auto sq : tl.sq) EXPECT_EQ(sq, 0);
  for (const auto g : tl.gamma) EXPECT_EQ(g, 0.0f);
}

TEST(TwoLevelChannelFirst, NoExtraClipping) {
  // The channel-first variant picks sq by ceiling, so every vector's amax
  // remains representable: |fake_quantize(x)| <= amax holds and the
  // element error stays within half the effective scale.
  Rng rng(46);
  Tensor x(Shape{8, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.6));
  const QuantFormat f{4, true};
  const QuantFormat sf{4, false};
  const VectorLayout layout{64, 16, 0};
  const TwoLevelScales tl = two_level_channel_first(x, f, sf, layout, CoarseAxis::kPerRow);
  const Tensor xq = fake_quantize(x, tl.to_scale_set(), f);
  const ScaleSet eff = tl.to_scale_set();
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 64; ++c) {
      EXPECT_LE(std::abs(xq.at2(r, c) - x.at2(r, c)), eff.at(r, c) / 2 + 1e-6f);
    }
  }
}

TEST(TwoLevelChannelFirst, VectorFirstUsuallyTighter) {
  // Eq. 7's vector-first factorization targets each vector's scale
  // directly; channel-first covers ranges conservatively (ceiling), so on
  // average its error should not be better.
  Rng rng(47);
  Tensor x(Shape{16, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.laplace(0.4));
  const QuantFormat f{4, true};
  const QuantFormat sf{4, false};
  const VectorLayout layout{64, 16, 0};
  const ScaleSet fp = compute_scales(x, Granularity::kPerVector, layout, f);
  const TwoLevelScales vec_first = two_level_from_scales(fp, sf, CoarseAxis::kPerRow);
  const TwoLevelScales chan_first = two_level_channel_first(x, f, sf, layout, CoarseAxis::kPerRow);
  const double e_vec = mse(x, fake_quantize(x, vec_first.to_scale_set(), f));
  const double e_chan = mse(x, fake_quantize(x, chan_first.to_scale_set(), f));
  EXPECT_LE(e_vec, e_chan * 1.1);
}

}  // namespace
}  // namespace vsq
