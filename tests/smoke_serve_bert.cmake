# End-to-end transformer serving smoke test: export the tiny BERT-style
# encoder's integer package with vsq_quantize (sequence geometry, fp32
# layernorm/embedding sidecars, the embed/attention/gelu forward program),
# inspect it, then drive vsq_serve with concurrent clients sending token
# rows of MIXED lengths. The tool's --check audit (on by default) makes
# the run fail unless every served output is bit-identical to sequential
# single-request inference at its own true length, and the stats gate
# asserts the length-bucketed batcher actually mixed two pad buckets in
# one forward pass. Invoked from ctest (see tests/CMakeLists.txt) with
#   -DVSQ_QUANTIZE=<path> -DVSQ_INSPECT=<path> -DVSQ_SERVE=<path>
#   -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")
set(PACKAGE "${WORK_DIR}/tiny_bert_int.vsqa")

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny_bert --config=4/8/6/10 --vector=16
          "--out=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${VSQ_INSPECT}" "--package=${PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_inspect output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_inspect failed with exit code ${rc}")
endif()
if(NOT out MATCHES "sequence max_seq=32 dim=32 heads=4")
  message(FATAL_ERROR "vsq_inspect did not print the sequence geometry")
endif()
if(NOT out MATCHES "embed\\(emb\\)")
  message(FATAL_ERROR "vsq_inspect did not print the embedding program step")
endif()
if(NOT out MATCHES "attn\\(layer1.attn heads=4 dim=32\\)")
  message(FATAL_ERROR "vsq_inspect did not print the attention program step")
endif()
if(NOT out MATCHES "gelu")
  message(FATAL_ERROR "vsq_inspect did not print the gelu program step")
endif()

# A long straggler window plus more clients than max_batch makes
# mixed-length coalescing essentially certain; the gates below still
# assert it rather than assume it.
execute_process(
  COMMAND "${VSQ_SERVE}" "--package=${PACKAGE}" --clients=6 --requests=96
          --max-batch=8 --max-wait-us=5000
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_serve output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_serve failed with exit code ${rc}")
endif()
if(NOT out MATCHES "96 outputs verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_serve did not report the bit-exactness audit")
endif()
if(NOT out MATCHES "\"requests\":96")
  message(FATAL_ERROR "vsq_serve JSON line missing or wrong request count")
endif()
if(NOT out MATCHES "sequence buckets \\(width: requests\\)")
  message(FATAL_ERROR "vsq_serve stats table missing the bucket occupancy line")
endif()
if(out MATCHES "\"mixed_bucket_batches\":0,")
  message(FATAL_ERROR "no batch mixed two sequence-length buckets - the "
                      "length-aware batcher never shared a forward pass")
endif()
