# Multi-model soak smoke test: export the tiny MLP and tiny CNN integer
# packages with vsq_quantize, then drive vsq_soak over a 2-model registry
# loaded from those archives — concurrent clients, random burst sizes, and
# deterministic count-triggered hot unload/reload cycles mid-run. The
# tool's differential audit (on by default) fails the run unless every
# served response is bit-identical to a fresh sequential single-sample
# reference runner. Invoked from ctest (see tests/CMakeLists.txt) with
#   -DVSQ_QUANTIZE=<path> -DVSQ_SOAK=<path> -DWORK_DIR=<scratch dir>
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{VSQ_ARTIFACTS} "${WORK_DIR}/artifacts")
set(MLP_PACKAGE "${WORK_DIR}/tiny_int.vsqa")
set(CONV_PACKAGE "${WORK_DIR}/tiny_conv_int.vsqa")

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny --config=4/8/6/10 --vector=16
          "--out=${MLP_PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize (tiny) output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize --model=tiny failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${VSQ_QUANTIZE}" --model=tiny_conv --config=4/8/6/10 --vector=16
          "--out=${CONV_PACKAGE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_quantize (tiny_conv) output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_quantize --model=tiny_conv failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${VSQ_SOAK}"
          "--packages=mlp=${MLP_PACKAGE},cnn=${CONV_PACKAGE}"
          --clients=4 --requests=160 --burst-max=4 --reload-every=40 --seed=3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
message(STATUS "vsq_soak output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vsq_soak failed with exit code ${rc}")
endif()
if(NOT out MATCHES "responses verified bit-identical to sequential execution")
  message(FATAL_ERROR "vsq_soak did not report the differential audit")
endif()
if(NOT out MATCHES "hot reloads")
  message(FATAL_ERROR "vsq_soak did not report hot reload cycles")
endif()
if(out MATCHES " 0 hot reloads")
  message(FATAL_ERROR "vsq_soak performed no hot reloads (chaos trigger broken)")
endif()
