// The fused tiled-im2col convolution engine and the integer conv
// datapath, pinned to their materialized references bit-for-bit:
//  * conv2d_nhwc vs im2col + gemm_blocked + bias across odd shapes
//    (stride > 1, pad > 0, K=1 and K=3, C not a multiple of V)
//  * Conv2d's fused inference path vs its materialized oracle path
//  * int_conv vs run_packaged_layer on the materialized cols matrix
//  * 1-vs-8-thread determinism through ThreadPoolScope
//  * steady-state arena behavior: the fused path's workspace does not grow
//    across calls and stays far below the cols-matrix footprint
//  * QuantizedModelRunner conv programs: batched == sequential
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "quant/export.h"
#include "quant/int_conv.h"
#include "tensor/conv_engine.h"
#include "tensor/im2col.h"
#include "util/rng.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (auto& v : t.span()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << ": element " << i;
  }
}

struct ConvCase {
  std::int64_t n, h, w, c, k_out, kernel, stride, pad;
  std::string str() const {
    return std::to_string(n) + "x" + std::to_string(h) + "x" + std::to_string(w) + "x" +
           std::to_string(c) + " k" + std::to_string(k_out) + " K" + std::to_string(kernel) +
           " s" + std::to_string(stride) + " p" + std::to_string(pad);
  }
};

// Odd shapes on purpose: strides, pads, K=1 (both the identity fast path
// and strided 1x1), channel counts that are not multiples of the vector
// size, and spatial dims that leave partial MR/NR tiles everywhere.
const ConvCase kConvCases[] = {
    {1, 7, 9, 3, 5, 3, 1, 1},    //
    {2, 8, 8, 16, 8, 3, 2, 1},   // stride 2
    {1, 11, 5, 20, 7, 3, 1, 0},  // no pad
    {2, 6, 6, 19, 10, 3, 2, 1},  // C=19: tail vector, odd length
    {1, 9, 9, 13, 6, 1, 1, 0},   // 1x1, identity im2col fast path
    {2, 5, 7, 8, 12, 1, 2, 0},   // 1x1 stride 2: virtual packer path
    {1, 4, 4, 3, 4, 3, 1, 2},    // pad > 1
};

TEST(ConvEngine, FusedBitIdenticalToMaterializedAcrossShapes) {
  for (const ConvCase& cc : kConvCases) {
    const ConvGeom g{cc.h, cc.w, cc.c, cc.kernel, cc.stride, cc.pad};
    const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 100 + cc.c);
    const Tensor w = random_tensor(Shape{cc.k_out, g.patch_len()}, 200 + cc.k_out);
    const Tensor bias = random_tensor(Shape{cc.k_out}, 300 + cc.k_out);
    const Tensor fused = conv2d_nhwc(x, g, w, bias.data());
    const Tensor ref = conv2d_nhwc_materialized(x, g, w, bias.data());
    expect_bitwise_equal(fused, ref, cc.str());
    // And without bias.
    expect_bitwise_equal(conv2d_nhwc(x, g, w), conv2d_nhwc_materialized(x, g, w),
                         cc.str() + " (no bias)");
  }
}

TEST(ConvEngine, Conv2dFusedPathMatchesMaterializedOracle) {
  // Big enough that the oracle path's gemm_nt dispatches to the blocked
  // engine (above the tiny-GEMM cutoff), so the comparison is bit-exact.
  Rng rng(11);
  Conv2d conv("c", 16, 16, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{2, 8, 8, 16}, 12);
  const Tensor fused = conv.forward(x, /*train=*/false);  // fused by default
  conv.set_use_fused(false);
  const Tensor oracle = conv.forward(x, /*train=*/false);
  expect_bitwise_equal(fused, oracle, "Conv2d fused vs oracle");
}

TEST(ConvEngine, ThreadCountInvariance) {
  const ConvGeom g{9, 9, 16, 3, 1, 1};
  const Tensor x = random_tensor(Shape{3, 9, 9, 16}, 21);
  const Tensor w = random_tensor(Shape{24, g.patch_len()}, 22);
  const Tensor bias = random_tensor(Shape{24}, 23);
  Tensor y1, y8;
  {
    ThreadPool pool1(1);
    ThreadPoolScope scope(pool1);
    y1 = conv2d_nhwc(x, g, w, bias.data());
  }
  {
    ThreadPool pool8(8);
    ThreadPoolScope scope(pool8);
    y8 = conv2d_nhwc(x, g, w, bias.data());
  }
  expect_bitwise_equal(y1, y8, "fused conv 1 vs 8 threads");
}

TEST(ConvEngine, SteadyStateArenaOnlyNeverColsSized) {
  // 4 * 32 * 32 * 16 input, K=3: the cols matrix would be
  // rows * plen * 4 = 4096 * 144 * 4 bytes ~= 2.4 MB. The fused engine's
  // per-thread workspace is a handful of packed panels.
  const ConvGeom g{32, 32, 16, 3, 1, 1};
  const Tensor x = random_tensor(Shape{4, 32, 32, 16}, 31);
  const Tensor w = random_tensor(Shape{32, g.patch_len()}, 32);
  const std::size_t cols_bytes =
      static_cast<std::size_t>(4 * 32 * 32) * static_cast<std::size_t>(g.patch_len()) *
      sizeof(float);
  // Fresh thread -> fresh thread-local arena, so the measurement is not
  // polluted by other tests' allocations.
  std::thread([&] {
    ThreadPool pool(1);
    ThreadPoolScope scope(pool);
    conv2d_nhwc(x, g, w);  // warm up: arena grows to steady state
    ScratchArena& arena = ScratchArena::thread_local_arena();
    const std::size_t steady = arena.capacity();
    for (int i = 0; i < 3; ++i) conv2d_nhwc(x, g, w);
    EXPECT_EQ(arena.capacity(), steady) << "fused conv allocated beyond its warm arena";
    EXPECT_LT(steady, cols_bytes / 2)
        << "fused conv workspace is cols-matrix sized - the tiling is not happening";
  }).join();
}

// ---- Integer conv datapath ----

struct IntConvOperands {
  QuantizedLayerPackage layer;
  ConvGeom geom;
};

// Build a conv layer package by hand: per-vector two-level weights with
// channel_block = C (the Conv2d::set_quant rule) and dynamic per-vector
// two-level activations, calibrated the way export does it.
IntConvOperands make_int_conv_operands(const ConvCase& cc, int vector_size, bool with_bias,
                                       std::uint64_t seed) {
  IntConvOperands ops;
  ops.geom = ConvGeom{cc.h, cc.w, cc.c, cc.kernel, cc.stride, cc.pad};
  const Tensor w = random_tensor(Shape{cc.k_out, ops.geom.patch_len()}, seed);

  QuantSpec wspec;
  wspec.enabled = true;
  wspec.fmt = QuantFormat{4, true};
  wspec.granularity = Granularity::kPerVector;
  wspec.vector_size = vector_size;
  wspec.channel_block = cc.c;
  wspec.scale_dtype = ScaleDtype::kTwoLevelInt;
  wspec.scale_fmt = QuantFormat{6, false};

  QuantSpec aspec = wspec;
  aspec.fmt = QuantFormat{8, true};
  aspec.scale_fmt = QuantFormat{10, false};
  aspec.dynamic = true;

  ops.layer.name = "conv";
  ops.layer.kind = PackagedLayerKind::kConv;
  ops.layer.kernel = cc.kernel;
  ops.layer.stride = cc.stride;
  ops.layer.pad = cc.pad;
  ops.layer.weights = quantize_weights_int(w, wspec);
  ops.layer.act_spec = aspec;
  ops.layer.act_amax = 1.0f;
  ops.layer.act_gamma = scale_from_amax(ops.layer.act_amax, aspec.fmt) /
                        static_cast<float>(aspec.scale_fmt.qmax());
  if (with_bias) {
    const Tensor b = random_tensor(Shape{cc.k_out}, seed + 1);
    ops.layer.bias.assign(b.data(), b.data() + cc.k_out);
  }
  return ops;
}

TEST(IntConv, BitIdenticalToRunPackagedLayerOnMaterializedCols) {
  // V=16 with C=16 (even vectors: madd panel kernel), C=19 (16+3 tail:
  // generic kernel), C=20 (16+4, even), V=8 with a 1x1 kernel.
  const struct {
    ConvCase cc;
    int v;
  } cases[] = {
      {{2, 7, 7, 16, 9, 3, 1, 1}, 16},
      {{1, 6, 8, 19, 5, 3, 2, 1}, 16},
      {{2, 5, 5, 20, 8, 3, 1, 0}, 16},
      {{1, 5, 5, 12, 6, 1, 1, 0}, 8},
  };
  for (const auto& [cc, v] : cases) {
    const IntConvOperands ops = make_int_conv_operands(cc, v, /*with_bias=*/true, 400 + cc.c);
    const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 500 + cc.c);

    const Tensor cols = im2col(x, ops.geom);
    IntGemmStats ref_stats, got_stats, ref2_stats;
    const Tensor ref2d = run_packaged_layer(ops.layer, cols, /*scale_product_bits=*/-1,
                                            &ref_stats);
    const Tensor got = int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec,
                                ops.layer.act_amax, ops.layer.act_gamma, ops.layer.bias,
                                /*scale_product_bits=*/-1, &got_stats);
    const Tensor ref = ref2d.reshape(got.shape());
    expect_bitwise_equal(got, ref, cc.str() + " V=" + std::to_string(v));

    // The datapath counters must agree too: same vector ops, same gating.
    EXPECT_EQ(got_stats.vector_ops, ref_stats.vector_ops);
    EXPECT_EQ(got_stats.zero_scale_products, ref_stats.zero_scale_products);
    EXPECT_EQ(got_stats.zero_dot_products, ref_stats.zero_dot_products);
    EXPECT_EQ(got_stats.max_abs_psum, ref_stats.max_abs_psum);

    // And the reference wrapper agrees with both.
    const Tensor ref_conv =
        int_conv_reference(x, ops.geom, ops.layer.weights, ops.layer.act_spec,
                           ops.layer.act_amax, ops.layer.act_gamma, ops.layer.bias,
                           /*scale_product_bits=*/-1, &ref2_stats);
    expect_bitwise_equal(got, ref_conv, cc.str() + " vs int_conv_reference");
  }
}

TEST(IntConv, ScaleProductRoundingMatchesReference) {
  const ConvCase cc{1, 6, 6, 16, 8, 3, 1, 1};
  const IntConvOperands ops = make_int_conv_operands(cc, 16, /*with_bias=*/false, 601);
  const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 602);
  const Tensor cols = im2col(x, ops.geom);
  for (int bits : {4, 6, 8}) {
    const Tensor ref = run_packaged_layer(ops.layer, cols, bits);
    const Tensor got = int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec,
                                ops.layer.act_amax, ops.layer.act_gamma, ops.layer.bias, bits);
    expect_bitwise_equal(got, ref.reshape(got.shape()),
                         "scale_product_bits=" + std::to_string(bits));
  }
}

TEST(IntConv, CoarseActivationsMatchReference) {
  // Per-tensor static activations (the baseline accelerator datapath):
  // row-local quantization with the calibrated amax.
  const ConvCase cc{2, 6, 6, 16, 7, 3, 2, 1};
  IntConvOperands ops = make_int_conv_operands(cc, 16, /*with_bias=*/true, 701);
  ops.layer.act_spec.granularity = Granularity::kPerTensor;
  ops.layer.act_spec.dynamic = false;
  ops.layer.act_amax = 0.9f;
  ops.layer.act_gamma = 0.0f;
  const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 702);
  const Tensor cols = im2col(x, ops.geom);
  const Tensor ref = run_packaged_layer(ops.layer, cols);
  const Tensor got = int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec,
                              ops.layer.act_amax, ops.layer.act_gamma, ops.layer.bias);
  expect_bitwise_equal(got, ref.reshape(got.shape()), "coarse activations");
}

TEST(IntConv, ThreadCountInvariance) {
  const ConvCase cc{2, 8, 8, 16, 12, 3, 1, 1};
  const IntConvOperands ops = make_int_conv_operands(cc, 16, /*with_bias=*/true, 801);
  const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 802);
  Tensor y1, y8;
  {
    ThreadPool pool1(1);
    ThreadPoolScope scope(pool1);
    y1 = int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec, ops.layer.act_amax,
                  ops.layer.act_gamma, ops.layer.bias);
  }
  {
    ThreadPool pool8(8);
    ThreadPoolScope scope(pool8);
    y8 = int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec, ops.layer.act_amax,
                  ops.layer.act_gamma, ops.layer.bias);
  }
  expect_bitwise_equal(y1, y8, "int_conv 1 vs 8 threads");
}

TEST(IntConv, RejectsStraddlingVectorLayout) {
  // channel_block != C would let vectors straddle kernel positions — the
  // layout rule Conv2d::set_quant enforces; int_conv must reject it.
  const ConvCase cc{1, 5, 5, 16, 4, 3, 1, 1};
  IntConvOperands ops = make_int_conv_operands(cc, 16, /*with_bias=*/false, 901);
  ops.layer.act_spec.channel_block = 0;  // one block spanning the whole patch row
  const Tensor x = random_tensor(Shape{cc.n, cc.h, cc.w, cc.c}, 902);
  EXPECT_THROW(int_conv(x, ops.geom, ops.layer.weights, ops.layer.act_spec,
                        ops.layer.act_amax, ops.layer.act_gamma, {}),
               std::invalid_argument);
}

// ---- Conv programs through QuantizedModelRunner ----

TEST(ConvRunner, BatchedBitIdenticalToSequentialRows) {
  const QuantizedModelPackage pkg = tiny_conv_package(MacConfig::parse("4/8/6/10"));
  const QuantizedModelRunner runner(pkg);
  EXPECT_TRUE(runner.spatial());
  EXPECT_EQ(runner.in_features(), 8 * 8 * 3);
  EXPECT_EQ(runner.out_features(), 10);
  const Tensor batch = random_tensor(Shape{5, runner.in_features()}, 1001);
  const Tensor y = runner.forward(batch);
  ASSERT_EQ(y.shape(), (Shape{5, 10}));
  for (std::int64_t r = 0; r < batch.shape()[0]; ++r) {
    const Tensor row = runner.forward(batch.slice_rows(r, r + 1));
    expect_bitwise_equal(row, y.slice_rows(r, r + 1),
                         "row " + std::to_string(r) + " batched vs sequential");
  }
}

TEST(ConvRunner, RunnerBitIdenticalAcrossThreadCounts) {
  const QuantizedModelPackage pkg = tiny_conv_package(MacConfig::parse("4/8/6/10"));
  const QuantizedModelRunner runner(pkg);
  const Tensor batch = random_tensor(Shape{4, runner.in_features()}, 1101);
  Tensor y1, y8;
  {
    ThreadPool pool1(1);
    ThreadPoolScope scope(pool1);
    y1 = runner.forward(batch);
  }
  {
    ThreadPool pool8(8);
    ThreadPoolScope scope(pool8);
    y8 = runner.forward(batch);
  }
  expect_bitwise_equal(y1, y8, "conv runner 1 vs 8 threads");
}

TEST(ConvRunner, PackageRoundTripPreservesProgramAndGeometry) {
  const QuantizedModelPackage pkg = tiny_conv_package(MacConfig::parse("4/8/6/10"));
  const std::string tmp = ::testing::TempDir() + "vsq_conv_roundtrip.vsqa";
  pkg.save(tmp);
  const QuantizedModelPackage loaded = QuantizedModelPackage::load(tmp);
  ASSERT_EQ(loaded.program.size(), pkg.program.size());
  for (std::size_t i = 0; i < pkg.program.size(); ++i) {
    EXPECT_EQ(loaded.program[i].layer, pkg.program[i].layer);
    EXPECT_EQ(loaded.program[i].relu, pkg.program[i].relu);
    EXPECT_EQ(loaded.program[i].op, pkg.program[i].op);
  }
  EXPECT_EQ(loaded.in_h, pkg.in_h);
  EXPECT_EQ(loaded.in_w, pkg.in_w);
  EXPECT_EQ(loaded.in_c, pkg.in_c);
  const QuantizedLayerPackage& stem = loaded.layers.at("stem");
  EXPECT_EQ(stem.kind, PackagedLayerKind::kConv);
  EXPECT_EQ(stem.kernel, 3);
  EXPECT_EQ(stem.stride, 1);
  EXPECT_EQ(stem.pad, 1);
  EXPECT_EQ(stem.conv_in_channels(), 3);

  // Loaded package executes bit-identically.
  const QuantizedModelRunner a(pkg), b(loaded);
  const Tensor x = random_tensor(Shape{3, a.in_features()}, 1201);
  expect_bitwise_equal(a.forward(x), b.forward(x), "runner fresh vs loaded package");
  std::remove(tmp.c_str());
}

TEST(ConvRunner, RejectsBrokenPrograms) {
  QuantizedModelPackage pkg = tiny_conv_package(MacConfig::parse("4/8/6/10"));
  // Residual add with nothing saved.
  QuantizedModelPackage broken = pkg;
  broken.program = {ForwardStep::conv("stem", true), ForwardStep::add_saved(false)};
  EXPECT_THROW(QuantizedModelRunner{broken}, std::invalid_argument);
  // Spatial program without input geometry.
  QuantizedModelPackage no_geom = pkg;
  no_geom.in_h = no_geom.in_w = no_geom.in_c = 0;
  EXPECT_THROW(QuantizedModelRunner{no_geom}, std::invalid_argument);
  // Conv step naming a missing layer.
  QuantizedModelPackage missing = pkg;
  missing.program = {ForwardStep::conv("nope", false)};
  EXPECT_THROW(QuantizedModelRunner{missing}, std::invalid_argument);
  // Residual add with no layer op since the save: h would alias `saved`
  // (and the caller's input) and the in-place add would corrupt it.
  QuantizedModelPackage aliasing = pkg;
  aliasing.program = {ForwardStep::save(), ForwardStep::add_saved(false),
                      ForwardStep::conv("stem", true)};
  EXPECT_THROW(QuantizedModelRunner{aliasing}, std::invalid_argument);
}

}  // namespace
}  // namespace vsq
