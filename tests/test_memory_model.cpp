// Tests for hw/memory_model: the Sec. 4.4 closed-form overhead (M/(V*N)),
// exact storage accounting with vector layouts and channel blocks, and
// model-level traffic aggregation/ratios.
#include <gtest/gtest.h>

#include "hw/memory_model.h"
#include "models/resnetv.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace vsq {
namespace {

TEST(ScaleOverhead, PaperExample) {
  // N = M = 4, V = 16 -> 6.25% overhead, effective bitwidth 4.25 (Sec. 4.4).
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(4, 4, 16), 0.0625);
  EXPECT_DOUBLE_EQ(effective_bitwidth(4, 4, 16), 4.25);
}

TEST(ScaleOverhead, ScalesWithParameters) {
  // Overhead doubles when M doubles, halves when V or N double.
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(4, 8, 16), 0.125);
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(4, 4, 32), 0.03125);
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(8, 4, 16), 0.03125);
}

TEST(ScaleOverhead, DegenerateInputsGiveZero) {
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(0, 4, 16), 0.0);
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(4, -1, 16), 0.0);
  EXPECT_DOUBLE_EQ(scale_overhead_fraction(4, 4, 0), 0.0);
  EXPECT_DOUBLE_EQ(effective_bitwidth(4, -1, 16), 4.0);
}

MacConfig vs_config(int w, int a, int ws, int as, int v = 16) {
  MacConfig c;
  c.wt_bits = w;
  c.act_bits = a;
  c.wt_scale_bits = ws;
  c.act_scale_bits = as;
  c.vector_size = v;
  return c;
}

TEST(MemoryModel, WeightStorageExactCounts) {
  // 8 output channels x 64 reduction, V=16 -> 4 vectors/row.
  const MacConfig cfg = vs_config(4, 8, 4, -1);
  MemoryModel mm(cfg);
  GemmDims dims{/*rows=*/32, /*cols=*/64, /*outs=*/8};
  const StorageCost w = mm.weight_storage(dims);
  EXPECT_EQ(w.elements, 8 * 64);
  EXPECT_EQ(w.value_bits, 8 * 64 * 4);
  EXPECT_EQ(w.scale_bits, 8 * 4 * 4);      // rows * vectors * M
  EXPECT_EQ(w.coarse_bits, 8 * 16);        // per-channel fp16 gamma
  EXPECT_DOUBLE_EQ(w.overhead_fraction(),
                   static_cast<double>(8 * 4 * 4 + 8 * 16) / (8 * 64 * 4));
}

TEST(MemoryModel, ActStorageUsesPerTensorCoarse) {
  const MacConfig cfg = vs_config(4, 4, 4, 4);
  MemoryModel mm(cfg);
  GemmDims dims{32, 64, 8};
  const StorageCost a = mm.act_storage(dims);
  EXPECT_EQ(a.value_bits, 32 * 64 * 4);
  EXPECT_EQ(a.scale_bits, 32 * 4 * 4);
  EXPECT_EQ(a.coarse_bits, 16);  // single per-tensor fp16 scale
}

TEST(MemoryModel, CoarseOnlyConfigHasNoVectorScales) {
  const MacConfig cfg = vs_config(8, 8, -1, -1);
  MemoryModel mm(cfg);
  GemmDims dims{32, 64, 8};
  EXPECT_EQ(mm.weight_storage(dims).scale_bits, 0);
  EXPECT_EQ(mm.act_storage(dims).scale_bits, 0);
  EXPECT_GT(mm.weight_storage(dims).coarse_bits, 0);
}

TEST(MemoryModel, EffectiveBitsMatchClosedFormForLargeTensors) {
  // For a large matrix the exact effective bits/element approaches the
  // closed form N*(1 + M/(V*N)) (coarse scales amortize to nothing).
  const MacConfig cfg = vs_config(4, 4, 4, 4);
  MemoryModel mm(cfg);
  GemmDims dims{4096, 4096, 512};
  const double exact = mm.weight_storage(dims).effective_bits_per_element();
  EXPECT_NEAR(exact, effective_bitwidth(4, 4, 16), 0.01);
}

TEST(MemoryModel, TailVectorsCountedViaLayout) {
  // cols = 40, V = 16 -> 3 vectors per row (16, 16, 8-tail).
  const MacConfig cfg = vs_config(4, 4, 6, -1);
  MemoryModel mm(cfg);
  GemmDims dims{1, 40, 2};
  EXPECT_EQ(mm.weight_storage(dims).scale_bits, 2 * 3 * 6);
}

TEST(MemoryModel, ChannelBlocksResetVectorBoundaries) {
  // cols = 36 as 4 blocks of 9 channels (conv R*S=4, C=9), V=4:
  // ceil(9/4)=3 vectors per block -> 12 per row, vs ceil(36/4)=9 unblocked.
  const MacConfig cfg = vs_config(4, 4, 4, -1, /*v=*/4);
  MemoryModel mm(cfg);
  GemmDims dims{1, 36, 1};
  EXPECT_EQ(mm.weight_storage(dims, /*channel_block=*/9).scale_bits, 12 * 4);
  EXPECT_EQ(mm.weight_storage(dims, /*channel_block=*/0).scale_bits, 9 * 4);
}

TEST(MemoryModel, QuantizedTrafficBeatsBaselineDespiteScales) {
  // 4/4/4/4 with V=16 must still use far less bandwidth than 8/8/-/-:
  // the 6.25% scale overhead cannot eat the 2x payload saving.
  Rng rng(3);
  Linear l1("l1", 64, 32, rng), l2("l2", 32, 16, rng);
  Tensor x(Shape{8, 64});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  l2.forward(l1.forward(x, false), false);
  std::vector<QuantizableGemm*> gemms{&l1, &l2};

  const ModelTraffic base = MemoryModel(vs_config(8, 8, -1, -1)).traffic(gemms);
  const ModelTraffic vsq = MemoryModel(vs_config(4, 4, 4, 4)).traffic(gemms);
  EXPECT_EQ(base.layers.size(), 2u);
  EXPECT_LT(vsq.ratio_vs(base), 0.56);  // ~0.53 expected
  EXPECT_GT(vsq.ratio_vs(base), 0.50);  // but not below the payload floor
  EXPECT_DOUBLE_EQ(base.ratio_vs(base), 1.0);
}

TEST(MemoryModel, TrafficOnRealModelAccumulates) {
  ResNetVConfig mc;
  mc.in_h = 8;
  mc.in_w = 8;
  mc.widths = {8, 16};
  mc.blocks_per_stage = 1;
  mc.classes = 4;
  ResNetV model(mc);
  Rng rng(7);
  Tensor x(Shape{2, 8, 8, 3});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  model.forward(x, false);

  MemoryModel mm(vs_config(4, 8, 4, 4));
  const ModelTraffic t = mm.traffic(model.gemms());
  EXPECT_EQ(t.layers.size(), model.gemms().size());
  std::int64_t w = 0, a = 0;
  for (const LayerTraffic& lt : t.layers) {
    w += lt.weights.total_bits();
    a += lt.acts.total_bits();
    EXPECT_GT(lt.total_bits(), 0);
  }
  EXPECT_EQ(w, t.weight_bits);
  EXPECT_EQ(a, t.act_bits);
}

}  // namespace
}  // namespace vsq
