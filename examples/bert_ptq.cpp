// Transformer PTQ end to end: the BERT-style span-extraction model with
// low-bit weights and 8-bit activations, per-channel vs per-vector, and
// the scale-datatype ladder (int4/int6 two-level, fp16, fp32).
// Mirrors the workflow behind Tables 6-7.
//
//   ./build/examples/bert_ptq [--wbits=4] [--large]
#include <iostream>

#include "exp/ptq.h"
#include "util/table.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  const int wbits = args.get_int("wbits", 4);
  const bool large = args.get_flag("large");

  std::cout << "BERT PTQ demo (" << (large ? "large" : "base") << "): W" << wbits
            << "/A8, V=16\n\n";

  ModelZoo zoo(artifacts_dir());
  PtqRunner ptq(zoo);
  const double fp32 = large ? zoo.bert_large_fp32_f1() : zoo.bert_base_fp32_f1();

  Table t({"configuration", "F1", "drop vs fp32"});
  t.add_row({"fp32 baseline", Table::num(fp32), "-"});
  const double poc =
      ptq.bert_accuracy(large, specs::weight_coarse(wbits), specs::act_coarse(8, false));
  t.add_row({"per-channel, max calib", Table::num(poc), Table::num(fp32 - poc)});

  for (const int ws : {4, 6}) {
    const double f1 =
        ptq.bert_accuracy(large, specs::weight_pv(wbits, ScaleDtype::kTwoLevelInt, ws),
                          specs::act_pv(8, false, ScaleDtype::kTwoLevelInt, 10));
    t.add_row({"VS-Quant, int" + std::to_string(ws) + " scales (S=" + std::to_string(ws) + "/10)",
               Table::num(f1), Table::num(fp32 - f1)});
  }
  const double fp16 = ptq.bert_accuracy(large, specs::weight_pv(wbits, ScaleDtype::kFp16),
                                        specs::act_pv(8, false, ScaleDtype::kFp16));
  t.add_row({"VS-Quant, fp16 scales", Table::num(fp16), Table::num(fp32 - fp16)});
  const double pv32 = ptq.bert_accuracy(large, specs::weight_pv(wbits, ScaleDtype::kFp32),
                                        specs::act_pv(8, false, ScaleDtype::kFp32));
  t.add_row({"VS-Quant, fp32 scales", Table::num(pv32), Table::num(fp32 - pv32)});
  t.print(std::cout);

  std::cout << "\nLow-bit weights stay near fp32 F1 with per-vector scaling while\n"
               "per-channel scaling collapses (paper Tables 6-7).\n";
  return 0;
}
