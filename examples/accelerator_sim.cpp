// Accelerator exploration: pick a hardware configuration (W/A/ws/as +
// scale-product rounding), run the bit-accurate PE on a long-tailed
// workload, and print the modeled energy/area breakdown next to the
// 8/8/-/- baseline — a miniature of the paper's Sec. 5-6 flow.
//
//   ./build/examples/accelerator_sim [--w=4] [--a=4] [--ws=4] [--as=4] [--spb=6]
#include <iostream>

#include "hw/design_space.h"
#include "hw/pe_simulator.h"
#include "tensor/ops.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  MacConfig cfg;
  cfg.wt_bits = args.get_int("w", 4);
  cfg.act_bits = args.get_int("a", 4);
  cfg.wt_scale_bits = args.get_int("ws", 4);
  cfg.act_scale_bits = args.get_int("as", 4);
  cfg.scale_product_bits = args.get_int("spb", -1);
  cfg.act_unsigned = false;

  std::cout << "VS-Quant accelerator simulation: config " << cfg.str()
            << (cfg.scale_product_bits > 0
                    ? " (scale product rounded to " + std::to_string(cfg.scale_product_bits) +
                          " bits)"
                    : " (full-bitwidth scale product)")
            << "\n\n";

  // Run the bit-accurate PE on a representative layer-sized GEMM.
  Rng rng(5);
  Tensor w(Shape{64, 576});
  Tensor a(Shape{128, 576});
  for (auto& v : w.span()) v = static_cast<float>(rng.laplace(0.3));
  for (auto& v : a.span()) v = static_cast<float>(rng.laplace(0.4));
  const PeSimulator pe(cfg);
  const PeRunResult run = pe.run(a, w, amax_per_tensor(a));
  const Tensor ref = pe.reference(a, w, amax_per_tensor(a));

  std::cout << "vector ops:          " << run.stats.vector_ops << "\n"
            << "gateable fraction:   " << Table::num(run.stats.gateable_fraction() * 100, 1)
            << "% (zero scale products / dot products)\n"
            << "max |partial sum|:   " << run.stats.max_abs_psum << " (accumulator "
            << cfg.accumulator_bits() << " bits)\n"
            << "vs fake-quant ref:   SQNR " << Table::num(sqnr_db(ref, run.output), 1)
            << " dB\n\n";

  EnergyModel em;
  AreaModel am;
  const MacConfig baseline{};  // 8/8/-/-
  Table t({"metric", cfg.str(), "8/8/-/- baseline"});
  t.add_row({"energy/op (norm)",
             Table::num(em.energy_per_op(cfg, run.stats.gateable_fraction()), 3),
             Table::num(em.energy_per_op(baseline), 3)});
  t.add_row({"area (norm)", Table::num(am.area(cfg), 3), Table::num(am.area(baseline), 3)});
  t.add_row({"perf/area (norm)", Table::num(am.perf_per_area(cfg), 3), "1.000"});
  t.print(std::cout);

  const AreaBreakdown ab = am.breakdown(cfg);
  std::cout << "\narea breakdown: mac=" << Table::num(ab.mac_array, 3)
            << " scale_path=" << Table::num(ab.scale_path, 3)
            << " collectors=" << Table::num(ab.collectors, 3)
            << " buffers=" << Table::num(ab.buffers, 3) << " ppu=" << Table::num(ab.ppu, 3)
            << " fixed=" << Table::num(ab.fixed, 3) << "\n";
  return 0;
}
