// Bring-your-own-network: what a downstream user does with this library.
//
// Defines a small MLP from the public layer API (not one of the repo's
// stand-in models), trains it briefly on a synthetic task, then walks the
// full VS-Quant lifecycle:
//
//   1. PTQ-calibrate every GEMM at 4-bit per-vector (two-level scales)
//   2. compare against per-channel scaling at the same bitwidth
//   3. export the integer package and run it through the bit-accurate
//      integer datapath (what the accelerator executes)
//
// Build & run:  ./build/examples/custom_model
#include <cmath>
#include <iostream>
#include <memory>

#include "exp/ptq.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "quant/export.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace vsq;

// A user-defined network: 2-hidden-layer MLP for a 4-class problem.
struct Mlp {
  std::unique_ptr<Linear> fc1, fc2, head;
  ReLU relu1, relu2;

  explicit Mlp(Rng& rng) {
    fc1 = std::make_unique<Linear>("fc1", 64, 96, rng);
    fc2 = std::make_unique<Linear>("fc2", 96, 96, rng);
    head = std::make_unique<Linear>("head", 96, 4, rng);
  }
  Tensor forward(const Tensor& x, bool train) {
    Tensor h = relu1.forward(fc1->forward(x, train), train);
    h = relu2.forward(fc2->forward(h, train), train);
    return head->forward(h, train);
  }
  void backward(const Tensor& g) {
    fc1->backward(relu1.backward(fc2->backward(relu2.backward(head->backward(g)))));
  }
  std::vector<Param*> params() {
    std::vector<Param*> ps;
    for (auto* l : {fc1.get(), fc2.get(), head.get()}) {
      for (Param* p : l->params()) ps.push_back(p);
    }
    return ps;
  }
  // The hook the quantization pipeline needs: the GEMM-bearing layers.
  std::vector<QuantizableGemm*> gemms() { return {fc1.get(), fc2.get(), head.get()}; }
};

// Synthetic 4-class task: class = argmax over 4 random linear projections
// of a long-tailed input (some features are 10x larger than others, so
// coarse scale factors struggle — the regime VS-Quant targets).
struct Task {
  Tensor inputs;            // [N, 64]
  std::vector<int> labels;  // N

  explicit Task(std::int64_t n, Rng& rng) : inputs(Shape{n, 64}) {
    std::vector<float> feature_scale(64);
    for (auto& f : feature_scale) f = static_cast<float>(std::exp(rng.normal(0.0, 1.0)));
    Tensor proto(Shape{4, 64});
    for (auto& v : proto.span()) v = static_cast<float>(rng.normal());
    labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      float best = -1e30f;
      int arg = 0;
      for (std::int64_t c = 0; c < 64; ++c) {
        inputs.at2(i, c) =
            static_cast<float>(rng.normal()) * feature_scale[static_cast<std::size_t>(c)];
      }
      for (int k = 0; k < 4; ++k) {
        float s = 0;
        for (std::int64_t c = 0; c < 64; ++c) s += proto.at2(k, c) * inputs.at2(i, c);
        if (s > best) {
          best = s;
          arg = k;
        }
      }
      labels[static_cast<std::size_t>(i)] = arg;
    }
  }
};

double accuracy(Mlp& model, const Task& task, std::int64_t i0, std::int64_t i1) {
  const Tensor logits = model.forward(task.inputs.slice_rows(i0, i1), false);
  return top1_accuracy(logits, {task.labels.begin() + i0, task.labels.begin() + i1});
}

}  // namespace

int main() {
  using namespace vsq;
  std::cout << "VS-Quant on a user-defined network\n"
            << "==================================\n\n";
  Rng rng(2718);
  Mlp model(rng);
  Task task(1024, rng);
  constexpr std::int64_t kTrain = 768, kTest = 1024;

  Adam opt(model.params(), 3e-3f);
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (std::int64_t i0 = 0; i0 < kTrain; i0 += 64) {
      opt.zero_grad();
      const Tensor logits = model.forward(task.inputs.slice_rows(i0, i0 + 64), true);
      const LossResult loss =
          cross_entropy(logits, {task.labels.begin() + i0, task.labels.begin() + i0 + 64});
      model.backward(loss.grad);
      opt.step();
    }
  }
  const double fp32 = accuracy(model, task, kTrain, kTest);

  // PTQ at 4 bits: per-channel vs per-vector two-level, same pipeline the
  // repo's stand-in models use. The first layer's activations are the raw
  // inputs (signed); apply_quant_specs handles that automatically.
  const auto evaluate = [&](const QuantSpec& w, const QuantSpec& a) {
    auto gemms = model.gemms();
    apply_quant_specs(gemms, w, a);
    set_mode_all(gemms, QuantMode::kCalibrate);
    model.forward(task.inputs.slice_rows(0, 256), false);  // calibration batch
    finalize_calibration(gemms);
    set_mode_all(gemms, QuantMode::kQuantEval);
    const double acc = accuracy(model, task, kTrain, kTest);
    return acc;  // leave kQuantEval active for export
  };

  Table t({"configuration", "top-1 (%)"});
  t.add_row({"fp32", Table::num(fp32)});
  t.add_row({"W4A4 per-channel",
             Table::num(evaluate(specs::weight_coarse(4), specs::act_coarse(4, true)))});
  const double pv = evaluate(specs::weight_pv(4, ScaleDtype::kTwoLevelInt, 6),
                             specs::act_pv(4, true, ScaleDtype::kTwoLevelInt, 6));
  t.add_row({"W4A4 per-vector (V=16, 6-bit scales)", Table::num(pv)});

  // Ship it: integer package -> bit-accurate integer inference.
  QuantizedModelPackage pkg;
  for (QuantizableGemm* g : model.gemms()) pkg.layers[g->gemm_name()] = export_gemm(*g, {});
  double int_acc = 0;
  {
    IntegerExecutionGuard guard(model.gemms(), pkg);
    int_acc = accuracy(model, task, kTrain, kTest);
  }
  t.add_row({"W4A4 per-vector, integer datapath", Table::num(int_acc)});
  t.print(std::cout);

  std::cout << "\nPer-vector scaling recovers the coarse-scaling loss on this\n"
               "long-tailed task, and the deployed integer path reproduces the\n"
               "simulated accuracy.\n";
  return 0;
}
