// QAT demo (paper Sec. 7): take the pretrained CNN to an aggressive
// bitwidth where PTQ visibly degrades, then recover accuracy with a couple
// of epochs of straight-through-estimator finetuning — per-vector vs
// per-channel.
//
//   ./build/examples/qat_demo [--bits=3] [--epochs=2]
#include <iostream>

#include "exp/ptq.h"
#include "exp/qat.h"
#include "util/table.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  const int bits = args.get_int("bits", 3);
  QatConfig qc;
  qc.epochs = args.get_int("epochs", 2);

  std::cout << "QAT demo: W" << bits << "/A" << bits << "U, " << qc.epochs
            << " finetuning epochs\n\n";

  ModelZoo zoo(artifacts_dir());
  PtqRunner ptq(zoo);
  const double fp32 = zoo.resnet_fp32_top1();

  const QuantSpec w_pv = specs::weight_pv(bits, ScaleDtype::kFp32);
  const QuantSpec a_pv = specs::act_pv(bits, true, ScaleDtype::kFp32);
  const QuantSpec w_poc = specs::weight_coarse(bits);
  const QuantSpec a_poc = specs::act_coarse(bits, true);

  const double ptq_pv = ptq.resnet_accuracy(w_pv, a_pv);
  const double ptq_poc = ptq.resnet_accuracy(w_poc, a_poc);
  const QatResult qat_pv = qat_resnet(zoo, w_pv, a_pv, qc);
  const QatResult qat_poc = qat_resnet(zoo, w_poc, a_poc, qc);

  Table t({"scheme", "PTQ top-1", "QAT top-1", "fp32"});
  t.add_row({"per-vector (PVAW)", Table::num(ptq_pv), Table::num(qat_pv.accuracy),
             Table::num(fp32)});
  t.add_row({"per-channel (POC)", Table::num(ptq_poc), Table::num(qat_poc.accuracy),
             Table::num(fp32)});
  t.print(std::cout);

  std::cout << "\nQAT closes most of the PTQ gap in " << qc.epochs
            << " epochs, and per-vector scaling both starts and ends higher\n"
               "(paper Table 9).\n";
  return 0;
}
