// CNN post-training quantization end to end: train (or load) the ResNetV
// model, then compare per-channel vs VS-Quant PTQ at a chosen bitwidth.
// Mirrors the workflow behind Tables 2-5.
//
//   ./build/examples/cnn_ptq [--bits=4] [--scale_bits=6] [--vector=16]
#include <iostream>

#include "exp/ptq.h"
#include "util/table.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace vsq;
  const Args args(argc, argv);
  const int bits = args.get_int("bits", 4);
  const int scale_bits = args.get_int("scale_bits", 6);
  const int vector = args.get_int("vector", 16);

  std::cout << "CNN PTQ demo: W" << bits << "/A" << bits << "U, V=" << vector << ", "
            << scale_bits << "-bit integer per-vector scales\n\n";

  ModelZoo zoo(artifacts_dir());
  PtqRunner ptq(zoo);
  const double fp32 = zoo.resnet_fp32_top1();

  const double poc_max =
      ptq.resnet_accuracy(specs::weight_coarse(bits), specs::act_coarse(bits, true));
  const double poc_entropy =
      ptq.resnet_accuracy(specs::weight_coarse(bits, {CalibMethod::kEntropy, 0}),
                          specs::act_coarse(bits, true, {CalibMethod::kEntropy, 0}));
  const double pv_fp32 =
      ptq.resnet_accuracy(specs::weight_pv(bits, ScaleDtype::kFp32, scale_bits, vector),
                          specs::act_pv(bits, true, ScaleDtype::kFp32, scale_bits, vector));
  const double pv_two_level = ptq.resnet_accuracy(
      specs::weight_pv(bits, ScaleDtype::kTwoLevelInt, scale_bits, vector),
      specs::act_pv(bits, true, ScaleDtype::kTwoLevelInt, scale_bits, vector));

  Table t({"configuration", "top-1 (%)", "drop vs fp32"});
  t.add_row({"fp32 baseline", Table::num(fp32), "-"});
  t.add_row({"per-channel, max calib", Table::num(poc_max), Table::num(fp32 - poc_max)});
  t.add_row({"per-channel, entropy calib", Table::num(poc_entropy),
             Table::num(fp32 - poc_entropy)});
  t.add_row({"VS-Quant, fp32 scales", Table::num(pv_fp32), Table::num(fp32 - pv_fp32)});
  t.add_row({"VS-Quant, two-level int scales", Table::num(pv_two_level),
             Table::num(fp32 - pv_two_level)});
  t.print(std::cout);

  std::cout << "\nVS-Quant holds accuracy at " << bits
            << " bits where coarse scaling degrades (paper Tables 3/5).\n";
  return 0;
}
