// Quickstart: the VS-Quant public API in five minutes, no training needed.
//
//   1. quantize a long-tailed matrix at each scale granularity and watch
//      the error shrink (the paper's core claim, Sec. 4)
//   2. factor the per-vector scales into the two-level integer form the
//      hardware stores (Sec. 4.4, Eq. 7)
//   3. run the bit-accurate integer PE datapath and check it against the
//      simulated-quantization reference (Sec. 5)
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "hw/pe_simulator.h"
#include "quant/two_level.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace vsq;
  std::cout << "VS-Quant quickstart\n===================\n\n";

  // A weight-like matrix with outliers: 64 output channels x 256 inputs.
  Rng rng(1234);
  Tensor w(Shape{64, 256});
  for (auto& v : w.span()) v = static_cast<float>(rng.laplace(0.4));

  // --- 1. Granularity sweep at 4 bits ------------------------------------
  const QuantFormat int4{4, true};
  const VectorLayout layout{256, 16, 0};  // V = 16
  Table t1({"granularity", "scales stored", "SQNR (dB)"});
  for (const auto g :
       {Granularity::kPerTensor, Granularity::kPerRow, Granularity::kPerVector}) {
    const ScaleSet s = compute_scales(w, g, layout, int4);
    const Tensor wq = fake_quantize(w, s, int4);
    t1.add_row({granularity_name(g), std::to_string(s.scales.size()),
                Table::num(sqnr_db(w, wq), 2)});
  }
  t1.print(std::cout);
  std::cout << "\nPer-vector scaling stores more scales but each vector only has\n"
               "to cover its own range -> much lower quantization error.\n\n";

  // --- 2. Two-level scales (Eq. 7) ----------------------------------------
  const ScaleSet fp_scales = compute_scales(w, Granularity::kPerVector, layout, int4);
  Table t2({"scale repr", "SQNR (dB)", "bits/scale"});
  t2.add_row({"fp32 per-vector", Table::num(sqnr_db(w, fake_quantize(w, fp_scales, int4)), 2),
              "32"});
  for (const int m : {4, 6}) {
    const TwoLevelScales tl =
        two_level_from_scales(fp_scales, QuantFormat{m, false}, CoarseAxis::kPerRow);
    t2.add_row({"int" + std::to_string(m) + " + fp32/channel",
                Table::num(sqnr_db(w, fake_quantize(w, tl.to_scale_set(), int4)), 2),
                std::to_string(m)});
  }
  t2.print(std::cout);
  std::cout << "\n6-bit integer per-vector scales recover nearly all of the fp32-\n"
               "scale quality at a fraction of the storage (Tables 5-7).\n\n";

  // --- 3. Bit-accurate hardware datapath ----------------------------------
  Tensor a(Shape{32, 256});
  for (auto& v : a.span()) v = static_cast<float>(rng.laplace(0.5));
  MacConfig cfg;  // 4/4/4/4 VS-Quant PE
  cfg.wt_bits = cfg.act_bits = 4;
  cfg.wt_scale_bits = cfg.act_scale_bits = 4;
  cfg.act_unsigned = false;
  const PeSimulator pe(cfg);
  const PeRunResult hw = pe.run(a, w, amax_per_tensor(a));
  const Tensor ref = pe.reference(a, w, amax_per_tensor(a));
  std::cout << "PE (" << cfg.str() << ") vs simulated quantization: max |diff| = "
            << max_abs_diff(hw.output, ref) << " over " << hw.stats.vector_ops
            << " vector ops\n";
  std::cout << "The integer datapath reproduces the math exactly; Fig. 2's design\n"
               "is just this computation in hardware.\n";
  return 0;
}
