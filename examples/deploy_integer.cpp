// Deployment walkthrough: train -> PTQ-calibrate -> export the integer
// package -> run inference entirely through the bit-accurate integer
// datapath (what a real VS-Quant accelerator executes), and verify it
// reproduces the fake-quant accuracy the calibration pipeline promised.
//
// This is the full life of a model in this repo:
//   ModelZoo     trains (or loads) the CNN checkpoint
//   PtqPipeline  calibrates weight + activation scale factors (Sec. 4)
//   export_gemm  packages N-bit weights, M-bit vector scales, PPU constants
//   IntegerExecutionGuard routes every conv/linear GEMM through int_gemm
//
// Build & run:  ./build/examples/deploy_integer
#include <iostream>

#include "exp/ptq.h"
#include "hw/mac_config.h"
#include "hw/memory_model.h"
#include "models/zoo.h"
#include "quant/export.h"
#include "util/table.h"

int main() {
  using namespace vsq;
  std::cout << "VS-Quant integer deployment example\n"
            << "===================================\n\n";

  // The 4/8/4/6 hardware point: 4-bit weights, 8-bit activations, 4-bit
  // weight scales, 6-bit activation scales — a strong ResNet config from
  // the paper's Figure 4 discussion.
  const MacConfig mac = MacConfig::parse("4/8/4/6");
  std::cout << "Target hardware: " << mac.str() << " (" << mac.granularity_label()
            << "), V = " << mac.vector_size << "\n\n";

  ModelZoo zoo(artifacts_dir());
  auto model = zoo.resnet();
  const auto& test = zoo.image_test();

  // fp32 reference.
  const Tensor fp_logits = model->forward(test.batch_images(0, test.size()), false);
  const double fp32 = top1_accuracy(fp_logits, test.batch_labels(0, test.size()));

  // PTQ: calibrate on the calibration split, then fake-quant eval.
  auto gemms = model->gemms();
  apply_quant_specs(gemms, mac.weight_spec(), mac.act_spec());
  set_mode_all(gemms, QuantMode::kCalibrate);
  model->forward(zoo.image_calib().batch_images(0, zoo.image_calib().size()), false);
  finalize_calibration(gemms);
  set_mode_all(gemms, QuantMode::kQuantEval);
  const Tensor fake_logits = model->forward(test.batch_images(0, test.size()), false);
  const double fake = top1_accuracy(fake_logits, test.batch_labels(0, test.size()));

  // Export the integer package (what ships to the device).
  QuantizedModelPackage pkg;
  for (QuantizableGemm* g : gemms) pkg.layers[g->gemm_name()] = export_gemm(*g, {});
  const std::string path = artifacts_dir() + "/resnetv_deploy.vsqa";
  pkg.save(path);
  const QuantizedModelPackage shipped = QuantizedModelPackage::load(path);
  std::cout << "exported " << shipped.layers.size() << " GEMM layers -> " << path << "\n";

  // Storage accounting for the shipped weights (Sec. 4.4 overhead).
  const MemoryModel mm(mac);
  const ModelTraffic traffic = mm.traffic(gemms);
  const MemoryModel mm8(MacConfig::parse("8/8/-/-"));
  std::cout << "weight payload: " << traffic.weight_bits / 8 / 1024 << " KiB  ("
            << Table::num(traffic.ratio_vs(mm8.traffic(gemms)), 3)
            << "x the 8/8/-/- traffic, scale metadata included)\n\n";

  // Integer inference through the deployed package.
  double integer = 0.0;
  IntGemmStats stats;
  {
    IntegerExecutionGuard guard(gemms, shipped);
    const Tensor hw_logits = model->forward(test.batch_images(0, test.size()), false);
    integer = top1_accuracy(hw_logits, test.batch_labels(0, test.size()));
    stats = guard.stats();
  }

  Table t({"execution", "top-1 (%)"});
  t.add_row({"fp32", Table::num(fp32)});
  t.add_row({"fake-quant (simulated, " + mac.str() + ")", Table::num(fake)});
  t.add_row({"integer datapath (deployed package)", Table::num(integer)});
  t.print(std::cout);

  std::cout << "\nvector ops executed: " << stats.vector_ops
            << ", gateable: " << Table::num(100 * stats.gateable_fraction(), 1)
            << "%, widest partial sum: " << stats.max_abs_psum << " (accumulator budget: 2^"
            << mac.accumulator_bits() - 1 << ")\n"
            << "\nThe integer path reproduces the simulated-quantization accuracy —\n"
               "the software/hardware contract that makes PTQ results transferable\n"
               "to the accelerator.\n";
  return 0;
}
