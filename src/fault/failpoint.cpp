#include "fault/failpoint.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <thread>

namespace vsq::fault {
namespace {

struct Point {
  Spec spec;
  bool armed = false;
  std::uint64_t evals = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  std::mt19937_64 rng{0x5eedfa11u};
  std::uint64_t total_fires = 0;
  int armed_count = 0;  // mirrored into detail::g_armed under mu
};

// Function-local static so sites that run during static init of other
// translation units see a constructed registry.
Registry& reg() {
  static Registry r;
  return r;
}

void publish_armed_count(const Registry& r) {
  detail::g_armed.store(r.armed_count, std::memory_order_relaxed);
}

// Parses a leading non-negative number (integer or decimal) from s starting
// at pos; advances pos past it. Returns false if no digits present.
bool parse_number(const std::string& s, std::size_t& pos, double& out) {
  std::size_t start = pos;
  while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.')) {
    ++pos;
  }
  if (pos == start) return false;
  try {
    out = std::stod(s.substr(start, pos - start));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

struct EnvLoader {
  EnvLoader() { configure_from_env(); }
};
// Arms VSQ_FAILPOINTS before main() so env-driven chaos needs no code hook.
EnvLoader g_env_loader;

}  // namespace

namespace detail {
std::atomic<int> g_armed{0};

bool eval(const char* name) {
  Spec spec;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(name);
    if (it == r.points.end() || !it->second.armed) return false;
    Point& p = it->second;
    ++p.evals;
    if (p.spec.max_fires != 0 && p.fires >= p.spec.max_fires) return false;
    if (p.spec.probability < 1.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(r.rng) >= p.spec.probability) return false;
    }
    ++p.fires;
    ++r.total_fires;
    spec = p.spec;
  }
  switch (spec.kind) {
    case Kind::kError:
      throw FailpointError(name, spec.message.empty() ? std::string("failpoint: ") + name
                                                      : spec.message);
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_us));
      return true;
    case Kind::kTrigger:
      return true;
  }
  return false;
}
}  // namespace detail

Spec parse_spec(const std::string& action) {
  Spec spec;
  std::size_t pos = 0;
  // Optional "P%" prefix.
  {
    std::size_t probe = pos;
    double value = 0.0;
    if (parse_number(action, probe, value) && probe < action.size() && action[probe] == '%') {
      if (value < 0.0 || value > 100.0) {
        throw std::invalid_argument("failpoint: probability out of range in '" + action + "'");
      }
      spec.probability = value / 100.0;
      pos = probe + 1;
    }
  }
  // Optional "N*" prefix.
  {
    std::size_t probe = pos;
    double value = 0.0;
    if (parse_number(action, probe, value) && probe < action.size() && action[probe] == '*') {
      if (value < 1.0 || value != static_cast<std::uint64_t>(value)) {
        throw std::invalid_argument("failpoint: bad fire count in '" + action + "'");
      }
      spec.max_fires = static_cast<std::uint64_t>(value);
      pos = probe + 1;
    }
  }
  std::size_t open = action.find('(', pos);
  std::string kind = action.substr(pos, open == std::string::npos ? std::string::npos : open - pos);
  std::string arg;
  if (open != std::string::npos) {
    if (action.back() != ')') {
      throw std::invalid_argument("failpoint: missing ')' in '" + action + "'");
    }
    arg = action.substr(open + 1, action.size() - open - 2);
  }
  if (kind == "error") {
    spec.kind = Kind::kError;
    spec.message = arg;
  } else if (kind == "delay") {
    spec.kind = Kind::kDelay;
    if (arg.empty()) {
      throw std::invalid_argument("failpoint: delay needs microseconds in '" + action + "'");
    }
    try {
      long long us = std::stoll(arg);
      if (us < 0) throw std::invalid_argument("negative");
      spec.delay_us = static_cast<std::uint32_t>(us);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint: bad delay in '" + action + "'");
    }
  } else if (kind == "trigger") {
    spec.kind = Kind::kTrigger;
  } else if (kind == "off") {
    spec.kind = Kind::kTrigger;
    spec.probability = 0.0;
  } else {
    throw std::invalid_argument("failpoint: unknown kind '" + kind + "' in '" + action + "'");
  }
  return spec;
}

void enable(const std::string& name, const Spec& spec) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  Point& p = r.points[name];
  if (!p.armed) ++r.armed_count;
  p.spec = spec;
  p.armed = true;
  p.evals = 0;
  p.fires = 0;
  publish_armed_count(r);
}

void enable(const std::string& name, const std::string& action) {
  enable(name, parse_spec(action));
}

bool disable(const std::string& name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end() || !it->second.armed) return false;
  it->second.armed = false;
  --r.armed_count;
  publish_armed_count(r);
  return true;
}

void disable_all() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, p] : r.points) p.armed = false;
  r.armed_count = 0;
  publish_armed_count(r);
}

void configure(const std::string& list) {
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    std::string entry =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? list.size() : comma + 1;
    // Trim surrounding whitespace.
    std::size_t b = entry.find_first_not_of(" \t");
    std::size_t e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    entry = entry.substr(b, e - b + 1);
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("failpoint: entry missing '=' in '" + entry + "'");
    }
    std::string name = entry.substr(0, eq);
    std::string action = entry.substr(eq + 1);
    if (name.empty()) {
      throw std::invalid_argument("failpoint: empty point name in '" + entry + "'");
    }
    if (action.empty() || action == "off") {
      disable(name);
    } else {
      enable(name, parse_spec(action));
    }
  }
}

void configure_from_env() {
  const char* env = std::getenv("VSQ_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  configure(env);
}

std::uint64_t evals(const std::string& name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.evals;
}

std::uint64_t fires(const std::string& name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.fires;
}

std::uint64_t total_fires() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.total_fires;
}

std::vector<std::string> armed_points() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, p] : r.points) {
    if (p.armed) out.push_back(name);
  }
  return out;
}

void reseed(std::uint64_t seed) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.rng.seed(seed);
}

ScopedFailpoint::ScopedFailpoint(std::string name, const Spec& spec) : name_(std::move(name)) {
  Registry& r = reg();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(name_);
    if (it != r.points.end() && it->second.armed) {
      had_prev_ = true;
      prev_ = it->second.spec;
    }
  }
  enable(name_, spec);
}

ScopedFailpoint::ScopedFailpoint(std::string name, const std::string& action)
    : ScopedFailpoint(std::move(name), parse_spec(action)) {}

ScopedFailpoint::~ScopedFailpoint() {
  if (had_prev_) {
    enable(name_, prev_);
  } else {
    disable(name_);
  }
}

}  // namespace vsq::fault
