// Failpoint fault injection: named sites compiled into the production code
// paths that do nothing until armed, then inject errors, delays, or boolean
// triggers under a per-point policy. Modeled on the tikv/etcd failpoint
// idiom: sites are cheap enough to leave in release builds (one relaxed
// atomic load when no point anywhere is armed), and policies are set either
// programmatically (tests, chaos harness) or via the VSQ_FAILPOINTS
// environment variable (whole-process chaos without recompiling).
//
//   VSQ_FAILPOINT("serve.batcher.pre_forward");          // may throw
//   if (VSQ_FAILPOINT_TRIGGERED("net.server.write.partial")) { ...torn path... }
//
// Policy grammar (one action per point):
//   action   := [prob '%'] [count '*'] kind [ '(' arg ')' ]
//   kind     := "error" | "delay" | "trigger" | "off"
//     error(msg)   -> throw FailpointError(msg) at the site
//     delay(us)    -> sleep us microseconds, then report triggered
//     trigger      -> report triggered (site decides what that means)
//   prob     := integer or decimal percentage, e.g. "25%" fires 1 in 4 evals
//   count    := fire at most N times, e.g. "3*error"
// Environment form: VSQ_FAILPOINTS="name=action,name2=action2".
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace vsq::fault {

// Thrown by an armed kError failpoint. Catchable as std::runtime_error so
// existing error paths (batcher catch blocks, net status mapping) treat an
// injected fault exactly like a natural one; the point name is preserved so
// tests can assert which site fired.
class FailpointError : public std::runtime_error {
 public:
  FailpointError(std::string point, const std::string& message)
      : std::runtime_error(message), point_(std::move(point)) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

enum class Kind : std::uint8_t {
  kError,    // throw FailpointError at the site
  kDelay,    // sleep delay_us, then report triggered
  kTrigger,  // report triggered; the site chooses the failure behavior
};

struct Spec {
  Kind kind = Kind::kTrigger;
  double probability = 1.0;      // fraction of evals that fire, (0, 1]
  std::uint64_t max_fires = 0;   // 0 = unlimited
  std::uint32_t delay_us = 0;    // kDelay only
  std::string message;           // kError only; defaults to the point name
};

// Parses the action grammar above. Throws std::invalid_argument on
// malformed input ("off" is accepted and returned as probability 0).
Spec parse_spec(const std::string& action);

// Arm `name` with the given policy. Replaces any existing policy and resets
// the point's fire/eval counters.
void enable(const std::string& name, const Spec& spec);
void enable(const std::string& name, const std::string& action);

// Disarm one point (returns false if it was not armed) or every point.
bool disable(const std::string& name);
void disable_all();

// Arm a comma-separated list: "a=error,b=10%delay(500)". Entries with an
// empty action or action "off" disarm that point.
void configure(const std::string& list);

// Load VSQ_FAILPOINTS from the environment. Called once automatically at
// static-init time; safe and idempotent to call again.
void configure_from_env();

// Counters for assertions: how many times the site was evaluated while
// armed, and how many of those evaluations actually fired. Zero for
// unknown/never-armed points. Counters survive disable() until the point is
// re-enabled.
std::uint64_t evals(const std::string& name);
std::uint64_t fires(const std::string& name);
std::uint64_t total_fires();

// Names of all currently armed points (for chaos-harness logging).
std::vector<std::string> armed_points();

// Reseed the RNG behind probabilistic policies so chaos runs replay
// deterministically.
void reseed(std::uint64_t seed);

// RAII guard: arms a point for a scope and restores the previous state
// (armed-with-old-spec or disarmed) on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const Spec& spec);
  ScopedFailpoint(std::string name, const std::string& action);
  ~ScopedFailpoint();
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
  bool had_prev_ = false;
  Spec prev_;
};

namespace detail {
// Count of armed points; the macros collapse to one relaxed load + branch
// when this is zero, which is the permanent state in production.
extern std::atomic<int> g_armed;
// Slow path: returns true if the point fired as kDelay/kTrigger, throws on
// kError, returns false when the point is unarmed or didn't fire.
bool eval(const char* name);
}  // namespace detail

inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

}  // namespace vsq::fault

// Statement site: injects errors/delays; a kTrigger policy here only delays
// accounting, not control flow.
#define VSQ_FAILPOINT(name)                                  \
  do {                                                       \
    if (::vsq::fault::armed()) {                             \
      (void)::vsq::fault::detail::eval(name);                \
    }                                                        \
  } while (0)

// Expression site: true when the point fires as delay/trigger, so the
// surrounding code can take an explicit failure branch (torn write, early
// return). kError policies still throw.
#define VSQ_FAILPOINT_TRIGGERED(name) \
  (::vsq::fault::armed() && ::vsq::fault::detail::eval(name))
