// Region-style scratch allocator for kernel workspaces (GEMM packing
// buffers, per-thread accumulators). Allocation is a pointer bump; memory
// is recycled across calls instead of hitting malloc on every GEMM.
//
// Key property: blocks never move or shrink once allocated, so pointers
// handed out earlier stay valid across later alloc() calls (unlike a
// std::vector that reallocates). rewind() bulk-"frees" everything
// allocated after a mark() without releasing the underlying memory.
//
// Typical use (see tensor/gemm_kernel.cpp):
//   ScratchArena& arena = ScratchArena::thread_local_arena();
//   ScratchRegion region(arena);              // rewinds on scope exit
//   float* packed_b = arena.alloc_n<float>(kc * nc);
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace vsq {

class ScratchArena {
 public:
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  // 64-byte aligned by default so packed panels sit on cache-line (and
  // AVX) boundaries. Never returns nullptr (throws std::bad_alloc).
  void* alloc(std::size_t bytes, std::size_t align = 64);

  template <typename T>
  T* alloc_n(std::size_t n) {
    return static_cast<T*>(alloc(n * sizeof(T)));
  }

  Mark mark() const { return Mark{cur_, cur_ < blocks_.size() ? blocks_[cur_].used : 0}; }
  void rewind(const Mark& m);

  // Ensure a single free block of at least `bytes` (plus alignment slack)
  // exists without handing anything out, so a later alloc() up to that
  // size cannot malloc. The serving engine preallocates by running a
  // warmup forward instead (which sizes the arena exactly); reserve() is
  // for callers that know a byte bound up front, and for tests.
  void reserve(std::size_t bytes);

  // Total bytes held (for tests / introspection).
  std::size_t capacity() const;

  // Per-thread arena: pool workers and the main thread each get their own,
  // so concurrent GEMM chunks never contend or share lifetimes.
  static ScratchArena& thread_local_arena();

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // index of the block currently being bumped
};

// RAII rewind-to-mark, exception safe (parallel_for rethrows through it).
class ScratchRegion {
 public:
  explicit ScratchRegion(ScratchArena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ScratchRegion() { arena_.rewind(mark_); }
  ScratchRegion(const ScratchRegion&) = delete;
  ScratchRegion& operator=(const ScratchRegion&) = delete;

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace vsq
