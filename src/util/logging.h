// Minimal timestamped logging to stderr. Bench binaries log training /
// calibration progress so long runs are observable.
#pragma once

#include <sstream>
#include <string>

namespace vsq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level (default Info). Set kWarn in tests to quiet them.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

// Usage: VSQ_LOG(Info) << "trained " << n << " steps";
#define VSQ_LOG(severity) \
  ::vsq::detail::LogStream(::vsq::LogLevel::k##severity)

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace vsq
