// Dependency-free SVG plot writer used by the figure benches to render the
// paper's plots (Figures 3-7) as standalone .svg files under artifacts/.
//
// Two chart types cover everything the paper draws:
//   * ScatterPlot — energy/area design spaces (Figs. 4-7): multiple series
//     with distinct colors and marker shapes, filled vs hollow markers
//     (Pareto vs dominated, as in the paper), axis titles, tick labels,
//     a legend, and optional per-point text labels.
//   * BarChart — grouped bars (Fig. 3): one group per hardware
//     configuration, one colored bar per rounding variant.
//
// Coordinates are data-space; the plot maps them into a fixed-size canvas
// with margins. Output is deterministic (no timestamps, stable float
// formatting) so artifacts diff cleanly between runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vsq {

// Marker glyphs, mirroring the paper's band encoding in Figures 4-6.
enum class Marker : std::uint8_t { kCircle, kSquare, kDiamond, kTriangle, kCross };

struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  bool filled = true;    // filled = Pareto-optimal in the figure benches
  std::string label;     // optional text drawn next to the marker
};

struct ScatterSeries {
  std::string name;          // legend entry
  std::string color;         // any SVG color, e.g. "#1f77b4"
  Marker marker = Marker::kCircle;
  std::vector<ScatterPoint> points;
};

// Shared axis/frame options.
struct PlotOptions {
  int width = 860;
  int height = 560;
  std::string title;
  std::string x_label;
  std::string y_label;
  // Axis ranges; when min == max the range is derived from the data with
  // 5% padding.
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
  int x_ticks = 6;
  int y_ticks = 6;
  bool grid = true;
  bool point_labels = false;  // draw ScatterPoint::label strings
};

class ScatterPlot {
 public:
  explicit ScatterPlot(PlotOptions options);

  ScatterSeries& add_series(std::string name, std::string color,
                            Marker marker = Marker::kCircle);

  // Renders the full SVG document.
  std::string render() const;
  // Renders and writes to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

  std::size_t series_count() const { return series_.size(); }

 private:
  PlotOptions opt_;
  std::vector<ScatterSeries> series_;
};

struct BarGroup {
  std::string label;           // x-axis group label (e.g. "4/4/4/4")
  std::vector<double> values;  // one value per series, NaN = missing bar
};

class BarChart {
 public:
  explicit BarChart(PlotOptions options);

  // Series are the per-group bar colors, in value order.
  void set_series(std::vector<std::string> names, std::vector<std::string> colors);
  void add_group(std::string label, std::vector<double> values);

  std::string render() const;
  bool write(const std::string& path) const;

  std::size_t group_count() const { return groups_.size(); }

 private:
  PlotOptions opt_;
  std::vector<std::string> series_names_;
  std::vector<std::string> series_colors_;
  std::vector<BarGroup> groups_;
};

namespace svg {

// Stable short float formatting used throughout ("12.5", "0.062", "3").
std::string fmt(double v);
// Escape <, >, & and quotes for text nodes / attribute values.
std::string escape(const std::string& s);
// "Nice" tick step covering span with at most `max_ticks` intervals
// (1/2/5 × 10^k).
double nice_step(double span, int max_ticks);
// Marker path/element at (cx, cy) with radius r.
std::string marker_element(Marker m, double cx, double cy, double r,
                           const std::string& color, bool filled);
// Default qualitative palette (matplotlib tab10 order).
const std::vector<std::string>& palette();

}  // namespace svg

}  // namespace vsq
