#include "util/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace vsq {
namespace svg {

std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  // Up to 4 significant decimals, trailing zeros trimmed.
  std::ostringstream os;
  os.setf(std::ios::fixed);
  int prec = 4;
  const double a = std::abs(v);
  if (a >= 1000) prec = 0;
  else if (a >= 100) prec = 1;
  else if (a >= 10) prec = 2;
  else if (a >= 1) prec = 3;
  os.precision(prec);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

double nice_step(double span, int max_ticks) {
  if (span <= 0 || max_ticks < 1) return 1.0;
  const double raw = span / max_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;  // in [1, 10)
  double step;
  if (norm <= 1.0) step = 1.0;
  else if (norm <= 2.0) step = 2.0;
  else if (norm <= 5.0) step = 5.0;
  else step = 10.0;
  return step * mag;
}

std::string marker_element(Marker m, double cx, double cy, double r,
                           const std::string& color, bool filled) {
  const std::string fill = filled ? color : "white";
  const std::string common =
      " fill=\"" + fill + "\" stroke=\"" + color + "\" stroke-width=\"1.4\"";
  std::ostringstream os;
  switch (m) {
    case Marker::kCircle:
      os << "<circle cx=\"" << fmt(cx) << "\" cy=\"" << fmt(cy) << "\" r=\"" << fmt(r) << "\""
         << common << "/>";
      break;
    case Marker::kSquare:
      os << "<rect x=\"" << fmt(cx - r) << "\" y=\"" << fmt(cy - r) << "\" width=\""
         << fmt(2 * r) << "\" height=\"" << fmt(2 * r) << "\"" << common << "/>";
      break;
    case Marker::kDiamond:
      os << "<polygon points=\"" << fmt(cx) << "," << fmt(cy - 1.3 * r) << " "
         << fmt(cx + 1.3 * r) << "," << fmt(cy) << " " << fmt(cx) << "," << fmt(cy + 1.3 * r)
         << " " << fmt(cx - 1.3 * r) << "," << fmt(cy) << "\"" << common << "/>";
      break;
    case Marker::kTriangle:
      os << "<polygon points=\"" << fmt(cx) << "," << fmt(cy - 1.2 * r) << " "
         << fmt(cx + 1.2 * r) << "," << fmt(cy + r) << " " << fmt(cx - 1.2 * r) << ","
         << fmt(cy + r) << "\"" << common << "/>";
      break;
    case Marker::kCross:
      os << "<path d=\"M" << fmt(cx - r) << " " << fmt(cy - r) << " L" << fmt(cx + r) << " "
         << fmt(cy + r) << " M" << fmt(cx - r) << " " << fmt(cy + r) << " L" << fmt(cx + r)
         << " " << fmt(cy - r) << "\" stroke=\"" << color << "\" stroke-width=\"1.8\" fill=\"none\"/>";
      break;
  }
  return os.str();
}

const std::vector<std::string>& palette() {
  static const std::vector<std::string> kPalette = {
      "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
      "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"};
  return kPalette;
}

namespace {

constexpr double kMarginLeft = 72, kMarginRight = 168, kMarginTop = 48, kMarginBottom = 58;

struct Frame {
  double x0, x1, y0, y1;      // data ranges
  double px0, px1, py0, py1;  // pixel ranges (py0 = bottom)

  double sx(double x) const {
    return x1 == x0 ? (px0 + px1) / 2 : px0 + (x - x0) / (x1 - x0) * (px1 - px0);
  }
  double sy(double y) const {
    return y1 == y0 ? (py0 + py1) / 2 : py0 - (y - y0) / (y1 - y0) * (py0 - py1);
  }
};

void pad_range(double& lo, double& hi) {
  if (lo > hi) std::swap(lo, hi);
  const double span = hi - lo;
  const double pad = span == 0 ? (std::abs(hi) > 0 ? std::abs(hi) * 0.1 : 1.0) : span * 0.05;
  lo -= pad;
  hi += pad;
}

void open_doc(std::ostringstream& os, const PlotOptions& opt) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opt.width << "\" height=\""
     << opt.height << "\" viewBox=\"0 0 " << opt.width << " " << opt.height << "\">\n"
     << "<rect width=\"" << opt.width << "\" height=\"" << opt.height
     << "\" fill=\"white\"/>\n"
     << "<g font-family=\"Helvetica,Arial,sans-serif\" font-size=\"12\">\n";
  if (!opt.title.empty()) {
    os << "<text x=\"" << opt.width / 2 << "\" y=\"24\" text-anchor=\"middle\" "
       << "font-size=\"15\" font-weight=\"bold\">" << svg::escape(opt.title) << "</text>\n";
  }
}

void close_doc(std::ostringstream& os) { os << "</g>\n</svg>\n"; }

void draw_frame_and_ticks(std::ostringstream& os, const PlotOptions& opt, const Frame& f) {
  // Frame.
  os << "<rect x=\"" << svg::fmt(f.px0) << "\" y=\"" << svg::fmt(f.py1) << "\" width=\""
     << svg::fmt(f.px1 - f.px0) << "\" height=\"" << svg::fmt(f.py0 - f.py1)
     << "\" fill=\"none\" stroke=\"#444\"/>\n";
  // X ticks.
  const double xstep = svg::nice_step(f.x1 - f.x0, opt.x_ticks);
  for (double t = std::ceil(f.x0 / xstep) * xstep; t <= f.x1 + 1e-12; t += xstep) {
    const double px = f.sx(t);
    if (opt.grid) {
      os << "<line x1=\"" << svg::fmt(px) << "\" y1=\"" << svg::fmt(f.py0) << "\" x2=\""
         << svg::fmt(px) << "\" y2=\"" << svg::fmt(f.py1)
         << "\" stroke=\"#ddd\" stroke-width=\"0.6\"/>\n";
    }
    os << "<line x1=\"" << svg::fmt(px) << "\" y1=\"" << svg::fmt(f.py0) << "\" x2=\""
       << svg::fmt(px) << "\" y2=\"" << svg::fmt(f.py0 + 4) << "\" stroke=\"#444\"/>\n"
       << "<text x=\"" << svg::fmt(px) << "\" y=\"" << svg::fmt(f.py0 + 18)
       << "\" text-anchor=\"middle\">" << svg::fmt(t) << "</text>\n";
  }
  // Y ticks.
  const double ystep = svg::nice_step(f.y1 - f.y0, opt.y_ticks);
  for (double t = std::ceil(f.y0 / ystep) * ystep; t <= f.y1 + 1e-12; t += ystep) {
    const double py = f.sy(t);
    if (opt.grid) {
      os << "<line x1=\"" << svg::fmt(f.px0) << "\" y1=\"" << svg::fmt(py) << "\" x2=\""
         << svg::fmt(f.px1) << "\" y2=\"" << svg::fmt(py)
         << "\" stroke=\"#ddd\" stroke-width=\"0.6\"/>\n";
    }
    os << "<line x1=\"" << svg::fmt(f.px0 - 4) << "\" y1=\"" << svg::fmt(py) << "\" x2=\""
       << svg::fmt(f.px0) << "\" y2=\"" << svg::fmt(py) << "\" stroke=\"#444\"/>\n"
       << "<text x=\"" << svg::fmt(f.px0 - 8) << "\" y=\"" << svg::fmt(py + 4)
       << "\" text-anchor=\"end\">" << svg::fmt(t) << "</text>\n";
  }
  // Axis titles.
  if (!opt.x_label.empty()) {
    os << "<text x=\"" << svg::fmt((f.px0 + f.px1) / 2) << "\" y=\""
       << svg::fmt(f.py0 + 42) << "\" text-anchor=\"middle\" font-size=\"13\">"
       << svg::escape(opt.x_label) << "</text>\n";
  }
  if (!opt.y_label.empty()) {
    const double cx = f.px0 - 52, cy = (f.py0 + f.py1) / 2;
    os << "<text x=\"" << svg::fmt(cx) << "\" y=\"" << svg::fmt(cy)
       << "\" text-anchor=\"middle\" font-size=\"13\" transform=\"rotate(-90 " << svg::fmt(cx)
       << " " << svg::fmt(cy) << ")\">" << svg::escape(opt.y_label) << "</text>\n";
  }
}

}  // namespace
}  // namespace svg

// ---------------------------------------------------------------- Scatter

ScatterPlot::ScatterPlot(PlotOptions options) : opt_(std::move(options)) {}

ScatterSeries& ScatterPlot::add_series(std::string name, std::string color, Marker marker) {
  series_.push_back(ScatterSeries{std::move(name), std::move(color), marker, {}});
  return series_.back();
}

std::string ScatterPlot::render() const {
  using namespace svg;
  std::ostringstream os;
  open_doc(os, opt_);

  Frame f;
  f.px0 = kMarginLeft;
  f.px1 = opt_.width - kMarginRight;
  f.py0 = opt_.height - kMarginBottom;
  f.py1 = kMarginTop;

  if (opt_.x_min != opt_.x_max) {
    f.x0 = opt_.x_min;
    f.x1 = opt_.x_max;
  } else {
    f.x0 = 1e300;
    f.x1 = -1e300;
    for (const auto& s : series_)
      for (const auto& p : s.points) {
        f.x0 = std::min(f.x0, p.x);
        f.x1 = std::max(f.x1, p.x);
      }
    if (f.x0 > f.x1) { f.x0 = 0; f.x1 = 1; }
    pad_range(f.x0, f.x1);
  }
  if (opt_.y_min != opt_.y_max) {
    f.y0 = opt_.y_min;
    f.y1 = opt_.y_max;
  } else {
    f.y0 = 1e300;
    f.y1 = -1e300;
    for (const auto& s : series_)
      for (const auto& p : s.points) {
        f.y0 = std::min(f.y0, p.y);
        f.y1 = std::max(f.y1, p.y);
      }
    if (f.y0 > f.y1) { f.y0 = 0; f.y1 = 1; }
    pad_range(f.y0, f.y1);
  }

  draw_frame_and_ticks(os, opt_, f);

  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      const double cx = f.sx(p.x), cy = f.sy(p.y);
      os << marker_element(s.marker, cx, cy, 5.0, s.color, p.filled) << "\n";
      if (opt_.point_labels && !p.label.empty()) {
        os << "<text x=\"" << fmt(cx + 7) << "\" y=\"" << fmt(cy - 6)
           << "\" font-size=\"9\" fill=\"#555\">" << escape(p.label) << "</text>\n";
      }
    }
  }

  // Legend (right margin).
  double ly = kMarginTop + 8;
  const double lx = opt_.width - kMarginRight + 16;
  for (const auto& s : series_) {
    os << marker_element(s.marker, lx, ly - 4, 5.0, s.color, true) << "\n"
       << "<text x=\"" << fmt(lx + 12) << "\" y=\"" << fmt(ly) << "\">" << escape(s.name)
       << "</text>\n";
    ly += 20;
  }
  os << "<text x=\"" << fmt(lx) << "\" y=\"" << fmt(ly + 4)
     << "\" font-size=\"10\" fill=\"#555\">filled = Pareto</text>\n";

  close_doc(os);
  return os.str();
}

bool ScatterPlot::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------- Bars

BarChart::BarChart(PlotOptions options) : opt_(std::move(options)) {}

void BarChart::set_series(std::vector<std::string> names, std::vector<std::string> colors) {
  series_names_ = std::move(names);
  series_colors_ = std::move(colors);
}

void BarChart::add_group(std::string label, std::vector<double> values) {
  groups_.push_back(BarGroup{std::move(label), std::move(values)});
}

std::string BarChart::render() const {
  using namespace svg;
  std::ostringstream os;
  open_doc(os, opt_);

  Frame f;
  f.px0 = kMarginLeft;
  f.px1 = opt_.width - kMarginRight;
  f.py0 = opt_.height - kMarginBottom;
  f.py1 = kMarginTop;
  f.x0 = 0;
  f.x1 = 1;  // bar layout is positional, not data-scaled

  if (opt_.y_min != opt_.y_max) {
    f.y0 = opt_.y_min;
    f.y1 = opt_.y_max;
  } else {
    f.y0 = 0;
    f.y1 = 0;
    for (const auto& g : groups_)
      for (double v : g.values)
        if (std::isfinite(v)) f.y1 = std::max(f.y1, v);
    if (f.y1 == 0) f.y1 = 1;
    f.y1 *= 1.08;
  }

  // Y grid/ticks only; X axis carries group labels.
  PlotOptions yonly = opt_;
  yonly.x_ticks = 0;
  draw_frame_and_ticks(os, yonly, f);

  const std::size_t n_groups = groups_.size();
  const std::size_t n_series = series_names_.size();
  if (n_groups > 0 && n_series > 0) {
    const double group_w = (f.px1 - f.px0) / static_cast<double>(n_groups);
    const double bar_w = group_w * 0.8 / static_cast<double>(n_series);
    for (std::size_t g = 0; g < n_groups; ++g) {
      const double gx = f.px0 + group_w * (static_cast<double>(g) + 0.1);
      for (std::size_t s = 0; s < n_series && s < groups_[g].values.size(); ++s) {
        const double v = groups_[g].values[s];
        if (!std::isfinite(v)) continue;
        const double x = gx + bar_w * static_cast<double>(s);
        const double y = f.sy(v);
        os << "<rect x=\"" << fmt(x) << "\" y=\"" << fmt(y) << "\" width=\"" << fmt(bar_w * 0.92)
           << "\" height=\"" << fmt(std::max(0.0, f.py0 - y)) << "\" fill=\""
           << series_colors_[s % series_colors_.size()] << "\"/>\n"
           << "<text x=\"" << fmt(x + bar_w * 0.46) << "\" y=\"" << fmt(y - 3)
           << "\" text-anchor=\"middle\" font-size=\"9\" fill=\"#333\">" << fmt(v)
           << "</text>\n";
      }
      os << "<text x=\"" << fmt(gx + group_w * 0.4) << "\" y=\"" << fmt(f.py0 + 18)
         << "\" text-anchor=\"middle\" font-size=\"11\">" << escape(groups_[g].label)
         << "</text>\n";
    }
  }

  // Legend.
  double ly = kMarginTop + 8;
  const double lx = opt_.width - kMarginRight + 16;
  for (std::size_t s = 0; s < n_series; ++s) {
    os << "<rect x=\"" << fmt(lx - 5) << "\" y=\"" << fmt(ly - 9) << "\" width=\"10\" height=\"10\" fill=\""
       << series_colors_[s % series_colors_.size()] << "\"/>\n"
       << "<text x=\"" << fmt(lx + 12) << "\" y=\"" << fmt(ly) << "\">" << escape(series_names_[s])
       << "</text>\n";
    ly += 20;
  }

  close_doc(os);
  return os.str();
}

bool BarChart::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace vsq
