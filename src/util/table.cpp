#include "util/table.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vsq {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_tsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_tsv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << '\t';
      f << row[c];
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace vsq
