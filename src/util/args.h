// Small command-line flag parser for examples and bench binaries.
// Supports --key=value and --flag forms; unknown flags are errors so
// typos fail loudly.
#pragma once

#include <map>
#include <set>
#include <string>

namespace vsq {

class Args {
 public:
  Args(int argc, char** argv);

  // Declare flags before reading; get_* throws on undeclared names.
  std::string get_str(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_flag(const std::string& name) const;  // present -> true

  // Returns names the user passed that were never queried (for warnings).
  std::set<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

// Shared --threads=N handling for every CLI tool: pins the global thread
// pool when the flag was passed (0 = hardware concurrency), otherwise
// leaves the VSQ_THREADS environment fallback in effect. Returns false
// after printing a diagnostic to stderr when the value is invalid — the
// caller should exit non-zero.
bool apply_threads_flag(const Args& args);

}  // namespace vsq
