// Software IEEE-754 binary16 emulation. The paper evaluates fp16 per-vector
// scale factors (Tables 6-7, "S=fp16"); we need round-to-nearest-even
// fp32->fp16->fp32 to model that datatype without hardware support.
#pragma once

#include <cstdint>

namespace vsq {

// Round a float to the nearest representable IEEE binary16 value
// (round-to-nearest-even), returning the bit pattern.
std::uint16_t fp32_to_fp16_bits(float x);

// Expand a binary16 bit pattern back to float (exact).
float fp16_bits_to_fp32(std::uint16_t h);

// Convenience: fp32 -> fp16 -> fp32 round trip (the fp16-quantized value).
float fp16_round(float x);

}  // namespace vsq
