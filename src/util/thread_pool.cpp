#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>

namespace vsq {
namespace {
// Set on pool worker threads so nested parallel_for calls run serially
// instead of blocking a worker on chunks only that same worker could run.
thread_local bool t_in_pool_worker = false;

// Innermost ThreadPoolScope pool for this thread (nullptr = global pool).
thread_local ThreadPool* t_current_pool = nullptr;

// Requested global-pool size: SIZE_MAX = unset, 0 = hardware_concurrency.
std::atomic<std::size_t> g_requested_threads{static_cast<std::size_t>(-1)};
std::atomic<bool> g_global_created{false};

std::size_t resolve_global_threads() {
  const std::size_t req = g_requested_threads.load();
  if (req != static_cast<std::size_t>(-1)) return req;
  if (const char* env = std::getenv("VSQ_THREADS")) {
    char* endp = nullptr;
    const long v = std::strtol(env, &endp, 10);
    if (endp != env && *endp == '\0' && v >= 0) return static_cast<std::size_t>(v);
  }
  return 0;  // hardware_concurrency
}
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    n_threads = hc > 0 ? hc : 2;
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t workers = n_threads > 1 ? n_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      t_in_pool_worker = true;
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock lock(mu_);
          cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
          if (stop_ && tasks_.empty()) return;
          task = std::move(tasks_.front());
          tasks_.pop();
        }
        task();  // tasks are noexcept wrappers (see parallel_for)
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  if (end <= begin) return;
  // Nested call from inside a pool worker: run serially. The other workers
  // are busy with the outer loop, and parking this worker on a latch for
  // queue entries that only the parked workers could execute deadlocks on
  // small machines.
  if (t_in_pool_worker) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // The grain hint caps how finely the range splits: small/cheap loops run
  // inline (n <= grain -> one chunk) rather than paying queue + dispatch.
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t n_chunks = std::min<std::size_t>(workers_.size() + 1, max_chunks);
  if (n_chunks <= 1) {
    fn(begin, end);
    return;
  }
  // Shared-ownership completion latch: workers hold a reference so the
  // latch outlives the caller's wait even if a worker is still inside
  // notify when the caller wakes (avoids use-after-free on the mutex/cv).
  // The first exception thrown by any chunk is captured and rethrown on
  // the calling thread after every chunk has finished (fn must stay alive
  // until the last worker returns).
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = n_chunks - 1;

  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  // Chunks 1..n-1 go to the pool; chunk 0 runs on the calling thread.
  for (std::size_t c = 1; c < n_chunks; ++c) {
    const std::size_t b = begin + c * chunk;
    const std::size_t e = std::min(end, b + chunk);
    submit([latch, &fn, b, e] {
      try {
        if (b < e) fn(b, e);
      } catch (...) {
        std::lock_guard lock(latch->mu);
        if (!latch->error) latch->error = std::current_exception();
      }
      {
        std::lock_guard lock(latch->mu);
        --latch->remaining;
      }
      latch->cv.notify_one();
    });
  }
  std::exception_ptr local_error;
  try {
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    local_error = std::current_exception();
  }
  {
    std::unique_lock lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  }
  if (local_error) std::rethrow_exception(local_error);
  if (latch->error) std::rethrow_exception(latch->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolve_global_threads());
  g_global_created.store(true);
  return pool;
}

void ThreadPool::set_global_threads(std::size_t n_threads) {
  if (g_global_created.load()) {
    const std::size_t have = global().concurrency();
    const std::size_t want =
        n_threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : n_threads;
    if (have != want) {
      throw std::logic_error("ThreadPool::set_global_threads: global pool already created");
    }
    return;
  }
  g_requested_threads.store(n_threads);
}

ThreadPool& current_pool() {
  return t_current_pool ? *t_current_pool : ThreadPool::global();
}

ThreadPoolScope::ThreadPoolScope(ThreadPool& pool) : prev_(t_current_pool) {
  t_current_pool = &pool;
}

ThreadPoolScope::~ThreadPoolScope() { t_current_pool = prev_; }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
  current_pool().parallel_for(begin, end, fn, grain);
}

}  // namespace vsq
