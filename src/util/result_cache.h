// File-backed key->double cache. Accuracy experiments are expensive
// (model evaluation per quantization config); table benches store their
// results here so figure benches (design-space plots) reuse them.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace vsq {

class ResultCache {
 public:
  // Loads existing entries from `path` if present; writes back on put().
  explicit ResultCache(std::string path);

  std::optional<double> get(const std::string& key) const;
  void put(const std::string& key, double value);  // persists immediately
  // Returns cached value or computes-and-stores via fn().
  template <typename Fn>
  double get_or_compute(const std::string& key, Fn&& fn) {
    if (const auto v = get(key)) return *v;
    const double v = fn();
    put(key, v);
    return v;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  void flush() const;

  std::string path_;
  std::map<std::string, double> entries_;
};

}  // namespace vsq
