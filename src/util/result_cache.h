// Result caches. ResultCache: file-backed key->double — accuracy
// experiments are expensive (model evaluation per quantization config);
// table benches store their results here so figure benches (design-space
// plots) reuse them. BlobCache: thread-safe in-memory key->float-blob LRU
// — the serving engine short-circuits repeated inference inputs with it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsq {

class ResultCache {
 public:
  // Loads existing entries from `path` if present; writes back on put().
  explicit ResultCache(std::string path);

  std::optional<double> get(const std::string& key) const;
  void put(const std::string& key, double value);  // persists immediately
  // Returns cached value or computes-and-stores via fn().
  template <typename Fn>
  double get_or_compute(const std::string& key, Fn&& fn) {
    if (const auto v = get(key)) return *v;
    const double v = fn();
    put(key, v);
    return v;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  void flush() const;

  std::string path_;
  std::map<std::string, double> entries_;
};

// Deterministic key for a float blob (FNV-1a 64 over the raw bytes,
// rendered as hex). Inference inputs hash to BlobCache keys with this.
std::string blob_key(std::span<const float> data);

// Bounded in-memory key -> float-blob cache with LRU eviction. All
// operations are thread-safe; get() refreshes recency. capacity == 0
// disables the cache entirely (get always misses, put is a no-op).
class BlobCache {
 public:
  explicit BlobCache(std::size_t capacity);

  std::optional<std::vector<float>> get(const std::string& key);
  void put(const std::string& key, std::vector<float> value);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  using Entry = std::pair<std::string, std::vector<float>>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0;
};

}  // namespace vsq
