#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace vsq {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id through splitmix64.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ (stream * 0xd1342543de82ef95ull);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::laplace(double b) {
  const double u = uniform() - 0.5;
  return -b * std::copysign(std::log(1.0 - 2.0 * std::abs(u)), u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_u64(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace vsq
