#include "util/result_cache.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vsq {

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {
  std::ifstream f(path_);
  if (!f) return;  // first use: empty cache
  std::string line;
  while (std::getline(f, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string key = line.substr(0, tab);
    try {
      entries_[key] = std::stod(line.substr(tab + 1));
    } catch (const std::exception&) {
      // Skip malformed lines rather than poisoning the run.
    }
  }
}

std::optional<double> ResultCache::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::put(const std::string& key, double value) {
  entries_[key] = value;
  flush();
}

void ResultCache::flush() const {
  std::ofstream f(path_, std::ios::trunc);
  if (!f) throw std::runtime_error("ResultCache: cannot write " + path_);
  f.precision(17);
  for (const auto& [k, v] : entries_) f << k << '\t' << v << '\n';
}

}  // namespace vsq
