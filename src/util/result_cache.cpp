#include "util/result_cache.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vsq {

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {
  std::ifstream f(path_);
  if (!f) return;  // first use: empty cache
  std::string line;
  while (std::getline(f, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string key = line.substr(0, tab);
    try {
      entries_[key] = std::stod(line.substr(tab + 1));
    } catch (const std::exception&) {
      // Skip malformed lines rather than poisoning the run.
    }
  }
}

std::optional<double> ResultCache::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::put(const std::string& key, double value) {
  entries_[key] = value;
  flush();
}

void ResultCache::flush() const {
  std::ofstream f(path_, std::ios::trunc);
  if (!f) throw std::runtime_error("ResultCache: cannot write " + path_);
  f.precision(17);
  for (const auto& [k, v] : entries_) f << k << '\t' << v << '\n';
}

std::string blob_key(std::span<const float> data) {
  // FNV-1a 64-bit over the raw float bytes: exact-match keys (a one-ulp
  // different input is a different request, as it should be).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const float f : data) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

BlobCache::BlobCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::vector<float>> BlobCache::get(const std::string& key) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  return it->second->second;
}

void BlobCache::put(const std::string& key, std::vector<float> value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t BlobCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

std::uint64_t BlobCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t BlobCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

}  // namespace vsq
