#include "util/fp16.h"

#include <bit>
#include <cstring>

namespace vsq {

std::uint16_t fp32_to_fp16_bits(float x) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp32 = (f >> 23) & 0xffu;
  std::uint32_t mant = f & 0x7fffffu;

  if (exp32 == 0xffu) {  // Inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0u));
  }
  const int exp = static_cast<int>(exp32) - 127 + 15;
  if (exp >= 0x1f) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<std::uint16_t>(sign);  // rounds to zero
    mant |= 0x800000u;                                       // implicit leading 1
    const int shift = 14 - exp;  // bring to 10-bit mantissa with guard bits
    const std::uint32_t sub = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = sub;
    if (rem > half || (rem == half && (sub & 1u))) rounded += 1;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal: round 23-bit mantissa to 10 bits, round-to-nearest-even.
  std::uint32_t out = sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) out += 1;  // may carry into exp: correct
  return static_cast<std::uint16_t>(out);
}

float fp16_bits_to_fp32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  std::uint32_t f = 0;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // +-0
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    f = sign | 0x7f800000u | (mant << 13);  // Inf/NaN
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

float fp16_round(float x) { return fp16_bits_to_fp32(fp32_to_fp16_bits(x)); }

}  // namespace vsq
