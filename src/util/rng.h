// Deterministic pseudo-random number generation for datasets, model init,
// and property tests. A thin xoshiro256** implementation: fast, seedable,
// and stable across platforms (unlike std::mt19937 distributions, whose
// outputs are not specified bit-exactly by the standard).
#pragma once

#include <cstdint>
#include <vector>

namespace vsq {

// xoshiro256** PRNG. Deterministic for a given seed on all platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Derive an independent stream; `stream` values give distinct substreams.
  Rng split(std::uint64_t stream) const;

  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n);
  // Standard normal via Box-Muller (deterministic, platform-stable).
  double normal();
  double normal(double mean, double stddev);
  // Laplace(0, b): long-tailed, models trained-weight outliers.
  double laplace(double b);
  // Bernoulli with probability p.
  bool bernoulli(double p);
  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vsq
