#include "util/scratch.h"

#include <algorithm>
#include <cstdint>

namespace vsq {
namespace {

constexpr std::size_t kMinBlock = 64 * 1024;

std::size_t aligned_offset(const char* base, std::size_t used, std::size_t align) {
  const auto p = reinterpret_cast<std::uintptr_t>(base) + used;
  return used + ((align - (p & (align - 1))) & (align - 1));
}

}  // namespace

void* ScratchArena::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  // Bump within the current block, or advance to an already-held later
  // block, before growing.
  for (; cur_ < blocks_.size(); ++cur_) {
    Block& b = blocks_[cur_];
    const std::size_t off = aligned_offset(b.data.get(), b.used, align);
    if (off + bytes <= b.size) {
      b.used = off + bytes;
      return b.data.get() + off;
    }
    if (b.used == 0) break;  // empty block too small: replace rather than skip
  }
  // Grow geometrically relative to the total held so repeated arenas
  // converge to O(1) blocks. align slack covers a worst-case base offset.
  std::size_t want = bytes + align;
  std::size_t total = capacity();
  Block nb;
  nb.size = std::max(kMinBlock, std::max(want, total));
  nb.data = std::make_unique<char[]>(nb.size);
  if (cur_ < blocks_.size() && blocks_[cur_].used == 0) {
    blocks_[cur_] = std::move(nb);
  } else {
    blocks_.push_back(std::move(nb));
    cur_ = blocks_.size() - 1;
  }
  Block& b = blocks_[cur_];
  const std::size_t off = aligned_offset(b.data.get(), 0, align);
  b.used = off + bytes;
  return b.data.get() + off;
}

void ScratchArena::reserve(std::size_t bytes) {
  bytes += 64;  // alignment slack, mirroring alloc()'s worst case
  for (const Block& b : blocks_) {
    if (b.size - b.used >= bytes) return;  // an existing block suffices
  }
  Block nb;
  nb.size = std::max(kMinBlock, bytes);
  nb.data = std::make_unique<char[]>(nb.size);
  blocks_.push_back(std::move(nb));
}

void ScratchArena::rewind(const Mark& m) {
  for (std::size_t i = m.block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
  cur_ = m.block;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

ScratchArena& ScratchArena::thread_local_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace vsq
