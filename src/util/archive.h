// Tiny binary archive for named float blobs: model checkpoints under
// artifacts/ are saved/loaded with this. Format:
//   magic "VSQA" | u32 version | u64 count | repeated:
//     u32 name_len | name bytes | u64 ndim | i64 dims[] | f32 data[]
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vsq {

struct ArchiveEntry {
  std::vector<std::int64_t> dims;
  std::vector<float> data;
};

class Archive {
 public:
  void put(const std::string& name, std::vector<std::int64_t> dims, std::vector<float> data);
  const ArchiveEntry& get(const std::string& name) const;  // throws if missing
  bool contains(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }
  std::vector<std::string> names() const;  // sorted entry names

  void save(const std::string& path) const;
  static Archive load(const std::string& path);  // throws on malformed input

 private:
  std::map<std::string, ArchiveEntry> entries_;
};

// True if the file exists and is readable.
bool file_exists(const std::string& path);

// Create directory (and parents) if missing; no error if it exists.
void ensure_dir(const std::string& path);

}  // namespace vsq
