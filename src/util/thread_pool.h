// Minimal work-stealing-free thread pool with a parallel_for helper.
// GEMM, conv and batch evaluation use this to keep both cores busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vsq {

class ThreadPool {
 public:
  // n_threads == 0 -> hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  // Threads participating in parallel_for (workers + the calling thread).
  std::size_t concurrency() const { return workers_.size() + 1; }

  // Runs fn(begin..end) split into roughly equal contiguous chunks across
  // the pool plus the calling thread; blocks until all chunks finish.
  // fn receives (chunk_begin, chunk_end).
  //
  // `grain` is a cost hint: the minimum number of indices per chunk. Loops
  // whose total size is <= grain run inline on the calling thread with no
  // queue traffic or std::function dispatch, and larger loops never split
  // below grain indices per chunk — pass the number of cheap iterations
  // that amortize one dispatch (~a few microseconds of work).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  // Process-wide pool (lazily constructed). Size precedence: the value set
  // via set_global_threads(), else the VSQ_THREADS environment variable,
  // else hardware_concurrency().
  static ThreadPool& global();

  // Fix the global pool's thread count (0 = hardware_concurrency). Must be
  // called before the first use of global(); throws std::logic_error once
  // the pool exists with a different size.
  static void set_global_threads(std::size_t n_threads);

 private:
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Pool the free parallel_for below dispatches to on this thread: the
// innermost active ThreadPoolScope's pool, else the global pool. Kernel
// code (gemm, int_gemm, fake-quant) routes through this so callers can
// pin a specific pool without re-plumbing every call site.
ThreadPool& current_pool();

// Thread-local pool override, RAII. While alive on a thread, parallel_for
// calls made from that thread run on `pool` instead of the global pool —
// determinism tests compare a 1-thread against an N-thread pool in one
// process this way (the global pool's size is fixed after first use).
class ThreadPoolScope {
 public:
  explicit ThreadPoolScope(ThreadPool& pool);
  ~ThreadPoolScope();
  ThreadPoolScope(const ThreadPoolScope&) = delete;
  ThreadPoolScope& operator=(const ThreadPoolScope&) = delete;

 private:
  ThreadPool* prev_;
};

// Convenience: parallel_for on current_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace vsq
