// Minimal work-stealing-free thread pool with a parallel_for helper.
// GEMM, conv and batch evaluation use this to keep both cores busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vsq {

class ThreadPool {
 public:
  // n_threads == 0 -> hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(begin..end) split into roughly equal contiguous chunks across
  // the pool plus the calling thread; blocks until all chunks finish.
  // fn receives (chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience: parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace vsq
