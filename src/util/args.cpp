#include "util/args.h"

#include <iostream>
#include <stdexcept>

#include "util/thread_pool.h"

namespace vsq {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Args: expected --key[=value], got " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Args::get_str(const std::string& name, const std::string& def) const {
  used_.insert(name);
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

int Args::get_int(const std::string& name, int def) const {
  used_.insert(name);
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stoi(it->second);
}

double Args::get_double(const std::string& name, double def) const {
  used_.insert(name);
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool Args::get_flag(const std::string& name) const {
  used_.insert(name);
  return kv_.count(name) > 0;
}

bool apply_threads_flag(const Args& args) {
  // Pin the pool only when --threads was actually passed, so the
  // VSQ_THREADS environment fallback keeps working otherwise.
  if (args.get_str("threads", "").empty()) return true;
  int threads = 0;
  try {
    threads = args.get_int("threads", 0);
  } catch (const std::exception&) {
    threads = -1;
  }
  if (threads < 0) {
    std::cerr << "--threads must be >= 0 (0 = hardware concurrency)\n";
    return false;
  }
  ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  return true;
}

std::set<std::string> Args::unused() const {
  std::set<std::string> out;
  for (const auto& [k, _] : kv_) {
    if (!used_.count(k)) out.insert(k);
  }
  return out;
}

}  // namespace vsq
