#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace vsq {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() - start).count() / 1000.0;
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%s %8.2fs] %s\n", level_name(level), t, msg.c_str());
}
}  // namespace detail

}  // namespace vsq
