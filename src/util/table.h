// Aligned-text table printer used by every bench binary to render
// paper-style tables, plus TSV export for artifacts/.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vsq {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Formats a double with the given precision; "-" for NaN.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  // Render with padded columns and a header rule.
  void print(std::ostream& os) const;
  // Tab-separated, suitable for artifacts/*.tsv.
  void write_tsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vsq
