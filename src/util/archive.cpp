#include "util/archive.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <unistd.h>

#include "fault/failpoint.h"

namespace vsq {
namespace {

constexpr char kMagic[4] = {'V', 'S', 'Q', 'A'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("Archive: truncated file");
  return v;
}

}  // namespace

void Archive::put(const std::string& name, std::vector<std::int64_t> dims,
                  std::vector<float> data) {
  std::size_t n = 1;
  for (const auto d : dims) n *= static_cast<std::size_t>(d);
  if (n != data.size()) throw std::invalid_argument("Archive::put: dims/data mismatch for " + name);
  entries_[name] = ArchiveEntry{std::move(dims), std::move(data)};
}

const ArchiveEntry& Archive::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) throw std::out_of_range("Archive: missing entry " + name);
  return it->second;
}

bool Archive::contains(const std::string& name) const { return entries_.count(name) > 0; }

std::vector<std::string> Archive::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void Archive::save(const std::string& path) const {
  // Crash-safe: write a temp file in the same directory, then rename() into
  // place. A fault or kill mid-save leaves either the old archive or a
  // stray ".tmp" — never a torn .vsqa that a later hot reload would ingest.
  // Same-directory matters: rename() is only atomic within a filesystem.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  try {
    {
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("Archive::save: cannot open " + tmp);
      f.write(kMagic, 4);
      write_pod(f, kVersion);
      write_pod(f, static_cast<std::uint64_t>(entries_.size()));
      for (const auto& [name, e] : entries_) {
        // Simulates a crash/ENOSPC partway through the entry stream; the
        // temp file holds the torn bytes, the destination must not.
        VSQ_FAILPOINT("io.archive.save.entry");
        write_pod(f, static_cast<std::uint32_t>(name.size()));
        f.write(name.data(), static_cast<std::streamsize>(name.size()));
        write_pod(f, static_cast<std::uint64_t>(e.dims.size()));
        for (const auto d : e.dims) write_pod(f, d);
        f.write(reinterpret_cast<const char*>(e.data.data()),
                static_cast<std::streamsize>(e.data.size() * sizeof(float)));
      }
      f.flush();
      if (!f) throw std::runtime_error("Archive::save: write failed for " + tmp);
    }
    // Simulates dying after the temp file is complete but before publish.
    VSQ_FAILPOINT("io.archive.save.rename");
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw std::runtime_error("Archive::save: rename to " + path + " failed: " + ec.message());
    }
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

Archive Archive::load(const std::string& path) {
  // Simulates I/O errors (EIO, vanished file) mid-hot-reload.
  VSQ_FAILPOINT("io.archive.load");
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("Archive::load: cannot open " + path);
  // Every length field read from the file is validated against the bytes
  // actually remaining BEFORE it sizes an allocation or a loop: a
  // truncated or bit-flipped archive must fail with a clean exception, not
  // a multi-gigabyte allocation, an overflowing size product or a wild
  // read (fuzzed in tests/test_export.cpp).
  const auto file_size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(0);
  const auto remaining = [&]() {
    return file_size - static_cast<std::uint64_t>(f.tellg());
  };
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("Archive::load: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(f);
  if (version != kVersion) throw std::runtime_error("Archive::load: unsupported version");
  const auto count = read_pod<std::uint64_t>(f);
  // Smallest possible entry: u32 name_len + u64 ndim (empty name, 0 dims).
  if (count > remaining() / 12) {
    throw std::runtime_error("Archive::load: entry count exceeds file size in " + path);
  }
  Archive a;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(f);
    if (name_len > remaining()) {
      throw std::runtime_error("Archive::load: entry name exceeds file size in " + path);
    }
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    const auto ndim = read_pod<std::uint64_t>(f);
    if (ndim > remaining() / sizeof(std::int64_t)) {
      throw std::runtime_error("Archive::load: dim count exceeds file size in " + path);
    }
    std::vector<std::int64_t> dims(ndim);
    std::uint64_t n = 1;
    const std::uint64_t max_elems = file_size / sizeof(float);
    for (auto& d : dims) {
      d = read_pod<std::int64_t>(f);
      if (d < 0) throw std::runtime_error("Archive::load: negative dimension in " + path);
      if (d != 0 && n > max_elems / static_cast<std::uint64_t>(d)) {
        throw std::runtime_error("Archive::load: entry size exceeds file size in " + path);
      }
      n *= static_cast<std::uint64_t>(d);
    }
    if (n > remaining() / sizeof(float)) {
      throw std::runtime_error("Archive::load: truncated data in " + path);
    }
    std::vector<float> data(n);
    f.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(n * sizeof(float)));
    if (!f) throw std::runtime_error("Archive::load: truncated data in " + path);
    a.put(name, std::move(dims), std::move(data));
  }
  return a;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void ensure_dir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
}

}  // namespace vsq
