// Hardware configuration of one accelerator datapath variant, following
// the paper's W/A/ws/as notation (Fig. 3 onward): weight bits, activation
// bits, per-vector weight-scale bits, per-vector activation-scale bits.
// A dash (-1) for a scale precision means per-channel/per-layer coarse
// scaling on that operand (the baseline datapath: no integer scale
// multiplier, no scale storage alongside vectors).
#pragma once

#include <string>

#include "quant/granularity.h"

namespace vsq {

struct MacConfig {
  int wt_bits = 8;
  int act_bits = 8;
  int wt_scale_bits = -1;   // -1 -> per-channel weights (POC)
  int act_scale_bits = -1;  // -1 -> per-layer activations
  int vector_size = 16;
  // Round the sw*sa product to this many MSBs before the dot-product
  // multiply (Fig. 3); -1 keeps the full ws+as-bit product.
  int scale_product_bits = -1;
  bool act_unsigned = true;  // post-ReLU activations ("U" in the tables)

  bool per_vector_weights() const { return wt_scale_bits > 0; }
  bool per_vector_acts() const { return act_scale_bits > 0; }
  bool is_vs_quant() const { return per_vector_weights() || per_vector_acts(); }
  // Paper's Table 8 granularity labels: POC, PVWO, PVAO, PVAW.
  std::string granularity_label() const;
  // Full width of the integer scale product feeding the rounding unit.
  int full_scale_product_bits() const {
    return (per_vector_weights() ? wt_scale_bits : 0) +
           (per_vector_acts() ? act_scale_bits : 0);
  }
  int effective_scale_product_bits() const {
    const int full = full_scale_product_bits();
    return (scale_product_bits > 0 && scale_product_bits < full) ? scale_product_bits : full;
  }
  // Accumulation-collector width: 2N + log2(V) + scale product bits.
  int accumulator_bits() const;

  // "W/A/ws/as" exactly as the paper prints it, e.g. "4/4/4/4", "8/8/-/-".
  std::string str() const;
  // Parse the same notation (throws std::invalid_argument on bad input).
  static MacConfig parse(const std::string& notation);

  // QuantSpecs for the two operands of a GEMM run on this hardware.
  QuantSpec weight_spec() const;
  QuantSpec act_spec() const;
};

}  // namespace vsq
