#include "hw/mac_config.h"

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

namespace vsq {

std::string MacConfig::granularity_label() const {
  if (per_vector_weights() && per_vector_acts()) return "PVAW";
  if (per_vector_weights()) return "PVWO";
  if (per_vector_acts()) return "PVAO";
  return "POC";
}

int MacConfig::accumulator_bits() const {
  const int log2v = std::bit_width(static_cast<unsigned>(vector_size)) - 1;
  return wt_bits + act_bits + log2v + effective_scale_product_bits();
}

std::string MacConfig::str() const {
  const auto scale_str = [](int bits) {
    return bits > 0 ? std::to_string(bits) : std::string("-");
  };
  return std::to_string(wt_bits) + "/" + std::to_string(act_bits) + "/" +
         scale_str(wt_scale_bits) + "/" + scale_str(act_scale_bits);
}

MacConfig MacConfig::parse(const std::string& notation) {
  std::array<std::string, 4> parts;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t next = notation.find('/', pos);
    if (i < 3 && next == std::string::npos) {
      throw std::invalid_argument("MacConfig::parse: expected W/A/ws/as, got " + notation);
    }
    parts[static_cast<std::size_t>(i)] =
        notation.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next + 1;
  }
  const auto to_bits = [&](const std::string& s, bool allow_dash) {
    if (allow_dash && s == "-") return -1;
    const int v = std::stoi(s);
    if (v < 2 || v > 16) throw std::invalid_argument("MacConfig::parse: bits out of range: " + s);
    return v;
  };
  MacConfig c;
  c.wt_bits = to_bits(parts[0], false);
  c.act_bits = to_bits(parts[1], false);
  c.wt_scale_bits = to_bits(parts[2], true);
  c.act_scale_bits = to_bits(parts[3], true);
  return c;
}

QuantSpec MacConfig::weight_spec() const {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{wt_bits, true};
  s.vector_size = vector_size;
  if (per_vector_weights()) {
    s.granularity = Granularity::kPerVector;
    s.scale_dtype = ScaleDtype::kTwoLevelInt;
    s.scale_fmt = QuantFormat{wt_scale_bits, false};
  } else {
    s.granularity = Granularity::kPerRow;  // per output channel
  }
  return s;
}

QuantSpec MacConfig::act_spec() const {
  QuantSpec s;
  s.enabled = true;
  s.fmt = QuantFormat{act_bits, !act_unsigned};
  s.vector_size = vector_size;
  if (per_vector_acts()) {
    s.granularity = Granularity::kPerVector;
    s.scale_dtype = ScaleDtype::kTwoLevelInt;
    s.scale_fmt = QuantFormat{act_scale_bits, false};
    s.dynamic = true;  // PPU calibrates per vector at runtime
  } else {
    s.granularity = Granularity::kPerTensor;  // per layer
  }
  return s;
}

}  // namespace vsq
