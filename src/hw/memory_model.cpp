#include "hw/memory_model.h"

#include "quant/granularity.h"

namespace vsq {

namespace {
// Coarse scales are stored as fp16 in the packaged format (quant/export):
// full fp32 precision is unnecessary for a ratio of two amaxes.
constexpr int kCoarseScaleBits = 16;
}  // namespace

double scale_overhead_fraction(int value_bits, int scale_bits, int vector_size) {
  if (value_bits <= 0 || scale_bits <= 0 || vector_size <= 0) return 0.0;
  return static_cast<double>(scale_bits) /
         (static_cast<double>(vector_size) * static_cast<double>(value_bits));
}

double effective_bitwidth(int value_bits, int scale_bits, int vector_size) {
  return value_bits * (1.0 + scale_overhead_fraction(value_bits, scale_bits, vector_size));
}

double ModelTraffic::ratio_vs(const ModelTraffic& other) const {
  return other.total_bits() == 0
             ? 0.0
             : static_cast<double>(total_bits()) / static_cast<double>(other.total_bits());
}

StorageCost MemoryModel::storage(std::int64_t rows, std::int64_t cols, int value_bits,
                                 int scale_bits, bool per_vector, bool coarse_per_row,
                                 std::int64_t channel_block) const {
  StorageCost c;
  c.elements = rows * cols;
  c.value_bits = c.elements * value_bits;
  if (per_vector) {
    const VectorLayout layout{cols, config_.vector_size, channel_block};
    c.scale_bits = rows * layout.vectors_per_row() * scale_bits;
  }
  // Coarse scales: per-row for weights (per-channel), one per tensor for
  // activations. Present for coarse-only scaling AND as the two-level gamma.
  c.coarse_bits = (coarse_per_row ? rows : 1) * kCoarseScaleBits;
  return c;
}

StorageCost MemoryModel::weight_storage(const GemmDims& dims, std::int64_t channel_block) const {
  return storage(dims.outs, dims.cols, config_.wt_bits, config_.wt_scale_bits,
                 config_.per_vector_weights(), /*coarse_per_row=*/true, channel_block);
}

StorageCost MemoryModel::act_storage(const GemmDims& dims, std::int64_t channel_block) const {
  return storage(dims.rows, dims.cols, config_.act_bits, config_.act_scale_bits,
                 config_.per_vector_acts(), /*coarse_per_row=*/false, channel_block);
}

ModelTraffic MemoryModel::traffic(const std::vector<QuantizableGemm*>& gemms) const {
  ModelTraffic t;
  for (const QuantizableGemm* g : gemms) {
    LayerTraffic lt;
    lt.name = g->gemm_name();
    lt.dims = g->gemm_dims();
    // Vector boundaries follow the layer's configured channel blocking when
    // a spec is applied; default whole-row otherwise.
    const std::int64_t block = g->weight_spec().enabled ? g->weight_spec().channel_block : 0;
    lt.weights = weight_storage(lt.dims, block);
    lt.acts = act_storage(lt.dims, g->act_spec().enabled ? g->act_spec().channel_block : 0);
    t.weight_bits += lt.weights.total_bits();
    t.act_bits += lt.acts.total_bits();
    t.layers.push_back(std::move(lt));
  }
  return t;
}

}  // namespace vsq
