// Storage and memory-traffic model for VS-Quant operands (paper Sec. 4.4).
//
// An M-bit per-vector scale alongside each V-element vector of N-bit values
// costs M/(V*N) extra storage — the paper's example: N = M = 4, V = 16
// gives 6.25% overhead, an "effective bitwidth" of 4.25 bits. Two-level
// scaling additionally keeps one floating-point coarse scale per channel
// (weights) or per tensor (activations); coarse-only scaling keeps just
// the coarse scales. This model turns a QuantSpec (or a whole MacConfig)
// plus GEMM dimensions into exact bit counts, overhead fractions and
// effective bitwidths, and aggregates per-layer DRAM traffic for a model:
// weights fetched once per inference, activations once per layer.
#pragma once

#include <string>
#include <vector>

#include "hw/mac_config.h"
#include "nn/layer.h"

namespace vsq {

// Exact storage cost of one quantized operand tensor, in bits.
struct StorageCost {
  std::int64_t elements = 0;     // tensor elements stored
  std::int64_t value_bits = 0;   // N-bit integer payload
  std::int64_t scale_bits = 0;   // M-bit integer per-vector scales
  std::int64_t coarse_bits = 0;  // floating-point coarse scales (fp16)

  std::int64_t total_bits() const { return value_bits + scale_bits + coarse_bits; }
  // Metadata overhead relative to the value payload (the paper's M/(V*N)).
  double overhead_fraction() const {
    return value_bits == 0 ? 0.0
                           : static_cast<double>(scale_bits + coarse_bits) /
                                 static_cast<double>(value_bits);
  }
  // Bits per element including all scale metadata (paper: 4.25 for 4/4/V16).
  double effective_bits_per_element() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(total_bits()) / static_cast<double>(elements);
  }
};

// Closed-form Sec. 4.4 overhead for the per-vector integer scales alone:
// M / (V * N). (Ignores the coarse scales, as the paper's expression does.)
double scale_overhead_fraction(int value_bits, int scale_bits, int vector_size);
// value_bits * (1 + overhead), e.g. effective_bitwidth(4, 4, 16) == 4.25.
double effective_bitwidth(int value_bits, int scale_bits, int vector_size);

// Per-layer traffic of one GEMM at a hardware configuration.
struct LayerTraffic {
  std::string name;
  GemmDims dims;
  StorageCost weights;  // fetched once per inference pass
  StorageCost acts;     // input activations, fetched once by this layer
  std::int64_t total_bits() const { return weights.total_bits() + acts.total_bits(); }
};

struct ModelTraffic {
  std::vector<LayerTraffic> layers;
  std::int64_t weight_bits = 0;
  std::int64_t act_bits = 0;
  std::int64_t total_bits() const { return weight_bits + act_bits; }
  // Ratio against another configuration's traffic (e.g. the 8/8/-/-
  // baseline) — the bandwidth-saving headline.
  double ratio_vs(const ModelTraffic& other) const;
};

class MemoryModel {
 public:
  explicit MemoryModel(const MacConfig& config) : config_(config) {}

  const MacConfig& config() const { return config_; }

  // Storage of a [outs, cols] weight matrix under the config's weight spec.
  // channel_block as in VectorLayout (conv: C per kernel position).
  StorageCost weight_storage(const GemmDims& dims, std::int64_t channel_block = 0) const;
  // Storage of a [rows, cols] activation matrix under the activation spec.
  StorageCost act_storage(const GemmDims& dims, std::int64_t channel_block = 0) const;

  // Aggregate over a model's GEMM layers (uses each layer's dims from its
  // most recent forward, like Chip::map_model).
  ModelTraffic traffic(const std::vector<QuantizableGemm*>& gemms) const;

 private:
  StorageCost storage(std::int64_t rows, std::int64_t cols, int value_bits, int scale_bits,
                      bool per_vector, bool coarse_per_row, std::int64_t channel_block) const;

  MacConfig config_;
};

}  // namespace vsq
