// Analytical per-operation energy model of the processing element,
// normalized to the 8/8/-/- per-channel baseline = 1.0 (as in every energy
// figure of the paper).
//
// Component scaling laws (standard CMOS datapath estimates, consistent
// with the MAGNet-derived PE of Sec. 5):
//   multiplier energy     ~ product of operand widths (array multiplier)
//   adder/register energy ~ operand width
//   SRAM access energy    ~ bits accessed (amortized by PE-level reuse:
//                           activations shared across MAC lanes, weights
//                           reused temporally via the weight collector)
//   fixed overhead        ~ control, sequencing, PPU share
// The VS-Quant additions (Fig. 2b) are modeled explicitly: the ws x as
// scale-product multiplier, the (2N+log2V) x P dot-product scale
// multiplier, wider accumulation, and the per-vector scale storage reads.
// Scale-product rounding to P bits shrinks the second multiplier and the
// accumulator; the measured fraction of zero (gateable) products further
// gates accumulation energy (the Fig. 3 effect).
#pragma once

#include "hw/mac_config.h"

namespace vsq {

struct EnergyBreakdown {
  double mac_mul = 0;      // V NxN multipliers
  double adder_tree = 0;   // dot-product reduction
  double scale_path = 0;   // sw*sa multiplier + rounding + dp*sp multiplier
  double accumulation = 0; // accumulation collector
  double sram = 0;         // weight/activation/scale buffer accesses
  double fixed = 0;        // control + PPU share
  double total() const {
    return mac_mul + adder_tree + scale_path + accumulation + sram + fixed;
  }
};

class EnergyModel {
 public:
  EnergyModel();

  // Per-MAC energy, normalized to the 8/8/-/- baseline.
  // gated_fraction: fraction of vector ops whose scale product rounds to
  // zero (from IntGemmStats::gateable_fraction()); gates the accumulation
  // and dot-product-scale multiply energy.
  double energy_per_op(const MacConfig& config, double gated_fraction = 0.0) const;
  EnergyBreakdown breakdown(const MacConfig& config, double gated_fraction = 0.0) const;

 private:
  // Calibration constants (set so the 8/8/-/- baseline totals 1.0 before
  // normalization; see energy_model.cpp for the anchor derivation).
  double k_mul_, k_add_, k_acc_, k_sram_, k_fixed_;
  double wt_reuse_, act_reuse_;  // buffer-access amortization factors
  double baseline_;              // raw energy of 8/8/-/- for normalization
};

}  // namespace vsq
