#include "hw/area_model.h"

#include <bit>
#include <cmath>

namespace vsq {
namespace {
int log2_of(int v) { return std::bit_width(static_cast<unsigned>(v)) - 1; }
}  // namespace

AreaModel::AreaModel() {
  // Anchors (paper): 8/8/-/- == 1.0; 4/4/4/4 ~ 0.63 (abstract: "37% area
  // saving"); 4/6/4/- ~ 0.64 (Sec. 6: "36% smaller area"); a 4-bit-weight
  // 8-bit-activation VS-Quant BERT config ~ 0.74 ("reducing area by 26%").
  // Constants solved so the 8/8/-/- PE splits roughly as MAC array 30%,
  // buffers 40%, collectors 4%, PPU 6%, control/fixed 19% — consistent
  // with the published MAGNet PE floorplans.
  k_mul_ = 0.000234;   // per bit^2 of multiplier
  k_add_ = 0.0001875;  // per bit of adder width
  k_reg_ = 0.0003125;  // per bit of collector register
  k_sram_ = 0.0000868; // per bit of buffer entry width (fixed entry count)
  k_ppu_ = 0.060;      // baseline PPU (per-layer scaling)
  k_fixed_ = 0.190;    // control, sequencing, NoC ports
  baseline_ = 1.0;
  MacConfig base;
  baseline_ = breakdown(base).total();
}

AreaBreakdown AreaModel::breakdown(const MacConfig& c) const {
  AreaBreakdown a;
  const double v = c.vector_size;
  const int log2v = log2_of(c.vector_size);
  const int dp_bits = c.wt_bits + c.act_bits + log2v;
  const int sp_bits = c.effective_scale_product_bits();

  // MAC array: V multipliers + reduction tree (~2V-1 adders of ~dp width).
  a.mac_array = k_mul_ * v * c.wt_bits * c.act_bits + k_add_ * v * dp_bits;

  if (c.is_vs_quant()) {
    // The scale-path multipliers are shared across the vector unit and
    // partially time-multiplexed: half the per-bit^2 cost of the MAC array.
    double sp_area = 0.0;
    if (c.per_vector_weights() && c.per_vector_acts()) {
      sp_area += 0.5 * k_mul_ * c.wt_scale_bits * c.act_scale_bits;  // sw x sa
    }
    sp_area += 0.5 * k_mul_ * dp_bits * sp_bits;  // dp x rounded product
    if (c.scale_product_bits > 0) sp_area += k_add_ * sp_bits;  // rounding unit
    a.scale_path = sp_area;
  }

  // Accumulation collectors: width scales with the accumulator.
  a.collectors = k_reg_ * 6.0 * c.accumulator_bits();  // 6 collector entries

  // Buffers: entry width = V*N + (scale bits if per-vector). Entry counts
  // fixed, so area tracks bits per entry.
  const double wt_entry = v * c.wt_bits + std::max(0, c.wt_scale_bits);
  const double act_entry = v * c.act_bits + std::max(0, c.act_scale_bits);
  a.buffers = k_sram_ * (28.0 * wt_entry + 8.0 * act_entry);  // wt buffer larger

  // PPU: VS-Quant dynamic per-vector calibration needs the vector-max,
  // reciprocal and quantize units of Fig. 2c on top of per-layer scaling.
  a.ppu = k_ppu_ * (c.per_vector_acts() ? 1.3 : 1.0);

  a.fixed = k_fixed_;

  const double norm = 1.0 / baseline_;
  a.mac_array *= norm;
  a.scale_path *= norm;
  a.collectors *= norm;
  a.buffers *= norm;
  a.ppu *= norm;
  a.fixed *= norm;
  return a;
}

double AreaModel::area(const MacConfig& config) const { return breakdown(config).total(); }

}  // namespace vsq
