// Design-space enumeration and Pareto analysis (paper Sec. 6, Table 8,
// Figs. 4-7). A DesignPoint couples one hardware configuration with its
// modeled energy/area and the measured inference accuracy of a model
// quantized the same way.
#pragma once

#include <string>
#include <vector>

#include "hw/area_model.h"
#include "hw/energy_model.h"

namespace vsq {

struct DesignPoint {
  MacConfig mac;
  double energy = 0;         // per-op, normalized to 8/8/-/-
  double perf_per_area = 0;  // normalized to 8/8/-/-
  double area = 0;           // normalized
  double accuracy = 0;       // task metric (top-1 % or F1 %)

  std::string label() const { return mac.str(); }
};

enum class ModelKind { kResNet, kBertBase, kBertLarge };

// Curated configuration list per model, spanning the paper's Table 8
// space: POC baselines at each precision plus PVAW/PVWO/PVAO variants
// with the scale precisions the paper's figures populate. Figures 4-6 use
// full-bitwidth scale products (as the paper does for Sec. 6).
std::vector<MacConfig> design_space_configs(ModelKind kind);

// Fill energy/area for every point (accuracy joined by the caller).
std::vector<DesignPoint> evaluate_design_points(const std::vector<MacConfig>& configs,
                                                const EnergyModel& em, const AreaModel& am);

// Pareto front within an accuracy band: a point survives if no other point
// in the band has both lower energy and higher perf/area.
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

}  // namespace vsq
