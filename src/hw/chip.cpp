#include "hw/chip.h"

#include <stdexcept>

#include "quant/granularity.h"

namespace vsq {

LayerMapping Chip::map_gemm(const std::string& name, const GemmDims& dims,
                            std::int64_t channel_block, double gated_fraction) const {
  if (dims.rows <= 0 || dims.cols <= 0 || dims.outs <= 0) {
    throw std::invalid_argument("Chip::map_gemm: layer has no recorded dims (" + name +
                                "); run a forward pass first");
  }
  LayerMapping m;
  m.name = name;
  m.macs = dims.macs();

  // Tiling: activation rows across PE rows, output channels across
  // (PE cols x MAC units); every MAC unit walks the reduction axis one
  // vector per cycle. Ceil divisions model edge-tile underutilization;
  // the vector count includes short tail vectors (channel blocks not
  // divisible by V), exactly the lanes the real array would idle.
  const VectorLayout layout{dims.cols, config_.mac.vector_size, channel_block};
  const std::int64_t row_tiles = (dims.rows + config_.pe_rows - 1) / config_.pe_rows;
  const std::int64_t k_lanes =
      static_cast<std::int64_t>(config_.pe_cols) * config_.mac_units_per_pe;
  const std::int64_t k_tiles = (dims.outs + k_lanes - 1) / k_lanes;
  m.cycles = row_tiles * k_tiles * layout.vectors_per_row();
  const double peak = static_cast<double>(config_.peak_macs_per_cycle());
  m.utilization = static_cast<double>(m.macs) / (static_cast<double>(m.cycles) * peak);
  m.energy = static_cast<double>(m.macs) *
             energy_model_.energy_per_op(config_.mac, gated_fraction);
  return m;
}

ChipReport Chip::map_model(const std::vector<QuantizableGemm*>& gemms,
                           double gated_fraction) const {
  ChipReport r;
  double energy_total = 0, util_weighted = 0;
  for (const QuantizableGemm* g : gemms) {
    const LayerMapping m =
        map_gemm(g->gemm_name(), g->gemm_dims(), g->weight_spec().channel_block, gated_fraction);
    r.total_macs += m.macs;
    r.total_cycles += m.cycles;
    energy_total += m.energy;
    util_weighted += m.utilization * static_cast<double>(m.macs);
    r.layers.push_back(m);
  }
  if (r.total_macs > 0) {
    r.weighted_energy_per_op = energy_total / static_cast<double>(r.total_macs);
    r.mean_utilization = util_weighted / static_cast<double>(r.total_macs);
  }
  return r;
}

}  // namespace vsq
