#include "hw/design_space.h"

namespace vsq {
namespace {

MacConfig poc(int w, int a) {
  MacConfig c;
  c.wt_bits = w;
  c.act_bits = a;
  return c;
}

MacConfig pv(int w, int a, int ws, int as) {
  MacConfig c;
  c.wt_bits = w;
  c.act_bits = a;
  c.wt_scale_bits = ws;
  c.act_scale_bits = as;
  return c;
}

}  // namespace

std::vector<MacConfig> design_space_configs(ModelKind kind) {
  std::vector<MacConfig> cs;
  switch (kind) {
    case ModelKind::kResNet: {
      // POC baselines (Fig. 3/4 blue points).
      for (const auto& [w, a] : {std::pair{4, 4}, {4, 6}, {6, 4}, {6, 6}, {6, 8}, {8, 8}, {6, 3},
                                {8, 6}}) {
        cs.push_back(poc(w, a));
      }
      // PVAW grid at the Table 5 scale precisions.
      for (const int w : {4, 6, 8}) {
        for (const int a : {3, 4, 6, 8}) {
          for (const int ws : {4, 6}) {
            for (const int as : {4, 6}) cs.push_back(pv(w, a, ws, as));
          }
        }
      }
      // PVWO (weights only) and PVAO (activations only) — paper's named
      // points include 6/8/6/-, 4/6/4/-, 6/3/-/4, 4/3/4/6.
      for (const int w : {4, 6, 8}) {
        for (const int a : {3, 4, 6, 8}) {
          cs.push_back(pv(w, a, 4, -1));
          cs.push_back(pv(w, a, 6, -1));
          cs.push_back(pv(w, a, -1, 4));
          cs.push_back(pv(w, a, -1, 6));
        }
      }
      break;
    }
    case ModelKind::kBertBase:
    case ModelKind::kBertLarge: {
      for (const auto& [w, a] : {std::pair{6, 8}, {8, 8}, {6, 6}, {8, 6}}) {
        MacConfig c = poc(w, a);
        c.act_unsigned = false;  // transformer activations are signed
        cs.push_back(c);
      }
      for (const int w : {3, 4, 6, 8}) {
        for (const int a : {6, 8}) {
          for (const int ws : {4, 6}) {
            for (const int as : {8, 10}) {
              MacConfig c = pv(w, a, ws, as);
              c.act_unsigned = false;
              cs.push_back(c);
            }
          }
          // Weights-only and acts-only variants (e.g. the paper's 6/8/-/10).
          MacConfig c1 = pv(w, a, 6, -1);
          c1.act_unsigned = false;
          cs.push_back(c1);
          MacConfig c2 = pv(w, a, -1, 10);
          c2.act_unsigned = false;
          cs.push_back(c2);
        }
      }
      break;
    }
  }
  return cs;
}

std::vector<DesignPoint> evaluate_design_points(const std::vector<MacConfig>& configs,
                                                const EnergyModel& em, const AreaModel& am) {
  std::vector<DesignPoint> pts;
  pts.reserve(configs.size());
  for (const MacConfig& c : configs) {
    DesignPoint p;
    p.mac = c;
    p.energy = em.energy_per_op(c);
    p.area = am.area(c);
    p.perf_per_area = am.perf_per_area(c);
    pts.push_back(p);
  }
  return pts;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& p : points) {
    bool dominated = false;
    for (const DesignPoint& q : points) {
      const bool strictly_better = (q.energy < p.energy && q.perf_per_area >= p.perf_per_area) ||
                                   (q.energy <= p.energy && q.perf_per_area > p.perf_per_area);
      if (strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  return front;
}

}  // namespace vsq
