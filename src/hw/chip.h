// Chip-level accelerator model: an array of processing elements, each with
// several VS-Quant vector MAC units (the MAGNet-style organization of
// Fig. 2a). Maps a model's GEMM layers onto the array to obtain cycle
// counts, utilization (tail vectors and non-dividing tile shapes waste
// lanes), and the op-weighted average energy per operation — the paper's
// "energy averaged over layers, weighted by the number of operations in
// each layer" methodology (Sec. 6).
#pragma once

#include <string>
#include <vector>

#include "hw/energy_model.h"
#include "nn/layer.h"

namespace vsq {

struct ChipConfig {
  int pe_rows = 4;          // PEs along the activation-row dimension
  int pe_cols = 4;          // PEs along the output-channel dimension
  int mac_units_per_pe = 8; // vector MAC units per PE (Fig. 2a)
  MacConfig mac;            // datapath configuration of every MAC unit

  // Peak MACs retired per cycle when every lane is busy.
  std::int64_t peak_macs_per_cycle() const {
    return static_cast<std::int64_t>(pe_rows) * pe_cols * mac_units_per_pe *
           mac.vector_size;
  }
};

struct LayerMapping {
  std::string name;
  std::int64_t macs = 0;       // useful multiply-accumulates
  std::int64_t cycles = 0;     // issue cycles on the array
  double utilization = 0;      // macs / (cycles * peak)
  double energy = 0;           // normalized energy units for this layer
};

struct ChipReport {
  std::vector<LayerMapping> layers;
  std::int64_t total_macs = 0;
  std::int64_t total_cycles = 0;
  double weighted_energy_per_op = 0;  // op-weighted (the paper's metric)
  double mean_utilization = 0;        // op-weighted
};

class Chip {
 public:
  explicit Chip(const ChipConfig& config) : config_(config), energy_model_() {}

  const ChipConfig& config() const { return config_; }

  // Map one GEMM (activation rows x reduction cols -> outs channels) onto
  // the array. channel_block as in VectorLayout (conv channel boundaries).
  LayerMapping map_gemm(const std::string& name, const GemmDims& dims,
                        std::int64_t channel_block = 0,
                        double gated_fraction = 0.0) const;

  // Map every quantizable GEMM of a model (uses each layer's dims from its
  // most recent forward, so run one inference batch first).
  ChipReport map_model(const std::vector<QuantizableGemm*>& gemms,
                       double gated_fraction = 0.0) const;

 private:
  ChipConfig config_;
  EnergyModel energy_model_;
};

}  // namespace vsq
