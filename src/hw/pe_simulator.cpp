#include "hw/pe_simulator.h"

#include "tensor/gemm.h"

namespace vsq {
namespace {

float two_level_gamma(const QuantSpec& spec, float act_amax) {
  // gamma = smax / (2^M - 1) with smax = amax / qmax (Eq. 7e-7f at
  // per-tensor coarse granularity) — the value the PPU is programmed with.
  const float smax = scale_from_amax(act_amax, spec.fmt);
  return smax / static_cast<float>(spec.scale_fmt.qmax());
}

}  // namespace

PeRunResult PeSimulator::run(const Tensor& activations, const Tensor& weights, float act_amax,
                             std::int64_t channel_block) const {
  QuantSpec wspec = config_.weight_spec();
  QuantSpec aspec = config_.act_spec();
  wspec.channel_block = channel_block;
  aspec.channel_block = channel_block;

  const QuantizedMatrix wq = quantize_weights_int(weights, wspec);
  const float gamma =
      aspec.scale_dtype == ScaleDtype::kTwoLevelInt ? two_level_gamma(aspec, act_amax) : 0.0f;
  const QuantizedMatrix aq = quantize_activations_int(activations, aspec, act_amax, gamma);

  PeRunResult res;
  res.output = int_gemm(aq, wq, config_.scale_product_bits, &res.stats);
  return res;
}

Tensor PeSimulator::reference(const Tensor& activations, const Tensor& weights, float act_amax,
                              std::int64_t channel_block) const {
  QuantSpec wspec = config_.weight_spec();
  QuantSpec aspec = config_.act_spec();
  wspec.channel_block = channel_block;
  aspec.channel_block = channel_block;

  const QuantizedOperand wq = quantize_weights(weights, wspec);

  Tensor aq;
  if (aspec.granularity == Granularity::kPerVector) {
    aq = fake_quantize_per_vector_two_level_dynamic(activations, aspec,
                                                    two_level_gamma(aspec, act_amax));
  } else {
    ScaleSet s;
    s.granularity = Granularity::kPerTensor;
    s.layout.cols = activations.shape()[1];
    s.rows = activations.shape()[0];
    s.scales = {scale_from_amax(act_amax, aspec.fmt)};
    aq = fake_quantize(activations, s, aspec.fmt);
  }

  const std::int64_t rows = aq.shape()[0], k = weights.shape()[0], l = weights.shape()[1];
  Tensor out(Shape{rows, k});
  gemm_nt(aq.data(), wq.fake.data(), out.data(), rows, k, l);
  return out;
}

}  // namespace vsq
