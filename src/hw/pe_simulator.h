// Bit-accurate functional model of the VS-Quant processing element
// (paper Fig. 2): quantizes both GEMM operands to integers exactly as the
// buffers store them, runs the integer vector-MAC datapath (int_gemm)
// with the configured scale-product rounding, and de-scales through the
// PPU. Also reports the data-gating statistics that feed the energy model
// (Fig. 3's "scale factor rounding truncates many small values to zero").
#pragma once

#include "hw/mac_config.h"
#include "quant/int_gemm.h"

namespace vsq {

struct PeRunResult {
  Tensor output;       // de-scaled float output [rows, K]
  IntGemmStats stats;  // vector-op counts and gateable fractions
};

class PeSimulator {
 public:
  explicit PeSimulator(const MacConfig& config) : config_(config) {}

  const MacConfig& config() const { return config_; }

  // Run one GEMM: activations [rows, L] x weights [K, L] -> [rows, K].
  // act_amax: static per-layer activation amax from calibration (used for
  // the coarse path and to derive the two-level gamma the PPU holds).
  // channel_block: vector-boundary block for convs (0 = whole row).
  PeRunResult run(const Tensor& activations, const Tensor& weights, float act_amax,
                  std::int64_t channel_block = 0) const;

  // Floating-point reference for the same quantization decisions (the
  // simulated-quantization path). With full-precision scale products the
  // PE output must match this exactly up to float rounding.
  Tensor reference(const Tensor& activations, const Tensor& weights, float act_amax,
                   std::int64_t channel_block = 0) const;

 private:
  MacConfig config_;
};

}  // namespace vsq
