// Analytical PE area model, normalized to 8/8/-/- = 1.0 (the paper's
// performance-per-area axis is the reciprocal: all configurations run at
// the same ops/cycle, so perf/area = baseline_area / area).
//
// Components: MAC array (multipliers ~ Nw*Na, adder tree ~ width), the
// VS-Quant scale path (Fig. 2b multipliers + rounding), accumulation
// collectors (~ accumulator width), weight/activation SRAM buffers
// (~ bits per entry, fixed entry count, including the M-bit per-vector
// scale columns), PPU (vector-max + reciprocal + shifter for dynamic
// per-vector calibration), and fixed control overhead.
#pragma once

#include "hw/mac_config.h"

namespace vsq {

struct AreaBreakdown {
  double mac_array = 0;
  double scale_path = 0;
  double collectors = 0;
  double buffers = 0;
  double ppu = 0;
  double fixed = 0;
  double total() const {
    return mac_array + scale_path + collectors + buffers + ppu + fixed;
  }
};

class AreaModel {
 public:
  AreaModel();

  // PE area normalized to the 8/8/-/- baseline.
  double area(const MacConfig& config) const;
  AreaBreakdown breakdown(const MacConfig& config) const;
  // The paper's y-axis: performance per unit area, normalized to baseline.
  double perf_per_area(const MacConfig& config) const { return 1.0 / area(config); }

 private:
  double k_mul_, k_add_, k_reg_, k_sram_, k_ppu_, k_fixed_;
  double baseline_;
};

}  // namespace vsq
