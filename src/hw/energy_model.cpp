#include "hw/energy_model.h"

#include <bit>
#include <cmath>

namespace vsq {
namespace {
int log2_of(int v) { return std::bit_width(static_cast<unsigned>(v)) - 1; }
}  // namespace

EnergyModel::EnergyModel() {
  // Anchors (paper): 8/8/-/- == 1.0 by construction; 4/4/-/- lands near 0.5
  // ("up to 2x energy savings over an 8-bit baseline", Fig. 3); VS-Quant
  // 4/4/4/4 with full scale products shows a modest overhead over 4/4/-/-;
  // rounding the product to 4-6 bits plus data gating pushes VS-Quant to or
  // below the per-channel configurations.
  k_mul_ = 0.0090;   // per bit^2 of multiplier work per MAC
  k_add_ = 0.0070;   // per bit of adder-tree width per MAC
  k_acc_ = 0.0450;   // per bit of accumulator width per vector op
  k_sram_ = 0.0500;  // per bit read per MAC (post-amortization)
  k_fixed_ = 0.115;  // control/PPU share per MAC
  wt_reuse_ = 4.0;   // weight collector temporal reuse
  act_reuse_ = 8.0;  // input vector shared across MAC units
  baseline_ = 1.0;
  MacConfig base;  // 8/8/-/- defaults
  baseline_ = breakdown(base, 0.0).total();
}

EnergyBreakdown EnergyModel::breakdown(const MacConfig& c, double gated_fraction) const {
  EnergyBreakdown e;
  const double v = c.vector_size;
  const int log2v = log2_of(c.vector_size);
  const int dp_bits = c.wt_bits + c.act_bits + log2v;  // dot-product width
  const int sp_bits = c.effective_scale_product_bits();
  // Zero scale products gate the whole vector MAC: the scale factors are
  // read alongside the operands, so a zero product suppresses the MAC
  // array, reduction, the dp x sp multiply, and the accumulation update
  // (the Fig. 3 data-gating effect).
  const double gate = 1.0 - gated_fraction;

  // V multipliers of Nw x Na, one per MAC.
  e.mac_mul = k_mul_ * c.wt_bits * c.act_bits * gate;
  // Adder tree reducing V products of (Nw+Na) bits; per-MAC share ~ width.
  e.adder_tree = k_add_ * (c.wt_bits + c.act_bits + 0.5 * log2v) * gate;

  if (c.is_vs_quant()) {
    // Per vector op (amortized over V MACs):
    //   sw x sa multiplier (only when both operands carry integer scales),
    //   rounding, and the dp x sp multiplier of (2N+log2V) x P bits.
    double per_vec = 0.0;
    if (c.per_vector_weights() && c.per_vector_acts()) {
      per_vec += k_mul_ * c.wt_scale_bits * c.act_scale_bits;
    }
    per_vec += k_mul_ * dp_bits * sp_bits * gate;  // gated when sp == 0
    e.scale_path = per_vec / v;
  }

  // Accumulation collector: one update of (dp + sp)-bit width per vector op.
  e.accumulation = k_acc_ * c.accumulator_bits() / v * gate;

  // Buffer accesses per MAC: weights (V*Nw + ws)/reuse/V, activations
  // (V*Na + as)/reuse/V.
  const double wt_bits_per_vec = v * c.wt_bits + std::max(0, c.wt_scale_bits);
  const double act_bits_per_vec = v * c.act_bits + std::max(0, c.act_scale_bits);
  e.sram = k_sram_ * (wt_bits_per_vec / wt_reuse_ + act_bits_per_vec / act_reuse_) / v;

  e.fixed = k_fixed_;

  const double norm = 1.0 / baseline_;
  e.mac_mul *= norm;
  e.adder_tree *= norm;
  e.scale_path *= norm;
  e.accumulation *= norm;
  e.sram *= norm;
  e.fixed *= norm;
  return e;
}

double EnergyModel::energy_per_op(const MacConfig& config, double gated_fraction) const {
  return breakdown(config, gated_fraction).total();
}

}  // namespace vsq
