#include "data/synthetic_images.h"

#include <cmath>
#include <cstring>
#include <numbers>

#include "util/rng.h"

namespace vsq {

Tensor ImageDataset::batch_images(std::int64_t i0, std::int64_t i1) const {
  const std::int64_t h = images.shape()[1], w = images.shape()[2], c = images.shape()[3];
  Tensor out(Shape{i1 - i0, h, w, c});
  const std::int64_t per = h * w * c;
  std::memcpy(out.data(), images.data() + i0 * per,
              static_cast<std::size_t>((i1 - i0) * per) * sizeof(float));
  return out;
}

std::vector<int> ImageDataset::batch_labels(std::int64_t i0, std::int64_t i1) const {
  return {labels.begin() + i0, labels.begin() + i1};
}

ImageDataset make_image_dataset(const ImageDatasetConfig& config) {
  ImageDataset ds;
  ds.classes = config.classes;
  ds.images = Tensor(Shape{config.count, config.height, config.width, 3});
  ds.labels.resize(static_cast<std::size_t>(config.count));
  Rng rng(config.seed);

  const double pi = std::numbers::pi;
  for (std::int64_t n = 0; n < config.count; ++n) {
    const int cls = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(config.classes)));
    // Class signature: orientation x blob-corner, so neighbouring classes
    // differ in exactly ONE attribute. Together with heavy pixel noise this
    // keeps decision margins small — quantization error then flips
    // borderline predictions instead of being absorbed (the regime the
    // paper's accuracy tables live in).
    const int half = std::max(config.classes / 2, 1);
    const double theta = pi * (cls % half) / half;
    const double freq = 2.0 + 0.45 * (cls % half);
    const int blob_corner = (cls / half) % 4;
    // Per-image nuisance parameters.
    const double phase = rng.uniform(0.0, 2.0 * pi);
    const double amp = rng.uniform(0.6, 1.0);
    const double brightness = rng.uniform(-0.15, 0.15);
    const double blob_str = rng.uniform(0.5, 1.0);

    const double cx = (blob_corner % 2 == 0) ? 0.25 : 0.75;
    const double cy = (blob_corner / 2 == 0) ? 0.25 : 0.75;
    const double ct = std::cos(theta), st = std::sin(theta);

    float* img = ds.images.data() + n * config.height * config.width * 3;
    for (std::int64_t y = 0; y < config.height; ++y) {
      for (std::int64_t x = 0; x < config.width; ++x) {
        const double u = static_cast<double>(x) / config.width;
        const double v = static_cast<double>(y) / config.height;
        const double grating = amp * std::sin(2.0 * pi * freq * (u * ct + v * st) + phase);
        const double d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
        const double blob = blob_str * std::exp(-d2 / 0.02);
        float* px = img + (y * config.width + x) * 3;
        // Channels see the signature with different mixtures, so color
        // carries class information too.
        px[0] = static_cast<float>(grating + brightness + rng.normal(0.0, config.pixel_noise));
        px[1] = static_cast<float>(0.5 * grating + blob + brightness +
                                   rng.normal(0.0, config.pixel_noise));
        px[2] = static_cast<float>(blob - 0.5 * grating + brightness +
                                   rng.normal(0.0, config.pixel_noise));
      }
    }
    int label = cls;
    if (rng.bernoulli(config.label_noise)) {
      label = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(config.classes)));
    }
    ds.labels[static_cast<std::size_t>(n)] = label;
  }
  return ds;
}

}  // namespace vsq
