#include "data/synthetic_squad.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/rng.h"

namespace vsq {

Tensor SpanDataset::batch_tokens(std::int64_t i0, std::int64_t i1) const {
  const std::int64_t t = tokens.shape()[1];
  Tensor out(Shape{i1 - i0, t});
  std::memcpy(out.data(), tokens.data() + i0 * t,
              static_cast<std::size_t>((i1 - i0) * t) * sizeof(float));
  return out;
}

SpanLabels SpanDataset::batch_labels(std::int64_t i0, std::int64_t i1) const {
  SpanLabels out;
  out.start.assign(labels.start.begin() + i0, labels.start.begin() + i1);
  out.end.assign(labels.end.begin() + i0, labels.end.begin() + i1);
  return out;
}

SpanDataset make_span_dataset(const SpanDatasetConfig& config) {
  SpanDataset ds;
  ds.tokens = Tensor(Shape{config.count, config.seq_len});
  ds.labels.start.resize(static_cast<std::size_t>(config.count));
  ds.labels.end.resize(static_cast<std::size_t>(config.count));
  Rng rng(config.seed);

  // Zipf sampling table over content tokens.
  const int content_count = config.vocab - kFirstContentToken;
  std::vector<double> cdf(static_cast<std::size_t>(content_count));
  double acc = 0.0;
  for (int i = 0; i < content_count; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), config.zipf_exponent);
    cdf[static_cast<std::size_t>(i)] = acc;
  }
  for (auto& v : cdf) v /= acc;
  const auto sample_content = [&]() {
    const double u = rng.uniform();
    int lo = 0, hi = content_count - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (cdf[static_cast<std::size_t>(mid)] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return kFirstContentToken + lo;
  };
  const auto sample_answer = [&]() {
    return kFirstAnswerToken + static_cast<int>(rng.uniform_u64(kNumAnswerTokens));
  };

  // Each pattern occupies a fixed-width slot so patterns never overlap:
  // slot width = 2 (query+marker) + max_span.
  const std::int64_t slot = 2 + config.max_span;
  const std::int64_t n_slots = config.seq_len / slot;
  const int patterns = 1 + config.num_distractors + 1;  // true + distractors + lone query
  if (n_slots < patterns) {
    throw std::invalid_argument("make_span_dataset: seq_len too short for the pattern count");
  }

  for (std::int64_t n = 0; n < config.count; ++n) {
    float* row = ds.tokens.data() + n * config.seq_len;
    for (std::int64_t j = 0; j < config.seq_len; ++j) {
      row[j] = static_cast<float>(sample_content());
    }

    // Choose distinct slots, then a random offset inside each slot so
    // positions are not fully predictable.
    const auto slot_perm = rng.permutation(static_cast<std::size_t>(n_slots));
    const int query = static_cast<int>(rng.uniform_u64(kNumQueries));

    // True pattern: [query, marker_q, answer run].
    {
      const std::int64_t base = static_cast<std::int64_t>(slot_perm[0]) * slot;
      const auto span_len = 1 + static_cast<std::int64_t>(
                                    rng.uniform_u64(static_cast<std::uint64_t>(config.max_span)));
      row[base] = static_cast<float>(kFirstQueryToken + query);
      row[base + 1] = static_cast<float>(kFirstMarkerToken + query);
      for (std::int64_t j = 0; j < span_len; ++j) {
        row[base + 2 + j] = static_cast<float>(sample_answer());
      }
      ds.labels.start[static_cast<std::size_t>(n)] = static_cast<int>(base + 2);
      ds.labels.end[static_cast<std::size_t>(n)] = static_cast<int>(base + 1 + span_len);
    }
    // Distractors: [other content, marker_j (j != q), answer run] — only
    // the missing query token distinguishes them from the true pattern.
    for (int d = 0; d < config.num_distractors; ++d) {
      const std::int64_t base = static_cast<std::int64_t>(slot_perm[static_cast<std::size_t>(1 + d)]) * slot;
      int other = static_cast<int>(rng.uniform_u64(kNumQueries - 1));
      if (other >= query) ++other;
      const auto span_len = 1 + static_cast<std::int64_t>(
                                    rng.uniform_u64(static_cast<std::uint64_t>(config.max_span)));
      row[base + 1] = static_cast<float>(kFirstMarkerToken + other);
      for (std::int64_t j = 0; j < span_len; ++j) {
        row[base + 2 + j] = static_cast<float>(sample_answer());
      }
    }
    // Lone query (followed by content): a negative for "find the query".
    {
      const std::int64_t base =
          static_cast<std::int64_t>(slot_perm[static_cast<std::size_t>(1 + config.num_distractors)]) * slot;
      row[base] = static_cast<float>(kFirstQueryToken + query);
    }
  }
  return ds;
}

}  // namespace vsq
