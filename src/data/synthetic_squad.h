// Synthetic span-extraction dataset (the SQuAD v1.1 substitute; see
// DESIGN.md §1). Each example is a token sequence of fixed length T
// containing:
//   * one QUERY token q (one of kNumQueries ids) followed immediately by
//     its MATCHING MARKER token m_q, followed by the answer span of
//     1..max_span tokens from a dedicated answer sub-vocabulary;
//   * several DISTRACTOR markers m_j (j != q), each also followed by an
//     answer-vocabulary run, but NOT preceded by the query;
//   * one lone query token elsewhere (followed by plain content);
//   * long-tailed (Zipf) content tokens everywhere else.
// The gold span is the answer run after the query-matched marker. Finding
// it requires query-conditioned bigram matching — attention quality — so
// quantization error degrades F1 gradually instead of falling off a
// cliff, and larger models genuinely score higher (Fig. 7's premise).
// The Zipf content distribution gives embeddings/activations a long-tailed
// dynamic range, the regime where coarse-grained quantization of
// transformers collapses (Tables 2/6/7).
#pragma once

#include <cstdint>

#include "nn/loss.h"
#include "tensor/tensor.h"

namespace vsq {

struct SpanDataset {
  Tensor tokens;     // [N, T] token ids stored as float
  SpanLabels labels;

  std::int64_t size() const { return tokens.shape()[0]; }
  std::int64_t seq_len() const { return tokens.shape()[1]; }
  Tensor batch_tokens(std::int64_t i0, std::int64_t i1) const;
  SpanLabels batch_labels(std::int64_t i0, std::int64_t i1) const;
};

struct SpanDatasetConfig {
  std::int64_t count = 2000;
  std::int64_t seq_len = 36;
  int vocab = 64;
  int max_span = 4;
  int num_distractors = 3;
  double zipf_exponent = 1.2;
  std::uint64_t seed = 4321;
};

// Token-id layout (see header comment).
inline constexpr int kNumQueries = 12;
inline constexpr int kFirstQueryToken = 1;                                // 1..6
inline constexpr int kFirstMarkerToken = kFirstQueryToken + kNumQueries;  // 7..12
inline constexpr int kFirstAnswerToken = kFirstMarkerToken + kNumQueries; // 13..16
inline constexpr int kNumAnswerTokens = 4;
inline constexpr int kFirstContentToken = kFirstAnswerToken + kNumAnswerTokens;  // 17+

SpanDataset make_span_dataset(const SpanDatasetConfig& config);

}  // namespace vsq
