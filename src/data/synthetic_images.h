// Synthetic 10-class image classification dataset (the ImageNet
// substitute; see DESIGN.md §1). Each class is a procedural texture —
// an oriented sinusoidal grating plus a class-positioned blob — rendered
// with per-image random phase, amplitude, brightness and pixel noise, and
// a configurable label-noise fraction so the fp32 ceiling stays below
// 100% and quantization-induced degradation is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vsq {

struct ImageDataset {
  Tensor images;            // [N, H, W, 3], NHWC, values roughly in [-1, 1]
  std::vector<int> labels;  // N class ids in [0, classes)
  int classes = 10;

  std::int64_t size() const { return images.shape()[0]; }
  // Contiguous batch [i0, i1) as a tensor + label slice.
  Tensor batch_images(std::int64_t i0, std::int64_t i1) const;
  std::vector<int> batch_labels(std::int64_t i0, std::int64_t i1) const;
};

struct ImageDatasetConfig {
  std::int64_t count = 2000;
  std::int64_t height = 16, width = 16;
  int classes = 10;
  double pixel_noise = 0.55;   // stddev of additive Gaussian noise
  double label_noise = 0.02;   // fraction of randomized labels
  std::uint64_t seed = 1234;
};

ImageDataset make_image_dataset(const ImageDatasetConfig& config);

}  // namespace vsq
