#include "serve/batcher.h"

#include <algorithm>
#include <cstring>

namespace vsq {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatchFn fn, std::int64_t in_features,
                               BatcherConfig cfg, ServeStats& stats, ResultHook on_result)
    : queue_(queue),
      fn_(std::move(fn)),
      in_features_(in_features),
      cfg_(cfg),
      stats_(stats),
      on_result_(std::move(on_result)) {
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_wait_us < 0) cfg_.max_wait_us = 0;
  worker_ = std::thread([this] { run(); });
  if (cfg_.warmup) {
    // Block until the worker's warmup forward finished: the session is
    // fully preallocated (worker arena, output buffers) when construction
    // returns, so the first real request sees steady-state latency.
    std::unique_lock lock(warm_mu_);
    warm_cv_.wait(lock, [this] { return warmed_; });
  }
}

DynamicBatcher::~DynamicBatcher() { stop(); }

void DynamicBatcher::stop() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void DynamicBatcher::run() {
  if (cfg_.warmup) {
    // Touch every allocation the steady state needs (packing buffers in
    // this thread's ScratchArena, the output tensor) before the first
    // real request, so no request pays first-call malloc latency.
    try {
      fn_(Tensor(Shape{cfg_.max_batch, in_features_}));
    } catch (...) {
      // Warmup failures surface on the first real request instead.
    }
    {
      std::lock_guard lock(warm_mu_);
      warmed_ = true;
    }
    warm_cv_.notify_all();
  }
  for (;;) {
    std::vector<Request> batch =
        queue_.pop_batch(static_cast<std::size_t>(cfg_.max_batch),
                         std::chrono::microseconds(cfg_.max_wait_us));
    if (batch.empty()) return;  // queue closed and drained

    const auto rows = static_cast<std::int64_t>(batch.size());
    Tensor x(Shape{rows, in_features_});
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(x.data() + r * in_features_, batch[static_cast<std::size_t>(r)].input.data(),
                  static_cast<std::size_t>(in_features_) * sizeof(float));
    }

    Tensor y;
    try {
      y = fn_(x);
    } catch (...) {
      // The failed batch still counts as an executed batch; its requests
      // count as errors (their promises carry the exception, no row was
      // produced), never as completed requests.
      const auto err = std::current_exception();
      stats_.record_batch(batch.size());
      stats_.record_errors(batch.size());
      for (Request& r : batch) r.promise.set_exception(err);
      continue;
    }

    // All stats recording happens before any promise resolves: a client
    // that wakes up and snapshots immediately still sees its own batch.
    const std::int64_t out = y.shape()[1];
    const auto done = std::chrono::steady_clock::now();
    stats_.record_batch(batch.size());
    for (Request& req : batch) {
      stats_.record_request(
          std::chrono::duration<double, std::micro>(done - req.enqueue_time).count());
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      Request& req = batch[static_cast<std::size_t>(r)];
      Tensor row = y.view_rows(r, r + 1);  // zero-copy [1, out] view
      if (on_result_ && !req.cache_key.empty()) {
        on_result_(req.cache_key,
                   std::span<const float>(req.input.data(),
                                          static_cast<std::size_t>(in_features_)),
                   std::span<const float>(row.data(), static_cast<std::size_t>(out)));
      }
      req.promise.set_value(std::move(row));
    }
  }
}

}  // namespace vsq
