#include "serve/batcher.h"

#include <algorithm>
#include <cstring>

#include "fault/failpoint.h"

namespace vsq {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatchFn fn, std::int64_t in_features,
                               BatcherConfig cfg, ServeStats& stats, ResultHook on_result)
    : queue_(queue),
      fn_(std::move(fn)),
      in_features_(in_features),
      cfg_(cfg),
      stats_(stats),
      on_result_(std::move(on_result)) {
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_wait_us < 0) cfg_.max_wait_us = 0;
  heartbeat_us_.store(now_us(), std::memory_order_release);
  worker_ = std::thread([this] { run(); });
  if (cfg_.warmup) {
    // Block until the worker's warmup forward finished: the session is
    // fully preallocated (worker arena, output buffers) when construction
    // returns, so the first real request sees steady-state latency.
    std::unique_lock lock(warm_mu_);
    warm_cv_.wait(lock, [this] { return warmed_; });
  }
}

DynamicBatcher::~DynamicBatcher() { stop(); }

void DynamicBatcher::stop() {
  if (close_queue_on_stop_.load(std::memory_order_acquire)) queue_.close();
  if (worker_.joinable()) worker_.join();
}

void DynamicBatcher::retire() { close_queue_on_stop_.store(false, std::memory_order_release); }

void DynamicBatcher::join_dead() {
  if (worker_.joinable()) worker_.join();
}

std::chrono::microseconds DynamicBatcher::heartbeat_age() const {
  return std::chrono::microseconds(
      std::max<std::int64_t>(0, now_us() - heartbeat_us_.load(std::memory_order_acquire)));
}

void DynamicBatcher::beat() { heartbeat_us_.store(now_us(), std::memory_order_release); }

void DynamicBatcher::run() {
  // Nothing the worker does may escape as an unhandled exception (that
  // would terminate the process) — an escaped throw marks the worker dead
  // and the session watchdog restarts it. Promises still held by popped
  // requests break on unwind, delivering std::future_error to waiters.
  try {
    run_loop();
  } catch (...) {
  }
  busy_.store(false, std::memory_order_release);
  dead_.store(true, std::memory_order_release);
}

void DynamicBatcher::run_loop() {
  if (cfg_.warmup) {
    // Touch every allocation the steady state needs (packing buffers in
    // this thread's ScratchArena, the output tensor) before the first
    // real request, so no request pays first-call malloc latency.
    try {
      fn_(Tensor(Shape{cfg_.max_batch, in_features_}));
    } catch (...) {
      // Warmup failures surface on the first real request instead.
    }
    {
      std::lock_guard lock(warm_mu_);
      warmed_ = true;
    }
    warm_cv_.notify_all();
  }
  for (;;) {
    beat();
    std::vector<Request> batch =
        queue_.pop_batch(static_cast<std::size_t>(cfg_.max_batch),
                         std::chrono::microseconds(cfg_.max_wait_us));
    if (batch.empty()) return;  // queue closed and drained

    busy_.store(true, std::memory_order_release);
    beat();

    // Injected worker death: return while still holding the popped batch.
    // The requests' promises break on destruction (std::future_error /
    // broken_promise at the waiters), exactly like a crashed thread, and
    // the watchdog sees dead() with an open queue.
    if (VSQ_FAILPOINT_TRIGGERED("serve.batcher.worker_exit")) {
      busy_.store(false, std::memory_order_release);
      dead_.store(true, std::memory_order_release);
      return;
    }
    // Injected stall (delay policy): the worker wedges here, heartbeat
    // stale, busy set — the watchdog's stalled-worker signal.
    VSQ_FAILPOINT("serve.batcher.worker_stall");

    // Deadline sweep: resolve already-expired requests as shed WITHOUT
    // executing them. When the whole batch expired no forward runs at all
    // (and no batch is recorded — `batches` counts executed passes).
    const auto sweep_now = std::chrono::steady_clock::now();
    std::size_t expired = 0;
    for (const Request& r : batch) {
      if (r.deadline <= sweep_now) ++expired;
    }
    if (expired > 0) {
      // Count BEFORE resolving the promises: a waiter that observes the
      // exception must also observe the stat (exact-ledger tests race us
      // from the moment their future throws).
      stats_.record_deadline_expired(expired);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].deadline <= sweep_now) {
          batch[i].promise.set_exception(std::make_exception_ptr(
              DeadlineExpiredError("DynamicBatcher: deadline expired before execution")));
        } else {
          if (kept != i) batch[kept] = std::move(batch[i]);
          ++kept;
        }
      }
      batch.resize(kept);
      if (batch.empty()) {
        busy_.store(false, std::memory_order_release);
        continue;
      }
    }

    const auto rows = static_cast<std::int64_t>(batch.size());
    const bool seq = !cfg_.seq_buckets.empty();
    std::vector<std::int64_t> lens, buckets;
    std::int64_t t_exec = in_features_;
    if (seq) {
      // Bucket assignment: each request gets the smallest bucket covering
      // its token count; the batch executes at its widest member bucket.
      // Padding never changes a row's result (the runner's attention
      // reduces over the true length), so sharing is free.
      lens.resize(batch.size());
      buckets.resize(batch.size());
      t_exec = 0;
      for (std::size_t r = 0; r < batch.size(); ++r) {
        lens[r] = batch[r].input.numel();
        std::int64_t bucket = cfg_.seq_buckets.back();
        for (const std::int64_t w : cfg_.seq_buckets) {
          if (w >= lens[r]) {
            bucket = w;
            break;
          }
        }
        buckets[r] = bucket;
        t_exec = std::max(t_exec, bucket);
      }
    }
    Tensor x(Shape{rows, t_exec});
    if (seq) x.fill(-1.0f);  // pad sentinel; each row overwrites its prefix
    for (std::int64_t r = 0; r < rows; ++r) {
      const Request& req = batch[static_cast<std::size_t>(r)];
      const std::int64_t n = seq ? lens[static_cast<std::size_t>(r)] : in_features_;
      std::memcpy(x.data() + r * t_exec, req.input.data(),
                  static_cast<std::size_t>(n) * sizeof(float));
    }

    Tensor y;
    try {
      // Injected batch-fn failure: flows through the same catch as a real
      // forward-pass throw (errors counted, promises carry the exception).
      VSQ_FAILPOINT("serve.batcher.pre_forward");
      y = fn_(x);
    } catch (...) {
      // The failed batch still counts as an executed batch; its requests
      // count as errors (their promises carry the exception, no row was
      // produced), never as completed requests.
      const auto err = std::current_exception();
      stats_.record_batch(batch.size());
      stats_.record_errors(batch.size());
      for (Request& r : batch) r.promise.set_exception(err);
      busy_.store(false, std::memory_order_release);
      continue;
    }

    // All stats recording happens before any promise resolves: a client
    // that wakes up and snapshots immediately still sees its own batch.
    const std::int64_t out = y.shape()[1];
    const auto done = std::chrono::steady_clock::now();
    stats_.record_batch(batch.size());
    if (seq) stats_.record_bucket_batch(buckets);
    for (Request& req : batch) {
      stats_.record_request(
          std::chrono::duration<double, std::micro>(done - req.enqueue_time).count());
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      Request& req = batch[static_cast<std::size_t>(r)];
      Tensor row;
      if (seq) {
        // Deep-copy the meaningful prefix (this row's true length times
        // out_per_token): the padded batch output is worker-owned scratch
        // and the tail of the row describes pad positions.
        const std::int64_t want = lens[static_cast<std::size_t>(r)] * cfg_.out_per_token;
        row = Tensor(Shape{1, want});
        std::memcpy(row.data(), y.data() + r * out,
                    static_cast<std::size_t>(want) * sizeof(float));
      } else {
        row = y.view_rows(r, r + 1);  // zero-copy [1, out] view
      }
      if (on_result_ && !req.cache_key.empty()) {
        on_result_(req.cache_key,
                   std::span<const float>(req.input.data(),
                                          static_cast<std::size_t>(req.input.numel())),
                   std::span<const float>(row.data(),
                                          static_cast<std::size_t>(row.numel())));
      }
      req.promise.set_value(std::move(row));
    }
    busy_.store(false, std::memory_order_release);
  }
}

}  // namespace vsq
