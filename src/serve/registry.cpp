#include "serve/registry.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "fault/failpoint.h"
#include "util/table.h"

namespace vsq {
namespace {

// Merge two serving windows of the same model (before/after a hot reload).
// Counts, histograms and wall time are additive; latency percentiles are
// NOT recoverable from two summaries, so the quantile fields are taken
// from the largest SINGLE window seen so far — tracked explicitly in
// percentile_window, since after the first merge `requests` becomes a
// multi-window total and comparing against it would prefer stale small
// windows (max_us and a request-weighted mean are exact).
ServeStatsSnapshot merge_snapshots(ServeStatsSnapshot a, const ServeStatsSnapshot& b) {
  if (b.percentile_window > a.percentile_window) {
    a.p50_us = b.p50_us;
    a.p95_us = b.p95_us;
    a.p99_us = b.p99_us;
    a.percentile_window = b.percentile_window;
  }
  const auto total = a.requests + b.requests;
  if (total > 0) {
    a.mean_us = (a.mean_us * static_cast<double>(a.requests) +
                 b.mean_us * static_cast<double>(b.requests)) /
                static_cast<double>(total);
  }
  a.max_us = std::max(a.max_us, b.max_us);
  a.requests = total;
  a.batches += b.batches;
  a.cache_hits += b.cache_hits;
  a.errors += b.errors;
  a.shed += b.shed;
  a.deadline_expired += b.deadline_expired;
  a.worker_restarts += b.worker_restarts;
  // Queue depth is a point-in-time gauge; retired/drained windows carry 0,
  // so summing reports exactly the live backlog.
  a.queue_depth += b.queue_depth;
  // The merged wall clock is the SPAN from the earliest window start to
  // the latest window end. That is the same semantic a single window
  // already uses (first submit -> last completion, idle gaps included),
  // it is exact under any overlap pattern — summing walls would double-
  // count windows that run concurrently (an unloaded session draining
  // while its hot-reload replacement serves), and summing-minus-pairwise-
  // overlap miscounts a window landing in a gap of the merged union.
  if (b.window_end_s > 0.0) {
    if (a.window_end_s > 0.0) {
      a.window_start_s = std::min(a.window_start_s, b.window_start_s);
      a.window_end_s = std::max(a.window_end_s, b.window_end_s);
    } else {
      a.window_start_s = b.window_start_s;
      a.window_end_s = b.window_end_s;
    }
    a.wall_seconds = a.window_end_s - a.window_start_s;
  }
  a.throughput_rps =
      a.wall_seconds > 0.0 ? static_cast<double>(a.requests) / a.wall_seconds : 0.0;
  if (a.batch_hist.size() < b.batch_hist.size()) a.batch_hist.resize(b.batch_hist.size(), 0);
  for (std::size_t i = 0; i < b.batch_hist.size(); ++i) a.batch_hist[i] += b.batch_hist[i];
  a.mean_batch = mean_batch_from_hist(a.batch_hist, a.batches);
  for (const auto& [w, n] : b.bucket_hist) a.bucket_hist[w] += n;
  a.mixed_bucket_batches += b.mixed_bucket_batches;
  // Resident packed-panel bytes describe the loaded model, not traffic:
  // two windows of the same name serve the same (or a reloaded) model, so
  // take the max rather than summing footprints that never coexisted as
  // one serving instance.
  a.packed_weight_bytes = std::max(a.packed_weight_bytes, b.packed_weight_bytes);
  return a;
}

}  // namespace

ModelRegistry::ModelRegistry(ServeConfig default_cfg) : default_cfg_(default_cfg) {}

ModelRegistry::~ModelRegistry() {
  // Destroy outside the lock: session destructors join their batcher
  // threads, which may still be resolving promises client threads wait on.
  std::map<std::string, std::shared_ptr<InferenceSession>> doomed;
  {
    std::unique_lock lock(mu_);
    doomed.swap(sessions_);
  }
  for (auto& [name, s] : doomed) s->shutdown();
}

void ModelRegistry::load(const std::string& name, QuantizedModelPackage pkg) {
  load(name, std::move(pkg), default_cfg_);
}

void ModelRegistry::load(const std::string& name, QuantizedModelPackage pkg,
                         const ServeConfig& cfg) {
  // Construct before taking the map lock: session construction runs the
  // warmup forward pass (milliseconds), and loading one model must not
  // stall routing for the models already serving. The name reservation is
  // checked twice — optimistically first so a duplicate fails before the
  // expensive construction, then authoritatively at insert.
  if (contains(name)) {
    throw std::invalid_argument("ModelRegistry: model already serving: " + name);
  }
  auto session = std::make_shared<InferenceSession>(std::move(pkg), cfg);
  bool inserted = false;
  {
    std::unique_lock lock(mu_);
    // Insert a copy of the handle: on a lost race nothing is moved-from,
    // and the loser session is torn down (batcher stop + join) AFTER the
    // lock is released — destroying it inside the map under mu_ would
    // stall routing for every other model for the join's duration.
    inserted = sessions_.try_emplace(name, session).second;
  }
  if (!inserted) {
    session->shutdown();
    throw std::invalid_argument("ModelRegistry: model already serving: " + name);
  }
}

void ModelRegistry::load_file(const std::string& name, const std::string& path) {
  load_file(name, path, default_cfg_);
}

void ModelRegistry::load_file(const std::string& name, const std::string& path,
                              const ServeConfig& cfg) {
  load(name, QuantizedModelPackage::load(path), cfg);
}

bool ModelRegistry::unload(const std::string& name) {
  std::shared_ptr<InferenceSession> victim;
  {
    std::unique_lock lock(mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
    // Park the session in draining_ for the duration of the drain, so a
    // concurrent stats()/stats_all() never sees the model vanish (the
    // drain can take as long as the queued work) — only routing stops.
    draining_[name].push_back(victim);
  }
  drain_and_retire(name, victim);
  return true;
}

void ModelRegistry::drain_and_retire(const std::string& name,
                                     const std::shared_ptr<InferenceSession>& victim) {
  // Drain outside the lock: shutdown() blocks until the queue is empty and
  // the batcher joined, and routing to other models must continue
  // meanwhile. Clients that pinned the session via session() can still
  // read stats; their next submit throws.
  victim->shutdown();
  // Retire the final snapshot so stats stay cumulative across hot reloads
  // of the same name. The session is drained and frozen after shutdown(),
  // so the snapshot (which copies and sorts the full latency history) is
  // taken BEFORE the lock — only the draining_ -> retired_ publication
  // needs it, and that move is atomic from a reader's point of view.
  const ServeStatsSnapshot last = victim->stats();
  {
    std::unique_lock lock(mu_);
    auto& parked = draining_[name];
    parked.erase(std::remove(parked.begin(), parked.end(), victim), parked.end());
    if (parked.empty()) draining_.erase(name);
    const auto it = retired_.find(name);
    if (it == retired_.end()) {
      retired_.emplace(name, last);
    } else {
      it->second = merge_snapshots(it->second, last);
    }
  }
}

void ModelRegistry::reload(const std::string& name, QuantizedModelPackage pkg) {
  reload(name, std::move(pkg), default_cfg_);
}

void ModelRegistry::reload(const std::string& name, QuantizedModelPackage pkg,
                           const ServeConfig& cfg) {
  // Rollback-safe hot reload: the REPLACEMENT session is fully constructed
  // (runner built, batcher warmed) before the old one leaves routing. Any
  // failure up to the swap — construction throw, injected fault — leaves
  // the old session serving untouched; there is no unloaded gap like the
  // unload-then-load idiom has. A name that is not currently serving
  // degrades to a plain load, so reload is also the crash-safe way to
  // (re)install a model unconditionally.
  auto replacement = std::make_shared<InferenceSession>(std::move(pkg), cfg);
  // Simulates a failure after the expensive construction but before the
  // swap (the last instant rollback must still hold).
  try {
    VSQ_FAILPOINT("serve.registry.reload");
  } catch (...) {
    replacement->shutdown();
    throw;
  }
  std::shared_ptr<InferenceSession> old;
  {
    std::unique_lock lock(mu_);
    auto& slot = sessions_[name];
    old = std::move(slot);
    slot = replacement;
    if (old) draining_[name].push_back(old);
  }
  if (old) drain_and_retire(name, old);
}

void ModelRegistry::reload_file(const std::string& name, const std::string& path) {
  reload_file(name, path, default_cfg_);
}

void ModelRegistry::reload_file(const std::string& name, const std::string& path,
                                const ServeConfig& cfg) {
  // QuantizedModelPackage::load throws on corrupt/invalid archives BEFORE
  // any registry state changes — the old model keeps serving through a
  // failed reload, which is the load_file rollback contract.
  reload(name, QuantizedModelPackage::load(path), cfg);
}

bool ModelRegistry::contains(const std::string& name) const {
  std::shared_lock lock(mu_);
  return sessions_.count(name) > 0;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mu_);
  return sessions_.size();
}

std::vector<std::string> ModelRegistry::models() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, _] : sessions_) out.push_back(name);
  return out;
}

std::shared_ptr<InferenceSession> ModelRegistry::find(const std::string& name) const {
  std::shared_lock lock(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<InferenceSession> ModelRegistry::session(const std::string& name) const {
  return find(name);
}

std::future<Tensor> ModelRegistry::submit(const std::string& name, const Tensor& input) {
  const auto s = find(name);
  if (!s) throw std::out_of_range("ModelRegistry: model not loaded: " + name);
  return s->submit(input);
}

Tensor ModelRegistry::infer(const std::string& name, const Tensor& input) {
  return submit(name, input).get();
}

ServeStatsSnapshot ModelRegistry::stats(const std::string& name) const {
  // Pin live + draining sessions and copy the retired snapshot under ONE
  // lock acquisition: pinning first and reading retired_ later would let
  // a concurrent unload() retire the very window we pinned, double-
  // counting it in the merge. A retirement that happens after we release
  // the lock is harmless — it is not in our retired copy, and the pinned
  // session's own stats() carries that whole window.
  std::shared_ptr<InferenceSession> s;
  std::vector<std::shared_ptr<InferenceSession>> draining;
  std::optional<ServeStatsSnapshot> merged;
  {
    std::shared_lock lock(mu_);
    if (const auto it = sessions_.find(name); it != sessions_.end()) s = it->second;
    if (const auto it = draining_.find(name); it != draining_.end()) draining = it->second;
    if (const auto it = retired_.find(name); it != retired_.end()) merged = it->second;
  }
  if (!s && !merged && draining.empty()) {
    throw std::out_of_range("ModelRegistry: model never served: " + name);
  }
  for (const auto& d : draining) {
    const ServeStatsSnapshot snap = d->stats();
    merged = merged ? merge_snapshots(*merged, snap) : snap;
  }
  if (s) {
    const ServeStatsSnapshot live = s->stats();
    merged = merged ? merge_snapshots(*merged, live) : live;
  }
  return *merged;
}

std::vector<RegistryModelStats> ModelRegistry::stats_all() const {
  // Snapshot the session sets + retired map under the lock, read live
  // stats outside it (each session's snapshot takes its own stats mutex).
  std::vector<std::pair<std::string, std::shared_ptr<InferenceSession>>> pinned;
  std::map<std::string, std::vector<std::shared_ptr<InferenceSession>>> draining;
  std::map<std::string, ServeStatsSnapshot> acc;
  {
    std::shared_lock lock(mu_);
    pinned.reserve(sessions_.size());
    for (const auto& [name, s] : sessions_) pinned.emplace_back(name, s);
    draining = draining_;
    acc = retired_;
  }
  // Fold mid-drain windows in first, then the live ones on top.
  for (const auto& [name, parked] : draining) {
    for (const auto& d : parked) {
      const ServeStatsSnapshot snap = d->stats();
      const auto it = acc.find(name);
      if (it == acc.end()) {
        acc.emplace(name, snap);
      } else {
        it->second = merge_snapshots(it->second, snap);
      }
    }
  }
  std::vector<RegistryModelStats> out;
  out.reserve(pinned.size() + acc.size());
  for (const auto& [name, s] : pinned) {
    ServeStatsSnapshot snap = s->stats();
    if (const auto it = acc.find(name); it != acc.end()) {
      snap = merge_snapshots(it->second, snap);
      acc.erase(it);
    }
    out.push_back(RegistryModelStats{name, std::move(snap), s->datapath_stats()});
  }
  // Names that served earlier but are currently unloaded still report.
  for (const auto& [name, snap] : acc) {
    out.push_back(RegistryModelStats{name, snap, IntGemmStats{}});
  }
  std::sort(out.begin(), out.end(),
            [](const RegistryModelStats& x, const RegistryModelStats& y) {
              return x.name < y.name;
            });
  return out;
}

void ModelRegistry::print_stats(std::ostream& os) const {
  const std::vector<RegistryModelStats> all = stats_all();
  Table t({"Model", "Requests", "Batches", "Mean batch", "Cache hits", "Errors", "Shed",
           "Expired", "Restarts", "Queue", "Throughput r/s", "p50 us", "p95 us", "p99 us",
           "Packed wt KiB"});
  std::uint64_t requests = 0, batches = 0, hits = 0, errors = 0, shed = 0, expired = 0,
                restarts = 0, queued = 0, packed = 0;
  double rps = 0.0;
  for (const RegistryModelStats& m : all) {
    const ServeStatsSnapshot& s = m.serve;
    t.add_row({m.name, std::to_string(s.requests), std::to_string(s.batches),
               Table::num(s.mean_batch, 2), std::to_string(s.cache_hits),
               std::to_string(s.errors), std::to_string(s.shed),
               std::to_string(s.deadline_expired), std::to_string(s.worker_restarts),
               std::to_string(s.queue_depth), Table::num(s.throughput_rps, 1),
               Table::num(s.p50_us, 1), Table::num(s.p95_us, 1), Table::num(s.p99_us, 1),
               Table::num(static_cast<double>(s.packed_weight_bytes) / 1024.0, 1)});
    requests += s.requests;
    batches += s.batches;
    hits += s.cache_hits;
    errors += s.errors;
    shed += s.shed;
    expired += s.deadline_expired;
    restarts += s.worker_restarts;
    queued += s.queue_depth;
    rps += s.throughput_rps;
    packed += s.packed_weight_bytes;
  }
  t.add_row({"TOTAL", std::to_string(requests), std::to_string(batches), "-",
             std::to_string(hits), std::to_string(errors), std::to_string(shed),
             std::to_string(expired), std::to_string(restarts), std::to_string(queued),
             Table::num(rps, 1), "-", "-", "-",
             Table::num(static_cast<double>(packed) / 1024.0, 1)});
  t.print(os);
}

}  // namespace vsq
