// Serving metrics: per-request latency percentiles, batch-size histogram
// and throughput. Recording is thread-safe (client threads record cache
// hits, the batcher worker records batches); snapshot() takes a coherent
// copy for reporting.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace vsq {

struct ServeStatsSnapshot {
  std::uint64_t requests = 0;    // completed requests (cache hits included)
  std::uint64_t batches = 0;     // forward passes executed
  std::uint64_t cache_hits = 0;  // requests short-circuited by BlobCache
  double wall_seconds = 0.0;     // first submit -> last completion
  double throughput_rps = 0.0;   // requests / wall_seconds
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
  double mean_batch = 0.0;                // requests per executed batch
  std::vector<std::uint64_t> batch_hist;  // index = batch size (0 unused)

  // Two-row aligned table (util/Table) for terminal output.
  void print_table(std::ostream& os) const;
  // Single-line JSON object, machine-readable (vsq_serve --json-out).
  std::string json() const;
};

class ServeStats {
 public:
  // Start of the measurement window; called on every submit, only the
  // first call sets the clock.
  void mark_start();
  // A request completed `latency_us` after submission.
  void record_request(double latency_us, bool cache_hit = false);
  // A batched forward pass over `batch_size` requests executed.
  void record_batch(std::size_t batch_size);

  ServeStatsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> latencies_us_;
  std::vector<std::uint64_t> batch_hist_;
  std::uint64_t batches_ = 0, cache_hits_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point first_, last_;
};

// Nearest-rank percentile of an unsorted sample (p in [0, 100]); 0 when
// empty. Exposed for tests.
double percentile_us(std::vector<double> sample, double p);

}  // namespace vsq
