// Serving metrics: per-request latency percentiles, batch-size histogram
// and throughput. Recording is thread-safe (client threads record cache
// hits and sheds, the batcher worker records batches and errors);
// snapshot() takes a coherent copy for reporting.
//
// Latency samples live in a bounded sliding window (the last
// `latency_window` completions), so a session's memory footprint is flat
// no matter how long it serves — the original unbounded history grew 8
// bytes per request for the life of the session, a linear leak under
// soak traffic. Percentiles therefore describe recent traffic (window
// size reported in percentile_window); request counts, the latency mean
// and max are tracked as exact running aggregates over ALL requests.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vsq {

struct ServeStatsSnapshot {
  std::uint64_t requests = 0;    // completed requests (cache hits included)
  std::uint64_t batches = 0;     // forward passes executed
  std::uint64_t cache_hits = 0;  // requests short-circuited by BlobCache
  // Requests whose batch's forward pass threw: the promise carried the
  // exception instead of a row. Failed batches still count in `batches`
  // and the batch histogram; their requests count here, never in
  // `requests`.
  std::uint64_t errors = 0;
  // Requests rejected by admission control (queue full within the
  // caller's deadline) — shed load, never enqueued, never a row.
  std::uint64_t shed = 0;
  // Requests whose client deadline had already passed when the batcher
  // popped them (or at submit): swept out of the batch and resolved as
  // shed WITHOUT executing a forward pass — wasted work eliminated, not
  // just reported. Disjoint from `shed` (those never enqueued) and from
  // `requests`/`errors` (no row, no exception from the model).
  std::uint64_t deadline_expired = 0;
  // Times the session watchdog replaced a dead or stalled batcher worker.
  std::uint64_t worker_restarts = 0;
  // Queue depth gauge sampled at snapshot time (requests admitted but not
  // yet popped by the batcher). A point-in-time reading, not a counter;
  // cross-reload merges sum it (drained windows contribute 0).
  std::uint64_t queue_depth = 0;
  double wall_seconds = 0.0;     // first submit -> last completion
  double throughput_rps = 0.0;   // requests / wall_seconds
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
  double mean_batch = 0.0;                // requests per executed batch
  std::vector<std::uint64_t> batch_hist;  // index = batch size (0 unused)
  // Sequence-session bucket occupancy: pad-to bucket width -> requests
  // executed at that width, and how many executed batches mixed two or
  // more distinct bucket widths (the sequence batcher's sharing win — a
  // short and a long request riding one forward pass). Empty/0 for
  // non-sequence sessions. Cross-reload merges sum both.
  std::map<std::int64_t, std::uint64_t> bucket_hist;
  std::uint64_t mixed_bucket_batches = 0;
  // Latency samples the percentiles were computed over: the sliding
  // window's occupancy, i.e. min(requests, window capacity) for a plain
  // snapshot. When ModelRegistry merges windows across hot reloads it
  // keeps the percentiles of the largest single window and records that
  // window's size here (quantiles cannot be merged from summaries).
  std::uint64_t percentile_window = 0;
  // Window bounds in steady-clock seconds (process-relative; 0/0 when no
  // request was ever recorded). ModelRegistry's cross-reload merge sets
  // the merged wall clock to the span over all windows (earliest start to
  // latest end — the same first-submit-to-last-completion semantic a
  // single window uses), so throughput_rps never divides by
  // double-counted time when windows overlap (an old session draining
  // while its replacement serves).
  double window_start_s = 0.0, window_end_s = 0.0;
  // Resident bytes of the session's pre-packed weight panels (sub-byte
  // packed layouts shrink this below the int16-panel footprint). A
  // property of the loaded model, not a counter: ModelRegistry's
  // cross-reload merge takes the max, never the sum.
  std::uint64_t packed_weight_bytes = 0;

  // Two-row aligned table (util/Table) for terminal output.
  void print_table(std::ostream& os) const;
  // Single-line JSON object, machine-readable (vsq_serve --json-out, the
  // net server's /stats endpoint). Carries every snapshot field.
  std::string json() const;
};

class ServeStats {
 public:
  // Latency samples retained for percentile estimation. 8192 doubles =
  // 64 KiB per session, enough that p99 is a real tail statistic while a
  // week-long soak holds exactly as much memory as a minute-long one.
  static constexpr std::size_t kDefaultLatencyWindow = 8192;

  explicit ServeStats(std::size_t latency_window = kDefaultLatencyWindow);

  // Start of the measurement window; called on every submit, only the
  // first call sets the clock.
  void mark_start();
  // A request completed `latency_us` after submission.
  void record_request(double latency_us, bool cache_hit = false);
  // A batched forward pass over `batch_size` requests executed.
  void record_batch(std::size_t batch_size);
  // A batch's forward pass threw; its `failed_requests` promises carried
  // the exception.
  void record_errors(std::uint64_t failed_requests);
  // Admission control rejected a request (queue full): shed load.
  void record_shed();
  // `n` requests were swept unexecuted because their deadline had passed.
  void record_deadline_expired(std::uint64_t n);
  // The watchdog replaced a dead/stalled batcher worker.
  void record_worker_restart();
  // A sequence batch executed with its requests padded to these bucket
  // widths (one entry per request — the batch's composition). Counts each
  // width in the bucket histogram and, when the composition holds two or
  // more distinct widths, one mixed-bucket batch.
  void record_bucket_batch(const std::vector<std::int64_t>& request_buckets);

  ServeStatsSnapshot snapshot() const;

  std::size_t latency_window_capacity() const { return window_cap_; }

 private:
  mutable std::mutex mu_;
  const std::size_t window_cap_;
  std::vector<double> window_;    // ring buffer, size() <= window_cap_
  std::size_t window_next_ = 0;   // overwrite cursor once the ring is full
  std::uint64_t requests_ = 0;
  double latency_sum_us_ = 0.0;   // exact running aggregates over ALL
  double latency_max_us_ = 0.0;   // requests, window-independent
  std::vector<std::uint64_t> batch_hist_;
  std::map<std::int64_t, std::uint64_t> bucket_hist_;
  std::uint64_t batches_ = 0, cache_hits_ = 0, errors_ = 0, shed_ = 0;
  std::uint64_t deadline_expired_ = 0, worker_restarts_ = 0;
  std::uint64_t mixed_bucket_batches_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point first_, last_;
};

// Percentile of an unsorted sample, p in [0, 100] (clamped). Linear
// interpolation between closest order statistics (the numpy/Excel
// "linear" definition), so low-count samples degrade gracefully: the old
// nearest-rank rule snapped every p above 100*(n-1)/n straight to the
// maximum, which made the reported p99 just "max" (and p50 of two samples
// the larger one) until ~100 requests had completed. Now p50 of {a, b} is
// their midpoint, a single sample answers every p with itself, and an
// empty sample returns 0. p99 still converges to the tail as n grows —
// just without pretending an n-sample run resolved a quantile it cannot.
double percentile_us(std::vector<double> sample, double p);

// Mean requests per executed batch, derived from the batch-size histogram
// (index = batch size). Shared by ServeStats::snapshot and the registry's
// cross-reload snapshot merge so the definition cannot drift.
double mean_batch_from_hist(const std::vector<std::uint64_t>& hist, std::uint64_t batches);

}  // namespace vsq
