#include "serve/request_queue.h"

#include <algorithm>

namespace vsq {

RequestQueue::RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {}

std::size_t RequestQueue::effective_limit(std::size_t depth_limit) const {
  if (max_depth_ == 0) return depth_limit;
  if (depth_limit == 0) return max_depth_;
  return std::min(max_depth_, depth_limit);
}

bool RequestQueue::has_space(std::size_t limit) const {
  return limit == 0 || q_.size() < limit;
}

bool RequestQueue::push(Request r) {
  {
    std::unique_lock lock(mu_);
    cv_push_.wait(lock, [&] { return closed_ || has_space(max_depth_); });
    if (closed_) return false;
    q_.push_back(std::move(r));
  }
  cv_pop_.notify_one();
  return true;
}

PushStatus RequestQueue::try_push(Request& r, std::size_t depth_limit) {
  {
    std::unique_lock lock(mu_);
    if (closed_) return PushStatus::kClosed;
    if (!has_space(effective_limit(depth_limit))) return PushStatus::kFull;
    q_.push_back(std::move(r));
  }
  cv_pop_.notify_one();
  return PushStatus::kOk;
}

PushStatus RequestQueue::try_push_until(Request& r, std::chrono::steady_clock::time_point deadline,
                                        std::size_t depth_limit) {
  {
    std::unique_lock lock(mu_);
    const std::size_t limit = effective_limit(depth_limit);
    // wait_until returns false only on timeout with the predicate still
    // false — i.e. the queue stayed at or above the limit the whole wait.
    if (!cv_push_.wait_until(lock, deadline, [&] { return closed_ || has_space(limit); })) {
      return PushStatus::kFull;
    }
    if (closed_) return PushStatus::kClosed;
    q_.push_back(std::move(r));
  }
  cv_pop_.notify_one();
  return PushStatus::kOk;
}

std::vector<Request> RequestQueue::pop_batch(std::size_t max_batch,
                                             std::chrono::microseconds max_wait) {
  if (max_batch == 0) max_batch = 1;
  std::vector<Request> batch;
  std::unique_lock lock(mu_);
  cv_pop_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return batch;  // closed and drained

  // The batch opens with the first available request; linger up to
  // max_wait for stragglers that can ride the same forward pass. The wait
  // is adaptive: it proceeds in small quanta and stops as soon as a
  // quantum passes with no new arrivals — when every in-flight client is
  // already queued (closed-loop traffic with fewer clients than
  // max_batch), waiting longer cannot grow the batch, it only adds
  // latency to requests already captured.
  if (q_.size() < max_batch && max_wait.count() > 0) {
    const auto quantum = std::max<std::chrono::microseconds>(
        std::chrono::microseconds(10), max_wait / 8);
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (!closed_ && q_.size() < max_batch) {
      const std::size_t before = q_.size();
      const auto until = std::min(deadline, std::chrono::steady_clock::now() + quantum);
      cv_pop_.wait_until(lock, until, [&] { return closed_ || q_.size() >= max_batch; });
      if (q_.size() == before) break;  // stalled: nobody else is coming
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
  }
  const std::size_t take = std::min(max_batch, q_.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  lock.unlock();
  cv_push_.notify_all();
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_pop_.notify_all();
  cv_push_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mu_);
  return q_.size();
}

}  // namespace vsq
