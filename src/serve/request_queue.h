// Lock-guarded MPSC request queue feeding the dynamic batcher. Client
// threads push single-sample requests; the batcher worker pops coalesced
// batches: pop_batch() blocks for the first request, then keeps the batch
// open up to `max_wait` for more requests to arrive (or until `max_batch`
// accumulate), trading a bounded latency hit for batched GEMM efficiency.
//
// Admission: push() is the legacy blocking producer (waits for space on a
// bounded queue — under sustained overload that is a head-of-line stall,
// not backpressure). try_push()/try_push_until() are the admission-control
// primitives: they fail fast (or by a deadline) with kFull so the caller
// can shed load explicitly, and they take an optional per-call depth limit
// so priority lanes can reserve headroom — a low-priority producer capped
// at half the queue starts shedding while high-priority traffic still
// admits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vsq {

// One in-flight inference request: a single input row and the promise its
// output row is delivered through.
struct Request {
  std::uint64_t id = 0;
  Tensor input;  // [1, in_features]
  std::promise<Tensor> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  // Client deadline: the batcher sweeps requests whose deadline has passed
  // out of each popped batch and resolves them with DeadlineExpiredError
  // WITHOUT executing them. max() = no deadline.
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
  std::string cache_key;  // non-empty -> result goes into the session cache
};

// Outcome of a non-blocking / deadline-bounded push. On kFull/kClosed the
// request is NOT consumed — the caller still owns it (and its promise).
enum class PushStatus { kOk, kFull, kClosed };

// Thrown by InferenceSession::submit when admission control sheds the
// request (queue full within the configured deadline). A distinct type so
// callers can tell "server says no, retry later / lower the rate" apart
// from the generic shutdown std::runtime_error.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Carried by a request's future (or thrown straight from submit) when its
// deadline passed before the model ran: the request was shed, not executed.
// The wire front-end maps this to Status::kShed like an admission shed —
// from the client's side both mean "the server declined, nothing ran".
class DeadlineExpiredError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Carried by a request's future when the serving worker died with the
// request pending and the watchdog (or shutdown) failed it over: the
// request MAY not have executed and MAY be retried. The wire front-end
// maps this to Status::kUnavailable.
class UnavailableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RequestQueue {
 public:
  // max_depth bounds outstanding requests (blocking push waits when full,
  // try_push sheds); 0 = unbounded.
  explicit RequestQueue(std::size_t max_depth = 0);

  // Blocking push: waits for space on a bounded queue. False when the
  // queue is closed (the request is returned unfulfilled in that case —
  // the caller owns the promise again).
  bool push(Request r);

  // Non-blocking push. `depth_limit` optionally tightens the bound for
  // this call (0 = the queue's own max_depth): the effective limit is the
  // smaller of the two, which is how priority lanes carve headroom out of
  // one shared queue. kFull when the effective limit is reached.
  PushStatus try_push(Request& r, std::size_t depth_limit = 0);

  // Deadline-bounded push: waits until space appears, the queue closes, or
  // `deadline` passes (-> kFull). Same depth_limit semantics as try_push.
  PushStatus try_push_until(Request& r, std::chrono::steady_clock::time_point deadline,
                            std::size_t depth_limit = 0);

  // Pops up to max_batch requests. Blocks until at least one request is
  // available, then waits at most `max_wait` (from the moment the batch
  // opened) for it to fill. Returns an empty vector only when the queue is
  // closed and fully drained.
  std::vector<Request> pop_batch(std::size_t max_batch, std::chrono::microseconds max_wait);

  // Close: pushes fail from now on (blocked pushers wake and return
  // false/kClosed promptly); pop_batch drains what remains.
  void close();
  bool closed() const;
  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }

 private:
  // Effective bound for one push call; 0 = unbounded.
  std::size_t effective_limit(std::size_t depth_limit) const;
  bool has_space(std::size_t limit) const;

  mutable std::mutex mu_;
  std::condition_variable cv_pop_;   // batcher waits for requests
  std::condition_variable cv_push_;  // producers wait for space
  std::deque<Request> q_;
  std::size_t max_depth_;
  bool closed_ = false;
};

}  // namespace vsq
