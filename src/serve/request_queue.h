// Lock-guarded MPSC request queue feeding the dynamic batcher. Client
// threads push single-sample requests; the batcher worker pops coalesced
// batches: pop_batch() blocks for the first request, then keeps the batch
// open up to `max_wait` for more requests to arrive (or until `max_batch`
// accumulate), trading a bounded latency hit for batched GEMM efficiency.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vsq {

// One in-flight inference request: a single input row and the promise its
// output row is delivered through.
struct Request {
  std::uint64_t id = 0;
  Tensor input;  // [1, in_features]
  std::promise<Tensor> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  std::string cache_key;  // non-empty -> result goes into the session cache
};

class RequestQueue {
 public:
  // max_depth bounds outstanding requests (push blocks when full);
  // 0 = unbounded.
  explicit RequestQueue(std::size_t max_depth = 0);

  // False when the queue is closed (the request is returned unfulfilled in
  // that case — the caller owns the promise again).
  bool push(Request r);

  // Pops up to max_batch requests. Blocks until at least one request is
  // available, then waits at most `max_wait` (from the moment the batch
  // opened) for it to fill. Returns an empty vector only when the queue is
  // closed and fully drained.
  std::vector<Request> pop_batch(std::size_t max_batch, std::chrono::microseconds max_wait);

  // Close: pushes fail from now on; pop_batch drains what remains.
  void close();
  bool closed() const;
  std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_pop_;   // batcher waits for requests
  std::condition_variable cv_push_;  // producers wait for space
  std::deque<Request> q_;
  std::size_t max_depth_;
  bool closed_ = false;
};

}  // namespace vsq
