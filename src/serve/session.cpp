#include "serve/session.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace vsq {

InferenceSession::InferenceSession(QuantizedModelPackage pkg, ServeConfig cfg)
    : pkg_(std::move(pkg)),
      cfg_(cfg),
      runner_(pkg_, cfg.scale_product_bits),
      stats_(cfg.latency_window),
      cache_(cfg.cache_entries),
      queue_(cfg.queue_depth) {
  for (const auto& [name, prim] : runner_.primitives()) {
    packed_weight_bytes_ += static_cast<std::uint64_t>(prim.resident_bytes());
  }
  if (runner_.seq()) {
    // Resolve the bucket ladder once: sorted, deduplicated, positive, and
    // always ending in max_seq so every admissible length has a bucket.
    // Empty config -> doubling widths (8, 16, ... max_seq).
    auto& b = cfg_.seq_buckets;
    b.erase(std::remove_if(b.begin(), b.end(),
                           [this](std::int64_t w) { return w < 1 || w > runner_.max_seq(); }),
            b.end());
    if (b.empty()) {
      for (std::int64_t w = 8; w < runner_.max_seq(); w *= 2) b.push_back(w);
    }
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    if (b.empty() || b.back() < runner_.max_seq()) b.push_back(runner_.max_seq());
  }
  if (cfg_.cache_entries > 0) {
    // Cache entries store input || output: the key is only a 64-bit hash,
    // so hits re-verify the input bytes before trusting the stored row —
    // a collision degrades to a miss, never to a wrong answer.
    result_hook_ = [this](const std::string& key, std::span<const float> input,
                          std::span<const float> output) {
      std::vector<float> entry;
      entry.reserve(input.size() + output.size());
      entry.insert(entry.end(), input.begin(), input.end());
      entry.insert(entry.end(), output.begin(), output.end());
      cache_.put(key, std::move(entry));
    };
  }
  if (cfg_.collect_datapath_stats) {
    batch_fn_ = [this](const Tensor& batch) {
      IntGemmStats local;
      Tensor y = runner_.forward(batch, &local);
      std::lock_guard lock(gemm_stats_mu_);
      gemm_stats_.vector_ops += local.vector_ops;
      gemm_stats_.zero_scale_products += local.zero_scale_products;
      gemm_stats_.zero_dot_products += local.zero_dot_products;
      gemm_stats_.panels_packed += local.panels_packed;
      gemm_stats_.panels_unpacked_materialized += local.panels_unpacked_materialized;
      gemm_stats_.max_abs_psum = std::max(gemm_stats_.max_abs_psum, local.max_abs_psum);
      return y;
    };
  } else {
    batch_fn_ = [this](const Tensor& batch) { return runner_.forward(batch); };
  }
  batcher_ = make_batcher(cfg_.warmup);
  if (cfg_.watchdog) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

std::unique_ptr<DynamicBatcher> InferenceSession::make_batcher(bool warmup) {
  BatcherConfig bc;
  bc.max_batch = cfg_.max_batch;
  bc.max_wait_us = cfg_.max_wait_us;
  bc.warmup = warmup;
  if (runner_.seq()) {
    bc.seq_buckets = cfg_.seq_buckets;
    bc.out_per_token = runner_.out_per_token();
  }
  return std::make_unique<DynamicBatcher>(queue_, batch_fn_, runner_.in_features(), bc, stats_,
                                          result_hook_);
}

InferenceSession::~InferenceSession() { shutdown(); }

void InferenceSession::shutdown() {
  // Stop the watchdog FIRST so it cannot race batcher replacement with
  // teardown; then stop the active batcher (closes the queue, drains,
  // joins) and reap any parked zombies (their run loops exit once the
  // stuck call returns and they observe the closed queue).
  {
    std::lock_guard lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  std::lock_guard lock(batcher_mu_);
  if (batcher_) batcher_->stop();
  // A restart-budget fail-over may have left promises in the closed
  // queue; shutdown must not strand them either.
  fail_over_pending();
  for (auto& z : zombies_) z->stop();  // retired: joins without re-closing
  zombies_.clear();
}

void InferenceSession::fail_over_pending() {
  // Only meaningful once the queue is closed (pop_batch never blocks
  // then): drain whatever was admitted and fail it with a typed status.
  if (!queue_.closed()) return;
  for (;;) {
    std::vector<Request> pending = queue_.pop_batch(64, std::chrono::microseconds(0));
    if (pending.empty()) return;
    stats_.record_errors(pending.size());
    for (Request& r : pending) {
      r.promise.set_exception(std::make_exception_ptr(
          UnavailableError("InferenceSession: serving worker unavailable")));
    }
  }
}

void InferenceSession::watchdog_loop() {
  for (;;) {
    {
      std::unique_lock lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.watchdog_interval_ms),
                            [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    std::lock_guard lock(batcher_mu_);
    if (!batcher_ || queue_.closed()) continue;

    const bool worker_dead = batcher_->dead();
    const bool worker_stalled =
        !worker_dead && batcher_->busy() &&
        batcher_->heartbeat_age() > std::chrono::milliseconds(cfg_.stall_timeout_ms);
    if (!worker_dead && !worker_stalled) continue;

    if (restarts_used_ >= cfg_.max_worker_restarts) {
      // Budget exhausted: the worker is crash-looping (poisoned model,
      // deterministic fault). Fail the session over instead of burning
      // CPU on restarts — pending and future requests get a typed error.
      queue_.close();
      fail_over_pending();
      batcher_->retire();  // queue already closed; don't double-close
      zombies_.push_back(std::move(batcher_));
      continue;
    }
    ++restarts_used_;
    stats_.record_worker_restart();
    batcher_->retire();
    if (worker_dead) {
      // Exited thread: join it and let the replacement own the queue.
      batcher_->join_dead();
      batcher_.reset();
    } else {
      // Stalled thread: unjoinable until the stuck call returns. Park it;
      // pending promises it holds break (std::future_error) if it ever
      // unwinds, and shutdown reaps it. The replacement serves the queue
      // immediately (pop_batch is mutex-guarded, two poppers are safe).
      zombies_.push_back(std::move(batcher_));
    }
    // No warmup: the arena cost was paid once; restart must be fast.
    batcher_ = make_batcher(/*warmup=*/false);
  }
}

std::future<Tensor> InferenceSession::submit(const Tensor& input, Priority priority,
                                             std::chrono::steady_clock::time_point deadline) {
  const std::int64_t d = runner_.in_features();
  const Shape& s = input.shape();
  std::int64_t out_n = runner_.out_features();
  if (runner_.seq()) {
    // Sequence model: an UNPADDED token row of any length up to max_seq.
    const std::int64_t t = s.rank() == 1 ? s[0] : (s.rank() == 2 && s[0] == 1 ? s[1] : 0);
    if (t < 1 || t > runner_.max_seq()) {
      throw std::invalid_argument(
          "InferenceSession::submit: sequence input must be [T] or [1, T] with 1 <= T <= " +
          std::to_string(runner_.max_seq()));
    }
    // Validate tokens at the door so one malformed request fails alone
    // instead of failing every batch-mate it rides with. Clients send
    // unpadded rows; the pad sentinel (-1) is the batcher's to add.
    const float vocab = static_cast<float>(runner_.vocab());
    for (const float v : input.span()) {
      if (!(v >= 0.0f && v < vocab && v == static_cast<float>(static_cast<std::int64_t>(v)))) {
        throw std::invalid_argument(
            "InferenceSession::submit: token ids must be integral and in [0, " +
            std::to_string(runner_.vocab()) + ")");
      }
    }
    out_n = t * runner_.out_per_token();
  } else {
    const bool ok = (s.rank() == 1 && s[0] == d) || (s.rank() == 2 && s[0] == 1 && s[1] == d);
    if (!ok) {
      throw std::invalid_argument("InferenceSession::submit: input must be [" +
                                  std::to_string(d) + "] or [1, " + std::to_string(d) + "]");
    }
  }
  stats_.mark_start();
  const auto t0 = std::chrono::steady_clock::now();
  if (deadline <= t0) {
    // Already hopeless at the door: same contract as the batcher sweep
    // (shed unexecuted), surfaced synchronously.
    stats_.record_deadline_expired(1);
    throw DeadlineExpiredError("InferenceSession::submit: deadline already expired");
  }

  Request req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.enqueue_time = t0;
  req.deadline = deadline;
  if (cfg_.cache_entries > 0) {
    req.cache_key = blob_key(input.span());
    if (auto hit = cache_.get(req.cache_key)) {
      // Entry layout: input || output. Confirm the stored input actually
      // matches before serving the row (hash collisions become misses).
      // Sequence entries are per-length: in_n/out_n already reflect this
      // request's token count, so a different-length row can't match.
      const auto in_n = static_cast<std::size_t>(input.numel());
      if (hit->size() == in_n + static_cast<std::size_t>(out_n) &&
          std::memcmp(hit->data(), input.data(), in_n * sizeof(float)) == 0) {
        std::promise<Tensor> p;
        std::future<Tensor> f = p.get_future();
        p.set_value(Tensor::from_vector(
            Shape{1, out_n},
            std::vector<float>(hit->begin() + static_cast<std::ptrdiff_t>(in_n), hit->end())));
        stats_.record_request(
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
                .count(),
            /*cache_hit=*/true);
        return f;
      }
    }
  }

  // Shallow copy (Tensor shares storage): no per-request allocation. The
  // caller must not mutate the buffer until the future resolves — the
  // batcher reads it when the batch assembles.
  req.input = input;

  std::future<Tensor> f = req.promise.get_future();

  // Admission. The lane's depth limit carves headroom out of the shared
  // queue (0 = the queue's own bound): on a bounded queue, kLow sheds
  // first, then kNormal, while kHigh admits up to the full depth.
  std::size_t lane_limit = 0;
  if (cfg_.queue_depth > 0 && priority != Priority::kHigh) {
    const double frac =
        priority == Priority::kLow ? cfg_.low_lane_fraction : cfg_.normal_lane_fraction;
    const double clamped = std::min(1.0, std::max(0.0, frac));
    lane_limit = std::max<std::size_t>(
        1, static_cast<std::size_t>(clamped * static_cast<double>(cfg_.queue_depth)));
  }

  PushStatus st;
  if (cfg_.admission_timeout_us < 0) {
    // Legacy blocking admission — but still honor the lane bound, and
    // return promptly (kClosed) when a shutdown races the wait.
    st = PushStatus::kFull;
    while (st == PushStatus::kFull) {
      st = queue_.try_push_until(
          req, std::chrono::steady_clock::now() + std::chrono::milliseconds(50), lane_limit);
    }
  } else if (cfg_.admission_timeout_us == 0) {
    st = queue_.try_push(req, lane_limit);
  } else {
    st = queue_.try_push_until(
        req, std::chrono::steady_clock::now() + std::chrono::microseconds(cfg_.admission_timeout_us),
        lane_limit);
  }
  if (st == PushStatus::kFull) {
    stats_.record_shed();
    throw QueueFullError("InferenceSession::submit: queue full, request shed");
  }
  if (st == PushStatus::kClosed) {
    throw std::runtime_error("InferenceSession::submit: session is shut down");
  }
  return f;
}

Tensor InferenceSession::infer(const Tensor& input, Priority priority) {
  return submit(input, priority).get();
}

IntGemmStats InferenceSession::datapath_stats() const {
  std::lock_guard lock(gemm_stats_mu_);
  return gemm_stats_;
}

}  // namespace vsq
