#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/table.h"

namespace vsq {

double percentile_us(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (!(p > 0.0)) return sample.front();  // also catches NaN
  if (p >= 100.0) return sample.back();
  // Interpolated rank over n-1 gaps: r = p/100 * (n-1), blend the two
  // bracketing order statistics. Exact order statistics fall out when r is
  // integral, n == 1 answers every p with the single sample.
  const double r = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(r);
  const double frac = r - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

void ServeStats::mark_start() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  if (!started_) {
    first_ = now;
    last_ = now;
    started_ = true;
  }
}

void ServeStats::record_request(double latency_us, bool cache_hit) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  latencies_us_.push_back(latency_us);
  if (cache_hit) ++cache_hits_;
  last_ = now;
}

void ServeStats::record_batch(std::size_t batch_size) {
  std::lock_guard lock(mu_);
  if (batch_hist_.size() <= batch_size) batch_hist_.resize(batch_size + 1, 0);
  ++batch_hist_[batch_size];
  ++batches_;
}

ServeStatsSnapshot ServeStats::snapshot() const {
  std::vector<double> lat;
  ServeStatsSnapshot s;
  {
    std::lock_guard lock(mu_);
    lat = latencies_us_;
    s.batch_hist = batch_hist_;
    s.batches = batches_;
    s.cache_hits = cache_hits_;
    if (started_) {
      s.wall_seconds = std::chrono::duration<double>(last_ - first_).count();
      s.window_start_s =
          std::chrono::duration<double>(first_.time_since_epoch()).count();
      s.window_end_s = std::chrono::duration<double>(last_.time_since_epoch()).count();
    }
  }
  s.requests = lat.size();
  s.percentile_window = s.requests;
  if (!lat.empty()) {
    s.mean_us = std::accumulate(lat.begin(), lat.end(), 0.0) / static_cast<double>(lat.size());
    s.max_us = *std::max_element(lat.begin(), lat.end());
    s.p50_us = percentile_us(lat, 50.0);
    s.p95_us = percentile_us(lat, 95.0);
    s.p99_us = percentile_us(lat, 99.0);
  }
  if (s.wall_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / s.wall_seconds;
  }
  s.mean_batch = mean_batch_from_hist(s.batch_hist, s.batches);
  return s;
}

double mean_batch_from_hist(const std::vector<std::uint64_t>& hist, std::uint64_t batches) {
  if (batches == 0) return 0.0;
  std::uint64_t batched_requests = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) batched_requests += hist[b] * b;
  return static_cast<double>(batched_requests) / static_cast<double>(batches);
}

void ServeStatsSnapshot::print_table(std::ostream& os) const {
  Table t({"Requests", "Batches", "Mean batch", "Cache hits", "Throughput r/s", "p50 us",
           "p95 us", "p99 us", "max us", "Packed wt KiB"});
  t.add_row({std::to_string(requests), std::to_string(batches), Table::num(mean_batch, 2),
             std::to_string(cache_hits), Table::num(throughput_rps, 1), Table::num(p50_us, 1),
             Table::num(p95_us, 1), Table::num(p99_us, 1), Table::num(max_us, 1),
             Table::num(static_cast<double>(packed_weight_bytes) / 1024.0, 1)});
  t.print(os);
}

std::string ServeStatsSnapshot::json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"requests\":" << requests << ",\"batches\":" << batches
     << ",\"cache_hits\":" << cache_hits << ",\"wall_seconds\":" << wall_seconds
     << ",\"throughput_rps\":" << throughput_rps << ",\"mean_batch\":" << mean_batch
     << ",\"latency_us\":{\"p50\":" << p50_us << ",\"p95\":" << p95_us << ",\"p99\":" << p99_us
     << ",\"mean\":" << mean_us << ",\"max\":" << max_us
     << ",\"percentile_window\":" << percentile_window
     << "},\"packed_weight_bytes\":" << packed_weight_bytes << ",\"batch_hist\":[";
  for (std::size_t b = 0; b < batch_hist.size(); ++b) {
    if (b) os << ',';
    os << batch_hist[b];
  }
  os << "]}";
  return os.str();
}

}  // namespace vsq
