#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "util/table.h"

namespace vsq {

double percentile_us(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (!(p > 0.0)) return sample.front();  // also catches NaN
  if (p >= 100.0) return sample.back();
  // Interpolated rank over n-1 gaps: r = p/100 * (n-1), blend the two
  // bracketing order statistics. Exact order statistics fall out when r is
  // integral, n == 1 answers every p with the single sample.
  const double r = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(r);
  const double frac = r - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

ServeStats::ServeStats(std::size_t latency_window)
    : window_cap_(std::max<std::size_t>(1, latency_window)) {}

void ServeStats::mark_start() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  if (!started_) {
    first_ = now;
    last_ = now;
    started_ = true;
  }
}

void ServeStats::record_request(double latency_us, bool cache_hit) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  // Sliding window: grow until the capacity is reached, then overwrite the
  // oldest sample in ring order. The ring never reallocates past
  // window_cap_, so per-session memory is flat in request count.
  if (window_.size() < window_cap_) {
    window_.push_back(latency_us);
  } else {
    window_[window_next_] = latency_us;
    window_next_ = (window_next_ + 1) % window_cap_;
  }
  ++requests_;
  latency_sum_us_ += latency_us;
  latency_max_us_ = std::max(latency_max_us_, latency_us);
  if (cache_hit) ++cache_hits_;
  last_ = now;
}

void ServeStats::record_batch(std::size_t batch_size) {
  std::lock_guard lock(mu_);
  if (batch_hist_.size() <= batch_size) batch_hist_.resize(batch_size + 1, 0);
  ++batch_hist_[batch_size];
  ++batches_;
}

void ServeStats::record_errors(std::uint64_t failed_requests) {
  std::lock_guard lock(mu_);
  errors_ += failed_requests;
}

void ServeStats::record_shed() {
  std::lock_guard lock(mu_);
  ++shed_;
}

void ServeStats::record_deadline_expired(std::uint64_t n) {
  std::lock_guard lock(mu_);
  deadline_expired_ += n;
}

void ServeStats::record_worker_restart() {
  std::lock_guard lock(mu_);
  ++worker_restarts_;
}

void ServeStats::record_bucket_batch(const std::vector<std::int64_t>& request_buckets) {
  if (request_buckets.empty()) return;
  std::lock_guard lock(mu_);
  bool mixed = false;
  for (const std::int64_t w : request_buckets) {
    ++bucket_hist_[w];
    if (w != request_buckets.front()) mixed = true;
  }
  if (mixed) ++mixed_bucket_batches_;
}

ServeStatsSnapshot ServeStats::snapshot() const {
  std::vector<double> lat;
  ServeStatsSnapshot s;
  {
    std::lock_guard lock(mu_);
    lat = window_;  // percentile input order is irrelevant (sorted inside)
    s.batch_hist = batch_hist_;
    s.bucket_hist = bucket_hist_;
    s.mixed_bucket_batches = mixed_bucket_batches_;
    s.requests = requests_;
    s.batches = batches_;
    s.cache_hits = cache_hits_;
    s.errors = errors_;
    s.shed = shed_;
    s.deadline_expired = deadline_expired_;
    s.worker_restarts = worker_restarts_;
    if (requests_ > 0) {
      s.mean_us = latency_sum_us_ / static_cast<double>(requests_);
      s.max_us = latency_max_us_;
    }
    if (started_) {
      s.wall_seconds = std::chrono::duration<double>(last_ - first_).count();
      s.window_start_s =
          std::chrono::duration<double>(first_.time_since_epoch()).count();
      s.window_end_s = std::chrono::duration<double>(last_.time_since_epoch()).count();
    }
  }
  s.percentile_window = lat.size();
  if (!lat.empty()) {
    s.p50_us = percentile_us(lat, 50.0);
    s.p95_us = percentile_us(lat, 95.0);
    s.p99_us = percentile_us(lat, 99.0);
  }
  if (s.wall_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / s.wall_seconds;
  }
  s.mean_batch = mean_batch_from_hist(s.batch_hist, s.batches);
  return s;
}

double mean_batch_from_hist(const std::vector<std::uint64_t>& hist, std::uint64_t batches) {
  if (batches == 0) return 0.0;
  std::uint64_t batched_requests = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) batched_requests += hist[b] * b;
  return static_cast<double>(batched_requests) / static_cast<double>(batches);
}

void ServeStatsSnapshot::print_table(std::ostream& os) const {
  Table t({"Requests", "Batches", "Mean batch", "Cache hits", "Errors", "Shed", "Expired",
           "Restarts", "Queue", "Throughput r/s", "p50 us", "p95 us", "p99 us", "max us",
           "Packed wt KiB"});
  t.add_row({std::to_string(requests), std::to_string(batches), Table::num(mean_batch, 2),
             std::to_string(cache_hits), std::to_string(errors), std::to_string(shed),
             std::to_string(deadline_expired), std::to_string(worker_restarts),
             std::to_string(queue_depth), Table::num(throughput_rps, 1), Table::num(p50_us, 1),
             Table::num(p95_us, 1), Table::num(p99_us, 1), Table::num(max_us, 1),
             Table::num(static_cast<double>(packed_weight_bytes) / 1024.0, 1)});
  t.print(os);
  if (!bucket_hist.empty()) {
    os << "sequence buckets (width: requests):";
    for (const auto& [w, n] : bucket_hist) os << " " << w << ":" << n;
    os << "; mixed-bucket batches: " << mixed_bucket_batches << "\n";
  }
}

std::string ServeStatsSnapshot::json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"requests\":" << requests << ",\"batches\":" << batches
     << ",\"cache_hits\":" << cache_hits << ",\"errors\":" << errors << ",\"shed\":" << shed
     << ",\"deadline_expired\":" << deadline_expired << ",\"worker_restarts\":" << worker_restarts
     << ",\"queue_depth\":" << queue_depth << ",\"wall_seconds\":" << wall_seconds
     << ",\"window_start_s\":" << window_start_s << ",\"window_end_s\":" << window_end_s
     << ",\"throughput_rps\":" << throughput_rps << ",\"mean_batch\":" << mean_batch
     << ",\"latency_us\":{\"p50\":" << p50_us << ",\"p95\":" << p95_us << ",\"p99\":" << p99_us
     << ",\"mean\":" << mean_us << ",\"max\":" << max_us
     << ",\"percentile_window\":" << percentile_window
     << "},\"packed_weight_bytes\":" << packed_weight_bytes
     << ",\"mixed_bucket_batches\":" << mixed_bucket_batches << ",\"bucket_hist\":{";
  bool first_bucket = true;
  for (const auto& [w, n] : bucket_hist) {
    if (!first_bucket) os << ',';
    first_bucket = false;
    os << "\"" << w << "\":" << n;
  }
  os << "},\"batch_hist\":[";
  for (std::size_t b = 0; b < batch_hist.size(); ++b) {
    if (b) os << ',';
    os << batch_hist[b];
  }
  os << "]}";
  return os.str();
}

}  // namespace vsq
