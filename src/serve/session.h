// InferenceSession: the serving engine's front door. Owns a loaded
// QuantizedModelPackage, its QuantizedModelRunner, the request queue, the
// dynamic batcher worker, the repeated-input result cache and the metrics
// collector. Client threads submit() single-sample inputs and get futures;
// the batcher coalesces them into batched integer forward passes. Outputs
// are bit-identical to sequential single-sample execution (int_gemm rows
// are independent), so batching is purely a throughput optimization.
//
//   InferenceSession session(QuantizedModelPackage::load(path), cfg);
//   std::future<Tensor> f = session.submit(input_row);
//   Tensor y = f.get();                 // [1, out_features]
//   session.stats().print_table(std::cout);
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "quant/export.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_stats.h"
#include "util/result_cache.h"

namespace vsq {

// Priority lane of a request. Lanes layer on the ONE shared RequestQueue
// as admission headroom, not separate queues: a lane's requests are shed
// once the queue is fuller than that lane's fraction of queue_depth, so
// under overload low-priority traffic starts shedding first and high-
// priority requests still admit into the space the lower lanes may not
// use. Batching/FIFO order inside the queue is unchanged.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

struct ServeConfig {
  int max_batch = 16;
  // Extra time a freshly opened batch lingers for stragglers. 0 (the
  // default) means "take what's queued": under sustained load batches
  // form naturally while the previous forward pass runs, and waiting only
  // adds latency. Raise it for sparse open-loop traffic where merging
  // arrivals is worth a bounded latency hit.
  int max_wait_us = 0;
  int scale_product_bits = -1;   // as in int_gemm; -1 = full product
  std::size_t queue_depth = 0;   // bound on queued requests; 0 = unbounded
  std::size_t cache_entries = 0; // repeated-input BlobCache size; 0 = off
  bool warmup = true;
  // Accumulate IntGemmStats (vector ops, gating) across batches. The
  // counters cost measurable time per scale product, so serving defaults
  // to off; enable for datapath analysis (vsq_serve --datapath-stats).
  bool collect_datapath_stats = false;
  // Admission control at submit() on a bounded queue (queue_depth > 0):
  //   < 0  (default) block until space frees — the legacy in-process
  //        behavior, where backpressure is the caller's blocked thread;
  //   == 0 shed immediately when the lane is full (throw QueueFullError);
  //   > 0  wait up to this many microseconds for space, then shed.
  // A server front-end wants 0 (or small): an explicit rejection the
  // client can act on beats an invisible head-of-line stall.
  int admission_timeout_us = -1;
  // Per-lane admission headroom as fractions of queue_depth (only
  // meaningful on a bounded queue). kHigh always admits up to the full
  // depth. Defaults keep kNormal at the full depth (so existing callers
  // see no behavior change) and shed kLow once the queue is half full.
  double normal_lane_fraction = 1.0;
  double low_lane_fraction = 0.5;
  // Latency samples retained for percentile estimation (bounded sliding
  // window; memory per session is flat in request count).
  std::size_t latency_window = ServeStats::kDefaultLatencyWindow;
  // Sequence models only: pad-to bucket widths for the length-aware
  // batcher (see BatcherConfig::seq_buckets). Empty = automatic doubling
  // widths (8, 16, ... max_seq). Values are sorted and deduplicated at
  // session construction; max_seq is appended when not covered. Ignored
  // for non-sequence models.
  std::vector<std::int64_t> seq_buckets;
  // Batcher watchdog: a monitor thread that detects a dead worker (thread
  // exited with the queue still open — escaped exception, injected death)
  // or a stalled one (busy in the forward pass with a stale heartbeat)
  // and replaces it, so one poisoned batch cannot take the session down.
  bool watchdog = true;
  int watchdog_interval_ms = 100;  // health-check cadence
  // busy + no heartbeat for this long -> stalled. Generous by default:
  // a legitimate huge batch on a slow machine must not trip it.
  int stall_timeout_ms = 5000;
  // Worker replacements before the watchdog gives up and fails the
  // session over: the queue closes and every pending request's promise
  // carries UnavailableError. Guards against a deterministically
  // poisoned model crash-looping the worker forever.
  int max_worker_restarts = 3;
};

class InferenceSession {
 public:
  // Takes ownership of the package (the runner points into it). Throws
  // std::invalid_argument when the package has no runnable program.
  explicit InferenceSession(QuantizedModelPackage pkg, ServeConfig cfg = {});
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // input: [in_features] or [1, in_features]. Sequence models instead
  // take an UNPADDED token row [T] or [1, T] for any 1 <= T <= max_seq;
  // token values are validated here (integral, in [0, vocab)) so one bad
  // request fails at the door instead of failing its whole batch, and the
  // future resolves to that request's [1, T * out_per_token] logits. The
  // tensor's storage is shared (no copy) — do not mutate it before the
  // future resolves. The future resolves to the [1, out_features] output
  // row for non-sequence models. Throws
  // std::runtime_error after shutdown(), and QueueFullError when
  // admission control sheds the request (bounded queue full within
  // cfg.admission_timeout_us — never thrown with the default blocking
  // admission). `priority` picks the admission lane (see Priority).
  //
  // `deadline` (steady clock, max() = none) propagates into the batcher:
  // a request whose deadline passes before its batch executes is swept
  // out unexecuted and its future carries DeadlineExpiredError (counted
  // as deadline_expired, the wire maps it to kShed). A deadline that has
  // already passed at submit throws DeadlineExpiredError directly.
  std::future<Tensor> submit(
      const Tensor& input, Priority priority = Priority::kNormal,
      std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max());

  // Blocking convenience: submit + get.
  Tensor infer(const Tensor& input, Priority priority = Priority::kNormal);

  // Stop accepting requests, drain the queue, join the worker. Idempotent;
  // the destructor calls it.
  void shutdown();

  const QuantizedModelRunner& runner() const { return runner_; }
  const QuantizedModelPackage& package() const { return pkg_; }
  // Snapshot carries the session's resident packed-panel bytes (a static
  // property of the loaded model, summed over its primitives at load) and
  // the live queue-depth gauge sampled at call time.
  ServeStatsSnapshot stats() const {
    ServeStatsSnapshot s = stats_.snapshot();
    s.packed_weight_bytes = packed_weight_bytes_;
    s.queue_depth = queue_.depth();
    return s;
  }
  // Aggregate integer-datapath stats over every batched forward pass.
  IntGemmStats datapath_stats() const;

 private:
  std::unique_ptr<DynamicBatcher> make_batcher(bool warmup);
  void watchdog_loop();
  // Restart-budget exhausted (or shutdown): close the queue and fail every
  // still-pending request with UnavailableError.
  void fail_over_pending();

  QuantizedModelPackage pkg_;
  ServeConfig cfg_;
  QuantizedModelRunner runner_;
  ServeStats stats_;
  std::uint64_t packed_weight_bytes_ = 0;
  BlobCache cache_;
  RequestQueue queue_;
  mutable std::mutex gemm_stats_mu_;
  IntGemmStats gemm_stats_;
  std::atomic<std::uint64_t> next_id_{0};
  // Kept as members so the watchdog can build replacement batchers.
  DynamicBatcher::BatchFn batch_fn_;
  DynamicBatcher::ResultHook result_hook_;
  // Guards batcher_/zombies_/restarts_used_ against watchdog vs shutdown
  // races. The submit path never takes it (producers only touch queue_).
  std::mutex batcher_mu_;
  int restarts_used_ = 0;
  // Stalled workers the watchdog replaced but could not join: parked here
  // (still wedged in the forward pass) and reaped at shutdown.
  std::vector<std::unique_ptr<DynamicBatcher>> zombies_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::unique_ptr<DynamicBatcher> batcher_;
  std::thread watchdog_;  // last member: must stop before batcher_ dies
};

}  // namespace vsq
