// Dynamic batcher: a single worker thread that drains the RequestQueue in
// coalesced batches, stacks the rows into one [B, D] activation matrix,
// runs the session's batched integer forward pass, and scatters the
// output rows back to each request's promise. One batched forward
// amortizes activation staging, output allocation and per-call
// bookkeeping across its rows (each layer's IntLayerPrimitive resolves
// its kernels and prepacks its weight panels once at model load, so they
// cost nothing per batch OR per request).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/request_queue.h"
#include "serve/serve_stats.h"

namespace vsq {

struct BatcherConfig {
  int max_batch = 16;      // rows per forward pass
  int max_wait_us = 0;     // linger for stragglers once a batch opens
  bool warmup = true;      // run one max_batch forward before serving so
                           // the worker's ScratchArena is preallocated
  // Sequence serving (non-empty = sequence mode): requests are unpadded
  // token rows of varying length; each is assigned the smallest bucket
  // width >= its length (ascending; the last bucket must cover max_seq)
  // and a batch executes at the widest bucket among its members with
  // -1.0f suffix padding — a 16-token and a 128-token request share one
  // forward pass, and bucket occupancy lands in ServeStats. out_per_token
  // sizes the per-request output slice (row L gets L * out_per_token).
  std::vector<std::int64_t> seq_buckets;
  std::int64_t out_per_token = 0;
};

class DynamicBatcher {
 public:
  // Runs the full model on a [B, in] matrix, returns [B, out].
  using BatchFn = std::function<Tensor(const Tensor& batch)>;
  // Called on the worker thread for each request carrying a cache_key,
  // with that request's input and output rows.
  using ResultHook = std::function<void(const std::string& key, std::span<const float> input,
                                        std::span<const float> output)>;

  // Starts the worker immediately; with cfg.warmup set, blocks until the
  // worker's warmup forward pass completed so the first real request sees
  // steady-state latency. `queue`, `stats`, and the callbacks must
  // outlive the batcher. in_features is needed to assemble batches (and
  // to build the warmup input).
  DynamicBatcher(RequestQueue& queue, BatchFn fn, std::int64_t in_features, BatcherConfig cfg,
                 ServeStats& stats, ResultHook on_result = {});
  ~DynamicBatcher();  // closes the queue and joins (drains pending work)

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // Close the queue and join the worker after it drains. Idempotent.
  // A retired batcher (see retire()) skips the close — the replacement
  // still owns the shared queue.
  void stop();

  // --- Watchdog surface (InferenceSession health monitoring) ---------
  // The worker thread has exited — normally (queue closed and drained) or
  // abnormally (escaped exception, injected worker death). A dead worker
  // with an open queue is the watchdog's restart signal.
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  // The worker is inside the batch function right now. Combined with a
  // stale heartbeat this distinguishes "stalled in forward" from "idle
  // waiting for requests" (the heartbeat only updates around pop/forward).
  bool busy() const { return busy_.load(std::memory_order_acquire); }
  // Time since the worker last proved liveness (before blocking in
  // pop_batch and after every batch). Large + busy() -> stalled.
  std::chrono::microseconds heartbeat_age() const;
  // Detach this batcher from queue ownership: stop()/destruction will no
  // longer close the shared queue. Used when the watchdog replaces a
  // stalled worker it cannot join — the zombie is parked and reaped at
  // shutdown (join blocks until the stuck call returns, so a permanently
  // wedged forward holds shutdown; bounded stalls recover cleanly).
  void retire();
  // Join a dead worker WITHOUT closing the queue, so a replacement
  // batcher can keep serving the same queue. Only call when dead().
  void join_dead();

 private:
  void run();
  void run_loop();
  void beat();

  RequestQueue& queue_;
  BatchFn fn_;
  std::int64_t in_features_;
  BatcherConfig cfg_;
  ServeStats& stats_;
  ResultHook on_result_;
  std::mutex warm_mu_;
  std::condition_variable warm_cv_;
  bool warmed_ = false;
  std::atomic<bool> dead_{false};
  std::atomic<bool> busy_{false};
  std::atomic<bool> close_queue_on_stop_{true};
  std::atomic<std::int64_t> heartbeat_us_{0};  // steady_clock, us since epoch
  std::thread worker_;
};

}  // namespace vsq
