// ModelRegistry: the multi-model serving front door. Hosts N independently
// batched InferenceSessions — one per loaded QuantizedModelPackage (MLP
// and CNN programs alike) — routes requests by model name, aggregates
// per-model ServeStats, and supports hot load/unload while traffic is in
// flight: unload() drains the model's queue and joins its batcher before
// returning, so every accepted request still resolves, while clients that
// race the removal get a clean exception instead of a hang.
//
//   ModelRegistry reg;
//   reg.load("tiny", tiny_mlp_package(mac));
//   reg.load_file("cnn", "artifacts/tiny_conv_int.vsqa");
//   Tensor y = reg.infer("tiny", input_row);
//   reg.unload("cnn");            // drains, joins, removes
//   reg.print_stats(std::cout);   // one row per model + a TOTAL row
//
// Thread model: all methods are safe to call concurrently. Sessions are
// shared_ptr-owned; submit()/infer() pin the session for the duration of
// the call, so a concurrent unload never destroys a session mid-request —
// the unloader drains it first (InferenceSession::shutdown), and requests
// that arrive after the queue closed throw std::runtime_error.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/session.h"

namespace vsq {

// Per-model stats row returned by stats_all().
struct RegistryModelStats {
  std::string name;
  ServeStatsSnapshot serve;
  IntGemmStats datapath;  // all-zero unless the model collects datapath stats
};

class ModelRegistry {
 public:
  // `default_cfg` applies to loads that do not pass their own ServeConfig.
  explicit ModelRegistry(ServeConfig default_cfg = {});
  ~ModelRegistry();  // shuts down every session (drains + joins)

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Spin up a session (its own batcher thread) serving `pkg` under `name`.
  // Throws std::invalid_argument when the name is already serving or the
  // package has no runnable program. Reusing a name after unload() is the
  // hot-reload path and is fine.
  void load(const std::string& name, QuantizedModelPackage pkg);
  void load(const std::string& name, QuantizedModelPackage pkg, const ServeConfig& cfg);

  // Load from a .vsqa archive. Corrupt archives throw (Archive::load /
  // QuantizedModelPackage::load validate everything) without disturbing
  // the models already serving.
  void load_file(const std::string& name, const std::string& path);
  void load_file(const std::string& name, const std::string& path, const ServeConfig& cfg);

  // Remove `name` from routing, drain its queue, join its batcher. Every
  // request accepted before the drain still resolves. Returns false when
  // the name is not serving (nothing happens).
  bool unload(const std::string& name);

  // Rollback-safe hot reload: build a replacement session for `name`, swap
  // it into routing only once fully constructed, then drain + retire the
  // old one. On ANY failure before the swap (corrupt archive, validation
  // error, injected fault) the old model keeps serving untouched and the
  // exception propagates — there is never an unloaded gap, unlike the
  // unload-then-load idiom. A name not currently serving degrades to a
  // plain load.
  void reload(const std::string& name, QuantizedModelPackage pkg);
  void reload(const std::string& name, QuantizedModelPackage pkg, const ServeConfig& cfg);
  void reload_file(const std::string& name, const std::string& path);
  void reload_file(const std::string& name, const std::string& path, const ServeConfig& cfg);

  bool contains(const std::string& name) const;
  std::size_t size() const;
  std::vector<std::string> models() const;  // sorted names

  // Route one request to `name`'s session. Throws std::out_of_range when
  // the model is not loaded, std::runtime_error when it is shutting down,
  // std::invalid_argument on a wrong input shape.
  std::future<Tensor> submit(const std::string& name, const Tensor& input);
  Tensor infer(const std::string& name, const Tensor& input);

  // Pin a session for repeated use (e.g. a client loop that does not want
  // the name lookup per request). May outlive an unload; submitting to an
  // unloaded session throws. nullptr when the model is not loaded.
  std::shared_ptr<InferenceSession> session(const std::string& name) const;

  // Per-model stats, name-sorted, cumulative across hot reloads: when a
  // model is unloaded its final (post-drain) snapshot is retired and
  // merged into any later serving of the same name — counts, histograms
  // and wall time sum; latency percentiles cannot be merged from
  // snapshots, so they reflect the largest single serving window.
  // stats(name) throws std::out_of_range when the name never served.
  ServeStatsSnapshot stats(const std::string& name) const;
  std::vector<RegistryModelStats> stats_all() const;

  // Aligned table: one row per model plus a TOTAL row (request/batch/hit
  // counts summed, throughput summed; latency percentiles are per-model
  // quantities and cannot be merged from snapshots, so the TOTAL row
  // leaves them blank).
  void print_stats(std::ostream& os) const;

 private:
  std::shared_ptr<InferenceSession> find(const std::string& name) const;
  // Shared tail of unload()/reload(): drain the session outside the lock,
  // then publish its final snapshot into retired_.
  void drain_and_retire(const std::string& name,
                        const std::shared_ptr<InferenceSession>& victim);

  ServeConfig default_cfg_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<InferenceSession>> sessions_;
  // Sessions removed from routing but still draining (unload() in
  // flight): invisible to submit/contains, still visible to stats. Each
  // serving WINDOW (session) lives in exactly one of sessions_ /
  // draining_ / a retired_ summary at any lock-held instant, so stats
  // readers never double-count one — a NAME, however, may legitimately
  // appear in sessions_ and draining_ at once when a hot reload races an
  // unfinished drain.
  std::map<std::string, std::vector<std::shared_ptr<InferenceSession>>> draining_;
  // Final snapshots of unloaded sessions, merged per name (see stats()).
  std::map<std::string, ServeStatsSnapshot> retired_;
};

}  // namespace vsq
