#include "quant/amax.h"

#include <cmath>
#include <stdexcept>

namespace vsq {
namespace {
void check_2d(const Tensor& x) {
  if (x.shape().rank() != 2) throw std::invalid_argument("amax: expected a 2-D matrix");
}
}  // namespace

float amax_per_tensor(const Tensor& x2d) {
  check_2d(x2d);
  float m = 0.0f;
  for (const float v : x2d.span()) m = std::max(m, std::abs(v));
  return m;
}

std::vector<float> amax_per_row(const Tensor& x2d) {
  check_2d(x2d);
  const std::int64_t rows = x2d.shape()[0], cols = x2d.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  const float* p = x2d.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float m = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) m = std::max(m, std::abs(p[r * cols + c]));
    out[static_cast<std::size_t>(r)] = m;
  }
  return out;
}

std::vector<float> amax_per_vector(const Tensor& x2d, const VectorLayout& layout) {
  check_2d(x2d);
  if (x2d.shape()[1] != layout.cols) {
    throw std::invalid_argument("amax_per_vector: layout does not match matrix");
  }
  layout.validate();
  const std::int64_t rows = x2d.shape()[0], cols = layout.cols;
  const std::int64_t vpr = layout.vectors_per_row();
  std::vector<float> out(static_cast<std::size_t>(rows * vpr), 0.0f);
  const float* p = x2d.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t v = 0; v < vpr; ++v) {
      const auto [c0, c1] = layout.col_range(v);
      float m = 0.0f;
      for (std::int64_t c = c0; c < c1; ++c) m = std::max(m, std::abs(p[r * cols + c]));
      out[static_cast<std::size_t>(r * vpr + v)] = m;
    }
  }
  return out;
}

}  // namespace vsq
