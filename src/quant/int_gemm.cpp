#include "quant/int_gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "util/scratch.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define VSQ_INT_GEMM_X86 1
#include <immintrin.h>
#else
#define VSQ_INT_GEMM_X86 0
#endif

namespace vsq {

std::uint32_t round_scale_product(std::uint32_t p, int full_bits, int bits) {
  if (bits <= 0 || bits >= full_bits) return p;
  const int shift = full_bits - bits;
  const std::uint32_t half = 1u << (shift - 1);
  return ((p + half) >> shift) << shift;
}

namespace {

// Weight rows per packed panel: the microkernel produces PNR dot products
// per vector at once from a j-contiguous panel, so one pass over the
// activation row feeds PNR output columns.
constexpr int PNR = 8;

struct VecRange {
  std::int32_t c0;
  std::int32_t len;
};

// dp[v*PNR + j] = sum_c arow[c0_v + c] * wp[v-th block][c*PNR + j].
// Accumulation is int32: exact (no wrap) whenever
//   max|a| * max|w| * V <= INT32_MAX,
// which holds for every paper configuration (N <= 10 bits, V <= 64); the
// caller falls back to the int64 reference loop otherwise. The packed
// panel wp concatenates the vectors of the row in column order, each as
// len x PNR with output column j contiguous.
inline void int_panel_body(const std::int16_t* arow, const std::int16_t* wp, const VecRange* vr,
                           std::int64_t nvec, std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t len = vr[v].len;
    std::int32_t acc[PNR] = {};
    for (std::int32_t c = 0; c < len; ++c) {
      const std::int32_t av = ap[c];
      const std::int16_t* wc = wp + static_cast<std::int64_t>(c) * PNR;
      for (int j = 0; j < PNR; ++j) acc[j] += av * wc[j];
    }
    wp += static_cast<std::int64_t>(len) * PNR;
    std::int32_t* d = dp + v * PNR;
    for (int j = 0; j < PNR; ++j) d[j] = acc[j];
  }
}

void int_panel_generic(const std::int16_t* arow, const std::int16_t* wp, const VecRange* vr,
                       std::int64_t nvec, std::int32_t* dp) {
  int_panel_body(arow, wp, vr, nvec, dp);
}

#if VSQ_INT_GEMM_X86
// AVX2: 8 int32 lanes = one panel-width of dot products per instruction.
__attribute__((target("avx2"))) void int_panel_avx2(const std::int16_t* arow,
                                                    const std::int16_t* wp, const VecRange* vr,
                                                    std::int64_t nvec, std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t len = vr[v].len;
    __m256i acc = _mm256_setzero_si256();
    for (std::int32_t c = 0; c < len; ++c) {
      const __m256i av = _mm256_set1_epi32(ap[c]);
      const __m256i wv = _mm256_cvtepi16_epi32(
          _mm_load_si128(reinterpret_cast<const __m128i*>(wp + static_cast<std::int64_t>(c) * PNR)));
      acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(av, wv));
    }
    wp += static_cast<std::int64_t>(len) * PNR;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp + v * PNR), acc);
  }
}

// AVX2 madd variant for even vector lengths: the panel interleaves column
// PAIRS ([pair][j][2] int16), so one _mm256_madd_epi16 performs 16
// multiplies and the pairwise adds in a single instruction — 2x the MAC
// rate of the mullo path. Bit-exact: products of (<=10-bit)x(<=10-bit)
// values and their pairwise sums are exact in int32 (the caller already
// guarantees the whole V-length dot product fits int32), and integer
// addition reassociates freely.
__attribute__((target("avx2"))) void int_panel_avx2_madd(const std::int16_t* arow,
                                                         const std::int16_t* wp,
                                                         const VecRange* vr, std::int64_t nvec,
                                                         std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t pairs = vr[v].len / 2;
    __m256i acc = _mm256_setzero_si256();
    for (std::int32_t p = 0; p < pairs; ++p) {
      std::int32_t apair;
      std::memcpy(&apair, ap + 2 * p, sizeof(apair));  // (a[2p], a[2p+1])
      const __m256i av = _mm256_set1_epi32(apair);
      const __m256i wv = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(wp + static_cast<std::int64_t>(p) * 2 * PNR));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, av));
    }
    wp += static_cast<std::int64_t>(pairs) * 2 * PNR;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp + v * PNR), acc);
  }
}
#endif  // VSQ_INT_GEMM_X86

using IntPanelFn = void (*)(const std::int16_t*, const std::int16_t*, const VecRange*,
                            std::int64_t, std::int32_t*);

IntPanelFn pick_int_panel() {
#if VSQ_INT_GEMM_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return int_panel_avx2;
#endif
  return int_panel_generic;
}

const IntPanelFn g_int_panel = pick_int_panel();

// madd variant usable only when every vector length is even (the pair
// interleave would otherwise read one activation past the row).
IntPanelFn pick_int_panel_madd() {
#if VSQ_INT_GEMM_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return int_panel_avx2_madd;
#endif
  return nullptr;
}

const IntPanelFn g_int_panel_madd = pick_int_panel_madd();

// Reference loop kept for operand widths whose per-vector dot product
// could exceed int32 (never hit by paper configs, but bit-exactness must
// not depend on operand range). Identical arithmetic, int64 throughout.
void int_gemm_wide(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                   int scale_product_bits, int full_bits, float* dst, std::int64_t rows,
                   std::int64_t k_out, IntGemmStats* stats);

}  // namespace

Tensor int_gemm(const QuantizedMatrix& act, const QuantizedMatrix& wgt, int scale_product_bits,
                IntGemmStats* stats) {
  if (act.cols() != wgt.cols()) throw std::invalid_argument("int_gemm: reduction dims differ");
  if (act.layout.vector_size != wgt.layout.vector_size ||
      act.layout.block_len() != wgt.layout.block_len()) {
    throw std::invalid_argument("int_gemm: operand vector layouts differ");
  }
  const std::int64_t rows = act.rows, k_out = wgt.rows, cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();

  // Width of the full scale product in bits, for MSB-keeping rounding.
  int full_bits = 0;
  if (act.two_level) full_bits += act.two_level->scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;

  Tensor out(Shape{rows, k_out});
  float* dst = out.data();
  if (rows == 0 || k_out == 0) return out;

  // int32 per-vector accumulation is exact iff the widest possible dot
  // product fits (2N + log2 V bits); otherwise take the int64 path.
  std::int64_t max_len = 0;
  for (std::int64_t v = 0; v < vpr; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    max_len = std::max(max_len, c1 - c0);
  }
  const std::int64_t amax_q = std::max(std::abs(act.fmt.qmin()), act.fmt.qmax());
  const std::int64_t wmax_q = std::max(std::abs(wgt.fmt.qmin()), wgt.fmt.qmax());
  if (amax_q * wmax_q * std::max<std::int64_t>(max_len, 1) > INT32_MAX) {
    IntGemmStats wide_stats;
    int_gemm_wide(act, wgt, scale_product_bits, full_bits, dst, rows, k_out,
                  stats ? &wide_stats : nullptr);
    if (stats) {
      stats->vector_ops += wide_stats.vector_ops;
      stats->zero_scale_products += wide_stats.zero_scale_products;
      stats->zero_dot_products += wide_stats.zero_dot_products;
      stats->max_abs_psum = std::max(stats->max_abs_psum, wide_stats.max_abs_psum);
    }
    return out;
  }

  ScratchArena& arena = ScratchArena::thread_local_arena();
  ScratchRegion region(arena);

  // Vector column ranges, precomputed once per call.
  auto* vr = arena.alloc_n<VecRange>(static_cast<std::size_t>(vpr));
  for (std::int64_t v = 0; v < vpr; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    vr[v] = VecRange{static_cast<std::int32_t>(c0), static_cast<std::int32_t>(c1 - c0)};
  }

  // Pack the weight matrix into PNR-row panels once; every activation row
  // then streams the panel with unit stride instead of re-striding wgt.q
  // per output element. Two layouts, chosen with the kernel:
  //  - plain: [c][j] (j = output column within the panel)
  //  - madd (even vector lengths only): [pair][j][2], column pairs
  //    interleaved so _mm256_madd_epi16 consumes them directly
  // Scales are [v][j]; everything is zero-padded past k_out so the
  // kernels never branch on panel width.
  bool all_even = true;
  for (std::int64_t v = 0; v < vpr; ++v) all_even = all_even && vr[v].len % 2 == 0;
  const bool use_madd = all_even && g_int_panel_madd != nullptr;
  const IntPanelFn panel_fn = use_madd ? g_int_panel_madd : g_int_panel;

  const std::int64_t n_panels = (k_out + PNR - 1) / PNR;
  auto* pw = arena.alloc_n<std::int16_t>(static_cast<std::size_t>(n_panels * cols * PNR));
  auto* psq = arena.alloc_n<std::uint32_t>(static_cast<std::size_t>(n_panels * vpr * PNR));
  for (std::int64_t kp = 0; kp < n_panels; ++kp) {
    const std::int64_t k0 = kp * PNR;
    const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out - k0));
    std::int16_t* vd = pw + kp * cols * PNR;
    if (use_madd) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        const std::int64_t c0 = vr[v].c0, pairs = vr[v].len / 2;
        for (std::int64_t p = 0; p < pairs; ++p) {
          for (int j = 0; j < PNR; ++j) {
            for (int h = 0; h < 2; ++h) {
              vd[p * 2 * PNR + j * 2 + h] =
                  j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols + c0 + 2 * p + h)] : 0;
            }
          }
        }
        vd += pairs * 2 * PNR;
      }
    } else {
      for (std::int64_t c = 0; c < cols; ++c) {
        for (int j = 0; j < PNR; ++j) {
          vd[c * PNR + j] = j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols + c)] : 0;
        }
      }
    }
    std::uint32_t* sd = psq + kp * vpr * PNR;
    for (std::int64_t v = 0; v < vpr; ++v) {
      for (int j = 0; j < PNR; ++j) {
        sd[v * PNR + j] = j < nr ? wgt.int_scale(k0 + j, v) : 0;
      }
    }
  }

  // Per-thread stat accumulation to avoid contention.
  std::atomic<std::uint64_t> vec_ops{0}, zero_sp{0}, zero_dp{0};
  std::atomic<std::int64_t> max_psum{0};

  // Grain: keep at least ~16k multiply-adds per chunk so small GEMMs do
  // not pay per-chunk dispatch.
  const std::size_t grain =
      static_cast<std::size_t>(std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, k_out * cols)));

  // The row loop is instantiated twice: with and without the datapath
  // gating counters. The counters cost a branch and an increment per
  // scale product — measurable on the serving hot path, where callers
  // pass stats == nullptr. Arithmetic (and therefore output) is identical
  // in both instantiations.
  const auto row_loop = [&]<bool kStats>(std::size_t rb, std::size_t re,
                                         std::bool_constant<kStats>) {
    ScratchArena& ta = ScratchArena::thread_local_arena();
    ScratchRegion tr(ta);
    auto* dp = ta.alloc_n<std::int32_t>(static_cast<std::size_t>(vpr * PNR));
    std::uint64_t t_vec = 0, t_zsp = 0, t_zdp = 0;
    std::int64_t t_max = 0;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      const std::int16_t* arow = act.q.data() + ri * cols;
      const std::uint16_t* asq =
          act.two_level ? act.two_level->sq.data() + ri * vpr : nullptr;
      const float aout = act.outer_scale(ri);
      float* drow = dst + ri * k_out;
      for (std::int64_t kp = 0; kp < n_panels; ++kp) {
        const std::int64_t k0 = kp * PNR;
        const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out - k0));
        panel_fn(arow, pw + kp * cols * PNR, vr, vpr, dp);
        const std::uint32_t* wsq = psq + kp * vpr * PNR;
        std::int64_t acc[PNR] = {};
        for (std::int64_t v = 0; v < vpr; ++v) {
          const std::uint32_t as_v = asq ? asq[v] : 1;
          const std::int32_t* dv = dp + v * PNR;
          for (int j = 0; j < nr; ++j) {
            const std::uint32_t sp =
                round_scale_product(as_v * wsq[v * PNR + j], full_bits, scale_product_bits);
            acc[j] += static_cast<std::int64_t>(dv[j]) * sp;
            if constexpr (kStats) {
              ++t_vec;
              if (sp == 0) {
                ++t_zsp;
              } else if (dv[j] == 0) {
                ++t_zdp;
              }
            }
          }
        }
        for (int j = 0; j < nr; ++j) {
          if constexpr (kStats) t_max = std::max(t_max, std::abs(acc[j]));
          drow[k0 + j] =
              static_cast<float>(static_cast<double>(acc[j]) *
                                 static_cast<double>(wgt.outer_scale(k0 + j)) * aout);
        }
      }
    }
    if constexpr (kStats) {
      vec_ops.fetch_add(t_vec, std::memory_order_relaxed);
      zero_sp.fetch_add(t_zsp, std::memory_order_relaxed);
      zero_dp.fetch_add(t_zdp, std::memory_order_relaxed);
      std::int64_t prev = max_psum.load(std::memory_order_relaxed);
      while (prev < t_max && !max_psum.compare_exchange_weak(prev, t_max)) {
      }
    }
  };

  if (stats) {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<true>{}); },
        grain);
    stats->vector_ops += vec_ops.load();
    stats->zero_scale_products += zero_sp.load();
    stats->zero_dot_products += zero_dp.load();
    stats->max_abs_psum = std::max(stats->max_abs_psum, max_psum.load());
  } else {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<false>{}); },
        grain);
  }
  return out;
}

namespace {

void int_gemm_wide(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                   int scale_product_bits, int full_bits, float* dst, std::int64_t rows,
                   std::int64_t k_out, IntGemmStats* stats) {
  const std::int64_t cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();

  std::atomic<std::uint64_t> vec_ops{0}, zero_sp{0}, zero_dp{0};
  std::atomic<std::int64_t> max_psum{0};

  parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
    std::uint64_t t_vec = 0, t_zsp = 0, t_zdp = 0;
    std::int64_t t_max = 0;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      const std::int16_t* arow = act.q.data() + ri * cols;
      for (std::int64_t k = 0; k < k_out; ++k) {
        const std::int16_t* wrow = wgt.q.data() + k * cols;
        std::int64_t acc = 0;  // accumulation collector (2N+log2V+2M wide)
        for (std::int64_t v = 0; v < vpr; ++v) {
          const auto [c0, c1] = layout.col_range(v);
          std::int64_t dp = 0;  // 2N+log2V-wide dot product
          for (std::int64_t c = c0; c < c1; ++c) {
            dp += static_cast<std::int64_t>(arow[c]) * wrow[c];
          }
          std::uint32_t sp = act.int_scale(ri, v) * wgt.int_scale(k, v);
          sp = round_scale_product(sp, full_bits, scale_product_bits);
          acc += dp * static_cast<std::int64_t>(sp);
          ++t_vec;
          if (sp == 0) {
            ++t_zsp;
          } else if (dp == 0) {
            ++t_zdp;
          }
        }
        t_max = std::max(t_max, std::abs(acc));
        dst[ri * k_out + k] =
            static_cast<float>(static_cast<double>(acc) *
                               static_cast<double>(wgt.outer_scale(k)) * act.outer_scale(ri));
      }
    }
    vec_ops.fetch_add(t_vec, std::memory_order_relaxed);
    zero_sp.fetch_add(t_zsp, std::memory_order_relaxed);
    zero_dp.fetch_add(t_zdp, std::memory_order_relaxed);
    std::int64_t prev = max_psum.load(std::memory_order_relaxed);
    while (prev < t_max && !max_psum.compare_exchange_weak(prev, t_max)) {
    }
  });

  if (stats) {
    stats->vector_ops += vec_ops.load();
    stats->zero_scale_products += zero_sp.load();
    stats->zero_dot_products += zero_dp.load();
    stats->max_abs_psum = std::max(stats->max_abs_psum, max_psum.load());
  }
}

}  // namespace

}  // namespace vsq
