#include "quant/int_gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "quant/int_kernel.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace vsq {

std::uint32_t round_scale_product(std::uint32_t p, int full_bits, int bits) {
  return kernels::round_scale_product(p, full_bits, bits);
}

namespace {

// Reference loop kept for operand widths whose per-vector dot product
// could exceed int32 (never hit by paper configs, but bit-exactness must
// not depend on operand range). Identical arithmetic, int64 throughout.
void int_gemm_wide(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                   int scale_product_bits, int full_bits, float* dst, std::int64_t rows,
                   std::int64_t k_out, IntGemmStats* stats);

}  // namespace

Tensor int_gemm(const QuantizedMatrix& act, const QuantizedMatrix& wgt, int scale_product_bits,
                IntGemmStats* stats) {
  return detail::int_gemm_packed(act, wgt, scale_product_bits, stats, nullptr);
}

namespace detail {

Tensor int_gemm_packed(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                       int scale_product_bits, IntGemmStats* stats,
                       const IntWeightPanels* prepacked) {
  if (act.cols() != wgt.cols()) throw std::invalid_argument("int_gemm: reduction dims differ");
  if (act.layout.vector_size != wgt.layout.vector_size ||
      act.layout.block_len() != wgt.layout.block_len()) {
    throw std::invalid_argument("int_gemm: operand vector layouts differ");
  }
  const std::int64_t rows = act.rows, k_out = wgt.rows, cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();

  // Width of the full scale product in bits, for MSB-keeping rounding.
  int full_bits = 0;
  if (act.two_level) full_bits += act.two_level->scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;

  Tensor out(Shape{rows, k_out});
  float* dst = out.data();
  if (rows == 0 || k_out == 0) return out;

  // int32 per-vector accumulation is exact iff the widest possible dot
  // product fits (2N + log2 V bits); otherwise take the int64 path
  // (checked before packing so the fallback never pays for a pack).
  if (!int32_dot_exact(act.fmt, wgt.fmt, layout)) {
    int_gemm_wide(act, wgt, scale_product_bits, full_bits, dst, rows, k_out, stats);
    return out;
  }

  // Prepacked panels (IntLayerPrimitive) skip the per-call pack; otherwise
  // pack into this call's arena region as before. A prepacked set must
  // have been built from this exact wgt operand (the panels keep scale
  // pointers into it) under act's vector geometry — the boundary fields,
  // not just the vector count, or two layouts with equal vpr but shifted
  // vector edges would slip through and produce silently wrong scales —
  // and act's element format, which parameterized kernel resolution.
  ScratchArena& arena = ScratchArena::thread_local_arena();
  ScratchRegion region(arena);
  std::optional<IntWeightPanels> local_panels;
  if (prepacked != nullptr && !prepacked->matches(wgt, layout, act.fmt)) {
    throw std::invalid_argument("int_gemm: prepacked panels do not match the operands");
  }
  if (prepacked == nullptr) {
    local_panels.emplace(wgt, layout, IntActAttrs::of(act), arena);
    if (stats) {
      ++stats->panels_packed;
      if (local_panels->materialized_sub_byte()) ++stats->panels_unpacked_materialized;
    }
  }
  const IntWeightPanels& panels = prepacked ? *prepacked : *local_panels;

  // Per-chunk stat accumulation merged under a (cold) mutex.
  std::mutex stats_mu;

  // Grain: keep at least ~16k multiply-adds per chunk so small GEMMs do
  // not pay per-chunk dispatch.
  const std::size_t grain =
      static_cast<std::size_t>(std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, k_out * cols)));

  // The row loop is instantiated twice: with and without the datapath
  // gating counters. The counters cost a branch and an increment per
  // scale product — measurable on the serving hot path, where callers
  // pass stats == nullptr. Arithmetic (and therefore output) is identical
  // in both instantiations.
  const auto row_loop = [&]<bool kStats>(std::size_t rb, std::size_t re,
                                         std::bool_constant<kStats>) {
    ScratchArena& ta = ScratchArena::thread_local_arena();
    ScratchRegion tr(ta);
    auto* dp = ta.alloc_n<std::int32_t>(static_cast<std::size_t>(vpr * kIntPanelCols));
    std::uint8_t* u8row =
        panels.needs_u8_row()
            ? ta.alloc_n<std::uint8_t>(static_cast<std::size_t>(panels.u8_row_len()))
            : nullptr;
    IntRowStats t;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      const std::int16_t* arow = act.q.data() + ri * cols;
      const std::uint16_t* asq =
          act.two_level ? act.two_level->sq.data() + ri * vpr : nullptr;
      panels.run_row<kStats>(arow, asq, act.outer_scale(ri), dst + ri * k_out, full_bits,
                             scale_product_bits, dp, u8row, t);
    }
    if constexpr (kStats) {
      std::lock_guard lock(stats_mu);
      t.merge_into(*stats);
    }
  };

  if (stats) {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<true>{}); },
        grain);
  } else {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<false>{}); },
        grain);
  }
  return out;
}

}  // namespace detail

namespace {

void int_gemm_wide(const QuantizedMatrix& act, const QuantizedMatrix& wgt,
                   int scale_product_bits, int full_bits, float* dst, std::int64_t rows,
                   std::int64_t k_out, IntGemmStats* stats) {
  const std::int64_t cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();

  std::atomic<std::uint64_t> vec_ops{0}, zero_sp{0}, zero_dp{0};
  std::atomic<std::int64_t> max_psum{0};

  parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
    std::uint64_t t_vec = 0, t_zsp = 0, t_zdp = 0;
    std::int64_t t_max = 0;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      const std::int16_t* arow = act.q.data() + ri * cols;
      for (std::int64_t k = 0; k < k_out; ++k) {
        const std::int16_t* wrow = wgt.q.data() + k * cols;
        std::int64_t acc = 0;  // accumulation collector (2N+log2V+2M wide)
        for (std::int64_t v = 0; v < vpr; ++v) {
          const auto [c0, c1] = layout.col_range(v);
          std::int64_t dp = 0;  // 2N+log2V-wide dot product
          for (std::int64_t c = c0; c < c1; ++c) {
            dp += static_cast<std::int64_t>(arow[c]) * wrow[c];
          }
          std::uint32_t sp = act.int_scale(ri, v) * wgt.int_scale(k, v);
          sp = round_scale_product(sp, full_bits, scale_product_bits);
          acc += dp * static_cast<std::int64_t>(sp);
          ++t_vec;
          if (sp == 0) {
            ++t_zsp;
          } else if (dp == 0) {
            ++t_zdp;
          }
        }
        t_max = std::max(t_max, std::abs(acc));
        dst[ri * k_out + k] =
            static_cast<float>(static_cast<double>(acc) *
                               static_cast<double>(wgt.outer_scale(k)) * act.outer_scale(ri));
      }
    }
    vec_ops.fetch_add(t_vec, std::memory_order_relaxed);
    zero_sp.fetch_add(t_zsp, std::memory_order_relaxed);
    zero_dp.fetch_add(t_zdp, std::memory_order_relaxed);
    std::int64_t prev = max_psum.load(std::memory_order_relaxed);
    while (prev < t_max && !max_psum.compare_exchange_weak(prev, t_max)) {
    }
  });

  if (stats) {
    stats->vector_ops += vec_ops.load();
    stats->zero_scale_products += zero_sp.load();
    stats->zero_dot_products += zero_dp.load();
    stats->max_abs_psum = std::max(stats->max_abs_psum, max_psum.load());
  }
}

}  // namespace

}  // namespace vsq
