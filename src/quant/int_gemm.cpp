#include "quant/int_gemm.h"

#include <atomic>
#include <stdexcept>

#include "util/thread_pool.h"

namespace vsq {

std::uint32_t round_scale_product(std::uint32_t p, int full_bits, int bits) {
  if (bits <= 0 || bits >= full_bits) return p;
  const int shift = full_bits - bits;
  const std::uint32_t half = 1u << (shift - 1);
  return ((p + half) >> shift) << shift;
}

Tensor int_gemm(const QuantizedMatrix& act, const QuantizedMatrix& wgt, int scale_product_bits,
                IntGemmStats* stats) {
  if (act.cols() != wgt.cols()) throw std::invalid_argument("int_gemm: reduction dims differ");
  if (act.layout.vector_size != wgt.layout.vector_size ||
      act.layout.block_len() != wgt.layout.block_len()) {
    throw std::invalid_argument("int_gemm: operand vector layouts differ");
  }
  const std::int64_t rows = act.rows, k_out = wgt.rows, cols = act.cols();
  const VectorLayout& layout = act.layout;
  const std::int64_t vpr = layout.vectors_per_row();

  // Width of the full scale product in bits, for MSB-keeping rounding.
  int full_bits = 0;
  if (act.two_level) full_bits += act.two_level->scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;

  Tensor out(Shape{rows, k_out});
  float* dst = out.data();

  // Per-thread stat accumulation to avoid contention.
  std::atomic<std::uint64_t> vec_ops{0}, zero_sp{0}, zero_dp{0};
  std::atomic<std::int64_t> max_psum{0};

  parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
    std::uint64_t t_vec = 0, t_zsp = 0, t_zdp = 0;
    std::int64_t t_max = 0;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      const std::int16_t* arow = act.q.data() + ri * cols;
      for (std::int64_t k = 0; k < k_out; ++k) {
        const std::int16_t* wrow = wgt.q.data() + k * cols;
        std::int64_t acc = 0;  // accumulation collector (2N+log2V+2M wide)
        for (std::int64_t v = 0; v < vpr; ++v) {
          const auto [c0, c1] = layout.col_range(v);
          std::int64_t dp = 0;  // 2N+log2V-wide dot product
          for (std::int64_t c = c0; c < c1; ++c) {
            dp += static_cast<std::int64_t>(arow[c]) * wrow[c];
          }
          std::uint32_t sp = act.int_scale(ri, v) * wgt.int_scale(k, v);
          sp = round_scale_product(sp, full_bits, scale_product_bits);
          acc += dp * static_cast<std::int64_t>(sp);
          ++t_vec;
          if (sp == 0) {
            ++t_zsp;
          } else if (dp == 0) {
            ++t_zdp;
          }
        }
        t_max = std::max(t_max, std::abs(acc));
        dst[ri * k_out + k] =
            static_cast<float>(static_cast<double>(acc) *
                               static_cast<double>(wgt.outer_scale(k)) * act.outer_scale(ri));
      }
    }
    vec_ops.fetch_add(t_vec, std::memory_order_relaxed);
    zero_sp.fetch_add(t_zsp, std::memory_order_relaxed);
    zero_dp.fetch_add(t_zdp, std::memory_order_relaxed);
    std::int64_t prev = max_psum.load(std::memory_order_relaxed);
    while (prev < t_max && !max_psum.compare_exchange_weak(prev, t_max)) {
    }
  });

  if (stats) {
    stats->vector_ops += vec_ops.load();
    stats->zero_scale_products += zero_sp.load();
    stats->zero_dot_products += zero_dp.load();
    stats->max_abs_psum = std::max(stats->max_abs_psum, max_psum.load());
  }
  return out;
}

}  // namespace vsq
