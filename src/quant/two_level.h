// Two-level scaling (paper Sec. 4.4, Eq. 7e-7j): each per-vector scale is
// factored into an M-bit unsigned integer per-vector component sq and a
// floating-point coarse component gamma shared across a row (per-channel,
// weights) or the whole tensor (per-layer, activations).
//
//   gamma(k)   = max_i s(k,i) / (2^M - 1)                  (7e-7f)
//   sq(k,i)    = round(s(k,i) / gamma(k))                  (7g)
//   s2(k,i)    = sq(k,i) * gamma(k)                        (7h)
//
// Hardware stores sq alongside each vector and keeps gamma in the
// post-processing unit, so all vector-wise math stays integer.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/scale.h"

namespace vsq {

// Which axis the floating-point coarse scale gamma is shared across.
enum class CoarseAxis {
  kPerRow,     // per output channel (weights)
  kPerTensor,  // per layer (activations)
};

struct TwoLevelScales {
  QuantFormat scale_fmt{6, false};  // M-bit unsigned integer scales
  CoarseAxis coarse_axis = CoarseAxis::kPerRow;
  VectorLayout layout;
  std::int64_t rows = 0;

  std::vector<std::uint16_t> sq;  // rows * vectors_per_row, integer scales
  std::vector<float> gamma;       // rows (kPerRow) or 1 (kPerTensor)

  std::int64_t vectors_per_row() const { return layout.vectors_per_row(); }
  float gamma_of_row(std::int64_t r) const {
    return coarse_axis == CoarseAxis::kPerRow ? gamma[static_cast<std::size_t>(r)] : gamma[0];
  }
  // Effective (simulated) per-vector scale sq * gamma (Eq. 7h).
  float effective_scale(std::int64_t r, std::int64_t v) const {
    return static_cast<float>(sq[static_cast<std::size_t>(r * vectors_per_row() + v)]) *
           gamma_of_row(r);
  }
  // Expand to a plain per-vector ScaleSet (for fake quantization, Eq. 7i).
  ScaleSet to_scale_set() const;
};

// Eq. 7e-7h: factor single-level per-vector scales into (sq, gamma).
// `fp_scales` must be per-vector.
TwoLevelScales two_level_from_scales(const ScaleSet& fp_scales, const QuantFormat& scale_fmt,
                                     CoarseAxis coarse_axis);

// Alternative factorization order discussed at the end of Sec. 4.4
// ("compute the per-channel scale factor first, then back-calculate the
// per-vector scale factor"): gamma is derived from the coarse amax of the
// matrix, and sq is chosen per vector to cover that vector's range
// (ceiling, so no extra clipping is introduced). Explored in
// bench/ablation_two_level_order.
TwoLevelScales two_level_channel_first(const Tensor& x2d, const QuantFormat& fmt,
                                       const QuantFormat& scale_fmt, const VectorLayout& layout,
                                       CoarseAxis coarse_axis);

}  // namespace vsq
