#include "quant/calibrator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace vsq {
namespace {

// KL(P || Q) over raw (unnormalized) distributions; both are normalized
// internally. Bins where p == 0 contribute nothing; p > 0 with q == 0 is
// penalized via a small epsilon (matches the TensorRT reference behaviour
// of smoothing empty quantized bins).
double kl_divergence(const std::vector<double>& p, const std::vector<double>& q) {
  double psum = 0.0, qsum = 0.0;
  for (const double v : p) psum += v;
  for (const double v : q) qsum += v;
  if (psum <= 0.0 || qsum <= 0.0) return std::numeric_limits<double>::infinity();
  constexpr double kEps = 1e-12;
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / psum;
    if (pi <= 0.0) continue;
    const double qi = std::max(q[i] / qsum, kEps);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace

double calibrate_max(const Histogram& hist) { return hist.max_value(); }

double calibrate_percentile(const Histogram& hist, double percentile) {
  if (hist.total_count() == 0) return 0.0;
  const double target = std::clamp(percentile, 0.0, 100.0) / 100.0 *
                        static_cast<double>(hist.total_count());
  std::uint64_t cum = 0;
  const auto& counts = hist.counts();
  for (int b = 0; b < hist.num_bins(); ++b) {
    cum += counts[static_cast<std::size_t>(b)];
    if (static_cast<double>(cum) >= target) {
      // Upper edge of the covering bin, but never beyond the true max.
      return std::min((b + 1) * hist.bin_width(), hist.max_value());
    }
  }
  return hist.max_value();
}

double calibrate_entropy(const Histogram& hist, const QuantFormat& fmt) {
  if (hist.total_count() == 0) return 0.0;
  const auto& counts = hist.counts();
  const int nbins = hist.num_bins();
  // Number of distinct magnitude levels available after quantization.
  const int levels = static_cast<int>(std::min<std::int64_t>(fmt.qmax(), nbins / 2));
  if (levels < 1) return hist.max_value();

  // Find the last non-empty bin; candidates only need to go that far.
  // Start the clip-candidate search at 1/16 of the histogram (as the
  // TensorRT reference does) so sparse histograms cannot collapse to a
  // pathologically small clip range.
  int last_nonempty = 0;
  for (int b = 0; b < nbins; ++b) {
    if (counts[static_cast<std::size_t>(b)] > 0) last_nonempty = b;
  }
  const int start = std::max(levels, nbins / 16);
  if (start > last_nonempty) return hist.max_value();

  double best_kl = std::numeric_limits<double>::infinity();
  int best_i = last_nonempty + 1;
  for (int i = start; i <= last_nonempty + 1; ++i) {
    // Reference distribution: first i bins, with the tail mass folded into
    // the clip bin (values beyond alpha clip to the top level).
    std::vector<double> p(counts.begin(), counts.begin() + i);
    double outlier_mass = 0.0;
    for (int b = i; b < nbins; ++b) outlier_mass += static_cast<double>(counts[b]);
    p.back() += outlier_mass;

    // Quantized distribution: merge i bins into `levels` groups, then
    // re-expand each group's average over its non-empty member bins.
    std::vector<double> q(static_cast<std::size_t>(i), 0.0);
    const double group_width = static_cast<double>(i) / levels;
    for (int g = 0; g < levels; ++g) {
      const int b0 = static_cast<int>(g * group_width);
      const int b1 = std::max(b0 + 1, static_cast<int>((g + 1) * group_width));
      double mass = 0.0;
      int nonempty = 0;
      for (int b = b0; b < b1 && b < i; ++b) {
        mass += p[static_cast<std::size_t>(b)];
        if (counts[static_cast<std::size_t>(b)] > 0 || b == i - 1) ++nonempty;
      }
      if (nonempty == 0) continue;
      const double avg = mass / nonempty;
      for (int b = b0; b < b1 && b < i; ++b) {
        if (counts[static_cast<std::size_t>(b)] > 0 || b == i - 1) {
          q[static_cast<std::size_t>(b)] = avg;
        }
      }
    }
    const double kl = kl_divergence(p, q);
    if (kl < best_kl) {
      best_kl = kl;
      best_i = i;
    }
  }
  return std::min(best_i * hist.bin_width(), hist.max_value());
}

double calibrate_mse(const Histogram& hist, const QuantFormat& fmt) {
  if (hist.total_count() == 0) return 0.0;
  const auto& counts = hist.counts();
  const int nbins = hist.num_bins();
  const double qmax = static_cast<double>(fmt.qmax());
  const double full = hist.max_value();
  if (full <= 0.0) return 0.0;

  // Sweep candidate clip points (fractions of the max) and pick the one
  // minimizing expected squared error estimated at bin centers:
  //   inside the clip range -> uniform rounding noise  s^2 / 12
  //   beyond the clip range -> (|x| - alpha)^2 clipping error.
  double best_alpha = full;
  double best_err = std::numeric_limits<double>::infinity();
  constexpr int kCandidates = 128;
  for (int c = 1; c <= kCandidates; ++c) {
    const double alpha = full * c / kCandidates;
    const double s = alpha / qmax;
    const double round_err = s * s / 12.0;
    double err = 0.0;
    for (int b = 0; b < nbins; ++b) {
      const auto n = counts[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      const double x = hist.bin_center(b);
      if (x <= alpha) {
        err += static_cast<double>(n) * round_err;
      } else {
        const double d = x - alpha;
        err += static_cast<double>(n) * d * d;
      }
    }
    if (err < best_err) {
      best_err = err;
      best_alpha = alpha;
    }
  }
  return best_alpha;
}

double calibrate_amax(const Histogram& hist, const CalibSpec& calib, const QuantFormat& fmt) {
  switch (calib.method) {
    case CalibMethod::kMax: return calibrate_max(hist);
    case CalibMethod::kPercentile: return calibrate_percentile(hist, calib.percentile);
    case CalibMethod::kEntropy: return calibrate_entropy(hist, fmt);
    case CalibMethod::kMse: return calibrate_mse(hist, fmt);
  }
  return calibrate_max(hist);
}

}  // namespace vsq
