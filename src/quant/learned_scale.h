// Learned per-vector scale factors — the extension the paper's conclusion
// names as future work ("we will extend QAT to explicitly learn per-vector
// scale factors").
//
// LSQ-style straight-through gradients (Esser et al., "Learned Step Size
// Quantization"): with q = clip(round(x/s), qmin, qmax) and xq = q * s,
//   d xq / d s = q - x/s            if x/s is inside [qmin, qmax]
//              = qmin or qmax       if clipped
//   d xq / d x = 1 inside the clip range, 0 outside (STE)
// Scales are parameterized per vector of the weight matrix and optimized
// by gradient descent against a reconstruction or task loss. The
// ablation bench (bench/ablation_learned_scales) shows learned scales
// recover error beyond max-calibrated scales at 3-4 bits.
#pragma once

#include "quant/scale.h"

namespace vsq {

class LearnedScaleQuantizer {
 public:
  // Initializes scales with the max-calibrated per-vector values (Eq. 7a-b)
  // — the standard LSQ initialization.
  LearnedScaleQuantizer(const Tensor& w2d, const QuantFormat& fmt, const VectorLayout& layout);

  // Fake-quantize with the current scales.
  Tensor forward(const Tensor& w2d) const;
  // Gradients of a loss wrt scales and wrt the input, given dL/d(xq).
  struct Grads {
    std::vector<float> scale_grad;  // per vector
    Tensor input_grad;              // STE with clip mask
  };
  Grads backward(const Tensor& w2d, const Tensor& grad_out) const;

  // One SGD step on the scales (clamped positive).
  void step(const std::vector<float>& scale_grad, float lr);

  // Optimize scales to minimize ||W - Q(W)||^2 directly; returns final MSE.
  double fit_reconstruction(const Tensor& w2d, int steps, float lr);

  const ScaleSet& scales() const { return scales_; }

 private:
  QuantFormat fmt_;
  ScaleSet scales_;
};

}  // namespace vsq
