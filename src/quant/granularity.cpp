#include "quant/granularity.h"

#include <sstream>
#include <stdexcept>

namespace vsq {

void VectorLayout::validate() const {
  if (cols <= 0) throw std::invalid_argument("VectorLayout: cols must be positive");
  if (vector_size <= 0) throw std::invalid_argument("VectorLayout: V must be positive");
  if (block < 0 || (block > 0 && cols % block != 0)) {
    throw std::invalid_argument("VectorLayout: channel block must divide cols");
  }
}

std::string granularity_name(Granularity g) {
  switch (g) {
    case Granularity::kPerTensor: return "per-tensor";
    case Granularity::kPerRow: return "per-row";
    case Granularity::kPerVector: return "per-vector";
  }
  return "?";
}

std::string CalibSpec::str() const {
  switch (method) {
    case CalibMethod::kMax: return "max";
    case CalibMethod::kPercentile: {
      std::ostringstream os;
      os << percentile << "%";
      return os.str();
    }
    case CalibMethod::kEntropy: return "entropy";
    case CalibMethod::kMse: return "mse";
  }
  return "?";
}

std::string QuantSpec::str() const {
  if (!enabled) return "fp32";
  std::ostringstream os;
  os << fmt.str() << "/" << granularity_name(granularity);
  if (granularity == Granularity::kPerVector) {
    os << "(V=" << vector_size << ",";
    switch (scale_dtype) {
      case ScaleDtype::kFp32: os << "fp32"; break;
      case ScaleDtype::kFp16: os << "fp16"; break;
      case ScaleDtype::kTwoLevelInt: os << "int" << scale_fmt.bits; break;
    }
    os << ")";
  }
  os << "/" << calib.str() << (dynamic ? "/dyn" : "/static");
  return os.str();
}

}  // namespace vsq
