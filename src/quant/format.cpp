#include "quant/format.h"

#include <algorithm>
#include <cmath>

namespace vsq {

std::string QuantFormat::str() const {
  return (is_signed ? "s" : "u") + std::to_string(bits);
}

float scale_from_amax(float amax, const QuantFormat& fmt) {
  if (amax <= 0.0f) return 0.0f;
  return amax / static_cast<float>(fmt.qmax());
}

std::int64_t quantize_value(float x, float scale, const QuantFormat& fmt) {
  if (scale <= 0.0f) return 0;
  const float scaled = x / scale;
  // llrint implements round-half-to-even in the default rounding mode; the
  // paper's floor(x/s + 0.5) "round to nearest" differs only on exact .5
  // ties, which calibrated scales essentially never produce.
  const auto q = static_cast<std::int64_t>(std::llrint(scaled));
  return std::clamp(q, fmt.qmin(), fmt.qmax());
}

float fake_quantize_value(float x, float scale, const QuantFormat& fmt) {
  return static_cast<float>(quantize_value(x, scale, fmt)) * scale;
}

}  // namespace vsq
