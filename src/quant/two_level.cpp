#include "quant/two_level.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vsq {

ScaleSet TwoLevelScales::to_scale_set() const {
  ScaleSet s;
  s.granularity = Granularity::kPerVector;
  s.layout = layout;
  s.rows = rows;
  s.scales.resize(sq.size());
  const std::int64_t vpr = vectors_per_row();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t v = 0; v < vpr; ++v) {
      s.scales[static_cast<std::size_t>(r * vpr + v)] = effective_scale(r, v);
    }
  }
  return s;
}

TwoLevelScales two_level_from_scales(const ScaleSet& fp_scales, const QuantFormat& scale_fmt,
                                     CoarseAxis coarse_axis) {
  if (fp_scales.granularity != Granularity::kPerVector) {
    throw std::invalid_argument("two_level_from_scales: input must be per-vector scales");
  }
  if (scale_fmt.is_signed) {
    throw std::invalid_argument("two_level_from_scales: scale format must be unsigned");
  }
  TwoLevelScales out;
  out.scale_fmt = scale_fmt;
  out.coarse_axis = coarse_axis;
  out.layout = fp_scales.layout;
  out.rows = fp_scales.rows;
  const std::int64_t vpr = fp_scales.vectors_per_row();
  out.sq.resize(fp_scales.scales.size());
  const auto scale_qmax = static_cast<float>(scale_fmt.qmax());

  const auto factor_group = [&](std::int64_t row_begin, std::int64_t row_end, float& gamma_out) {
    // Eq. 7e: smax over the group; Eq. 7f: gamma = smax / (2^M - 1).
    float smax = 0.0f;
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        smax = std::max(smax, fp_scales.scales[static_cast<std::size_t>(r * vpr + v)]);
      }
    }
    const float gamma = smax > 0.0f ? smax / scale_qmax : 0.0f;
    gamma_out = gamma;
    // Eq. 7g: sq = round(s / gamma), clipped to the M-bit range.
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto idx = static_cast<std::size_t>(r * vpr + v);
        if (gamma <= 0.0f) {
          out.sq[idx] = 0;
          continue;
        }
        const auto q = static_cast<std::int64_t>(std::llrint(fp_scales.scales[idx] / gamma));
        out.sq[idx] = static_cast<std::uint16_t>(std::clamp<std::int64_t>(q, 0, scale_fmt.qmax()));
      }
    }
  };

  if (coarse_axis == CoarseAxis::kPerRow) {
    out.gamma.resize(static_cast<std::size_t>(out.rows));
    for (std::int64_t r = 0; r < out.rows; ++r) {
      factor_group(r, r + 1, out.gamma[static_cast<std::size_t>(r)]);
    }
  } else {
    out.gamma.resize(1);
    factor_group(0, out.rows, out.gamma[0]);
  }
  return out;
}

TwoLevelScales two_level_channel_first(const Tensor& x2d, const QuantFormat& fmt,
                                       const QuantFormat& scale_fmt, const VectorLayout& layout,
                                       CoarseAxis coarse_axis) {
  if (x2d.shape().rank() != 2) {
    throw std::invalid_argument("two_level_channel_first: expected 2-D matrix");
  }
  TwoLevelScales out;
  out.scale_fmt = scale_fmt;
  out.coarse_axis = coarse_axis;
  out.layout = layout;
  out.layout.cols = x2d.shape()[1];
  out.rows = x2d.shape()[0];
  const std::int64_t vpr = out.vectors_per_row();
  out.sq.resize(static_cast<std::size_t>(out.rows * vpr));

  const std::vector<float> vec_amax = amax_per_vector(x2d, out.layout);
  const auto elem_qmax = static_cast<float>(fmt.qmax());
  const auto scale_qmax = static_cast<float>(scale_fmt.qmax());

  const auto factor_group = [&](std::int64_t row_begin, std::int64_t row_end, float& gamma_out) {
    // Coarse scale first: the group's largest element must be representable
    // with the largest integer vector scale, so
    //   gamma = group_amax / (elem_qmax * scale_qmax).
    float group_amax = 0.0f;
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        group_amax = std::max(group_amax, vec_amax[static_cast<std::size_t>(r * vpr + v)]);
      }
    }
    const float gamma = group_amax > 0.0f ? group_amax / (elem_qmax * scale_qmax) : 0.0f;
    gamma_out = gamma;
    // Back-calculate per-vector integer scales with a ceiling so every
    // vector's amax stays within range (no clipping beyond rounding).
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto idx = static_cast<std::size_t>(r * vpr + v);
        if (gamma <= 0.0f || vec_amax[idx] <= 0.0f) {
          out.sq[idx] = 0;
          continue;
        }
        const auto q = static_cast<std::int64_t>(
            std::ceil(vec_amax[idx] / (gamma * elem_qmax) - 1e-6f));
        out.sq[idx] = static_cast<std::uint16_t>(std::clamp<std::int64_t>(q, 1, scale_fmt.qmax()));
      }
    }
  };

  if (coarse_axis == CoarseAxis::kPerRow) {
    out.gamma.resize(static_cast<std::size_t>(out.rows));
    for (std::int64_t r = 0; r < out.rows; ++r) {
      factor_group(r, r + 1, out.gamma[static_cast<std::size_t>(r)]);
    }
  } else {
    out.gamma.resize(1);
    factor_group(0, out.rows, out.gamma[0]);
  }
  return out;
}

}  // namespace vsq
