// Integer-domain operand representation for the bit-accurate hardware path
// (Sec. 5). Elements are stored as int16 (covers 3..10-bit values); scale
// metadata is either coarse floating-point (the baseline accelerator) or
// two-level: M-bit integer per-vector scales + floating-point coarse scale
// (the VS-Quant accelerator's buffer layout: each vector row carries its
// integer scale).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quant/fake_quant.h"

namespace vsq {

struct QuantizedMatrix {
  std::int64_t rows = 0;
  QuantFormat fmt{8, true};
  VectorLayout layout;
  std::vector<std::int16_t> q;  // rows * cols integer elements

  // Scale metadata. Exactly one representation is active:
  //  - two_level.has_value(): VS-Quant operand (integer sq + fp gamma)
  //  - otherwise: coarse fp scales (per-row if coarse_scales.size()==rows,
  //    per-tensor if size()==1)
  std::optional<TwoLevelScales> two_level;
  std::vector<float> coarse_scales;

  std::int64_t cols() const { return layout.cols; }
  std::int64_t vectors_per_row() const { return layout.vectors_per_row(); }
  bool is_per_vector() const { return two_level.has_value(); }

  // Integer per-vector scale (1 when the operand has no per-vector scales,
  // i.e. the coarse baseline: the scale multiplier is bypassed).
  std::uint32_t int_scale(std::int64_t r, std::int64_t v) const {
    if (!two_level) return 1;
    return two_level->sq[static_cast<std::size_t>(r * vectors_per_row() + v)];
  }
  // Floating-point factor applied after integer accumulation (gamma for
  // two-level operands, the coarse scale otherwise).
  float outer_scale(std::int64_t r) const {
    if (two_level) return two_level->gamma_of_row(r);
    return coarse_scales.size() == 1 ? coarse_scales[0]
                                     : coarse_scales[static_cast<std::size_t>(r)];
  }
  std::int16_t at(std::int64_t r, std::int64_t c) const {
    return q[static_cast<std::size_t>(r * cols() + c)];
  }
};

// Build the integer operand for statically quantized weights.
// spec.granularity: kPerRow (baseline per-channel) or kPerVector with
// kTwoLevelInt scales. Single-level fp32/fp16 per-vector scales are
// rejected: the hardware stores only integer per-vector scales.
QuantizedMatrix quantize_weights_int(const Tensor& w2d, const QuantSpec& spec);

// Build the integer operand for activations at inference time, mirroring
// the PPU: per-tensor static amax for the coarse baseline, or dynamic
// per-vector sq with the calibrated gamma for two-level VS-Quant.
QuantizedMatrix quantize_activations_int(const Tensor& x2d, const QuantSpec& spec,
                                         float static_amax, float gamma);

// The PPU's fused per-row pass for dynamic two-level per-vector
// activations (amax -> sq -> integer elements, Eq. 7g-7h): one activation
// row of layout.cols floats into qrow int16 elements and sqrow
// (vectors_per_row) integer scales. quantize_activations_int runs this per
// matrix row and int_conv per streamed im2col patch row — sharing the one
// definition is what makes the tiled conv datapath bit-identical to the
// materialized path.
void quantize_row_two_level(const float* xrow, const VectorLayout& layout,
                            const QuantFormat& fmt, const QuantFormat& scale_fmt, float gamma,
                            std::int16_t* qrow, std::uint16_t* sqrow);

}  // namespace vsq
