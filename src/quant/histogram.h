// Absolute-value histogram used by the percentile / entropy / MSE
// calibrators (paper Sec. 3, Table 2). Collection is two-pass friendly:
// the histogram range grows automatically by rebinning when new data
// exceeds the current upper edge, so activations can be streamed batch by
// batch during static calibration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vsq {

class Histogram {
 public:
  explicit Histogram(int num_bins = 2048);

  // Accumulate |x| for every element.
  void collect(std::span<const float> values);

  // Forget all collected data (bins, range, counts) but keep the bin
  // storage, so one histogram can be reused across many small collections
  // (e.g. per-row weight calibration) without reallocating.
  void reset();

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double bin_width() const { return width_; }
  double upper_edge() const { return width_ * num_bins(); }
  std::uint64_t total_count() const { return total_; }
  double max_value() const { return max_value_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  // Center of bin b.
  double bin_center(int b) const { return (b + 0.5) * width_; }

 private:
  void grow_to(double new_max);

  std::vector<std::uint64_t> counts_;
  double width_ = 0.0;  // 0 until first collect
  double max_value_ = 0.0;
  std::uint64_t total_ = 0;
};

}  // namespace vsq
