#include "quant/ocs.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "tensor/gemm.h"

namespace vsq {
namespace {

// One expanded column: a base column of the original matrix times a
// power-of-two attenuation (0.5 per split along its lineage).
struct SplitEntry {
  std::int64_t col = 0;
  float scale = 1.0f;
  float amax = 0.0f;  // amax of the attenuated column (ordering key)

  bool operator<(const SplitEntry& other) const { return amax < other.amax; }
};

float column_amax(const Tensor& w2d, std::int64_t c) {
  float m = 0.0f;
  const std::int64_t rows = w2d.shape()[0], cols = w2d.shape()[1];
  const float* d = w2d.data();
  for (std::int64_t r = 0; r < rows; ++r) m = std::max(m, std::abs(d[r * cols + c]));
  return m;
}

}  // namespace

OcsResult ocs_fake_quantize(const Tensor& w2d, const QuantFormat& fmt, double expand_ratio) {
  if (w2d.shape().rank() != 2) throw std::invalid_argument("ocs_fake_quantize: need 2-D");
  const std::int64_t rows = w2d.shape()[0], cols = w2d.shape()[1];
  const std::int64_t budget =
      expand_ratio <= 0.0
          ? 0
          : static_cast<std::int64_t>(std::ceil(expand_ratio * static_cast<double>(cols)));

  // Greedy split: always halve the entry whose attenuated column currently
  // holds the largest |w| (the outlier that pins the scale factor).
  std::priority_queue<SplitEntry> heap;
  for (std::int64_t c = 0; c < cols; ++c) heap.push({c, 1.0f, column_amax(w2d, c)});
  std::vector<SplitEntry> entries;
  entries.reserve(static_cast<std::size_t>(cols + budget));
  for (std::int64_t s = 0; s < budget; ++s) {
    SplitEntry top = heap.top();
    heap.pop();
    top.scale *= 0.5f;
    top.amax *= 0.5f;
    heap.push(top);
    heap.push(top);  // the split produces two half-valued copies
  }
  while (!heap.empty()) {
    entries.push_back(heap.top());
    heap.pop();
  }

  // Materialize the expanded matrix [rows, cols + splits].
  const std::int64_t xcols = static_cast<std::int64_t>(entries.size());
  Tensor expanded(Shape{rows, xcols});
  {
    const float* src = w2d.data();
    float* dst = expanded.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t e = 0; e < xcols; ++e) {
        const SplitEntry& en = entries[static_cast<std::size_t>(e)];
        dst[r * xcols + e] = src[r * cols + en.col] * en.scale;
      }
    }
  }

  // Per-output-channel quantization of the expanded matrix, then collapse
  // duplicates by summation (the dequantized halves add back together).
  const VectorLayout layout{xcols, 16, 0};
  const ScaleSet scales = compute_scales(expanded, Granularity::kPerRow, layout, fmt);
  const Tensor fake_expanded = fake_quantize(expanded, scales, fmt);

  OcsResult res;
  res.fake = Tensor(Shape{rows, cols});
  res.splits = xcols - cols;
  res.expanded_cols = xcols;
  {
    const float* src = fake_expanded.data();
    float* dst = res.fake.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t e = 0; e < xcols; ++e) {
        dst[r * cols + entries[static_cast<std::size_t>(e)].col] += src[r * xcols + e];
      }
    }
  }
  return res;
}

OcsExecutionGuard::OcsExecutionGuard(std::vector<QuantizableGemm*> gemms,
                                     const QuantFormat& wt_fmt, double expand_ratio,
                                     QuantFormat act_fmt)
    : gemms_(std::move(gemms)) {
  prepared_.reserve(gemms_.size());
  for (QuantizableGemm* g : gemms_) {
    prepared_.push_back(ocs_fake_quantize(g->weight_matrix(), wt_fmt, expand_ratio));
  }
  // prepared_ is fully populated (and reserve()d) before any pointer into
  // it is captured, so the captured addresses stay valid for the guard's
  // lifetime.
  for (std::size_t i = 0; i < gemms_.size(); ++i) {
    const Tensor* w_eff = &prepared_[i].fake;
    gemms_[i]->set_gemm_override([w_eff, act_fmt](const Tensor& x2d) {
      const std::int64_t rows = x2d.shape()[0], cols = x2d.shape()[1];
      const std::int64_t outs = w_eff->shape()[0];
      Tensor y(Shape{rows, outs});
      if (act_fmt.bits > 0) {
        // Per-tensor dynamic max calibration of the activations.
        const VectorLayout layout{cols, 16, 0};
        const ScaleSet s = compute_scales(x2d, Granularity::kPerTensor, layout, act_fmt);
        const Tensor xq = fake_quantize(x2d, s, act_fmt);
        gemm_nt(xq.data(), w_eff->data(), y.data(), rows, outs, cols);
      } else {
        gemm_nt(x2d.data(), w_eff->data(), y.data(), rows, outs, cols);
      }
      return y;
    });
  }
}

OcsExecutionGuard::~OcsExecutionGuard() {
  for (QuantizableGemm* g : gemms_) g->set_gemm_override({});
}

double OcsExecutionGuard::mean_expansion() const {
  if (prepared_.empty()) return 1.0;
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    const GemmDims dims = gemms_[i]->gemm_dims();
    const double weight = static_cast<double>(std::max<std::int64_t>(dims.macs(), 1));
    num += prepared_[i].expansion() * weight;
    den += weight;
  }
  return num / den;
}

}  // namespace vsq
