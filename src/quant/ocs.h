// Outlier channel splitting (Zhao et al., ICML 2019) — the related-work
// PTQ baseline the paper contrasts with (Sec. 2): instead of finer scale
// granularity, OCS shrinks the quantization range by *duplicating* the
// input channels that contain outliers and halving their values. The
// network function is exactly preserved (x*w == x*(w/2) + x*(w/2)) while
// the per-channel amax — and therefore the scale factor and quantization
// error of inlier values — shrinks. The cost is compute/storage expansion:
// every split adds a full column of MACs to the GEMM.
//
// This implementation splits weight reduction-axis columns greedily: the
// column holding the current largest |w| splits first, iterating until the
// expansion budget is used. Quantization happens on the expanded matrix
// (per output channel); the result is collapsed back to the original shape
// by summing duplicate columns, yielding a drop-in simulated-quantized
// weight matrix comparable with per-channel and per-vector scaling.
//
// bench/ablation_ocs measures both sides of the trade: OCS error reduction
// vs its expansion overhead, against VS-Quant's M/(V*N) storage overhead.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "quant/scale.h"

namespace vsq {

struct OcsResult {
  Tensor fake;                // [K, L] effective simulated-quantized weights
  std::int64_t splits = 0;    // column splits performed
  std::int64_t expanded_cols = 0;  // L + splits (GEMM width after OCS)
  // Compute/storage expansion the accelerator would pay: expanded_cols / L.
  double expansion() const {
    return expanded_cols == 0 || splits == 0
               ? 1.0
               : static_cast<double>(expanded_cols) /
                     static_cast<double>(expanded_cols - splits);
  }
};

// Simulated OCS quantization of a [K, L] weight matrix with per-output-
// channel scales. `expand_ratio` is the fraction of extra columns allowed
// (0.05 = 5% more GEMM work, the operating point the OCS paper uses);
// expand_ratio <= 0 degenerates to plain per-channel fake quantization.
OcsResult ocs_fake_quantize(const Tensor& w2d, const QuantFormat& fmt, double expand_ratio);

// RAII: route a set of GEMM layers through OCS-quantized weights (weights
// only; activations fake-quantized per-tensor with dynamic max calibration
// at `act_fmt`, or left fp32 when act_fmt.bits <= 0). Restores the layers
// on destruction. Inference only.
class OcsExecutionGuard {
 public:
  OcsExecutionGuard(std::vector<QuantizableGemm*> gemms, const QuantFormat& wt_fmt,
                    double expand_ratio, QuantFormat act_fmt = QuantFormat{0, true});
  ~OcsExecutionGuard();

  OcsExecutionGuard(const OcsExecutionGuard&) = delete;
  OcsExecutionGuard& operator=(const OcsExecutionGuard&) = delete;

  // Op-weighted mean expansion across the guarded layers.
  double mean_expansion() const;

 private:
  std::vector<QuantizableGemm*> gemms_;
  std::vector<OcsResult> prepared_;
};

}  // namespace vsq
