#include "quant/scale.h"

#include <stdexcept>

#include "util/fp16.h"

namespace vsq {
namespace {

void check_matrix(const Tensor& x2d) {
  if (x2d.shape().rank() != 2) throw std::invalid_argument("quant: expected a 2-D matrix");
}

std::size_t expected_scale_count(Granularity g, std::int64_t rows, std::int64_t vpr) {
  switch (g) {
    case Granularity::kPerTensor: return 1;
    case Granularity::kPerRow: return static_cast<std::size_t>(rows);
    case Granularity::kPerVector: return static_cast<std::size_t>(rows * vpr);
  }
  return 0;
}

}  // namespace

float ScaleSet::at(std::int64_t r, std::int64_t c) const {
  switch (granularity) {
    case Granularity::kPerTensor: return scales[0];
    case Granularity::kPerRow: return scales[static_cast<std::size_t>(r)];
    case Granularity::kPerVector:
      return scales[static_cast<std::size_t>(r * vectors_per_row() + layout.vector_of_col(c))];
  }
  return scales[0];
}

ScaleSet compute_scales(const Tensor& x2d, Granularity g, const VectorLayout& layout,
                        const QuantFormat& fmt) {
  check_matrix(x2d);
  ScaleSet s;
  s.granularity = g;
  s.layout = layout;
  s.layout.cols = x2d.shape()[1];
  s.rows = x2d.shape()[0];
  std::vector<float> amax;
  switch (g) {
    case Granularity::kPerTensor: amax = {amax_per_tensor(x2d)}; break;
    case Granularity::kPerRow: amax = amax_per_row(x2d); break;
    case Granularity::kPerVector: amax = amax_per_vector(x2d, s.layout); break;
  }
  s.scales.resize(amax.size());
  for (std::size_t i = 0; i < amax.size(); ++i) s.scales[i] = scale_from_amax(amax[i], fmt);
  return s;
}

ScaleSet scales_from_amax(Granularity g, const VectorLayout& layout, std::int64_t rows,
                          const std::vector<float>& amax, const QuantFormat& fmt) {
  ScaleSet s;
  s.granularity = g;
  s.layout = layout;
  s.rows = rows;
  if (amax.size() != expected_scale_count(g, rows, layout.vectors_per_row())) {
    throw std::invalid_argument("scales_from_amax: amax count does not match granularity");
  }
  s.scales.resize(amax.size());
  for (std::size_t i = 0; i < amax.size(); ++i) s.scales[i] = scale_from_amax(amax[i], fmt);
  return s;
}

void round_scales_fp16(ScaleSet& s) {
  for (auto& v : s.scales) v = fp16_round(v);
}

Tensor fake_quantize(const Tensor& x2d, const ScaleSet& s, const QuantFormat& fmt) {
  check_matrix(x2d);
  if (x2d.shape()[0] != s.rows || x2d.shape()[1] != s.cols()) {
    throw std::invalid_argument("fake_quantize: scale set does not match matrix");
  }
  Tensor out(x2d.shape());
  const float* src = x2d.data();
  float* dst = out.data();
  const std::int64_t rows = s.rows, cols = s.cols();

  if (s.granularity == Granularity::kPerVector) {
    const std::int64_t vpr = s.vectors_per_row();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t v = 0; v < vpr; ++v) {
        const float sc = s.scales[static_cast<std::size_t>(r * vpr + v)];
        const auto [c0, c1] = s.layout.col_range(v);
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[r * cols + c] = fake_quantize_value(src[r * cols + c], sc, fmt);
        }
      }
    }
  } else {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float sc = s.granularity == Granularity::kPerTensor
                           ? s.scales[0]
                           : s.scales[static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < cols; ++c) {
        dst[r * cols + c] = fake_quantize_value(src[r * cols + c], sc, fmt);
      }
    }
  }
  return out;
}

std::vector<std::int16_t> quantize_to_int(const Tensor& x2d, const ScaleSet& s,
                                          const QuantFormat& fmt) {
  check_matrix(x2d);
  if (fmt.bits > 10) throw std::invalid_argument("quantize_to_int: bits > 10 does not fit int16");
  const std::int64_t rows = s.rows, cols = s.cols();
  std::vector<std::int16_t> out(static_cast<std::size_t>(rows * cols));
  const float* src = x2d.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out[static_cast<std::size_t>(r * cols + c)] =
          static_cast<std::int16_t>(quantize_value(src[r * cols + c], s.at(r, c), fmt));
    }
  }
  return out;
}

}  // namespace vsq
