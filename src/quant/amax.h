// Absolute-maximum computation at each scale granularity (Eq. 7a and the
// coarse-grained analogues). Input is always a [rows, cols] matrix with the
// reduction axis along columns.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/granularity.h"
#include "tensor/tensor.h"

namespace vsq {

// One value: max |x| over the whole matrix.
float amax_per_tensor(const Tensor& x2d);

// rows values: max |x| over each row.
std::vector<float> amax_per_row(const Tensor& x2d);

// rows * layout.vectors_per_row() values, vector index fastest (the paper's
// (k, i) order). Vector boundaries follow the layout's channel blocks, so
// conv vectors are V x 1 x 1 along input channels (Fig. 1).
std::vector<float> amax_per_vector(const Tensor& x2d, const VectorLayout& layout);

}  // namespace vsq
