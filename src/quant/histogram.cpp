#include "quant/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vsq {

Histogram::Histogram(int num_bins) {
  if (num_bins < 16) throw std::invalid_argument("Histogram: too few bins");
  counts_.assign(static_cast<std::size_t>(num_bins), 0);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
  width_ = 0.0;
  max_value_ = 0.0;
  total_ = 0;
}

void Histogram::grow_to(double new_max) {
  // Double the range until new_max fits, merging pairs of bins so counts
  // stay consistent (standard TensorRT-style growth).
  while (new_max > upper_edge()) {
    const int n = num_bins();
    std::vector<std::uint64_t> merged(static_cast<std::size_t>(n), 0);
    for (int b = 0; b < n; ++b) merged[static_cast<std::size_t>(b / 2)] += counts_[b];
    counts_ = std::move(merged);
    width_ *= 2.0;
  }
}

void Histogram::collect(std::span<const float> values) {
  if (values.empty()) return;
  double batch_max = 0.0;
  for (const float v : values) batch_max = std::max(batch_max, static_cast<double>(std::abs(v)));
  max_value_ = std::max(max_value_, batch_max);
  if (width_ == 0.0) {
    // First batch establishes the range (with headroom so growth is rare).
    width_ = std::max(batch_max, 1e-12) / num_bins();
  } else {
    grow_to(batch_max);
  }
  const double inv_width = 1.0 / width_;
  const int last = num_bins() - 1;
  for (const float v : values) {
    const double a = std::abs(static_cast<double>(v));
    int b = static_cast<int>(a * inv_width);
    b = std::min(b, last);
    ++counts_[static_cast<std::size_t>(b)];
  }
  total_ += values.size();
}

}  // namespace vsq
