#include "quant/int_conv.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "quant/int_kernel.h"
#include "tensor/ops.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace vsq {
namespace {

void check_conv_operands(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                         const VectorLayout& act_layout) {
  if (x.shape().rank() != 4 || x.shape()[1] != g.in_h || x.shape()[2] != g.in_w ||
      x.shape()[3] != g.in_c) {
    throw std::invalid_argument("int_conv: input shape does not match geometry");
  }
  if (wgt.cols() != g.patch_len()) {
    throw std::invalid_argument("int_conv: weight reduction dim != patch length");
  }
  if (act_layout.vector_size != wgt.layout.vector_size ||
      act_layout.block_len() != wgt.layout.block_len()) {
    throw std::invalid_argument("int_conv: operand vector layouts differ");
  }
  // Vectors must not straddle kernel positions (Conv2d::set_quant's
  // channel_block = in_c rule): each C-length channel block of the
  // unrolled patch row carries its own vectors.
  if (act_layout.block_len() != g.in_c) {
    throw std::invalid_argument("int_conv: layout channel block must equal in_c");
  }
}

void add_bias_rows(float* dst, std::int64_t rows, std::int64_t k_out,
                   const std::vector<float>& bias) {
  if (bias.empty()) return;
  if (static_cast<std::int64_t>(bias.size()) != k_out) {
    throw std::invalid_argument("int_conv: bias size mismatch");
  }
  add_row_bias(dst, rows, k_out, bias.data());
}

// Shared body of int_conv_reference and the reference fallbacks inside
// detail::int_conv_packed (which thread a prepacked set through to the
// materialized int_gemm).
Tensor conv_reference_packed(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                             const QuantSpec& act_spec, float act_amax, float act_gamma,
                             const std::vector<float>& bias, int scale_product_bits,
                             IntGemmStats* stats, const detail::IntWeightPanels* prepacked) {
  const VectorLayout act_layout = act_spec.layout(g.patch_len());
  check_conv_operands(x, g, wgt, act_layout);
  const std::int64_t n = x.shape()[0], oh = g.out_h(), ow = g.out_w();
  const Tensor cols = im2col(x, g);
  const QuantizedMatrix acts = quantize_activations_int(cols, act_spec, act_amax, act_gamma);
  Tensor y = detail::int_gemm_packed(acts, wgt, scale_product_bits, stats, prepacked);
  add_bias_rows(y.data(), n * oh * ow, wgt.rows, bias);
  return y.reshape(Shape{n, oh, ow, wgt.rows});
}

}  // namespace

Tensor int_conv_reference(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                          const QuantSpec& act_spec, float act_amax, float act_gamma,
                          const std::vector<float>& bias, int scale_product_bits,
                          IntGemmStats* stats) {
  return conv_reference_packed(x, g, wgt, act_spec, act_amax, act_gamma, bias,
                               scale_product_bits, stats, nullptr);
}

Tensor int_conv(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                const QuantSpec& act_spec, float act_amax, float act_gamma,
                const std::vector<float>& bias, int scale_product_bits, IntGemmStats* stats) {
  return detail::int_conv_packed(x, g, wgt, act_spec, act_amax, act_gamma, bias,
                                 scale_product_bits, stats, nullptr);
}

namespace detail {

Tensor int_conv_packed(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                       const QuantSpec& act_spec, float act_amax, float act_gamma,
                       const std::vector<float>& bias, int scale_product_bits,
                       IntGemmStats* stats, const IntWeightPanels* prepacked) {
  if (!act_spec.enabled) throw std::invalid_argument("int_conv: activation spec disabled");
  const std::int64_t plen = g.patch_len();
  const VectorLayout act_layout = act_spec.layout(plen);
  check_conv_operands(x, g, wgt, act_layout);
  if (act_spec.fmt.bits > 10) {
    throw std::invalid_argument("int_conv: bits > 10 does not fit int16");
  }

  if (!bias.empty() && static_cast<std::int64_t>(bias.size()) != wgt.rows) {
    throw std::invalid_argument("int_conv: bias size mismatch");
  }

  const bool per_vector = act_spec.granularity == Granularity::kPerVector;
  if (per_vector && act_spec.scale_dtype != ScaleDtype::kTwoLevelInt) {
    throw std::invalid_argument("int_conv: hardware path requires two-level integer scales");
  }
  // Dynamic per-tensor activation amax is a whole-matrix statistic — not
  // computable from a streamed tile. Exported packages never use it
  // (coarse activations calibrate statically); route the corner case
  // through the materialized reference.
  if (!per_vector && act_spec.dynamic) {
    return conv_reference_packed(x, g, wgt, act_spec, act_amax, act_gamma, bias,
                                 scale_product_bits, stats, prepacked);
  }

  // int32-exactness checked before packing: the int64 reference fallback
  // (which packs inside int_gemm) must not pay for a discarded pack here.
  if (!int32_dot_exact(act_spec.fmt, wgt.fmt, act_layout)) {
    return conv_reference_packed(x, g, wgt, act_spec, act_amax, act_gamma, bias,
                                 scale_product_bits, stats, prepacked);
  }

  const std::int64_t n = x.shape()[0], oh = g.out_h(), ow = g.out_w();
  const std::int64_t rows = n * oh * ow, k_out = wgt.rows;
  Tensor out(Shape{n, oh, ow, k_out});
  if (rows == 0 || k_out == 0) return out;

  ScratchArena& arena = ScratchArena::thread_local_arena();
  ScratchRegion region(arena);
  std::optional<IntWeightPanels> local_panels;
  if (prepacked != nullptr && !prepacked->matches(wgt, act_layout, act_spec.fmt)) {
    throw std::invalid_argument("int_conv: prepacked panels do not match the operands");
  }
  if (prepacked == nullptr) {
    local_panels.emplace(wgt, act_layout, IntActAttrs::of(act_spec), arena);
    if (stats) ++stats->panels_packed;
  }
  const IntWeightPanels& panels = prepacked ? *prepacked : *local_panels;

  int full_bits = 0;
  if (per_vector) full_bits += act_spec.scale_fmt.bits;
  if (wgt.two_level) full_bits += wgt.two_level->scale_fmt.bits;

  // Coarse activations: one static scale is both the quantizer and the
  // outer de-scaling factor, exactly as quantize_activations_int builds
  // them. Per-vector: the row's outer factor is the calibrated gamma.
  const float coarse_scale = per_vector ? 0.0f : scale_from_amax(act_amax, act_spec.fmt);
  const float aout = per_vector ? act_gamma : coarse_scale;
  const std::int64_t vpr = act_layout.vectors_per_row();
  float* dst = out.data();
  const float* src = x.data();

  // Per-chunk stat accumulation merged under a (cold) mutex.
  std::mutex stats_mu;

  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, k_out * plen)));

  const auto row_loop = [&]<bool kStats>(std::size_t rb, std::size_t re,
                                         std::bool_constant<kStats>) {
    ScratchArena& ta = ScratchArena::thread_local_arena();
    ScratchRegion tr(ta);
    // Per-thread tile workspace: one fp patch row, its quantized image and
    // scales, and the panel dot-product buffer — a few KiB total,
    // regardless of how large the virtual cols matrix would be.
    auto* frow = ta.alloc_n<float>(static_cast<std::size_t>(plen));
    auto* qrow = ta.alloc_n<std::int16_t>(static_cast<std::size_t>(plen));
    auto* sqrow = ta.alloc_n<std::uint16_t>(static_cast<std::size_t>(vpr));
    auto* dp = ta.alloc_n<std::int32_t>(static_cast<std::size_t>(vpr * kIntPanelCols));
    std::uint8_t* u8row =
        panels.needs_u8_row()
            ? ta.alloc_n<std::uint8_t>(static_cast<std::size_t>(panels.u8_row_len()))
            : nullptr;
    IntRowStats t;
    for (std::size_t r = rb; r < re; ++r) {
      const auto ri = static_cast<std::int64_t>(r);
      im2col_rows(src, g, ri, ri + 1, frow, plen);
      if (per_vector) {
        quantize_row_two_level(frow, act_layout, act_spec.fmt, act_spec.scale_fmt, act_gamma,
                               qrow, sqrow);
      } else {
        for (std::int64_t c = 0; c < plen; ++c) {
          qrow[c] = static_cast<std::int16_t>(quantize_value(frow[c], coarse_scale,
                                                             act_spec.fmt));
        }
      }
      float* drow = dst + ri * k_out;
      panels.run_row<kStats>(qrow, per_vector ? sqrow : nullptr, aout, drow, full_bits,
                             scale_product_bits, dp, u8row, t);
      if (!bias.empty()) {
        for (std::int64_t k = 0; k < k_out; ++k) drow[k] += bias[static_cast<std::size_t>(k)];
      }
    }
    if constexpr (kStats) {
      std::lock_guard lock(stats_mu);
      t.merge_into(*stats);
    }
  };

  if (stats) {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<true>{}); },
        grain);
  } else {
    parallel_for(
        0, static_cast<std::size_t>(rows),
        [&](std::size_t rb, std::size_t re) { row_loop(rb, re, std::bool_constant<false>{}); },
        grain);
  }
  return out;
}

}  // namespace detail

}  // namespace vsq
