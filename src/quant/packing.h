// Bit-packing for sub-byte integer payloads. The memory model
// (hw/memory_model) accounts storage in exact bits; this module makes
// those numbers physical: N-bit quantized values (3 <= N <= 10, signed or
// unsigned) are packed into a dense little-endian bitstream with no
// padding between elements, exactly N bits per value — the buffer layout
// a VS-Quant deployment would ship and the accelerator's weight buffer
// would hold. M-bit per-vector scales pack through the same functions.
//
// Packing is value-checked: an element outside the format's
// representable range throws rather than silently truncating.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/format.h"

namespace vsq {

struct PackedBuffer {
  QuantFormat fmt{8, true};
  std::int64_t count = 0;           // packed element count
  std::vector<std::uint8_t> bytes;  // ceil(count * fmt.bits / 8) bytes

  // Exact payload size in bits (count * fmt.bits).
  std::int64_t payload_bits() const { return count * fmt.bits; }
  // Bits per element actually consumed including the final byte's padding.
  double bits_per_element() const {
    return count == 0 ? 0.0 : static_cast<double>(bytes.size()) * 8.0 / static_cast<double>(count);
  }
};

// Pack signed quantized values (the int16 elements of a QuantizedMatrix).
// Signed formats are stored as sign-extended N-bit two's complement;
// unsigned formats as plain N-bit fields. Throws std::out_of_range if any
// value does not fit fmt.
PackedBuffer pack_values(const std::vector<std::int16_t>& values, const QuantFormat& fmt);
// Unsigned variant (per-vector integer scale factors).
PackedBuffer pack_scales(const std::vector<std::uint16_t>& scales, const QuantFormat& fmt);

// Exact inverses of the packers.
std::vector<std::int16_t> unpack_values(const PackedBuffer& packed);
std::vector<std::uint16_t> unpack_scales(const PackedBuffer& packed);

}  // namespace vsq
