#include "quant/int_kernel.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define VSQ_INT_KERNEL_X86 1
#include <immintrin.h>
#else
#define VSQ_INT_KERNEL_X86 0
#endif

namespace vsq::detail {
namespace {

constexpr int PNR = kIntPanelCols;

// dp[v*PNR + j] = sum_c arow[c0_v + c] * wp[v-th block][c*PNR + j].
// Accumulation is int32: exact (no wrap) whenever
//   max|a| * max|w| * V <= INT32_MAX
// (IntWeightPanels::int32_exact); the caller falls back to the int64
// reference loop otherwise. The packed panel wp concatenates the vectors of
// the row in column order, each as len x PNR with output column j
// contiguous.
void int_panel_generic(const std::int16_t* arow, const std::int16_t* wp, const VecRange* vr,
                       std::int64_t nvec, std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t len = vr[v].len;
    std::int32_t acc[PNR] = {};
    for (std::int32_t c = 0; c < len; ++c) {
      const std::int32_t av = ap[c];
      const std::int16_t* wc = wp + static_cast<std::int64_t>(c) * PNR;
      for (int j = 0; j < PNR; ++j) acc[j] += av * wc[j];
    }
    wp += static_cast<std::int64_t>(len) * PNR;
    std::int32_t* d = dp + v * PNR;
    for (int j = 0; j < PNR; ++j) d[j] = acc[j];
  }
}

#if VSQ_INT_KERNEL_X86
// AVX2: 8 int32 lanes = one panel-width of dot products per instruction.
__attribute__((target("avx2"))) void int_panel_avx2(const std::int16_t* arow,
                                                    const std::int16_t* wp, const VecRange* vr,
                                                    std::int64_t nvec, std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t len = vr[v].len;
    __m256i acc = _mm256_setzero_si256();
    for (std::int32_t c = 0; c < len; ++c) {
      const __m256i av = _mm256_set1_epi32(ap[c]);
      const __m256i wv = _mm256_cvtepi16_epi32(
          _mm_load_si128(reinterpret_cast<const __m128i*>(wp + static_cast<std::int64_t>(c) * PNR)));
      acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(av, wv));
    }
    wp += static_cast<std::int64_t>(len) * PNR;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp + v * PNR), acc);
  }
}

// AVX2 madd variant for even vector lengths: the panel interleaves column
// PAIRS ([pair][j][2] int16), so one _mm256_madd_epi16 performs 16
// multiplies and the pairwise adds in a single instruction — 2x the MAC
// rate of the mullo path. Bit-exact: products of (<=10-bit)x(<=10-bit)
// values and their pairwise sums are exact in int32 (the caller already
// guarantees the whole V-length dot product fits int32), and integer
// addition reassociates freely.
__attribute__((target("avx2"))) void int_panel_avx2_madd(const std::int16_t* arow,
                                                         const std::int16_t* wp,
                                                         const VecRange* vr, std::int64_t nvec,
                                                         std::int32_t* dp) {
  for (std::int64_t v = 0; v < nvec; ++v) {
    const std::int16_t* ap = arow + vr[v].c0;
    const std::int32_t pairs = vr[v].len / 2;
    __m256i acc = _mm256_setzero_si256();
    for (std::int32_t p = 0; p < pairs; ++p) {
      std::int32_t apair;
      std::memcpy(&apair, ap + 2 * p, sizeof(apair));  // (a[2p], a[2p+1])
      const __m256i av = _mm256_set1_epi32(apair);
      const __m256i wv = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(wp + static_cast<std::int64_t>(p) * 2 * PNR));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, av));
    }
    wp += static_cast<std::int64_t>(pairs) * 2 * PNR;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dp + v * PNR), acc);
  }
}
#endif  // VSQ_INT_KERNEL_X86

#if VSQ_INT_KERNEL_X86
// 8 scale-multiply-accumulates per step: widen dp and the (rounded) scale
// products into 64-bit lanes and fused into two int64 accumulators. Valid
// while every scale product fits 31 bits (callers guard on full_bits).
__attribute__((target("avx2"))) void panel_acc_avx2(const std::int32_t* dp,
                                                    const std::uint32_t* wsq,
                                                    const std::uint16_t* asq, std::int64_t vpr,
                                                    int full_bits, int scale_product_bits,
                                                    std::int64_t* acc) {
  const bool do_round = scale_product_bits > 0 && scale_product_bits < full_bits;
  const int shift = do_round ? full_bits - scale_product_bits : 0;
  const __m256i half = _mm256_set1_epi32(do_round ? 1 << (shift - 1) : 0);
  __m256i acc_even = _mm256_setzero_si256();  // j = 0, 2, 4, 6
  __m256i acc_odd = _mm256_setzero_si256();   // j = 1, 3, 5, 7
  for (std::int64_t v = 0; v < vpr; ++v) {
    const std::int32_t as_v = asq ? asq[v] : 1;
    __m256i sp = _mm256_mullo_epi32(
        _mm256_set1_epi32(as_v),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wsq + v * PNR)));
    if (do_round) {
      sp = _mm256_slli_epi32(_mm256_srli_epi32(_mm256_add_epi32(sp, half), shift), shift);
    }
    const __m256i dv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dp + v * PNR));
    // mul_epi32 multiplies the low 32 bits of each 64-bit lane (lanes
    // 0/2/4/6 of the 8x32 view) into exact 64-bit products.
    acc_even = _mm256_add_epi64(acc_even, _mm256_mul_epi32(dv, sp));
    acc_odd = _mm256_add_epi64(
        acc_odd, _mm256_mul_epi32(_mm256_srli_epi64(dv, 32), _mm256_srli_epi64(sp, 32)));
  }
  alignas(32) std::int64_t even[4], odd[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(even), acc_even);
  _mm256_store_si256(reinterpret_cast<__m256i*>(odd), acc_odd);
  for (int h = 0; h < 4; ++h) {
    acc[2 * h] = even[h];
    acc[2 * h + 1] = odd[h];
  }
}
#endif  // VSQ_INT_KERNEL_X86

PanelAccFn pick_panel_acc_avx2() {
#if VSQ_INT_KERNEL_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return panel_acc_avx2;
#endif
  return nullptr;
}

IntPanelFn pick_int_panel() {
#if VSQ_INT_KERNEL_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return int_panel_avx2;
#endif
  return int_panel_generic;
}

const IntPanelFn g_int_panel = pick_int_panel();

// madd variant usable only when every vector length is even (the pair
// interleave would otherwise read one activation past the row).
IntPanelFn pick_int_panel_madd() {
#if VSQ_INT_KERNEL_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return int_panel_avx2_madd;
#endif
  return nullptr;
}

const IntPanelFn g_int_panel_madd = pick_int_panel_madd();

}  // namespace

void panel_acc_scalar(const std::int32_t* dp, const std::uint32_t* wsq,
                      const std::uint16_t* asq, std::int64_t vpr, int full_bits,
                      int scale_product_bits, std::int64_t* acc) {
  for (std::int64_t v = 0; v < vpr; ++v) {
    const std::uint32_t as_v = asq ? asq[v] : 1;
    const std::int32_t* dv = dp + v * PNR;
    const std::uint32_t* sv = wsq + v * PNR;
    for (int j = 0; j < PNR; ++j) {
      const std::uint32_t sp = round_scale_product(as_v * sv[j], full_bits, scale_product_bits);
      acc[j] += static_cast<std::int64_t>(dv[j]) * sp;
    }
  }
}

const PanelAccFn g_panel_acc_avx2 = pick_panel_acc_avx2();

namespace {
std::atomic<std::uint64_t> g_panels_packed{0};
}  // namespace

std::uint64_t panels_packed_total() { return g_panels_packed.load(std::memory_order_relaxed); }

IntWeightPanels::IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout,
                                 ScratchArena& arena)
    : wgt_(&wgt), cols_(layout.cols), k_out_(wgt.rows), vpr_(layout.vectors_per_row()) {
  pack(wgt, layout, arena);
}

IntWeightPanels::IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout)
    : wgt_(&wgt),
      cols_(layout.cols),
      k_out_(wgt.rows),
      vpr_(layout.vectors_per_row()),
      own_(std::make_unique<ScratchArena>()) {
  pack(wgt, layout, *own_);
}

void IntWeightPanels::pack(const QuantizedMatrix& wgt, const VectorLayout& layout,
                           ScratchArena& arena) {
  g_panels_packed.fetch_add(1, std::memory_order_relaxed);
  vector_size_ = layout.vector_size;
  block_len_ = layout.block_len();
  // Vector column ranges, precomputed once per call.
  auto* vr = arena.alloc_n<VecRange>(static_cast<std::size_t>(vpr_));
  bool all_even = true;
  for (std::int64_t v = 0; v < vpr_; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    vr[v] = VecRange{static_cast<std::int32_t>(c0), static_cast<std::int32_t>(c1 - c0)};
    all_even = all_even && (c1 - c0) % 2 == 0;
  }
  vr_ = vr;
  const bool use_madd = all_even && g_int_panel_madd != nullptr;
  panel_fn_ = use_madd ? g_int_panel_madd : g_int_panel;

  // Pack the weight matrix into PNR-column panels once; every activation
  // row then streams the panel with unit stride instead of re-striding
  // wgt.q per output element. Two layouts, chosen with the kernel:
  //  - plain: [c][j] (j = output column within the panel)
  //  - madd (even vector lengths only): [pair][j][2], column pairs
  //    interleaved so _mm256_madd_epi16 consumes them directly
  // Scales are [v][j]; everything is zero-padded past k_out so the kernels
  // never branch on panel width.
  n_panels_ = (k_out_ + PNR - 1) / PNR;
  auto* pw = arena.alloc_n<std::int16_t>(static_cast<std::size_t>(n_panels_ * cols_ * PNR));
  auto* psq = arena.alloc_n<std::uint32_t>(static_cast<std::size_t>(n_panels_ * vpr_ * PNR));
  for (std::int64_t kp = 0; kp < n_panels_; ++kp) {
    const std::int64_t k0 = kp * PNR;
    const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out_ - k0));
    std::int16_t* vd = pw + kp * cols_ * PNR;
    if (use_madd) {
      for (std::int64_t v = 0; v < vpr_; ++v) {
        const std::int64_t c0 = vr[v].c0, pairs = vr[v].len / 2;
        for (std::int64_t p = 0; p < pairs; ++p) {
          for (int j = 0; j < PNR; ++j) {
            for (int h = 0; h < 2; ++h) {
              vd[p * 2 * PNR + j * 2 + h] =
                  j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + 2 * p + h)] : 0;
            }
          }
        }
        vd += pairs * 2 * PNR;
      }
    } else {
      for (std::int64_t c = 0; c < cols_; ++c) {
        for (int j = 0; j < PNR; ++j) {
          vd[c * PNR + j] = j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c)] : 0;
        }
      }
    }
    std::uint32_t* sd = psq + kp * vpr_ * PNR;
    for (std::int64_t v = 0; v < vpr_; ++v) {
      for (int j = 0; j < PNR; ++j) {
        sd[v * PNR + j] = j < nr ? wgt.int_scale(k0 + j, v) : 0;
      }
    }
  }
  pw_ = pw;
  psq_ = psq;
}

}  // namespace vsq::detail
