#include "quant/int_kernel.h"

#include <atomic>

namespace vsq::detail {
namespace {

constexpr int PNR = kIntPanelCols;

std::int64_t padded4(std::int64_t len) { return (len + 3) / 4 * 4; }

std::atomic<std::uint64_t> g_panels_packed{0};
std::atomic<std::uint64_t> g_panels_unpacked_materialized{0};

}  // namespace

std::uint64_t panels_packed_total() { return g_panels_packed.load(std::memory_order_relaxed); }

std::uint64_t panels_unpacked_materialized_total() {
  return g_panels_unpacked_materialized.load(std::memory_order_relaxed);
}

IntWeightPanels::IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout,
                                 const IntActAttrs& act, ScratchArena& arena)
    : wgt_(&wgt), cols_(layout.cols), k_out_(wgt.rows), vpr_(layout.vectors_per_row()) {
  pack(wgt, layout, act, arena);
}

IntWeightPanels::IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout,
                                 const IntActAttrs& act)
    : wgt_(&wgt),
      cols_(layout.cols),
      k_out_(wgt.rows),
      vpr_(layout.vectors_per_row()),
      own_(std::make_unique<ScratchArena>()) {
  pack(wgt, layout, act, *own_);
}

void IntWeightPanels::pack(const QuantizedMatrix& wgt, const VectorLayout& layout,
                           const IntActAttrs& act, ScratchArena& arena) {
  g_panels_packed.fetch_add(1, std::memory_order_relaxed);
  vector_size_ = layout.vector_size;
  block_len_ = layout.block_len();
  act_fmt_ = act.fmt;
  u8_bias_ = act.fmt.is_signed ? 128 : 0;

  // Vector column ranges (and the shape class they imply), precomputed
  // once per pack.
  auto* vr = arena.alloc_n<VecRange>(static_cast<std::size_t>(vpr_));
  bool all_even = true;
  std::int64_t max_len = 0, quad_cols = 0;
  for (std::int64_t v = 0; v < vpr_; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    vr[v] = VecRange{static_cast<std::int32_t>(c0), static_cast<std::int32_t>(c1 - c0)};
    all_even = all_even && (c1 - c0) % 2 == 0;
    max_len = std::max(max_len, c1 - c0);
    quad_cols += padded4(c1 - c0);
  }
  vr_ = vr;

  // Descriptor-time resolution: bind the shape class and the quant attrs,
  // ask the registry which implementations run. This is the only dispatch
  // this pack (and every row streamed through it) ever performs.
  kernels::KernelDesc desc;
  desc.op = kernels::OpKind::kIntPanel;
  desc.shape = {cols_, k_out_, max_len, all_even};
  desc.quant.act = {act.fmt.bits, act.fmt.is_signed};
  desc.quant.wgt = {wgt.fmt.bits, wgt.fmt.is_signed};
  desc.quant.full_bits =
      act.scale_bits + (wgt.two_level ? wgt.two_level->scale_fmt.bits : 0);
  panel_impl_ = &kernels::resolve_int_panel(desc);
  desc.op = kernels::OpKind::kPanelAcc;
  acc_impl_ = &kernels::resolve_panel_acc(desc);
  acc_fallback_ = kernels::portable_panel_acc().fn;

  // Pack the weight matrix into PNR-column panels once, in the layout the
  // resolved implementation consumes (see kernels/registry.h's
  // PanelLayout); every activation row then streams the panel with unit
  // stride instead of re-striding wgt.q per output element. Scales are
  // [v][j]; everything is zero-padded past k_out so the kernels never
  // branch on panel width.
  n_panels_ = (k_out_ + PNR - 1) / PNR;
  const kernels::PanelLayout pl = panel_impl_->layout;
  const int wb = wgt.fmt.bits;
  switch (pl) {
    case kernels::PanelLayout::kQuadInt8:
      panel_stride_ = quad_cols * PNR * static_cast<std::int64_t>(sizeof(std::int8_t));
      break;
    case kernels::PanelLayout::kBitPacked:
      // b bytes per column (8 codes x b bits) + 8 slack bytes so the
      // kernel's fixed 4/8-byte group loads never leave the panel.
      panel_stride_ = cols_ * wb + 8;
      break;
    case kernels::PanelLayout::kNibblePair:
      // One byte per column pair per output: (cols/2) * PNR nibble pairs.
      panel_stride_ = (cols_ / 2) * PNR;
      break;
    case kernels::PanelLayout::kNibbleQuad:
      // Two bytes per column quad per output.
      panel_stride_ = (quad_cols / 4) * 2 * PNR;
      break;
    default:
      panel_stride_ = cols_ * PNR * static_cast<std::int64_t>(sizeof(std::int16_t));
      break;
  }
  if (kernels::panel_layout_sub_byte(pl)) {
    wbits_ = wb;
  } else if (wb < 8) {
    g_panels_unpacked_materialized.fetch_add(1, std::memory_order_relaxed);
  }
  vcomp_off_ = (cols_ + 4 + 3) / 4 * 4;
  auto* pw = static_cast<unsigned char*>(
      arena.alloc(static_cast<std::size_t>(n_panels_ * panel_stride_)));
  auto* psq = arena.alloc_n<std::uint32_t>(static_cast<std::size_t>(n_panels_ * vpr_ * PNR));
  std::int32_t* ncomp = nullptr;
  if (pl == kernels::PanelLayout::kQuadInt8) {
    ncomp = arena.alloc_n<std::int32_t>(static_cast<std::size_t>(n_panels_ * vpr_ * PNR));
  }
  const std::int64_t psq_bytes =
      n_panels_ * vpr_ * PNR * static_cast<std::int64_t>(sizeof(std::uint32_t));
  resident_bytes_ = n_panels_ * panel_stride_ + psq_bytes +
                    (ncomp != nullptr
                         ? n_panels_ * vpr_ * PNR * static_cast<std::int64_t>(sizeof(std::int32_t))
                         : 0);
  baseline_bytes_ =
      n_panels_ * cols_ * PNR * static_cast<std::int64_t>(sizeof(std::int16_t)) + psq_bytes;

  for (std::int64_t kp = 0; kp < n_panels_; ++kp) {
    const std::int64_t k0 = kp * PNR;
    const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out_ - k0));
    unsigned char* pd = pw + kp * panel_stride_;
    switch (pl) {
      case kernels::PanelLayout::kPlain: {
        auto* vd = reinterpret_cast<std::int16_t*>(pd);
        for (std::int64_t c = 0; c < cols_; ++c) {
          for (int j = 0; j < PNR; ++j) {
            vd[c * PNR + j] = j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c)] : 0;
          }
        }
        break;
      }
      case kernels::PanelLayout::kPairInterleaved: {
        auto* vd = reinterpret_cast<std::int16_t*>(pd);
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::int64_t c0 = vr[v].c0, pairs = vr[v].len / 2;
          for (std::int64_t p = 0; p < pairs; ++p) {
            for (int j = 0; j < PNR; ++j) {
              for (int h = 0; h < 2; ++h) {
                vd[p * 2 * PNR + j * 2 + h] =
                    j < nr ? wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + 2 * p + h)]
                           : 0;
              }
            }
          }
          vd += pairs * 2 * PNR;
        }
        break;
      }
      case kernels::PanelLayout::kQuadInt8: {
        // int8 quads, zero-padded to a multiple of 4 per vector (the
        // padding neutralizes the kernel's 4-byte activation reads), plus
        // the compensation block: ncomp[v][j] = -bias * sum_c w[j][c],
        // the accumulator's initial value under the biased-u8 row (see
        // kernels/int_panel_impls.cpp). vnni_eligible guaranteed the
        // weights fit s8.
        auto* vd = reinterpret_cast<std::int8_t*>(pd);
        std::int32_t* nc = ncomp + kp * vpr_ * PNR;
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::int64_t c0 = vr[v].c0, len = vr[v].len;
          const std::int64_t quads = padded4(len) / 4;
          for (std::int64_t q = 0; q < quads; ++q) {
            for (int j = 0; j < PNR; ++j) {
              for (int h = 0; h < 4; ++h) {
                const std::int64_t c = 4 * q + h;
                vd[q * 4 * PNR + j * 4 + h] =
                    (j < nr && c < len)
                        ? static_cast<std::int8_t>(
                              wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + c)])
                        : 0;
              }
            }
          }
          for (int j = 0; j < PNR; ++j) {
            std::int32_t wsum = 0;
            if (j < nr) {
              for (std::int64_t c = 0; c < len; ++c) {
                wsum += wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + c)];
              }
            }
            nc[v * PNR + j] = -static_cast<std::int32_t>(u8_bias_) * wsum;
          }
          vd += quads * 4 * PNR;
        }
        break;
      }
      case kernels::PanelLayout::kBitPacked: {
        // Per column: one b-byte group holding the 8 output codes, LSB
        // first. Codes are two's-complement TRUNCATED (w & mask) — exact
        // over the signed b-bit range the eligibility predicate
        // guaranteed — and zero past k_out (code 0 decodes to 0).
        const auto mask = static_cast<std::uint64_t>((1 << wb) - 1);
        for (std::int64_t c = 0; c < cols_; ++c) {
          std::uint64_t bits = 0;
          for (int j = 0; j < nr; ++j) {
            const auto code = static_cast<std::uint64_t>(
                                  wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c)]) &
                              mask;
            bits |= code << (j * wb);
          }
          for (int h = 0; h < wb; ++h) {
            pd[c * wb + h] = static_cast<unsigned char>(bits >> (8 * h));
          }
        }
        std::memset(pd + cols_ * wb, 0, 8);  // group-load slack
        break;
      }
      case kernels::PanelLayout::kNibblePair: {
        // One byte per column pair per output: lo nibble = even column,
        // hi = odd (even vector lengths only, so pairs tile exactly).
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::int64_t c0 = vr[v].c0, pairs = vr[v].len / 2;
          for (std::int64_t p = 0; p < pairs; ++p) {
            for (int j = 0; j < PNR; ++j) {
              unsigned lo = 0, hi = 0;
              if (j < nr) {
                lo = static_cast<unsigned>(
                         wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + 2 * p)]) &
                     0xF;
                hi = static_cast<unsigned>(
                         wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + 2 * p + 1)]) &
                     0xF;
              }
              pd[p * PNR + j] = static_cast<unsigned char>(lo | (hi << 4));
            }
          }
          pd += pairs * PNR;
        }
        break;
      }
      case kernels::PanelLayout::kNibbleQuad: {
        // Two bytes per column quad per output: byte h packs columns
        // 4q+2h / 4q+2h+1 as lo/hi nibbles. Codes are BIASED UNSIGNED
        // (w + 8, in 1..15) — the vpdpbusd unsigned operand — with
        // padding code 0, which multiplies to zero against whatever the
        // kernel's 4-byte activation overread picks up.
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::int64_t c0 = vr[v].c0, len = vr[v].len;
          const std::int64_t quads = padded4(len) / 4;
          for (std::int64_t q = 0; q < quads; ++q) {
            for (int j = 0; j < PNR; ++j) {
              for (int h = 0; h < 2; ++h) {
                unsigned lo = 0, hi = 0;
                const std::int64_t ce = 4 * q + 2 * h, co = ce + 1;
                if (j < nr && ce < len) {
                  lo = static_cast<unsigned>(
                      wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + ce)] + 8);
                }
                if (j < nr && co < len) {
                  hi = static_cast<unsigned>(
                      wgt.q[static_cast<std::size_t>((k0 + j) * cols_ + c0 + co)] + 8);
                }
                pd[q * 2 * PNR + j * 2 + h] = static_cast<unsigned char>(lo | (hi << 4));
              }
            }
          }
          pd += quads * 2 * PNR;
        }
        break;
      }
    }
    std::uint32_t* sd = psq + kp * vpr_ * PNR;
    for (std::int64_t v = 0; v < vpr_; ++v) {
      for (int j = 0; j < PNR; ++j) {
        sd[v * PNR + j] = j < nr ? wgt.int_scale(k0 + j, v) : 0;
      }
    }
  }
  pw_ = pw;
  psq_ = psq;
  ncomp_ = ncomp;
}

}  // namespace vsq::detail
