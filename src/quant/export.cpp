#include "quant/export.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "quant/int_gemm.h"

namespace vsq {
namespace {

// Archive key helpers: each layer stores several named blobs.
std::string key(const std::string& layer, const char* what) { return layer + "/" + what; }

// Forward-program entries: "__program__/<index>/<layer>", data = {relu}.
// The "__" prefix cannot collide with layer names ("/meta" suffix keys).
constexpr const char* kProgramPrefix = "__program__/";

std::vector<float> to_float(const std::vector<std::int16_t>& v) {
  return {v.begin(), v.end()};
}

std::vector<float> to_float_u16(const std::vector<std::uint16_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

QuantizedLayerPackage export_gemm(const QuantizableGemm& gemm, const std::vector<float>& bias) {
  QuantizedLayerPackage pkg;
  pkg.name = gemm.gemm_name();
  const QuantSpec wspec = gemm.weight_spec();
  QuantSpec aspec = gemm.act_spec();
  if (!wspec.enabled || !aspec.enabled) {
    throw std::invalid_argument("export_gemm: layer is not quantized: " + pkg.name);
  }
  pkg.weights = quantize_weights_int(gemm.weight_matrix(), wspec);
  pkg.act_spec = aspec;
  const ActivationQuantizer* aq = gemm.act_quantizer();
  if (!aq || !aq->calibrated()) {
    throw std::logic_error("export_gemm: activation quantizer not calibrated: " + pkg.name);
  }
  pkg.act_amax = aq->static_amax();
  pkg.act_gamma = aq->gamma();
  pkg.bias = bias;
  return pkg;
}

Tensor run_packaged_layer(const QuantizedLayerPackage& layer, const Tensor& x2d,
                          int scale_product_bits, IntGemmStats* stats) {
  const QuantizedMatrix acts =
      quantize_activations_int(x2d, layer.act_spec, layer.act_amax, layer.act_gamma);
  Tensor y = int_gemm(acts, layer.weights, scale_product_bits, stats);
  if (!layer.bias.empty()) {
    const std::int64_t rows = y.shape()[0], outs = y.shape()[1];
    if (static_cast<std::int64_t>(layer.bias.size()) != outs) {
      throw std::invalid_argument("run_packaged_layer: bias size mismatch");
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t o = 0; o < outs; ++o) {
        y.at2(r, o) += layer.bias[static_cast<std::size_t>(o)];
      }
    }
  }
  return y;
}

void QuantizedModelPackage::save(const std::string& path) const {
  Archive a;
  for (const auto& [name, l] : layers) {
    const QuantizedMatrix& w = l.weights;
    a.put(key(name, "q"), {w.rows, w.cols()}, to_float(w.q));
    // meta: rows, cols, elem bits, signed, V, block, act bits, act signed,
    // act granularity (0 coarse / 1 per-vector), act scale bits, amax, gamma
    a.put(key(name, "meta"), {12},
          {static_cast<float>(w.rows), static_cast<float>(w.cols()),
           static_cast<float>(w.fmt.bits), w.fmt.is_signed ? 1.0f : 0.0f,
           static_cast<float>(w.layout.vector_size), static_cast<float>(w.layout.block),
           static_cast<float>(l.act_spec.fmt.bits), l.act_spec.fmt.is_signed ? 1.0f : 0.0f,
           l.act_spec.granularity == Granularity::kPerVector ? 1.0f : 0.0f,
           static_cast<float>(l.act_spec.scale_fmt.bits), l.act_amax, l.act_gamma});
    if (w.two_level) {
      a.put(key(name, "sq"), {static_cast<std::int64_t>(w.two_level->sq.size())},
            to_float_u16(w.two_level->sq));
      a.put(key(name, "gamma"), {static_cast<std::int64_t>(w.two_level->gamma.size())},
            w.two_level->gamma);
      a.put(key(name, "scale_bits"), {1}, {static_cast<float>(w.two_level->scale_fmt.bits)});
    } else {
      a.put(key(name, "coarse"), {static_cast<std::int64_t>(w.coarse_scales.size())},
            w.coarse_scales);
    }
    if (!l.bias.empty()) {
      a.put(key(name, "bias"), {static_cast<std::int64_t>(l.bias.size())}, l.bias);
    }
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    a.put(kProgramPrefix + std::to_string(i) + "/" + program[i].layer, {1},
          {program[i].relu ? 1.0f : 0.0f});
  }
  a.save(path);
}

QuantizedModelPackage QuantizedModelPackage::load(const std::string& path) {
  const Archive a = Archive::load(path);
  QuantizedModelPackage pkg;
  std::vector<std::pair<std::size_t, ForwardStep>> prog;
  for (const std::string& entry : a.names()) {
    if (entry.rfind(kProgramPrefix, 0) == 0) {
      const std::string rest = entry.substr(std::string(kProgramPrefix).size());
      const auto sep = rest.find('/');
      if (sep == std::string::npos) {
        throw std::runtime_error("QuantizedModelPackage: malformed program entry " + entry);
      }
      ForwardStep step;
      step.layer = rest.substr(sep + 1);
      step.relu = a.get(entry).data.at(0) != 0.0f;
      prog.emplace_back(std::stoul(rest.substr(0, sep)), std::move(step));
      continue;
    }
    const auto slash = entry.rfind("/meta");
    if (slash == std::string::npos || slash + 5 != entry.size()) continue;
    const std::string name = entry.substr(0, slash);

    const auto& meta = a.get(entry).data;
    QuantizedLayerPackage l;
    l.name = name;
    QuantizedMatrix& w = l.weights;
    w.rows = static_cast<std::int64_t>(meta[0]);
    w.layout.cols = static_cast<std::int64_t>(meta[1]);
    w.fmt = QuantFormat{static_cast<int>(meta[2]), meta[3] != 0.0f};
    w.layout.vector_size = static_cast<int>(meta[4]);
    w.layout.block = static_cast<std::int64_t>(meta[5]);

    const auto& q = a.get(key(name, "q")).data;
    w.q.assign(q.size(), 0);
    for (std::size_t i = 0; i < q.size(); ++i) w.q[i] = static_cast<std::int16_t>(q[i]);

    if (a.contains(key(name, "sq"))) {
      TwoLevelScales tl;
      tl.scale_fmt = QuantFormat{static_cast<int>(a.get(key(name, "scale_bits")).data[0]), false};
      tl.coarse_axis = CoarseAxis::kPerRow;
      tl.layout = w.layout;
      tl.rows = w.rows;
      const auto& sq = a.get(key(name, "sq")).data;
      tl.sq.assign(sq.size(), 0);
      for (std::size_t i = 0; i < sq.size(); ++i) tl.sq[i] = static_cast<std::uint16_t>(sq[i]);
      tl.gamma = a.get(key(name, "gamma")).data;
      if (tl.gamma.size() == 1) tl.coarse_axis = CoarseAxis::kPerTensor;
      w.two_level = std::move(tl);
    } else {
      w.coarse_scales = a.get(key(name, "coarse")).data;
    }

    l.act_spec.enabled = true;
    l.act_spec.fmt = QuantFormat{static_cast<int>(meta[6]), meta[7] != 0.0f};
    l.act_spec.vector_size = w.layout.vector_size;
    l.act_spec.channel_block = w.layout.block;
    if (meta[8] != 0.0f) {
      l.act_spec.granularity = Granularity::kPerVector;
      l.act_spec.scale_dtype = ScaleDtype::kTwoLevelInt;
      l.act_spec.scale_fmt = QuantFormat{static_cast<int>(meta[9]), false};
      l.act_spec.dynamic = true;
    } else {
      l.act_spec.granularity = Granularity::kPerTensor;
    }
    l.act_amax = meta[10];
    l.act_gamma = meta[11];
    if (a.contains(key(name, "bias"))) l.bias = a.get(key(name, "bias")).data;

    pkg.layers[name] = std::move(l);
  }
  std::sort(prog.begin(), prog.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [idx, step] : prog) pkg.program.push_back(std::move(step));
  return pkg;
}

QuantizedModelRunner::QuantizedModelRunner(const QuantizedModelPackage& pkg,
                                           int scale_product_bits)
    : pkg_(&pkg),
      program_(pkg.program.empty() ? mlp_program(pkg) : pkg.program),
      scale_product_bits_(scale_product_bits) {
  if (program_.empty()) {
    throw std::invalid_argument("QuantizedModelRunner: package has no layers");
  }
  steps_.reserve(program_.size());
  std::int64_t cols = -1;
  for (const ForwardStep& step : program_) {
    const auto it = pkg.layers.find(step.layer);
    if (it == pkg.layers.end()) {
      throw std::invalid_argument("QuantizedModelRunner: program names missing layer " +
                                  step.layer);
    }
    const QuantizedMatrix& w = it->second.weights;
    if (cols >= 0 && w.cols() != cols) {
      throw std::invalid_argument("QuantizedModelRunner: layer " + step.layer + " expects " +
                                  std::to_string(w.cols()) + " inputs, previous layer produces " +
                                  std::to_string(cols));
    }
    cols = w.rows;  // this layer's outputs feed the next layer
    steps_.push_back(&it->second);
  }
  in_features_ = steps_.front()->weights.cols();
  out_features_ = steps_.back()->weights.rows;
}

std::vector<ForwardStep> QuantizedModelRunner::mlp_program(const QuantizedModelPackage& pkg) {
  std::vector<ForwardStep> program;
  for (const auto& [name, l] : pkg.layers) program.push_back({name, true});
  if (!program.empty()) program.back().relu = false;
  return program;
}

Tensor QuantizedModelRunner::forward(const Tensor& x, IntGemmStats* stats) const {
  if (x.shape().rank() != 2 || x.shape()[1] != in_features_) {
    throw std::invalid_argument("QuantizedModelRunner: input must be [rows, " +
                                std::to_string(in_features_) + "]");
  }
  Tensor h = x;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    h = run_packaged_layer(*steps_[i], h, scale_product_bits_, stats);
    if (program_[i].relu) {
      for (auto& v : h.span()) v = v > 0.0f ? v : 0.0f;
    }
  }
  return h;
}

IntegerExecutionGuard::IntegerExecutionGuard(std::vector<QuantizableGemm*> gemms,
                                             const QuantizedModelPackage& pkg,
                                             int scale_product_bits)
    : gemms_(std::move(gemms)) {
  // Validate up-front so a missing entry cannot leave a half-installed model.
  for (const QuantizableGemm* g : gemms_) {
    if (pkg.layers.find(g->gemm_name()) == pkg.layers.end()) {
      throw std::invalid_argument("IntegerExecutionGuard: no package entry for layer " +
                                  g->gemm_name());
    }
  }
  for (QuantizableGemm* g : gemms_) {
    // The map node is stable for the guard's lifetime (caller keeps pkg
    // alive, as the constructor reference implies).
    const QuantizedLayerPackage* layer = &pkg.layers.at(g->gemm_name());
    g->set_gemm_override([this, layer, scale_product_bits](const Tensor& x2d) {
      return run_packaged_layer(*layer, x2d, scale_product_bits, &stats_);
    });
  }
}

IntegerExecutionGuard::~IntegerExecutionGuard() {
  for (QuantizableGemm* g : gemms_) g->set_gemm_override({});
}

}  // namespace vsq
