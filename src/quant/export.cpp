#include "quant/export.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "nn/conv2d.h"
#include "quant/int_conv.h"
#include "quant/int_gemm.h"
#include "tensor/ops.h"

namespace vsq {
namespace {

// Archive key helpers: each layer stores several named blobs.
std::string key(const std::string& layer, const char* what) { return layer + "/" + what; }

// Forward-program entries: "__program__/<index>/<layer>", data = {relu}
// for plain GEMM steps (the original encoding, so MLP archives stay
// byte-stable) or {relu, op} for the conv-era ops.
constexpr const char* kProgramPrefix = "__program__/";

// Input image geometry of spatial programs: {in_h, in_w, in_c}.
constexpr const char* kInputGeomKey = "__input__";

ForwardStep::Op op_from_code(int code, const std::string& entry) {
  using Op = ForwardStep::Op;
  switch (code) {
    case 0: return Op::kGemm;
    case 1: return Op::kConv;
    case 2: return Op::kConvSaved;
    case 3: return Op::kSave;
    case 4: return Op::kAddSaved;
    case 5: return Op::kGlobalPool;
    default:
      throw std::runtime_error("QuantizedModelPackage: unknown program op in " + entry);
  }
}

bool op_uses_layer(ForwardStep::Op op) {
  using Op = ForwardStep::Op;
  return op == Op::kGemm || op == Op::kConv || op == Op::kConvSaved;
}

void relu_inplace(Tensor& t) {
  for (auto& v : t.span()) v = v > 0.0f ? v : 0.0f;
}

// [N, H, W, C] -> [N, C] mean over the spatial positions of each image.
// Per-(image, channel) accumulation in a fixed order, so outputs are
// bit-identical for any batch composition and thread count.
Tensor global_avg_pool_nhwc(const Tensor& x) {
  const std::int64_t n = x.shape()[0], h = x.shape()[1], w = x.shape()[2], c = x.shape()[3];
  Tensor y(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* src = x.data();
  float* dst = y.data();
  for (std::int64_t img = 0; img < n; ++img) {
    float* row = dst + img * c;
    const float* base = src + img * h * w * c;
    for (std::int64_t p = 0; p < h * w; ++p) {
      const float* cell = base + p * c;
      for (std::int64_t ch = 0; ch < c; ++ch) row[ch] += cell[ch];
    }
    for (std::int64_t ch = 0; ch < c; ++ch) row[ch] *= inv;
  }
  return y;
}

std::vector<float> to_float(const std::vector<std::int16_t>& v) {
  return {v.begin(), v.end()};
}

std::vector<float> to_float_u16(const std::vector<std::uint16_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

QuantizedLayerPackage export_gemm(const QuantizableGemm& gemm, const std::vector<float>& bias) {
  QuantizedLayerPackage pkg;
  pkg.name = gemm.gemm_name();
  const QuantSpec wspec = gemm.weight_spec();
  QuantSpec aspec = gemm.act_spec();
  if (!wspec.enabled || !aspec.enabled) {
    throw std::invalid_argument("export_gemm: layer is not quantized: " + pkg.name);
  }
  pkg.weights = quantize_weights_int(gemm.weight_matrix(), wspec);
  pkg.act_spec = aspec;
  const ActivationQuantizer* aq = gemm.act_quantizer();
  if (!aq || !aq->calibrated()) {
    throw std::logic_error("export_gemm: activation quantizer not calibrated: " + pkg.name);
  }
  pkg.act_amax = aq->static_amax();
  pkg.act_gamma = aq->gamma();
  pkg.bias = bias;
  return pkg;
}

QuantizedLayerPackage export_conv(const Conv2d& conv) {
  QuantizedLayerPackage pkg = export_gemm(
      conv, conv.has_bias() ? conv.bias().value.to_vector() : std::vector<float>{});
  pkg.kind = PackagedLayerKind::kConv;
  pkg.kernel = conv.kernel();
  pkg.stride = conv.stride();
  pkg.pad = conv.pad();
  return pkg;
}

Tensor run_packaged_layer(const QuantizedLayerPackage& layer, const Tensor& x2d,
                          int scale_product_bits, IntGemmStats* stats) {
  const QuantizedMatrix acts =
      quantize_activations_int(x2d, layer.act_spec, layer.act_amax, layer.act_gamma);
  Tensor y = int_gemm(acts, layer.weights, scale_product_bits, stats);
  if (!layer.bias.empty()) {
    const std::int64_t rows = y.shape()[0], outs = y.shape()[1];
    if (static_cast<std::int64_t>(layer.bias.size()) != outs) {
      throw std::invalid_argument("run_packaged_layer: bias size mismatch");
    }
    add_row_bias(y.data(), rows, outs, layer.bias.data());
  }
  return y;
}

Tensor run_packaged_conv_layer(const QuantizedLayerPackage& layer, const Tensor& x4d,
                               int scale_product_bits, IntGemmStats* stats) {
  if (layer.kind != PackagedLayerKind::kConv) {
    throw std::invalid_argument("run_packaged_conv_layer: " + layer.name +
                                " is not a conv package");
  }
  if (x4d.shape().rank() != 4) {
    throw std::invalid_argument("run_packaged_conv_layer: input must be NHWC");
  }
  const ConvGeom g{x4d.shape()[1], x4d.shape()[2], x4d.shape()[3], layer.kernel, layer.stride,
                   layer.pad};
  return int_conv(x4d, g, layer.weights, layer.act_spec, layer.act_amax, layer.act_gamma,
                  layer.bias, scale_product_bits, stats);
}

void QuantizedModelPackage::save(const std::string& path) const {
  Archive a;
  for (const auto& [name, l] : layers) {
    const QuantizedMatrix& w = l.weights;
    a.put(key(name, "q"), {w.rows, w.cols()}, to_float(w.q));
    // meta: rows, cols, elem bits, signed, V, block, act bits, act signed,
    // act granularity (0 coarse / 1 per-vector), act scale bits, amax, gamma
    a.put(key(name, "meta"), {12},
          {static_cast<float>(w.rows), static_cast<float>(w.cols()),
           static_cast<float>(w.fmt.bits), w.fmt.is_signed ? 1.0f : 0.0f,
           static_cast<float>(w.layout.vector_size), static_cast<float>(w.layout.block),
           static_cast<float>(l.act_spec.fmt.bits), l.act_spec.fmt.is_signed ? 1.0f : 0.0f,
           l.act_spec.granularity == Granularity::kPerVector ? 1.0f : 0.0f,
           static_cast<float>(l.act_spec.scale_fmt.bits), l.act_amax, l.act_gamma});
    if (w.two_level) {
      a.put(key(name, "sq"), {static_cast<std::int64_t>(w.two_level->sq.size())},
            to_float_u16(w.two_level->sq));
      a.put(key(name, "gamma"), {static_cast<std::int64_t>(w.two_level->gamma.size())},
            w.two_level->gamma);
      a.put(key(name, "scale_bits"), {1}, {static_cast<float>(w.two_level->scale_fmt.bits)});
    } else {
      a.put(key(name, "coarse"), {static_cast<std::int64_t>(w.coarse_scales.size())},
            w.coarse_scales);
    }
    if (!l.bias.empty()) {
      a.put(key(name, "bias"), {static_cast<std::int64_t>(l.bias.size())}, l.bias);
    }
    if (l.kind == PackagedLayerKind::kConv) {
      a.put(key(name, "conv"), {3},
            {static_cast<float>(l.kernel), static_cast<float>(l.stride),
             static_cast<float>(l.pad)});
    }
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    const std::string k = kProgramPrefix + std::to_string(i) + "/" + program[i].layer;
    const float relu = program[i].relu ? 1.0f : 0.0f;
    if (program[i].op == ForwardStep::Op::kGemm) {
      a.put(k, {1}, {relu});  // original encoding, keeps MLP archives byte-stable
    } else {
      a.put(k, {2}, {relu, static_cast<float>(program[i].op)});
    }
  }
  if (in_h > 0) {
    a.put(kInputGeomKey, {3},
          {static_cast<float>(in_h), static_cast<float>(in_w), static_cast<float>(in_c)});
  }
  a.save(path);
}

QuantizedModelPackage QuantizedModelPackage::load(const std::string& path) {
  const Archive a = Archive::load(path);
  QuantizedModelPackage pkg;
  std::vector<std::pair<std::size_t, ForwardStep>> prog;
  for (const std::string& entry : a.names()) {
    if (entry == kInputGeomKey) {
      const auto& geom = a.get(entry).data;
      pkg.in_h = static_cast<std::int64_t>(geom.at(0));
      pkg.in_w = static_cast<std::int64_t>(geom.at(1));
      pkg.in_c = static_cast<std::int64_t>(geom.at(2));
      continue;
    }
    if (entry.rfind(kProgramPrefix, 0) == 0) {
      const std::string rest = entry.substr(std::string(kProgramPrefix).size());
      const auto sep = rest.find('/');
      if (sep == std::string::npos) {
        throw std::runtime_error("QuantizedModelPackage: malformed program entry " + entry);
      }
      ForwardStep step;
      step.layer = rest.substr(sep + 1);
      const auto& data = a.get(entry).data;
      step.relu = data.at(0) != 0.0f;
      if (data.size() > 1) step.op = op_from_code(static_cast<int>(data[1]), entry);
      prog.emplace_back(std::stoul(rest.substr(0, sep)), std::move(step));
      continue;
    }
    const auto slash = entry.rfind("/meta");
    if (slash == std::string::npos || slash + 5 != entry.size()) continue;
    const std::string name = entry.substr(0, slash);

    const auto& meta = a.get(entry).data;
    QuantizedLayerPackage l;
    l.name = name;
    QuantizedMatrix& w = l.weights;
    w.rows = static_cast<std::int64_t>(meta[0]);
    w.layout.cols = static_cast<std::int64_t>(meta[1]);
    w.fmt = QuantFormat{static_cast<int>(meta[2]), meta[3] != 0.0f};
    w.layout.vector_size = static_cast<int>(meta[4]);
    w.layout.block = static_cast<std::int64_t>(meta[5]);

    const auto& q = a.get(key(name, "q")).data;
    w.q.assign(q.size(), 0);
    for (std::size_t i = 0; i < q.size(); ++i) w.q[i] = static_cast<std::int16_t>(q[i]);

    if (a.contains(key(name, "sq"))) {
      TwoLevelScales tl;
      tl.scale_fmt = QuantFormat{static_cast<int>(a.get(key(name, "scale_bits")).data[0]), false};
      tl.coarse_axis = CoarseAxis::kPerRow;
      tl.layout = w.layout;
      tl.rows = w.rows;
      const auto& sq = a.get(key(name, "sq")).data;
      tl.sq.assign(sq.size(), 0);
      for (std::size_t i = 0; i < sq.size(); ++i) tl.sq[i] = static_cast<std::uint16_t>(sq[i]);
      tl.gamma = a.get(key(name, "gamma")).data;
      if (tl.gamma.size() == 1) tl.coarse_axis = CoarseAxis::kPerTensor;
      w.two_level = std::move(tl);
    } else {
      w.coarse_scales = a.get(key(name, "coarse")).data;
    }

    l.act_spec.enabled = true;
    l.act_spec.fmt = QuantFormat{static_cast<int>(meta[6]), meta[7] != 0.0f};
    l.act_spec.vector_size = w.layout.vector_size;
    l.act_spec.channel_block = w.layout.block;
    if (meta[8] != 0.0f) {
      l.act_spec.granularity = Granularity::kPerVector;
      l.act_spec.scale_dtype = ScaleDtype::kTwoLevelInt;
      l.act_spec.scale_fmt = QuantFormat{static_cast<int>(meta[9]), false};
      l.act_spec.dynamic = true;
    } else {
      l.act_spec.granularity = Granularity::kPerTensor;
    }
    l.act_amax = meta[10];
    l.act_gamma = meta[11];
    if (a.contains(key(name, "bias"))) l.bias = a.get(key(name, "bias")).data;
    if (a.contains(key(name, "conv"))) {
      const auto& geom = a.get(key(name, "conv")).data;
      l.kind = PackagedLayerKind::kConv;
      l.kernel = static_cast<std::int64_t>(geom.at(0));
      l.stride = static_cast<std::int64_t>(geom.at(1));
      l.pad = static_cast<std::int64_t>(geom.at(2));
    }

    pkg.layers[name] = std::move(l);
  }
  std::sort(prog.begin(), prog.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [idx, step] : prog) pkg.program.push_back(std::move(step));
  return pkg;
}

namespace {

// Shape-propagation state of the runner's static validation pass: either a
// spatial NHWC activation or a flat feature vector.
struct ActDims {
  bool spatial = false;
  std::int64_t h = 0, w = 0, c = 0;  // spatial
  std::int64_t features = -1;        // flat (-1 = not yet known)

  bool operator==(const ActDims&) const = default;
};

}  // namespace

QuantizedModelRunner::QuantizedModelRunner(const QuantizedModelPackage& pkg,
                                           int scale_product_bits)
    : pkg_(&pkg),
      program_(pkg.program.empty() ? mlp_program(pkg) : pkg.program),
      scale_product_bits_(scale_product_bits) {
  using Op = ForwardStep::Op;
  if (program_.empty()) {
    throw std::invalid_argument("QuantizedModelRunner: package has no layers");
  }
  const bool any_spatial =
      std::any_of(program_.begin(), program_.end(), [](const ForwardStep& s) {
        return s.op == Op::kConv || s.op == Op::kConvSaved || s.op == Op::kGlobalPool;
      });
  if (any_spatial && (pkg.in_h <= 0 || pkg.in_w <= 0 || pkg.in_c <= 0)) {
    throw std::invalid_argument(
        "QuantizedModelRunner: spatial program but package has no input geometry");
  }
  spatial_ = any_spatial;

  // Static shape propagation: every step's input/output dims are fixed up
  // front (batch excepted), so forward() never re-validates.
  ActDims cur;
  if (spatial_) cur = ActDims{true, pkg.in_h, pkg.in_w, pkg.in_c, -1};
  std::optional<ActDims> saved;
  // forward()'s kSave is a shallow copy, and h starts as a view of the
  // caller's input: a residual add is only safe once a layer op has
  // produced a fresh h since the last save (true for every generated
  // program; reject hand-crafted ones that would alias-and-mutate).
  bool fresh_h = false;
  steps_.reserve(program_.size());
  for (const ForwardStep& step : program_) {
    const QuantizedLayerPackage* layer = nullptr;
    if (op_uses_layer(step.op)) {
      const auto it = pkg.layers.find(step.layer);
      if (it == pkg.layers.end()) {
        throw std::invalid_argument("QuantizedModelRunner: program names missing layer " +
                                    step.layer);
      }
      layer = &it->second;
    }
    steps_.push_back(layer);
    // ReLU after a step applies to the main-path activation h. Reject it
    // on ops that write `saved` (or alias h with it): silently relu-ing
    // the wrong tensor would corrupt outputs with no diagnostic.
    if (step.relu && (step.op == Op::kSave || step.op == Op::kConvSaved)) {
      throw std::invalid_argument("QuantizedModelRunner: relu on a saved-slot step");
    }
    switch (step.op) {
      case Op::kGemm: {
        if (cur.spatial) {
          throw std::invalid_argument("QuantizedModelRunner: gemm step " + step.layer +
                                      " on a spatial activation (missing pool?)");
        }
        const QuantizedMatrix& w = layer->weights;
        if (cur.features >= 0 && w.cols() != cur.features) {
          throw std::invalid_argument("QuantizedModelRunner: layer " + step.layer +
                                      " expects " + std::to_string(w.cols()) +
                                      " inputs, previous step produces " +
                                      std::to_string(cur.features));
        }
        if (cur.features < 0) in_features_ = w.cols();
        cur.features = w.rows;
        fresh_h = true;
        break;
      }
      case Op::kConv:
      case Op::kConvSaved: {
        ActDims* d = &cur;
        if (step.op == Op::kConvSaved) {
          if (!saved) {
            throw std::invalid_argument("QuantizedModelRunner: shortcut conv " + step.layer +
                                        " with no saved activation");
          }
          d = &*saved;
        }
        if (!d->spatial) {
          throw std::invalid_argument("QuantizedModelRunner: conv step " + step.layer +
                                      " on a flat activation");
        }
        if (layer->kind != PackagedLayerKind::kConv) {
          throw std::invalid_argument("QuantizedModelRunner: " + step.layer +
                                      " is not a conv package");
        }
        if (layer->conv_in_channels() != d->c) {
          throw std::invalid_argument("QuantizedModelRunner: conv " + step.layer + " expects " +
                                      std::to_string(layer->conv_in_channels()) +
                                      " channels, activation has " + std::to_string(d->c));
        }
        const ConvGeom g{d->h, d->w, d->c, layer->kernel, layer->stride, layer->pad};
        if (g.out_h() <= 0 || g.out_w() <= 0) {
          throw std::invalid_argument("QuantizedModelRunner: conv " + step.layer +
                                      " produces an empty output");
        }
        *d = ActDims{true, g.out_h(), g.out_w(), layer->weights.rows, -1};
        if (step.op == Op::kConv) fresh_h = true;
        break;
      }
      case Op::kSave:
        saved = cur;
        fresh_h = false;
        break;
      case Op::kAddSaved:
        if (!saved || !(*saved == cur)) {
          throw std::invalid_argument(
              "QuantizedModelRunner: residual add with mismatched shapes");
        }
        if (!fresh_h) {
          throw std::invalid_argument(
              "QuantizedModelRunner: residual add would alias the saved activation");
        }
        break;
      case Op::kGlobalPool:
        if (!cur.spatial) {
          throw std::invalid_argument("QuantizedModelRunner: pool step on a flat activation");
        }
        cur = ActDims{false, 0, 0, 0, cur.c};
        fresh_h = true;
        break;
    }
  }
  if (spatial_) in_features_ = pkg.in_h * pkg.in_w * pkg.in_c;
  if (in_features_ <= 0) {
    throw std::invalid_argument("QuantizedModelRunner: program has no input layer");
  }
  out_features_ = cur.spatial ? cur.h * cur.w * cur.c : cur.features;
}

std::vector<ForwardStep> QuantizedModelRunner::mlp_program(const QuantizedModelPackage& pkg) {
  std::vector<ForwardStep> program;
  for (const auto& [name, l] : pkg.layers) program.push_back({name, true});
  if (!program.empty()) program.back().relu = false;
  return program;
}

Tensor QuantizedModelRunner::forward(const Tensor& x, IntGemmStats* stats) const {
  using Op = ForwardStep::Op;
  if (x.shape().rank() != 2 || x.shape()[1] != in_features_) {
    throw std::invalid_argument("QuantizedModelRunner: input must be [rows, " +
                                std::to_string(in_features_) + "]");
  }
  const std::int64_t rows = x.shape()[0];
  Tensor h = spatial_ ? x.reshape(Shape{rows, pkg_->in_h, pkg_->in_w, pkg_->in_c}) : x;
  Tensor saved;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    switch (program_[i].op) {
      case Op::kGemm:
        h = run_packaged_layer(*steps_[i], h, scale_product_bits_, stats);
        break;
      case Op::kConv:
        h = run_packaged_conv_layer(*steps_[i], h, scale_product_bits_, stats);
        break;
      case Op::kConvSaved:
        saved = run_packaged_conv_layer(*steps_[i], saved, scale_product_bits_, stats);
        break;
      case Op::kSave:
        saved = h;  // shallow: the next conv produces a fresh h
        break;
      case Op::kAddSaved:
        add_inplace(h, saved);
        break;
      case Op::kGlobalPool:
        h = global_avg_pool_nhwc(h);
        break;
    }
    if (program_[i].relu) relu_inplace(h);
  }
  if (h.shape().rank() != 2) h = h.reshape(Shape{rows, out_features_});
  return h;
}

IntegerExecutionGuard::IntegerExecutionGuard(std::vector<QuantizableGemm*> gemms,
                                             const QuantizedModelPackage& pkg,
                                             int scale_product_bits)
    : gemms_(std::move(gemms)) {
  // Validate up-front so a missing entry cannot leave a half-installed model.
  for (const QuantizableGemm* g : gemms_) {
    if (pkg.layers.find(g->gemm_name()) == pkg.layers.end()) {
      throw std::invalid_argument("IntegerExecutionGuard: no package entry for layer " +
                                  g->gemm_name());
    }
  }
  for (QuantizableGemm* g : gemms_) {
    // The map node is stable for the guard's lifetime (caller keeps pkg
    // alive, as the constructor reference implies).
    const QuantizedLayerPackage* layer = &pkg.layers.at(g->gemm_name());
    g->set_gemm_override([this, layer, scale_product_bits](const Tensor& x2d) {
      return run_packaged_layer(*layer, x2d, scale_product_bits, &stats_);
    });
  }
}

IntegerExecutionGuard::~IntegerExecutionGuard() {
  for (QuantizableGemm* g : gemms_) g->set_gemm_override({});
}

}  // namespace vsq
