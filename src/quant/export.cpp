#include "quant/export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fault/failpoint.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/softmax.h"
#include "quant/int_conv.h"
#include "quant/int_gemm.h"
#include "quant/int_kernel.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vsq {
namespace {

// Archive key helpers: each layer stores several named blobs.
std::string key(const std::string& layer, const char* what) { return layer + "/" + what; }

// Forward-program entries: "__program__/<index>/<layer>", data = {relu}
// for plain GEMM steps (the original encoding, so MLP archives stay
// byte-stable) or {relu, op} for the conv-era ops.
constexpr const char* kProgramPrefix = "__program__/";

// Input image geometry of spatial programs: {in_h, in_w, in_c}.
constexpr const char* kInputGeomKey = "__input__";

// Sequence geometry of transformer programs: {max_seq, dim, heads}.
constexpr const char* kSeqGeomKey = "__seq__";

// Fp parameter entries of transformer programs. Layernorm:
// "__ln__/<name>" = {dim, gamma[dim], beta[dim]}. Embedding:
// "__emb__/<name>" = {vocab, max_len, dim, tok[vocab*dim], pos[max_len*dim]}.
// Both are self-describing so load order never matters.
constexpr const char* kLayerNormPrefix = "__ln__/";
constexpr const char* kEmbeddingPrefix = "__emb__/";

ForwardStep::Op op_from_code(int code, const std::string& entry) {
  using Op = ForwardStep::Op;
  switch (code) {
    case 0: return Op::kGemm;
    case 1: return Op::kConv;
    case 2: return Op::kConvSaved;
    case 3: return Op::kSave;
    case 4: return Op::kAddSaved;
    case 5: return Op::kGlobalPool;
    case 6: return Op::kEmbed;
    case 7: return Op::kLayerNorm;
    case 8: return Op::kAttention;
    case 9: return Op::kSoftmax;
    case 10: return Op::kGelu;
    default:
      throw std::runtime_error("QuantizedModelPackage: unknown program op in " + entry);
  }
}

bool op_uses_layer(ForwardStep::Op op) {
  using Op = ForwardStep::Op;
  return op == Op::kGemm || op == Op::kConv || op == Op::kConvSaved;
}

bool op_is_sequence(ForwardStep::Op op) {
  using Op = ForwardStep::Op;
  return op == Op::kEmbed || op == Op::kLayerNorm || op == Op::kAttention;
}

void relu_inplace(Tensor& t) {
  for (auto& v : t.span()) v = v > 0.0f ? v : 0.0f;
}

// [N, H, W, C] -> [N, C] mean over the spatial positions of each image.
// Per-(image, channel) accumulation in a fixed order, so outputs are
// bit-identical for any batch composition and thread count.
Tensor global_avg_pool_nhwc(const Tensor& x) {
  const std::int64_t n = x.shape()[0], h = x.shape()[1], w = x.shape()[2], c = x.shape()[3];
  Tensor y(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* src = x.data();
  float* dst = y.data();
  for (std::int64_t img = 0; img < n; ++img) {
    float* row = dst + img * c;
    const float* base = src + img * h * w * c;
    for (std::int64_t p = 0; p < h * w; ++p) {
      const float* cell = base + p * c;
      for (std::int64_t ch = 0; ch < c; ++ch) row[ch] += cell[ch];
    }
    for (std::int64_t ch = 0; ch < c; ++ch) row[ch] *= inv;
  }
  return y;
}

std::vector<float> to_float(const std::vector<std::int16_t>& v) {
  return {v.begin(), v.end()};
}

std::vector<float> to_float_u16(const std::vector<std::uint16_t>& v) {
  return {v.begin(), v.end()};
}

// Integer metadata travels through the archive as float. A corrupted
// archive (truncation is caught earlier, but a bit flip is not) can turn
// any of those floats into NaN or a huge value, and casting such a float
// to an integer type is undefined behavior — so every conversion below is
// range-checked (NaN fails the comparison) and throws the same clean
// std::runtime_error the archive layer uses.
std::int64_t checked_i64(float v, std::int64_t lo, std::int64_t hi, const std::string& what) {
  if (!(v >= static_cast<float>(lo) && v <= static_cast<float>(hi))) {
    throw std::runtime_error("QuantizedModelPackage: " + what + " out of range");
  }
  return static_cast<std::int64_t>(v);
}

int checked_bits(float v, const std::string& what) {
  // int16 element storage and the format's shift arithmetic cap usable
  // widths well below 16; anything outside is corruption, not a config.
  return static_cast<int>(checked_i64(v, 1, 15, what));
}

int checked_scale_bits(float v, const std::string& what) {
  // Unsigned scale widths go one wider than element widths: sq is stored
  // as uint16 and MacConfig accepts up to 16-bit scales (a 16+16-bit
  // scale product still fits the uint32 multiplier).
  return static_cast<int>(checked_i64(v, 1, 16, what));
}

void check_size(std::size_t got, std::uint64_t want, const std::string& what) {
  if (got != want) {
    throw std::runtime_error("QuantizedModelPackage: " + what + " has inconsistent size");
  }
}

// Required sub-entry lookup during load: a corrupted archive can lose any
// entry (a flipped name byte is enough), and that must surface as the
// runtime_error corruption class, not Archive::get's out_of_range.
const ArchiveEntry& need(const Archive& a, const std::string& k) {
  if (!a.contains(k)) {
    throw std::runtime_error("QuantizedModelPackage: missing entry " + k);
  }
  return a.get(k);
}

}  // namespace

QuantizedLayerPackage export_gemm(const QuantizableGemm& gemm, const std::vector<float>& bias) {
  QuantizedLayerPackage pkg;
  pkg.name = gemm.gemm_name();
  const QuantSpec wspec = gemm.weight_spec();
  QuantSpec aspec = gemm.act_spec();
  if (!wspec.enabled || !aspec.enabled) {
    throw std::invalid_argument("export_gemm: layer is not quantized: " + pkg.name);
  }
  pkg.weights = quantize_weights_int(gemm.weight_matrix(), wspec);
  pkg.act_spec = aspec;
  const ActivationQuantizer* aq = gemm.act_quantizer();
  if (!aq || !aq->calibrated()) {
    throw std::logic_error("export_gemm: activation quantizer not calibrated: " + pkg.name);
  }
  pkg.act_amax = aq->static_amax();
  pkg.act_gamma = aq->gamma();
  pkg.bias = bias;
  return pkg;
}

QuantizedLayerPackage export_conv(const Conv2d& conv) {
  QuantizedLayerPackage pkg = export_gemm(
      conv, conv.has_bias() ? conv.bias().value.to_vector() : std::vector<float>{});
  pkg.kind = PackagedLayerKind::kConv;
  pkg.kernel = conv.kernel();
  pkg.stride = conv.stride();
  pkg.pad = conv.pad();
  return pkg;
}

namespace {

// Shared body of the gemm-layer paths: quantize the batch, run the packed
// (or per-call-packing, prepacked == nullptr) integer GEMM, apply bias.
Tensor gemm_layer_exec(const QuantizedLayerPackage& layer, const Tensor& x2d,
                       int scale_product_bits, IntGemmStats* stats,
                       const detail::IntWeightPanels* prepacked) {
  const QuantizedMatrix acts =
      quantize_activations_int(x2d, layer.act_spec, layer.act_amax, layer.act_gamma);
  Tensor y = detail::int_gemm_packed(acts, layer.weights, scale_product_bits, stats, prepacked);
  if (!layer.bias.empty()) {
    const std::int64_t rows = y.shape()[0], outs = y.shape()[1];
    if (static_cast<std::int64_t>(layer.bias.size()) != outs) {
      throw std::invalid_argument("run_packaged_layer: bias size mismatch");
    }
    add_row_bias(y.data(), rows, outs, layer.bias.data());
  }
  return y;
}

Tensor conv_layer_exec(const QuantizedLayerPackage& layer, const Tensor& x4d,
                       int scale_product_bits, IntGemmStats* stats,
                       const detail::IntWeightPanels* prepacked) {
  if (layer.kind != PackagedLayerKind::kConv) {
    throw std::invalid_argument("run_packaged_conv_layer: " + layer.name +
                                " is not a conv package");
  }
  if (x4d.shape().rank() != 4) {
    throw std::invalid_argument("run_packaged_conv_layer: input must be NHWC");
  }
  const ConvGeom g{x4d.shape()[1], x4d.shape()[2], x4d.shape()[3], layer.kernel, layer.stride,
                   layer.pad};
  return detail::int_conv_packed(x4d, g, layer.weights, layer.act_spec, layer.act_amax,
                                 layer.act_gamma, layer.bias, scale_product_bits, stats,
                                 prepacked);
}

}  // namespace

Tensor run_packaged_layer(const QuantizedLayerPackage& layer, const Tensor& x2d,
                          int scale_product_bits, IntGemmStats* stats) {
  return gemm_layer_exec(layer, x2d, scale_product_bits, stats, nullptr);
}

Tensor run_packaged_conv_layer(const QuantizedLayerPackage& layer, const Tensor& x4d,
                               int scale_product_bits, IntGemmStats* stats) {
  return conv_layer_exec(layer, x4d, scale_product_bits, stats, nullptr);
}

IntLayerPrimitive::IntLayerPrimitive(const QuantizedLayerPackage& layer) : layer_(&layer) {
  // Panels are packed with the ACT operand's layout, exactly as
  // int_gemm/int_conv would per call (packaged layers copy the weight
  // vector geometry onto act_spec, so the two agree by construction).
  const VectorLayout layout = layer.act_spec.layout(layer.weights.cols());
  // Only the int32-exact packed row loop consumes panels; operands wide
  // enough to need the int64 reference loop never pack, so resolving a
  // panel kernel for them would be wasted memory and a broken promise.
  if (detail::int32_dot_exact(layer.act_spec.fmt, layer.weights.fmt, layout)) {
    panels_.emplace(layer.weights, layout, detail::IntActAttrs::of(layer.act_spec));
  }
}

Tensor IntLayerPrimitive::execute(const Tensor& x, const IntExecContext& ctx) const {
  const detail::IntWeightPanels* pp = panels_ ? &*panels_ : nullptr;
  // Conv packages execute spatially on NHWC batches; their 2-D form (the
  // materialized patch matrix) stays available for the reference oracle.
  if (layer_->kind == PackagedLayerKind::kConv && x.shape().rank() == 4) {
    return conv_layer_exec(*layer_, x, ctx.scale_product_bits, ctx.stats, pp);
  }
  return gemm_layer_exec(*layer_, x, ctx.scale_product_bits, ctx.stats, pp);
}

const char* IntLayerPrimitive::op_name() const {
  return layer_->kind == PackagedLayerKind::kConv ? "int_conv" : "int_gemm";
}

const char* IntLayerPrimitive::impl_name() const {
  return panels_ ? panels_->panel_impl().name : "int64_ref";
}

const char* IntLayerPrimitive::acc_name() const {
  return panels_ ? panels_->acc_impl().name : "int64_ref";
}

const char* IntLayerPrimitive::isa_name() const {
  return panels_ ? isa::tier_name(panels_->panel_impl().tier) : "-";
}

const char* IntLayerPrimitive::layout_name() const {
  return panels_ ? kernels::panel_layout_name(panels_->layout()) : "-";
}

std::int64_t IntLayerPrimitive::resident_bytes() const {
  return panels_ ? panels_->resident_bytes() : 0;
}

std::int64_t IntLayerPrimitive::baseline_bytes() const {
  return panels_ ? panels_->baseline_bytes() : 0;
}

namespace {

// Dense persistence of the weight codes: b-bit BIASED-UNSIGNED codes
// (q - qmin, in 0 .. qmax-qmin, which fits b bits), 24/b codes per archive
// float. Each float carries an exact integer below 2^24, so the packing
// survives the archive's float transport losslessly for every b <= 8.
int packed_codes_per_float(int bits) { return 24 / bits; }

std::vector<float> pack_weight_codes(const QuantizedMatrix& w) {
  const int b = w.fmt.bits, k = packed_codes_per_float(b);
  const std::int64_t qmin = w.fmt.qmin();
  const std::size_t n = w.q.size();
  std::vector<float> out((n + k - 1) / k, 0.0f);
  for (std::size_t g = 0; g < out.size(); ++g) {
    std::uint32_t word = 0;
    for (int s = 0; s < k; ++s) {
      const std::size_t i = g * k + s;
      if (i >= n) break;  // tail slots stay zero — deterministic bytes
      word |= static_cast<std::uint32_t>(w.q[i] - qmin) << (s * b);
    }
    out[g] = static_cast<float>(word);
  }
  return out;
}

}  // namespace

void QuantizedModelPackage::save(const std::string& path, bool pack_weights) const {
  Archive a;
  for (const auto& [name, l] : layers) {
    const QuantizedMatrix& w = l.weights;
    if (pack_weights && w.fmt.bits <= 8) {
      a.put(key(name, "q_packed"),
            {static_cast<std::int64_t>((w.q.size() + packed_codes_per_float(w.fmt.bits) - 1) /
                                       packed_codes_per_float(w.fmt.bits))},
            pack_weight_codes(w));
    } else {
      a.put(key(name, "q"), {w.rows, w.cols()}, to_float(w.q));
    }
    // meta: rows, cols, elem bits, signed, V, block, act bits, act signed,
    // act granularity (0 coarse / 1 per-vector), act scale bits, amax, gamma
    a.put(key(name, "meta"), {12},
          {static_cast<float>(w.rows), static_cast<float>(w.cols()),
           static_cast<float>(w.fmt.bits), w.fmt.is_signed ? 1.0f : 0.0f,
           static_cast<float>(w.layout.vector_size), static_cast<float>(w.layout.block),
           static_cast<float>(l.act_spec.fmt.bits), l.act_spec.fmt.is_signed ? 1.0f : 0.0f,
           l.act_spec.granularity == Granularity::kPerVector ? 1.0f : 0.0f,
           static_cast<float>(l.act_spec.scale_fmt.bits), l.act_amax, l.act_gamma});
    if (w.two_level) {
      a.put(key(name, "sq"), {static_cast<std::int64_t>(w.two_level->sq.size())},
            to_float_u16(w.two_level->sq));
      a.put(key(name, "gamma"), {static_cast<std::int64_t>(w.two_level->gamma.size())},
            w.two_level->gamma);
      a.put(key(name, "scale_bits"), {1}, {static_cast<float>(w.two_level->scale_fmt.bits)});
    } else {
      a.put(key(name, "coarse"), {static_cast<std::int64_t>(w.coarse_scales.size())},
            w.coarse_scales);
    }
    if (!l.bias.empty()) {
      a.put(key(name, "bias"), {static_cast<std::int64_t>(l.bias.size())}, l.bias);
    }
    if (l.kind == PackagedLayerKind::kConv) {
      a.put(key(name, "conv"), {3},
            {static_cast<float>(l.kernel), static_cast<float>(l.stride),
             static_cast<float>(l.pad)});
    }
  }
  for (std::size_t i = 0; i < program.size(); ++i) {
    const std::string k = kProgramPrefix + std::to_string(i) + "/" + program[i].layer;
    const float relu = program[i].relu ? 1.0f : 0.0f;
    if (program[i].op == ForwardStep::Op::kGemm) {
      a.put(k, {1}, {relu});  // original encoding, keeps MLP archives byte-stable
    } else {
      a.put(k, {2}, {relu, static_cast<float>(program[i].op)});
    }
  }
  if (in_h > 0) {
    a.put(kInputGeomKey, {3},
          {static_cast<float>(in_h), static_cast<float>(in_w), static_cast<float>(in_c)});
  }
  if (max_seq > 0) {
    a.put(kSeqGeomKey, {3},
          {static_cast<float>(max_seq), static_cast<float>(seq_dim),
           static_cast<float>(heads)});
  }
  for (const auto& [name, ln] : norms) {
    std::vector<float> data;
    data.reserve(1 + ln.gamma.size() + ln.beta.size());
    data.push_back(static_cast<float>(ln.gamma.size()));
    data.insert(data.end(), ln.gamma.begin(), ln.gamma.end());
    data.insert(data.end(), ln.beta.begin(), ln.beta.end());
    const auto n = static_cast<std::int64_t>(data.size());
    a.put(kLayerNormPrefix + name, {n}, std::move(data));
  }
  for (const auto& [name, emb] : embeddings) {
    std::vector<float> data;
    data.reserve(3 + emb.tok.size() + emb.pos.size());
    data.push_back(static_cast<float>(emb.vocab));
    data.push_back(static_cast<float>(emb.max_len));
    data.push_back(static_cast<float>(emb.dim));
    data.insert(data.end(), emb.tok.begin(), emb.tok.end());
    data.insert(data.end(), emb.pos.begin(), emb.pos.end());
    const auto n = static_cast<std::int64_t>(data.size());
    a.put(kEmbeddingPrefix + name, {n}, std::move(data));
  }
  a.save(path);
}

QuantizedModelPackage QuantizedModelPackage::load(const std::string& path) {
  const Archive a = Archive::load(path);
  // Simulates a validation failure after the archive itself parsed — the
  // window where hot reload has real bytes but a semantically bad model.
  VSQ_FAILPOINT("package.load.validate");
  QuantizedModelPackage pkg;
  std::vector<std::pair<std::size_t, ForwardStep>> prog;
  for (const std::string& entry : a.names()) {
    if (entry == kInputGeomKey) {
      const auto& geom = a.get(entry).data;
      check_size(geom.size(), 3, "input geometry");
      pkg.in_h = checked_i64(geom[0], 0, 1 << 20, "input height");
      pkg.in_w = checked_i64(geom[1], 0, 1 << 20, "input width");
      pkg.in_c = checked_i64(geom[2], 0, 1 << 20, "input channels");
      continue;
    }
    if (entry == kSeqGeomKey) {
      const auto& geom = a.get(entry).data;
      check_size(geom.size(), 3, "sequence geometry");
      pkg.max_seq = checked_i64(geom[0], 1, 1 << 20, "max sequence length");
      pkg.seq_dim = checked_i64(geom[1], 1, 1 << 20, "sequence model dim");
      pkg.heads = checked_i64(geom[2], 1, 4096, "attention heads");
      if (pkg.seq_dim % pkg.heads != 0) {
        throw std::runtime_error(
            "QuantizedModelPackage: attention heads do not divide model dim");
      }
      continue;
    }
    if (entry.rfind(kLayerNormPrefix, 0) == 0) {
      const std::string name = entry.substr(std::string(kLayerNormPrefix).size());
      if (name.empty()) {
        throw std::runtime_error("QuantizedModelPackage: unnamed layernorm entry");
      }
      // Self-describing: {dim, gamma[dim], beta[dim]} so load order never
      // matters relative to the geometry entry.
      const auto& data = a.get(entry).data;
      if (data.empty()) {
        throw std::runtime_error("QuantizedModelPackage: empty layernorm entry " + entry);
      }
      const std::int64_t d = checked_i64(data[0], 1, 1 << 20, "layernorm dim of " + name);
      check_size(data.size(), static_cast<std::size_t>(1 + 2 * d),
                 "layernorm entry for " + name);
      LayerNormPackage ln;
      ln.gamma.assign(data.begin() + 1, data.begin() + 1 + d);
      ln.beta.assign(data.begin() + 1 + d, data.begin() + 1 + 2 * d);
      for (float v : ln.gamma) {
        if (!std::isfinite(v)) {
          throw std::runtime_error("QuantizedModelPackage: non-finite layernorm gamma of " +
                                   name);
        }
      }
      for (float v : ln.beta) {
        if (!std::isfinite(v)) {
          throw std::runtime_error("QuantizedModelPackage: non-finite layernorm beta of " +
                                   name);
        }
      }
      pkg.norms.emplace(name, std::move(ln));
      continue;
    }
    if (entry.rfind(kEmbeddingPrefix, 0) == 0) {
      const std::string name = entry.substr(std::string(kEmbeddingPrefix).size());
      if (name.empty()) {
        throw std::runtime_error("QuantizedModelPackage: unnamed embedding entry");
      }
      // Self-describing: {vocab, max_len, dim, tok[vocab*dim], pos[max_len*dim]}.
      const auto& data = a.get(entry).data;
      if (data.size() < 3) {
        throw std::runtime_error("QuantizedModelPackage: truncated embedding entry " + entry);
      }
      EmbeddingPackage e;
      e.vocab = checked_i64(data[0], 1, 1 << 20, "embedding vocab of " + name);
      e.max_len = checked_i64(data[1], 1, 1 << 20, "embedding max_len of " + name);
      e.dim = checked_i64(data[2], 1, 1 << 20, "embedding dim of " + name);
      const std::uint64_t tok_n =
          static_cast<std::uint64_t>(e.vocab) * static_cast<std::uint64_t>(e.dim);
      const std::uint64_t pos_n =
          static_cast<std::uint64_t>(e.max_len) * static_cast<std::uint64_t>(e.dim);
      check_size(data.size(), static_cast<std::size_t>(3 + tok_n + pos_n),
                 "embedding entry for " + name);
      e.tok.assign(data.begin() + 3, data.begin() + 3 + static_cast<std::ptrdiff_t>(tok_n));
      e.pos.assign(data.begin() + 3 + static_cast<std::ptrdiff_t>(tok_n), data.end());
      for (float v : e.tok) {
        if (!std::isfinite(v)) {
          throw std::runtime_error("QuantizedModelPackage: non-finite token embedding of " +
                                   name);
        }
      }
      for (float v : e.pos) {
        if (!std::isfinite(v)) {
          throw std::runtime_error(
              "QuantizedModelPackage: non-finite position embedding of " + name);
        }
      }
      pkg.embeddings.emplace(name, std::move(e));
      continue;
    }
    if (entry.rfind(kProgramPrefix, 0) == 0) {
      const std::string rest = entry.substr(std::string(kProgramPrefix).size());
      const auto sep = rest.find('/');
      if (sep == std::string::npos) {
        throw std::runtime_error("QuantizedModelPackage: malformed program entry " + entry);
      }
      ForwardStep step;
      step.layer = rest.substr(sep + 1);
      const auto& data = a.get(entry).data;
      if (data.empty()) {
        throw std::runtime_error("QuantizedModelPackage: empty program entry " + entry);
      }
      step.relu = data[0] != 0.0f;
      if (data.size() > 1) {
        step.op = op_from_code(
            static_cast<int>(checked_i64(data[1], 0, 64, "program op of " + entry)), entry);
      }
      std::size_t idx = 0;
      try {
        idx = std::stoul(rest.substr(0, sep));
      } catch (const std::exception&) {
        throw std::runtime_error("QuantizedModelPackage: malformed program index in " + entry);
      }
      prog.emplace_back(idx, std::move(step));
      continue;
    }
    const auto slash = entry.rfind("/meta");
    if (slash == std::string::npos || slash + 5 != entry.size()) continue;
    const std::string name = entry.substr(0, slash);

    // Everything read below is validated (ranges, cross-entry size
    // consistency) before it parameterizes the integer datapath: the
    // kernels index q/sq/gamma with arithmetic derived from this metadata
    // and must never see a corrupted combination.
    const auto& meta = a.get(entry).data;
    check_size(meta.size(), 12, "meta entry for " + name);
    QuantizedLayerPackage l;
    l.name = name;
    QuantizedMatrix& w = l.weights;
    w.rows = checked_i64(meta[0], 1, 1 << 24, "weight rows of " + name);
    w.layout.cols = checked_i64(meta[1], 1, 1 << 24, "weight cols of " + name);
    w.fmt = QuantFormat{checked_bits(meta[2], "weight bits of " + name), meta[3] != 0.0f};
    w.layout.vector_size =
        static_cast<int>(checked_i64(meta[4], 1, 1 << 20, "vector size of " + name));
    w.layout.block = checked_i64(meta[5], 0, 1 << 24, "channel block of " + name);
    // Block must divide cols (VectorLayout::validate's rule) — but report
    // it as the runtime_error corruption class like every check here, not
    // validate()'s invalid_argument, which callers read as API misuse.
    if (w.layout.block > 0 && w.layout.cols % w.layout.block != 0) {
      throw std::runtime_error("QuantizedModelPackage: channel block of " + name +
                               " does not divide cols");
    }
    const auto vpr = static_cast<std::uint64_t>(w.layout.vectors_per_row());

    const auto n_elems =
        static_cast<std::uint64_t>(w.rows) * static_cast<std::uint64_t>(w.layout.cols);
    const std::string q_what = "weight element of " + name;
    if (a.contains(key(name, "q_packed"))) {
      // Densely packed codes (the current save() form). Every word must be
      // an exact small integer and every code must sit inside the declared
      // format — the packed kernels derive their int32-exactness guarantee
      // from fmt.qmax(), so an element outside the format is corruption
      // that would void that premise.
      if (w.fmt.bits > 8) {
        throw std::runtime_error("QuantizedModelPackage: packed weights of " + name +
                                 " with a wider-than-8-bit format");
      }
      const int b = w.fmt.bits, k = packed_codes_per_float(b);
      const auto& qp = need(a, key(name, "q_packed")).data;
      check_size(qp.size(), (n_elems + k - 1) / k, "packed weight data of " + name);
      const std::uint32_t mask = (1u << b) - 1;
      const auto span = static_cast<std::uint32_t>(w.fmt.qmax() - w.fmt.qmin());
      w.q.assign(n_elems, 0);
      for (std::size_t g = 0; g < qp.size(); ++g) {
        const float v = qp[g];
        if (!(v >= 0.0f && v < 16777216.0f) || v != std::floor(v)) {
          throw std::runtime_error("QuantizedModelPackage: packed weight word of " + name +
                                   " is not a valid code group");
        }
        const auto word = static_cast<std::uint32_t>(v);
        for (int s = 0; s < k; ++s) {
          const std::uint64_t i = static_cast<std::uint64_t>(g) * k + s;
          const std::uint32_t code = (word >> (s * b)) & mask;
          if (i >= n_elems) {
            if (code != 0) {
              throw std::runtime_error("QuantizedModelPackage: " + q_what +
                                       " past the weight tail");
            }
            continue;
          }
          if (code > span) {
            throw std::runtime_error("QuantizedModelPackage: " + q_what + " out of range");
          }
          w.q[i] = static_cast<std::int16_t>(static_cast<std::int64_t>(code) + w.fmt.qmin());
        }
      }
    } else {
      // Legacy one-float-per-code entry: older archives keep loading (and
      // serving bit-identically — the weights decode to the same q).
      const auto& q = need(a, key(name, "q")).data;
      check_size(q.size(), n_elems, "weight data of " + name);
      w.q.assign(q.size(), 0);
      for (std::size_t i = 0; i < q.size(); ++i) {
        w.q[i] =
            static_cast<std::int16_t>(checked_i64(q[i], w.fmt.qmin(), w.fmt.qmax(), q_what));
      }
    }

    if (a.contains(key(name, "sq"))) {
      TwoLevelScales tl;
      const auto& sb = need(a, key(name, "scale_bits")).data;
      check_size(sb.size(), 1, "scale_bits entry of " + name);
      tl.scale_fmt =
          QuantFormat{checked_scale_bits(sb[0], "weight scale bits of " + name), false};
      tl.coarse_axis = CoarseAxis::kPerRow;
      tl.layout = w.layout;
      tl.rows = w.rows;
      const auto& sq = need(a, key(name, "sq")).data;
      check_size(sq.size(), static_cast<std::uint64_t>(w.rows) * vpr,
                 "weight scales of " + name);
      tl.sq.assign(sq.size(), 0);
      const std::string sq_what = "weight scale of " + name;
      for (std::size_t i = 0; i < sq.size(); ++i) {
        tl.sq[i] =
            static_cast<std::uint16_t>(checked_i64(sq[i], 0, tl.scale_fmt.qmax(), sq_what));
      }
      tl.gamma = need(a, key(name, "gamma")).data;
      if (tl.gamma.size() != static_cast<std::size_t>(w.rows) && tl.gamma.size() != 1) {
        throw std::runtime_error("QuantizedModelPackage: gamma of " + name +
                                 " has inconsistent size");
      }
      if (tl.gamma.size() == 1) tl.coarse_axis = CoarseAxis::kPerTensor;
      w.two_level = std::move(tl);
    } else {
      w.coarse_scales = need(a, key(name, "coarse")).data;
      if (w.coarse_scales.size() != static_cast<std::size_t>(w.rows) &&
          w.coarse_scales.size() != 1) {
        throw std::runtime_error("QuantizedModelPackage: coarse scales of " + name +
                                 " have inconsistent size");
      }
    }

    l.act_spec.enabled = true;
    // Activations are quantized at inference time, and that path
    // (quantize_activations_int / int_conv) rejects widths above 10 — so
    // a wider value here is corruption and must fail at LOAD, not on the
    // first request. (Weight widths may go to 15: they ship prequantized
    // and wide operands route through the int64 reference loop.)
    l.act_spec.fmt = QuantFormat{
        static_cast<int>(checked_i64(meta[6], 1, 10, "act bits of " + name)), meta[7] != 0.0f};
    l.act_spec.vector_size = w.layout.vector_size;
    l.act_spec.channel_block = w.layout.block;
    if (meta[8] != 0.0f) {
      l.act_spec.granularity = Granularity::kPerVector;
      l.act_spec.scale_dtype = ScaleDtype::kTwoLevelInt;
      l.act_spec.scale_fmt =
          QuantFormat{checked_scale_bits(meta[9], "act scale bits of " + name), false};
      l.act_spec.dynamic = true;
    } else {
      l.act_spec.granularity = Granularity::kPerTensor;
    }
    l.act_amax = meta[10];
    l.act_gamma = meta[11];
    if (!std::isfinite(l.act_amax) || !std::isfinite(l.act_gamma)) {
      throw std::runtime_error("QuantizedModelPackage: non-finite act calibration of " + name);
    }
    if (a.contains(key(name, "bias"))) {
      l.bias = a.get(key(name, "bias")).data;
      check_size(l.bias.size(), static_cast<std::uint64_t>(w.rows), "bias of " + name);
    }
    if (a.contains(key(name, "conv"))) {
      const auto& geom = a.get(key(name, "conv")).data;
      check_size(geom.size(), 3, "conv geometry of " + name);
      l.kind = PackagedLayerKind::kConv;
      l.kernel = checked_i64(geom[0], 1, 1 << 12, "conv kernel of " + name);
      l.stride = checked_i64(geom[1], 1, 1 << 12, "conv stride of " + name);
      l.pad = checked_i64(geom[2], 0, 1 << 12, "conv pad of " + name);
    }

    pkg.layers[name] = std::move(l);
  }
  std::sort(prog.begin(), prog.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [idx, step] : prog) pkg.program.push_back(std::move(step));
  return pkg;
}

namespace {

// Shape-propagation state of the runner's static validation pass: either a
// spatial NHWC activation or a flat feature vector.
struct ActDims {
  bool spatial = false;
  std::int64_t h = 0, w = 0, c = 0;  // spatial
  std::int64_t features = -1;        // flat (-1 = not yet known)

  bool operator==(const ActDims&) const = default;
};

// Mirrors nn/LayerNorm::forward numerics exactly (same accumulation order,
// eps = 1e-5), applied row-wise over a flattened [N, D] activation. Rows
// are independent, so batched results match sequential bit-for-bit.
Tensor layernorm_exec(const Tensor& x, const LayerNormPackage& ln) {
  const auto d = static_cast<std::int64_t>(ln.gamma.size());
  const std::int64_t rows = x.numel() / d;
  Tensor y(x.shape());
  const auto fd = static_cast<float>(d);
  constexpr float kEps = 1e-5f;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * d;
    float* yr = y.data() + r * d;
    float mean = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) mean += xr[c];
    mean /= fd;
    float var = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) {
      const float dv = xr[c] - mean;
      var += dv * dv;
    }
    var /= fd;
    const float is = 1.0f / std::sqrt(var + kEps);
    for (std::int64_t c = 0; c < d; ++c) {
      yr[c] = (xr[c] - mean) * is * ln.gamma[c] + ln.beta[c];
    }
  }
  return y;
}

Tensor gelu_exec(const Tensor& x) {
  Tensor y(x.shape());
  const float* src = x.data();
  float* dst = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = gelu_value(src[i]);
  return y;
}

// Per-sample true-length multi-head attention. Sample r's tokens occupy
// rows [r*t, r*t + lens[r]) of the flattened [rows*t, d] q/k/v
// projections; its scores, softmax and context reduce over exactly
// lens[r] positions — the same GEMM shapes a sequential [1, lens[r]] call
// makes — so batched results are bit-identical to sequential execution by
// construction (padding to t never lengthens a reduction axis, which
// would regroup the blocked kernels' partial sums). Pad rows stay zero.
Tensor attention_context(const Tensor& q, const Tensor& k, const Tensor& v,
                         const std::vector<std::int64_t>& lens, std::int64_t t,
                         std::int64_t d, std::int64_t heads) {
  const auto rows = static_cast<std::int64_t>(lens.size());
  const std::int64_t dh = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor ctx(Shape{rows * t, d});  // zero-initialized: pad rows stay zero
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t l = lens[r];
    for (std::int64_t hi = 0; hi < heads; ++hi) {
      const float* qh = q.data() + r * t * d + hi * dh;
      const float* kh = k.data() + r * t * d + hi * dh;
      const float* vh = v.data() + r * t * d + hi * dh;
      float* ch = ctx.data() + r * t * d + hi * dh;
      Tensor scores(Shape{l, l});
      gemm_nt_strided(qh, d, kh, d, scores.data(), l, l, l, dh);
      for (float& s : scores.span()) s *= inv_sqrt;
      const Tensor probs = softmax_last_axis(scores);
      gemm_nn_strided(probs.data(), l, vh, d, ch, d, l, dh, l);
    }
  }
  return ctx;
}

}  // namespace

QuantizedModelRunner::QuantizedModelRunner(const QuantizedModelPackage& pkg,
                                           int scale_product_bits)
    : pkg_(&pkg),
      program_(pkg.program.empty() ? mlp_program(pkg) : pkg.program),
      scale_product_bits_(scale_product_bits) {
  using Op = ForwardStep::Op;
  if (program_.empty()) {
    throw std::invalid_argument("QuantizedModelRunner: package has no layers");
  }
  const bool any_spatial =
      std::any_of(program_.begin(), program_.end(), [](const ForwardStep& s) {
        return s.op == Op::kConv || s.op == Op::kConvSaved || s.op == Op::kGlobalPool;
      });
  if (any_spatial && (pkg.in_h <= 0 || pkg.in_w <= 0 || pkg.in_c <= 0)) {
    throw std::invalid_argument(
        "QuantizedModelRunner: spatial program but package has no input geometry");
  }
  spatial_ = any_spatial;

  const bool any_seq = std::any_of(program_.begin(), program_.end(),
                                   [](const ForwardStep& s) { return op_is_sequence(s.op); });
  if (any_seq) {
    if (any_spatial) {
      throw std::invalid_argument("QuantizedModelRunner: program mixes spatial and sequence ops");
    }
    if (program_[0].op != Op::kEmbed) {
      throw std::invalid_argument(
          "QuantizedModelRunner: sequence program must start with an embed step");
    }
    if (pkg.max_seq <= 0 || pkg.seq_dim <= 0 || pkg.heads <= 0) {
      throw std::invalid_argument(
          "QuantizedModelRunner: sequence program but package has no sequence geometry");
    }
  }
  seq_ = any_seq;

  // Static shape propagation: every step's input/output dims are fixed up
  // front (batch excepted), so forward() never re-validates.
  ActDims cur;
  if (spatial_) cur = ActDims{true, pkg.in_h, pkg.in_w, pkg.in_c, -1};
  std::optional<ActDims> saved;
  // forward()'s kSave is a shallow copy, and h starts as a view of the
  // caller's input: a residual add is only safe once a layer op has
  // produced a fresh h since the last save (true for every generated
  // program; reject hand-crafted ones that would alias-and-mutate).
  bool fresh_h = false;
  for (const ForwardStep& step : program_) {
    const QuantizedLayerPackage* layer = nullptr;
    if (op_uses_layer(step.op)) {
      const auto it = pkg.layers.find(step.layer);
      if (it == pkg.layers.end()) {
        throw std::invalid_argument("QuantizedModelRunner: program names missing layer " +
                                    step.layer);
      }
      layer = &it->second;
    }
    // ReLU after a step applies to the main-path activation h. Reject it
    // on ops that write `saved` (or alias h with it): silently relu-ing
    // the wrong tensor would corrupt outputs with no diagnostic.
    if (step.relu && (step.op == Op::kSave || step.op == Op::kConvSaved)) {
      throw std::invalid_argument("QuantizedModelRunner: relu on a saved-slot step");
    }
    switch (step.op) {
      case Op::kGemm: {
        if (cur.spatial) {
          throw std::invalid_argument("QuantizedModelRunner: gemm step " + step.layer +
                                      " on a spatial activation (missing pool?)");
        }
        const QuantizedMatrix& w = layer->weights;
        if (cur.features >= 0 && w.cols() != cur.features) {
          throw std::invalid_argument("QuantizedModelRunner: layer " + step.layer +
                                      " expects " + std::to_string(w.cols()) +
                                      " inputs, previous step produces " +
                                      std::to_string(cur.features));
        }
        if (cur.features < 0) in_features_ = w.cols();
        cur.features = w.rows;
        fresh_h = true;
        break;
      }
      case Op::kConv:
      case Op::kConvSaved: {
        ActDims* d = &cur;
        if (step.op == Op::kConvSaved) {
          if (!saved) {
            throw std::invalid_argument("QuantizedModelRunner: shortcut conv " + step.layer +
                                        " with no saved activation");
          }
          d = &*saved;
        }
        if (!d->spatial) {
          throw std::invalid_argument("QuantizedModelRunner: conv step " + step.layer +
                                      " on a flat activation");
        }
        if (layer->kind != PackagedLayerKind::kConv) {
          throw std::invalid_argument("QuantizedModelRunner: " + step.layer +
                                      " is not a conv package");
        }
        if (layer->conv_in_channels() != d->c) {
          throw std::invalid_argument("QuantizedModelRunner: conv " + step.layer + " expects " +
                                      std::to_string(layer->conv_in_channels()) +
                                      " channels, activation has " + std::to_string(d->c));
        }
        const ConvGeom g{d->h, d->w, d->c, layer->kernel, layer->stride, layer->pad};
        if (g.out_h() <= 0 || g.out_w() <= 0) {
          throw std::invalid_argument("QuantizedModelRunner: conv " + step.layer +
                                      " produces an empty output");
        }
        *d = ActDims{true, g.out_h(), g.out_w(), layer->weights.rows, -1};
        if (step.op == Op::kConv) fresh_h = true;
        break;
      }
      case Op::kSave:
        saved = cur;
        fresh_h = false;
        break;
      case Op::kAddSaved:
        if (!saved || !(*saved == cur)) {
          throw std::invalid_argument(
              "QuantizedModelRunner: residual add with mismatched shapes");
        }
        if (!fresh_h) {
          throw std::invalid_argument(
              "QuantizedModelRunner: residual add would alias the saved activation");
        }
        break;
      case Op::kGlobalPool:
        if (!cur.spatial) {
          throw std::invalid_argument("QuantizedModelRunner: pool step on a flat activation");
        }
        cur = ActDims{false, 0, 0, 0, cur.c};
        fresh_h = true;
        break;
      case Op::kEmbed: {
        if (&step != &program_.front()) {
          throw std::invalid_argument(
              "QuantizedModelRunner: embed must be the program's first step");
        }
        const auto it = pkg.embeddings.find(step.layer);
        if (it == pkg.embeddings.end()) {
          throw std::invalid_argument("QuantizedModelRunner: program names missing embedding " +
                                      step.layer);
        }
        const EmbeddingPackage& e = it->second;
        if (e.dim != pkg.seq_dim) {
          throw std::invalid_argument("QuantizedModelRunner: embedding " + step.layer +
                                      " width does not match the sequence geometry");
        }
        if (e.max_len < pkg.max_seq) {
          throw std::invalid_argument("QuantizedModelRunner: embedding " + step.layer +
                                      " covers fewer positions than max_seq");
        }
        vocab_ = e.vocab;
        cur.features = e.dim;
        fresh_h = true;
        break;
      }
      case Op::kLayerNorm: {
        const auto it = pkg.norms.find(step.layer);
        if (it == pkg.norms.end()) {
          throw std::invalid_argument("QuantizedModelRunner: program names missing layernorm " +
                                      step.layer);
        }
        if (cur.spatial || cur.features < 0 ||
            static_cast<std::int64_t>(it->second.gamma.size()) != cur.features) {
          throw std::invalid_argument("QuantizedModelRunner: layernorm " + step.layer +
                                      " width does not match the activation");
        }
        fresh_h = true;
        break;
      }
      case Op::kAttention: {
        if (cur.spatial || cur.features != pkg.seq_dim) {
          throw std::invalid_argument("QuantizedModelRunner: attention " + step.layer +
                                      " expects the package model width " +
                                      std::to_string(pkg.seq_dim));
        }
        for (const char* suffix : {".q", ".k", ".v", ".out"}) {
          const auto it = pkg.layers.find(step.layer + suffix);
          if (it == pkg.layers.end()) {
            throw std::invalid_argument("QuantizedModelRunner: program names missing layer " +
                                        step.layer + suffix);
          }
          const QuantizedMatrix& w = it->second.weights;
          if (w.rows != pkg.seq_dim || w.cols() != pkg.seq_dim) {
            throw std::invalid_argument("QuantizedModelRunner: attention projection " +
                                        step.layer + suffix +
                                        " is not a square model-width layer");
          }
        }
        fresh_h = true;
        break;
      }
      case Op::kSoftmax:
      case Op::kGelu:
        if (cur.spatial || cur.features < 0) {
          throw std::invalid_argument("QuantizedModelRunner: elementwise step on an unshaped "
                                      "activation");
        }
        fresh_h = true;
        break;
    }
  }
  if (spatial_) in_features_ = pkg.in_h * pkg.in_w * pkg.in_c;
  if (seq_) {
    // Sequence packages take token rows: a full-width input is one id per
    // position; shorter rows are a prefix of that.
    max_seq_ = pkg.max_seq;
    in_features_ = max_seq_;
  }
  if (in_features_ <= 0) {
    throw std::invalid_argument("QuantizedModelRunner: program has no input layer");
  }
  if (seq_) {
    out_per_token_ = cur.features;
    out_features_ = max_seq_ * out_per_token_;
  } else {
    out_features_ = cur.spatial ? cur.h * cur.w * cur.c : cur.features;
  }

  // Resolve every layer into its primitive once, after validation passed
  // (kernel dispatch + weight-panel pack): the per-request path then
  // executes resolved primitives — zero repacks, zero dispatch lookups.
  for (const auto& [name, l] : pkg.layers) prims_.try_emplace(name, l);
  step_prims_.reserve(program_.size());
  step_attn_.resize(program_.size());
  step_norms_.resize(program_.size(), nullptr);
  step_embeds_.resize(program_.size(), nullptr);
  for (std::size_t i = 0; i < program_.size(); ++i) {
    const ForwardStep& step = program_[i];
    step_prims_.push_back(op_uses_layer(step.op) ? &prims_.at(step.layer) : nullptr);
    if (step.op == Op::kAttention) {
      step_attn_[i] = AttnPrims{&prims_.at(step.layer + ".q"), &prims_.at(step.layer + ".k"),
                                &prims_.at(step.layer + ".v"), &prims_.at(step.layer + ".out")};
    } else if (step.op == Op::kLayerNorm) {
      step_norms_[i] = &pkg.norms.at(step.layer);
    } else if (step.op == Op::kEmbed) {
      step_embeds_[i] = &pkg.embeddings.at(step.layer);
    }
  }
}

const IntLayerPrimitive* QuantizedModelRunner::primitive(const std::string& layer) const {
  const auto it = prims_.find(layer);
  return it == prims_.end() ? nullptr : &it->second;
}

QuantizedModelRunner::~QuantizedModelRunner() = default;

std::vector<ForwardStep> QuantizedModelRunner::mlp_program(const QuantizedModelPackage& pkg) {
  std::vector<ForwardStep> program;
  for (const auto& [name, l] : pkg.layers) program.push_back({name, true});
  if (!program.empty()) program.back().relu = false;
  return program;
}

Tensor QuantizedModelRunner::forward(const Tensor& x, IntGemmStats* stats) const {
  using Op = ForwardStep::Op;
  if (seq_) return forward_seq(x, stats);
  if (x.shape().rank() != 2 || x.shape()[1] != in_features_) {
    throw std::invalid_argument("QuantizedModelRunner: input must be [rows, " +
                                std::to_string(in_features_) + "]");
  }
  const std::int64_t rows = x.shape()[0];
  Tensor h = spatial_ ? x.reshape(Shape{rows, pkg_->in_h, pkg_->in_w, pkg_->in_c}) : x;
  Tensor saved;
  const IntExecContext ctx{scale_product_bits_, stats};
  for (std::size_t i = 0; i < step_prims_.size(); ++i) {
    switch (program_[i].op) {
      case Op::kGemm:
      case Op::kConv:
        h = step_prims_[i]->execute(h, ctx);
        break;
      case Op::kConvSaved:
        saved = step_prims_[i]->execute(saved, ctx);
        break;
      case Op::kSave:
        saved = h;  // shallow: the next conv produces a fresh h
        break;
      case Op::kAddSaved:
        add_inplace(h, saved);
        break;
      case Op::kGlobalPool:
        h = global_avg_pool_nhwc(h);
        break;
      case Op::kSoftmax:
        h = softmax_last_axis(h);
        break;
      case Op::kGelu:
        h = gelu_exec(h);
        break;
      case Op::kEmbed:
      case Op::kLayerNorm:
      case Op::kAttention:
        break;  // sequence-only ops route through forward_seq (ctor guarantees)
    }
    if (program_[i].relu) relu_inplace(h);
  }
  if (h.shape().rank() != 2) h = h.reshape(Shape{rows, out_features_});
  return h;
}

Tensor QuantizedModelRunner::forward_seq(const Tensor& x, IntGemmStats* stats) const {
  using Op = ForwardStep::Op;
  if (x.shape().rank() != 2 || x.shape()[1] < 1 || x.shape()[1] > max_seq_) {
    throw std::invalid_argument("QuantizedModelRunner: input must be [rows, T] token ids with "
                                "1 <= T <= " +
                                std::to_string(max_seq_));
  }
  const std::int64_t rows = x.shape()[0], t = x.shape()[1];

  // Per-row true length = the unpadded prefix before the first -1.0f
  // sentinel. Validated at the door: a malformed row (interior pad,
  // fractional or out-of-vocab id) must fail this call with a clear
  // diagnostic, never index the embedding table.
  std::vector<std::int64_t> lens(rows, t);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x.data() + r * t;
    std::int64_t l = 0;
    while (l < t && row[l] != -1.0f) ++l;
    if (l == 0) {
      throw std::invalid_argument("QuantizedModelRunner: empty token row");
    }
    for (std::int64_t j = l; j < t; ++j) {
      if (row[j] != -1.0f) {
        throw std::invalid_argument(
            "QuantizedModelRunner: pad sentinel inside a token row (suffix padding only)");
      }
    }
    for (std::int64_t j = 0; j < l; ++j) {
      const float v = row[j];
      if (!(v >= 0.0f && v < static_cast<float>(vocab_)) ||
          v != static_cast<float>(static_cast<std::int64_t>(v))) {
        throw std::invalid_argument("QuantizedModelRunner: token id out of range [0, " +
                                    std::to_string(vocab_) + ")");
      }
    }
    lens[r] = l;
  }

  // Embedding lookup (always step 0): [rows, t] ids -> flattened
  // [rows*t, D] activations, zeros at pad positions. Every later op is
  // row-independent over this flattening (attention partitions it per
  // sample), which is what makes batched == sequential bit-exact.
  const EmbeddingPackage& e = *step_embeds_[0];
  Tensor h(Shape{rows * t, e.dim});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x.data() + r * t;
    for (std::int64_t j = 0; j < lens[r]; ++j) {
      const auto id = static_cast<std::int64_t>(row[j]);
      const float* te = e.tok.data() + id * e.dim;
      const float* pe = e.pos.data() + j * e.dim;
      float* dst = h.data() + (r * t + j) * e.dim;
      for (std::int64_t c = 0; c < e.dim; ++c) dst[c] = te[c] + pe[c];
    }
  }
  if (program_[0].relu) relu_inplace(h);

  Tensor saved;
  const IntExecContext ctx{scale_product_bits_, stats};
  for (std::size_t i = 1; i < program_.size(); ++i) {
    switch (program_[i].op) {
      case Op::kGemm:
        h = step_prims_[i]->execute(h, ctx);
        break;
      case Op::kSave:
        saved = h;  // shallow: the next op produces a fresh h (validated)
        break;
      case Op::kAddSaved:
        add_inplace(h, saved);
        break;
      case Op::kLayerNorm:
        h = layernorm_exec(h, *step_norms_[i]);
        break;
      case Op::kGelu:
        h = gelu_exec(h);
        break;
      case Op::kSoftmax:
        h = softmax_last_axis(h);
        break;
      case Op::kAttention: {
        const AttnPrims& p = step_attn_[i];
        const Tensor q = p.q->execute(h, ctx);
        const Tensor k = p.k->execute(h, ctx);
        const Tensor v = p.v->execute(h, ctx);
        h = p.out->execute(attention_context(q, k, v, lens, t, pkg_->seq_dim, pkg_->heads),
                           ctx);
        break;
      }
      case Op::kEmbed:
      case Op::kConv:
      case Op::kConvSaved:
      case Op::kGlobalPool:
        break;  // rejected at construction
    }
    if (program_[i].relu) relu_inplace(h);
  }
  // [rows*t, out_per_token] -> [rows, t*out_per_token]; only the first
  // lens[r]*out_per_token values of a row are meaningful.
  return h.reshape(Shape{rows, t * out_per_token_});
}

IntegerExecutionGuard::IntegerExecutionGuard(std::vector<QuantizableGemm*> gemms,
                                             const QuantizedModelPackage& pkg,
                                             int scale_product_bits)
    : gemms_(std::move(gemms)) {
  // Validate up-front so a missing entry cannot leave a half-installed model.
  for (const QuantizableGemm* g : gemms_) {
    if (pkg.layers.find(g->gemm_name()) == pkg.layers.end()) {
      throw std::invalid_argument("IntegerExecutionGuard: no package entry for layer " +
                                  g->gemm_name());
    }
  }
  for (QuantizableGemm* g : gemms_) {
    // Resolve the layer's primitive once; the override then streams every
    // forward through the prepacked panels. Map nodes are stable for the
    // guard's lifetime (and the caller keeps pkg alive, as the
    // constructor reference implies).
    const auto [it, inserted] =
        prims_.try_emplace(g->gemm_name(), pkg.layers.at(g->gemm_name()));
    const IntLayerPrimitive* prim = &it->second;
    g->set_gemm_override([this, prim, scale_product_bits](const Tensor& x2d) {
      return prim->execute(x2d, IntExecContext{scale_product_bits, &stats_});
    });
  }
}

IntegerExecutionGuard::~IntegerExecutionGuard() {
  for (QuantizableGemm* g : gemms_) g->set_gemm_override({});
}

}  // namespace vsq
