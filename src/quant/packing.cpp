#include "quant/packing.h"

#include <stdexcept>
#include <string>

namespace vsq {
namespace {

// Append the low `bits` bits of `field` to the stream at bit offset `pos`.
void write_bits(std::vector<std::uint8_t>& bytes, std::int64_t pos, std::uint32_t field,
                int bits) {
  for (int b = 0; b < bits; ++b, ++pos) {
    if (field & (1u << b)) {
      bytes[static_cast<std::size_t>(pos >> 3)] |= static_cast<std::uint8_t>(1u << (pos & 7));
    }
  }
}

std::uint32_t read_bits(const std::vector<std::uint8_t>& bytes, std::int64_t pos, int bits) {
  std::uint32_t field = 0;
  for (int b = 0; b < bits; ++b, ++pos) {
    if (bytes[static_cast<std::size_t>(pos >> 3)] & (1u << (pos & 7))) field |= (1u << b);
  }
  return field;
}

PackedBuffer pack_fields(const std::int64_t count, const QuantFormat& fmt,
                         const std::uint32_t* fields) {
  PackedBuffer out;
  out.fmt = fmt;
  out.count = count;
  out.bytes.assign(static_cast<std::size_t>((count * fmt.bits + 7) / 8), 0);
  for (std::int64_t i = 0; i < count; ++i) {
    write_bits(out.bytes, i * fmt.bits, fields[i], fmt.bits);
  }
  return out;
}

}  // namespace

PackedBuffer pack_values(const std::vector<std::int16_t>& values, const QuantFormat& fmt) {
  const std::uint32_t mask = (1u << fmt.bits) - 1;
  std::vector<std::uint32_t> fields(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::int16_t v = values[i];
    if (v < fmt.qmin() || v > fmt.qmax()) {
      throw std::out_of_range("pack_values: " + std::to_string(v) + " does not fit " + fmt.str());
    }
    // Two's complement within N bits for signed formats.
    fields[i] = static_cast<std::uint32_t>(static_cast<std::int32_t>(v)) & mask;
  }
  return pack_fields(static_cast<std::int64_t>(values.size()), fmt, fields.data());
}

PackedBuffer pack_scales(const std::vector<std::uint16_t>& scales, const QuantFormat& fmt) {
  if (fmt.is_signed) throw std::invalid_argument("pack_scales: scale formats are unsigned");
  std::vector<std::uint32_t> fields(scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    if (scales[i] > fmt.qmax()) {
      throw std::out_of_range("pack_scales: " + std::to_string(scales[i]) + " does not fit " +
                              fmt.str());
    }
    fields[i] = scales[i];
  }
  return pack_fields(static_cast<std::int64_t>(scales.size()), fmt, fields.data());
}

std::vector<std::int16_t> unpack_values(const PackedBuffer& packed) {
  std::vector<std::int16_t> out(static_cast<std::size_t>(packed.count));
  const int bits = packed.fmt.bits;
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t mask = (1u << bits) - 1;
  for (std::int64_t i = 0; i < packed.count; ++i) {
    std::uint32_t field = read_bits(packed.bytes, i * bits, bits);
    if (packed.fmt.is_signed && (field & sign_bit)) field |= ~mask;  // sign-extend
    out[static_cast<std::size_t>(i)] =
        static_cast<std::int16_t>(static_cast<std::int32_t>(field));
  }
  return out;
}

std::vector<std::uint16_t> unpack_scales(const PackedBuffer& packed) {
  std::vector<std::uint16_t> out(static_cast<std::size_t>(packed.count));
  for (std::int64_t i = 0; i < packed.count; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(read_bits(packed.bytes, i * packed.fmt.bits, packed.fmt.bits));
  }
  return out;
}

}  // namespace vsq
