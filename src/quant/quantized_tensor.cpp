#include "quant/quantized_tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vsq {

QuantizedMatrix quantize_weights_int(const Tensor& w2d, const QuantSpec& spec) {
  if (!spec.enabled) throw std::invalid_argument("quantize_weights_int: spec disabled");
  QuantizedMatrix out;
  out.rows = w2d.shape()[0];
  out.fmt = spec.fmt;
  out.layout = spec.layout(w2d.shape()[1]);

  if (spec.granularity == Granularity::kPerVector) {
    if (spec.scale_dtype != ScaleDtype::kTwoLevelInt) {
      throw std::invalid_argument(
          "quantize_weights_int: hardware path requires two-level integer scales");
    }
    const ScaleSet fp = compute_scales(w2d, Granularity::kPerVector, out.layout, spec.fmt);
    out.two_level = two_level_from_scales(fp, spec.scale_fmt, CoarseAxis::kPerRow);
    out.q = quantize_to_int(w2d, out.two_level->to_scale_set(), spec.fmt);
  } else {
    const ScaleSet s = compute_scales(w2d, spec.granularity, out.layout, spec.fmt);
    out.coarse_scales = s.scales;
    out.q = quantize_to_int(w2d, s, spec.fmt);
  }
  return out;
}

void quantize_row_two_level(const float* xrow, const VectorLayout& layout,
                            const QuantFormat& fmt, const QuantFormat& scale_fmt, float gamma,
                            std::int16_t* qrow, std::uint16_t* sqrow) {
  const std::int64_t vpr = layout.vectors_per_row();
  const auto scale_qmax = static_cast<float>(scale_fmt.qmax());
  for (std::int64_t v = 0; v < vpr; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    float amax = 0.0f;
    for (std::int64_t c = c0; c < c1; ++c) amax = std::max(amax, std::abs(xrow[c]));
    std::uint16_t sq = 0;
    if (gamma > 0.0f) {
      const float s = scale_from_amax(amax, fmt);
      sq = static_cast<std::uint16_t>(std::clamp(std::nearbyintf(s / gamma), 0.0f, scale_qmax));
    }
    sqrow[v] = sq;
    const float eff = static_cast<float>(sq) * gamma;  // Eq. 7h
    for (std::int64_t c = c0; c < c1; ++c) {
      qrow[c] = static_cast<std::int16_t>(quantize_value(xrow[c], eff, fmt));
    }
  }
}

QuantizedMatrix quantize_activations_int(const Tensor& x2d, const QuantSpec& spec,
                                         float static_amax, float gamma) {
  if (!spec.enabled) throw std::invalid_argument("quantize_activations_int: spec disabled");
  QuantizedMatrix out;
  out.rows = x2d.shape()[0];
  out.fmt = spec.fmt;
  out.layout = spec.layout(x2d.shape()[1]);

  if (spec.fmt.bits > 10) {
    throw std::invalid_argument("quantize_activations_int: bits > 10 does not fit int16");
  }
  if (spec.granularity == Granularity::kPerVector) {
    if (spec.scale_dtype != ScaleDtype::kTwoLevelInt) {
      throw std::invalid_argument(
          "quantize_activations_int: hardware path requires two-level integer scales");
    }
    // Dynamic per-vector: runtime vector max -> sq = round(s/gamma) (Eq. 7g),
    // exactly the PPU's calibrate-and-quantize pipeline. Fused single pass
    // per vector (amax -> sq -> integer elements): arithmetic is
    // element-for-element identical to amax_per_vector + to_scale_set +
    // quantize_to_int, without the per-element scale lookups and the
    // intermediate scale-set allocations — this is the per-request hot
    // path of the serving engine.
    TwoLevelScales tl;
    tl.scale_fmt = spec.scale_fmt;
    tl.coarse_axis = CoarseAxis::kPerTensor;
    tl.layout = out.layout;
    tl.rows = out.rows;
    tl.gamma = {gamma};
    const std::int64_t rows = out.rows, cols = out.layout.cols;
    const std::int64_t vpr = out.layout.vectors_per_row();
    tl.sq.assign(static_cast<std::size_t>(rows * vpr), 0);
    out.q.assign(static_cast<std::size_t>(rows * cols), 0);
    const float* src = x2d.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      quantize_row_two_level(src + r * cols, out.layout, spec.fmt, spec.scale_fmt, gamma,
                             out.q.data() + r * cols,
                             tl.sq.data() + static_cast<std::size_t>(r * vpr));
    }
    out.two_level = std::move(tl);
  } else {
    const float amax = spec.dynamic ? amax_per_tensor(x2d) : static_amax;
    ScaleSet s;
    s.granularity = Granularity::kPerTensor;
    s.layout = out.layout;
    s.rows = out.rows;
    s.scales = {scale_from_amax(amax, spec.fmt)};
    out.coarse_scales = s.scales;
    out.q = quantize_to_int(x2d, s, spec.fmt);
  }
  return out;
}

}  // namespace vsq
