#include "quant/quantized_tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vsq {

QuantizedMatrix quantize_weights_int(const Tensor& w2d, const QuantSpec& spec) {
  if (!spec.enabled) throw std::invalid_argument("quantize_weights_int: spec disabled");
  QuantizedMatrix out;
  out.rows = w2d.shape()[0];
  out.fmt = spec.fmt;
  out.layout = spec.layout(w2d.shape()[1]);

  if (spec.granularity == Granularity::kPerVector) {
    if (spec.scale_dtype != ScaleDtype::kTwoLevelInt) {
      throw std::invalid_argument(
          "quantize_weights_int: hardware path requires two-level integer scales");
    }
    const ScaleSet fp = compute_scales(w2d, Granularity::kPerVector, out.layout, spec.fmt);
    out.two_level = two_level_from_scales(fp, spec.scale_fmt, CoarseAxis::kPerRow);
    out.q = quantize_to_int(w2d, out.two_level->to_scale_set(), spec.fmt);
  } else {
    const ScaleSet s = compute_scales(w2d, spec.granularity, out.layout, spec.fmt);
    out.coarse_scales = s.scales;
    out.q = quantize_to_int(w2d, s, spec.fmt);
  }
  return out;
}

QuantizedMatrix quantize_activations_int(const Tensor& x2d, const QuantSpec& spec,
                                         float static_amax, float gamma) {
  if (!spec.enabled) throw std::invalid_argument("quantize_activations_int: spec disabled");
  QuantizedMatrix out;
  out.rows = x2d.shape()[0];
  out.fmt = spec.fmt;
  out.layout = spec.layout(x2d.shape()[1]);

  if (spec.granularity == Granularity::kPerVector) {
    if (spec.scale_dtype != ScaleDtype::kTwoLevelInt) {
      throw std::invalid_argument(
          "quantize_activations_int: hardware path requires two-level integer scales");
    }
    // Dynamic per-vector: runtime vector max -> sq = round(s/gamma) (Eq. 7g),
    // exactly the PPU's calibrate-and-quantize pipeline.
    TwoLevelScales tl;
    tl.scale_fmt = spec.scale_fmt;
    tl.coarse_axis = CoarseAxis::kPerTensor;
    tl.layout = out.layout;
    tl.rows = out.rows;
    tl.gamma = {gamma};
    const std::vector<float> vec_amax = amax_per_vector(x2d, out.layout);
    tl.sq.resize(vec_amax.size());
    const auto scale_qmax = static_cast<float>(spec.scale_fmt.qmax());
    for (std::size_t i = 0; i < vec_amax.size(); ++i) {
      if (gamma <= 0.0f) {
        tl.sq[i] = 0;
        continue;
      }
      const float s = scale_from_amax(vec_amax[i], spec.fmt);
      tl.sq[i] = static_cast<std::uint16_t>(
          std::clamp(std::nearbyintf(s / gamma), 0.0f, scale_qmax));
    }
    out.q = quantize_to_int(x2d, tl.to_scale_set(), spec.fmt);
    out.two_level = std::move(tl);
  } else {
    const float amax = spec.dynamic ? amax_per_tensor(x2d) : static_amax;
    ScaleSet s;
    s.granularity = Granularity::kPerTensor;
    s.layout = out.layout;
    s.rows = out.rows;
    s.scales = {scale_from_amax(amax, spec.fmt)};
    out.coarse_scales = s.scales;
    out.q = quantize_to_int(x2d, s, spec.fmt);
  }
  return out;
}

}  // namespace vsq
