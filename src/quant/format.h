// Integer quantization format: bitwidth + signedness (paper Sec. 3).
//
// Signed N-bit symmetric scale-only quantization maps to
//   [-(2^(N-1) - 1), 2^(N-1) - 1]        (zero point fixed at 0, Eq. 2)
// Unsigned N-bit (post-ReLU activations, "U" in the paper's tables) maps to
//   [0, 2^N - 1].
// Note: Sec. 3 of the paper prints the unsigned range as [0, 2^(N-1)-1],
// which would make the "U" annotation meaningless; we use the standard
// full unsigned range, with scale s = amax / qmax in both cases (Eq. 1).
#pragma once

#include <cstdint>
#include <string>

namespace vsq {

struct QuantFormat {
  int bits = 8;
  bool is_signed = true;

  std::int64_t qmin() const { return is_signed ? -(max_level()) : 0; }
  std::int64_t qmax() const { return max_level(); }
  // Number of positive levels: 2^(N-1)-1 signed, 2^N-1 unsigned.
  std::int64_t max_level() const {
    return (std::int64_t{1} << (is_signed ? bits - 1 : bits)) - 1;
  }

  bool operator==(const QuantFormat&) const = default;
  std::string str() const;  // e.g. "s8", "u4"
};

// Eq. 1: scale factor for a given absolute-maximum.
// amax <= 0 returns 0; callers treat a zero scale as "all values quantize
// to zero" (see quantize_value).
float scale_from_amax(float amax, const QuantFormat& fmt);

// Eq. 2: round-to-nearest + clip. scale == 0 yields 0.
std::int64_t quantize_value(float x, float scale, const QuantFormat& fmt);

// Eq. 3: simulated-quantized value (quantize then rescale).
float fake_quantize_value(float x, float scale, const QuantFormat& fmt);

}  // namespace vsq
