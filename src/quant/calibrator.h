// Calibration: choosing the clip threshold alpha from observed data
// (paper Sec. 3). Four methods, matching Table 2's columns:
//   max         — alpha = max |x|
//   percentile  — alpha covers p% of the |x| probability mass
//   entropy     — alpha minimizing KL(P || Q) between the clipped reference
//                 distribution and its N-bit quantized approximation
//                 (TensorRT-style)
//   mse         — alpha minimizing expected squared quantization error
// All methods run on an absolute-value Histogram, so activations can be
// calibrated statically by streaming representative batches.
#pragma once

#include "quant/format.h"
#include "quant/granularity.h"
#include "quant/histogram.h"

namespace vsq {

// Returns the calibrated clip threshold alpha for quantizing to `fmt`.
// `hist` must have collected at least one value; returns 0 for empty data.
double calibrate_amax(const Histogram& hist, const CalibSpec& calib, const QuantFormat& fmt);

// Individual methods (exposed for tests and the calibration ablation).
double calibrate_max(const Histogram& hist);
double calibrate_percentile(const Histogram& hist, double percentile);
double calibrate_entropy(const Histogram& hist, const QuantFormat& fmt);
double calibrate_mse(const Histogram& hist, const QuantFormat& fmt);

// Streaming calibrator for one operand: feed matrices, then read amax.
class Calibrator {
 public:
  explicit Calibrator(CalibSpec spec, QuantFormat fmt, int num_bins = 2048)
      : spec_(spec), fmt_(fmt), hist_(num_bins) {}

  void observe(std::span<const float> values) { hist_.collect(values); }
  double amax() const { return calibrate_amax(hist_, spec_, fmt_); }
  const Histogram& histogram() const { return hist_; }

 private:
  CalibSpec spec_;
  QuantFormat fmt_;
  Histogram hist_;
};

}  // namespace vsq
