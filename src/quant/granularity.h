// Scale-factor sharing granularities and the QuantSpec describing how one
// operand (weight or activation matrix) is quantized.
//
// All quantization in this repo operates on 2-D matrices [rows, cols] whose
// column axis is the GEMM reduction axis, unrolled channel-innermost:
//   * conv weights  [K, KH*KW*C]  — rows are output channels (paper's k)
//   * linear weights [out, in]
//   * activations   [batch*spatial, reduction]
// PerRow on a weight matrix is the paper's per-channel (per-output-channel)
// scaling; PerTensor on activations is per-layer scaling; PerVector splits
// the column axis into ceil(cols / V) vectors of V consecutive elements —
// V x 1 x 1 input channels for convs (Fig. 1).
#pragma once

#include <cstdint>
#include <string>

#include "quant/format.h"

namespace vsq {

enum class Granularity {
  kPerTensor,  // one scale for the whole matrix ("per-layer")
  kPerRow,     // one scale per row ("per-channel" for weights)
  kPerVector,  // one scale per V consecutive reduction elements (VS-Quant)
};

// Mapping from reduction-axis columns to vector indices. The unrolled
// reduction axis of a conv is R*S blocks of C channels; the paper's vectors
// subdivide the C dimension only ("each with V elements", ceil(C/V) vectors
// per channel block), never straddling kernel positions. `block` is the
// channel-block length (C for convs, the whole row for linear layers) and
// must divide cols. Blocks whose length is not a multiple of V end with a
// short tail vector, exactly like a C not divisible by V in the paper.
struct VectorLayout {
  std::int64_t cols = 0;
  int vector_size = 16;
  std::int64_t block = 0;  // 0 -> single block spanning the row

  std::int64_t block_len() const { return block > 0 ? block : cols; }
  std::int64_t num_blocks() const { return cols / block_len(); }
  std::int64_t vecs_per_block() const {
    return (block_len() + vector_size - 1) / vector_size;
  }
  std::int64_t vectors_per_row() const { return num_blocks() * vecs_per_block(); }
  std::int64_t vector_of_col(std::int64_t c) const {
    const std::int64_t b = block_len();
    return (c / b) * vecs_per_block() + (c % b) / vector_size;
  }
  // Column range [first, second) covered by vector v.
  std::pair<std::int64_t, std::int64_t> col_range(std::int64_t v) const {
    const std::int64_t b = v / vecs_per_block(), w = v % vecs_per_block();
    const std::int64_t c0 = b * block_len() + w * vector_size;
    return {c0, std::min(c0 + vector_size, (b + 1) * block_len())};
  }
  void validate() const;  // throws if block does not divide cols
};

// How per-vector scale factors are represented (Sec. 4.4, Tables 5-7).
enum class ScaleDtype {
  kFp32,         // single-level float scales (Table 3, "S=fp32")
  kFp16,         // single-level scales rounded to IEEE fp16 ("S=fp16")
  kTwoLevelInt,  // M-bit unsigned integer per-vector scale + fp coarse scale
};

enum class CalibMethod { kMax, kPercentile, kEntropy, kMse };

struct CalibSpec {
  CalibMethod method = CalibMethod::kMax;
  double percentile = 99.99;  // only for kPercentile

  std::string str() const;
};

// Full description of how one operand is quantized.
struct QuantSpec {
  bool enabled = false;
  QuantFormat fmt{8, true};
  Granularity granularity = Granularity::kPerRow;
  int vector_size = 16;  // V, for kPerVector
  std::int64_t channel_block = 0;  // vector boundaries reset every block (0 = whole row)
  ScaleDtype scale_dtype = ScaleDtype::kFp32;
  QuantFormat scale_fmt{6, false};  // M-bit per-vector scales for kTwoLevelInt
  CalibSpec calib;   // calibration of the coarse scale (weights / static acts)
  bool dynamic = false;  // activations: per-vector scales computed at runtime

  static QuantSpec disabled() { return QuantSpec{}; }
  std::string str() const;

  VectorLayout layout(std::int64_t cols) const {
    return VectorLayout{cols, vector_size, channel_block};
  }
};

std::string granularity_name(Granularity g);

}  // namespace vsq
