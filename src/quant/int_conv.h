// Integer convolution through the per-vector datapath: the conv runs as
// the same vector-MAC arithmetic as int_gemm, but the quantized activation
// operand is synthesized patch-row by patch-row from the NHWC input — the
// PPU pass (quantize_row_two_level) and the packed-weight row loop
// (quant/int_kernel.h) stream over tiles of the virtual im2col matrix, so
// neither the fp cols matrix nor its quantized image ever exists at full
// size. Outputs are bit-identical to materializing im2col(x), quantizing
// it with quantize_activations_int and running int_gemm (the reference
// below), and each output row depends only on its own image, so batched
// execution is bit-identical to single-sample execution.
//
// Layout rule (Conv2d::set_quant): per-vector scales must not straddle
// kernel positions, i.e. the operand layouts' channel block must equal the
// conv's input channel count.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/int_gemm.h"
#include "quant/quantized_tensor.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace vsq {

// x: [N, H, W, C] NHWC matching g. wgt: quantized [K, KH*KW*C] weights
// (quantize_weights_int with channel_block = C). act_spec / act_amax /
// act_gamma: the layer's activation quantization exactly as packaged by
// quant/export. bias: K fp values added after de-scaling, or empty.
// Returns [N, OH, OW, K]. Falls back to the materialized reference when
// the operand widths exceed int32-exact accumulation or the activation
// quantization is not row-local (dynamic per-tensor amax). Packs the
// weight panels per call; deployments resolve an IntLayerPrimitive once
// instead (quant/export.h) — outputs are bit-identical either way.
Tensor int_conv(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                const QuantSpec& act_spec, float act_amax, float act_gamma,
                const std::vector<float>& bias, int scale_product_bits = -1,
                IntGemmStats* stats = nullptr);

// Reference oracle: materialized im2col -> quantize_activations_int ->
// int_gemm -> bias. Also the memory baseline the conv benches compare
// against.
Tensor int_conv_reference(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                          const QuantSpec& act_spec, float act_amax, float act_gamma,
                          const std::vector<float>& bias, int scale_product_bits = -1,
                          IntGemmStats* stats = nullptr);

namespace detail {

// Prepacked entry point behind int_conv, for resolved primitives
// (IntLayerPrimitive): a weight-panel set built from `wgt` with the
// patch-row activation layout skips the per-call pack (both on the tiled
// path and inside the materialized reference's int_gemm). Bit-identical
// either way; a mismatched set throws std::invalid_argument.
Tensor int_conv_packed(const Tensor& x, const ConvGeom& g, const QuantizedMatrix& wgt,
                       const QuantSpec& act_spec, float act_amax, float act_gamma,
                       const std::vector<float>& bias, int scale_product_bits,
                       IntGemmStats* stats, const IntWeightPanels* prepacked);

}  // namespace detail

}  // namespace vsq
