#include "quant/fake_quant.h"

#include <cmath>
#include <stdexcept>

#include "util/fp16.h"
#include "util/thread_pool.h"

namespace vsq {

QuantizedOperand quantize_weights(const Tensor& w2d, const QuantSpec& spec) {
  if (!spec.enabled) {
    return QuantizedOperand{w2d, ScaleSet{}, std::nullopt};
  }
  QuantizedOperand out;
  const VectorLayout layout = spec.layout(w2d.shape()[1]);
  if (spec.granularity == Granularity::kPerVector) {
    ScaleSet fp = compute_scales(w2d, Granularity::kPerVector, layout, spec.fmt);
    switch (spec.scale_dtype) {
      case ScaleDtype::kFp32:
        out.scales = std::move(fp);
        break;
      case ScaleDtype::kFp16:
        round_scales_fp16(fp);
        out.scales = std::move(fp);
        break;
      case ScaleDtype::kTwoLevelInt: {
        out.two_level = two_level_from_scales(fp, spec.scale_fmt, CoarseAxis::kPerRow);
        out.scales = out.two_level->to_scale_set();
        break;
      }
    }
  } else if (spec.calib.method == CalibMethod::kMax) {
    out.scales = compute_scales(w2d, spec.granularity, layout, spec.fmt);
  } else {
    // Calibrated coarse scales: per-row -> one histogram per row;
    // per-tensor -> a single histogram.
    const std::int64_t rows = w2d.shape()[0], cols = w2d.shape()[1];
    std::vector<float> amax;
    if (spec.granularity == Granularity::kPerRow) {
      amax.resize(static_cast<std::size_t>(rows));
      Histogram h(512);  // one histogram reset per row, not 512 bins per row
      for (std::int64_t r = 0; r < rows; ++r) {
        h.reset();
        h.collect(std::span<const float>(w2d.data() + r * cols, static_cast<std::size_t>(cols)));
        amax[static_cast<std::size_t>(r)] =
            static_cast<float>(calibrate_amax(h, spec.calib, spec.fmt));
      }
    } else {
      Histogram h(2048);
      h.collect(w2d.span());
      amax = {static_cast<float>(calibrate_amax(h, spec.calib, spec.fmt))};
    }
    out.scales = scales_from_amax(spec.granularity, layout, rows, amax, spec.fmt);
  }
  out.fake = fake_quantize(w2d, out.scales, spec.fmt);
  return out;
}

namespace {

// Fused per-vector dynamic quantization: one pass computing the vector max,
// then quantize the (<= V) elements. `snap` maps the raw fp32 scale to its
// representable value (identity, fp16 rounding, or two-level snapping).
template <typename SnapFn>
Tensor per_vector_dynamic_impl(const Tensor& x2d, const QuantSpec& spec, SnapFn&& snap) {
  const std::int64_t rows = x2d.shape()[0], cols = x2d.shape()[1];
  const VectorLayout layout = spec.layout(cols);
  layout.validate();
  const std::int64_t vpr = layout.vectors_per_row();
  Tensor out(x2d.shape());
  const float* src = x2d.data();
  float* dst = out.data();
  const auto qmin = static_cast<float>(spec.fmt.qmin());
  const auto qmax = static_cast<float>(spec.fmt.qmax());

  // Grain: a chunk should cover at least ~16k elements so small
  // activations are quantized inline instead of paying pool dispatch.
  const auto grain =
      static_cast<std::size_t>(std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols)));
  parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      const float* row = src + static_cast<std::int64_t>(r) * cols;
      float* orow = dst + static_cast<std::int64_t>(r) * cols;
      for (std::int64_t v = 0; v < vpr; ++v) {
        const auto [c0, c1] = layout.col_range(v);
        float m = 0.0f;
        for (std::int64_t c = c0; c < c1; ++c) m = std::max(m, std::abs(row[c]));
        const float s = snap(scale_from_amax(m, spec.fmt));
        if (s <= 0.0f) {
          for (std::int64_t c = c0; c < c1; ++c) orow[c] = 0.0f;
          continue;
        }
        const float inv = 1.0f / s;
        for (std::int64_t c = c0; c < c1; ++c) {
          const float q = std::clamp(std::nearbyintf(row[c] * inv), qmin, qmax);
          orow[c] = q * s;
        }
      }
    }
  }, grain);
  return out;
}

}  // namespace

Tensor fake_quantize_per_vector_dynamic(const Tensor& x2d, const QuantSpec& spec) {
  if (spec.scale_dtype == ScaleDtype::kFp16) {
    return per_vector_dynamic_impl(x2d, spec, [](float s) { return fp16_round(s); });
  }
  return per_vector_dynamic_impl(x2d, spec, [](float s) { return s; });
}

Tensor fake_quantize_per_vector_two_level_dynamic(const Tensor& x2d, const QuantSpec& spec,
                                                  float gamma) {
  const auto scale_qmax = static_cast<float>(spec.scale_fmt.qmax());
  return per_vector_dynamic_impl(x2d, spec, [gamma, scale_qmax](float s) {
    if (gamma <= 0.0f) return 0.0f;
    // PPU: sq = round(s / gamma) clipped to M bits (Eq. 7g), scale = sq*gamma.
    const float sq = std::clamp(std::nearbyintf(s / gamma), 0.0f, scale_qmax);
    return sq * gamma;
  });
}

ActivationQuantizer::ActivationQuantizer(QuantSpec spec) : spec_(spec) {
  if (!spec_.enabled) {
    calibrated_ = true;
    return;
  }
  if (needs_calibration()) {
    calib_.emplace(spec_.calib, spec_.fmt);
  } else {
    calibrated_ = true;
  }
}

bool ActivationQuantizer::needs_calibration() const {
  if (!spec_.enabled) return false;
  if (spec_.granularity == Granularity::kPerVector) {
    // Dynamic single-level needs nothing; two-level needs gamma; static
    // per-vector needs frozen scales from a calibration batch.
    return spec_.scale_dtype == ScaleDtype::kTwoLevelInt || !spec_.dynamic;
  }
  // Coarse: static needs amax; dynamic recomputes per batch.
  return !spec_.dynamic;
}

void ActivationQuantizer::observe(const Tensor& x2d) {
  if (!needs_calibration()) return;
  if (spec_.granularity == Granularity::kPerVector && !spec_.dynamic) {
    // Static per-vector: freeze scales from the latest calibration batch.
    frozen_scales_ = compute_scales(x2d, Granularity::kPerVector,
                                    spec_.layout(x2d.shape()[1]), spec_.fmt);
    if (spec_.scale_dtype == ScaleDtype::kFp16) round_scales_fp16(*frozen_scales_);
  }
  if (calib_) calib_->observe(x2d.span());
}

void ActivationQuantizer::finalize() {
  if (!needs_calibration()) {
    calibrated_ = true;
    return;
  }
  if (!calib_ || calib_->histogram().total_count() == 0) {
    throw std::logic_error("ActivationQuantizer: finalize() before observe()");
  }
  static_amax_ = static_cast<float>(calib_->amax());
  if (spec_.scale_dtype == ScaleDtype::kTwoLevelInt) {
    // gamma = smax / (2^M - 1), where smax is the scale of the largest
    // observed vector; with max calibration that is amax/qmax (Eq. 7e-7f
    // applied at per-tensor coarse granularity).
    const float smax = scale_from_amax(static_amax_, spec_.fmt);
    gamma_ = smax / static_cast<float>(spec_.scale_fmt.qmax());
    if (spec_.granularity == Granularity::kPerVector && !spec_.dynamic && frozen_scales_) {
      ScaleSet& s = *frozen_scales_;
      const auto scale_qmax = static_cast<float>(spec_.scale_fmt.qmax());
      for (auto& v : s.scales) {
        v = gamma_ > 0.0f
                ? std::clamp(std::nearbyintf(v / gamma_), 0.0f, scale_qmax) * gamma_
                : 0.0f;
      }
    }
  }
  calibrated_ = true;
}

Tensor ActivationQuantizer::apply(const Tensor& x2d) const {
  if (!spec_.enabled) return x2d;
  if (!calibrated_) throw std::logic_error("ActivationQuantizer: apply() before finalize()");

  if (spec_.granularity == Granularity::kPerVector) {
    if (spec_.dynamic) {
      if (spec_.scale_dtype == ScaleDtype::kTwoLevelInt) {
        return fake_quantize_per_vector_two_level_dynamic(x2d, spec_, gamma_);
      }
      return fake_quantize_per_vector_dynamic(x2d, spec_);
    }
    if (!frozen_scales_) throw std::logic_error("ActivationQuantizer: no frozen scales");
    if (frozen_scales_->rows != x2d.shape()[0] || frozen_scales_->cols() != x2d.shape()[1]) {
      throw std::invalid_argument(
          "ActivationQuantizer: static per-vector scales require a fixed activation shape");
    }
    return fake_quantize(x2d, *frozen_scales_, spec_.fmt);
  }

  // Coarse granularities (per-tensor for activations).
  float amax = static_amax_;
  if (spec_.dynamic) amax = amax_per_tensor(x2d);
  ScaleSet s;
  s.granularity = Granularity::kPerTensor;
  s.layout.cols = x2d.shape()[1];
  s.rows = x2d.shape()[0];
  s.scales = {scale_from_amax(amax, spec_.fmt)};
  return fake_quantize(x2d, s, spec_.fmt);
}

}  // namespace vsq
