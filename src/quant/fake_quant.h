// High-level, QuantSpec-driven simulated quantization of GEMM operands.
// This is the path all accuracy experiments use (the paper's PyTorch PTQ
// library analogue): weights are quantized statically, activations either
// statically (calibrated) or dynamically per batch (the paper's default
// for per-vector activations, computed by the PPU in hardware).
#pragma once

#include <optional>

#include "quant/calibrator.h"
#include "quant/scale.h"
#include "quant/two_level.h"

namespace vsq {

// A statically quantized operand: fake-quantized values plus the scales
// that produced them (kept for export to the integer/PE path).
struct QuantizedOperand {
  Tensor fake;                            // simulated-quantized matrix
  ScaleSet scales;                        // effective single-level scales
  std::optional<TwoLevelScales> two_level;  // set when spec.scale_dtype == kTwoLevelInt
};

// Quantize a weight matrix [K, L] according to `spec` (static, max
// calibration per granularity; coarse granularities honor spec.calib).
// Weights use CoarseAxis::kPerRow for the two-level gamma (per-channel).
QuantizedOperand quantize_weights(const Tensor& w2d, const QuantSpec& spec);

// Activation quantizer with optional static calibration state.
//
// Usage:
//   ActivationQuantizer aq(spec);
//   for (batch : calibration_set) aq.observe(batch);   // static calib only
//   aq.finalize();
//   Tensor xq = aq.apply(x);                           // every inference
//
// Behaviour by spec:
//   * kPerTensor, dynamic=false  -> static amax via spec.calib
//   * kPerTensor, dynamic=true   -> amax recomputed per batch
//   * kPerVector, dynamic=true   -> per-vector max scales per batch
//       - kFp32/kFp16 scale dtype: single-level runtime scales
//       - kTwoLevelInt: gamma calibrated statically (from observed amax),
//         M-bit sq computed at runtime (exactly what the PPU implements)
//   * kPerVector, dynamic=false  -> per-vector scales frozen from the
//         last observed calibration batch (requires fixed spatial shape)
class ActivationQuantizer {
 public:
  explicit ActivationQuantizer(QuantSpec spec);

  const QuantSpec& spec() const { return spec_; }
  bool needs_calibration() const;
  bool calibrated() const { return calibrated_; }

  void observe(const Tensor& x2d);
  void finalize();

  // Fake-quantize a [rows, L] activation matrix. Throws if static
  // calibration is required but missing.
  Tensor apply(const Tensor& x2d) const;

  // Static per-tensor amax (after finalize); 0 if not applicable.
  float static_amax() const { return static_amax_; }
  // Two-level coarse scale for activations (after finalize); 0 if N/A.
  float gamma() const { return gamma_; }

 private:
  QuantSpec spec_;
  std::optional<Calibrator> calib_;
  float static_amax_ = 0.0f;
  float gamma_ = 0.0f;
  std::optional<ScaleSet> frozen_scales_;  // static per-vector mode
  bool calibrated_ = false;
};

// Dynamic per-vector fake quantization helpers (also used by the PPU model).
Tensor fake_quantize_per_vector_dynamic(const Tensor& x2d, const QuantSpec& spec);
Tensor fake_quantize_per_vector_two_level_dynamic(const Tensor& x2d, const QuantSpec& spec,
                                                  float gamma);

}  // namespace vsq
