// Internal building blocks of the bit-accurate integer datapath, shared by
// int_gemm (whole-matrix operands) and int_conv (patch rows streamed from
// the tiled im2col generator): the packed weight panels, the
// runtime-dispatched panel microkernels, and the per-row
// accumulate-and-scale loop. Everything here computes EXACTLY the
// arithmetic of int_gemm's reference loop — callers differ only in where
// the activation rows come from.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "quant/int_gemm.h"
#include "quant/quantized_tensor.h"
#include "util/scratch.h"

namespace vsq::detail {

// Weight rows per packed panel: the panel microkernel produces
// kIntPanelCols dot products per vector at once from a j-contiguous panel,
// so one pass over the activation row feeds kIntPanelCols output columns.
inline constexpr int kIntPanelCols = 8;

struct VecRange {
  std::int32_t c0;
  std::int32_t len;
};

// dp[v*kIntPanelCols + j] = sum_c arow[c0_v + c] * panel[v][c][j].
using IntPanelFn = void (*)(const std::int16_t* arow, const std::int16_t* wp,
                            const VecRange* vr, std::int64_t nvec, std::int32_t* dp);

// acc[j] = sum_v round(asq[v] * wsq[v*kIntPanelCols + j]) * dp[v*kIntPanelCols + j]
// over all vpr vectors of one panel (asq == nullptr -> scale 1, the coarse
// bypass). This scale-multiply-accumulate is the scalar hot loop of the
// datapath — one int64 op per (vector, output) pair — so it has an AVX2
// variant doing 8 outputs per step. Integer addition reassociates freely,
// so both orders produce identical accumulators.
using PanelAccFn = void (*)(const std::int32_t* dp, const std::uint32_t* wsq,
                            const std::uint16_t* asq, std::int64_t vpr, int full_bits,
                            int scale_product_bits, std::int64_t* acc);

void panel_acc_scalar(const std::int32_t* dp, const std::uint32_t* wsq,
                      const std::uint16_t* asq, std::int64_t vpr, int full_bits,
                      int scale_product_bits, std::int64_t* acc);

// nullptr when the CPU lacks AVX2. Valid for scale products below 2^31
// (full_bits <= 30); run_row falls back to the scalar loop otherwise.
extern const PanelAccFn g_panel_acc_avx2;

// True when every per-vector dot product of act_fmt x wgt_fmt operands
// over `layout`'s vectors is exact in int32 (2N + log2 V bits fit). Cheap
// — callers check it BEFORE packing panels so the int64 fallback path
// never pays for a discarded pack.
inline bool int32_dot_exact(const QuantFormat& act_fmt, const QuantFormat& wgt_fmt,
                            const VectorLayout& layout) {
  std::int64_t max_len = 0;
  const std::int64_t vpr = layout.vectors_per_row();
  for (std::int64_t v = 0; v < vpr; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    max_len = std::max(max_len, c1 - c0);
  }
  const std::int64_t amax_q = std::max(std::abs(act_fmt.qmin()), act_fmt.qmax());
  const std::int64_t wmax_q = std::max(std::abs(wgt_fmt.qmin()), wgt_fmt.qmax());
  return amax_q * wmax_q * std::max<std::int64_t>(max_len, 1) <= INT32_MAX;
}

// Datapath gating counters accumulated per chunk and merged into
// IntGemmStats by the caller (keeps the hot loop free of atomics).
struct IntRowStats {
  std::uint64_t vec_ops = 0, zero_sp = 0, zero_dp = 0;
  std::int64_t max_psum = 0;

  void merge_into(IntGemmStats& s) const {
    s.vector_ops += vec_ops;
    s.zero_scale_products += zero_sp;
    s.zero_dot_products += zero_dp;
    s.max_abs_psum = std::max(s.max_abs_psum, max_psum);
  }
};

// The integer weight operand packed for the row loop: kIntPanelCols-column
// int16 element panels (plain [c][j] layout, or the madd pair-interleaved
// [pair][j][2] layout when every vector length is even and AVX2 is
// available) plus [v][j] per-vector scale panels, both zero-padded past
// k_out. Buffers come from the caller's ScratchArena and stay valid until
// its region rewinds; pack once, stream many rows.
class IntWeightPanels {
 public:
  IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout, ScratchArena& arena);

  // Owning variant: panels live in a private arena instead of the caller's,
  // so the pack survives the call that built it. This is what
  // PackedWeightCache (quant/export.h) stores per layer — pack once at model
  // load, stream rows for the lifetime of the deployment.
  IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout);

  std::int64_t vpr() const { return vpr_; }
  std::int64_t k_out() const { return k_out_; }
  std::int64_t cols() const { return cols_; }
  // Identity of the pack, for callers accepting prepacked panels: the
  // exact weight operand (panels keep per-column scale pointers into it)
  // and the vector geometry it was packed under. (cols, vector_size,
  // block_len) fully determine a VectorLayout's boundaries, so comparing
  // them — not just the vector COUNT — rejects same-vpr layouts whose
  // boundaries differ.
  const QuantizedMatrix* source() const { return wgt_; }
  int vector_size() const { return vector_size_; }
  std::int64_t block_len() const { return block_len_; }

  // True when this pack may stand in for a per-call pack of `wgt` under
  // `layout` — the single validation every prepacked-accepting entry point
  // (int_gemm, int_conv) uses, so the identity contract cannot drift
  // between them.
  bool matches(const QuantizedMatrix& wgt, const VectorLayout& layout) const {
    return wgt_ == &wgt && cols_ == layout.cols && vector_size_ == layout.vector_size &&
           block_len_ == layout.block_len();
  }

  // One activation row -> one output row of k_out floats. asq: the row's
  // per-vector integer scales (nullptr = coarse bypass, scale 1). aout:
  // the row's outer fp factor. dp: caller scratch of vpr*kIntPanelCols
  // int32, reused across rows.
  template <bool kStats>
  void run_row(const std::int16_t* arow, const std::uint16_t* asq, float aout, float* drow,
               int full_bits, int scale_product_bits, std::int32_t* dp, IntRowStats& st) const {
    constexpr int PNR = kIntPanelCols;
    // Stats off (the serving hot path): SIMD scale-accumulate when
    // available. Stats on: the scalar loop, which counts per-product
    // gating. Accumulators are bit-identical either way (exact int64
    // arithmetic in both, and integer addition reassociates).
    const PanelAccFn acc_fn = (!kStats && g_panel_acc_avx2 != nullptr && full_bits <= 30)
                                  ? g_panel_acc_avx2
                                  : panel_acc_scalar;
    for (std::int64_t kp = 0; kp < n_panels_; ++kp) {
      const std::int64_t k0 = kp * PNR;
      const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out_ - k0));
      panel_fn_(arow, pw_ + kp * cols_ * PNR, vr_, vpr_, dp);
      const std::uint32_t* wsq = psq_ + kp * vpr_ * PNR;
      std::int64_t acc[PNR] = {};
      if constexpr (kStats) {
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::uint32_t as_v = asq ? asq[v] : 1;
          const std::int32_t* dv = dp + v * PNR;
          for (int j = 0; j < nr; ++j) {
            const std::uint32_t sp =
                round_scale_product(as_v * wsq[v * PNR + j], full_bits, scale_product_bits);
            acc[j] += static_cast<std::int64_t>(dv[j]) * sp;
            ++st.vec_ops;
            if (sp == 0) {
              ++st.zero_sp;
            } else if (dv[j] == 0) {
              ++st.zero_dp;
            }
          }
        }
      } else {
        acc_fn(dp, wsq, asq, vpr_, full_bits, scale_product_bits, acc);
      }
      for (int j = 0; j < nr; ++j) {
        if constexpr (kStats) st.max_psum = std::max(st.max_psum, std::abs(acc[j]));
        drow[k0 + j] =
            static_cast<float>(static_cast<double>(acc[j]) *
                               static_cast<double>(wgt_->outer_scale(k0 + j)) * aout);
      }
    }
  }

 private:
  void pack(const QuantizedMatrix& wgt, const VectorLayout& layout, ScratchArena& arena);

  const QuantizedMatrix* wgt_;
  const VecRange* vr_ = nullptr;
  const std::int16_t* pw_ = nullptr;
  const std::uint32_t* psq_ = nullptr;
  std::int64_t n_panels_ = 0, cols_ = 0, k_out_ = 0, vpr_ = 0;
  int vector_size_ = 0;
  std::int64_t block_len_ = 0;
  IntPanelFn panel_fn_ = nullptr;
  // Set only by the owning constructor. Arena blocks never move, so the
  // pointers above stay valid when the IntWeightPanels itself is moved.
  std::unique_ptr<ScratchArena> own_;
};

// Process-wide count of IntWeightPanels constructions (relaxed atomic).
// The serving tests assert that steady-state traffic leaves this flat:
// with PackedWeightCache every pack happens at model-load time, never on
// the per-request path.
std::uint64_t panels_packed_total();

}  // namespace vsq::detail
