// Internal building blocks of the bit-accurate integer datapath, shared by
// int_gemm (whole-matrix operands) and int_conv (patch rows streamed from
// the tiled im2col generator): the packed weight panels with their
// registry-resolved microkernels (kernels/registry.h), and the per-row
// accumulate-and-scale loop. Everything here computes EXACTLY the
// arithmetic of int_gemm's reference loop — callers differ only in where
// the activation rows come from.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>

#include "kernels/registry.h"
#include "quant/int_gemm.h"
#include "quant/quantized_tensor.h"
#include "util/scratch.h"

namespace vsq::detail {

// Weight rows per packed panel (kernels/registry.h's kPanelCols): the
// panel microkernel produces kIntPanelCols dot products per vector at once
// from a j-contiguous panel, so one pass over the activation row feeds
// kIntPanelCols output columns.
inline constexpr int kIntPanelCols = kernels::kPanelCols;

using VecRange = kernels::VecRange;

// The activation-side quantization attributes a pack binds, descriptor
// style: the element format decides kernel eligibility (the VNNI tier
// needs operands that fit 8 bits) and the scale width feeds the combined
// full_bits of the scale product. Built from either the concrete operand
// (int_gemm) or the layer's spec (int_conv / package load) — the two agree
// by construction, quantize_activations_int materializes exactly the spec.
struct IntActAttrs {
  QuantFormat fmt{8, true};
  int scale_bits = 0;  // per-vector integer scale width; 0 = coarse bypass

  static IntActAttrs of(const QuantizedMatrix& act) {
    return {act.fmt, act.two_level ? act.two_level->scale_fmt.bits : 0};
  }
  static IntActAttrs of(const QuantSpec& spec) {
    return {spec.fmt,
            spec.granularity == Granularity::kPerVector ? spec.scale_fmt.bits : 0};
  }
};

// True when every per-vector dot product of act_fmt x wgt_fmt operands
// over `layout`'s vectors is exact in int32 (2N + log2 V bits fit). Cheap
// — callers check it BEFORE packing panels so the int64 fallback path
// never pays for a discarded pack.
inline bool int32_dot_exact(const QuantFormat& act_fmt, const QuantFormat& wgt_fmt,
                            const VectorLayout& layout) {
  std::int64_t max_len = 0;
  const std::int64_t vpr = layout.vectors_per_row();
  for (std::int64_t v = 0; v < vpr; ++v) {
    const auto [c0, c1] = layout.col_range(v);
    max_len = std::max(max_len, c1 - c0);
  }
  const std::int64_t amax_q = std::max(std::abs(act_fmt.qmin()), act_fmt.qmax());
  const std::int64_t wmax_q = std::max(std::abs(wgt_fmt.qmin()), wgt_fmt.qmax());
  return amax_q * wmax_q * std::max<std::int64_t>(max_len, 1) <= INT32_MAX;
}

// Datapath gating counters accumulated per chunk and merged into
// IntGemmStats by the caller (keeps the hot loop free of atomics).
struct IntRowStats {
  std::uint64_t vec_ops = 0, zero_sp = 0, zero_dp = 0;
  std::int64_t max_psum = 0;

  void merge_into(IntGemmStats& s) const {
    s.vector_ops += vec_ops;
    s.zero_scale_products += zero_sp;
    s.zero_dot_products += zero_dp;
    s.max_abs_psum = std::max(s.max_abs_psum, max_psum);
  }
};

// The integer weight operand packed for the row loop — the library's
// resolved primitive in the oneDNN sense. Construction is the descriptor
// step: it binds the weight operand, the vector geometry and the
// activation attributes, asks the registry which panel and accumulate
// implementations run (kernels/registry.h; one dispatch resolution each),
// and packs the weights in the layout THAT implementation consumes:
//
//   kPlain            [c][j] int16
//   kPairInterleaved  [pair][j][2] int16 (avx2_madd; even vector lengths)
//   kQuadInt8         [quad][j][4] int8, zero-padded quads, plus the
//                     [v][j] u8-bias compensation block (avx512_vnni)
//   kBitPacked        [c] b-bit code groups (portable_sub / avx2_sub)
//   kNibblePair       [pair][j] nibble pairs (avx2_sub4_madd)
//   kNibbleQuad       [quad][j][2] biased nibble quads (avx512_vnni_sub4)
//
// plus [v][j] per-vector scale panels, everything zero-padded past k_out.
// The sub-byte layouts store 3-6 bit codes at code width — a 4-bit pack is
// ~0.25x the kPlain bytes — and their kernels unpack in registers, so no
// byte-width copy of the weights ever materializes (asserted by the
// serving tests via panels_unpacked_materialized_total()).
// Buffers come from the caller's ScratchArena and stay valid until its
// region rewinds; pack once, stream many rows.
class IntWeightPanels {
 public:
  IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout,
                  const IntActAttrs& act, ScratchArena& arena);

  // Owning variant: panels live in a private arena instead of the caller's,
  // so the pack survives the call that built it. This is what
  // IntLayerPrimitive (quant/export.h) holds per layer — pack once at model
  // load, stream rows for the lifetime of the deployment.
  IntWeightPanels(const QuantizedMatrix& wgt, const VectorLayout& layout,
                  const IntActAttrs& act);

  std::int64_t vpr() const { return vpr_; }
  std::int64_t k_out() const { return k_out_; }
  std::int64_t cols() const { return cols_; }
  // Identity of the pack, for callers accepting prepacked panels: the
  // exact weight operand (panels keep per-column scale pointers into it)
  // and the vector geometry it was packed under. (cols, vector_size,
  // block_len) fully determine a VectorLayout's boundaries, so comparing
  // them — not just the vector COUNT — rejects same-vpr layouts whose
  // boundaries differ.
  const QuantizedMatrix* source() const { return wgt_; }
  int vector_size() const { return vector_size_; }
  std::int64_t block_len() const { return block_len_; }

  // The registry's resolution for this pack, for introspection
  // (vsq_inspect --kernels) and the forced-tier tests.
  const kernels::IntPanelImpl& panel_impl() const { return *panel_impl_; }
  const kernels::PanelAccImpl& acc_impl() const { return *acc_impl_; }
  kernels::PanelLayout layout() const { return panel_impl_->layout; }

  // Memory accounting for the footprint introspection (vsq_inspect
  // --kernels, ServeStats): the bytes this pack keeps resident (weight
  // panels + scale panels + compensation), and what the same pack would
  // occupy in the byte-width kPlain int16 layout. resident/baseline <= 0.3
  // for a 4-bit model is the point of the packed tiers.
  std::int64_t resident_bytes() const { return resident_bytes_; }
  std::int64_t baseline_bytes() const { return baseline_bytes_; }

  // True when sub-byte-format weights (bits < 8) had to materialize at
  // byte width because no packed tier was eligible (odd bit widths, or
  // VSQ_PACKED=0).
  bool materialized_sub_byte() const {
    return wgt_->fmt.bits < 8 && !kernels::panel_layout_sub_byte(layout());
  }

  // True when run_row needs a per-row image buffer beside the int16 row
  // (the VNNI layouts); callers then pass a scratch buffer of
  // u8_row_len() bytes. kBiasedU8 holds the rebiased row; kSignedI8 holds
  // the raw-s8 row plus, at vcomp_off_, the [v] int32 row-sum compensation
  // block (the buffer start is arena/64-byte aligned, vcomp_off_ is
  // 4-aligned, so the int32 view is in bounds and aligned).
  bool needs_u8_row() const { return panel_impl_->row_image != kernels::RowImage::kNone; }
  std::int64_t u8_row_len() const {
    return panel_impl_->row_image == kernels::RowImage::kSignedI8
               ? vcomp_off_ + vpr_ * static_cast<std::int64_t>(sizeof(std::int32_t))
               : cols_ + 4;
  }

  // True when this pack may stand in for a per-call pack of `wgt` under
  // `layout` with `act_fmt` activations — the single validation every
  // prepacked-accepting entry point (detail::int_gemm_packed /
  // int_conv_packed) uses, so the identity contract cannot drift between
  // them. The act format participates because the resolved implementation
  // (and for VNNI, the exactness guarantee itself) depends on it.
  bool matches(const QuantizedMatrix& wgt, const VectorLayout& layout,
               const QuantFormat& act_fmt) const {
    return wgt_ == &wgt && cols_ == layout.cols && vector_size_ == layout.vector_size &&
           block_len_ == layout.block_len() && act_fmt_ == act_fmt;
  }

  // One activation row -> one output row of k_out floats. asq: the row's
  // per-vector integer scales (nullptr = coarse bypass, scale 1). aout:
  // the row's outer fp factor. dp: caller scratch of vpr*kIntPanelCols
  // int32, reused across rows. u8row: caller scratch of u8_row_len()
  // bytes when needs_u8_row(), else may be nullptr.
  template <bool kStats>
  void run_row(const std::int16_t* arow, const std::uint16_t* asq, float aout, float* drow,
               int full_bits, int scale_product_bits, std::int32_t* dp, std::uint8_t* u8row,
               IntRowStats& st) const {
    constexpr int PNR = kIntPanelCols;
    // The VNNI layouts consume a per-row byte image (see
    // kernels/int_panel_impls.cpp); built once per row, shared by panels.
    // kBiasedU8: the row rebiased to u8. kSignedI8 (packed 4-bit VNNI):
    // the raw s8 row plus the per-vector row-sum compensation
    // vcomp[v] = -8 * sum_c a[c], carved from the same scratch buffer.
    const std::int32_t* vcomp = nullptr;
    if (panel_impl_->row_image == kernels::RowImage::kBiasedU8) {
      for (std::int64_t c = 0; c < cols_; ++c) {
        u8row[c] = static_cast<std::uint8_t>(arow[c] + u8_bias_);
      }
      std::memset(u8row + cols_, 0, 4);  // quad overread past the row end
    } else if (panel_impl_->row_image == kernels::RowImage::kSignedI8) {
      for (std::int64_t c = 0; c < cols_; ++c) {
        u8row[c] = static_cast<std::uint8_t>(static_cast<std::int8_t>(arow[c]));
      }
      std::memset(u8row + cols_, 0, 4);
      auto* vc = reinterpret_cast<std::int32_t*>(u8row + vcomp_off_);
      const std::int32_t bias = 1 << (wbits_ - 1);
      for (std::int64_t v = 0; v < vpr_; ++v) {
        std::int32_t s = 0;
        const std::int16_t* av = arow + vr_[v].c0;
        for (std::int32_t c = 0; c < vr_[v].len; ++c) s += av[c];
        vc[v] = -bias * s;
      }
      vcomp = vc;
    }
    // Stats off (the serving hot path): the resolved SIMD scale-accumulate
    // when the scale product width permits. Stats on: the portable loop,
    // which counts per-product gating. Accumulators are bit-identical
    // either way (exact int64 arithmetic in both, and integer addition
    // reassociates).
    const kernels::PanelAccFn acc_fn =
        (!kStats && full_bits <= acc_impl_->max_full_bits) ? acc_impl_->fn : acc_fallback_;
    kernels::PanelArgs pa;
    pa.arow = arow;
    pa.arow8 = u8row;
    pa.vcomp = vcomp;
    pa.vr = vr_;
    pa.nvec = vpr_;
    pa.wbits = wbits_;
    pa.dp = dp;
    const kernels::IntPanelFn panel_fn = panel_impl_->fn;
    for (std::int64_t kp = 0; kp < n_panels_; ++kp) {
      const std::int64_t k0 = kp * PNR;
      const int nr = static_cast<int>(std::min<std::int64_t>(PNR, k_out_ - k0));
      pa.wp = pw_ + kp * panel_stride_;
      pa.ncomp = ncomp_ == nullptr ? nullptr : ncomp_ + kp * vpr_ * PNR;
      panel_fn(pa);
      const std::uint32_t* wsq = psq_ + kp * vpr_ * PNR;
      std::int64_t acc[PNR] = {};
      if constexpr (kStats) {
        for (std::int64_t v = 0; v < vpr_; ++v) {
          const std::uint32_t as_v = asq ? asq[v] : 1;
          const std::int32_t* dv = dp + v * PNR;
          for (int j = 0; j < nr; ++j) {
            const std::uint32_t sp =
                round_scale_product(as_v * wsq[v * PNR + j], full_bits, scale_product_bits);
            acc[j] += static_cast<std::int64_t>(dv[j]) * sp;
            ++st.vec_ops;
            if (sp == 0) {
              ++st.zero_sp;
            } else if (dv[j] == 0) {
              ++st.zero_dp;
            }
          }
        }
      } else {
        acc_fn(dp, wsq, asq, vpr_, full_bits, scale_product_bits, acc);
      }
      for (int j = 0; j < nr; ++j) {
        if constexpr (kStats) st.max_psum = std::max(st.max_psum, std::abs(acc[j]));
        drow[k0 + j] =
            static_cast<float>(static_cast<double>(acc[j]) *
                               static_cast<double>(wgt_->outer_scale(k0 + j)) * aout);
      }
    }
  }

 private:
  void pack(const QuantizedMatrix& wgt, const VectorLayout& layout, const IntActAttrs& act,
            ScratchArena& arena);

  const QuantizedMatrix* wgt_;
  const VecRange* vr_ = nullptr;
  const unsigned char* pw_ = nullptr;    // panel bytes, layout per panel_impl_
  const std::uint32_t* psq_ = nullptr;
  const std::int32_t* ncomp_ = nullptr;  // kQuadInt8 only
  std::int64_t n_panels_ = 0, cols_ = 0, k_out_ = 0, vpr_ = 0;
  std::int64_t panel_stride_ = 0;        // bytes between consecutive panels
  std::int64_t resident_bytes_ = 0, baseline_bytes_ = 0;
  std::int64_t vcomp_off_ = 0;           // kSignedI8: vcomp offset in u8row
  int vector_size_ = 0;
  int wbits_ = 0;                        // code width of packed layouts, else 0
  std::int64_t block_len_ = 0;
  QuantFormat act_fmt_{8, true};
  std::int16_t u8_bias_ = 0;
  const kernels::IntPanelImpl* panel_impl_ = nullptr;
  const kernels::PanelAccImpl* acc_impl_ = nullptr;
  kernels::PanelAccFn acc_fallback_ = nullptr;  // portable, for stats/wide rows
  // Set only by the owning constructor. Arena blocks never move, so the
  // pointers above stay valid when the IntWeightPanels itself is moved.
  std::unique_ptr<ScratchArena> own_;
};

// Process-wide count of IntWeightPanels constructions (relaxed atomic).
// The serving tests assert that steady-state traffic leaves this flat:
// with the runner's load-time primitives every pack happens at model-load
// time, never on the per-request path.
std::uint64_t panels_packed_total();

// Process-wide count of packs where sub-byte-format weights (bits < 8)
// materialized at byte width (see IntWeightPanels::materialized_sub_byte).
// The serving tests assert steady-state 4-bit traffic leaves this flat AND
// zero-incremented at load: the packed layouts unpack in registers only.
std::uint64_t panels_unpacked_materialized_total();

}  // namespace vsq::detail
